package repro_test

import (
	"reflect"
	"strings"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// The tests in this file pin the profile-once contract of the
// compilation cache: a cold sweep runs the profiling interpreter exactly
// once per (source, training-args) pair, a warm-started run with a
// persistent cache dir runs it zero times, and the rendered experiment
// report is byte-identical with the cache disabled, cold, warm,
// persistent, and at any worker count.

// TestSweepProfilesOncePerPair asserts via the cache counters that a
// cold RunAll performs one profiling interpreter run per workload (all
// four config variants of a workload share one run), and that repeating
// the sweep performs none.
func TestSweepProfilesOncePerPair(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	// pin the profiling-cache contract in isolation: the machine-trace
	// path adds its own (legitimate) cache computes, which would make the
	// exact compute-count assertion below meaningless
	repro.SetTraceEnabled(false)
	defer repro.SetTraceEnabled(true)
	repro.ResetCaches()
	runs0 := repro.ProfilingRuns()
	stats0 := repro.CacheStats()
	if _, err := experiments.RunAllWorkers(8); err != nil {
		t.Fatal(err)
	}
	n := uint64(len(workloads.All()))
	if got := repro.ProfilingRuns() - runs0; got != n {
		t.Errorf("cold sweep ran the profiling interpreter %d times, want exactly %d (one per workload)", got, n)
	}
	// one frontend parse + one profiling run per workload
	if got := repro.CacheStats().Computes - stats0.Computes; got != 2*n {
		t.Errorf("cold sweep computed %d cache entries, want %d", got, 2*n)
	}
	// a second sweep in the same process is fully memoized
	runs1 := repro.ProfilingRuns()
	if _, err := experiments.RunAllWorkers(8); err != nil {
		t.Fatal(err)
	}
	if got := repro.ProfilingRuns() - runs1; got != 0 {
		t.Errorf("warm in-memory sweep ran the profiling interpreter %d times, want 0", got)
	}
}

// TestWarmStartSkipsProfiling models the cross-process warm start: with
// a persistent cache dir, dropping the in-memory tier (a new process)
// and re-running a workload performs zero profiling interpreter runs and
// produces identical measurements.
func TestWarmStartSkipsProfiling(t *testing.T) {
	w, ok := workloads.ByName("equake")
	if !ok {
		t.Fatal("equake not registered")
	}
	if err := repro.SetCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := repro.SetCacheDir(""); err != nil {
			t.Fatal(err)
		}
	}()
	repro.ResetCaches()
	cold, err := experiments.RunOneWorkers(w, 2)
	if err != nil {
		t.Fatal(err)
	}

	runs0 := repro.ProfilingRuns()
	stats0 := repro.CacheStats()
	repro.ResetCaches() // "new process": memory tier gone, disk tier stays
	warm, err := experiments.RunOneWorkers(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := repro.ProfilingRuns() - runs0; got != 0 {
		t.Errorf("warm start ran the profiling interpreter %d times, want 0", got)
	}
	if got := repro.CacheStats().DiskHits - stats0.DiskHits; got == 0 {
		t.Error("warm start should have hit the persistent tier")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm-start measurements differ from cold:\n%+v\nvs\n%+v", cold, warm)
	}
}

// TestReportByteIdenticalAcrossCacheModes renders the full experiment
// report with memoization disabled (the oracle), cold, warm, against a
// persistent dir, warm-started from that dir, and with 8 workers — all
// six byte strings must be identical.
func TestReportByteIdenticalAcrossCacheModes(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full report repeatedly")
	}
	render := func(name string, workers int) string {
		t.Helper()
		var b strings.Builder
		if err := experiments.ReportWorkers(&b, workers); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return b.String()
	}

	repro.SetCacheEnabled(false)
	oracle := render("disabled", 1)
	repro.SetCacheEnabled(true)

	repro.ResetCaches()
	variants := map[string]string{
		"cold":        render("cold", 1),
		"warm-memory": render("warm-memory", 1),
	}
	if err := repro.SetCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	repro.ResetCaches()
	variants["persistent"] = render("persistent", 1)
	repro.ResetCaches()
	variants["warm-disk"] = render("warm-disk", 1)
	if err := repro.SetCacheDir(""); err != nil {
		t.Fatal(err)
	}
	variants["workers-8"] = render("workers-8", 8)

	if len(oracle) == 0 {
		t.Fatal("empty report")
	}
	for name, got := range variants {
		if got != oracle {
			t.Errorf("%s report differs from the cache-disabled oracle", name)
		}
	}
}
