package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleCompile demonstrates the whole pipeline on the paper's Figure 2
// scenario: a load made redundant by speculation, checked by the ALAT.
func ExampleCompile() {
	src := `
int a = 10;
int b = 20;
int main() {
	int *p = &a;
	int *q = &b;
	if (arg(0) > 50) q = p;   // may-alias, never true on the training input
	int x = a;
	*q = 99;
	int y = a;                // speculatively redundant
	print(x, y);
	return 0;
}`
	c, err := repro.Compile(src, repro.Config{
		Spec:        repro.SpecProfile,
		ProfileArgs: []int64{0}, // training input: no aliasing
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run([]int64{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	fmt.Printf("checks=%d failed=%d\n", res.Counters.CheckLoads, res.Counters.FailedChecks)

	// the adversarial input mis-speculates but stays correct
	res, err = c.Run([]int64{99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	fmt.Printf("checks=%d failed=%d\n", res.Counters.CheckLoads, res.Counters.FailedChecks)
	// Output:
	// 10 10
	// checks=1 failed=0
	// 10 99
	// checks=1 failed=1
}

// ExampleReference shows the interpreter-based reference semantics used as
// the oracle in the test suite.
func ExampleReference() {
	res, err := repro.Reference(`
int main() {
	int n = arg(0);
	int acc = 0;
	for (int i = 1; i <= n; i++) acc += i;
	print(acc);
	return 0;
}`, []int64{10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	// Output:
	// 55
}

// ExampleCollectProfile shows the two-step profile-feedback workflow.
func ExampleCollectProfile() {
	src := `
int total = 0;
int main() {
	for (int i = 0; i < arg(0); i++) total += i;
	print(total);
	return 0;
}`
	prof, err := repro.CollectProfile(src, []int64{100})
	if err != nil {
		log.Fatal(err)
	}
	c, err := repro.Compile(src, repro.Config{Spec: repro.SpecProfile, ProfileJSON: prof})
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run([]int64{5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	// Output:
	// 10
}
