package repro_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// TestEvaluateCtxCancelMidSweep is the PR's cancellation acceptance
// criterion: start a sensitivity-style sweep via EvaluateCtx, cancel
// mid-flight, and assert (under -race) that the call returns
// context.Canceled promptly and that goroutines drain back to the
// pre-sweep baseline — no leaked workers, no leaked singleflight
// waiters.
func TestEvaluateCtxCancelMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and sweeps a workload")
	}
	w, ok := workloads.ByName("equake")
	if !ok {
		t.Fatal("workload equake not registered")
	}
	cfg := repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs}
	c, err := repro.Compile(w.Src, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// a wide grid so the sweep is still mid-flight when we cancel
	var cfgs []machine.Config
	for i := 0; i < 64; i++ {
		m := machine.Defaults()
		m.ALATSize = 4 + i
		cfgs = append(cfgs, m)
	}

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.EvaluateCtx(ctx, w.RefArgs, cfgs, 4)
		done <- err
	}()
	// let the sweep get going, then pull the plug
	time.Sleep(10 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("EvaluateCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled EvaluateCtx did not return promptly")
	}

	// in-flight replays finish on their own and their goroutines exit;
	// poll until the count is back at (or below) the baseline
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d > %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// the compilation is still usable: a fresh context sweeps fine
	res, err := c.EvaluateCtx(context.Background(), w.RefArgs, cfgs[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] == nil || res[1] == nil {
		t.Fatalf("post-cancel sweep results: %+v", res)
	}
}

// TestCompileCtxCancelled proves CompileCtx checks its context at phase
// boundaries: an already-cancelled context fails fast without running
// the pipeline.
func TestCompileCtxCancelled(t *testing.T) {
	w, ok := workloads.ByName("equake")
	if !ok {
		t.Fatal("workload equake not registered")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	repro.ResetCaches()
	_, err := repro.CompileCtx(ctx, w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CompileCtx with cancelled ctx = %v, want context.Canceled", err)
	}
	// and the cancellation did not poison the cache for the next caller
	c, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs})
	if err != nil {
		t.Fatal(err)
	}
	if c.ProfileErr != nil {
		t.Fatalf("profile poisoned by cancelled compile: %v", c.ProfileErr)
	}
}
