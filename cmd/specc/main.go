// Command specc is the compiler driver: it compiles a MiniC source file
// through the speculative-optimization pipeline and (optionally) runs it
// on the EPIC VM, printing performance counters.
//
// Usage:
//
//	specc [flags] file.mc [-- prog-args...]
//
//	-spec   off|profile|heuristic|cost   data-speculation mode (default profile)
//	-spec-threshold T               cost-model threshold for -spec cost
//	                                (>1 conservative, <1 aggressive, 0 = neutral 1)
//	-O0                             disable optimization entirely
//	-train  1,2,3                   training input for the profiling run
//	-run                            execute after compiling (default true)
//	-dump-ir                        print the optimized IR
//	-dump-asm                       print the VM code
//	-stats                          print optimizer statistics
//	-harden fence|hoist             close speculative leaks post-codegen
//	                                (Layer 3 re-verified: zero residual)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/machine"
)

func parseArgs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() { cli.Main("specc", run) }

func run() error {
	spec := flag.String("spec", "profile", "data speculation: off|profile|heuristic|cost")
	specThreshold := flag.Float64("spec-threshold", 0, "cost-model threshold for -spec cost (0 = neutral 1)")
	o0 := flag.Bool("O0", false, "disable optimization")
	train := flag.String("train", "", "comma-separated training input for profiling")
	doRun := flag.Bool("run", true, "run the program after compiling")
	dumpIR := flag.Bool("dump-ir", false, "print optimized IR")
	dumpAsm := flag.Bool("dump-asm", false, "print VM code")
	stats := flag.Bool("stats", false, "print optimizer statistics")
	progArgs := flag.String("args", "", "comma-separated program input (arg(i) values)")
	profileFile := flag.String("profile", "", "use a serialized profile (from aliasprof -o) instead of -train")
	sched := flag.Bool("sched", false, "enable the instruction scheduler")
	pipelined := flag.Bool("pipelined", false, "use the pipelined (scoreboard) timing model")
	verify := flag.Bool("verify-passes", false, "run the speculation-soundness checker after every pipeline stage")
	hardenPol := flag.String("harden", "", "close speculative leaks post-codegen: fence|hoist (empty = off)")
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		return cli.Usagef("expected exactly one source file")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}

	cfg := repro.Config{OptimizeOff: *o0}
	switch *spec {
	case "off":
		cfg.Spec = repro.SpecOff
	case "profile":
		cfg.Spec = repro.SpecProfile
	case "heuristic":
		cfg.Spec = repro.SpecHeuristic
	case "cost":
		cfg.Spec = repro.SpecCost
	default:
		return cli.Usagef("unknown -spec %q", *spec)
	}
	cfg.SpecThreshold = *specThreshold
	cfg.ProfileArgs, err = parseArgs(*train)
	if err != nil {
		return cli.Usagef("bad -train: %v", err)
	}
	if *profileFile != "" {
		data, err := os.ReadFile(*profileFile)
		if err != nil {
			return err
		}
		cfg.ProfileJSON = data
	}
	cfg.Schedule = *sched
	cfg.VerifyPasses = *verify
	switch *hardenPol {
	case "", "fence", "hoist":
		cfg.Harden = *hardenPol
	default:
		return cli.Usagef("unknown -harden %q (want fence or hoist)", *hardenPol)
	}
	if *pipelined {
		cfg.Machine = machine.Defaults()
		cfg.Machine.Pipelined = true
	}
	args, err := parseArgs(*progArgs)
	if err != nil {
		return cli.Usagef("bad -args: %v", err)
	}

	c, err := repro.Compile(string(src), cfg)
	if err != nil {
		return err
	}
	if *stats {
		t := c.TotalStats()
		fmt.Fprintf(os.Stderr, "stats: %d classes, %d eliminated (%d speculative), %d insertions (%d control-spec), %d checks, %d adv loads, %d phis\n",
			t.ExprClasses, t.Eliminated, t.SpecEliminated, t.Insertions, t.SpecInsertions,
			t.ChecksInserted, t.AdvLoadsMarked, t.PhisPlaced)
	}
	if c.Harden != nil {
		fmt.Fprintf(os.Stderr, "harden(%s): %d leaks closed (%d fences, %d hoisted checks), %d residual\n",
			c.Harden.Policy, c.Harden.LeaksFound, c.Harden.FencesInserted, c.Harden.ChecksHoisted, c.Harden.Residual)
	}
	if *dumpIR {
		fmt.Print(c.Prog)
	}
	if *dumpAsm {
		fmt.Print(c.Code)
	}
	if !*doRun {
		return nil
	}
	res, err := c.Run(args)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	fmt.Print(res.Output)
	ctr := res.Counters
	fmt.Fprintf(os.Stderr, "cycles=%d instrs=%d loads=%d (checks=%d failed=%d adv=%d spec=%d) stores=%d data-cycles=%d\n",
		ctr.Cycles, ctr.InstrsRetired, ctr.LoadsRetired, ctr.CheckLoads,
		ctr.FailedChecks, ctr.AdvLoads, ctr.SpecLoads, ctr.Stores, ctr.DataAccessCycles)
	// the compiled program's own return value is the exit code
	return cli.Exit(int(res.Ret))
}
