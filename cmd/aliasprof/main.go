// Command aliasprof runs the alias-profiling interpreter on a MiniC
// program and prints the collected counted LOC multisets per indirect
// reference site (observation counts over the site's execution total —
// the alias probabilities the cost-model policy consumes), the
// side-effect sets per call site, and the hottest blocks — the
// information §3.2.1 of the paper feeds back into the compiler.
//
// Profiling goes through the compilation cache: with -cache-dir a
// repeated invocation on the same source and inputs (or a later
// `experiments -cache-dir` sweep) reuses the persisted profile instead
// of re-interpreting the program.
//
// Usage:
//
//	aliasprof [-args 1,2,3] [-o prof.json] [-cache-dir DIR] file.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/alias"
	"repro/internal/cli"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/source"
)

func main() { cli.Main("aliasprof", run) }

func run() error {
	progArgs := flag.String("args", "", "comma-separated program input (arg(i) values)")
	outFile := flag.String("o", "", "write the serialized profile (JSON) to this file")
	cacheDir := flag.String("cache-dir", "", "reuse/persist profiles under this directory across runs")
	flag.Parse()
	if flag.NArg() != 1 {
		return cli.Usagef("usage: aliasprof [-args ...] file.mc")
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	src := string(srcBytes)
	var args []int64
	if *progArgs != "" {
		for _, part := range strings.Split(*progArgs, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return cli.Usagef("bad -args: %v", err)
			}
			args = append(args, v)
		}
	}
	if *cacheDir != "" {
		if err := repro.SetCacheDir(*cacheDir); err != nil {
			return err
		}
	}

	// the canonical cached profiling computation — identical site ids to
	// what Compile consumes via Config.ProfileJSON
	data, err := repro.CollectProfile(src, args)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			return err
		}
	}

	// rebuild the refined program the profile was collected on, to
	// resolve site ids and block names for printing
	file, err := source.Parse(src)
	if err != nil {
		return err
	}
	prog, err := source.Lower(file)
	if err != nil {
		return err
	}
	alias.Refine(prog)
	prof, err := profile.Unmarshal(prog, data)
	if err != nil {
		return err
	}

	keys := ir.SiteSyntaxKeys(prog)
	siteName := func(s int) string {
		if name := keys[s]; name != "" {
			return name
		}
		return fmt.Sprintf("site %d", s)
	}
	// reference sites render the counted multiset (profile v2): each LOC
	// with its observation count over the site's execution total — the
	// p(alias) the cost-model policy (-spec cost) consumes
	printCounted := func(title string, sets map[int]profile.LocSet) {
		fmt.Printf("%s:\n", title)
		var sites []int
		for s := range sets {
			sites = append(sites, s)
		}
		sort.Ints(sites)
		for _, s := range sites {
			set := sets[s]
			var parts []string
			for l, n := range set {
				if n > 0 {
					parts = append(parts, fmt.Sprintf("%s×%d", l, n))
				}
			}
			sort.Strings(parts)
			fmt.Printf("  %-40s {%s} of %d execs\n", siteName(s), strings.Join(parts, ", "), prof.Total(s))
		}
	}
	printSets := func(title string, sets map[int]profile.LocSet) {
		fmt.Printf("%s:\n", title)
		var sites []int
		for s := range sets {
			sites = append(sites, s)
		}
		sort.Ints(sites)
		for _, s := range sites {
			fmt.Printf("  %-40s %s\n", siteName(s), sets[s])
		}
	}
	printCounted("indirect load LOC multisets", prof.LoadLocs)
	printCounted("indirect store LOC multisets", prof.StoreLocs)
	printSets("call-site mod sets", prof.CallMod)
	printSets("call-site ref sets", prof.CallRef)

	// hottest blocks
	type hot struct {
		fn    string
		id    int
		count uint64
	}
	var hots []hot
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			if c := prof.BlockCount[b]; c > 0 {
				hots = append(hots, hot{fn.Name, b.ID, c})
			}
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].count != hots[j].count {
			return hots[i].count > hots[j].count
		}
		if hots[i].fn != hots[j].fn {
			return hots[i].fn < hots[j].fn
		}
		return hots[i].id < hots[j].id
	})
	fmt.Println("hottest blocks:")
	for i, h := range hots {
		if i >= 10 {
			break
		}
		fmt.Printf("  %s B%d: %d\n", h.fn, h.id, h.count)
	}

	// per-function speculation counters: compile under the profile just
	// collected and execute the training input once, attributing each
	// advanced load, check and mis-speculation to its function — the
	// same quantities the adaptive tier monitor folds into failure-rate
	// windows, shown here per function instead of program-summed
	c, err := repro.Compile(src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: args, ProfileJSON: data})
	if err != nil {
		return err
	}
	res, err := c.Run(args)
	if err != nil {
		return err
	}
	fmt.Println("per-function speculation counters (profile-guided build, training input):")
	if len(res.PerFunc) == 0 {
		fmt.Println("  (no function retired speculative loads)")
		return nil
	}
	var fns []string
	for fn := range res.PerFunc {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	fmt.Printf("  %-24s %10s %10s %10s %10s\n", "function", "adv loads", "checks", "hits", "misses")
	for _, fn := range fns {
		fc := res.PerFunc[fn]
		fmt.Printf("  %-24s %10d %10d %10d %10d\n",
			fn, fc.AdvLoads, fc.CheckLoads, fc.CheckLoads-fc.FailedChecks, fc.FailedChecks)
	}
	return nil
}
