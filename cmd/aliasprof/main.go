// Command aliasprof runs the alias-profiling interpreter on a MiniC
// program and prints the collected LOC sets per indirect reference site,
// the side-effect sets per call site, and the hottest blocks — the
// information §3.2.1 of the paper feeds back into the compiler.
//
// Usage:
//
//	aliasprof [-args 1,2,3] file.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/source"
)

func main() {
	progArgs := flag.String("args", "", "comma-separated program input (arg(i) values)")
	outFile := flag.String("o", "", "write the serialized profile (JSON) to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aliasprof [-args ...] file.mc")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "aliasprof:", err)
		os.Exit(1)
	}
	var args []int64
	if *progArgs != "" {
		for _, part := range strings.Split(*progArgs, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aliasprof: bad -args:", err)
				os.Exit(2)
			}
			args = append(args, v)
		}
	}

	file, err := source.Parse(string(srcBytes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "aliasprof:", err)
		os.Exit(1)
	}
	prog, err := source.Lower(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aliasprof:", err)
		os.Exit(1)
	}
	prof := profile.New()
	if _, err := interp.Run(prog, interp.Options{
		CollectEdges: true, CollectAlias: true, Profile: prof, Args: args,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "aliasprof: run:", err)
		os.Exit(1)
	}

	if *outFile != "" {
		data, err := profile.Marshal(prog, prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aliasprof:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aliasprof:", err)
			os.Exit(1)
		}
	}

	keys := ir.SiteSyntaxKeys(prog)
	printSets := func(title string, sets map[int]profile.LocSet) {
		fmt.Printf("%s:\n", title)
		var sites []int
		for s := range sets {
			sites = append(sites, s)
		}
		sort.Ints(sites)
		for _, s := range sites {
			name := keys[s]
			if name == "" {
				name = fmt.Sprintf("site %d", s)
			}
			fmt.Printf("  %-40s %s\n", name, sets[s])
		}
	}
	printSets("indirect load LOC sets", prof.LoadLocs)
	printSets("indirect store LOC sets", prof.StoreLocs)
	printSets("call-site mod sets", prof.CallMod)
	printSets("call-site ref sets", prof.CallRef)

	// hottest blocks
	type hot struct {
		fn    string
		id    int
		count uint64
	}
	var hots []hot
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			if c := prof.BlockCount[b]; c > 0 {
				hots = append(hots, hot{fn.Name, b.ID, c})
			}
		}
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].count > hots[j].count })
	fmt.Println("hottest blocks:")
	for i, h := range hots {
		if i >= 10 {
			break
		}
		fmt.Printf("  %s B%d: %d\n", h.fn, h.id, h.count)
	}
}
