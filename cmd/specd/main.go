// Command specd is the compile-and-evaluate service: a long-running
// HTTP front end over the speculative-compilation pipeline with
// admission control, per-request timeouts, cancellation threaded down
// to the worker pool, and live metrics.
//
// Usage:
//
//	specd [flags]
//
//	-addr            listen address (default :8080)
//	-workers         max jobs executing concurrently (0 = one per core)
//	-queue           max admitted jobs waiting beyond the workers (0 = workers)
//	-timeout         per-request deadline (default 60s)
//	-cache-dir       persist profiles/traces under this directory
//	-cache-max-bytes prune the disk cache to this budget on shutdown (0 = unbounded)
//	-peers           comma-separated base URLs of fleet peers; enables the
//	                 remote cache tier (profiles/traces missing locally are
//	                 fetched from the peer that owns the key, and computed
//	                 entries are pushed there)
//	-peer-timeout    per-peer cache request deadline (default 5s)
//	-adaptive        enable the online tier-management runtime: served
//	                 evaluations feed a per-function mis-speculation
//	                 monitor, functions whose check-failure rate crosses
//	                 the threshold are demoted down a tier ladder
//	                 (recompiled, specheck-verified, and hot-swapped),
//	                 and clean traffic re-promotes them
//	-pprof           serve net/http/pprof on a separate address (off by default)
//
// Endpoints: POST /compile, POST /evaluate, POST /sweep, POST /corpus,
// GET /workloads, GET /healthz, GET /metrics, GET/PUT /cache/{key}.
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting
// work (new and queued jobs get 503), finishes jobs already executing,
// prunes the disk cache to its budget, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/server"
)

func main() { cli.Main("specd", run) }

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max jobs executing concurrently (0 = one per core)")
	queue := flag.Int("queue", 0, "max admitted jobs waiting for a worker slot (0 = workers)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline (negative = none)")
	cacheDir := flag.String("cache-dir", "", "persist profiles/traces under this directory across runs")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "prune the disk cache to this many bytes on shutdown (0 = unbounded)")
	peers := flag.String("peers", "", "comma-separated base URLs of fleet peers serving GET/PUT /cache/{key}; empty = no remote tier")
	peerTimeout := flag.Duration("peer-timeout", cache.DefaultPeerTimeout, "per-peer cache request deadline")
	adaptiveOn := flag.Bool("adaptive", false, "enable online tier management: monitor served evaluations, demote mis-speculating functions, re-promote on clean traffic")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = off")
	flag.Parse()
	if flag.NArg() != 0 {
		return cli.Usagef("unexpected arguments: %v", flag.Args())
	}

	if *cacheDir != "" {
		if err := repro.SetCacheDir(*cacheDir); err != nil {
			return err
		}
	}
	if *peers != "" {
		var urls []string
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimRight(strings.TrimSpace(p), "/")
			if p == "" {
				continue
			}
			if !strings.Contains(p, "://") {
				p = "http://" + p
			}
			urls = append(urls, p)
		}
		if len(urls) > 0 {
			repro.SetCacheRemote(cache.NewPeerRemote(urls, nil, *peerTimeout))
		}
	}

	logger := log.New(os.Stderr, "specd ", log.LstdFlags|log.Lmsgprefix)
	s := server.New(server.Config{
		Workers:  *workers,
		Queue:    *queue,
		Timeout:  *timeout,
		Logger:   logger,
		Adaptive: *adaptiveOn,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	if *pprofAddr != "" {
		// profiling stays off the public API port: pprof handlers
		// register on http.DefaultServeMux, served by a second listener
		// that is opt-in and should be bound to localhost
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (workers=%d queue=%d timeout=%s adaptive=%v)", *addr, *workers, *queue, *timeout, *adaptiveOn)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// the listener failed before any signal — a bad -addr, a port
		// in use — and that is a startup error, not a drain
		return err
	case <-ctx.Done():
	}

	// graceful drain: reject new and queued work, finish in-flight jobs
	// (Shutdown waits for active handlers), then flush the disk tier
	logger.Printf("signal received, draining")
	s.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if *cacheDir != "" && *cacheMaxBytes > 0 {
		freed, err := cache.Prune(*cacheDir, *cacheMaxBytes)
		if err != nil {
			return fmt.Errorf("cache prune: %w", err)
		}
		logger.Printf("pruned disk cache to %d bytes budget (freed %d bytes)", *cacheMaxBytes, freed)
	}
	logger.Printf("drained, exiting")
	return nil
}
