// Command benchguard is the CI perf gate: it compares the sweep
// speedups of a freshly generated BENCH_machine.json against the
// committed baseline and exits non-zero when any grid regressed by more
// than the allowed fraction. Single-pass CI benchmark numbers are
// noisy, so the default margin is deliberately wide (25%); the guarded
// speedups sit far above it on any runner, and only a real algorithmic
// regression (e.g. the batched replay walk falling back to per-config
// replays) moves them that much.
//
// Usage:
//
//	benchguard -baseline BENCH_machine.baseline.json -fresh BENCH_machine.json [-max-regress 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_machine.json to compare against")
	freshPath := flag.String("fresh", "BENCH_machine.json", "freshly generated BENCH_machine.json")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum allowed fractional speedup regression (0.25 = 25%)")
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}

	base, err := loadSpeedups(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	fresh, err := loadSpeedups(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for grid, baseSpeedup := range base {
		freshSpeedup, ok := fresh[grid]
		if !ok {
			fmt.Printf("FAIL %-8s baseline %.3fx but grid missing from fresh results\n", grid, baseSpeedup)
			failed = true
			continue
		}
		floor := baseSpeedup * (1 - *maxRegress)
		status := "ok"
		if freshSpeedup < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %-8s baseline %.3fx  fresh %.3fx  floor %.3fx\n",
			status, grid, baseSpeedup, freshSpeedup, floor)
	}
	if failed {
		fmt.Println("benchguard: sweep speedup regressed beyond the allowed margin")
		os.Exit(1)
	}
}

// loadSpeedups extracts the per-grid replay-sweep speedups from a
// BENCH_machine.json file (the "speedup" field of every object-valued
// top-level entry, i.e. the "serial" and "mixed" grids).
func loadSpeedups(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for key, v := range raw {
		grid, ok := v.(map[string]any)
		if !ok {
			continue
		}
		if s, ok := grid["speedup"].(float64); ok && s > 0 {
			out[key] = s
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no per-grid speedups found", path)
	}
	return out, nil
}
