// Command benchguard is the CI perf gate. It compares two freshly
// generated benchmark artifacts against their committed baselines and
// exits non-zero on a regression beyond the allowed fraction:
//
//   - BENCH_machine.json: the per-grid replay-sweep speedups must not
//     DROP by more than the margin;
//   - BENCH_compile.json: the compile path's allocs_per_compile and
//     ns_per_compile must not RISE by more than the margin;
//   - BENCH_fleet.json: the cold and warm 1-vs-2-worker fleet sweep
//     speedups must not DROP by more than the margin. Fleet speedups
//     are core-count-bound (the file records "cores"), so the gate
//     only compares runs against a baseline generated on the same CI
//     runner class;
//   - BENCH_adaptive.json: the adaptive tiering run's end-to-end
//     speedups over the fixed-aggressive and fixed-conservative
//     policies must not DROP by more than the margin. These are
//     deterministic simulated-cycle ratios, not wall clock, so any
//     drift at all is a behaviour change worth looking at;
//   - BENCH_harden.json: the per-(workload, policy) leaky-over-hardened
//     cycle ratios must not DROP by more than the margin — a drop means
//     the mitigation pass got more expensive (more fences, or fences
//     where checks used to hoist). Also deterministic simulated-cycle
//     ratios.
//
// Single-pass CI benchmark numbers are noisy, so the default margin is
// deliberately wide (25%); the guarded quantities sit far inside it on
// any runner, and only a real algorithmic regression (e.g. the batched
// replay walk falling back to per-config replays, or a per-site
// allocation sneaking into the flag-assignment loop) moves them that
// much.
//
// Usage:
//
//	benchguard -baseline BENCH_machine.baseline.json -fresh BENCH_machine.json \
//	    [-compile-baseline BENCH_compile.baseline.json -compile-fresh BENCH_compile.json] \
//	    [-fleet-baseline BENCH_fleet.baseline.json -fleet-fresh BENCH_fleet.json] \
//	    [-adaptive-baseline BENCH_adaptive.baseline.json -adaptive-fresh BENCH_adaptive.json] \
//	    [-harden-baseline BENCH_harden.baseline.json -harden-fresh BENCH_harden.json] \
//	    [-max-regress 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_machine.json to compare against")
	freshPath := flag.String("fresh", "BENCH_machine.json", "freshly generated BENCH_machine.json")
	compileBaselinePath := flag.String("compile-baseline", "", "committed BENCH_compile.json to compare against (empty = skip the compile guard)")
	compileFreshPath := flag.String("compile-fresh", "BENCH_compile.json", "freshly generated BENCH_compile.json")
	fleetBaselinePath := flag.String("fleet-baseline", "", "committed BENCH_fleet.json to compare against (empty = skip the fleet guard)")
	fleetFreshPath := flag.String("fleet-fresh", "BENCH_fleet.json", "freshly generated BENCH_fleet.json")
	adaptiveBaselinePath := flag.String("adaptive-baseline", "", "committed BENCH_adaptive.json to compare against (empty = skip the adaptive guard)")
	adaptiveFreshPath := flag.String("adaptive-fresh", "BENCH_adaptive.json", "freshly generated BENCH_adaptive.json")
	hardenBaselinePath := flag.String("harden-baseline", "", "committed BENCH_harden.json to compare against (empty = skip the harden guard)")
	hardenFreshPath := flag.String("harden-fresh", "BENCH_harden.json", "freshly generated BENCH_harden.json")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum allowed fractional regression (0.25 = 25%)")
	flag.Parse()
	if *baselinePath == "" && *compileBaselinePath == "" && *fleetBaselinePath == "" && *adaptiveBaselinePath == "" && *hardenBaselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline, -compile-baseline, -fleet-baseline, -adaptive-baseline, or -harden-baseline is required")
		os.Exit(2)
	}

	failed := false
	if *baselinePath != "" {
		ok, err := guardSpeedups(*baselinePath, *freshPath, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		failed = failed || !ok
	}
	if *compileBaselinePath != "" {
		ok, err := guardCompile(*compileBaselinePath, *compileFreshPath, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		failed = failed || !ok
	}
	if *fleetBaselinePath != "" {
		// BENCH_fleet.json has the same per-grid shape as
		// BENCH_machine.json ("cold"/"warm" objects with a "speedup"),
		// so the sweep guard applies verbatim: higher is better, a drop
		// beyond the margin fails.
		ok, err := guardSpeedups(*fleetBaselinePath, *fleetFreshPath, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		failed = failed || !ok
	}
	if *adaptiveBaselinePath != "" {
		// BENCH_adaptive.json carries its headline ratios in the same
		// object-with-"speedup" shape ("adaptive_vs_aggressive" /
		// "adaptive_vs_conservative"), so the sweep guard applies:
		// higher is better, a drop beyond the margin fails.
		ok, err := guardSpeedups(*adaptiveBaselinePath, *adaptiveFreshPath, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		failed = failed || !ok
	}
	if *hardenBaselinePath != "" {
		// BENCH_harden.json's per-(workload, policy) cells carry the
		// leaky-over-hardened cycle ratio in the same "speedup" shape, so
		// the sweep guard applies: a drop means hardening got costlier.
		ok, err := guardSpeedups(*hardenBaselinePath, *hardenFreshPath, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		failed = failed || !ok
	}
	if failed {
		fmt.Println("benchguard: benchmark regressed beyond the allowed margin")
		os.Exit(1)
	}
}

// guardSpeedups fails any grid whose fresh replay-sweep speedup fell
// below baseline·(1−margin). Higher is better here.
func guardSpeedups(baselinePath, freshPath string, margin float64) (bool, error) {
	base, err := loadSpeedups(baselinePath)
	if err != nil {
		return false, err
	}
	fresh, err := loadSpeedups(freshPath)
	if err != nil {
		return false, err
	}
	ok := true
	for grid, baseSpeedup := range base {
		freshSpeedup, found := fresh[grid]
		if !found {
			fmt.Printf("FAIL %-8s baseline %.3fx but grid missing from fresh results\n", grid, baseSpeedup)
			ok = false
			continue
		}
		floor := baseSpeedup * (1 - margin)
		status := "ok"
		if freshSpeedup < floor {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("%-4s %-8s baseline %.3fx  fresh %.3fx  floor %.3fx\n",
			status, grid, baseSpeedup, freshSpeedup, floor)
	}
	return ok, nil
}

// compileGuardKeys are the BENCH_compile.json quantities the gate
// watches. Lower is better for both, so the guard inverts: a fresh
// value above baseline·(1+margin) fails.
var compileGuardKeys = []string{"allocs_per_compile", "ns_per_compile"}

func guardCompile(baselinePath, freshPath string, margin float64) (bool, error) {
	base, err := loadCompileStats(baselinePath)
	if err != nil {
		return false, err
	}
	fresh, err := loadCompileStats(freshPath)
	if err != nil {
		return false, err
	}
	ok := true
	for _, key := range compileGuardKeys {
		baseV, freshV := base[key], fresh[key]
		if freshV == 0 {
			fmt.Printf("FAIL %-18s baseline %.1f but value missing from fresh results\n", key, baseV)
			ok = false
			continue
		}
		ceiling := baseV * (1 + margin)
		status := "ok"
		if freshV > ceiling {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("%-4s %-18s baseline %12.1f  fresh %12.1f  ceiling %12.1f\n",
			status, key, baseV, freshV, ceiling)
	}
	return ok, nil
}

// loadSpeedups extracts the per-grid replay-sweep speedups from a
// BENCH_machine.json file (the "speedup" field of every object-valued
// top-level entry, i.e. the "serial" and "mixed" grids).
func loadSpeedups(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for key, v := range raw {
		grid, ok := v.(map[string]any)
		if !ok {
			continue
		}
		if s, ok := grid["speedup"].(float64); ok && s > 0 {
			out[key] = s
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no per-grid speedups found", path)
	}
	return out, nil
}

// loadCompileStats reads the guarded scalar fields of a
// BENCH_compile.json file.
func loadCompileStats(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, key := range compileGuardKeys {
		if v, ok := raw[key].(float64); ok && v > 0 {
			out[key] = v
		}
	}
	if len(out) != len(compileGuardKeys) {
		return nil, fmt.Errorf("%s: missing compile stats (want %v)", path, compileGuardKeys)
	}
	return out, nil
}
