// Command speccoord coordinates a specd fleet: it shards sweep and
// corpus jobs across worker processes by content-addressed key (so
// identical programs land on warm nodes), dispatches with bounded
// concurrency, retry/backoff and hedged requests, and folds the
// responses into one report byte-identical to a single-node run.
//
// Usage:
//
//	speccoord -peers URL,URL [flags] -sweep            # (workload × config) grid
//	speccoord -peers URL,URL [flags] -corpus DIR       # corpus batch analysis
//
//	-peers        comma-separated specd base URLs (required)
//	-sweep        run the machine sweep grid over every registered workload
//	-workloads    comma-separated workload subset for -sweep (default all)
//	-corpus       directory of MiniC sources to analyze fleet-wide
//	-json         emit JSON instead of tables
//	-concurrency  max in-flight requests (0 = 2 per worker)
//	-retries      re-dispatches per item after a failure (default 3)
//	-backoff      first retry delay, doubling per attempt (default 100ms)
//	-hedge-after  hedge an unanswered item onto the next-ranked worker
//	              after this long (default 2s; negative = off)
//	-timeout      per-request deadline (default 120s)
//
// The corpus report's bytes are identical to
// `experiments -exp corpus -corpus DIR -json` whatever the fleet size —
// the CI fleet-smoke job diffs exactly that.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/fleet"
)

func main() { cli.Main("speccoord", run) }

func run() error {
	peers := flag.String("peers", "", "comma-separated specd base URLs (required)")
	sweep := flag.Bool("sweep", false, "run the machine-config sweep grid across the fleet")
	workloadsFlag := flag.String("workloads", "", "comma-separated workload subset for -sweep (default: all registered)")
	corpusDir := flag.String("corpus", "", "directory of MiniC sources to analyze fleet-wide")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables")
	concurrency := flag.Int("concurrency", 0, "max in-flight requests (0 = 2 per worker)")
	retries := flag.Int("retries", 3, "re-dispatches per item after a failed attempt (negative = none)")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "first retry delay, doubling per attempt")
	hedgeAfter := flag.Duration("hedge-after", 2*time.Second, "hedge an unanswered item onto the next-ranked worker after this long (negative = off)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request deadline")
	flag.Parse()
	if flag.NArg() != 0 {
		return cli.Usagef("unexpected arguments: %v", flag.Args())
	}
	if *peers == "" {
		return cli.Usagef("-peers is required")
	}
	if !*sweep && *corpusDir == "" {
		return cli.Usagef("nothing to do: pass -sweep and/or -corpus DIR")
	}
	var urls []string
	for _, p := range strings.Split(*peers, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		urls = append(urls, p)
	}
	coord, err := fleet.New(fleet.Config{
		Workers:     urls,
		Concurrency: *concurrency,
		Retries:     *retries,
		Backoff:     *backoff,
		HedgeAfter:  *hedgeAfter,
		Timeout:     *timeout,
		Logger:      log.New(os.Stderr, "speccoord ", log.LstdFlags|log.Lmsgprefix),
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *sweep {
		names := sweepNames(*workloadsFlag)
		sweeps, err := coord.SweepAll(ctx, names, nil)
		if err != nil {
			return err
		}
		if *jsonOut {
			data, err := fleet.MarshalSweeps(sweeps)
			if err != nil {
				return err
			}
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
		} else {
			for i, s := range sweeps {
				if i > 0 {
					fmt.Println()
				}
				experiments.PrintMachineSweep(os.Stdout, s.Workload, s.Points)
			}
		}
	}

	if *corpusDir != "" {
		files, err := experiments.LoadCorpusDir(*corpusDir)
		if err != nil {
			return err
		}
		rep, err := coord.Corpus(ctx, files)
		if err != nil {
			return err
		}
		if *jsonOut {
			data, err := experiments.MarshalCorpusReport(rep)
			if err != nil {
				return err
			}
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
		} else {
			experiments.PrintCorpusReport(os.Stdout, rep)
		}
	}
	return nil
}

// sweepNames resolves -workloads: empty means every registered kernel,
// in presentation order (which fixes the report's order fleet-wide).
func sweepNames(flagVal string) []string {
	if flagVal == "" {
		var names []string
		for _, w := range experiments.ListWorkloads() {
			names = append(names, w.Name)
		}
		return names
	}
	var names []string
	for _, n := range strings.Split(flagVal, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}
