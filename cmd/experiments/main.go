// Command experiments regenerates the paper's evaluation tables (§5.1
// smvp case study, Figures 10, 11, 12, and the §5.2 heuristic-vs-profile
// comparison) on the modelled SPEC2000 workloads.
//
// Usage:
//
//	experiments                 # everything
//	experiments -exp fig10      # one table: smvp|fig10|fig11|fig12|heur|ablation|machine
//	experiments -exp eval -workload equake -json
//	                            # one (workload, config) point as JSON —
//	                            # byte-identical to specd's POST /evaluate
//	experiments -exp eval -workload drift -fn-tiers hot=none -json
//	                            # the same point with functions pinned to
//	                            # adaptive tiers — byte-identical to an
//	                            # adaptive specd serving that assignment
//	experiments -exp eval -workload mcf -harden hoist -json
//	                            # the same point hardened against
//	                            # speculative leaks — byte-identical to
//	                            # specd's hardened POST /evaluate
//	experiments -exp adaptive -json
//	                            # the drifting-workload run of the adaptive
//	                            # tiering runtime (BENCH_adaptive.json)
//	experiments -exp harden -json
//	                            # the security-vs-speed tradeoff: seeded
//	                            # speculative leaks closed under the fence
//	                            # and check-hoist policies, priced by trace
//	                            # replay (BENCH_harden.json)
//	experiments -exp corpus -corpus dir/ -json
//	                            # per-alias-pattern speculation statistics
//	                            # over a directory of MiniC sources —
//	                            # byte-identical to speccoord's fleet run
//	experiments -cache-dir DIR  # persist profiles; warm runs skip profiling
//	experiments -cache-max-bytes N
//	                            # prune the disk cache to N bytes before exit
//	experiments -workers 1      # serial oracle (output is identical)
//	experiments -no-trace       # direct VM execution (skip record-and-replay)
//	experiments -cpuprofile f   # write a pprof CPU profile to f
//	experiments -memprofile f   # write a pprof heap profile to f
//
// The report bytes are identical at any -workers value, with the cache
// cold, warm, or absent, and with -no-trace; -cache-stats prints the
// cache counters to stderr so observability never perturbs the report
// itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() { cli.Main("experiments", run) }

func run() error {
	exp := flag.String("exp", "all", "experiment to run: all|smvp|fig10|fig11|fig12|heur|sensitivity|ablation|machine|threshold|adaptive|harden|eval|corpus")
	workload := flag.String("workload", "equake", "workload for -exp eval")
	evalArgs := flag.String("args", "", "comma-separated program input for -exp eval (default: the workload's reference input)")
	fnTiers := flag.String("fn-tiers", "", "comma-separated fn=tier overrides for -exp eval (tiers: aggressive|cautious|profile|none), e.g. hot=none")
	hardenPol := flag.String("harden", "", "for -exp eval: close speculative leaks post-codegen (fence|hoist)")
	corpusDir := flag.String("corpus", "", "directory of MiniC sources for -exp corpus")
	jsonOut := flag.Bool("json", false, "emit JSON instead of a table (-exp eval and -exp corpus)")
	workers := flag.Int("workers", 0, "max concurrent compilations (0 = all cores, 1 = serial oracle)")
	cacheDir := flag.String("cache-dir", "", "persist profiles/compilation artifacts under this directory across runs")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "prune the disk cache to this many bytes before exit (0 = unbounded)")
	cacheStats := flag.Bool("cache-stats", false, "print compilation-cache hit/miss counters to stderr when done")
	noTrace := flag.Bool("no-trace", false, "execute the VM directly instead of the record-and-replay trace path")
	verify := flag.Bool("verify-passes", false, "run the speculation-soundness checker after every pipeline stage of every compilation")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file when done")
	flag.Parse()

	if *cacheDir != "" {
		if err := repro.SetCacheDir(*cacheDir); err != nil {
			return err
		}
	}
	if *noTrace {
		repro.SetTraceEnabled(false)
	}
	if *verify {
		experiments.SetVerifyPasses(true)
		verifyPasses = true
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
	}

	var err error
	switch *exp {
	case "all":
		err = experiments.ReportWorkers(os.Stdout, *workers)
	case "smvp":
		var s experiments.Smvp
		s, err = experiments.RunSmvpWorkers(*workers)
		if err == nil {
			experiments.PrintSmvp(os.Stdout, s)
		}
	case "fig10", "fig11", "fig12", "heur":
		var rows []experiments.Row
		rows, err = experiments.RunAllWorkers(*workers)
		if err == nil {
			switch *exp {
			case "fig10":
				experiments.PrintFig10(os.Stdout, rows)
			case "fig11":
				experiments.PrintFig11(os.Stdout, rows)
			case "fig12":
				experiments.PrintFig12(os.Stdout, rows)
			case "heur":
				experiments.PrintHeuristic(os.Stdout, rows)
			}
		}
	case "sensitivity":
		var rows []experiments.Sensitivity
		rows, err = experiments.RunSensitivityWorkers(*workers)
		if err == nil {
			experiments.PrintSensitivity(os.Stdout, rows)
		}
	case "ablation":
		err = ablation(os.Stdout, *workers)
	case "machine":
		// hardware sensitivity sweeps on the ablation kernels — the
		// showcase of the record-and-replay path (one functional run
		// per kernel, one cheap replay per grid point)
		for _, name := range []string{"equake", "mcf"} {
			var points []experiments.MachinePoint
			points, err = experiments.RunMachineSweepWorkers(name, *workers)
			if err != nil {
				break
			}
			experiments.PrintMachineSweep(os.Stdout, name, points)
			fmt.Println()
		}
	case "threshold":
		// the cost-model speculation tradeoff: sweep the break-even
		// threshold θ on the input-sensitive kernels, one evaluation per
		// distinct build through the trace-replay path
		var sweeps []experiments.ThresholdSweep
		sweeps, err = experiments.RunThresholdSweeps(*workers)
		if err == nil && *jsonOut {
			var data []byte
			data, err = experiments.MarshalThresholdSweeps(sweeps)
			if err == nil {
				_, err = os.Stdout.Write(data)
			}
		} else if err == nil {
			for i, s := range sweeps {
				if i > 0 {
					fmt.Println()
				}
				experiments.PrintThresholdSweep(os.Stdout, s)
			}
		}
	case "adaptive":
		// the drifting-workload run of the adaptive tiering runtime:
		// serve traffic whose alias behaviour drifts away from the
		// training profile, let the tier ladder demote and re-promote,
		// and compare total cycles against both fixed extremes
		var res *experiments.AdaptiveResult
		res, err = experiments.RunAdaptiveCtx(context.Background(), *workers)
		if err == nil && *jsonOut {
			var data []byte
			data, err = experiments.MarshalAdaptive(res)
			if err == nil {
				_, err = os.Stdout.Write(data)
			}
		} else if err == nil {
			experiments.PrintAdaptive(os.Stdout, res)
		}
	case "harden":
		// the security-vs-speed tradeoff: seed an output-neutral
		// speculative leak at every unchecked speculative load of every
		// workload, close them under both mitigation policies, prove zero
		// residual through Layer 3, and price each policy by trace replay
		// (BENCH_harden.json); any undetected seed or residual leak is an
		// error, so the run doubles as the hardening smoke gate
		var res *experiments.HardenResult
		res, err = experiments.RunHardenCtx(context.Background(), *workers)
		if err == nil && *jsonOut {
			var data []byte
			data, err = experiments.MarshalHarden(res)
			if err == nil {
				_, err = os.Stdout.Write(data)
			}
		} else if err == nil {
			experiments.PrintHarden(os.Stdout, res)
		}
		if err == nil && res.TotalResidual > 0 {
			err = fmt.Errorf("%d residual leaks after hardening", res.TotalResidual)
		}
	case "eval":
		// one (workload, config) point through the same code path specd's
		// POST /evaluate uses; with -json the bytes match the service's
		// response exactly (the CI smoke job diffs them)
		err = evalOne(*workload, *evalArgs, *fnTiers, *hardenPol, *workers, *jsonOut)
	case "corpus":
		// corpus-scale batch analysis: every MiniC source under -corpus,
		// aggregated into per-alias-pattern speculation statistics; the
		// single-node oracle the fleet coordinator is diffed against
		// (speccoord emits byte-identical -json output)
		err = corpusRun(*corpusDir, *workers, *jsonOut)
	default:
		err = cli.Usagef("unknown experiment %q", *exp)
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		if perr := writeMemProfile(*memProfile); perr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", perr)
		}
	}
	if *cacheStats {
		fmt.Fprintln(os.Stderr, "cache:", repro.CacheStats(), "| profiling runs:", repro.ProfilingRuns())
	}
	if err == nil && *cacheDir != "" && *cacheMaxBytes > 0 {
		if _, perr := cache.Prune(*cacheDir, *cacheMaxBytes); perr != nil {
			return perr
		}
	}
	return err
}

// evalOne runs a single (workload, default profile-guided config)
// evaluation and renders it as JSON or a short table. args overrides
// the workload's reference input; fnTiers pins functions to adaptive
// tiers ("hot=none,aux=cautious"), reproducing the exact build — and
// with -json the exact bytes — an adaptive server served under that
// assignment; hardenPol runs the speculative-leak mitigation pass, the
// CLI twin of the server's "harden" request field.
func evalOne(name, args, fnTiers, hardenPol string, workers int, jsonOut bool) error {
	req := experiments.EvalRequest{Workload: name, Workers: workers, Harden: hardenPol}
	if args != "" {
		for _, part := range strings.Split(args, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return cli.Usagef("bad -args: %v", err)
			}
			req.Args = append(req.Args, v)
		}
	}
	if fnTiers != "" {
		req.FnTiers = map[string]string{}
		for _, pair := range strings.Split(fnTiers, ",") {
			fn, tier, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || fn == "" || tier == "" {
				return cli.Usagef("malformed -fn-tiers entry %q (want fn=tier)", pair)
			}
			req.FnTiers[fn] = tier
		}
	}
	res, err := experiments.RunEvalCtx(context.Background(), req)
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := experiments.MarshalEval(res)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	c := res.Result.Counters
	fmt.Printf("%s: cycles=%d loads=%d checks=%d failed=%d data-cycles=%d\n",
		res.Workload, c.Cycles, c.LoadsRetired, c.CheckLoads, c.FailedChecks, c.DataAccessCycles)
	return nil
}

// corpusRun aggregates speculation statistics over a directory of
// MiniC sources (see experiments.RunCorpusDirCtx).
func corpusRun(dir string, workers int, jsonOut bool) error {
	if dir == "" {
		return cli.Usagef("-exp corpus requires -corpus DIR")
	}
	rep, err := experiments.RunCorpusDirCtx(context.Background(), dir, workers)
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := experiments.MarshalCorpusReport(rep)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	experiments.PrintCorpusReport(os.Stdout, rep)
	return nil
}

// writeMemProfile snapshots the heap after a GC (so the profile shows
// live allocations, not garbage) into path.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// verifyPasses mirrors -verify-passes for the ablation sweep's direct
// repro.Compile calls (the table experiments go through
// experiments.SetVerifyPasses instead).
var verifyPasses bool

// compile wraps repro.Compile and refuses a compilation whose training
// run faulted (the silent StaticEstimate fallback would skew the
// ablation numbers).
func compile(src string, cfg repro.Config) (*repro.Compilation, error) {
	cfg.VerifyPasses = verifyPasses
	c, err := repro.Compile(src, cfg)
	if err != nil {
		return nil, err
	}
	if c.ProfileErr != nil {
		return nil, c.ProfileErr
	}
	return c, nil
}

// ablation sweeps the design choices DESIGN.md calls out on equake and
// mcf: data speculation off, control speculation off, arithmetic PRE off
// (promotion only), and ALAT capacity.
func ablation(out *os.File, workers int) error {
	kernels := []string{"equake", "mcf"}
	type cfgCase struct {
		name string
		cfg  repro.Config
	}
	for _, name := range kernels {
		w, ok := workloads.ByName(name)
		if !ok {
			return fmt.Errorf("unknown workload %s", name)
		}
		fmt.Fprintf(out, "ablation on %s (cycles on ref input):\n", name)
		cases := []cfgCase{
			{"full (profile+control spec)", repro.Config{Spec: repro.SpecProfile}},
			{"no data speculation", repro.Config{Spec: repro.SpecOff}},
			{"no control speculation", repro.Config{Spec: repro.SpecProfile, NoControlSpec: true}},
			{"loads only (no arith PRE)", repro.Config{Spec: repro.SpecProfile, NoArith: true}},
			{"no PRE at all", repro.Config{OptimizeOff: true}},
		}
		for _, c := range cases {
			c.cfg.ProfileArgs = w.ProfileArgs
			c.cfg.Workers = workers
			comp, err := compile(w.Src, c.cfg)
			if err != nil {
				return err
			}
			res, err := comp.Run(w.RefArgs)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %-28s %10d cycles, %8d plain loads, %6d checks (%d failed)\n",
				c.name, res.Counters.Cycles,
				res.Counters.LoadsRetired-res.Counters.CheckLoads,
				res.Counters.CheckLoads, res.Counters.FailedChecks)
		}
		// ALAT capacity sweep
		for _, size := range []int{4, 8, 32, 128} {
			cfg := repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs, Workers: workers}
			cfg.Machine.ALATSize = size
			comp, err := compile(w.Src, cfg)
			if err != nil {
				return err
			}
			res, err := comp.Run(w.RefArgs)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  ALAT %3d entries: %10d cycles, %6d failed checks, %6d evictions\n",
				size, res.Counters.Cycles, res.Counters.FailedChecks, res.Counters.ALATEvictions)
		}
		fmt.Fprintln(out)
	}
	return nil
}
