// Command experiments regenerates the paper's evaluation tables (§5.1
// smvp case study, Figures 10, 11, 12, and the §5.2 heuristic-vs-profile
// comparison) on the modelled SPEC2000 workloads.
//
// Usage:
//
//	experiments                 # everything
//	experiments -exp fig10      # one table: smvp|fig10|fig11|fig12|heur|ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all|smvp|fig10|fig11|fig12|heur|sensitivity|ablation")
	flag.Parse()

	var err error
	switch *exp {
	case "all":
		err = experiments.Report(os.Stdout)
	case "smvp":
		var s experiments.Smvp
		s, err = experiments.RunSmvp()
		if err == nil {
			experiments.PrintSmvp(os.Stdout, s)
		}
	case "fig10", "fig11", "fig12", "heur":
		var rows []experiments.Row
		rows, err = experiments.RunAll()
		if err == nil {
			switch *exp {
			case "fig10":
				experiments.PrintFig10(os.Stdout, rows)
			case "fig11":
				experiments.PrintFig11(os.Stdout, rows)
			case "fig12":
				experiments.PrintFig12(os.Stdout, rows)
			case "heur":
				experiments.PrintHeuristic(os.Stdout, rows)
			}
		}
	case "sensitivity":
		var rows []experiments.Sensitivity
		rows, err = experiments.RunSensitivity()
		if err == nil {
			experiments.PrintSensitivity(os.Stdout, rows)
		}
	case "ablation":
		err = ablation(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// ablation sweeps the design choices DESIGN.md calls out on equake and
// mcf: data speculation off, control speculation off, arithmetic PRE off
// (promotion only), and ALAT capacity.
func ablation(out *os.File) error {
	kernels := []string{"equake", "mcf"}
	type cfgCase struct {
		name string
		cfg  repro.Config
	}
	for _, name := range kernels {
		w, ok := workloads.ByName(name)
		if !ok {
			return fmt.Errorf("unknown workload %s", name)
		}
		fmt.Fprintf(out, "ablation on %s (cycles on ref input):\n", name)
		cases := []cfgCase{
			{"full (profile+control spec)", repro.Config{Spec: repro.SpecProfile}},
			{"no data speculation", repro.Config{Spec: repro.SpecOff}},
			{"no control speculation", repro.Config{Spec: repro.SpecProfile, NoControlSpec: true}},
			{"loads only (no arith PRE)", repro.Config{Spec: repro.SpecProfile, NoArith: true}},
			{"no PRE at all", repro.Config{OptimizeOff: true}},
		}
		for _, c := range cases {
			c.cfg.ProfileArgs = w.ProfileArgs
			comp, err := repro.Compile(w.Src, c.cfg)
			if err != nil {
				return err
			}
			res, err := comp.Run(w.RefArgs)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %-28s %10d cycles, %8d plain loads, %6d checks (%d failed)\n",
				c.name, res.Counters.Cycles,
				res.Counters.LoadsRetired-res.Counters.CheckLoads,
				res.Counters.CheckLoads, res.Counters.FailedChecks)
		}
		// ALAT capacity sweep
		for _, size := range []int{4, 8, 32, 128} {
			cfg := repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs}
			cfg.Machine = machine.Defaults()
			cfg.Machine.ALATSize = size
			comp, err := repro.Compile(w.Src, cfg)
			if err != nil {
				return err
			}
			res, err := comp.Run(w.RefArgs)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  ALAT %3d entries: %10d cycles, %6d failed checks, %6d evictions\n",
				size, res.Counters.Cycles, res.Counters.FailedChecks, res.Counters.ALATEvictions)
		}
		fmt.Fprintln(out)
	}
	return nil
}
