// Command speclint is the speculation-soundness verifier's front end:
// it compiles MiniC programs with the per-pass checker enabled
// (internal/specheck) and reports every violation with the pipeline
// stage that introduced it. With no file arguments it sweeps the
// bundled workloads across the full speculation-mode matrix — the CI
// gate that the optimizer never emits an unchecked speculative load.
//
// Usage:
//
//	speclint [flags] [file.mc ...]
//
//	-spec     off|profile|heuristic|cost|all   mode(s) to verify under (default all)
//	-train    1,2,3                       training input for explicit files
//	-sched                                also verify the instruction scheduler
//	-workers  N                           pipeline parallelism (0 = all cores)
//	-mutants                              run the mutation power suite instead:
//	                                      every seeded soundness bug must be caught
//	-leaks                                run the Layer 3 speculative-leak sweep
//	                                      instead: per-site leak table over the
//	                                      workload × spec-mode matrix
//	-harden   fence|hoist                 with -leaks: mitigate each leaky build
//	                                      and re-check (the gate then demands
//	                                      zero residual rather than zero leaks)
//
// Exit status: 0 all clean (or all mutants caught, or all leaks closed
// under -harden), 1 violations/leaks found (or a mutant escaped, or a
// residual leak survived hardening), 2 usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/harden"
	"repro/internal/specheck"
	"repro/internal/specheck/mutate"
	"repro/internal/workloads"
)

func main() { cli.Main("speclint", run) }

func parseArgs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func run() error {
	spec := flag.String("spec", "all", "data speculation mode(s): off|profile|heuristic|cost|all")
	train := flag.String("train", "", "comma-separated training input for explicit source files")
	sched := flag.Bool("sched", false, "also verify the instruction scheduler")
	workers := flag.Int("workers", 0, "pipeline parallelism (0 = all cores)")
	mutants := flag.Bool("mutants", false, "run the mutation power suite (detection, not cleanliness)")
	leaksMode := flag.Bool("leaks", false, "run the Layer 3 speculative-leak sweep (per-site leak table)")
	hardenPol := flag.String("harden", "", "with -leaks: mitigation policy to apply and re-check (fence|hoist)")
	flag.Parse()

	if *mutants {
		return runMutants()
	}
	if *hardenPol != "" && !*leaksMode {
		return cli.Usagef("-harden requires -leaks")
	}
	if *hardenPol != "" {
		if _, err := harden.ParsePolicy(*hardenPol); err != nil {
			return cli.Usagef("%v", err)
		}
	}

	var modes []repro.SpecMode
	switch *spec {
	case "off":
		modes = []repro.SpecMode{repro.SpecOff}
	case "profile":
		modes = []repro.SpecMode{repro.SpecProfile}
	case "heuristic":
		modes = []repro.SpecMode{repro.SpecHeuristic}
	case "cost":
		modes = []repro.SpecMode{repro.SpecCost}
	case "all":
		modes = []repro.SpecMode{repro.SpecOff, repro.SpecProfile, repro.SpecHeuristic, repro.SpecCost}
	default:
		return cli.Usagef("unknown -spec %q", *spec)
	}

	trainArgs, err := parseArgs(*train)
	if err != nil {
		return cli.Usagef("bad -train: %v", err)
	}

	type unit struct {
		name  string
		src   string
		train []int64
	}
	var units []unit
	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			units = append(units, unit{name: path, src: string(data), train: trainArgs})
		}
	} else {
		for _, w := range workloads.All() {
			units = append(units, unit{name: w.Name, src: w.Src, train: w.ProfileArgs})
		}
	}

	if *leaksMode {
		var lus []leakUnit
		for _, u := range units {
			lus = append(lus, leakUnit{name: u.name, src: u.src, train: u.train})
		}
		return runLeaks(lus, modes, *hardenPol, *sched, *workers)
	}

	checked, dirty := 0, 0
	for _, u := range units {
		for _, mode := range modes {
			cfg := repro.Config{
				Spec:         mode,
				ProfileArgs:  u.train,
				Schedule:     *sched,
				Workers:      *workers,
				VerifyPasses: true,
			}
			checked++
			_, err := repro.Compile(u.src, cfg)
			if err == nil {
				continue
			}
			var se *specheck.Error
			if !errors.As(err, &se) {
				return fmt.Errorf("%s (spec=%s): %w", u.name, mode, err)
			}
			dirty++
			for _, v := range se.Violations {
				fmt.Printf("%s (spec=%s): %s\n", u.name, mode, v)
			}
		}
	}
	if dirty > 0 {
		return &cli.ExitError{Code: 1, Err: fmt.Errorf("%d of %d builds dirty", dirty, checked)}
	}
	fmt.Printf("speclint: %d builds verified clean\n", checked)
	return nil
}

type leakUnit struct {
	name  string
	src   string
	train []int64
}

// runLeaks is the Layer 3 surface: it compiles every unit under every
// requested speculation mode, runs the speculative-leak taint analysis
// over the generated code, and prints one table row per leak site —
// the tainting advanced load, the sink it reaches, the sink kind and
// the unchecked path length. With a -harden policy it then mitigates
// each leaky build and reports the post-mitigation re-check; the gate
// becomes zero residual instead of zero leaks.
func runLeaks(units []leakUnit, modes []repro.SpecMode, pol string, sched bool, workers int) error {
	checked, leaksTotal, residualTotal := 0, 0, 0
	fmt.Printf("%-10s %-10s %-14s %6s %6s %-8s %5s\n",
		"unit", "mode", "func", "load", "sink", "kind", "path")
	for _, u := range units {
		for _, mode := range modes {
			cfg := repro.Config{
				Spec:        mode,
				ProfileArgs: u.train,
				Schedule:    sched,
				Workers:     workers,
			}
			checked++
			c, err := repro.Compile(u.src, cfg)
			if err != nil {
				return fmt.Errorf("%s (spec=%s): %w", u.name, mode, err)
			}
			leaks := specheck.FindLeaks(c.Code)
			leaksTotal += len(leaks)
			for _, l := range leaks {
				fmt.Printf("%-10s %-10s %-14s %6d %6d %-8s %5d\n",
					u.name, mode.String(), l.Fn, l.Load, l.Sink, l.Kind, l.PathLen)
			}
			if pol == "" || len(leaks) == 0 {
				continue
			}
			policy, _ := harden.ParsePolicy(pol)
			hardened := c.Code.Clone()
			rep, err := harden.Apply(hardened, policy)
			if err != nil {
				return fmt.Errorf("%s (spec=%s): %w", u.name, mode, err)
			}
			res := len(specheck.FindLeaks(hardened))
			residualTotal += res
			fmt.Printf("%-10s %-10s harden(%s): %d closed (%d fences, %d hoisted), %d residual\n",
				u.name, mode.String(), policy, rep.LeaksFound, rep.FencesInserted, rep.ChecksHoisted, res)
		}
	}
	switch {
	case pol == "" && leaksTotal > 0:
		return &cli.ExitError{Code: 1, Err: fmt.Errorf("%d speculative leaks across %d builds", leaksTotal, checked)}
	case residualTotal > 0:
		return &cli.ExitError{Code: 1, Err: fmt.Errorf("%d residual leaks after %s hardening", residualTotal, pol)}
	}
	if pol != "" && leaksTotal > 0 {
		fmt.Printf("speclint: %d builds checked, %d leaks all closed by %s\n", checked, leaksTotal, pol)
	} else {
		fmt.Printf("speclint: %d builds leak-free\n", checked)
	}
	return nil
}

// runMutants is the power half of the verifier's own verification: it
// seeds every mutator at every applicable site of the benchmark
// kernels and demands the checker catch each one (the cleanliness half
// is the default sweep above). Mirrors the mutate package's test so CI
// can run it against a built binary.
func runMutants() error {
	kernels := []string{"equake", "mcf"}
	total, escaped := 0, 0
	for _, m := range mutate.All() {
		applied := 0
		for _, name := range kernels {
			w, ok := workloads.ByName(name)
			if !ok {
				return fmt.Errorf("workload %s missing", name)
			}
			probe, err := mutate.Build(w.Src, w.ProfileArgs, m.Stage)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			sites := m.Sites(probe)
			for site := 0; site < sites; site++ {
				tgt, err := mutate.Build(w.Src, w.ProfileArgs, m.Stage)
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				total++
				applied++
				if vs := m.Run(tgt, site); len(vs) == 0 {
					escaped++
					fmt.Printf("ESCAPED %s site %d on %s: %s\n", m.Name, site, name, m.Doc)
				}
			}
		}
		if applied == 0 {
			escaped++
			fmt.Printf("INAPPLICABLE %s: no sites on any kernel — blind spot\n", m.Name)
		}
	}
	if escaped > 0 {
		return &cli.ExitError{Code: 1, Err: fmt.Errorf("%d of %d mutants escaped detection", escaped, total)}
	}
	fmt.Printf("speclint: all %d seeded mutants detected\n", total)
	return nil
}
