package repro_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro"
	"repro/internal/harden"
	"repro/internal/machine"
	"repro/internal/specheck"
)

// progGen generates random — but always well-defined — MiniC programs:
// power-of-two arrays indexed through mask expressions (never out of
// bounds), non-zero constant divisors, bounded loops. Every generated
// program prints a checksum, so output equivalence between the reference
// interpreter and the optimized VM build is a meaningful oracle.
type progGen struct {
	rng       *rand.Rand
	sb        strings.Builder
	depth     int
	locals    []string // int locals in scope
	fpLocal   []string // double locals in scope
	arrays    []arrayInfo
	ptrs      []string        // int* locals in scope
	funcs     []string        // helper functions (int f(int))
	loopVars  map[string]bool // read-only (assigning could unbound the loop)
	loopDepth int
}

type arrayInfo struct {
	name string
	size int // power of two
}

func newProgGen(seed int64) *progGen {
	return &progGen{rng: rand.New(rand.NewSource(seed)), loopVars: map[string]bool{}}
}

func (g *progGen) w(format string, args ...any) {
	fmt.Fprintf(&g.sb, format, args...)
}

// expr produces an int expression from locals, constants and array reads.
func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(41)-20)
		default:
			if len(g.locals) > 0 {
				return g.locals[g.rng.Intn(len(g.locals))]
			}
			return fmt.Sprintf("%d", g.rng.Intn(9))
		}
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s / %d)", g.expr(depth-1), 1+g.rng.Intn(7))
	case 4:
		return fmt.Sprintf("(%s < %s)", g.expr(depth-1), g.expr(depth-1))
	case 5:
		if len(g.arrays) > 0 {
			a := g.arrays[g.rng.Intn(len(g.arrays))]
			return fmt.Sprintf("%s[%s & %d]", a.name, g.expr(depth-1), a.size-1)
		}
		return g.expr(depth - 1)
	case 6:
		if len(g.ptrs) > 0 {
			return fmt.Sprintf("*%s", g.ptrs[g.rng.Intn(len(g.ptrs))])
		}
		return g.expr(depth - 1)
	default:
		if len(g.funcs) > 0 && depth >= 2 {
			return fmt.Sprintf("%s(%s)", g.funcs[g.rng.Intn(len(g.funcs))], g.expr(depth-1))
		}
		return fmt.Sprintf("(%s ^ %s)", g.expr(depth-1), g.expr(depth-1))
	}
}

// stmt emits one statement; budget bounds recursion.
func (g *progGen) stmt(indent string, budget *int) {
	if *budget <= 0 {
		return
	}
	*budget--
	switch g.rng.Intn(11) {
	case 0, 1: // new local
		name := fmt.Sprintf("v%d", len(g.locals)+g.rng.Intn(1000)*1000)
		g.w("%sint %s = %s;\n", indent, name, g.expr(2))
		g.locals = append(g.locals, name)
	case 2, 3: // assign to local (never to a loop variable)
		if len(g.locals) > 0 {
			l := g.locals[g.rng.Intn(len(g.locals))]
			if g.loopVars[l] {
				return
			}
			op := []string{"=", "+=", "-=", "*=", "^=", "|="}[g.rng.Intn(6)]
			g.w("%s%s %s %s;\n", indent, l, op, g.expr(2))
		}
	case 4: // array store
		if len(g.arrays) > 0 {
			a := g.arrays[g.rng.Intn(len(g.arrays))]
			g.w("%s%s[%s & %d] = %s;\n", indent, a.name, g.expr(1), a.size-1, g.expr(2))
		}
	case 5: // pointer write
		if len(g.ptrs) > 0 {
			g.w("%s*%s = %s;\n", indent, g.ptrs[g.rng.Intn(len(g.ptrs))], g.expr(2))
		}
	case 6: // new pointer into an array
		if len(g.arrays) > 0 {
			a := g.arrays[g.rng.Intn(len(g.arrays))]
			name := fmt.Sprintf("p%d", g.rng.Intn(100000))
			g.w("%sint *%s = &%s[%s & %d];\n", indent, name, a.name, g.expr(1), a.size-1)
			g.ptrs = append(g.ptrs, name)
		}
	case 7: // if/else (declarations are scoped to each branch)
		g.w("%sif (%s) {\n", indent, g.expr(2))
		nl, np, nf := len(g.locals), len(g.ptrs), len(g.fpLocal)
		inner := 1 + g.rng.Intn(3)
		for i := 0; i < inner && *budget > 0; i++ {
			g.stmt(indent+"\t", budget)
		}
		g.locals, g.ptrs, g.fpLocal = g.locals[:nl], g.ptrs[:np], g.fpLocal[:nf]
		if g.rng.Intn(2) == 0 {
			g.w("%s} else {\n", indent)
			for i := 0; i < 2 && *budget > 0; i++ {
				g.stmt(indent+"\t", budget)
			}
			g.locals, g.ptrs, g.fpLocal = g.locals[:nl], g.ptrs[:np], g.fpLocal[:nf]
		}
		g.w("%s}\n", indent)
	case 9: // double local / double update
		if g.rng.Intn(2) == 0 || len(g.fpLocal) == 0 {
			name := fmt.Sprintf("d%d", g.rng.Intn(100000))
			g.w("%sdouble %s = (double)(%s) * 0.5;\n", indent, name, g.expr(1))
			g.fpLocal = append(g.fpLocal, name)
		} else {
			d := g.fpLocal[g.rng.Intn(len(g.fpLocal))]
			g.w("%s%s += (double)(%s) + 0.25;\n", indent, d, g.expr(1))
		}
	case 8: // bounded for loop (declarations scoped to the body)
		if g.loopDepth >= 2 {
			return
		}
		g.loopDepth++
		iv := fmt.Sprintf("i%d", g.rng.Intn(100000))
		n := 2 + g.rng.Intn(12)
		g.w("%sfor (int %s = 0; %s < %d; %s++) {\n", indent, iv, iv, n, iv)
		nl, np, nf := len(g.locals), len(g.ptrs), len(g.fpLocal)
		g.locals = append(g.locals, iv)
		g.loopVars[iv] = true
		inner := 1 + g.rng.Intn(3)
		for i := 0; i < inner && *budget > 0; i++ {
			g.stmt(indent+"\t", budget)
		}
		g.w("%s}\n", indent)
		g.locals, g.ptrs, g.fpLocal = g.locals[:nl], g.ptrs[:np], g.fpLocal[:nf]
		delete(g.loopVars, iv)
		g.loopDepth--
	default: // nothing / print progress value
		if len(g.locals) > 0 {
			g.w("%sprint(%s);\n", indent, g.locals[g.rng.Intn(len(g.locals))])
		}
	}
}

// generate builds a whole program.
func (g *progGen) generate() string {
	nArrays := 1 + g.rng.Intn(3)
	for i := 0; i < nArrays; i++ {
		size := 1 << (2 + g.rng.Intn(4)) // 4..32
		name := fmt.Sprintf("G%d", i)
		g.w("int %s[%d];\n", name, size)
		g.arrays = append(g.arrays, arrayInfo{name: name, size: size})
	}
	g.w("int gscalar = %d;\n", g.rng.Intn(100))

	// helper functions
	nFuncs := g.rng.Intn(3)
	for i := 0; i < nFuncs; i++ {
		name := fmt.Sprintf("helper%d", i)
		save := g.locals
		savePtrs := g.ptrs
		saveFP := g.fpLocal
		g.locals = []string{"x"}
		g.ptrs = nil
		g.fpLocal = nil
		g.w("int %s(int x) {\n", name)
		budget := 4
		for b := 0; b < 2; b++ {
			g.stmt("\t", &budget)
		}
		g.w("\treturn %s;\n}\n", g.expr(2))
		g.locals = save
		g.ptrs = savePtrs
		g.fpLocal = saveFP
		g.funcs = append(g.funcs, name)
	}

	g.w("int main() {\n")
	g.w("\tint seed = arg(0);\n")
	g.locals = append(g.locals, "seed", "gscalar")
	// initialize arrays deterministically
	for _, a := range g.arrays {
		g.w("\tfor (int z = 0; z < %d; z++) %s[z] = (z * 7 + seed) %% 97;\n", a.size, a.name)
	}
	budget := 14 + g.rng.Intn(12)
	for budget > 0 {
		g.stmt("\t", &budget)
	}
	// checksum everything observable
	g.w("\tint check = gscalar;\n")
	for _, a := range g.arrays {
		g.w("\tfor (int z = 0; z < %d; z++) check += %s[z] * (z + 1);\n", a.size, a.name)
	}
	for _, l := range g.locals {
		g.w("\tcheck ^= %s;\n", l)
	}
	g.w("\tdouble fcheck = (double)check;\n")
	for _, d := range g.fpLocal {
		g.w("\tfcheck += %s;\n", d)
	}
	g.w("\tprint(check, fcheck);\n\treturn 0;\n}\n")
	return g.sb.String()
}

// TestFuzzEquivalence generates random programs and checks that every
// optimization configuration preserves the reference interpreter's output
// on several inputs, including inputs different from the profiled one.
// Every build also runs with VerifyPasses, so each fuzzed program is a
// soundness probe for the per-pass speculation checker: a specheck
// violation surfaces as a compile error and fails the test.
func TestFuzzEquivalence(t *testing.T) {
	pipelined := machine.Defaults()
	pipelined.Pipelined = true
	tinyALAT := machine.Defaults()
	tinyALAT.ALATSize = 2 // constant eviction pressure: every check recovery path
	configs := []repro.Config{
		{OptimizeOff: true},
		{Spec: repro.SpecOff},
		{Spec: repro.SpecProfile},
		{Spec: repro.SpecHeuristic},
		{AggressivePromotion: true},
		{Spec: repro.SpecProfile, Schedule: true, Machine: pipelined},
		{AggressivePromotion: true, Machine: tinyALAT},
		{Spec: repro.SpecProfile, Harden: "fence"},
		{Spec: repro.SpecHeuristic, Harden: "hoist", Schedule: true, Machine: pipelined},
	}
	count := 60
	if testing.Short() {
		count = 15
	}
	cfgQ := &quick.Config{MaxCount: count}
	err := quick.Check(func(seed int64) bool {
		src := newProgGen(seed).generate()
		want := map[int64]string{}
		for _, input := range []int64{0, 3, 41} {
			ref, err := repro.Reference(src, []int64{input})
			if err != nil {
				// generated programs are well-defined by construction;
				// any error is a generator bug worth knowing about
				t.Fatalf("seed %d input %d: reference failed: %v\n%s", seed, input, err, src)
			}
			want[input] = ref.Output
		}
		for ci, cfg := range configs {
			cfg.ProfileArgs = []int64{3}
			cfg.VerifyPasses = true
			c, err := repro.Compile(src, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %d: compile: %v\n%s", seed, ci, err, src)
			}
			// every generated program goes through the Layer 3 leak
			// analysis; hardened builds must come out leak-free, and
			// whatever leaks an un-hardened build carries must be
			// closable by the mitigation pass without changing output
			leaks := specheck.FindLeaks(c.Code)
			if cfg.Harden != "" && len(leaks) > 0 {
				t.Fatalf("seed %d cfg %d: %d residual leaks on hardened build\n%s", seed, ci, len(leaks), src)
			}
			if cfg.Harden == "" && len(leaks) > 0 {
				hardened := c.Code.Clone()
				if _, err := harden.Apply(hardened, harden.PolicyFence); err != nil {
					t.Fatalf("seed %d cfg %d: harden: %v\n%s", seed, ci, err, src)
				}
				var sb strings.Builder
				if _, err := machine.Run(hardened, []int64{41}, machine.Defaults(), &sb); err != nil {
					t.Fatalf("seed %d cfg %d: hardened run: %v\n%s", seed, ci, err, src)
				}
				if sb.String() != want[41] {
					t.Logf("seed %d cfg %d: hardening changed output\n got: %q\nwant: %q\nprogram:\n%s",
						seed, ci, sb.String(), want[41], src)
					return false
				}
			}
			for _, input := range []int64{0, 3, 41} {
				got, err := c.Run([]int64{input})
				if err != nil {
					t.Fatalf("seed %d cfg %d input %d: run: %v\n%s", seed, ci, input, err, src)
				}
				if got.Output != want[input] {
					t.Logf("seed %d cfg %d input %d: MISMATCH\n got: %q\nwant: %q\nprogram:\n%s",
						seed, ci, input, got.Output, want[input], src)
					return false
				}
			}
		}
		return true
	}, cfgQ)
	if err != nil {
		t.Fatal(err)
	}
}

// TestFuzzBatchedReplay drives the batched timing engine with generated
// programs: for each fuzzed source, record one trace of the optimized
// code and check that a single ReplayBatch over a mixed serial/pipelined
// grid (with duplicated points and ALAT pressure) agrees field-for-field
// with per-config Replay. This catches batch-only divergences — lane
// cross-talk in the shared scoreboards, ALAT-table sharing across sizes
// — on control flow no hand-written workload exercises.
func TestFuzzBatchedReplay(t *testing.T) {
	grid := []machine.Config{
		{},
		{Pipelined: true},
		{Pipelined: true, ALATSize: 2},
		{Pipelined: true, ALATSize: 128},
		{Pipelined: true, IntLoadLat: 8, FPLoadLat: 24, CheckMissPen: 16},
		{Pipelined: true}, // duplicate lane
		{ALATSize: 2},
	}
	count := 30
	if testing.Short() {
		count = 8
	}
	cfgQ := &quick.Config{MaxCount: count}
	err := quick.Check(func(seed int64) bool {
		src := newProgGen(seed).generate()
		c, err := repro.Compile(src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: []int64{3}})
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		tr, err := machine.Record(c.Code, []int64{41}, machine.Config{})
		if err != nil {
			t.Fatalf("seed %d: record: %v\n%s", seed, err, src)
		}
		batch, err := machine.ReplayBatch(c.Code, tr, grid)
		if err != nil {
			t.Fatalf("seed %d: batch: %v\n%s", seed, err, src)
		}
		for i, mcfg := range grid {
			single, err := machine.Replay(c.Code, tr, mcfg, nil)
			if err != nil {
				t.Fatalf("seed %d cfg %d: replay: %v\n%s", seed, i, err, src)
			}
			if !reflect.DeepEqual(single, batch[i]) {
				t.Logf("seed %d cfg %+v: batch diverges\nreplay %+v\nbatch  %+v\nprogram:\n%s",
					seed, mcfg, single, batch[i], src)
				return false
			}
		}
		return true
	}, cfgQ)
	if err != nil {
		t.Fatal(err)
	}
}

// nearMissPrograms are hand-seeded programs shaped like the soundness
// bugs the checker exists to catch: an always-aliasing store between a
// hoistable load and its reuse, a check whose address is recomputed
// through a CSE'd temp, stacked re-loads of the same location after a
// kill, and a may-alias store reachable on only one CFG path. A correct
// pipeline must compile every one of them specheck-clean in every mode
// AND preserve reference output — these sit as close to the unsound
// boundary as a well-defined program can.
var nearMissPrograms = []struct{ name, src string }{
	{"store-between-load-and-reuse", `
int A[8];
int main() {
	int n = arg(0);
	int *p = &A[3];
	int total = 0;
	for (int i = 0; i < n + 4; i++) {
		total += A[3];
		*p = total % 19;
		total += A[3];
	}
	print(total);
	return 0;
}`},
	{"cse-address-recompute", `
int A[16];
int main() {
	int n = arg(0);
	int total = 0;
	for (int i = 0; i < n + 6; i++) {
		int j = (i * 5) & 15;
		total += A[j];
		A[(j + 8) & 15] = total % 31;
		total += A[j] + A[(i * 5) & 15];
	}
	print(total);
	return 0;
}`},
	{"stacked-reload-after-kill", `
int A[8];
int B[8];
int main() {
	int n = arg(0);
	int *p = &A[2];
	if (n > 5) p = &B[2];
	int total = 0;
	for (int i = 0; i < 9; i++) {
		total += A[2];
		total += A[2] + B[2];
		*p = total % 23;
		total += A[2] + B[2];
		total += A[2];
	}
	print(total);
	return 0;
}`},
	{"one-path-may-alias-store", `
int A[8];
int main() {
	int n = arg(0);
	int *p = &A[1];
	int total = 0;
	for (int i = 0; i < n + 7; i++) {
		int v = A[1];
		if (i & 1) {
			*p = v % 13;
		} else {
			total += v * 3;
		}
		total += A[1] + v;
	}
	print(total);
	return 0;
}`},
}

// TestSpecheckNearMiss compiles each seeded near-miss program under the
// full mode matrix with VerifyPasses and cross-checks outputs against
// the reference on an input the profile never saw.
func TestSpecheckNearMiss(t *testing.T) {
	modes := []repro.Config{
		{Spec: repro.SpecOff},
		{Spec: repro.SpecProfile},
		{Spec: repro.SpecHeuristic},
		{AggressivePromotion: true},
		{Spec: repro.SpecProfile, Schedule: true},
	}
	for _, p := range nearMissPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			for ci, cfg := range modes {
				cfg.ProfileArgs = []int64{2}
				cfg.VerifyPasses = true
				c, err := repro.Compile(p.src, cfg)
				if err != nil {
					t.Fatalf("cfg %d: %v", ci, err)
				}
				for _, input := range []int64{0, 2, 9} {
					ref, err := repro.Reference(p.src, []int64{input})
					if err != nil {
						t.Fatalf("reference(%d): %v", input, err)
					}
					got, err := c.Run([]int64{input})
					if err != nil {
						t.Fatalf("cfg %d input %d: %v", ci, input, err)
					}
					if got.Output != ref.Output {
						t.Fatalf("cfg %d input %d: got %q want %q", ci, input, got.Output, ref.Output)
					}
				}
			}
		})
	}
}

// leakNearMissPrograms are hand-seeded sources shaped like speculative
// leaks — a speculatively-promoted load whose value wants to reach an
// address computation or a branch — but arranged so a correct pipeline
// can (and on the bundled compiler, does) keep the sink behind the
// check: the reuse that feeds the sink sits after the point where the
// ld.c lands, taint is laundered through arithmetic only after the
// check, or the tempting path re-loads through a check of its own.
// They probe the boundary Layer 3 draws; the test accepts either
// verdict but insists it is consistent — a clean program stays clean,
// and a leaky placement is fully closable by both mitigation policies
// with reference output preserved.
var leakNearMissPrograms = []struct{ name, src string }{
	{"checked-before-address-sink", `
int A[16];
int B[16];
int main() {
	int n = arg(0);
	int *p = &A[5];
	int total = 0;
	for (int i = 0; i < n + 6; i++) {
		int v = A[5];
		*p = (total + i) % 29;
		total += B[A[5] & 15] + v;
	}
	print(total);
	return 0;
}`},
	{"laundered-after-check", `
int A[8];
int main() {
	int n = arg(0);
	int *p = &A[2];
	int total = 0;
	for (int i = 0; i < n + 5; i++) {
		int v = A[2];
		*p = (v + i) % 17;
		int w = A[2] * 3 + 1;
		if (w & 1) {
			total += w;
		} else {
			total -= 1;
		}
	}
	print(total);
	return 0;
}`},
	{"one-path-dominating-check", `
int A[8];
int main() {
	int n = arg(0);
	int *p = &A[4];
	int total = 0;
	for (int i = 0; i < n + 6; i++) {
		int v = A[4];
		*p = (total ^ i) % 21;
		if (i & 1) {
			total += A[4];
		}
		total += (A[4] & 7) + v;
	}
	print(total);
	return 0;
}`},
}

// TestLeakNearMiss compiles each near-miss leak program under the mode
// matrix, runs Layer 3 on the generated code, and checks the verdict is
// actionable: hardened variants of any leaky placement must verify
// leak-free under BOTH policies and still match the reference output on
// an input the profile never saw.
func TestLeakNearMiss(t *testing.T) {
	modes := []repro.Config{
		{Spec: repro.SpecOff},
		{Spec: repro.SpecProfile},
		{Spec: repro.SpecHeuristic},
		{AggressivePromotion: true},
		{Spec: repro.SpecProfile, Schedule: true},
	}
	for _, p := range leakNearMissPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			for ci, cfg := range modes {
				cfg.ProfileArgs = []int64{2}
				cfg.VerifyPasses = true
				c, err := repro.Compile(p.src, cfg)
				if err != nil {
					t.Fatalf("cfg %d: %v", ci, err)
				}
				ref, err := repro.Reference(p.src, []int64{9})
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				got, err := c.Run([]int64{9})
				if err != nil {
					t.Fatalf("cfg %d: run: %v", ci, err)
				}
				if got.Output != ref.Output {
					t.Fatalf("cfg %d: got %q want %q", ci, got.Output, ref.Output)
				}
				leaks := specheck.FindLeaks(c.Code)
				if len(leaks) == 0 {
					continue // clean placement: the common verdict
				}
				t.Logf("cfg %d: %d leak(s), e.g. %s", ci, len(leaks), leaks[0])
				for _, pol := range []harden.Policy{harden.PolicyFence, harden.PolicyHoist} {
					hardened := c.Code.Clone()
					rep, err := harden.Apply(hardened, pol)
					if err != nil {
						t.Fatalf("cfg %d %s: %v", ci, pol, err)
					}
					if res := specheck.FindLeaks(hardened); len(res) > 0 {
						t.Fatalf("cfg %d %s: %d residual leaks", ci, pol, len(res))
					}
					if rep.FencesInserted+rep.ChecksHoisted == 0 {
						t.Fatalf("cfg %d %s: leaks closed without mitigations?", ci, pol)
					}
					var sb strings.Builder
					if _, err := machine.Run(hardened, []int64{9}, machine.Defaults(), &sb); err != nil {
						t.Fatalf("cfg %d %s: hardened run: %v", ci, pol, err)
					}
					if sb.String() != ref.Output {
						t.Fatalf("cfg %d %s: hardened output %q want %q", ci, pol, sb.String(), ref.Output)
					}
				}
			}
		})
	}
}

// TestFuzzCheckRecovery stresses the ALAT recovery path: programs with
// guaranteed-aliasing pointer writes inside loops, trained on a different
// input than they run on.
func TestFuzzCheckRecovery(t *testing.T) {
	count := 40
	if testing.Short() {
		count = 10
	}
	cfgQ := &quick.Config{MaxCount: count}
	err := quick.Check(func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 8
		// a program whose pointer aliases one of two arrays depending on
		// the input — the profile only ever sees one side
		src := fmt.Sprintf(`
int A[%d];
int B[%d];
int main() {
	int mode = arg(0);
	int n = arg(1);
	int *p = &A[%d];
	if (mode) p = &B[%d];
	int total = 0;
	for (int i = 0; i < n; i++) {
		total += B[%d] + A[%d];
		*p = total %% 50;
		total += B[%d];
	}
	print(total);
	return 0;
}`, size, size, rng.Intn(size), rng.Intn(size), rng.Intn(size), rng.Intn(size), rng.Intn(size))
		trainMode := int64(pick % 2)
		c, err := repro.Compile(src, repro.Config{
			Spec: repro.SpecProfile, ProfileArgs: []int64{trainMode, 6},
		})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		for _, mode := range []int64{0, 1} {
			args := []int64{mode, 37}
			ref, err := repro.Reference(src, args)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := c.Run(args)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if got.Output != ref.Output {
				t.Logf("seed %d trained=%d ran=%d: %q != %q\n%s",
					seed, trainMode, mode, got.Output, ref.Output, src)
				return false
			}
		}
		return true
	}, cfgQ)
	if err != nil {
		t.Fatal(err)
	}
}
