package repro_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// The tests in this file pin the determinism contract of the parallel
// pipeline: Workers=1 runs the serial code paths bit-for-bit and is the
// oracle; any other worker count must produce identical optimizer stats,
// identical machine code, and identical VM counters.

func compileAt(t *testing.T, w workloads.Workload, cfg repro.Config, workers int) (*repro.Compilation, *machine.Result) {
	t.Helper()
	cfg.ProfileArgs = w.ProfileArgs
	cfg.Workers = workers
	c, err := repro.Compile(w.Src, cfg)
	if err != nil {
		t.Fatalf("compile %s workers=%d: %v", w.Name, workers, err)
	}
	res, err := c.Run(w.RefArgs)
	if err != nil {
		t.Fatalf("run %s workers=%d: %v", w.Name, workers, err)
	}
	return c, res
}

// TestCompileParallelDeterminism compiles kernels serially and with 8
// workers and compares every observable artifact of the compilation.
func TestCompileParallelDeterminism(t *testing.T) {
	cfgs := map[string]repro.Config{
		"profile":   {Spec: repro.SpecProfile},
		"heuristic": {Spec: repro.SpecHeuristic},
		"scheduled": {Spec: repro.SpecProfile, Schedule: true},
	}
	for _, name := range []string{"equake", "mcf", "gzip"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		for cname, cfg := range cfgs {
			serial, serialRes := compileAt(t, w, cfg, 1)
			parallel, parallelRes := compileAt(t, w, cfg, 8)

			if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
				t.Errorf("%s/%s: optimizer stats differ between workers=1 and workers=8:\n%+v\nvs\n%+v",
					name, cname, serial.Stats, parallel.Stats)
			}
			if got, want := parallel.Prog.String(), serial.Prog.String(); got != want {
				t.Errorf("%s/%s: optimized IR differs between workers=1 and workers=8", name, cname)
			}
			if got, want := parallel.Code.String(), serial.Code.String(); got != want {
				t.Errorf("%s/%s: machine code differs between workers=1 and workers=8", name, cname)
			}
			if serialRes.Counters != parallelRes.Counters {
				t.Errorf("%s/%s: VM counters differ:\n%+v\nvs\n%+v",
					name, cname, serialRes.Counters, parallelRes.Counters)
			}
			if serialRes.Output != parallelRes.Output {
				t.Errorf("%s/%s: program output differs", name, cname)
			}
		}
	}
}

// TestRunAllParallelDeterminism runs the full experiment sweep serially
// and with 8 workers; every measured row must be identical.
func TestRunAllParallelDeterminism(t *testing.T) {
	serial, err := experiments.RunAllWorkers(1)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	parallel, err := experiments.RunAllWorkers(8)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("experiment rows differ between workers=1 and workers=8:\n%+v\nvs\n%+v", serial, parallel)
	}
}

// TestAuxExperimentsParallelDeterminism pins the Workers contract for
// the studies outside RunAll: the smvp case study and the sensitivity
// table must be identical at Workers=1 (the serial oracle) and
// Workers=8.
func TestAuxExperimentsParallelDeterminism(t *testing.T) {
	s1, err := experiments.RunSmvpWorkers(1)
	if err != nil {
		t.Fatalf("serial smvp: %v", err)
	}
	s8, err := experiments.RunSmvpWorkers(8)
	if err != nil {
		t.Fatalf("parallel smvp: %v", err)
	}
	if s1 != s8 {
		t.Errorf("smvp differs between workers=1 and workers=8:\n%+v\nvs\n%+v", s1, s8)
	}
	r1, err := experiments.RunSensitivityWorkers(1)
	if err != nil {
		t.Fatalf("serial sensitivity: %v", err)
	}
	r8, err := experiments.RunSensitivityWorkers(8)
	if err != nil {
		t.Fatalf("parallel sensitivity: %v", err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("sensitivity rows differ between workers=1 and workers=8:\n%+v\nvs\n%+v", r1, r8)
	}
}

// TestFrontendCacheDetached pins the cache soundness property: a
// compilation must never observe mutations made to another compilation of
// the same source, even though both started from one cached parse.
func TestFrontendCacheDetached(t *testing.T) {
	w, _ := workloads.ByName("equake")
	cfg := repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs}
	c1, err := repro.Compile(w.Src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refText := c1.Ref.String()

	// vandalize the first compilation's reference program, then compile
	// the same source again — the new compile starts from the same cache
	// master and must be untouched
	for _, f := range c1.Ref.Funcs {
		for _, s := range f.Syms {
			s.Name = "junk_" + s.Name
		}
	}
	c2, err := repro.Compile(w.Src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Ref.String() != refText {
		t.Fatal("mutating one compilation's IR leaked into a later compile of the same source")
	}
	res1, err := c1.Run(w.RefArgs)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Run(w.RefArgs)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Output != res2.Output || res1.Counters != res2.Counters {
		t.Fatal("cached compile produced different code than the original")
	}

	// a cold compile (cache dropped) must also agree
	repro.ResetFrontendCache()
	c3, err := repro.Compile(w.Src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Ref.String() != refText {
		t.Fatal("cold compile differs from cached compile")
	}
}
