// strength demonstrates the strength-reduction and linear-function
// test-replacement clients of the SSAPRE framework (§4 of the paper):
// induction-variable multiplications become additions and the loop exit
// test is rewritten against the reduced temporary, so DCE can retire the
// original induction variable.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
int main() {
	int n = arg(0);
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc += i * 24;
	}
	print(acc);
	return 0;
}`

func main() {
	for _, cfg := range []struct {
		name string
		c    repro.Config
	}{
		{"unoptimized", repro.Config{OptimizeOff: true}},
		{"optimized", repro.Config{Spec: repro.SpecOff, ProfileArgs: []int64{10}}},
	} {
		comp, err := repro.Compile(src, cfg.c)
		if err != nil {
			log.Fatal(err)
		}
		res, err := comp.Run([]int64{100000})
		if err != nil {
			log.Fatal(err)
		}
		st := comp.TotalStats()
		fmt.Printf("%-12s output=%s  cycles=%d  instrs=%d  (strength-reduced=%d, LFTR=%d)\n",
			cfg.name, res.Output[:len(res.Output)-1], res.Counters.Cycles,
			res.Counters.InstrsRetired, st.StrengthReduced, st.LFTRApplied)
	}
	c, err := repro.Compile(src, repro.Config{Spec: repro.SpecOff, ProfileArgs: []int64{10}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized loop (i*24 is gone; the temp advances by 24):")
	fmt.Println(c.Prog.FuncMap["main"])
}
