// limits runs the paper's Fig. 12 limit studies on one kernel: the
// simulation-based load-reuse bound (a perfect speculative promoter with
// unlimited registers) and the aggressive-promotion bound (ignore every
// alias; rely on checks), compared with what the real optimizer achieves.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workloads"
)

func main() {
	w, _ := workloads.ByName("mcf")
	fmt.Println(w.Description)

	base, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecOff, ProfileArgs: w.ProfileArgs})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs})
	if err != nil {
		log.Fatal(err)
	}
	agg, err := repro.Compile(w.Src, repro.Config{AggressivePromotion: true, ProfileArgs: w.ProfileArgs})
	if err != nil {
		log.Fatal(err)
	}
	rb, err := base.Run(w.RefArgs)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := spec.Run(w.RefArgs)
	if err != nil {
		log.Fatal(err)
	}
	ra, err := agg.Run(w.RefArgs)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := repro.ReuseLimit(w.Src, w.RefArgs)
	if err != nil {
		log.Fatal(err)
	}

	baseLoads := rb.Counters.LoadsRetired
	specLoads := rs.Counters.LoadsRetired - rs.Counters.CheckLoads
	aggLoads := ra.Counters.LoadsRetired - ra.Counters.CheckLoads

	fmt.Printf("baseline loads:             %d\n", baseLoads)
	fmt.Printf("achieved (profile-guided):  %.1f%% reduction\n", 100*(1-float64(specLoads)/float64(baseLoads)))
	fmt.Printf("aggressive promotion bound: %.1f%% reduction (%d failed checks recovered)\n",
		100*(1-float64(aggLoads)/float64(baseLoads)), ra.Counters.FailedChecks)
	fmt.Printf("reuse-simulation bound:     %.1f%% of loads had a reusable value\n",
		100*sim.PotentialReduction())
}
