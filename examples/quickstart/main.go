// Quickstart: compile a small MiniC program with and without data
// speculation and compare the machine counters. The program repeatedly
// reads a location that a may-aliasing store never actually touches — the
// paper's Figure 2 scenario.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
double a = 41.5;
double b = 0.0;
int main() {
	int n = arg(0);
	double *p = &a;
	double *q = &b;
	if (n > 1000000) q = p;     // the compiler must assume *q may alias a
	double total = 0.0;
	for (int i = 0; i < n; i++) {
		total += a;             // 9-cycle FP load, candidate for promotion
		*q = total;             // may-aliasing store (never aliases at run time)
	}
	print(total);
	return 0;
}`

func main() {
	for _, mode := range []repro.SpecMode{repro.SpecOff, repro.SpecProfile} {
		c, err := repro.Compile(src, repro.Config{
			Spec:        mode,
			ProfileArgs: []int64{100}, // training input
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run([]int64{100000})
		if err != nil {
			log.Fatal(err)
		}
		stats := c.TotalStats()
		fmt.Printf("speculation=%v:\n", mode)
		fmt.Printf("  output: %s", res.Output)
		fmt.Printf("  cycles=%d loads=%d checks=%d failed=%d\n",
			res.Counters.Cycles, res.Counters.LoadsRetired,
			res.Counters.CheckLoads, res.Counters.FailedChecks)
		fmt.Printf("  optimizer: eliminated=%d (speculative=%d), checks inserted=%d\n\n",
			stats.Eliminated, stats.SpecEliminated, stats.ChecksInserted)
	}
}
