// pointerchase compares all three speculation modes (off / alias profile /
// heuristic rules) on the mcf-style pointer-chasing kernel, illustrating
// the paper's §5.2 finding that the heuristic rules perform comparably to
// the profile-guided version — without needing a profiling run.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workloads"
)

func main() {
	w, ok := workloads.ByName("mcf")
	if !ok {
		log.Fatal("mcf workload missing")
	}
	fmt.Println(w.Description)
	fmt.Println()

	var baseCycles int64
	for _, mode := range []repro.SpecMode{repro.SpecOff, repro.SpecProfile, repro.SpecHeuristic} {
		c, err := repro.Compile(w.Src, repro.Config{Spec: mode, ProfileArgs: w.ProfileArgs})
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(w.RefArgs)
		if err != nil {
			log.Fatal(err)
		}
		if mode == repro.SpecOff {
			baseCycles = res.Counters.Cycles
		}
		speedup := float64(baseCycles)/float64(res.Counters.Cycles)*100 - 100
		fmt.Printf("%-10s cycles=%-9d plain-loads=%-7d checks=%-6d failed=%-3d speedup=%+.1f%%\n",
			mode.String(), res.Counters.Cycles,
			res.Counters.LoadsRetired-res.Counters.CheckLoads,
			res.Counters.CheckLoads, res.Counters.FailedChecks, speedup)
	}
}
