// missspec demonstrates the safety net of data speculation: a program is
// trained on an input where two pointers never alias, the optimizer
// speculatively promotes across the store, and then the program runs on
// an input where they DO alias. The ALAT catches every violation (failed
// checks) and the output stays correct — the paper's input-sensitivity
// argument for why profile-guided alias information must be used
// speculatively rather than as ground truth.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
int cells[64];
int shadow[64];
int main() {
	int alias = arg(0);   // 1: q points into cells (aliases); 0: into shadow
	int n = arg(1);
	int *q = &shadow[7];
	if (alias) q = &cells[7];
	cells[7] = 3;
	int total = 0;
	for (int i = 0; i < n; i++) {
		total += cells[7];   // speculatively promoted across *q
		*q = total % 100;
	}
	print(total);
	return 0;
}`

func main() {
	// train WITHOUT aliasing
	c, err := repro.Compile(src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: []int64{0, 50}})
	if err != nil {
		log.Fatal(err)
	}
	for _, alias := range []int64{0, 1} {
		args := []int64{alias, 10000}
		ref, err := c.RunReference(args)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(args)
		if err != nil {
			log.Fatal(err)
		}
		status := "MATCH"
		if res.Output != ref.Output {
			status = "MISMATCH (bug!)"
		}
		fmt.Printf("alias=%d: output=%s  reference=%s  [%s]\n",
			alias, trim(res.Output), trim(ref.Output), status)
		fmt.Printf("         checks=%d failed=%d (mis-speculation ratio %.1f%%)\n",
			res.Counters.CheckLoads, res.Counters.FailedChecks,
			pct(res.Counters.FailedChecks, res.Counters.CheckLoads))
	}
	fmt.Println("\nThe aliasing run mis-speculates on every iteration, yet the ld.c")
	fmt.Println("recovery reloads the clobbered value and the result stays correct.")
}

func trim(s string) string {
	if len(s) > 0 && s[len(s)-1] == '\n' {
		return s[:len(s)-1]
	}
	return s
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
