// smvp reproduces the paper's §5.1 case study: the time-critical sparse
// matrix-vector product of 183.equake. It prints the fraction of loads
// converted to check instructions, the speedup over the non-speculative
// base, and the "manually tuned" upper bound (paper: 39.8% of loads
// become checks; 6% speedup vs a 14% manual bound).
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	s, err := experiments.RunSmvp()
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintSmvp(os.Stdout, s)

	// also show the transformed inner loop
	w, _ := workloads.ByName("equake")
	c, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized smvp (note the ld.a / ld.c annotations):")
	fmt.Println(c.Prog.FuncMap["smvp"])
}
