package repro

import (
	"fmt"
	"testing"
)

// endToEnd compiles src under cfg and checks VM output == reference
// interpreter output for every argument vector.
func endToEnd(t *testing.T, src string, cfg Config, argSets [][]int64) *Compilation {
	t.Helper()
	c, err := Compile(src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, args := range argSets {
		want, err := c.RunReference(args)
		if err != nil {
			t.Fatalf("reference (args=%v): %v", args, err)
		}
		got, err := c.Run(args)
		if err != nil {
			t.Fatalf("vm run (args=%v): %v\ncode:\n%s", args, err, c.Code)
		}
		if got.Output != want.Output {
			t.Errorf("args=%v spec=%v: output mismatch\n got %q\nwant %q\nIR:\n%s\ncode:\n%s",
				args, cfg.Spec, got.Output, want.Output, c.Prog, c.Code)
		}
		if got.Ret != want.Ret {
			t.Errorf("args=%v: ret %d != %d", args, got.Ret, want.Ret)
		}
	}
	return c
}

func allConfigs() []Config {
	return []Config{
		{OptimizeOff: true},
		{Spec: SpecOff},
		{Spec: SpecOff, NoControlSpec: true},
		{Spec: SpecProfile},
		{Spec: SpecHeuristic},
		{Spec: SpecProfile, NoArith: true},
		{AggressivePromotion: true},
	}
}

const checkRecoverySrc = `
int a = 10;
int b = 20;
int main() {
	int *p = &a;
	int *q = &b;
	if (arg(0) > 50) q = p;
	int x = a;
	*q = 99;
	int y = a;
	print(x, y);
	return 0;
}`

func TestVMEquivalenceOnMisSpeculation(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg.ProfileArgs = []int64{0} // train without aliasing
		name := fmt.Sprintf("spec=%v_opt=%v_agg=%v", cfg.Spec, !cfg.OptimizeOff, cfg.AggressivePromotion)
		t.Run(name, func(t *testing.T) {
			// run with aliasing inputs the profile never saw
			endToEnd(t, checkRecoverySrc, cfg, [][]int64{{0}, {60}, {100}})
		})
	}
}

func TestALATCountsFailedCheck(t *testing.T) {
	cfg := Config{Spec: SpecProfile, ProfileArgs: []int64{0}}
	c, err := Compile(checkRecoverySrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// aliasing input: the check must fail at least once
	res, err := c.Run([]int64{60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.CheckLoads == 0 {
		t.Fatalf("expected check loads; counters: %+v\ncode:\n%s", res.Counters, c.Code)
	}
	if res.Counters.FailedChecks == 0 {
		t.Errorf("aliasing store must invalidate the ALAT entry: %+v", res.Counters)
	}
	// non-aliasing input: the check must succeed
	res2, err := c.Run([]int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counters.CheckLoads == 0 || res2.Counters.FailedChecks != 0 {
		t.Errorf("non-aliasing run: want successful checks, got %+v", res2.Counters)
	}
}

func TestSpeculationReducesCycles(t *testing.T) {
	// a loop with a loop-invariant aliased load: speculative promotion
	// should cut loads and cycles vs the non-speculative baseline
	src := `
double v0 = 3.5;
double w0 = 0.0;
int main() {
	int n = arg(0);
	double *v = &v0;
	double *w = &w0;
	if (arg(1)) { double *tmp = v; v = w; w = tmp; }  // forces may-alias
	double sum = 0.0;
	for (int i = 0; i < n; i++) {
		sum = sum + *v;   // invariant, may-alias *w
		*w = sum;
	}
	print(sum);
	return 0;
}`
	base, err := Compile(src, Config{Spec: SpecOff, ProfileArgs: []int64{64}})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Compile(src, Config{Spec: SpecProfile, ProfileArgs: []int64{64}})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := base.Run([]int64{1000})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := spec.Run([]int64{1000})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Output != rs.Output {
		t.Fatalf("output mismatch: %q vs %q", rb.Output, rs.Output)
	}
	// loads retired excluding checks must drop: the invariant *v load is
	// replaced by checks or hoisted out
	plainB := rb.Counters.LoadsRetired - rb.Counters.CheckLoads
	plainS := rs.Counters.LoadsRetired - rs.Counters.CheckLoads
	if plainS >= plainB {
		t.Errorf("speculation did not reduce plain loads: base=%d spec=%d\nIR:\n%s",
			plainB, plainS, spec.Prog.FuncMap["main"])
	}
	if rs.Counters.Cycles >= rb.Counters.Cycles {
		t.Errorf("speculation did not reduce cycles: base=%d spec=%d", rb.Counters.Cycles, rs.Counters.Cycles)
	}
}

func TestVMEquivalenceBattery(t *testing.T) {
	programs := []struct {
		name string
		src  string
		args [][]int64
	}{
		{"sieve", `
int flags[100];
int main() {
	int count = 0;
	for (int i = 2; i < 100; i++) flags[i] = 1;
	for (int i = 2; i < 100; i++) {
		if (flags[i]) {
			count++;
			for (int j = i + i; j < 100; j += i) flags[j] = 0;
		}
	}
	print(count);
	return 0;
}`, [][]int64{nil}},
		{"pointerchase", `
struct node { int val; struct node *next; };
int main() {
	int n = arg(0);
	struct node *head = (struct node*)0;
	for (int i = 0; i < n; i++) {
		struct node *fresh = (struct node*)malloc(2);
		fresh->val = i * 3;
		fresh->next = head;
		head = fresh;
	}
	int sum = 0;
	for (struct node *p = head; (int)p != 0; p = p->next) sum += p->val;
	print(sum);
	return 0;
}`, [][]int64{{0}, {1}, {31}}},
		{"floatmix", `
double acc[8];
int main() {
	int n = arg(0);
	for (int i = 0; i < 8; i++) acc[i] = 0.5 * (double)i;
	double total = 0.0;
	for (int i = 0; i < n; i++) {
		total += acc[i % 8] * 2.0 - 1.0;
	}
	print(total);
	return 0;
}`, [][]int64{{0}, {13}, {200}}},
		{"nestedcalls", `
int depth = 0;
int helper(int x) {
	depth = depth + 1;
	if (x <= 0) return depth;
	return helper(x - 1) + x;
}
int main() {
	print(helper(arg(0)), depth);
	return 0;
}`, [][]int64{{0}, {3}, {10}}},
		{"swaploop", `
int main() {
	int a = 1;
	int b = 2;
	int n = arg(0);
	for (int i = 0; i < n; i++) {
		int tmp = a;
		a = b;
		b = tmp;
	}
	print(a, b);
	return 0;
}`, [][]int64{{0}, {1}, {7}}},
	}
	for _, p := range programs {
		for _, cfg := range allConfigs() {
			cfg.ProfileArgs = []int64{5}
			name := fmt.Sprintf("%s/spec=%v_opt=%v_agg=%v_noarith=%v",
				p.name, cfg.Spec, !cfg.OptimizeOff, cfg.AggressivePromotion, cfg.NoArith)
			t.Run(name, func(t *testing.T) {
				endToEnd(t, p.src, cfg, p.args)
			})
		}
	}
}

func TestReuseLimit(t *testing.T) {
	src := `
int A[64];
int main() {
	int n = arg(0);
	int sum = 0;
	for (int i = 0; i < 64; i++) A[i] = i;
	for (int i = 0; i < n; i++) sum += A[7];
	print(sum);
	return 0;
}`
	sim, err := ReuseLimit(src, []int64{100})
	if err != nil {
		t.Fatal(err)
	}
	if sim.PotentialReduction() < 0.3 {
		t.Errorf("repeated A[7] loads should show large reuse potential, got %.2f", sim.PotentialReduction())
	}
}

func TestSeparateProfileWorkflow(t *testing.T) {
	// collect a profile in one step, compile with it in another (the
	// paper's ORC feedback workflow); the result must match in-process
	// profiling exactly.
	data, err := CollectProfile(checkRecoverySrc, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := Compile(checkRecoverySrc, Config{Spec: SpecProfile, ProfileJSON: data})
	if err != nil {
		t.Fatal(err)
	}
	inProcess, err := Compile(checkRecoverySrc, Config{Spec: SpecProfile, ProfileArgs: []int64{0}})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := fromFile.Run([]int64{60})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := inProcess.Run([]int64{60})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output {
		t.Errorf("outputs differ: %q vs %q", r1.Output, r2.Output)
	}
	if r1.Counters.CheckLoads != r2.Counters.CheckLoads ||
		r1.Counters.Cycles != r2.Counters.Cycles {
		t.Errorf("serialized profile produced different code: %+v vs %+v", r1.Counters, r2.Counters)
	}
	if r1.Counters.CheckLoads == 0 {
		t.Error("expected speculation from the serialized profile")
	}
}

// TestCounterCrossValidation: for unoptimized builds, the VM's retired
// load/store counts must equal the interpreter's dynamic counts (the
// lowering is 1:1), anchoring the two execution engines to each other.
func TestCounterCrossValidation(t *testing.T) {
	src := `
int A[32];
double B[8];
int main() {
	int n = arg(0);
	for (int i = 0; i < 32; i++) A[i] = i;
	for (int i = 0; i < 8; i++) B[i] = (double)i * 0.5;
	int s = 0;
	double d = 0.0;
	for (int i = 0; i < n; i++) {
		s += A[i % 32];
		d += B[i % 8];
		A[(i * 3) % 32] = s;
	}
	print(s, d);
	return 0;
}`
	c, err := Compile(src, Config{OptimizeOff: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{0, 10, 333} {
		ref, err := c.RunReference([]int64{n})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := c.Run([]int64{n})
		if err != nil {
			t.Fatal(err)
		}
		if uint64(vm.Counters.LoadsRetired) != ref.DynLoads {
			t.Errorf("n=%d: VM loads %d != interp loads %d", n, vm.Counters.LoadsRetired, ref.DynLoads)
		}
		if uint64(vm.Counters.Stores) != ref.DynStores {
			t.Errorf("n=%d: VM stores %d != interp stores %d", n, vm.Counters.Stores, ref.DynStores)
		}
	}
}

// TestNoStrengthAblation: disabling the SR client keeps in-loop multiplies.
func TestNoStrengthAblation(t *testing.T) {
	src := `
int main() {
	int n = arg(0);
	int acc = 0;
	for (int i = 0; i < n; i++) acc += i * 6;
	print(acc);
	return 0;
}`
	withSR, err := Compile(src, Config{Spec: SpecOff, ProfileArgs: []int64{10}})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Compile(src, Config{Spec: SpecOff, ProfileArgs: []int64{10}, NoStrength: true})
	if err != nil {
		t.Fatal(err)
	}
	if withSR.TotalStats().StrengthReduced == 0 {
		t.Error("strength reduction expected with the client on")
	}
	if without.TotalStats().StrengthReduced != 0 {
		t.Error("NoStrength did not disable the client")
	}
	r1, err := withSR.Run([]int64{100})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := without.Run([]int64{100})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output {
		t.Errorf("outputs differ: %q vs %q", r1.Output, r2.Output)
	}
	if r1.Counters.Cycles >= r2.Counters.Cycles {
		t.Errorf("SR should be faster: %d vs %d cycles", r1.Counters.Cycles, r2.Counters.Cycles)
	}
}

// TestPipelinedEquivalence: the timing model must never change semantics.
func TestPipelinedEquivalence(t *testing.T) {
	w := checkRecoverySrc
	cfg := Config{Spec: SpecProfile, ProfileArgs: []int64{0}, Schedule: true}
	cfg.Machine = PipelinedMachine()
	endToEnd(t, w, cfg, [][]int64{{0}, {60}, {100}})
}

// TestCompilationDeterminism: compiling the same source twice must produce
// bit-identical code — site ids, temp naming, scheduling and profile use
// are all deterministic, which the serialized-profile workflow depends on.
func TestCompilationDeterminism(t *testing.T) {
	src := checkRecoverySrc
	cfg := Config{Spec: SpecProfile, ProfileArgs: []int64{0}, Schedule: true}
	c1, err := Compile(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Code.String() != c2.Code.String() {
		t.Error("two compiles of identical source differ")
	}
	// and the workload kernels, through the whole pipeline
	r1, err := c1.Run([]int64{60})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Run([]int64{60})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counters != r2.Counters {
		t.Errorf("counters differ across identical compiles:\n%+v\n%+v", r1.Counters, r2.Counters)
	}
}

// TestProfileErrRecorded pins the failure contract of the training run:
// a faulting training input no longer degrades silently to the static
// estimate — Compile still succeeds (the fallback is well-defined) but
// records the fault on Compilation.ProfileErr.
func TestProfileErrRecorded(t *testing.T) {
	src := `
int main() {
	print(100 / arg(0));
	return 0;
}`
	c, err := Compile(src, Config{Spec: SpecProfile, ProfileArgs: []int64{0}})
	if err != nil {
		t.Fatalf("compile must survive a faulting training run: %v", err)
	}
	if c.ProfileErr == nil {
		t.Fatal("faulting training run (divide by zero) was not recorded on ProfileErr")
	}
	if c.Profile != nil {
		t.Error("a failed training run must not leave a partial profile attached")
	}
	// the fallback build still executes correctly on good inputs
	res, err := c.Run([]int64{4})
	if err != nil {
		t.Fatal(err)
	}
	if want := "25\n"; res.Output != want {
		t.Errorf("output %q, want %q", res.Output, want)
	}

	// a good training input on the same source carries no error
	c2, err := Compile(src, Config{Spec: SpecProfile, ProfileArgs: []int64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if c2.ProfileErr != nil {
		t.Fatalf("healthy training run recorded ProfileErr: %v", c2.ProfileErr)
	}
	if c2.Profile == nil {
		t.Error("healthy training run should attach a profile")
	}
}
