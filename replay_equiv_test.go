package repro_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// The end-to-end differential obligation of the record-and-replay
// split: for every workload and every Config in the sensitivity sweep
// grid, the replayed result — cycle counts, every Counters field, and
// program output — is byte-identical to direct machine execution, at
// one worker and at eight. Evaluate now re-times each trace group
// through machine.ReplayBatch, so the Evaluate legs below exercise the
// batched engine end-to-end; the explicit ReplayBatch-vs-Replay leg
// pins the machine-level contract per workload over the full grid.

func TestReplayEquivalentToDirectOnAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	cfgs := experiments.MachineSweepConfigs()
	for _, w := range workloads.All() {
		c, err := repro.Compile(w.Src, repro.Config{
			Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs,
		})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if c.ProfileErr != nil {
			t.Fatalf("%s: %v", w.Name, c.ProfileErr)
		}

		repro.SetTraceEnabled(false)
		direct, err := c.Evaluate(w.RefArgs, cfgs, 1)
		repro.SetTraceEnabled(true)
		if err != nil {
			t.Fatalf("%s: direct evaluate: %v", w.Name, err)
		}

		serial, err := c.Evaluate(w.RefArgs, cfgs, 1)
		if err != nil {
			t.Fatalf("%s: replay evaluate (1 worker): %v", w.Name, err)
		}
		parallel, err := c.Evaluate(w.RefArgs, cfgs, 8)
		if err != nil {
			t.Fatalf("%s: replay evaluate (8 workers): %v", w.Name, err)
		}

		for i, cfg := range cfgs {
			if !reflect.DeepEqual(direct[i], serial[i]) {
				t.Errorf("%s %+v: replay != direct\ndirect %+v\nreplay %+v",
					w.Name, cfg, direct[i], serial[i])
			}
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Errorf("%s %+v: 8-worker replay != 1-worker replay", w.Name, cfg)
			}
		}

		// machine-level leg: one ReplayBatch over the whole grid against
		// per-config Replay on the same trace
		tr, err := machine.Record(c.Code, w.RefArgs, machine.Config{})
		if err != nil {
			t.Fatalf("%s: record: %v", w.Name, err)
		}
		batch, err := machine.ReplayBatch(c.Code, tr, cfgs)
		if err != nil {
			t.Fatalf("%s: batch: %v", w.Name, err)
		}
		for i, cfg := range cfgs {
			single, err := machine.Replay(c.Code, tr, cfg, nil)
			if err != nil {
				t.Fatalf("%s %+v: replay: %v", w.Name, cfg, err)
			}
			if !reflect.DeepEqual(single, batch[i]) {
				t.Errorf("%s %+v: batch != per-config replay\nreplay %+v\nbatch  %+v",
					w.Name, cfg, single, batch[i])
			}
			if !reflect.DeepEqual(direct[i], batch[i]) {
				t.Errorf("%s %+v: batch != direct\ndirect %+v\nbatch  %+v",
					w.Name, cfg, direct[i], batch[i])
			}
		}
	}
}

// TestRunUsesTracePathTransparently pins that the default Compilation.Run
// (trace-backed) matches direct execution exactly, including for the
// pipelined model of PipelinedMachine.
func TestRunUsesTracePathTransparently(t *testing.T) {
	w, ok := workloads.ByName("equake")
	if !ok {
		t.Fatal("equake not registered")
	}
	for _, mcfg := range []machine.Config{{}, repro.PipelinedMachine(), {ALATSize: 4}} {
		cfg := repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs, Machine: mcfg}
		c, err := repro.Compile(w.Src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		traced, err := c.Run(w.RefArgs)
		if err != nil {
			t.Fatal(err)
		}
		repro.SetTraceEnabled(false)
		direct, derr := c.Run(w.RefArgs)
		repro.SetTraceEnabled(true)
		if derr != nil {
			t.Fatal(derr)
		}
		if !reflect.DeepEqual(traced, direct) {
			t.Errorf("%+v: traced Run != direct Run\ntraced %+v\ndirect %+v", mcfg, traced, direct)
		}
	}
}

// TestShardedReuseLimitMatchesSerial asserts the ROADMAP-item contract:
// the sharded Fig. 12 reuse-limit simulation produces totals (and so
// PotentialReduction) identical to the serial walk, for every workload.
func TestShardedReuseLimitMatchesSerial(t *testing.T) {
	for _, w := range workloads.All() {
		serial, err := repro.ReuseLimitWorkers(w.Src, w.RefArgs, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		sharded, err := repro.ReuseLimitWorkers(w.Src, w.RefArgs, 8)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if serial.Loads != sharded.Loads || serial.Reused != sharded.Reused {
			t.Errorf("%s: sharded totals diverge: serial %d/%d, sharded %d/%d",
				w.Name, serial.Reused, serial.Loads, sharded.Reused, sharded.Loads)
		}
		if serial.PotentialReduction() != sharded.PotentialReduction() {
			t.Errorf("%s: PotentialReduction diverges: %v vs %v",
				w.Name, serial.PotentialReduction(), sharded.PotentialReduction())
		}
	}
}
