package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
)

// BenchmarkFleetSweep measures the distributed sweep path end to end:
// real specd worker processes (1 then 2, peered through the remote
// cache tier), a fleet.Coordinator sharding the full mixed-grid sweep
// across them, cold and warm. It emits BENCH_fleet.json with the
// per-fleet-size sweep costs, the 1-vs-2 speedups, and the core count
// the numbers were taken on — the 2-worker speedup only materializes
// with cores to run the workers on, so the gate compares like with
// like via the committed baseline. Along the way it asserts the fleet
// contract: reports byte-identical at every fleet size, and warm runs
// performing zero profiling executions on any worker.
func BenchmarkFleetSweep(b *testing.B) {
	// One measurement pass per invocation, ignoring b.N: booting worker
	// processes dominates any N-scaled loop, and the quantities reported
	// are wall-clock sweep times, not per-op averages. The pass itself
	// takes seconds, so the framework does not iterate.
	bin := buildSpecd(b)
	names := workloadNames()
	cfgs := experiments.MachineSweepConfigs()

	type timing struct{ cold, warm float64 }
	timings := map[int]timing{}
	var refCold, refWarm []byte
	for _, n := range []int{1, 2} {
		workers := startWorkers(b, bin, n)
		coord, err := fleet.New(fleet.Config{Workers: workers, HedgeAfter: -1})
		if err != nil {
			b.Fatal(err)
		}
		runOnce := func() ([]byte, float64) {
			start := time.Now()
			sweeps, err := coord.SweepAll(context.Background(), names, cfgs)
			ns := float64(time.Since(start).Nanoseconds())
			if err != nil {
				b.Fatal(err)
			}
			data, err := fleet.MarshalSweeps(sweeps)
			if err != nil {
				b.Fatal(err)
			}
			return data, ns
		}
		before := profilingRuns(b, workers)
		cold, coldNs := runOnce()
		mid := profilingRuns(b, workers)
		if mid <= before {
			b.Fatalf("%d-worker cold sweep performed no profiling (%d -> %d)", n, before, mid)
		}
		warm, warmNs := runOnce()
		if after := profilingRuns(b, workers); after != mid {
			b.Fatalf("%d-worker warm sweep performed %d profiling executions, want 0", n, after-mid)
		}
		if !bytes.Equal(cold, warm) {
			b.Fatalf("%d-worker warm sweep report differs from cold", n)
		}
		if refCold == nil {
			refCold, refWarm = cold, warm
		} else if !bytes.Equal(refCold, cold) || !bytes.Equal(refWarm, warm) {
			b.Fatalf("%d-worker sweep report differs from 1-worker report", n)
		}
		timings[n] = timing{cold: coldNs, warm: warmNs}
	}

	coldSpeedup := timings[1].cold / timings[2].cold
	warmSpeedup := timings[1].warm / timings[2].warm
	b.ReportMetric(coldSpeedup, "cold_fleet_speedup")
	b.ReportMetric(warmSpeedup, "warm_fleet_speedup")
	out := map[string]any{
		"benchmark": "FleetSweep",
		"cores":     runtime.NumCPU(),
		"workloads": len(names),
		"configs":   len(cfgs),
		"cold": map[string]any{
			"one_worker_ns_per_sweep": timings[1].cold,
			"two_worker_ns_per_sweep": timings[2].cold,
			"speedup":                 coldSpeedup,
		},
		"warm": map[string]any{
			"one_worker_ns_per_sweep": timings[1].warm,
			"two_worker_ns_per_sweep": timings[2].warm,
			"speedup":                 warmSpeedup,
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fleet.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func workloadNames() []string {
	var names []string
	for _, w := range experiments.ListWorkloads() {
		names = append(names, w.Name)
	}
	return names
}

func buildSpecd(b *testing.B) string {
	b.Helper()
	bin := filepath.Join(b.TempDir(), "specd")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/specd")
	if out, err := cmd.CombinedOutput(); err != nil {
		b.Fatalf("go build specd: %v\n%s", err, out)
	}
	return bin
}

// startWorkers boots n specd processes on free localhost ports, each
// with its own cache directory and peered to the others, and waits for
// them to answer health checks. Cleanup sends SIGTERM and waits.
func startWorkers(b *testing.B, bin string, n int) []string {
	b.Helper()
	ports := make([]int, n)
	urls := make([]string, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		ports[i] = l.Addr().(*net.TCPAddr).Port
		l.Close()
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", ports[i])
	}
	for i := range ports {
		var peers []byte
		for j, u := range urls {
			if j == i {
				continue
			}
			if len(peers) > 0 {
				peers = append(peers, ',')
			}
			peers = append(peers, u...)
		}
		args := []string{
			"-addr", "127.0.0.1:" + strconv.Itoa(ports[i]),
			"-cache-dir", filepath.Join(b.TempDir(), "cache"),
		}
		if len(peers) > 0 {
			args = append(args, "-peers", string(peers))
		}
		cmd := exec.Command(bin, args...)
		cmd.Stderr = io.Discard
		cmd.Stdout = io.Discard
		if err := cmd.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			cmd.Process.Signal(syscall.SIGTERM)
			cmd.Wait()
		})
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, u := range urls {
		for {
			resp, err := http.Get(u + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				b.Fatalf("worker %s did not come up", u)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return urls
}

var profilingRunsRe = regexp.MustCompile(`(?m)^specd_profiling_runs_total (\d+)$`)

// profilingRuns sums specd_profiling_runs_total across the fleet — the
// direct measure of "zero recomputation on a warm run".
func profilingRuns(b *testing.B, workers []string) uint64 {
	b.Helper()
	var total uint64
	for _, u := range workers {
		resp, err := http.Get(u + "/metrics")
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		m := profilingRunsRe.FindSubmatch(body)
		if m == nil {
			b.Fatalf("worker %s exports no specd_profiling_runs_total", u)
		}
		v, err := strconv.ParseUint(string(m[1]), 10, 64)
		if err != nil {
			b.Fatal(err)
		}
		total += v
	}
	return total
}
