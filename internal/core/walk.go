package core

import "repro/internal/ir"

// WalkContext carries per-occurrence context for the speculative use-def
// walk: which weak updates may be skipped for the expression occurrence
// under consideration.
type WalkContext struct {
	Mode Mode

	// MuSpec holds the symbols carrying a mu_s flag at the load
	// occurrence (ModeProfile): an intervening statement that flags (or
	// strongly defines) any of these symbols is a real kill and blocks
	// the skip — this is the paper's Example 1 reasoning, where mu_s(b)
	// at the load pairs with chi_s(b) at a store.
	MuSpec map[*ir.Sym]bool

	// SynKey is the syntax-tree key of the occurrence and Keys the
	// per-function key table (ModeHeuristic): an intervening store with
	// an identical syntax tree is a real kill (heuristic rules 1/2).
	SynKey string
	Keys   map[ir.Stmt]string
}

// BlocksSkip reports whether the context forbids speculatively ignoring
// the weak update performed by stmt.
func (c *WalkContext) BlocksSkip(stmt ir.Stmt) bool {
	if c == nil {
		return false
	}
	switch c.Mode {
	case ModeNone:
		return true
	case ModeProfile, ModeCost:
		// ModeCost shares the profile walk: the per-symbol cost decision
		// is already baked into the chi/mu flags, and MuSpec pairs the
		// load's flagged mus with flagged chis exactly as in ModeProfile
		if len(c.MuSpec) == 0 {
			return false
		}
		switch t := stmt.(type) {
		case *ir.Assign:
			if t.Dst.Sym.InMemory() && c.MuSpec[t.Dst.Sym] {
				return true
			}
			for _, chi := range t.Chis {
				if chi.Spec && c.MuSpec[chi.Sym] {
					return true
				}
			}
		case *ir.IStore:
			for _, chi := range t.Chis {
				if chi.Spec && c.MuSpec[chi.Sym] {
					return true
				}
			}
		case *ir.Call:
			for _, chi := range t.Chis {
				if chi.Spec && c.MuSpec[chi.Sym] {
					return true
				}
			}
		}
		return false
	case ModeHeuristic:
		if c.Keys == nil || c.SynKey == "" {
			return false
		}
		switch t := stmt.(type) {
		case *ir.IStore:
			return c.Keys[stmt] == c.SynKey
		case *ir.Assign:
			// a direct store to the variable this occurrence names
			if t.Dst.Sym.InMemory() && c.Keys[stmt] == c.SynKey {
				return true
			}
		}
		return false
	}
	return false
}

// SpecHome walks up the use-def chain of (sym, ver), skipping speculative
// weak updates (unflagged chis the context allows ignoring). It returns
// the version whose definition is a real kill — a strong def, a phi, a
// flagged chi, a context-blocked chi, or entry — and whether any weak
// update was skipped (in which case using the earlier value requires a
// run-time check).
func (s *SSA) SpecHome(sym *ir.Sym, ver int, ctx *WalkContext) (home int, skipped bool) {
	home = ver
	for {
		d, ok := s.Def[SymVer{sym, home}]
		if !ok || d.Kind != DefChi {
			return home, skipped
		}
		if d.Chi.Spec {
			return home, skipped
		}
		if ctx.BlocksSkip(d.Stmt) {
			return home, skipped
		}
		home = d.Chi.OldVer
		skipped = true
	}
}

// SpecReaches reports whether, starting from version `from` of sym and
// skipping allowed weak updates, the walk reaches exactly version `to`.
// The boolean spec reports whether reaching it required skipping (so a
// check instruction is needed).
func (s *SSA) SpecReaches(sym *ir.Sym, from, to int, ctx *WalkContext) (reaches, spec bool) {
	cur := from
	skipped := false
	for {
		if cur == to {
			return true, skipped
		}
		d, ok := s.Def[SymVer{sym, cur}]
		if !ok || d.Kind != DefChi {
			return false, false
		}
		if d.Chi.Spec || ctx.BlocksSkip(d.Stmt) {
			return false, false
		}
		cur = d.Chi.OldVer
		skipped = true
	}
}
