package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// TestPaperExample1 reproduces the paper's Example 1 (§3.1) structurally:
//
//	s0: a1 = ...
//	s1: *p1 = 4          a2 ← χ(a1)   b2 ← χs(b1)   v2 ← χ(v1)
//	s5: ... = a2
//	s6: a3 = 4
//	s7/s8: ... = *p1     μ(a3) μs(b2) μ(v2)
//
// With the profile saying *p aliases b but not a, the χ on a is weak and
// the χ on b is flagged; the speculative walk from a2 reaches a1 (the
// update can be ignored), while b's chain is blocked.
func TestPaperExample1(t *testing.T) {
	src := `
int a = 0;
int b = 0;
int main() {
	int *p = &a;
	if (arg(0)) p = &b;   // profiled with arg(0)=1: p -> b
	int a0 = a;           // establishes a's first version use
	*p = 4;               // the paper's s1
	int a2use = a;        // s5: = a2
	int pload = *p;       // s8: = *p1
	print(a0, a2use, pload);
	return 0;
}`
	prog, ar, _ := buildRaw(t, src, ModeProfile, []int64{1})
	main := prog.FuncMap["main"]
	ssa := BuildSSA(main, ar.FuncVirtuals[main])

	// locate the indirect store and inspect its chi list
	var store *ir.IStore
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if is, ok := st.(*ir.IStore); ok {
				store = is
			}
		}
	}
	if store == nil {
		t.Fatal("no indirect store found")
	}
	var chiA, chiB, chiV *ir.Chi
	for _, chi := range store.Chis {
		switch {
		case chi.Sym.Name == "a":
			chiA = chi
		case chi.Sym.Name == "b":
			chiB = chi
		case strings.HasPrefix(chi.Sym.Name, "v$"):
			chiV = chi
		}
	}
	if chiA == nil || chiB == nil || chiV == nil {
		t.Fatalf("chi list incomplete: %v", store.Chis)
	}
	// the paper's flags: χ(a) weak (profile never saw *p touch a),
	// χs(b) flagged, χ(v) weak
	if chiA.Spec {
		t.Error("chi(a) must be a speculative weak update (profile: *p never writes a)")
	}
	if !chiB.Spec {
		t.Error("chi(b) must be flagged chi_s (profile: *p writes b)")
	}
	if chiV.Spec {
		t.Error("chi(vv) must stay weak (pairwise info lives on members)")
	}

	// the speculative walk: a's version after the χ reaches the version
	// before it (speculatively); b's does not
	aSym, bSym := chiA.Sym, chiB.Sym
	ctx := &WalkContext{Mode: ModeProfile}
	if reaches, spec := ssa.SpecReaches(aSym, chiA.NewVer, chiA.OldVer, ctx); !reaches || !spec {
		t.Errorf("a%d should speculatively reach a%d (reaches=%v spec=%v)",
			chiA.NewVer, chiA.OldVer, reaches, spec)
	}
	if reaches, _ := ssa.SpecReaches(bSym, chiB.NewVer, chiB.OldVer, ctx); reaches {
		t.Error("b's flagged chi must block the walk")
	}

	// the final load of *p must carry μs(b) and plain μ(a)
	var load *ir.Assign
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(*ir.Assign); ok && as.RK == ir.RHSLoad {
				load = as
			}
		}
	}
	if load == nil {
		t.Fatal("no indirect load found")
	}
	var muA, muB *ir.Mu
	for _, mu := range load.Mus {
		switch mu.Sym.Name {
		case "a":
			muA = mu
		case "b":
			muB = mu
		}
	}
	if muA == nil || muB == nil {
		t.Fatalf("mu list incomplete: %v", load.Mus)
	}
	if muA.Spec {
		t.Error("mu(a) must be unflagged")
	}
	if !muB.Spec {
		t.Error("mu(b) must be flagged mu_s")
	}
}

// TestPaperFigure5 reproduces the three occurrence relationships of the
// paper's Figure 5: (a) redundant when nothing intervenes, (b) killed by a
// flagged update, (c) speculatively redundant across a weak update.
func TestPaperFigure5(t *testing.T) {
	type variant struct {
		name      string
		profile   []int64 // training input: arg(0)=1 makes *p alias a
		wantReach bool
		wantSpec  bool
	}
	src := `
int a = 1;
int other = 2;
int main() {
	int *p = &other;
	if (arg(0)) p = &a;
	int x = a;
	*p = 9;
	int y = a;
	print(x, y);
	return 0;
}`
	for _, v := range []variant{
		{"speculatively-redundant", []int64{0}, true, true},
		{"killed", []int64{1}, false, false},
	} {
		t.Run(v.name, func(t *testing.T) {
			prog, ar, _ := buildRaw(t, src, ModeProfile, v.profile)
			main := prog.FuncMap["main"]
			ssa := BuildSSA(main, ar.FuncVirtuals[main])
			var loads []*ir.Assign
			for _, blk := range main.Blocks {
				for _, st := range blk.Stmts {
					if as, ok := st.(*ir.Assign); ok && as.RK == ir.RHSCopy {
						if r, ok := as.A.(*ir.Ref); ok && r.Sym.Name == "a" {
							loads = append(loads, as)
						}
					}
				}
			}
			if len(loads) != 2 {
				t.Fatalf("want 2 direct loads of a, got %d", len(loads))
			}
			aSym := loads[0].A.(*ir.Ref).Sym
			v1 := loads[0].A.(*ir.Ref).Ver
			v2 := loads[1].A.(*ir.Ref).Ver
			reaches, spec := ssa.SpecReaches(aSym, v2, v1, &WalkContext{Mode: ModeProfile})
			if reaches != v.wantReach || spec != v.wantSpec {
				t.Errorf("reaches=%v spec=%v, want %v/%v", reaches, spec, v.wantReach, v.wantSpec)
			}
		})
	}
	// fully redundant: no store at all between the loads
	src2 := `
int a = 1;
int main() {
	int x = a;
	int y = a;
	print(x, y);
	return 0;
}`
	prog, ar, _ := buildRaw(t, src2, ModeProfile, nil)
	main := prog.FuncMap["main"]
	BuildSSA(main, ar.FuncVirtuals[main])
	var vers []int
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(*ir.Assign); ok && as.RK == ir.RHSCopy {
				if r, ok := as.A.(*ir.Ref); ok && r.Sym.Name == "a" {
					vers = append(vers, r.Ver)
				}
			}
		}
	}
	if len(vers) != 2 || vers[0] != vers[1] {
		t.Errorf("fully redundant loads must share a version: %v", vers)
	}
}

// TestCallChiFlags checks heuristic rule 3: all call-side chis are flagged
// regardless of profile absence.
func TestCallChiFlags(t *testing.T) {
	src := `
int g = 0;
void w() { g = 1; }
int main() {
	w();
	print(g);
	return 0;
}`
	prog, _, _ := buildRaw(t, src, ModeHeuristic, nil)
	main := prog.FuncMap["main"]
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if c, ok := st.(*ir.Call); ok && c.Fn == "w" {
				if len(c.Chis) == 0 {
					t.Fatal("call has no chi list")
				}
				for _, chi := range c.Chis {
					if !chi.Spec {
						t.Errorf("heuristic rule 3: call chi on %s must be flagged", chi.Sym.Name)
					}
				}
			}
		}
	}
}
