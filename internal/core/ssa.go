// Package core implements the speculative SSA form of Lin et al.
// (PLDI 2003): HSSA construction (phi insertion and renaming over real
// variables, virtual variables and heap pseudo-symbols, with chi/mu
// versioning), assignment of the speculation flags (chi_s / mu_s) from
// alias profiles (§3.2.1) or heuristic rules (§3.2.2), and the
// speculative use-def walk that later optimizations use to skip
// speculative weak updates.
package core

import (
	"fmt"

	"repro/internal/ir"
)

// SymVer identifies one SSA version of a symbol.
type SymVer struct {
	Sym *ir.Sym
	Ver int
}

// DefKind classifies definition points.
type DefKind int

const (
	// DefEntry is the implicit definition of version 0 at function entry.
	DefEntry DefKind = iota
	// DefPhi is a phi node.
	DefPhi
	// DefStmt is a direct (strong) definition by a statement.
	DefStmt
	// DefChi is a may-definition through a chi.
	DefChi
)

// Def records where an SSA version is defined.
type Def struct {
	Kind  DefKind
	Block *ir.Block
	Phi   *ir.Phi
	Stmt  ir.Stmt
	Chi   *ir.Chi
}

// SSA is the per-function speculative SSA form: the renamed IR plus the
// def-site index that the speculative walk and SSAPRE consult.
type SSA struct {
	Fn  *ir.Func
	DT  *ir.DomTree
	Def map[SymVer]Def

	// Vars lists every symbol that was versioned in this function.
	Vars []*ir.Sym
}

// BuildSSA converts fn (with chi/mu lists already annotated) into HSSA
// form: phis are inserted for every variable with definitions, and all
// refs, mus and chis receive version numbers. virtuals lists the virtual
// symbols referenced by the function's chi/mu lists (from
// alias.Result.FuncVirtuals).
func BuildSSA(fn *ir.Func, virtuals []*ir.Sym) *SSA {
	fn.SplitCriticalEdges()
	dt := ir.BuildDomTree(fn)
	s := &SSA{Fn: fn, DT: dt, Def: map[SymVer]Def{}}

	// 1. collect variables and their definition blocks
	varIdx := make(map[*ir.Sym]int32, 16+len(virtuals))
	var defBlocks [][]*ir.Block
	note := func(sym *ir.Sym, b *ir.Block) {
		i, ok := varIdx[sym]
		if !ok {
			i = int32(len(s.Vars))
			varIdx[sym] = i
			s.Vars = append(s.Vars, sym)
			defBlocks = append(defBlocks, nil)
		}
		if b != nil {
			// consecutive duplicates are common (several defs in one
			// block) and IteratedFrontier dedups anyway
			if db := defBlocks[i]; len(db) == 0 || db[len(db)-1] != b {
				defBlocks[i] = append(db, b)
			}
		}
	}
	noteUse := func(op ir.Operand) {
		if r, ok := op.(*ir.Ref); ok {
			note(r.Sym, nil)
		}
	}
	for _, v := range virtuals {
		note(v, nil)
	}
	for _, b := range fn.Blocks {
		for _, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.Assign:
				noteUse(t.A)
				if t.B != nil {
					noteUse(t.B)
				}
				for _, mu := range t.Mus {
					note(mu.Sym, nil)
				}
				note(t.Dst.Sym, b)
				for _, chi := range t.Chis {
					note(chi.Sym, b)
				}
			case *ir.IStore:
				noteUse(t.Addr)
				noteUse(t.Val)
				for _, chi := range t.Chis {
					note(chi.Sym, b)
				}
			case *ir.Call:
				for _, a := range t.Args {
					noteUse(a)
				}
				for _, mu := range t.Mus {
					note(mu.Sym, nil)
				}
				if t.Dst != nil {
					note(t.Dst.Sym, b)
				}
				for _, chi := range t.Chis {
					note(chi.Sym, b)
				}
			case *ir.Print:
				for _, a := range t.Args {
					noteUse(a)
				}
			}
		}
		if b.Term.Cond != nil {
			noteUse(b.Term.Cond)
		}
		if b.Term.Val != nil {
			noteUse(b.Term.Val)
		}
	}

	// 2. phi insertion at iterated dominance frontiers of the def sites
	for vi, sym := range s.Vars {
		blocks := defBlocks[vi]
		if len(blocks) == 0 {
			continue
		}
		// IteratedFrontier computes DF+, which is closed under taking
		// frontiers of the inserted phis themselves.
		for _, pb := range dt.IteratedFrontier(blocks) {
			if hasPhiFor(pb, sym) {
				continue
			}
			phi := fn.NewPhi(ir.Phi{Sym: sym, Args: make([]*ir.Ref, len(pb.Preds))})
			for i := range phi.Args {
				phi.Args[i] = fn.NewRef(sym, 0)
			}
			pb.Phis = append(pb.Phis, phi)
		}
	}

	// 3. renaming along the dominator tree
	stacks := map[*ir.Sym][]int{}
	top := func(sym *ir.Sym) int {
		st := stacks[sym]
		if len(st) == 0 {
			return 0
		}
		return st[len(st)-1]
	}
	// Version numbers are allocated per function, not on the Sym: globals
	// and virtual variables are shared by every function, and a counter on
	// the Sym itself would make numbering depend on the order functions
	// are renamed (and race when functions are renamed concurrently).
	// Versions only need to be unique within one function's web.
	vers := map[*ir.Sym]int{}
	newVer := func(sym *ir.Sym) int {
		vers[sym]++
		return vers[sym]
	}
	for _, sym := range s.Vars {
		s.Def[SymVer{sym, 0}] = Def{Kind: DefEntry, Block: fn.Entry}
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		var pushed []*ir.Sym
		push := func(sym *ir.Sym, ver int) {
			stacks[sym] = append(stacks[sym], ver)
			pushed = append(pushed, sym)
		}
		useRef := func(op ir.Operand) {
			if r, ok := op.(*ir.Ref); ok {
				r.Ver = top(r.Sym)
			}
		}
		for _, phi := range b.Phis {
			phi.Ver = newVer(phi.Sym)
			s.Def[SymVer{phi.Sym, phi.Ver}] = Def{Kind: DefPhi, Block: b, Phi: phi}
			push(phi.Sym, phi.Ver)
		}
		for _, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.Assign:
				useRef(t.A)
				if t.B != nil {
					useRef(t.B)
				}
				for _, mu := range t.Mus {
					mu.Ver = top(mu.Sym)
				}
				t.Dst.Ver = newVer(t.Dst.Sym)
				s.Def[SymVer{t.Dst.Sym, t.Dst.Ver}] = Def{Kind: DefStmt, Block: b, Stmt: st}
				push(t.Dst.Sym, t.Dst.Ver)
				for _, chi := range t.Chis {
					chi.OldVer = top(chi.Sym)
					chi.NewVer = newVer(chi.Sym)
					s.Def[SymVer{chi.Sym, chi.NewVer}] = Def{Kind: DefChi, Block: b, Stmt: st, Chi: chi}
					push(chi.Sym, chi.NewVer)
				}
			case *ir.IStore:
				useRef(t.Addr)
				useRef(t.Val)
				for _, chi := range t.Chis {
					chi.OldVer = top(chi.Sym)
					chi.NewVer = newVer(chi.Sym)
					s.Def[SymVer{chi.Sym, chi.NewVer}] = Def{Kind: DefChi, Block: b, Stmt: st, Chi: chi}
					push(chi.Sym, chi.NewVer)
				}
			case *ir.Call:
				for _, a := range t.Args {
					useRef(a)
				}
				for _, mu := range t.Mus {
					mu.Ver = top(mu.Sym)
				}
				if t.Dst != nil {
					t.Dst.Ver = newVer(t.Dst.Sym)
					s.Def[SymVer{t.Dst.Sym, t.Dst.Ver}] = Def{Kind: DefStmt, Block: b, Stmt: st}
					push(t.Dst.Sym, t.Dst.Ver)
				}
				for _, chi := range t.Chis {
					chi.OldVer = top(chi.Sym)
					chi.NewVer = newVer(chi.Sym)
					s.Def[SymVer{chi.Sym, chi.NewVer}] = Def{Kind: DefChi, Block: b, Stmt: st, Chi: chi}
					push(chi.Sym, chi.NewVer)
				}
			case *ir.Print:
				for _, a := range t.Args {
					useRef(a)
				}
			}
		}
		if b.Term.Cond != nil {
			useRef(b.Term.Cond)
		}
		if b.Term.Val != nil {
			useRef(b.Term.Val)
		}
		for _, succ := range b.Succs {
			j := succ.PredIndex(b)
			for _, phi := range succ.Phis {
				phi.Args[j].Ver = top(phi.Sym)
			}
		}
		for _, c := range dt.Children[b] {
			rename(c)
		}
		for _, sym := range pushed {
			stacks[sym] = stacks[sym][:len(stacks[sym])-1]
		}
	}
	rename(fn.Entry)
	return s
}

func hasPhiFor(b *ir.Block, sym *ir.Sym) bool {
	for _, phi := range b.Phis {
		if phi.Sym == sym {
			return true
		}
	}
	return false
}

// DefOf returns the definition record of (sym, ver).
func (s *SSA) DefOf(sym *ir.Sym, ver int) (Def, error) {
	d, ok := s.Def[SymVer{sym, ver}]
	if !ok {
		return Def{}, fmt.Errorf("core: no definition recorded for %s_%d in %s", sym.Name, ver, s.Fn.Name)
	}
	return d, nil
}
