package core

import (
	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/profile"
)

// Mode selects how speculation flags are assigned to chi/mu operators.
type Mode int

const (
	// ModeNone disables data speculation: every chi and mu is flagged as
	// highly likely, so no update is ever speculatively ignored. This is
	// the paper's non-speculative baseline.
	ModeNone Mode = iota
	// ModeProfile assigns flags from alias-profile LOC sets (§3.2.1).
	ModeProfile
	// ModeHeuristic assigns flags by the three heuristic rules of §3.2.2:
	// stores' updates are speculatively ignorable except between
	// references with identical syntax trees, and call side effects are
	// always highly likely.
	ModeHeuristic
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeProfile:
		return "profile"
	case ModeHeuristic:
		return "heuristic"
	}
	return "mode?"
}

// AssignFlags walks every chi/mu list in the program and sets the Spec
// flags according to the mode. For ModeProfile, prof supplies the LOC sets
// collected by the alias-profiling interpreter run; profiled LOCs that the
// compile-time lists miss are added as flagged entries (the paper's "if
// any member of its profiled LOC set is not in its chi list, add the
// member using chi_s").
func AssignFlags(prog *ir.Program, ar *alias.Result, prof *profile.Profile, mode Mode) {
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				switch t := st.(type) {
				case *ir.Assign:
					if t.RK == ir.RHSLoad && t.Site != 0 {
						flagMus(f, t.Mus, locsFor(prof, mode, t.Site, false), ar, mode, false)
						t.Mus = addMissingMus(f, t.Mus, locsFor(prof, mode, t.Site, false), ar)
					} else if t.Dst.Sym.InMemory() {
						// direct store's chi on the virtual variable: a
						// weak summary update under speculation, a hard
						// kill otherwise
						for _, chi := range t.Chis {
							chi.Spec = mode == ModeNone
						}
					}
				case *ir.IStore:
					if t.Site != 0 {
						flagChis(f, t.Chis, locsFor(prof, mode, t.Site, true), ar, mode, false)
						t.Chis = addMissingChis(f, t.Chis, locsFor(prof, mode, t.Site, true), ar)
					}
				case *ir.Call:
					// heuristic rule 3: call side effects are always
					// highly likely (mu list remains unflagged)
					if mode == ModeProfile {
						// a nil profile (failed training run, or the
						// aggressive-promotion bound) means no call-site
						// LOC was ever observed: every side effect stays
						// a weak, speculatively ignorable update
						var mod, ref profile.LocSet
						if prof != nil {
							mod, ref = prof.CallMod[t.Site], prof.CallRef[t.Site]
						}
						flagChis(f, t.Chis, mod, ar, mode, true)
						t.Chis = addMissingChis(f, t.Chis, mod, ar)
						flagMus(f, t.Mus, ref, ar, mode, true)
					} else {
						for _, chi := range t.Chis {
							chi.Spec = true
						}
						if mode == ModeNone {
							for _, mu := range t.Mus {
								mu.Spec = true
							}
						}
					}
				}
			}
		}
	}
}

// LocsFor fetches the profiled LOC set AssignFlags consults for a
// reference site (nil when no profile applies). Exported for the
// speculation-soundness checker (internal/specheck), which re-derives the
// expected flag of every chi/mu and compares it against what the pipeline
// actually assigned.
func LocsFor(prof *profile.Profile, mode Mode, site int, isStore bool) profile.LocSet {
	return locsFor(prof, mode, site, isStore)
}

// SymFlag reports the speculation flag AssignFlags would give one chi/mu
// symbol at a site with the given profiled LOC set. Exported for
// internal/specheck (see LocsFor).
func SymFlag(f *ir.Func, sym *ir.Sym, locs profile.LocSet, ar *alias.Result, mode Mode) bool {
	return symFlag(f, sym, locs, ar, mode)
}

// SymLoc builds the profile LOC naming a program variable in function f
// (exported for internal/specheck's flag re-derivation).
func SymLoc(f *ir.Func, sym *ir.Sym) profile.Loc {
	return symLoc(f, sym)
}

// locsFor fetches the profiled LOC set for a reference site, or nil when
// no profile applies.
func locsFor(prof *profile.Profile, mode Mode, site int, isStore bool) profile.LocSet {
	if mode != ModeProfile || prof == nil {
		return nil
	}
	if isStore {
		return prof.StoreLocs[site]
	}
	return prof.LoadLocs[site]
}

// flagChis sets the Spec flag of each chi: under ModeNone everything is
// flagged; under ModeProfile a chi is flagged iff its symbol's LOC was
// observed at this site (virtual variables stay weak — pairwise kill
// information lives on the member symbols); under ModeHeuristic store
// chis stay weak (the syntax-tree rule is applied during the walk).
// isCall marks call-site chi lists, whose virtual variables are flagged
// from membership of any class LOC under profile mode.
func flagChis(f *ir.Func, chis []*ir.Chi, locs profile.LocSet, ar *alias.Result, mode Mode, isCall bool) {
	for _, chi := range chis {
		chi.Spec = symFlag(f, chi.Sym, locs, ar, mode)
	}
}

func flagMus(f *ir.Func, mus []*ir.Mu, locs profile.LocSet, ar *alias.Result, mode Mode, isCall bool) {
	for _, mu := range mus {
		mu.Spec = symFlag(f, mu.Sym, locs, ar, mode)
	}
}

// symFlag decides the speculation flag for one chi/mu symbol.
func symFlag(f *ir.Func, sym *ir.Sym, locs profile.LocSet, ar *alias.Result, mode Mode) bool {
	switch mode {
	case ModeNone:
		return true
	case ModeHeuristic:
		return false
	case ModeProfile:
		if sym.Kind == ir.SymVirtual {
			if key, ok := ar.HeapSiteOf[sym]; ok {
				return locs.Has(profile.Loc{Kind: profile.LocHeap, Site: key.Site, Ctx: key.Ctx})
			}
			return false // class virtual variable: always weak
		}
		return locs.Has(symLoc(f, sym))
	}
	return true
}

// symLoc builds the profile LOC naming a program variable in function f.
func symLoc(f *ir.Func, sym *ir.Sym) profile.Loc {
	if sym.Kind == ir.SymGlobal {
		return profile.Loc{Kind: profile.LocGlobal, Sym: sym}
	}
	return profile.Loc{Kind: profile.LocLocal, Sym: sym, Fn: f}
}

// addMissingChis appends flagged chis for profiled LOCs absent from the
// compile-time list (conservative-analysis escape hatch from §3.2.1).
func addMissingChis(f *ir.Func, chis []*ir.Chi, locs profile.LocSet, ar *alias.Result) []*ir.Chi {
	if locs == nil {
		return chis
	}
	have := map[*ir.Sym]bool{}
	for _, chi := range chis {
		have[chi.Sym] = true
	}
	for loc := range locs {
		sym := ar.LocToSym(f, loc)
		if sym != nil && !have[sym] {
			have[sym] = true
			chis = append(chis, &ir.Chi{Sym: sym, Spec: true})
		}
	}
	return chis
}

func addMissingMus(f *ir.Func, mus []*ir.Mu, locs profile.LocSet, ar *alias.Result) []*ir.Mu {
	if locs == nil {
		return mus
	}
	have := map[*ir.Sym]bool{}
	for _, mu := range mus {
		have[mu.Sym] = true
	}
	for loc := range locs {
		sym := ar.LocToSym(f, loc)
		if sym != nil && !have[sym] {
			have[sym] = true
			mus = append(mus, &ir.Mu{Sym: sym, Spec: true})
		}
	}
	return mus
}
