package core

import (
	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/profile"
)

// Mode selects how speculation flags are assigned to chi/mu operators.
type Mode int

const (
	// ModeNone disables data speculation: every chi and mu is flagged as
	// highly likely, so no update is ever speculatively ignored. This is
	// the paper's non-speculative baseline.
	ModeNone Mode = iota
	// ModeProfile assigns flags from alias-profile LOC sets (§3.2.1).
	ModeProfile
	// ModeHeuristic assigns flags by the three heuristic rules of §3.2.2:
	// stores' updates are speculatively ignorable except between
	// references with identical syntax trees, and call side effects are
	// always highly likely.
	ModeHeuristic
	// ModeCost assigns flags from counted alias profiles through an
	// expected-cost comparison: a chi/mu stays weak (speculation allowed)
	// iff the expected savings of the speculative schedule beat the
	// expected recovery cost, (1-p)·saved > threshold·p·recover, where
	// p = LOC count / site executions and both cycle terms come from the
	// machine latency model (Policy). ModeProfile is the p∈{0,1} special
	// case of this policy.
	ModeCost
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeProfile:
		return "profile"
	case ModeHeuristic:
		return "heuristic"
	case ModeCost:
		return "cost"
	}
	return "mode?"
}

// ProfileGuided reports whether the mode consults alias-profile LOC sets
// (ModeProfile's set semantics or ModeCost's counted semantics). The
// speculative use-def walk and the flag checker treat both identically:
// the per-symbol decision is already baked into the flags.
func (m Mode) ProfileGuided() bool { return m == ModeProfile || m == ModeCost }

// Policy is the expected-cost speculation policy of ModeCost. Speculating
// past a weak update trades a cheaper schedule on the no-alias path
// against a recovery reload on the alias path; the policy flags a chi/mu
// (blocking speculation) when the trade loses in expectation. The cycle
// terms come from the machine model (PolicyFor), not hand-tuned
// constants, and Threshold scales the recovery side: >1 is conservative
// (misspeculation priced above its latency, e.g. when recovery pollutes
// the cache), <1 aggressive.
type Policy struct {
	Threshold  float64
	SavedInt   float64
	SavedFP    float64
	RecoverInt float64
	RecoverFP  float64
}

// PolicyFor derives the policy's cost terms from a machine model.
// threshold <= 0 means the neutral default of 1 (cost-true comparison).
func PolicyFor(mc machine.Config, threshold float64) Policy {
	if threshold <= 0 {
		threshold = 1
	}
	return Policy{
		Threshold:  threshold,
		SavedInt:   float64(mc.SpecSavedCycles(false)),
		SavedFP:    float64(mc.SpecSavedCycles(true)),
		RecoverInt: float64(mc.SpecRecoveryCycles(false)),
		RecoverFP:  float64(mc.SpecRecoveryCycles(true)),
	}
}

// DefaultPolicy is the policy of the default machine model at the
// neutral threshold.
func DefaultPolicy() Policy { return PolicyFor(machine.Config{}, 0) }

// Speculate reports whether the policy allows speculating past an update
// whose alias probability is p: (1-p)·saved > Threshold·p·recover.
// A probability of 0 always speculates (when there is anything to save)
// and a probability of 1 never does, so ModeProfile's set semantics fall
// out as the degenerate case.
func (pol Policy) Speculate(p float64, fp bool) bool {
	saved, rec := pol.SavedInt, pol.RecoverInt
	if fp {
		saved, rec = pol.SavedFP, pol.RecoverFP
	}
	return (1-p)*saved > pol.Threshold*p*rec
}

// AliasProb converts a (LOC count, site executions) pair into p(alias).
// A zero total means the profile carries no execution counts (a
// version-1 profile): membership degrades to certainty, reproducing the
// set semantics such a profile was collected under. Call-site counts can
// exceed the call's execution count (one call may touch a LOC many
// times), so the ratio is clamped at 1.
func AliasProb(count, total uint64) float64 {
	if total == 0 {
		if count > 0 {
			return 1
		}
		return 0
	}
	if count >= total {
		return 1
	}
	return float64(count) / float64(total)
}

// AssignFlags walks every chi/mu list in the program and sets the Spec
// flags according to the mode, using the default machine model's policy
// for ModeCost. For ModeProfile and ModeCost, prof supplies the LOC
// multisets collected by the alias-profiling interpreter run; profiled
// LOCs that the compile-time lists miss are added as flagged entries (the
// paper's "if any member of its profiled LOC set is not in its chi list,
// add the member using chi_s").
func AssignFlags(prog *ir.Program, ar *alias.Result, prof *profile.Profile, mode Mode) {
	AssignFlagsPolicy(prog, ar, prof, mode, DefaultPolicy())
}

// AssignFlagsPolicy is AssignFlags with an explicit expected-cost policy
// (consulted only by ModeCost).
func AssignFlagsPolicy(prog *ir.Program, ar *alias.Result, prof *profile.Profile, mode Mode, pol Policy) {
	AssignFlagsTiered(prog, ar, prof, mode, pol, nil)
}

// FnOverride re-tiers one function: its chi/mu flags are assigned under
// its own mode and policy instead of the program-wide ones. This is the
// compile-side half of adaptive tiering — flag assignment is purely a
// per-symbol decision baked into the IR before the speculative use-def
// walk runs, and the walk's behavior depends only on those flags, so a
// per-function mode swap is sound without touching the global pipeline
// configuration.
type FnOverride struct {
	Mode   Mode
	Policy Policy
}

// AssignFlagsTiered is AssignFlagsPolicy with per-function overrides
// (keyed by function name; functions absent from the map use the
// program-wide mode and policy).
func AssignFlagsTiered(prog *ir.Program, ar *alias.Result, prof *profile.Profile, mode Mode, pol Policy, overrides map[string]FnOverride) {
	for _, f := range prog.Funcs {
		fnMode, fnPol := mode, pol
		if ov, ok := overrides[f.Name]; ok {
			fnMode, fnPol = ov.Mode, ov.Policy
		}
		assignFlagsFunc(f, ar, prof, fnMode, fnPol)
	}
}

// assignFlagsFunc assigns every chi/mu flag of one function.
func assignFlagsFunc(f *ir.Func, ar *alias.Result, prof *profile.Profile, mode Mode, pol Policy) {
	for _, b := range f.Blocks {
		for _, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.Assign:
				if t.RK == ir.RHSLoad && t.Site != 0 {
					locs := locsFor(prof, mode, t.Site, false)
					total := siteTotal(prof, mode, t.Site)
					fp := t.LoadsFrom != nil && t.LoadsFrom.IsFloat()
					flagMus(f, t.Mus, locs, total, ar, mode, pol, fp)
					t.Mus = addMissingMus(f, t.Mus, locs, total, ar, mode, pol, fp)
				}
				// not an else: an indirect load whose destination is
				// itself a memory-resident scalar also performs a
				// direct store and carries store-side chis
				if t.Dst.Sym.InMemory() {
					// direct store's chi on the virtual variable: a
					// weak summary update under speculation, a hard
					// kill otherwise
					for _, chi := range t.Chis {
						chi.Spec = mode == ModeNone
					}
				}
			case *ir.IStore:
				if t.Site != 0 {
					locs := locsFor(prof, mode, t.Site, true)
					total := siteTotal(prof, mode, t.Site)
					fp := t.StoresTo != nil && t.StoresTo.IsFloat()
					flagChis(f, t.Chis, locs, total, ar, mode, pol, fp)
					t.Chis = addMissingChis(f, t.Chis, locs, total, ar, mode, pol, fp)
				}
			case *ir.Call:
				// heuristic rule 3: call side effects are always
				// highly likely (mu list remains unflagged)
				if mode.ProfileGuided() {
					// a nil profile (failed training run, or the
					// aggressive-promotion bound) means no call-site
					// LOC was ever observed: every side effect stays
					// a weak, speculatively ignorable update
					var mod, ref profile.LocSet
					var total uint64
					if prof != nil {
						mod, ref = prof.CallMod[t.Site], prof.CallRef[t.Site]
						total = siteTotal(prof, mode, t.Site)
					}
					flagChis(f, t.Chis, mod, total, ar, mode, pol, false)
					t.Chis = addMissingChis(f, t.Chis, mod, total, ar, mode, pol, false)
					flagMus(f, t.Mus, ref, total, ar, mode, pol, false)
				} else {
					for _, chi := range t.Chis {
						chi.Spec = true
					}
					if mode == ModeNone {
						for _, mu := range t.Mus {
							mu.Spec = true
						}
					}
				}
			}
		}
	}
}

// LocsFor fetches the profiled LOC set AssignFlags consults for a
// reference site (nil when no profile applies). Exported for the
// speculation-soundness checker (internal/specheck), which re-derives the
// expected flag of every chi/mu and compares it against what the pipeline
// actually assigned.
func LocsFor(prof *profile.Profile, mode Mode, site int, isStore bool) profile.LocSet {
	return locsFor(prof, mode, site, isStore)
}

// SiteTotalFor fetches the site-execution total AssignFlags consults for
// a reference site (0 unless ModeCost with a counted profile). Exported
// for internal/specheck (see LocsFor).
func SiteTotalFor(prof *profile.Profile, mode Mode, site int) uint64 {
	return siteTotal(prof, mode, site)
}

// SymFlag reports the speculation flag AssignFlags would give one chi/mu
// symbol at a site with the given profiled LOC set, execution total and
// policy (the latter two consulted only by ModeCost; fp selects the
// floating-point cost terms). Exported for internal/specheck (see
// LocsFor).
func SymFlag(f *ir.Func, sym *ir.Sym, locs profile.LocSet, total uint64, ar *alias.Result, mode Mode, pol Policy, fp bool) bool {
	return symFlag(f, sym, locs, total, ar, mode, pol, fp)
}

// SymLoc builds the profile LOC naming a program variable in function f
// (exported for internal/specheck's flag re-derivation).
func SymLoc(f *ir.Func, sym *ir.Sym) profile.Loc {
	return symLoc(f, sym)
}

// locsFor fetches the profiled LOC set for a reference site, or nil when
// no profile applies.
func locsFor(prof *profile.Profile, mode Mode, site int, isStore bool) profile.LocSet {
	if !mode.ProfileGuided() || prof == nil {
		return nil
	}
	if isStore {
		return prof.StoreLocs[site]
	}
	return prof.LoadLocs[site]
}

// siteTotal fetches the dynamic execution count of a reference site, or 0
// when the mode does not use counts (or the profile predates them).
func siteTotal(prof *profile.Profile, mode Mode, site int) uint64 {
	if mode != ModeCost || prof == nil {
		return 0
	}
	return prof.SiteTotal[site]
}

// flagChis sets the Spec flag of each chi: under ModeNone everything is
// flagged; under ModeProfile a chi is flagged iff its symbol's LOC was
// observed at this site (virtual variables stay weak — pairwise kill
// information lives on the member symbols); under ModeCost iff the
// expected-cost policy refuses to speculate at the symbol's observed
// alias probability; under ModeHeuristic store chis stay weak (the
// syntax-tree rule is applied during the walk).
func flagChis(f *ir.Func, chis []*ir.Chi, locs profile.LocSet, total uint64, ar *alias.Result, mode Mode, pol Policy, fp bool) {
	for _, chi := range chis {
		chi.Spec = symFlag(f, chi.Sym, locs, total, ar, mode, pol, fp)
	}
}

func flagMus(f *ir.Func, mus []*ir.Mu, locs profile.LocSet, total uint64, ar *alias.Result, mode Mode, pol Policy, fp bool) {
	for _, mu := range mus {
		mu.Spec = symFlag(f, mu.Sym, locs, total, ar, mode, pol, fp)
	}
}

// symFlag decides the speculation flag for one chi/mu symbol.
func symFlag(f *ir.Func, sym *ir.Sym, locs profile.LocSet, total uint64, ar *alias.Result, mode Mode, pol Policy, fp bool) bool {
	switch mode {
	case ModeNone:
		return true
	case ModeHeuristic:
		return false
	case ModeProfile:
		if sym.Kind == ir.SymVirtual {
			if key, ok := ar.HeapSiteOf[sym]; ok {
				return locs.Has(profile.Loc{Kind: profile.LocHeap, Site: key.Site, Ctx: key.Ctx})
			}
			return false // class virtual variable: always weak
		}
		return locs.Has(symLoc(f, sym))
	case ModeCost:
		var count uint64
		if sym.Kind == ir.SymVirtual {
			key, ok := ar.HeapSiteOf[sym]
			if !ok {
				return false // class virtual variable: always weak
			}
			count = locs.Count(profile.Loc{Kind: profile.LocHeap, Site: key.Site, Ctx: key.Ctx})
		} else {
			count = locs.Count(symLoc(f, sym))
		}
		return !pol.Speculate(AliasProb(count, total), fp)
	}
	return true
}

// symLoc builds the profile LOC naming a program variable in function f.
func symLoc(f *ir.Func, sym *ir.Sym) profile.Loc {
	if sym.Kind == ir.SymGlobal {
		return profile.Loc{Kind: profile.LocGlobal, Sym: sym}
	}
	return profile.Loc{Kind: profile.LocLocal, Sym: sym, Fn: f}
}

// addMissingChis appends chis for profiled LOCs absent from the
// compile-time list (conservative-analysis escape hatch from §3.2.1),
// flagged by the same per-symbol policy as the listed entries (under
// ModeProfile an observed LOC always flags, the historical behavior).
func addMissingChis(f *ir.Func, chis []*ir.Chi, locs profile.LocSet, total uint64, ar *alias.Result, mode Mode, pol Policy, fp bool) []*ir.Chi {
	if locs == nil {
		return chis
	}
	have := map[*ir.Sym]bool{}
	for _, chi := range chis {
		have[chi.Sym] = true
	}
	for loc, n := range locs {
		if n == 0 {
			continue // never observed: not a profiled LOC
		}
		sym := ar.LocToSym(f, loc)
		if sym != nil && !have[sym] {
			have[sym] = true
			chis = append(chis, &ir.Chi{Sym: sym, Spec: symFlag(f, sym, locs, total, ar, mode, pol, fp)})
		}
	}
	return chis
}

func addMissingMus(f *ir.Func, mus []*ir.Mu, locs profile.LocSet, total uint64, ar *alias.Result, mode Mode, pol Policy, fp bool) []*ir.Mu {
	if locs == nil {
		return mus
	}
	have := map[*ir.Sym]bool{}
	for _, mu := range mus {
		have[mu.Sym] = true
	}
	for loc, n := range locs {
		if n == 0 {
			continue // never observed: not a profiled LOC
		}
		sym := ar.LocToSym(f, loc)
		if sym != nil && !have[sym] {
			have[sym] = true
			mus = append(mus, &ir.Mu{Sym: sym, Spec: symFlag(f, sym, locs, total, ar, mode, pol, fp)})
		}
	}
	return mus
}
