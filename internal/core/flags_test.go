package core

import (
	"fmt"
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/source"
)

// The default Itanium-flavored model: int loads save 2−1=1 cycle and a
// miss costs 2+4=6, so integer sites speculate below p=1/7; fp loads
// save 9−1=8 against 9+4=13, so fp sites tolerate odds up to 8/21.
func TestDefaultPolicyTerms(t *testing.T) {
	pol := DefaultPolicy()
	if pol.SavedInt != 1 || pol.RecoverInt != 6 {
		t.Errorf("int terms = %v/%v, want 1/6", pol.SavedInt, pol.RecoverInt)
	}
	if pol.SavedFP != 8 || pol.RecoverFP != 13 {
		t.Errorf("fp terms = %v/%v, want 8/13", pol.SavedFP, pol.RecoverFP)
	}
	if pol.Threshold != 1 {
		t.Errorf("threshold = %v, want 1", pol.Threshold)
	}
}

func TestPolicySpeculateBreakEven(t *testing.T) {
	pol := DefaultPolicy()
	cases := []struct {
		p    float64
		fp   bool
		want bool
	}{
		{0, false, true},            // nothing ever aliased: always worth it
		{0.1, false, true},          // below 1/7
		{0.15, false, false},        // just past the 1/7 break-even
		{0.5, false, false},         // coin flip never pays at 1-vs-6
		{1, false, false},           // certain alias: never speculate
		{0.3, true, true},           // fp saves 8, below 8/21 ≈ 0.38
		{0.5, true, false},          // above the fp break-even
		{0, true, true},
		{1, true, false},
	}
	for _, c := range cases {
		if got := pol.Speculate(c.p, c.fp); got != c.want {
			t.Errorf("Speculate(p=%v, fp=%v) = %v, want %v", c.p, c.fp, got, c.want)
		}
	}
}

func TestPolicyThresholdScalesRecovery(t *testing.T) {
	// raising the threshold shrinks the speculated set monotonically
	ps := []float64{0, 0.01, 0.05, 0.1, 0.13, 0.2, 0.5, 1}
	prev := -1
	for _, th := range []float64{0.25, 0.5, 1, 2, 4, 16} {
		pol := PolicyFor(machine.Config{}, th)
		n := 0
		for _, p := range ps {
			if pol.Speculate(p, false) {
				n++
			}
		}
		if prev >= 0 && n > prev {
			t.Errorf("threshold %v speculates %d sites, more than the lower threshold's %d", th, n, prev)
		}
		prev = n
		// p=0 sites always speculate: savings are free
		if !pol.Speculate(0, false) {
			t.Errorf("threshold %v refuses a never-aliasing site", th)
		}
	}
	// threshold <= 0 normalizes to the neutral 1
	if PolicyFor(machine.Config{}, -3) != PolicyFor(machine.Config{}, 1) {
		t.Error("non-positive threshold not defaulted to 1")
	}
}

func TestAliasProb(t *testing.T) {
	cases := []struct {
		count, total uint64
		want         float64
	}{
		{0, 0, 0},    // v1 profile, never observed
		{5, 0, 1},    // v1 profile, observed: set semantics
		{0, 100, 0},  // counted, never observed
		{25, 100, 0.25},
		{100, 100, 1},
		{250, 100, 1}, // call sites can touch a LOC many times per call
	}
	for _, c := range cases {
		if got := AliasProb(c.count, c.total); got != c.want {
			t.Errorf("AliasProb(%d, %d) = %v, want %v", c.count, c.total, got, c.want)
		}
	}
}

// TestCostModeFlagsByProbability forges counted profiles onto twoPtrSrc's
// indirect store and checks the chi flags follow the expected-cost rule:
// rare aliases stay weak (speculation allowed), frequent ones flag.
func TestCostModeFlagsByProbability(t *testing.T) {
	cases := []struct {
		name      string
		count     uint64 // times *q hit a, out of 100 executions
		threshold float64
		wantFlag  bool
	}{
		{"rare-alias-speculates", 5, 0, false},
		{"frequent-alias-blocks", 50, 0, true},
		{"never-alias-speculates", 0, 0, false},
		{"certain-alias-blocks", 100, 0, true},
		{"high-threshold-blocks-rare", 5, 16, true},
		{"high-threshold-keeps-clean", 0, 16, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, ar, _ := buildRaw(t, twoPtrSrc, ModeNone, nil)
			main := prog.FuncMap["main"]
			var aSym *ir.Sym
			for _, g := range prog.Globals {
				if g.Name == "a" {
					aSym = g
				}
			}
			prof := profile.New()
			for _, blk := range main.Blocks {
				for _, st := range blk.Stmts {
					if is, ok := st.(*ir.IStore); ok {
						if c.count > 0 {
							prof.StoreSet(is.Site).AddN(profile.Loc{Kind: profile.LocGlobal, Sym: aSym}, c.count)
						}
						prof.SiteTotal[is.Site] = 100
					}
				}
			}
			AssignFlagsPolicy(prog, ar, prof, ModeCost, PolicyFor(machine.Config{}, c.threshold))
			checked := false
			for _, blk := range main.Blocks {
				for _, st := range blk.Stmts {
					if is, ok := st.(*ir.IStore); ok {
						for _, chi := range is.Chis {
							if chi.Sym == aSym {
								checked = true
								if chi.Spec != c.wantFlag {
									t.Errorf("chi(a) at p=%v/100 threshold=%v: Spec=%v, want %v",
										c.count, c.threshold, chi.Spec, c.wantFlag)
								}
							}
						}
					}
				}
			}
			if !checked {
				t.Fatal("no chi on a found at the indirect store")
			}
		})
	}
}

// TestCostModeDegradesToSetSemantics: a profile without execution totals
// (version 1 on disk) must make ModeCost assign exactly the flags
// ModeProfile would — observed means certain, unobserved means never.
func TestCostModeDegradesToSetSemantics(t *testing.T) {
	flags := func(mode Mode) string {
		prog, ar, _ := buildRaw(t, twoPtrSrc, ModeNone, nil)
		main := prog.FuncMap["main"]
		var aSym *ir.Sym
		for _, g := range prog.Globals {
			if g.Name == "a" {
				aSym = g
			}
		}
		prof := profile.New() // observed a at the store, no totals recorded
		for _, blk := range main.Blocks {
			for _, st := range blk.Stmts {
				if is, ok := st.(*ir.IStore); ok {
					prof.StoreSet(is.Site).Add(profile.Loc{Kind: profile.LocGlobal, Sym: aSym})
				}
			}
		}
		AssignFlags(prog, ar, prof, mode)
		var out string
		for _, blk := range main.Blocks {
			for _, st := range blk.Stmts {
				if is, ok := st.(*ir.IStore); ok {
					for _, chi := range is.Chis {
						out += fmt.Sprintf("%s=%v;", chi.Sym.Name, chi.Spec)
					}
				}
			}
		}
		return out
	}
	if p, c := flags(ModeProfile), flags(ModeCost); p != c {
		t.Errorf("ModeCost without totals diverged from ModeProfile:\nprofile: %s\ncost:    %s", p, c)
	}
}

// TestAssignLoadIntoMemoryDstFlags is the regression test for the flag
// assigner's Assign case: an indirect load whose destination is itself a
// memory-resident scalar is both a load (mu list) and a direct store
// (chi on the class's virtual variable). The old exclusive switch took
// the load arm and left the store-side chi unflagged — under ModeNone it
// stayed weak, silently licensing speculation past a real store. The
// frontend never emits this shape (lowering always loads into a fresh
// temp), so the test fuses the temp away in the lowered IR before
// annotation, the way a copy-propagating pass legitimately could.
func TestAssignLoadIntoMemoryDstFlags(t *testing.T) {
	src := `
int g = 0;
int h = 0;
int main() {
	int *p = &g;
	if (arg(0)) p = &h;
	int x = *p;
	g = x;
	print(g);
	return 0;
}`
	prog := lowerOnly(t, src)
	main := prog.FuncMap["main"]
	var gSym *ir.Sym
	for _, g := range prog.Globals {
		if g.Name == "g" {
			gSym = g
		}
	}
	// fuse `tN = *p; g = tN` into `g = *p`
	var load *ir.Assign
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(*ir.Assign); ok && as.RK == ir.RHSLoad {
				load = as
			}
		}
	}
	if load == nil {
		t.Fatal("no indirect load in lowered IR")
	}
	load.Dst = &ir.Ref{Sym: gSym}

	ar := analyzeAnnotate(prog)
	if len(load.Mus) == 0 {
		t.Fatal("fused load lost its mu list")
	}
	if len(load.Chis) == 0 {
		t.Fatal("fused load's store side got no chi: the Assign arms must be independent, not exclusive")
	}

	AssignFlags(prog, ar, nil, ModeNone)
	for _, chi := range load.Chis {
		if !chi.Spec {
			t.Errorf("ModeNone left the store-side chi on %s weak", chi.Sym.Name)
		}
	}
	for _, mu := range load.Mus {
		if !mu.Spec {
			t.Errorf("ModeNone left mu on %s weak", mu.Sym.Name)
		}
	}
	AssignFlags(prog, ar, profile.New(), ModeProfile)
	for _, chi := range load.Chis {
		if chi.Spec {
			t.Errorf("ModeProfile must keep the direct-store summary chi on %s weak", chi.Sym.Name)
		}
	}
}

// lowerOnly parses and lowers src without alias annotation, so tests can
// mutate the pristine IR first.
func lowerOnly(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func analyzeAnnotate(prog *ir.Program) *alias.Result {
	ar := alias.Analyze(prog, alias.Options{TypeBased: true})
	ar.Annotate(prog)
	return ar
}
