package core

import (
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/source"
)

// build compiles src, runs alias analysis + annotation, optionally
// profiles with args, assigns flags for mode, and builds SSA for main.
func build(t *testing.T, src string, mode Mode, args []int64) (*ir.Program, *alias.Result, *SSA) {
	t.Helper()
	f, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	ar := alias.Analyze(prog, alias.Options{TypeBased: true})
	ar.Annotate(prog)
	var prof *profile.Profile
	if mode == ModeProfile {
		prof = profile.New()
		if _, err := interp.Run(prog, interp.Options{CollectEdges: true, CollectAlias: true, Profile: prof, Args: args}); err != nil {
			t.Fatalf("profiling run: %v", err)
		}
	}
	AssignFlags(prog, ar, prof, mode)
	main := prog.FuncMap["main"]
	ssa := BuildSSA(main, ar.FuncVirtuals[main])
	if err := ir.VerifySSA(main); err != nil {
		t.Fatalf("SSA verification: %v\n%s", err, main)
	}
	return prog, ar, ssa
}

const twoPtrSrc = `
int a = 0;
int b = 0;
int main() {
	int n = arg(0);
	int *p = &a;
	int *q = &b;
	if (n > 100) { q = p; }
	int x = a;
	*q = 5;
	int y = a;
	print(x + y);
	return 0;
}`

func TestSSAVersionsAndPhis(t *testing.T) {
	_, _, ssa := build(t, `
int main() {
	int x = 1;
	if (arg(0)) x = 2;
	print(x);
	return 0;
}`, ModeNone, nil)
	// x must have a phi at the join
	found := false
	for _, b := range ssa.Fn.Blocks {
		for _, phi := range b.Phis {
			if phi.Sym.Name == "x" {
				found = true
				if len(phi.Args) != len(b.Preds) {
					t.Errorf("phi arity %d != preds %d", len(phi.Args), len(b.Preds))
				}
				for _, a := range phi.Args {
					if a.Ver == 0 {
						t.Errorf("phi argument of x left unrenamed")
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no phi inserted for x at the join point")
	}
}

func TestChiVersioning(t *testing.T) {
	prog, _, _ := build(t, twoPtrSrc, ModeNone, nil)
	main := prog.FuncMap["main"]
	// the indirect store must have chis on a, b, vv with fresh versions
	for _, b := range main.Blocks {
		for _, st := range b.Stmts {
			if is, ok := st.(*ir.IStore); ok {
				if len(is.Chis) < 3 {
					t.Fatalf("store has %d chis, want >= 3", len(is.Chis))
				}
				for _, chi := range is.Chis {
					if chi.NewVer == 0 {
						t.Errorf("chi on %s not versioned", chi.Sym.Name)
					}
					if chi.NewVer == chi.OldVer {
						t.Errorf("chi on %s has NewVer == OldVer", chi.Sym.Name)
					}
					if !chi.Spec {
						t.Errorf("ModeNone must flag every chi; %s is weak", chi.Sym.Name)
					}
				}
			}
		}
	}
}

func TestProfileFlagsWeakAndStrong(t *testing.T) {
	// with arg(0)=0 the store *q writes b only: chi on b flagged, chi on
	// a weak.
	prog, _, _ := build(t, twoPtrSrc, ModeProfile, []int64{0})
	main := prog.FuncMap["main"]
	var sawStore bool
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if is, ok := st.(*ir.IStore); ok {
				sawStore = true
				for _, chi := range is.Chis {
					switch chi.Sym.Name {
					case "a":
						if chi.Spec {
							t.Error("chi(a) flagged although profile never saw *q write a")
						}
					case "b":
						if !chi.Spec {
							t.Error("chi(b) not flagged although profile saw *q write b")
						}
					}
				}
			}
		}
	}
	if !sawStore {
		t.Fatal("no indirect store found")
	}
}

func TestSpecHomeSkipsWeakUpdates(t *testing.T) {
	prog, _, ssa := build(t, twoPtrSrc, ModeProfile, []int64{0})
	main := prog.FuncMap["main"]
	// find the two direct loads of a: x = a and y = a
	var loads []*ir.Assign
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(*ir.Assign); ok && as.RK == ir.RHSCopy {
				if r, ok := as.A.(*ir.Ref); ok && r.Sym.Name == "a" {
					loads = append(loads, as)
				}
			}
		}
	}
	if len(loads) != 2 {
		t.Fatalf("found %d direct loads of a, want 2\n%s", len(loads), main)
	}
	v1 := loads[0].A.(*ir.Ref).Ver
	v2 := loads[1].A.(*ir.Ref).Ver
	if v1 == v2 {
		t.Fatalf("the store must give a a new chi version (v1=%d v2=%d)", v1, v2)
	}
	aSym := loads[0].A.(*ir.Ref).Sym
	reaches, spec := ssa.SpecReaches(aSym, v2, v1, &WalkContext{Mode: ModeProfile})
	if !reaches {
		t.Fatal("second load of a should speculatively reach the first (weak chi skip)")
	}
	if !spec {
		t.Fatal("reaching across the store must be marked speculative")
	}
}

func TestSpecHomeBlockedByFlaggedChi(t *testing.T) {
	// with arg(0)=101, q aliases p = &a, so the profile flags chi(a):
	// the second load must NOT speculatively reach the first.
	prog, _, ssa := build(t, twoPtrSrc, ModeProfile, []int64{101})
	main := prog.FuncMap["main"]
	var loads []*ir.Assign
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(*ir.Assign); ok && as.RK == ir.RHSCopy {
				if r, ok := as.A.(*ir.Ref); ok && r.Sym.Name == "a" {
					loads = append(loads, as)
				}
			}
		}
	}
	if len(loads) != 2 {
		t.Fatalf("found %d direct loads of a, want 2", len(loads))
	}
	aSym := loads[0].A.(*ir.Ref).Sym
	v1 := loads[0].A.(*ir.Ref).Ver
	v2 := loads[1].A.(*ir.Ref).Ver
	if reaches, _ := ssa.SpecReaches(aSym, v2, v1, &WalkContext{Mode: ModeProfile}); reaches {
		t.Fatal("flagged chi(a) must block the speculative walk")
	}
}

func TestHeuristicModeSkipsDifferentSyntax(t *testing.T) {
	prog, _, ssa := build(t, twoPtrSrc, ModeHeuristic, nil)
	main := prog.FuncMap["main"]
	keys := ir.SyntaxKeys(main)
	var loads []*ir.Assign
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(*ir.Assign); ok && as.RK == ir.RHSCopy {
				if r, ok := as.A.(*ir.Ref); ok && r.Sym.Name == "a" {
					loads = append(loads, as)
				}
			}
		}
	}
	if len(loads) != 2 {
		t.Fatalf("found %d direct loads of a, want 2", len(loads))
	}
	aSym := loads[0].A.(*ir.Ref).Sym
	ctx := &WalkContext{Mode: ModeHeuristic, SynKey: keys[ir.Stmt(loads[1])], Keys: keys}
	reaches, spec := ssa.SpecReaches(aSym, loads[1].A.(*ir.Ref).Ver, loads[0].A.(*ir.Ref).Ver, ctx)
	if !reaches || !spec {
		t.Fatalf("heuristic mode should speculatively skip *q (different syntax tree): reaches=%v spec=%v", reaches, spec)
	}
}

func TestHeuristicModeBlockedBySameSyntax(t *testing.T) {
	// load *p, store *p, load *p: the store has the same syntax tree, so
	// heuristic rule 1 treats it as a real kill.
	src := `
int a = 0;
int main() {
	int *p = &a;
	int x = *p;
	*p = 9;
	int y = *p;
	print(x + y);
	return 0;
}`
	prog, ar, _ := buildRaw(t, src, ModeHeuristic, nil)
	main := prog.FuncMap["main"]
	ssa := BuildSSA(main, ar.FuncVirtuals[main])
	keys := ir.SyntaxKeys(main)
	var loads []*ir.Assign
	var vv *ir.Sym
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(*ir.Assign); ok && as.RK == ir.RHSLoad {
				loads = append(loads, as)
				for _, mu := range as.Mus {
					if strings.HasPrefix(mu.Sym.Name, "v$") {
						vv = mu.Sym
					}
				}
			}
		}
	}
	if len(loads) != 2 || vv == nil {
		t.Fatalf("want 2 indirect loads with a vv mu, got %d (vv=%v)", len(loads), vv)
	}
	muVer := func(a *ir.Assign) int {
		for _, mu := range a.Mus {
			if mu.Sym == vv {
				return mu.Ver
			}
		}
		return -1
	}
	ctx := &WalkContext{Mode: ModeHeuristic, SynKey: keys[ir.Stmt(loads[1])], Keys: keys}
	if reaches, _ := ssa.SpecReaches(vv, muVer(loads[1]), muVer(loads[0]), ctx); reaches {
		t.Fatal("same-syntax store must block the heuristic skip")
	}
}

// buildRaw is build without the SSA construction (for tests that build it
// themselves).
func buildRaw(t *testing.T, src string, mode Mode, args []int64) (*ir.Program, *alias.Result, *profile.Profile) {
	t.Helper()
	f, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	ar := alias.Analyze(prog, alias.Options{TypeBased: true})
	ar.Annotate(prog)
	var prof *profile.Profile
	if mode == ModeProfile {
		prof = profile.New()
		if _, err := interp.Run(prog, interp.Options{CollectEdges: true, CollectAlias: true, Profile: prof, Args: args}); err != nil {
			t.Fatalf("profiling run: %v", err)
		}
	}
	AssignFlags(prog, ar, prof, mode)
	return prog, ar, prof
}

// TestAddMissingProfiledLocs: §3.2.1's escape hatch — a profiled LOC that
// the compile-time chi/mu list misses is added as a flagged entry.
func TestAddMissingProfiledLocs(t *testing.T) {
	src := `
int a = 0;
int b = 0;
int main() {
	int *p = &a;
	*p = 1;
	int x = *p;
	print(x);
	return 0;
}`
	prog, ar, _ := buildRaw(t, src, ModeNone, nil)
	main := prog.FuncMap["main"]
	// find b (not in p's alias class: p only ever points to a)
	var bSym *ir.Sym
	for _, g := range prog.Globals {
		if g.Name == "b" {
			bSym = g
		}
	}
	// forge a profile claiming the store also wrote b
	prof := profile.New()
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			switch s := st.(type) {
			case *ir.IStore:
				prof.StoreSet(s.Site).Add(profile.Loc{Kind: profile.LocGlobal, Sym: bSym})
				prof.StoreSet(s.Site).Add(profile.Loc{Kind: profile.LocGlobal, Sym: prog.Globals[0]})
			case *ir.Assign:
				if s.RK == ir.RHSLoad {
					prof.LoadSet(s.Site).Add(profile.Loc{Kind: profile.LocGlobal, Sym: bSym})
				}
			}
		}
	}
	AssignFlags(prog, ar, prof, ModeProfile)
	foundChi, foundMu := false, false
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			switch s := st.(type) {
			case *ir.IStore:
				for _, chi := range s.Chis {
					if chi.Sym == bSym && chi.Spec {
						foundChi = true
					}
				}
			case *ir.Assign:
				for _, mu := range s.Mus {
					if mu.Sym == bSym && mu.Spec {
						foundMu = true
					}
				}
			}
		}
	}
	if !foundChi {
		t.Error("profiled-but-unanalyzed store LOC was not added as chi_s")
	}
	if !foundMu {
		t.Error("profiled-but-unanalyzed load LOC was not added as mu_s")
	}
}

// TestFlagModesExhaustive: every chi is flagged under ModeNone; none of
// the store chis are flagged under ModeHeuristic; call chis are always
// flagged except under a matching profile.
func TestFlagModesExhaustive(t *testing.T) {
	src := `
int g = 0;
void w() { g = 1; }
int main() {
	int *p = &g;
	*p = 2;
	w();
	int x = *p;
	print(x);
	return 0;
}`
	for _, mode := range []Mode{ModeNone, ModeHeuristic} {
		prog, _, _ := buildRaw(t, src, mode, nil)
		for _, blk := range prog.FuncMap["main"].Blocks {
			for _, st := range blk.Stmts {
				switch s := st.(type) {
				case *ir.IStore:
					for _, chi := range s.Chis {
						if mode == ModeNone && !chi.Spec {
							t.Errorf("ModeNone: weak chi on %s", chi.Sym.Name)
						}
						if mode == ModeHeuristic && chi.Spec {
							t.Errorf("ModeHeuristic: flagged store chi on %s", chi.Sym.Name)
						}
					}
				case *ir.Call:
					for _, chi := range s.Chis {
						if !chi.Spec {
							t.Errorf("mode %v: call chi on %s must be flagged", mode, chi.Sym.Name)
						}
					}
				}
			}
		}
	}
}
