package core
