package core

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/source"
	"repro/internal/workloads"
)

// TestSSAInvariantsOnWorkloads builds the speculative SSA form for every
// function of every workload kernel and checks the SSA contract:
// single definition per version, every used version defined, and each
// definition dominating its uses.
func TestSSAInvariantsOnWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			file, err := source.Parse(w.Src)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := source.Lower(file)
			if err != nil {
				t.Fatal(err)
			}
			ar := alias.Analyze(prog, alias.Options{TypeBased: true})
			ar.Annotate(prog)
			AssignFlags(prog, ar, nil, ModeHeuristic)
			for _, fn := range prog.Funcs {
				ssa := BuildSSA(fn, ar.FuncVirtuals[fn])
				if err := ir.VerifySSA(fn); err != nil {
					t.Fatalf("%s: %v", fn.Name, err)
				}
				checkDefsDominateUses(t, ssa)
				checkChiChainsTerminate(t, ssa)
			}
		})
	}
}

// checkDefsDominateUses verifies that every versioned use is reached by
// its definition in the dominator tree.
func checkDefsDominateUses(t *testing.T, s *SSA) {
	t.Helper()
	fn := s.Fn
	useAt := func(b *ir.Block, op ir.Operand) {
		r, ok := op.(*ir.Ref)
		if !ok || r.Ver == 0 {
			return
		}
		d, ok := s.Def[SymVer{Sym: r.Sym, Ver: r.Ver}]
		if !ok {
			t.Errorf("%s: use of %s_%d has no recorded definition", fn.Name, r.Sym.Name, r.Ver)
			return
		}
		if d.Block != nil && !s.DT.Dominates(d.Block, b) {
			t.Errorf("%s: def of %s_%d in B%d does not dominate use in B%d",
				fn.Name, r.Sym.Name, r.Ver, d.Block.ID, b.ID)
		}
	}
	for _, b := range fn.Blocks {
		for _, st := range b.Stmts {
			for _, op := range ir.Uses(st) {
				useAt(b, op)
			}
			// mu versions must be defined too
			switch x := st.(type) {
			case *ir.Assign:
				for _, mu := range x.Mus {
					if mu.Ver != 0 {
						if _, ok := s.Def[SymVer{Sym: mu.Sym, Ver: mu.Ver}]; !ok {
							t.Errorf("%s: mu(%s_%d) undefined", fn.Name, mu.Sym.Name, mu.Ver)
						}
					}
				}
			case *ir.Call:
				for _, mu := range x.Mus {
					if mu.Ver != 0 {
						if _, ok := s.Def[SymVer{Sym: mu.Sym, Ver: mu.Ver}]; !ok {
							t.Errorf("%s: mu(%s_%d) undefined", fn.Name, mu.Sym.Name, mu.Ver)
						}
					}
				}
			}
		}
		if b.Term.Cond != nil {
			useAt(b, b.Term.Cond)
		}
		if b.Term.Val != nil {
			useAt(b, b.Term.Val)
		}
		// phi args must be defined in (a block dominating) the pred
		for _, phi := range b.Phis {
			for i, arg := range phi.Args {
				if arg.Ver == 0 {
					continue
				}
				d, ok := s.Def[SymVer{Sym: arg.Sym, Ver: arg.Ver}]
				if !ok {
					t.Errorf("%s: phi arg %s_%d undefined", fn.Name, arg.Sym.Name, arg.Ver)
					continue
				}
				pred := b.Preds[i]
				if d.Block != nil && !s.DT.Dominates(d.Block, pred) {
					t.Errorf("%s: phi arg %s_%d def in B%d does not dominate pred B%d",
						fn.Name, arg.Sym.Name, arg.Ver, d.Block.ID, pred.ID)
				}
			}
		}
	}
}

// checkChiChainsTerminate walks every chi's old-version chain to entry,
// catching cycles or dangling links in the speculative use-def chains.
func checkChiChainsTerminate(t *testing.T, s *SSA) {
	t.Helper()
	for sv, d := range s.Def {
		if d.Kind != DefChi {
			continue
		}
		seen := map[int]bool{}
		cur := sv.Ver
		for {
			if seen[cur] {
				t.Fatalf("%s: chi chain for %s cycles at version %d", s.Fn.Name, sv.Sym.Name, cur)
			}
			seen[cur] = true
			dd, ok := s.Def[SymVer{Sym: sv.Sym, Ver: cur}]
			if !ok || dd.Kind != DefChi {
				break
			}
			cur = dd.Chi.OldVer
		}
	}
}

// TestSpecHomeMonotone: the speculative walk never increases the version
// and always terminates at a non-chi definition or a flagged chi.
func TestSpecHomeMonotone(t *testing.T) {
	for _, w := range workloads.All() {
		file, err := source.Parse(w.Src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := source.Lower(file)
		if err != nil {
			t.Fatal(err)
		}
		ar := alias.Analyze(prog, alias.Options{TypeBased: true})
		ar.Annotate(prog)
		AssignFlags(prog, ar, nil, ModeHeuristic)
		for _, fn := range prog.Funcs {
			ssa := BuildSSA(fn, ar.FuncVirtuals[fn])
			keys := ir.SyntaxKeys(fn)
			ctx := &WalkContext{Mode: ModeHeuristic, Keys: keys, SynKey: "<none>"}
			for sv := range ssa.Def {
				home, _ := ssa.SpecHome(sv.Sym, sv.Ver, ctx)
				if home > sv.Ver {
					t.Fatalf("%s: SpecHome(%s_%d) = %d moved forward", fn.Name, sv.Sym.Name, sv.Ver, home)
				}
				if d, ok := ssa.Def[SymVer{Sym: sv.Sym, Ver: home}]; ok && d.Kind == DefChi && !d.Chi.Spec {
					// stopping at an unflagged chi is only allowed when
					// the context blocks the skip
					if !ctx.BlocksSkip(d.Stmt) {
						t.Fatalf("%s: SpecHome stopped at skippable chi %s_%d", fn.Name, sv.Sym.Name, home)
					}
				}
			}
		}
	}
}
