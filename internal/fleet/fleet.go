// Package fleet is the coordinator side of a specd fleet: it shards a
// sweep's (workload × config) grid or a corpus of MiniC sources across
// N specd workers and folds their responses into one report that is
// byte-identical to a single-node run.
//
// The pieces:
//
//   - placement: items are assigned by rendezvous hashing on the same
//     content-addressed cache key the workers' remote cache tier uses
//     (cache.HRWRank), so identical programs land on the node that is
//     already warm for them — with a bounded-load cap (ceil(n/workers)
//     items per worker, spilling to the next-ranked peer) so a small
//     grid cannot collapse onto one node;
//   - dispatch: bounded concurrency over HTTP with per-request
//     timeouts, per-item retry with exponential backoff, and hedged
//     requests — after HedgeAfter with no response, the same item is
//     launched on the next-ranked worker and the loser is cancelled
//     through its request context;
//   - health: a worker that fails repeatedly is marked down and skipped
//     in placement until a cooldown passes; a permanently-down worker
//     degrades the fleet to the remaining shards, never the report
//     (results are deterministic, so where an item ran is invisible);
//   - aggregation: responses are parsed with the experiments package's
//     own wire formats and folded by its order-independent aggregators,
//     which is what makes "1 worker or N" produce identical bytes.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
)

// Config shapes a Coordinator. Workers is required; everything else has
// a usable zero value.
type Config struct {
	// Workers are the specd base URLs (e.g. "http://127.0.0.1:8080").
	Workers []string
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Concurrency bounds the coordinator's in-flight requests
	// (0 = 2 per worker).
	Concurrency int
	// Retries is the number of re-dispatches after a failed attempt
	// (0 = default 3; negative = none). Retries rotate through the
	// item's ranked workers, so they double as failover.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt
	// (0 = default 100ms).
	Backoff time.Duration
	// HedgeAfter launches a second copy of an item on the next-ranked
	// worker when the first has not answered within this duration; the
	// first response wins and the loser's request context is cancelled
	// (0 = default 2s; negative = hedging off).
	HedgeAfter time.Duration
	// Timeout bounds each HTTP attempt (0 = default 120s).
	Timeout time.Duration
	// DownAfter is how many consecutive failures mark a worker down
	// (0 = default 3).
	DownAfter int
	// DownFor is how long a down worker is skipped in placement before
	// it is probed again (0 = default 15s).
	DownFor time.Duration
	// Logger receives dispatch diagnostics (nil = silent).
	Logger *log.Logger
}

// timeNow is a test seam for health-cooldown clocks.
var timeNow = time.Now

// Coordinator shards work across a specd fleet. Safe for concurrent
// use.
type Coordinator struct {
	cfg    Config
	client *http.Client

	mu     sync.Mutex
	health map[string]*workerHealth
}

type workerHealth struct {
	consecFails int
	downUntil   time.Time
}

// New builds a Coordinator over cfg.Workers.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2 * len(cfg.Workers)
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.DownFor <= 0 {
		cfg.DownFor = 15 * time.Second
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client, health: map[string]*workerHealth{}}
	for _, w := range cfg.Workers {
		c.health[w] = &workerHealth{}
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Printf(format, args...)
	}
}

// alive returns the workers currently considered up. When every worker
// is down it returns all of them: total refusal would stall the sweep,
// and probing everything is the only way back.
func (c *Coordinator) alive(now time.Time) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var up []string
	for _, w := range c.cfg.Workers {
		if h := c.health[w]; h.downUntil.IsZero() || now.After(h.downUntil) {
			up = append(up, w)
		}
	}
	if len(up) == 0 {
		return append([]string(nil), c.cfg.Workers...)
	}
	return up
}

func (c *Coordinator) markResult(worker string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[worker]
	if h == nil {
		return
	}
	if ok {
		h.consecFails = 0
		h.downUntil = time.Time{}
		return
	}
	h.consecFails++
	if h.consecFails >= c.cfg.DownAfter {
		h.downUntil = time.Now().Add(c.cfg.DownFor)
		c.logf("fleet: worker %s marked down for %s after %d consecutive failures", worker, c.cfg.DownFor, h.consecFails)
	}
}

// Assign places items (by cache key) onto the currently-alive workers:
// rendezvous order per key with a bounded-load cap of ceil(n/workers)
// per worker, spilling to the next-ranked peer. Deterministic given the
// same keys and worker set; the cap is what keeps a small grid from
// hashing onto one node (pure HRW can split 8 items 6/2, forfeiting
// half the fleet).
func Assign(keys []cache.Key, workers []string) []string {
	if len(workers) == 0 {
		return make([]string, len(keys))
	}
	capacity := (len(keys) + len(workers) - 1) / len(workers)
	load := map[string]int{}
	// items are placed in key order (not slice order) so the placement
	// is a pure function of the key set
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(keys[idx[a]][:], keys[idx[b]][:]) < 0
	})
	out := make([]string, len(keys))
	for _, i := range idx {
		ranked := cache.HRWRank(keys[i], workers)
		chosen := ranked[0]
		for _, w := range ranked {
			if load[w] < capacity {
				chosen = w
				break
			}
		}
		load[chosen]++
		out[i] = chosen
	}
	return out
}

// errPermanent wraps a worker response that is a deterministic job
// failure (4xx/5xx with the service's error envelope), not worker
// trouble: retrying it elsewhere would produce the same answer, so the
// dispatcher surfaces it immediately.
type errPermanent struct{ msg string }

func (e *errPermanent) Error() string { return e.msg }

// JobError extracts the service-reported error message from a dispatch
// failure, or "" if the failure was transport-level (worker down,
// timeout) rather than a deterministic job failure.
func JobError(err error) string {
	var pe *errPermanent
	if errors.As(err, &pe) {
		return pe.msg
	}
	return ""
}

// errorBody mirrors the server's JSON error envelope.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"requestID"`
}

// post runs one HTTP attempt against one worker. The returned error is
// *errPermanent for deterministic job failures; anything else is worker
// trouble and retryable.
func (c *Coordinator) post(ctx context.Context, worker, path string, body []byte) ([]byte, error) {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, worker+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return data, nil
	case resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusInternalServerError:
		// the job itself failed, deterministically: every worker would
		// say the same, so carry the service's message out as permanent
		var eb errorBody
		if jerr := json.Unmarshal(data, &eb); jerr == nil && eb.Error != "" {
			return nil, &errPermanent{msg: eb.Error}
		}
		return nil, &errPermanent{msg: fmt.Sprintf("worker returned %d", resp.StatusCode)}
	default:
		// 429 (overloaded), 503 (draining), 504 (timed out), and
		// anything unexpected: worker trouble, retry elsewhere
		return nil, fmt.Errorf("worker %s: status %d", worker, resp.StatusCode)
	}
}

// reply is one attempt's outcome inside the hedged dispatch.
type reply struct {
	worker string
	data   []byte
	err    error
}

// dispatch runs one item to completion: hedged attempt on the item's
// preferred + next-ranked worker, then retry-with-backoff rotating
// through the ranking, marking worker health as it goes. preferred is
// the bounded-load placement from Assign; the HRW ranking provides the
// failover order behind it.
func (c *Coordinator) dispatch(ctx context.Context, key cache.Key, preferred, path string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		order := c.rankFor(key, preferred, attempt)
		data, err := c.tryHedged(ctx, order, path, body)
		if err == nil {
			return data, nil
		}
		if JobError(err) != "" {
			return nil, err // deterministic job failure: no retry helps
		}
		lastErr = err
		if attempt >= c.cfg.Retries {
			break
		}
		// exponential backoff, honoring cancellation
		delay := c.cfg.Backoff << uint(attempt)
		c.logf("fleet: attempt %d for %s failed (%v), retrying in %s", attempt+1, path, err, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("fleet: all %d attempts failed: %w", c.cfg.Retries+1, lastErr)
}

// rankFor builds the attempt's worker order: the preferred placement
// first, then the key's HRW ranking over currently-alive workers,
// rotated by attempt so consecutive retries try different nodes.
func (c *Coordinator) rankFor(key cache.Key, preferred string, attempt int) []string {
	ranked := cache.HRWRank(key, c.alive(time.Now()))
	order := make([]string, 0, len(ranked)+1)
	if preferred != "" {
		order = append(order, preferred)
	}
	for _, w := range ranked {
		if w != preferred {
			order = append(order, w)
		}
	}
	if len(order) == 0 {
		order = append(order, c.cfg.Workers...)
	}
	if attempt > 0 {
		rot := attempt % len(order)
		order = append(order[rot:len(order):len(order)], order[:rot]...)
	}
	return order
}

// tryHedged runs one attempt: the first worker in order immediately
// and, if HedgeAfter passes with no reply, the second as a hedge. The
// first success (or deterministic job failure) wins and the loser is
// cancelled through its request context. Both outcomes update worker
// health.
func (c *Coordinator) tryHedged(ctx context.Context, order []string, path string, body []byte) ([]byte, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels whichever request is still in flight
	replies := make(chan reply, 2)
	launch := func(worker string) {
		go func() {
			data, err := c.post(hctx, worker, path, body)
			replies <- reply{worker: worker, data: data, err: err}
		}()
	}
	launch(order[0])
	inflight := 1

	var hedge <-chan time.Time
	if c.cfg.HedgeAfter > 0 && len(order) > 1 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}

	var firstErr error
	for {
		select {
		case <-hedge:
			hedge = nil
			c.logf("fleet: hedging %s onto %s", path, order[1])
			launch(order[1])
			inflight++
		case r := <-replies:
			inflight--
			if r.err == nil {
				c.markResult(r.worker, true)
				return r.data, nil
			}
			if msg := JobError(r.err); msg != "" {
				// the job failed deterministically; the worker itself is fine
				c.markResult(r.worker, true)
				return nil, r.err
			}
			// losers cancelled by our own hedge winner would show up as
			// context.Canceled — but we only get here when nothing has
			// won yet, so this is a real failure
			c.markResult(r.worker, false)
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				// primary failed fast and the hedge timer hasn't fired:
				// fire the hedge worker immediately as the fallback
				if hedge != nil && len(order) > 1 {
					hedge = nil
					launch(order[1])
					inflight++
					continue
				}
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
