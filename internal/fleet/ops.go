package fleet

// The fleet's two batch operations: a machine-config sweep over
// registered workloads and a corpus analysis over MiniC sources. Both
// shard by content-addressed key through Assign, dispatch with
// retry/hedging, and fold responses with the experiments package's
// order-independent aggregation — the reports are byte-identical to a
// single-node run at any fleet size.

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/server"
)

// WorkloadSweep is one workload's sweep grid, as returned by specd's
// POST /sweep.
type WorkloadSweep struct {
	Workload string                     `json:"workload"`
	Points   []experiments.MachinePoint `json:"points"`
}

// SweepAll runs the (workload × config) grid across the fleet: one
// /sweep job per workload (nil configs = the standard mixed 24-config
// grid), sharded by workload key so repeat sweeps land on warm nodes.
// Results come back in input order regardless of which worker answered
// or when. A failed workload fails the sweep — grids are all-or-
// nothing.
func (c *Coordinator) SweepAll(ctx context.Context, names []string, configs []machine.Config) ([]WorkloadSweep, error) {
	keys := make([]cache.Key, len(names))
	for i, n := range names {
		keys[i] = cache.KeyOf([]byte("fleet-sweep"), []byte(n))
	}
	preferred := Assign(keys, c.alive(timeNow()))
	out := make([]WorkloadSweep, len(names))
	err := par.EachCtx(ctx, c.cfg.Concurrency, len(names), func(i int) error {
		body, err := json.Marshal(server.SweepRequest{Workload: names[i], Configs: configs})
		if err != nil {
			return err
		}
		data, err := c.dispatch(ctx, keys[i], preferred[i], "/sweep", body)
		if err != nil {
			return fmt.Errorf("fleet: sweep %s: %w", names[i], err)
		}
		var resp server.SweepResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			return fmt.Errorf("fleet: sweep %s: bad response: %w", names[i], err)
		}
		out[i] = WorkloadSweep{Workload: resp.Workload, Points: resp.Points}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MarshalSweeps renders a fleet sweep as canonical indented JSON with a
// trailing newline.
func MarshalSweeps(sweeps []WorkloadSweep) ([]byte, error) {
	data, err := json.MarshalIndent(sweeps, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// CorpusKey is the content-addressed placement key of one corpus file —
// the same "identical programs land on the same node" key the remote
// cache tier shards by.
func CorpusKey(f experiments.CorpusFile) cache.Key {
	return cache.KeyOf([]byte("fleet-corpus"), []byte(f.Source))
}

// Corpus analyzes a corpus fleet-wide: one /corpus job per file,
// sharded by source content, folded with AggregateCorpus. A file the
// pipeline cannot analyze (a deterministic job failure, e.g. a parse
// error) becomes a CorpusFailure carrying the service's own error
// string — the same string a single-node run records, so failed files
// do not break byte-identity. A file that cannot be dispatched at all
// (every worker unreachable through all retries) fails the run.
func (c *Coordinator) Corpus(ctx context.Context, files []experiments.CorpusFile) (*experiments.CorpusReport, error) {
	keys := make([]cache.Key, len(files))
	for i, f := range files {
		keys[i] = CorpusKey(f)
	}
	preferred := Assign(keys, c.alive(timeNow()))
	results := make([]*experiments.CorpusFileResult, len(files))
	fails := make([]*experiments.CorpusFailure, len(files))
	err := par.EachCtx(ctx, c.cfg.Concurrency, len(files), func(i int) error {
		body, err := json.Marshal(server.CorpusRequest{Name: files[i].Name, Source: files[i].Source})
		if err != nil {
			return err
		}
		data, err := c.dispatch(ctx, keys[i], preferred[i], "/corpus", body)
		if err != nil {
			if msg := JobError(err); msg != "" {
				fails[i] = &experiments.CorpusFailure{Name: files[i].Name, Error: msg}
				return nil
			}
			return fmt.Errorf("fleet: corpus %s: %w", files[i].Name, err)
		}
		res, err := experiments.UnmarshalCorpusFile(data)
		if err != nil {
			return fmt.Errorf("fleet: corpus %s: %w", files[i].Name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ok []*experiments.CorpusFileResult
	var failed []experiments.CorpusFailure
	for i := range files {
		if results[i] != nil {
			ok = append(ok, results[i])
		}
		if fails[i] != nil {
			failed = append(failed, *fails[i])
		}
	}
	return experiments.AggregateCorpus(ok, failed), nil
}
