package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
)

func testKey(i int) cache.Key { return cache.KeyOf([]byte(fmt.Sprintf("item-%d", i))) }

func TestAssignBoundedLoad(t *testing.T) {
	workers := []string{"http://a", "http://b"}
	keys := make([]cache.Key, 8)
	for i := range keys {
		keys[i] = testKey(i)
	}
	got := Assign(keys, workers)
	load := map[string]int{}
	for i, w := range got {
		if w == "" {
			t.Fatalf("item %d unassigned", i)
		}
		load[w]++
	}
	// capacity = ceil(8/2) = 4: the bounded-load cap forces an even
	// split no matter how the hash falls
	if load["http://a"] != 4 || load["http://b"] != 4 {
		t.Fatalf("load = %v, want 4/4", load)
	}
	// deterministic: same keys, same workers -> same placement
	again := Assign(keys, workers)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("placement not deterministic at %d", i)
		}
	}
	// placement is a function of the key, not the slice position:
	// reversing the items permutes the output identically
	rev := make([]cache.Key, len(keys))
	for i := range keys {
		rev[i] = keys[len(keys)-1-i]
	}
	revGot := Assign(rev, workers)
	for i := range keys {
		if revGot[len(keys)-1-i] != got[i] {
			t.Fatalf("placement depends on item order")
		}
	}
}

func TestAssignAffinityUnderGrowth(t *testing.T) {
	// Adding a worker must keep most keys where they were (rendezvous
	// hashing's point): with the load cap at ceil(n/w), strictly fewer
	// than half the keys may move when going 2 -> 3 workers.
	keys := make([]cache.Key, 30)
	for i := range keys {
		keys[i] = testKey(i)
	}
	two := Assign(keys, []string{"http://a", "http://b"})
	three := Assign(keys, []string{"http://a", "http://b", "http://c"})
	moved := 0
	for i := range keys {
		if two[i] != three[i] && three[i] != "http://c" {
			moved++ // moved between surviving workers, not to the new one
		}
	}
	if moved > len(keys)/2 {
		t.Fatalf("%d/%d keys reshuffled between surviving workers", moved, len(keys))
	}
}

// jsonWorker is a fake specd answering every POST with a canned JSON
// body after an optional delay, recording request contexts.
type jsonWorker struct {
	delay     time.Duration
	body      string
	status    int
	calls     atomic.Int64
	cancelled atomic.Int64
}

func (f *jsonWorker) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.calls.Add(1)
		// drain the body like the real handlers do: the server only
		// notices a client cancellation once no request bytes are pending
		io.Copy(io.Discard, r.Body)
		if f.delay > 0 {
			select {
			case <-time.After(f.delay):
			case <-r.Context().Done():
				f.cancelled.Add(1)
				return
			}
		}
		status := f.status
		if status == 0 {
			status = http.StatusOK
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintln(w, f.body)
	})
}

func newCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHedgedRequestCancelsLoser(t *testing.T) {
	slow := &jsonWorker{delay: 5 * time.Second, body: `{"from":"slow"}`}
	fast := &jsonWorker{body: `{"from":"fast"}`}
	slowSrv := httptest.NewServer(slow.handler())
	defer slowSrv.Close()
	fastSrv := httptest.NewServer(fast.handler())
	defer fastSrv.Close()

	c := newCoord(t, Config{
		Workers:    []string{slowSrv.URL, fastSrv.URL},
		HedgeAfter: 20 * time.Millisecond,
		Timeout:    10 * time.Second,
	})
	start := time.Now()
	// preferred = the slow worker, so the hedge is what wins
	data, err := c.dispatch(context.Background(), testKey(1), slowSrv.URL, "/corpus", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"from\":\"fast\"}\n" {
		t.Fatalf("got %q, want the hedge's response", data)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("hedge did not preempt the slow worker (%s elapsed)", el)
	}
	// the loser's request context must be cancelled promptly
	deadline := time.Now().Add(2 * time.Second)
	for slow.cancelled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if slow.cancelled.Load() == 0 {
		t.Fatal("slow worker's request was not cancelled after the hedge won")
	}
}

func TestRetriesRespectBackoff(t *testing.T) {
	var n atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	defer flaky.Close()

	backoff := 30 * time.Millisecond
	c := newCoord(t, Config{
		Workers:    []string{flaky.URL},
		Retries:    3,
		Backoff:    backoff,
		HedgeAfter: -1,
		Timeout:    5 * time.Second,
	})
	start := time.Now()
	data, err := c.dispatch(context.Background(), testKey(1), flaky.URL, "/sweep", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"ok\":true}\n" {
		t.Fatalf("got %q", data)
	}
	if n.Load() != 3 {
		t.Fatalf("worker saw %d attempts, want 3", n.Load())
	}
	// two failures -> backoff + 2*backoff of waiting before the success
	if el := time.Since(start); el < 3*backoff {
		t.Fatalf("retries did not back off: %s elapsed, want >= %s", el, 3*backoff)
	}
}

func TestRetryCancelledDuringBackoff(t *testing.T) {
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // every attempt fails at the dial
	c := newCoord(t, Config{
		Workers:    []string{down.URL},
		Retries:    10,
		Backoff:    time.Hour, // the test would hang if ctx were ignored
		HedgeAfter: -1,
		Timeout:    time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.dispatch(ctx, testKey(1), down.URL, "/sweep", []byte(`{}`))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil || ctx.Err() == nil {
			t.Fatalf("dispatch = %v, want ctx error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch did not honor cancellation during backoff")
	}
}

func TestPermanentJobErrorNotRetried(t *testing.T) {
	bad := &jsonWorker{status: http.StatusBadRequest, body: `{"error":"minic:1:1: no","requestID":"req-1"}`}
	srv := httptest.NewServer(bad.handler())
	defer srv.Close()
	other := &jsonWorker{body: `{}`}
	otherSrv := httptest.NewServer(other.handler())
	defer otherSrv.Close()

	c := newCoord(t, Config{
		Workers:    []string{srv.URL, otherSrv.URL},
		Retries:    5,
		Backoff:    time.Millisecond,
		HedgeAfter: -1,
		Timeout:    5 * time.Second,
	})
	_, err := c.dispatch(context.Background(), testKey(1), srv.URL, "/corpus", []byte(`{}`))
	if err == nil {
		t.Fatal("want a permanent job error")
	}
	if JobError(err) != "minic:1:1: no" {
		t.Fatalf("JobError = %q", JobError(err))
	}
	if bad.calls.Load() != 1 {
		t.Fatalf("permanent failure was retried %d times", bad.calls.Load())
	}
	if other.calls.Load() != 0 {
		t.Fatalf("permanent failure was failed over to another worker")
	}
}

func TestDownWorkerFailsOver(t *testing.T) {
	live := &jsonWorker{body: `{"ok":true}`}
	liveSrv := httptest.NewServer(live.handler())
	defer liveSrv.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	c := newCoord(t, Config{
		Workers:    []string{dead.URL, liveSrv.URL},
		Retries:    2,
		Backoff:    time.Millisecond,
		HedgeAfter: 50 * time.Millisecond,
		Timeout:    5 * time.Second,
		DownAfter:  2,
	})
	// every item prefers the dead worker; all must land on the live one
	for i := 0; i < 6; i++ {
		data, err := c.dispatch(context.Background(), testKey(i), dead.URL, "/sweep", []byte(`{}`))
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if string(data) != "{\"ok\":true}\n" {
			t.Fatalf("item %d: %q", i, data)
		}
	}
	// the dead worker crossed DownAfter failures: it is skipped in
	// placement until the cooldown passes
	alive := c.alive(timeNow())
	if len(alive) != 1 || alive[0] != liveSrv.URL {
		t.Fatalf("alive = %v, want only the live worker", alive)
	}
}

func TestNewValidatesWorkers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no workers must fail")
	}
}

func TestJobErrorOnTransportFailure(t *testing.T) {
	if JobError(fmt.Errorf("dial tcp: connection refused")) != "" {
		t.Fatal("transport errors must not read as job errors")
	}
	var err error = &errPermanent{msg: "boom"}
	if JobError(fmt.Errorf("wrapped: %w", err)) != "boom" {
		t.Fatal("wrapped permanent errors must surface their message")
	}
}

// TestErrorBodyShape pins the coordinator's parse of the server error
// envelope against drift: the envelope is produced by
// internal/server.writeError and consumed here.
func TestErrorBodyShape(t *testing.T) {
	raw := `{"error":"compile failed","requestID":"req-000001"}`
	var eb errorBody
	if err := json.Unmarshal([]byte(raw), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error != "compile failed" || eb.RequestID != "req-000001" {
		t.Fatalf("parsed %+v", eb)
	}
}
