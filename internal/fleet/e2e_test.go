package fleet

// End-to-end fleet tests against real internal/server handlers: the
// coordinator's reports must be byte-identical to the single-node CLI
// path at any fleet size, including a fleet degraded by a dead worker.
// (These servers share the process-global compilation cache; the CI
// fleet-smoke job covers separate worker processes wired through the
// remote cache tier.)

import (
	"bytes"
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/server"
)

const corpusDir = "../experiments/testdata/corpus"

func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{
		Workers: 4,
		Queue:   32,
		Logger:  log.New(io.Discard, "", 0),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func fleetCoord(t *testing.T, urls ...string) *Coordinator {
	t.Helper()
	return newCoord(t, Config{
		Workers:    urls,
		Retries:    2,
		Backoff:    5 * time.Millisecond,
		HedgeAfter: -1,
		Timeout:    2 * time.Minute,
	})
}

func corpusBytes(t *testing.T, c *Coordinator, files []experiments.CorpusFile) []byte {
	t.Helper()
	rep, err := c.Corpus(context.Background(), files)
	if err != nil {
		t.Fatal(err)
	}
	data, err := experiments.MarshalCorpusReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFleetCorpusByteIdenticalAcrossFleetSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a corpus")
	}
	files, err := experiments.LoadCorpusDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	// the ground truth: the single-process CLI path
	rep, err := experiments.RunCorpusDirCtx(context.Background(), corpusDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.MarshalCorpusReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) == 0 {
		t.Fatal("testdata corpus should include a failing file")
	}

	w1, w2 := newWorker(t), newWorker(t)
	one := corpusBytes(t, fleetCoord(t, w1.URL), files)
	two := corpusBytes(t, fleetCoord(t, w1.URL, w2.URL), files)
	if !bytes.Equal(want, one) {
		t.Fatalf("1-worker fleet report differs from single-node:\n%s\nvs\n%s", want, one)
	}
	if !bytes.Equal(want, two) {
		t.Fatalf("2-worker fleet report differs from single-node:\n%s\nvs\n%s", want, two)
	}
}

// TestFleetDegradedByDeadWorkerByteIdentical is satellite coverage for
// the health breaker: one of two workers is permanently unreachable, the
// fleet degrades to the remaining shard, and the report bytes do not
// change.
func TestFleetDegradedByDeadWorkerByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a corpus")
	}
	files, err := experiments.LoadCorpusDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := experiments.RunCorpusDirCtx(context.Background(), corpusDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.MarshalCorpusReport(rep)
	if err != nil {
		t.Fatal(err)
	}

	live := newWorker(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // refuses every dial from here on
	c := newCoord(t, Config{
		Workers:    []string{dead.URL, live.URL},
		Retries:    2,
		Backoff:    5 * time.Millisecond,
		HedgeAfter: 50 * time.Millisecond,
		Timeout:    2 * time.Minute,
		DownAfter:  2,
	})
	got := corpusBytes(t, c, files)
	if !bytes.Equal(want, got) {
		t.Fatalf("degraded fleet report differs from single-node:\n%s\nvs\n%s", want, got)
	}
}

// TestFleetWarmCorpusRecomputesNothing pins the warm-path acceptance
// criterion at the in-process level: a second corpus run over the same
// sources performs zero profiling executions anywhere in the fleet.
func TestFleetWarmCorpusRecomputesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a corpus")
	}
	files, err := experiments.LoadCorpusDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := newWorker(t), newWorker(t)
	c := fleetCoord(t, w1.URL, w2.URL)
	cold := corpusBytes(t, c, files)
	before := repro.ProfilingRuns()
	warm := corpusBytes(t, c, files)
	if after := repro.ProfilingRuns(); after != before {
		t.Fatalf("warm corpus run performed %d profiling executions, want 0", after-before)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm corpus report differs from cold")
	}
}

func TestFleetSweepByteIdenticalAcrossFleetSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and times workloads")
	}
	var names []string
	for _, w := range experiments.ListWorkloads() {
		names = append(names, w.Name)
		if len(names) == 2 {
			break
		}
	}
	m1, m2 := machine.Defaults(), machine.Defaults()
	m2.ALATSize = 4
	grid := []machine.Config{m1, m2}

	w1, w2 := newWorker(t), newWorker(t)
	s1, err := fleetCoord(t, w1.URL).SweepAll(context.Background(), names, grid)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fleetCoord(t, w1.URL, w2.URL).SweepAll(context.Background(), names, grid)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := MarshalSweeps(s1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := MarshalSweeps(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("fleet sweep differs across fleet sizes:\n%s\nvs\n%s", b1, b2)
	}
	if len(s1) != 2 || len(s1[0].Points) != 2 {
		t.Fatalf("sweep shape = %d workloads × %d points", len(s1), len(s1[0].Points))
	}
	for _, ws := range s1 {
		for _, p := range ws.Points {
			if p.Cycles == 0 {
				t.Fatalf("workload %s has a zero-cycle point", ws.Workload)
			}
		}
	}
}
