package adaptive

import (
	"context"
	"encoding/json"
	"log"
	"sort"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/cache"
	"repro/internal/machine"
)

// Config configures a Manager for one served workload.
type Config struct {
	// Source is the workload's MiniC source; re-tier verification
	// compiles it with the new tier vector before publishing.
	Source string
	// Build is the serving compile config the tier overrides apply to
	// (typically the same config the server evaluates the workload
	// under, so the verified artifact is exactly the served one).
	Build repro.Config
	// Policy tunes the monitor; zero fields take defaults.
	Policy Policy
	// OnTransition, when set, is called once per published tier change,
	// outside the manager's locks and after the new assignment became
	// visible to Snapshot.
	OnTransition func(Transition)
	// Logger receives recompile/revert notes; nil silences them.
	Logger *log.Logger
}

// Assignment is one published tier vector. It is immutable after
// publication: readers snapshot it with Manager.Snapshot, serve
// evaluations under its Tiers, and report the observed counters back
// with its Version so observations from a superseded assignment are
// discarded instead of polluting the next decision.
type Assignment struct {
	// Version increments on every decision the manager commits to
	// (including reverts), not merely on publications.
	Version uint64
	// Tiers maps function name -> tier name for every function not at
	// TierAggressive; nil means the whole program serves un-overridden.
	Tiers map[string]string
}

// Manager runs the monitor/policy/recompiler loop for one workload.
// Observe folds counters in and may decide transitions; a background
// single-flight recompiler verifies the new tier vector with specheck
// (via VerifyPasses) and hot-swaps the assignment pointer; evaluations
// concurrent with a swap see the old or the new assignment, never a
// mix.
type Manager struct {
	cfg       Config
	pol       Policy
	buildJSON []byte

	asn atomic.Pointer[Assignment]

	mu      sync.Mutex
	cond    *sync.Cond
	states  map[string]*fnState
	version uint64 // decision clock; observations against older versions are stale
	busy    bool   // a recompile goroutine is in flight
	closed  bool
	pending []Transition // decided but not yet handed to a recompile
}

// NewManager builds a manager publishing the all-aggressive assignment
// at version 0.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:    cfg,
		pol:    cfg.Policy.withDefaults(),
		states: make(map[string]*fnState),
	}
	m.cond = sync.NewCond(&m.mu)
	m.buildJSON, _ = json.Marshal(cfg.Build)
	m.asn.Store(&Assignment{})
	return m
}

// Snapshot returns the currently published assignment. The returned
// value is shared and must not be mutated.
func (m *Manager) Snapshot() *Assignment { return m.asn.Load() }

// Observe folds one evaluation's per-function counters into the
// monitor. version must be the Version of the assignment the
// evaluation was served under; observations against a superseded
// assignment are dropped, so the windows only ever mix counters
// produced by one tier vector. Transitions the policy decides here are
// compiled and published asynchronously — use Quiesce to wait.
func (m *Manager) Observe(version uint64, perFn map[string]machine.FuncCounters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || version != m.version {
		return
	}
	// Walk the union of reporting functions and known monitor states:
	// a function demoted to TierNone retires no checks and would
	// otherwise never tick its eval window toward re-promotion.
	names := make([]string, 0, len(perFn)+len(m.states))
	for fn := range perFn {
		names = append(names, fn)
	}
	for fn := range m.states {
		if _, ok := perFn[fn]; !ok {
			names = append(names, fn)
		}
	}
	sort.Strings(names)
	decided := false
	for _, fn := range names {
		s := m.states[fn]
		if s == nil {
			s = &fnState{}
			m.states[fn] = s
		}
		c := perFn[fn]
		if tr, ok := s.observe(m.pol, c.CheckLoads, c.FailedChecks); ok {
			tr.Fn = fn
			m.pending = append(m.pending, tr)
			decided = true
		}
	}
	if !decided {
		return
	}
	m.version++
	m.maybeRecompileLocked()
}

// maybeRecompileLocked hands the pending transitions to a background
// recompile unless one is already in flight; the in-flight one will
// respawn on completion (coalescing every decision made meanwhile into
// a single rebuild).
func (m *Manager) maybeRecompileLocked() {
	if m.busy || m.closed || len(m.pending) == 0 {
		return
	}
	m.busy = true
	trans := m.pending
	m.pending = nil
	tiers := make(map[string]string)
	for fn, s := range m.states {
		if s.tier != TierAggressive {
			tiers[fn] = s.tier.String()
		}
	}
	if len(tiers) == 0 {
		tiers = nil
	}
	go m.recompile(m.version, tiers, trans)
}

// recompile verifies the tier vector and publishes it (or reverts the
// monitor to the still-published assignment if verification fails, so
// one unverifiable vector cannot wedge the ladder).
func (m *Manager) recompile(version uint64, tiers map[string]string, trans []Transition) {
	err := m.verifyTiers(tiers)

	m.mu.Lock()
	if err != nil {
		pub := m.asn.Load()
		for fn, s := range m.states {
			t := TierAggressive
			if name, ok := pub.Tiers[fn]; ok {
				if tt, ok2 := TierByName(name); ok2 {
					t = tt
				}
			}
			s.tier = t
		}
		m.pending = nil
		m.version++
		m.asn.Store(&Assignment{Version: m.version, Tiers: pub.Tiers})
		m.logf("adaptive: re-tier rejected, kept [%s]: %v", tierVector(pub.Tiers), err)
		trans = nil
	} else {
		m.asn.Store(&Assignment{Version: version, Tiers: tiers})
		m.logf("adaptive: published v%d [%s]", version, tierVector(tiers))
	}
	m.busy = false
	m.maybeRecompileLocked()
	m.cond.Broadcast()
	cb := m.cfg.OnTransition
	m.mu.Unlock()

	if cb != nil {
		for _, tr := range trans {
			cb(tr)
		}
	}
}

// verifyTiers compiles the workload at the tier vector with specheck
// enabled. A content-addressed cert (source, build config, tier
// vector) memoizes the outcome, so the fleet's shared cache lets one
// replica's verification admit the vector everywhere.
func (m *Manager) verifyTiers(tiers map[string]string) error {
	key := cache.KeyOf([]byte("adaptive-cert"), []byte(m.cfg.Source), m.buildJSON, []byte(tierVector(tiers)))
	if _, ok := repro.CachePeekBytes(key); ok {
		return nil
	}
	cfg := m.cfg.Build
	fnSpec, err := FnSpecs(tiers)
	if err != nil {
		return err
	}
	cfg.FnSpec = fnSpec
	cfg.VerifyPasses = true
	c, err := repro.CompileCtx(context.Background(), m.cfg.Source, cfg)
	if err != nil {
		return err
	}
	if c.ProfileErr != nil {
		return c.ProfileErr
	}
	repro.CachePutBytes(key, []byte{1})
	return nil
}

// Quiesce blocks until no recompile is in flight, so every decision
// made by earlier Observe calls has been published (or reverted).
func (m *Manager) Quiesce() {
	m.mu.Lock()
	for m.busy {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// Close stops the manager: pending decisions are dropped, the
// in-flight recompile (if any) is waited out, and later Observe calls
// are ignored. The last published assignment stays readable.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.pending = nil
	for m.busy {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf(format, args...)
	}
}
