package adaptive

import (
	"sync"
	"testing"

	"repro"
	"repro/internal/machine"
)

// testSrc is a two-function kernel with one drifting may-alias site in
// hot (training probability 1/16 at mod=16, 1/2 at mod=2), so every
// tier override changes real speculation decisions.
const testSrc = `
int acc = 0;
int scratch = 0;

int hot(int n, int mod) {
	int sum = 0;
	for (int i = 0; i < n; i++) {
		int *p;
		if (i % mod == 0) { p = &acc; } else { p = &scratch; }
		int x = acc;
		*p = x + i;
		int y = acc;
		sum = sum + x + y;
	}
	return sum;
}

int main() {
	int n = arg(0);
	int mod = arg(1);
	print(hot(n, mod));
	return 0;
}`

func testBuild() repro.Config {
	return repro.Config{Spec: repro.SpecCost, SpecThreshold: 1, ProfileArgs: []int64{64, 16}}
}

func TestTierRoundTrip(t *testing.T) {
	for tier := TierAggressive; tier <= TierNone; tier++ {
		got, ok := TierByName(tier.String())
		if !ok || got != tier {
			t.Errorf("TierByName(%q) = %v, %v", tier.String(), got, ok)
		}
	}
	if _, ok := TierByName("bogus"); ok {
		t.Error("TierByName accepted bogus name")
	}
}

func TestFnSpecs(t *testing.T) {
	specs, err := FnSpecs(map[string]string{"a": "aggressive", "b": "cautious", "c": "profile", "d": "none"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := specs["a"]; ok {
		t.Error("aggressive must not produce an override")
	}
	if fs := specs["b"]; fs.Spec != repro.SpecCost || fs.SpecThreshold != HighThreshold {
		t.Errorf("cautious override = %+v", fs)
	}
	if fs := specs["c"]; fs.Spec != repro.SpecProfile {
		t.Errorf("profile override = %+v", fs)
	}
	if fs := specs["d"]; fs.Spec != repro.SpecOff {
		t.Errorf("none override = %+v", fs)
	}
	if specs, err := FnSpecs(map[string]string{"a": "aggressive"}); err != nil || specs != nil {
		t.Errorf("all-aggressive map must collapse to nil, got %v, %v", specs, err)
	}
	if _, err := FnSpecs(map[string]string{"a": "turbo"}); err == nil {
		t.Error("unknown tier name must error")
	}
}

// TestFlappingBounded feeds an adversarial alternation of failing and
// clean windows and checks the probation doubling keeps the number of
// published transitions at a handful, not one per oscillation.
func TestFlappingBounded(t *testing.T) {
	p := Policy{}.withDefaults()
	s := &fnState{}
	transitions := 0
	for i := 0; i < 200; i++ {
		var failed int64
		if i%2 == 0 {
			failed = p.WindowChecks / 2 // rate 0.5: demotion pressure
		}
		if _, ok := s.observe(p, p.WindowChecks, failed); ok {
			transitions++
		}
	}
	if transitions > 8 {
		t.Errorf("oscillating failure rate caused %d transitions; hysteresis should bound flapping", transitions)
	}
	if s.tier == TierAggressive {
		t.Error("sustained oscillation should leave the function demoted")
	}
}

// TestProbationRepromotes checks the clean-window budget: one clean
// window re-promotes after the first demotion, and the budget doubles
// with repeated demotions.
func TestProbationRepromotes(t *testing.T) {
	p := Policy{}.withDefaults()
	s := &fnState{}
	if tr, ok := s.observe(p, p.WindowChecks, p.WindowChecks/2); !ok || tr.To != TierCautious {
		t.Fatalf("first failing window: got %v, %v", tr, ok)
	}
	if tr, ok := s.observe(p, p.WindowChecks, 0); !ok || tr.To != TierAggressive {
		t.Fatalf("clean window after first demotion should re-promote, got %v, %v", tr, ok)
	}
	// Second demotion: probation doubled to 2, one clean window is no
	// longer enough.
	if tr, ok := s.observe(p, p.WindowChecks, p.WindowChecks/2); !ok || tr.To != TierCautious {
		t.Fatalf("second failing window: got %v, %v", tr, ok)
	}
	if _, ok := s.observe(p, p.WindowChecks, 0); ok {
		t.Fatal("one clean window must not satisfy a doubled probation")
	}
	if tr, ok := s.observe(p, p.WindowChecks, 0); !ok || tr.To != TierAggressive {
		t.Fatalf("second consecutive clean window should re-promote, got %v, %v", tr, ok)
	}
	// A dead-band window (rate between the thresholds) resets the run.
	s.observe(p, p.WindowChecks, p.WindowChecks/2)
	s.observe(p, p.WindowChecks, 0)
	mid := int64(float64(p.WindowChecks) * (p.PromoteBelow + p.DemoteAbove) / 2)
	if _, ok := s.observe(p, p.WindowChecks, mid); ok {
		t.Fatal("dead-band window must not transition")
	}
	if _, ok := s.observe(p, p.WindowChecks, 0); ok {
		t.Fatal("dead band must reset the clean run")
	}
}

// TestEvalWindowTicksSilentFunction: a function at TierNone retires no
// checks; the eval-count window close must still re-promote it.
func TestEvalWindowTicksSilentFunction(t *testing.T) {
	p := Policy{WindowEvals: 2}.withDefaults()
	s := &fnState{tier: TierNone, probation: 1}
	for i := 0; i < 3; i++ {
		if tr, ok := s.observe(p, 0, 0); ok {
			if tr.To != TierProfile {
				t.Fatalf("silent re-promotion went to %v", tr.To)
			}
			return
		}
	}
	t.Fatal("silent function never re-promoted via eval-count windows")
}

func TestManagerDemoteAndRepromote(t *testing.T) {
	var mu sync.Mutex
	var seen []Transition
	m := NewManager(Config{
		Source: testSrc,
		Build:  testBuild(),
		Policy: Policy{WindowChecks: 64, WindowEvals: 4, MinChecks: 16},
		OnTransition: func(tr Transition) {
			mu.Lock()
			seen = append(seen, tr)
			mu.Unlock()
		},
	})
	defer m.Close()

	feed := func(checks, failed int64) {
		asn := m.Snapshot()
		m.Observe(asn.Version, map[string]machine.FuncCounters{
			"hot": {CheckLoads: checks, FailedChecks: failed},
		})
		m.Quiesce()
	}

	feed(64, 32) // one failing window: demote
	asn := m.Snapshot()
	if asn.Tiers["hot"] != "cautious" {
		t.Fatalf("after failing window, tiers = %v", asn.Tiers)
	}
	if asn.Version == 0 {
		t.Fatal("publication must advance the version")
	}
	feed(64, 0) // one clean window: probation 1 satisfied, promote
	asn = m.Snapshot()
	if len(asn.Tiers) != 0 {
		t.Fatalf("after clean window, tiers = %v", asn.Tiers)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0].To != TierCautious || seen[1].To != TierAggressive {
		t.Fatalf("transition callbacks = %v", seen)
	}
}

// TestManagerStaleObservationsDropped: counters reported against a
// superseded assignment version must not influence the monitor.
func TestManagerStaleObservationsDropped(t *testing.T) {
	m := NewManager(Config{
		Source: testSrc,
		Build:  testBuild(),
		Policy: Policy{WindowChecks: 64, WindowEvals: 4, MinChecks: 16},
	})
	defer m.Close()
	old := m.Snapshot()
	m.Observe(old.Version, map[string]machine.FuncCounters{"hot": {CheckLoads: 64, FailedChecks: 32}})
	m.Quiesce()
	// old.Version is now stale; this failing report must be ignored.
	m.Observe(old.Version, map[string]machine.FuncCounters{"hot": {CheckLoads: 64, FailedChecks: 64}})
	m.Quiesce()
	if got := m.Snapshot().Tiers["hot"]; got != "cautious" {
		t.Fatalf("stale observation changed the assignment: %v", m.Snapshot().Tiers)
	}
}

// TestManagerRevertOnVerifyFailure: a tier vector whose verification
// compile fails (here: the profiling run faults) must not be
// published, and the manager must stay live for later decisions.
func TestManagerRevertOnVerifyFailure(t *testing.T) {
	var seen []Transition
	var mu sync.Mutex
	m := NewManager(Config{
		Source: `
int main() {
	int n = arg(0);
	print(10 / n);
	return 0;
}`,
		// ProfileArgs {0} make the training run fault, so every
		// verification compile reports ProfileErr.
		Build: repro.Config{Spec: repro.SpecProfile, ProfileArgs: []int64{0}},
		OnTransition: func(tr Transition) {
			mu.Lock()
			seen = append(seen, tr)
			mu.Unlock()
		},
		Policy: Policy{WindowChecks: 64, WindowEvals: 4, MinChecks: 16},
	})
	defer m.Close()

	asn := m.Snapshot()
	m.Observe(asn.Version, map[string]machine.FuncCounters{"main": {CheckLoads: 64, FailedChecks: 32}})
	m.Quiesce()

	after := m.Snapshot()
	if len(after.Tiers) != 0 {
		t.Fatalf("unverifiable vector was published: %v", after.Tiers)
	}
	if after.Version == asn.Version {
		t.Fatal("revert must advance the version so in-flight reports go stale")
	}
	mu.Lock()
	n := len(seen)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("reverted transitions fired callbacks: %v", seen)
	}
	// Liveness: the monitor accepts observations against the new
	// version (they will decide and fail verification again, but the
	// manager must not wedge).
	m.Observe(after.Version, map[string]machine.FuncCounters{"main": {CheckLoads: 64, FailedChecks: 0}})
	m.Quiesce()
}

// TestManagerHotSwapNotTorn runs concurrent evaluations against
// whatever assignment is published while the monitor walks the ladder,
// and checks every snapshot is internally consistent (valid tier
// names, immutable map) and every evaluation output matches the
// reference. Run under -race this also proves the swap itself is
// data-race free.
func TestManagerHotSwapNotTorn(t *testing.T) {
	build := testBuild()
	m := NewManager(Config{Source: testSrc, Build: build, Policy: Policy{WindowChecks: 64, WindowEvals: 4, MinChecks: 16}})
	defer m.Close()

	ref, err := repro.Compile(testSrc, repro.Config{Spec: repro.SpecOff, ProfileArgs: []int64{64, 16}})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run([]int64{64, 2})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				asn := m.Snapshot()
				if asn.Version < lastVersion {
					errs <- strErr("assignment version went backward")
					return
				}
				lastVersion = asn.Version
				cfg := build
				var err error
				cfg.FnSpec, err = FnSpecs(asn.Tiers)
				if err != nil {
					errs <- err // torn map: invalid tier name leaked
					return
				}
				c, err := repro.Compile(testSrc, cfg)
				if err != nil {
					errs <- err
					return
				}
				res, err := c.Run([]int64{64, 2})
				if err != nil {
					errs <- err
					return
				}
				if res.Output != refRes.Output {
					errs <- strErr("evaluation under swapped assignment diverged from reference")
					return
				}
				m.Observe(asn.Version, res.PerFunc)
			}
		}()
	}

	// Drive the ladder from the main goroutine too: failing windows
	// force demotions concurrent with the readers' snapshots.
	for i := 0; i < 40; i++ {
		asn := m.Snapshot()
		failed := int64(0)
		if i%4 != 3 {
			failed = 32
		}
		m.Observe(asn.Version, map[string]machine.FuncCounters{"hot": {CheckLoads: 64, FailedChecks: failed}})
	}
	m.Quiesce()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type strErr string

func (e strErr) Error() string { return string(e) }
