// Package adaptive is the online tier-management runtime: it watches the
// per-function speculation counters of served evaluations, folds them
// into windowed check-failure rates, and walks each function down a
// tier ladder (and back up) so a workload whose alias behaviour drifts
// away from its training profile stops paying mis-speculation recovery
// penalties without giving up speculation everywhere.
//
// The subsystem splits three concerns:
//
//   - the monitor (fnState.observe) accumulates counters into windows
//     and turns a closed window into a failure rate;
//   - the policy (Policy + the state machine in observe) decides tier
//     transitions with hysteresis — a dead band between the demotion
//     and promotion thresholds, and an exponentially growing probation
//     budget of clean windows before re-promotion — so an oscillating
//     failure rate cannot make a function flap between tiers;
//   - the recompiler (Manager) rebuilds the function's speculation
//     flags at the new tier, verifies the result with specheck, and
//     hot-swaps the published assignment atomically.
//
// Tiers map onto repro.Config.FnSpec overrides, so a re-tiered build is
// an ordinary compile whose cache key (source, config) already encodes
// the tier vector: re-tiered artifacts are content-addressed and flow
// through the same local/remote cache tiers as every other compile.
package adaptive

import (
	"fmt"
	"sort"
	"strings"

	"repro"
)

// Tier is one rung of the speculation ladder, ordered from most to
// least aggressive. Demotion moves one step toward TierNone, promotion
// one step back toward TierAggressive.
type Tier int

const (
	// TierAggressive leaves the function on the serving config's own
	// speculation mode (no override; for the adaptive server that is
	// the profile- or cost-guided global walk).
	TierAggressive Tier = iota
	// TierCautious re-runs the cost policy with a high recovery
	// weighting (HighThreshold), keeping only sites whose training
	// alias probability is far below break-even.
	TierCautious
	// TierProfile speculates only sites the training run never saw
	// alias (probability zero).
	TierProfile
	// TierNone turns data speculation off for the function entirely.
	TierNone
)

// HighThreshold is the SpecCost recovery weighting TierCautious
// compiles with: recovery cycles count 16x, so only sites whose
// training alias probability sits far below the theta=1 break-even
// survive demotion.
const HighThreshold = 16

var tierNames = [...]string{"aggressive", "cautious", "profile", "none"}

func (t Tier) String() string {
	if t < 0 || int(t) >= len(tierNames) {
		return fmt.Sprintf("tier(%d)", int(t))
	}
	return tierNames[t]
}

// TierByName maps the wire spelling ("aggressive", "cautious",
// "profile", "none") back to its Tier.
func TierByName(name string) (Tier, bool) {
	for i, n := range tierNames {
		if n == name {
			return Tier(i), true
		}
	}
	return 0, false
}

// FnSpec returns the per-function compile override the tier stands
// for, and whether one is needed at all: TierAggressive reports false
// (the function runs on the serving config unmodified).
func (t Tier) FnSpec() (repro.FnSpec, bool) {
	switch t {
	case TierCautious:
		return repro.FnSpec{Spec: repro.SpecCost, SpecThreshold: HighThreshold}, true
	case TierProfile:
		return repro.FnSpec{Spec: repro.SpecProfile}, true
	case TierNone:
		return repro.FnSpec{}, true // zero value: SpecOff
	default:
		return repro.FnSpec{}, false
	}
}

// FnSpecs converts a published tier assignment (function name ->
// tier name, as carried by Assignment.Tiers and the evaluate API's
// fnTiers field) into the repro.Config.FnSpec override map. Functions
// at "aggressive" need no override and are dropped; an empty result is
// returned as nil so the config marshals identically to an untier'd
// one. Unknown tier names are an error.
func FnSpecs(tiers map[string]string) (map[string]repro.FnSpec, error) {
	var out map[string]repro.FnSpec
	for fn, name := range tiers {
		t, ok := TierByName(name)
		if !ok {
			return nil, fmt.Errorf("adaptive: unknown tier %q for function %q", name, fn)
		}
		fs, need := t.FnSpec()
		if !need {
			continue
		}
		if out == nil {
			out = make(map[string]repro.FnSpec)
		}
		out[fn] = fs
	}
	return out, nil
}

// tierVector renders an assignment as a canonical sorted string for
// content-addressed cert keys and logs.
func tierVector(tiers map[string]string) string {
	if len(tiers) == 0 {
		return ""
	}
	parts := make([]string, 0, len(tiers))
	for fn, t := range tiers {
		parts = append(parts, fn+"="+t)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Policy holds the monitor's windowing and hysteresis knobs. The zero
// value means "use the defaults" (each field independently).
type Policy struct {
	// WindowChecks closes a function's window once this many check
	// loads accumulated. <=0 means 256.
	WindowChecks int64
	// WindowEvals closes the window after this many evaluations even
	// without check traffic, so a function demoted to TierNone (which
	// retires no checks) still ticks toward re-promotion. <=0 means 4.
	WindowEvals int
	// MinChecks is the minimum check count for a window's failure rate
	// to count as signal; windows below it are treated as clean. <=0
	// means 32.
	MinChecks int64
	// DemoteAbove is the failure rate above which a window demotes the
	// function one tier. <=0 means 0.2.
	DemoteAbove float64
	// PromoteBelow is the failure rate below which a window counts as
	// clean; rates in the dead band (PromoteBelow..DemoteAbove) reset
	// the clean run without demoting. <=0 means 0.05.
	PromoteBelow float64
	// Probation is the number of consecutive clean windows required
	// before the first re-promotion; each further demotion doubles the
	// function's budget up to ProbationCap, so a flapping function
	// promotes exponentially rarely. <=0 means 1.
	Probation int
	// ProbationCap bounds the doubling. <=0 means 32.
	ProbationCap int
}

func (p Policy) withDefaults() Policy {
	if p.WindowChecks <= 0 {
		p.WindowChecks = 256
	}
	if p.WindowEvals <= 0 {
		p.WindowEvals = 4
	}
	if p.MinChecks <= 0 {
		p.MinChecks = 32
	}
	if p.DemoteAbove <= 0 {
		p.DemoteAbove = 0.2
	}
	if p.PromoteBelow <= 0 {
		p.PromoteBelow = 0.05
	}
	if p.Probation <= 0 {
		p.Probation = 1
	}
	if p.ProbationCap <= 0 {
		p.ProbationCap = 32
	}
	return p
}

// Transition is one published tier change of one function.
type Transition struct {
	Fn   string `json:"fn"`
	From Tier   `json:"-"`
	To   Tier   `json:"-"`
}

func (t Transition) String() string {
	return fmt.Sprintf("%s: %s -> %s", t.Fn, t.From, t.To)
}

// fnState is the per-function monitor: window accumulators plus the
// hysteresis state of the policy state machine.
type fnState struct {
	tier      Tier
	checksW   int64 // checks accumulated in the open window
	failedW   int64 // failed checks in the open window
	evalsW    int   // evaluations folded into the open window
	cleanRun  int   // consecutive clean windows since the last reset
	probation int   // clean windows required per promotion (doubles on demote)
}

// observe folds one evaluation's counters into the open window and, if
// the window closed, runs the policy state machine. It returns the
// transition it decided on, if any.
func (s *fnState) observe(p Policy, checks, failed int64) (Transition, bool) {
	s.checksW += checks
	s.failedW += failed
	s.evalsW++
	if s.checksW < p.WindowChecks && s.evalsW < p.WindowEvals {
		return Transition{}, false
	}
	wChecks, wFailed := s.checksW, s.failedW
	s.checksW, s.failedW, s.evalsW = 0, 0, 0
	var rate float64
	if wChecks > 0 {
		rate = float64(wFailed) / float64(wChecks)
	}
	switch {
	case wChecks >= p.MinChecks && rate > p.DemoteAbove:
		s.cleanRun = 0
		if s.tier >= TierNone {
			return Transition{}, false
		}
		if s.probation == 0 {
			s.probation = p.Probation
		} else if s.probation < p.ProbationCap {
			s.probation *= 2
			if s.probation > p.ProbationCap {
				s.probation = p.ProbationCap
			}
		}
		from := s.tier
		s.tier++
		return Transition{From: from, To: s.tier}, true
	case wChecks < p.MinChecks || rate < p.PromoteBelow:
		if s.tier == TierAggressive {
			return Transition{}, false
		}
		s.cleanRun++
		need := s.probation
		if need == 0 {
			need = p.Probation
		}
		if s.cleanRun < need {
			return Transition{}, false
		}
		s.cleanRun = 0
		from := s.tier
		s.tier--
		return Transition{From: from, To: s.tier}, true
	default:
		// Dead band: not bad enough to demote, not clean enough to
		// count toward promotion. Restart the clean run.
		s.cleanRun = 0
		return Transition{}, false
	}
}
