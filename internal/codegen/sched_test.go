package codegen

import (
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/source"
)

// compileSched lowers src, optionally schedules, and compiles.
func compileSched(t *testing.T, src string, sched bool) *machine.Program {
	t.Helper()
	f, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if sched {
		Schedule(prog)
		for _, fn := range prog.Funcs {
			if err := ir.Verify(fn); err != nil {
				t.Fatalf("scheduler broke the IR: %v", err)
			}
		}
	}
	mp, err := Lower(prog)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return mp
}

// latencyBoundSrc has a long-latency FP load whose consumer sits right
// after it, with plenty of independent integer work that a scheduler can
// move into the shadow.
const latencyBoundSrc = `
double D[16];
int main() {
	int n = arg(0);
	double acc = 0.0;
	int k = 0;
	for (int i = 0; i < n; i++) {
		double d = D[i & 15];
		acc += d * 2.0;
		k = k + i;
		k = k * 3;
		k = k - i;
		k = k ^ 7;
		k = k + 11;
	}
	print(acc, k);
	return 0;
}`

func TestSchedulePreservesSemantics(t *testing.T) {
	cfg := machine.Defaults()
	base := compileSched(t, latencyBoundSrc, false)
	sched := compileSched(t, latencyBoundSrc, true)
	for _, args := range [][]int64{{0}, {1}, {100}} {
		rb, err := machine.Run(base, args, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := machine.Run(sched, args, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Output != rs.Output {
			t.Errorf("args=%v: scheduled output %q != %q", args, rs.Output, rb.Output)
		}
	}
}

func TestScheduleReducesPipelinedCycles(t *testing.T) {
	cfg := machine.Defaults()
	cfg.Pipelined = true
	base := compileSched(t, latencyBoundSrc, false)
	sched := compileSched(t, latencyBoundSrc, true)
	rb, err := machine.Run(base, []int64{500}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := machine.Run(sched, []int64{500}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Counters.Cycles >= rb.Counters.Cycles {
		t.Errorf("scheduling did not reduce pipelined cycles: %d -> %d",
			rb.Counters.Cycles, rs.Counters.Cycles)
	}
	t.Logf("pipelined cycles: unscheduled %d, scheduled %d (%.1f%% faster)",
		rb.Counters.Cycles, rs.Counters.Cycles,
		(1-float64(rs.Counters.Cycles)/float64(rb.Counters.Cycles))*100)
}

func TestPipelinedModelStallsOnLatency(t *testing.T) {
	// dependent chain: ld (2cy) feeding an add must stall; an independent
	// add in between hides one stall cycle
	dep := []machine.Instr{
		{Op: machine.OpLEA, Rd: 0, Imm: 0},
		{Op: machine.OpLd, Rd: 1, Rs: 0},
		{Op: machine.OpAdd, Rd: 2, Rs: 1, Rt: 1}, // stalls on r1
		{Op: machine.OpRet, Rs: 2},
	}
	indep := []machine.Instr{
		{Op: machine.OpLEA, Rd: 0, Imm: 0},
		{Op: machine.OpLd, Rd: 1, Rs: 0},
		{Op: machine.OpMovI, Rd: 3, Imm: 9}, // fills the load shadow
		{Op: machine.OpAdd, Rd: 2, Rs: 1, Rt: 1},
		{Op: machine.OpRet, Rs: 2},
	}
	cfg := machine.Defaults()
	cfg.Pipelined = true
	run := func(instrs []machine.Instr, nregs int) int64 {
		p := &machine.Program{
			Funcs:      map[string]*machine.FuncCode{"main": {Name: "main", Instrs: instrs, NumRegs: nregs}},
			GlobSize:   4,
			GlobalInit: map[int]uint64{},
		}
		res, err := machine.Run(p, nil, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.Cycles
	}
	cDep := run(dep, 3)
	cIndep := run(indep, 4)
	// the independent version executes one more instruction yet takes the
	// same total time: the movi issues during the load's stall cycle
	if cIndep != cDep {
		t.Errorf("load shadow not modelled: dep=%d indep=%d", cDep, cIndep)
	}
}

func TestScheduleKeepsMemoryOrder(t *testing.T) {
	// store/load to the same array must not be reordered
	src := `
int A[4];
int main() {
	A[0] = 1;
	int x = A[0];
	A[0] = 2;
	int y = A[0];
	print(x, y);
	return 0;
}`
	mp := compileSched(t, src, true)
	res, err := machine.Run(mp, nil, machine.Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "1 2\n" {
		t.Errorf("memory order violated: %q", res.Output)
	}
}

func TestScheduleKeepsPrintOrder(t *testing.T) {
	src := `
int main() {
	for (int i = 0; i < 3; i++) {
		print(i);
		print(i * 10);
	}
	return 0;
}`
	mp := compileSched(t, src, true)
	res, err := machine.Run(mp, nil, machine.Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := "0\n0\n1\n10\n2\n20\n"
	if res.Output != want {
		t.Errorf("print order = %q, want %q", res.Output, want)
	}
}

func TestScheduleManyBlocksStable(t *testing.T) {
	// scheduling must be deterministic
	var f1, f2 string
	for trial := 0; trial < 2; trial++ {
		file, err := source.Parse(latencyBoundSrc)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := source.Lower(file)
		if err != nil {
			t.Fatal(err)
		}
		Schedule(prog)
		s := fmt.Sprint(prog)
		if trial == 0 {
			f1 = s
		} else {
			f2 = s
		}
	}
	if f1 != f2 {
		t.Error("scheduling is not deterministic")
	}
}
