package codegen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/source"
)

func lower(t *testing.T, src string) *machine.Program {
	t.Helper()
	f, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	mp, err := Lower(prog)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return mp
}

func countOp(fc *machine.FuncCode, op machine.Opcode) int {
	n := 0
	for _, ins := range fc.Instrs {
		if ins.Op == op {
			n++
		}
	}
	return n
}

func TestOpcodeSelection(t *testing.T) {
	mp := lower(t, `
double d = 1.5;
int g = 2;
int main() {
	double x = d * 2.0;
	int y = g + 1;
	d = x;
	g = y;
	print(x, y);
	return y;
}`)
	main := mp.Funcs["main"]
	if countOp(main, machine.OpLdF) != 1 {
		t.Errorf("want 1 fp load, got %d\n%s", countOp(main, machine.OpLdF), mp)
	}
	if countOp(main, machine.OpLd) != 1 {
		t.Errorf("want 1 int load, got %d", countOp(main, machine.OpLd))
	}
	if countOp(main, machine.OpFMul) != 1 {
		t.Errorf("want 1 fmul, got %d", countOp(main, machine.OpFMul))
	}
	if countOp(main, machine.OpStF) != 1 || countOp(main, machine.OpSt) != 1 {
		t.Errorf("want 1 stf + 1 st, got %d/%d", countOp(main, machine.OpStF), countOp(main, machine.OpSt))
	}
}

func TestSpecFlagsBecomeSpeculativeOpcodes(t *testing.T) {
	// hand-build IR with the three flags and check the opcode mapping
	prog := ir.NewProgram()
	g := prog.NewGlobal("g", ir.IntType)
	f := prog.NewFunc("main", ir.IntType)
	b := f.NewBlock()
	f.Entry = b
	t1 := f.NewTemp(ir.IntType)
	t2 := f.NewTemp(ir.IntType)
	t3 := f.NewTemp(ir.IntType)
	t4 := f.NewTemp(ir.IntType)
	b.Stmts = []ir.Stmt{
		&ir.Assign{Dst: &ir.Ref{Sym: t1}, RK: ir.RHSCopy, A: &ir.Ref{Sym: g},
			LoadsFrom: ir.IntType, Spec: ir.SpecFlags{AdvLoad: true}},
		&ir.Assign{Dst: &ir.Ref{Sym: t2}, RK: ir.RHSCopy, A: &ir.Ref{Sym: g},
			LoadsFrom: ir.IntType, Spec: ir.SpecFlags{CheckLoad: true}},
		&ir.Assign{Dst: &ir.Ref{Sym: t3}, RK: ir.RHSCopy, A: &ir.Ref{Sym: g},
			LoadsFrom: ir.IntType, Spec: ir.SpecFlags{SpecLoad: true}},
		&ir.Assign{Dst: &ir.Ref{Sym: t4}, RK: ir.RHSCopy, A: &ir.Ref{Sym: g},
			LoadsFrom: ir.IntType, Spec: ir.SpecFlags{AdvLoad: true, SpecLoad: true}},
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: &ir.Ref{Sym: t1}}
	mp, err := Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	main := mp.Funcs["main"]
	for _, want := range []machine.Opcode{machine.OpLdA, machine.OpLdC, machine.OpLdS, machine.OpLdSA} {
		if countOp(main, want) != 1 {
			t.Errorf("want exactly one %v:\n%s", want, mp)
		}
	}
}

func TestALATRegisterPairing(t *testing.T) {
	// an ld.a and its ld.c on the same (coalesced) symbol must target the
	// same register
	prog := ir.NewProgram()
	g := prog.NewGlobal("g", ir.IntType)
	f := prog.NewFunc("main", ir.IntType)
	b := f.NewBlock()
	f.Entry = b
	tsym := f.NewTemp(ir.IntType)
	b.Stmts = []ir.Stmt{
		&ir.Assign{Dst: &ir.Ref{Sym: tsym}, RK: ir.RHSCopy, A: &ir.Ref{Sym: g},
			LoadsFrom: ir.IntType, Spec: ir.SpecFlags{AdvLoad: true}},
		&ir.Assign{Dst: &ir.Ref{Sym: tsym}, RK: ir.RHSCopy, A: &ir.Ref{Sym: g},
			LoadsFrom: ir.IntType, Spec: ir.SpecFlags{CheckLoad: true}},
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: &ir.Ref{Sym: tsym}}
	mp, err := Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	main := mp.Funcs["main"]
	var advRd, chkRd = -1, -1
	for _, ins := range main.Instrs {
		switch ins.Op {
		case machine.OpLdA:
			advRd = ins.Rd
		case machine.OpLdC:
			chkRd = ins.Rd
		}
	}
	if advRd < 0 || chkRd < 0 || advRd != chkRd {
		t.Errorf("ld.a reg %d != ld.c reg %d\n%s", advRd, chkRd, mp)
	}
}

func TestBranchTargetsResolve(t *testing.T) {
	mp := lower(t, `
int main() {
	int n = arg(0);
	int s = 0;
	for (int i = 0; i < n; i++) {
		if (i % 2) s += i; else s -= i;
	}
	print(s);
	return 0;
}`)
	main := mp.Funcs["main"]
	for i, ins := range main.Instrs {
		switch ins.Op {
		case machine.OpBr, machine.OpBeqz, machine.OpBnez:
			if ins.Target < 0 || ins.Target >= len(main.Instrs) {
				t.Errorf("instr %d: branch target %d out of range", i, ins.Target)
			}
		}
	}
	// the compiled loop must actually run
	res, err := machine.Run(mp, []int64{9}, machine.Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "-4\n" {
		t.Errorf("output = %q, want -4", res.Output)
	}
}

func TestParamRegisterConvention(t *testing.T) {
	mp := lower(t, `
int three(int a, int b, int c) { return a + b * c; }
int main() { return three(1, 2, 3); }`)
	f := mp.Funcs["three"]
	if f.NumParams != 3 {
		t.Fatalf("NumParams = %d", f.NumParams)
	}
	res, err := machine.Run(mp, nil, machine.Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 7 {
		t.Errorf("ret = %d, want 7", res.Ret)
	}
}

func TestFrameLayoutForAddressTakenLocals(t *testing.T) {
	mp := lower(t, `
void bump(int *p) { *p += 1; }
int main() {
	int x = 10;
	int y = 20;
	bump(&x);
	bump(&y);
	print(x, y);
	return 0;
}`)
	res, err := machine.Run(mp, nil, machine.Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "11 21\n" {
		t.Errorf("output = %q", res.Output)
	}
	if mp.Funcs["main"].FrameSize < 2 {
		t.Errorf("frame size = %d, want >= 2", mp.Funcs["main"].FrameSize)
	}
}

func TestSelfCopyElided(t *testing.T) {
	prog := ir.NewProgram()
	f := prog.NewFunc("main", ir.IntType)
	b := f.NewBlock()
	f.Entry = b
	x := f.NewTemp(ir.IntType)
	b.Stmts = []ir.Stmt{
		&ir.Assign{Dst: &ir.Ref{Sym: x}, RK: ir.RHSCopy, A: &ir.ConstInt{Val: 3}},
		&ir.Assign{Dst: &ir.Ref{Sym: x}, RK: ir.RHSCopy, A: &ir.Ref{Sym: x}}, // self copy
	}
	b.Term = ir.Term{Kind: ir.TermRet, Val: &ir.Ref{Sym: x}}
	mp, err := Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	if n := countOp(mp.Funcs["main"], machine.OpMov); n != 0 {
		t.Errorf("self copy not elided: %d movs", n)
	}
}
