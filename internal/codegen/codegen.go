// Package codegen lowers optimized (out-of-SSA) IR to the EPIC virtual
// machine, translating the speculative load flags produced by SSAPRE's
// CodeMotion into the IA-64-style instructions: AdvLoad → ld.a, CheckLoad
// → ld.c, SpecLoad → ld.s. The advanced load and its checks target the
// same (coalesced) register, which is the ALAT pairing key.
package codegen

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/par"
)

// Lower compiles a program. The IR must be out of SSA form (versions are
// ignored; each symbol is one register). Functions lower concurrently on
// every core; use LowerWorkers to bound or serialize.
func Lower(prog *ir.Program) (*machine.Program, error) {
	return LowerWorkers(prog, 0)
}

// LowerWorkers compiles a program with at most workers functions lowering
// concurrently (0 = all cores, 1 = serial). Each function's code depends
// only on that function's IR, so the emitted program is identical at
// every worker count.
func LowerWorkers(prog *ir.Program, workers int) (*machine.Program, error) {
	fcs, err := par.Map(workers, prog.Funcs, lowerFunc)
	if err != nil {
		return nil, err
	}
	mp := &machine.Program{
		Funcs:      make(map[string]*machine.FuncCode, len(fcs)),
		GlobSize:   prog.GlobSize,
		GlobalInit: prog.GlobalInit,
	}
	for _, fc := range fcs {
		mp.Funcs[fc.Name] = fc
	}
	return mp, nil
}

type fnGen struct {
	fn     *ir.Func
	fc     *machine.FuncCode
	regOf  map[*ir.Sym]int
	starts map[*ir.Block]int
	// branch fixups: instruction index -> target block
	fixups map[int]*ir.Block
}

func lowerFunc(fn *ir.Func) (*machine.FuncCode, error) {
	g := &fnGen{
		fn:     fn,
		fc:     &machine.FuncCode{Name: fn.Name, FrameSize: fn.FrameSize, NumParams: len(fn.Params)},
		regOf:  map[*ir.Sym]int{},
		starts: map[*ir.Block]int{},
		fixups: map[int]*ir.Block{},
	}
	// parameters occupy the first registers, in order
	for _, p := range fn.Params {
		g.reg(p)
	}

	order := layout(fn)
	for idx, b := range order {
		g.starts[b] = len(g.fc.Instrs)
		for _, st := range b.Stmts {
			if err := g.stmt(st); err != nil {
				return nil, err
			}
		}
		var next *ir.Block
		if idx+1 < len(order) {
			next = order[idx+1]
		}
		if err := g.terminator(b, next); err != nil {
			return nil, err
		}
	}
	// resolve branch targets
	for i, blk := range g.fixups {
		tgt, ok := g.starts[blk]
		if !ok {
			return nil, fmt.Errorf("codegen: %s: branch to unplaced block B%d", fn.Name, blk.ID)
		}
		g.fc.Instrs[i].Target = tgt
	}
	g.fc.NumRegs = len(g.regOf)
	return g.fc, nil
}

// layout orders blocks: reverse post-order keeps fallthrough chains hot.
func layout(fn *ir.Func) []*ir.Block {
	return fn.RPO()
}

func (g *fnGen) reg(s *ir.Sym) int {
	if r, ok := g.regOf[s]; ok {
		return r
	}
	r := len(g.regOf)
	g.regOf[s] = r
	return r
}

func (g *fnGen) emit(i machine.Instr) int {
	g.fc.Instrs = append(g.fc.Instrs, i)
	return len(g.fc.Instrs) - 1
}

// scratch allocates a fresh scratch register.
func (g *fnGen) scratch() int {
	s := &ir.Sym{Name: fmt.Sprintf("$s%d", len(g.regOf))}
	return g.reg(s)
}

// operand materializes an operand into a register and reports whether the
// value is floating point.
func (g *fnGen) operand(op ir.Operand) (int, bool, error) {
	switch o := op.(type) {
	case *ir.ConstInt:
		r := g.scratch()
		g.emit(machine.Instr{Op: machine.OpMovI, Rd: r, Imm: o.Val})
		return r, false, nil
	case *ir.ConstFloat:
		r := g.scratch()
		g.emit(machine.Instr{Op: machine.OpMovI, Rd: r, Imm: int64(floatBits(o.Val))})
		return r, true, nil
	case *ir.AddrOf:
		r := g.scratch()
		g.emit(g.leaInstr(r, o.Sym))
		return r, false, nil
	case *ir.Ref:
		if o.Sym.InMemory() {
			return 0, false, fmt.Errorf("codegen: %s: memory symbol %s used as register operand", g.fn.Name, o.Sym.Name)
		}
		return g.reg(o.Sym), o.Sym.Type.IsFloat(), nil
	}
	return 0, false, fmt.Errorf("codegen: unknown operand %T", op)
}

func (g *fnGen) leaInstr(rd int, sym *ir.Sym) machine.Instr {
	if sym.Kind == ir.SymGlobal {
		return machine.Instr{Op: machine.OpLEA, Rd: rd, Imm: int64(sym.Addr)}
	}
	return machine.Instr{Op: machine.OpLEA, Rd: rd, Imm: int64(sym.Addr), IsFrame: true}
}

// loadOp picks the load opcode from element type and speculation flags.
func loadOp(isFloat bool, flags ir.SpecFlags) machine.Opcode {
	switch {
	case flags.CheckLoad:
		if isFloat {
			return machine.OpLdFC
		}
		return machine.OpLdC
	case flags.AdvLoad && flags.SpecLoad:
		if isFloat {
			return machine.OpLdFSA
		}
		return machine.OpLdSA
	case flags.AdvLoad:
		if isFloat {
			return machine.OpLdFA
		}
		return machine.OpLdA
	case flags.SpecLoad:
		if isFloat {
			return machine.OpLdFS
		}
		return machine.OpLdS
	default:
		if isFloat {
			return machine.OpLdF
		}
		return machine.OpLd
	}
}

func (g *fnGen) stmt(st ir.Stmt) error {
	switch t := st.(type) {
	case *ir.Assign:
		return g.assign(t)
	case *ir.IStore:
		ra, _, err := g.operand(t.Addr)
		if err != nil {
			return err
		}
		rv, vFloat, err := g.operand(t.Val)
		if err != nil {
			return err
		}
		op := machine.OpSt
		if vFloat || (t.StoresTo != nil && t.StoresTo.IsFloat()) {
			op = machine.OpStF
		}
		g.emit(machine.Instr{Op: op, Rd: ra, Rs: rv})
		return nil
	case *ir.Call:
		if t.Fn == "arg" {
			rs, _, err := g.operand(t.Args[0])
			if err != nil {
				return err
			}
			rd := -1
			if t.Dst != nil {
				rd = g.reg(t.Dst.Sym)
			}
			g.emit(machine.Instr{Op: machine.OpArg, Rd: rd, Rs: rs})
			return nil
		}
		var argRegs []int
		for _, a := range t.Args {
			r, _, err := g.operand(a)
			if err != nil {
				return err
			}
			argRegs = append(argRegs, r)
		}
		rd := -1
		if t.Dst != nil {
			rd = g.reg(t.Dst.Sym)
		}
		g.emit(machine.Instr{Op: machine.OpCall, Rd: rd, Fn: t.Fn, ArgRegs: argRegs})
		return nil
	case *ir.Print:
		var regsList []int
		var floats []bool
		for _, a := range t.Args {
			r, isF, err := g.operand(a)
			if err != nil {
				return err
			}
			regsList = append(regsList, r)
			floats = append(floats, isF || a.Type().IsFloat())
		}
		g.emit(machine.Instr{Op: machine.OpPrint, ArgRegs: regsList, FloatRs: floats})
		return nil
	}
	return fmt.Errorf("codegen: unknown statement %T", st)
}

func (g *fnGen) assign(a *ir.Assign) error {
	// direct store: dst is memory-resident
	if a.Dst.Sym.InMemory() {
		if a.RK != ir.RHSCopy {
			return fmt.Errorf("codegen: direct store with non-copy RHS in %s", g.fn.Name)
		}
		rv, vFloat, err := g.operand(a.A)
		if err != nil {
			return err
		}
		ra := g.scratch()
		g.emit(g.leaInstr(ra, a.Dst.Sym))
		op := machine.OpSt
		if vFloat || a.Dst.Sym.Type.IsFloat() {
			op = machine.OpStF
		}
		g.emit(machine.Instr{Op: op, Rd: ra, Rs: rv})
		return nil
	}

	rd := g.reg(a.Dst.Sym)
	switch a.RK {
	case ir.RHSCopy:
		// direct load of a memory scalar?
		if r, ok := a.A.(*ir.Ref); ok && r.Sym.InMemory() {
			ra := g.scratch()
			g.emit(g.leaInstr(ra, r.Sym))
			isF := r.Sym.Type.IsFloat()
			g.emit(machine.Instr{Op: loadOp(isF, a.Spec), Rd: rd, Rs: ra})
			return nil
		}
		switch src := a.A.(type) {
		case *ir.ConstInt:
			g.emit(machine.Instr{Op: machine.OpMovI, Rd: rd, Imm: src.Val})
		case *ir.ConstFloat:
			g.emit(machine.Instr{Op: machine.OpMovI, Rd: rd, Imm: int64(floatBits(src.Val))})
		case *ir.AddrOf:
			g.emit(g.leaInstr(rd, src.Sym))
		case *ir.Ref:
			if rs := g.reg(src.Sym); rs != rd {
				g.emit(machine.Instr{Op: machine.OpMov, Rd: rd, Rs: rs})
			}
		}
		return nil

	case ir.RHSUnary:
		rs, isF, err := g.operand(a.A)
		if err != nil {
			return err
		}
		var op machine.Opcode
		switch a.Op {
		case ir.OpNeg:
			if isF {
				op = machine.OpFNeg
			} else {
				op = machine.OpNeg
			}
		case ir.OpNot:
			op = machine.OpNot
		case ir.OpIntToFloat:
			op = machine.OpI2F
		case ir.OpFloatToInt:
			op = machine.OpF2I
		default:
			return fmt.Errorf("codegen: unary op %v", a.Op)
		}
		g.emit(machine.Instr{Op: op, Rd: rd, Rs: rs})
		return nil

	case ir.RHSBinary:
		rs, aF, err := g.operand(a.A)
		if err != nil {
			return err
		}
		rt, bF, err := g.operand(a.B)
		if err != nil {
			return err
		}
		isF := aF || bF
		op, err := binOpcode(a.Op, isF)
		if err != nil {
			return fmt.Errorf("codegen: %v in %s", err, g.fn.Name)
		}
		g.emit(machine.Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
		return nil

	case ir.RHSLoad:
		ra, _, err := g.operand(a.A)
		if err != nil {
			return err
		}
		isF := a.Dst.Sym.Type.IsFloat() || (a.LoadsFrom != nil && a.LoadsFrom.IsFloat())
		g.emit(machine.Instr{Op: loadOp(isF, a.Spec), Rd: rd, Rs: ra})
		return nil

	case ir.RHSAlloc:
		rs, _, err := g.operand(a.A)
		if err != nil {
			return err
		}
		g.emit(machine.Instr{Op: machine.OpAlloc, Rd: rd, Rs: rs})
		return nil
	}
	return fmt.Errorf("codegen: unknown RHS kind %d", a.RK)
}

func binOpcode(op ir.Op, isFloat bool) (machine.Opcode, error) {
	if isFloat {
		switch op {
		case ir.OpAdd:
			return machine.OpFAdd, nil
		case ir.OpSub:
			return machine.OpFSub, nil
		case ir.OpMul:
			return machine.OpFMul, nil
		case ir.OpDiv:
			return machine.OpFDiv, nil
		case ir.OpEq:
			return machine.OpFCmpEQ, nil
		case ir.OpNe:
			return machine.OpFCmpNE, nil
		case ir.OpLt:
			return machine.OpFCmpLT, nil
		case ir.OpLe:
			return machine.OpFCmpLE, nil
		case ir.OpGt:
			return machine.OpFCmpGT, nil
		case ir.OpGe:
			return machine.OpFCmpGE, nil
		}
		return machine.OpNop, fmt.Errorf("float op %v", op)
	}
	switch op {
	case ir.OpAdd:
		return machine.OpAdd, nil
	case ir.OpSub:
		return machine.OpSub, nil
	case ir.OpMul:
		return machine.OpMul, nil
	case ir.OpDiv:
		return machine.OpDiv, nil
	case ir.OpMod:
		return machine.OpMod, nil
	case ir.OpAnd:
		return machine.OpAnd, nil
	case ir.OpOr:
		return machine.OpOr, nil
	case ir.OpXor:
		return machine.OpXor, nil
	case ir.OpShl:
		return machine.OpShl, nil
	case ir.OpShr:
		return machine.OpShr, nil
	case ir.OpEq:
		return machine.OpCmpEQ, nil
	case ir.OpNe:
		return machine.OpCmpNE, nil
	case ir.OpLt:
		return machine.OpCmpLT, nil
	case ir.OpLe:
		return machine.OpCmpLE, nil
	case ir.OpGt:
		return machine.OpCmpGT, nil
	case ir.OpGe:
		return machine.OpCmpGE, nil
	}
	return machine.OpNop, fmt.Errorf("int op %v", op)
}

func (g *fnGen) terminator(b *ir.Block, next *ir.Block) error {
	switch b.Term.Kind {
	case ir.TermJump:
		if len(b.Succs) == 1 && b.Succs[0] != next {
			i := g.emit(machine.Instr{Op: machine.OpBr})
			g.fixups[i] = b.Succs[0]
		}
	case ir.TermCond:
		r, _, err := g.operand(b.Term.Cond)
		if err != nil {
			return err
		}
		if b.Succs[1] == next {
			i := g.emit(machine.Instr{Op: machine.OpBnez, Rs: r})
			g.fixups[i] = b.Succs[0]
		} else if b.Succs[0] == next {
			i := g.emit(machine.Instr{Op: machine.OpBeqz, Rs: r})
			g.fixups[i] = b.Succs[1]
		} else {
			i := g.emit(machine.Instr{Op: machine.OpBnez, Rs: r})
			g.fixups[i] = b.Succs[0]
			j := g.emit(machine.Instr{Op: machine.OpBr})
			g.fixups[j] = b.Succs[1]
		}
	case ir.TermRet:
		if b.Term.Val != nil {
			r, _, err := g.operand(b.Term.Val)
			if err != nil {
				return err
			}
			g.emit(machine.Instr{Op: machine.OpRet, Rs: r})
			return nil
		}
		g.emit(machine.Instr{Op: machine.OpRet, Rs: -1})
	}
	return nil
}

func floatBits(f float64) uint64 {
	return math.Float64bits(f)
}
