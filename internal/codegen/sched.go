package codegen

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/par"
)

// Schedule performs latency-driven list scheduling inside each basic block
// of an (out-of-SSA) function — the "instruction scheduling" client of the
// paper's Fig. 3. Loads are issued as early as their dependences allow so
// that their latency overlaps with independent work; the pipelined VM
// timing model (machine.Config.Pipelined) rewards the overlap.
//
// The scheduler is conservative about memory: stores act as barriers
// against other memory operations (the speculative load-vs-store
// reordering the paper cites from Ju et al. [17] is already realized at a
// higher level by speculative PRE, which removes or hoists the loads
// outright). Calls and prints are full barriers. Register dependences
// (flow, anti, output) are honoured exactly.
func Schedule(prog *ir.Program) {
	ScheduleWorkers(prog, 0)
}

// ScheduleWorkers schedules with at most workers functions in flight
// (0 = all cores, 1 = serial). Scheduling touches only the function's own
// blocks, so the result is independent of the worker count.
func ScheduleWorkers(prog *ir.Program, workers int) {
	par.Each(workers, len(prog.Funcs), func(i int) error {
		alat := alatTemps(prog.Funcs[i])
		for _, b := range prog.Funcs[i].Blocks {
			b.Stmts = scheduleBlock(b.Stmts, alat)
		}
		return nil
	})
}

// alatTemps collects the symbols whose register is an ALAT pairing key:
// destinations of advanced and check loads. A copy out of such a register
// is the point where the original (unhoisted) load conceptually happens,
// so it must stay ordered with stores and barriers — moving an aliasing
// store between a check and the copy that consumes its value would let a
// stale speculative value escape unchecked.
func alatTemps(fn *ir.Func) map[*ir.Sym]bool {
	var temps map[*ir.Sym]bool
	for _, b := range fn.Blocks {
		for _, s := range b.Stmts {
			if a, ok := s.(*ir.Assign); ok && (a.Spec.AdvLoad || a.Spec.CheckLoad) {
				if temps == nil {
					temps = map[*ir.Sym]bool{}
				}
				temps[a.Dst.Sym] = true
			}
		}
	}
	return temps
}

// stmtLatency estimates the result latency of a statement, mirroring the
// VM's cycle model.
func stmtLatency(s ir.Stmt) int {
	switch t := s.(type) {
	case *ir.Assign:
		switch t.RK {
		case ir.RHSLoad:
			if t.LoadsFrom != nil && t.LoadsFrom.IsFloat() {
				return 9
			}
			return 2
		case ir.RHSCopy:
			if r, ok := t.A.(*ir.Ref); ok && r.Sym.InMemory() {
				if r.Sym.Type.IsFloat() {
					return 9
				}
				return 2
			}
			return 1
		case ir.RHSBinary, ir.RHSUnary:
			aFloat := operandFloat(t.A)
			if t.B != nil {
				aFloat = aFloat || operandFloat(t.B)
			}
			switch t.Op {
			case ir.OpDiv, ir.OpMod:
				if aFloat {
					return 20
				}
				return 15
			case ir.OpMul:
				if aFloat {
					return 4
				}
				return 2
			default:
				if aFloat {
					return 4
				}
				return 1
			}
		}
	case *ir.Call:
		return 4
	}
	return 1
}

func operandFloat(op ir.Operand) bool {
	return op != nil && op.Type() != nil && op.Type().IsFloat()
}

// stmtDefs returns the register symbols defined by a statement.
func stmtDefs(s ir.Stmt) []*ir.Sym {
	switch t := s.(type) {
	case *ir.Assign:
		if !t.Dst.Sym.InMemory() {
			return []*ir.Sym{t.Dst.Sym}
		}
	case *ir.Call:
		if t.Dst != nil {
			return []*ir.Sym{t.Dst.Sym}
		}
	}
	return nil
}

// stmtUses returns the register symbols read by a statement.
func stmtUses(s ir.Stmt) []*ir.Sym {
	var out []*ir.Sym
	ir.EachUse(s, func(op ir.Operand) {
		if r, ok := op.(*ir.Ref); ok && !r.Sym.InMemory() {
			out = append(out, r.Sym)
		}
	})
	return out
}

// memClass classifies a statement's memory behaviour for dependence edges.
type memClass int

const (
	memNone memClass = iota
	memLoad
	memStore
	memBarrier // calls, prints, allocations
)

func stmtMemClass(s ir.Stmt, alat map[*ir.Sym]bool) memClass {
	switch t := s.(type) {
	case *ir.Assign:
		if t.Dst.Sym.InMemory() {
			return memStore
		}
		switch t.RK {
		case ir.RHSLoad:
			return memLoad
		case ir.RHSAlloc:
			return memBarrier
		case ir.RHSCopy:
			if r, ok := t.A.(*ir.Ref); ok && r.Sym.InMemory() {
				return memLoad
			}
			// a copy out of an ALAT register consumes a speculative
			// value at its original program point: treat it as a load so
			// no store or barrier can slide between the check and the
			// consumption (see alatTemps)
			if r, ok := t.A.(*ir.Ref); ok && alat[r.Sym] {
				return memLoad
			}
		}
		return memNone
	case *ir.IStore:
		return memStore
	case *ir.Call, *ir.Print:
		return memBarrier
	}
	return memNone
}

// scheduleBlock reorders one block's statements.
func scheduleBlock(stmts []ir.Stmt, alat map[*ir.Sym]bool) []ir.Stmt {
	n := len(stmts)
	if n < 3 {
		return stmts
	}
	succs := make([][]int, n)
	npreds := make([]int, n)
	addEdge := func(from, to int) {
		succs[from] = append(succs[from], to)
		npreds[to]++
	}

	lastDef := map[*ir.Sym]int{}
	lastUses := map[*ir.Sym][]int{}
	lastStore := -1
	lastBarrier := -1
	var memOps []int // loads and stores since the last barrier

	for i, s := range stmts {
		// register dependences
		for _, u := range stmtUses(s) {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i) // RAW
			}
		}
		for _, d := range stmtDefs(s) {
			if prev, ok := lastDef[d]; ok {
				addEdge(prev, i) // WAW
			}
			for _, u := range lastUses[d] {
				addEdge(u, i) // WAR
			}
		}
		// memory dependences
		switch stmtMemClass(s, alat) {
		case memLoad:
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			if lastBarrier >= 0 {
				addEdge(lastBarrier, i)
			}
			memOps = append(memOps, i)
		case memStore:
			for _, m := range memOps {
				addEdge(m, i)
			}
			if lastBarrier >= 0 {
				addEdge(lastBarrier, i)
			}
			memOps = memOps[:0]
			memOps = append(memOps, i)
			lastStore = i
		case memBarrier:
			for _, m := range memOps {
				addEdge(m, i)
			}
			if lastBarrier >= 0 {
				addEdge(lastBarrier, i)
			}
			if lastStore >= 0 && lastStore != i {
				addEdge(lastStore, i)
			}
			memOps = memOps[:0]
			lastStore = -1
			lastBarrier = i
		}
		// bookkeeping
		for _, u := range stmtUses(s) {
			lastUses[u] = append(lastUses[u], i)
		}
		for _, d := range stmtDefs(s) {
			lastDef[d] = i
			lastUses[d] = nil
		}
	}

	// de-duplicate edges (cheap: small blocks)
	for i := range succs {
		seen := map[int]bool{}
		var uniq []int
		for _, t := range succs[i] {
			if !seen[t] && t != i {
				seen[t] = true
				uniq = append(uniq, t)
			}
		}
		// recompute preds below
		succs[i] = uniq
	}
	for i := range npreds {
		npreds[i] = 0
	}
	for i := range succs {
		for _, t := range succs[i] {
			npreds[t]++
		}
	}

	// priority: longest latency path to the end of the block
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		best := 0
		for _, t := range succs[i] {
			if prio[t] > best {
				best = prio[t]
			}
		}
		prio[i] = best + stmtLatency(stmts[i])
	}

	// greedy list scheduling: among ready statements pick the highest
	// priority (ties: original order, keeping the schedule stable)
	var ready []int
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]ir.Stmt, 0, n)
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool {
			if prio[ready[a]] != prio[ready[b]] {
				return prio[ready[a]] > prio[ready[b]]
			}
			return ready[a] < ready[b]
		})
		pick := ready[0]
		ready = ready[1:]
		out = append(out, stmts[pick])
		for _, t := range succs[pick] {
			npreds[t]--
			if npreds[t] == 0 {
				ready = append(ready, t)
			}
		}
	}
	if len(out) != n {
		// cycle would indicate a dependence bug; fall back to the
		// original order rather than drop statements
		return stmts
	}
	return out
}
