package cache

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeRemote is an in-memory Remote for exercising the tier ordering
// without HTTP.
type fakeRemote struct {
	mu    sync.Mutex
	store map[Key][]byte
	gets  int
	puts  int
}

func newFakeRemote() *fakeRemote { return &fakeRemote{store: map[Key][]byte{}} }

func (f *fakeRemote) Get(ctx context.Context, key Key) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	data, ok := f.store[key]
	return data, ok
}

func (f *fakeRemote) Put(ctx context.Context, key Key, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.store[key] = data
}

func TestParseKeyRoundTrip(t *testing.T) {
	k := KeyOf([]byte("hello"))
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("round trip: %v, %v", got, err)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("a", 63), strings.Repeat("a", 65)} {
		if _, err := ParseKey(bad); err == nil {
			t.Fatalf("ParseKey(%q) should fail", bad)
		}
	}
}

func TestHRWRankDeterministicTotalOrder(t *testing.T) {
	names := []string{"c", "a", "b", "d"}
	k := KeyOf([]byte("some key"))
	first := HRWRank(k, names)
	if len(first) != len(names) {
		t.Fatalf("rank dropped names: %v", first)
	}
	seen := map[string]bool{}
	for _, n := range first {
		seen[n] = true
	}
	if len(seen) != len(names) {
		t.Fatalf("rank not a permutation: %v", first)
	}
	// Same result from a differently-ordered input slice.
	again := HRWRank(k, []string{"d", "b", "a", "c"})
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("ranking depends on input order: %v vs %v", first, again)
		}
	}
}

func TestHRWRankSpreadsKeys(t *testing.T) {
	names := []string{"w1", "w2", "w3"}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		top := HRWRank(keyN(i), names)[0]
		counts[top]++
	}
	for _, n := range names {
		if counts[n] < 30 {
			t.Fatalf("worker %s owns only %d/300 keys: %v", n, counts[n], counts)
		}
	}
}

func TestHRWRankStableUnderPeerRemoval(t *testing.T) {
	// Removing a peer must not reshuffle keys among the survivors:
	// every key not owned by the removed peer keeps its owner.
	all := []string{"w1", "w2", "w3"}
	rest := []string{"w1", "w3"}
	for i := 0; i < 200; i++ {
		before := HRWRank(keyN(i), all)[0]
		after := HRWRank(keyN(i), rest)[0]
		if before != "w2" && before != after {
			t.Fatalf("key %d moved %s -> %s on unrelated peer removal", i, before, after)
		}
	}
}

func TestRemoteTierHitSkipsComputeAndFillsDisk(t *testing.T) {
	dir := t.TempDir()
	remote := newFakeRemote()
	key := keyN(1)
	remote.store[key] = []byte("peer value")

	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	c.SetRemote(remote)
	v, err := c.GetBytes(key, func() ([]byte, error) {
		t.Fatal("compute must not run on a remote hit")
		return nil, nil
	})
	if err != nil || string(v) != "peer value" {
		t.Fatalf("get: %q, %v", v, err)
	}
	s := c.Stats()
	if s.RemoteHits != 1 || s.RemoteMisses != 0 || s.Computes != 0 {
		t.Fatalf("stats = %+v", s)
	}

	// The hit was written through to disk: a second instance sharing the
	// dir but with no remote tier finds it without computing.
	c2 := New(0)
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	v, err = c2.GetBytes(key, func() ([]byte, error) {
		t.Fatal("compute must not run on a disk hit")
		return nil, nil
	})
	if err != nil || string(v) != "peer value" {
		t.Fatalf("warm get: %q, %v", v, err)
	}
}

func TestRemoteTierMissComputesAndPuts(t *testing.T) {
	remote := newFakeRemote()
	c := New(0)
	c.SetRemote(remote)
	key := keyN(2)
	v, err := c.GetBytes(key, func() ([]byte, error) { return []byte("computed"), nil })
	if err != nil || string(v) != "computed" {
		t.Fatalf("get: %q, %v", v, err)
	}
	s := c.Stats()
	if s.RemoteMisses != 1 || s.RemoteHits != 0 || s.Computes != 1 || s.RemotePuts != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if string(remote.store[key]) != "computed" {
		t.Fatalf("computed value not pushed to remote: %q", remote.store[key])
	}
	// Memory hit on re-lookup: the remote is not consulted again.
	if _, err := c.GetBytes(key, func() ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if remote.gets != 1 {
		t.Fatalf("remote consulted %d times, want 1", remote.gets)
	}
}

func TestRemoteTierErrorsNotPushed(t *testing.T) {
	remote := newFakeRemote()
	c := New(0)
	c.SetRemote(remote)
	_, err := c.GetBytes(keyN(3), func() ([]byte, error) { return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("want compute error")
	}
	if remote.puts != 0 {
		t.Fatalf("error result pushed to remote (%d puts)", remote.puts)
	}
}

func TestDisabledCacheSkipsRemote(t *testing.T) {
	remote := newFakeRemote()
	remote.store[keyN(4)] = []byte("peer value")
	c := New(0)
	c.SetRemote(remote)
	c.SetEnabled(false)
	v, err := c.GetBytes(keyN(4), func() ([]byte, error) { return []byte("local"), nil })
	if err != nil || string(v) != "local" {
		t.Fatalf("get: %q, %v", v, err)
	}
	if remote.gets != 0 || remote.puts != 0 {
		t.Fatalf("disabled cache touched remote: %d gets, %d puts", remote.gets, remote.puts)
	}
}

func TestPeekBytes(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	memKey, diskKey, missKey := keyN(1), keyN(2), keyN(3)
	if _, err := c.GetBytes(memKey, func() ([]byte, error) { return []byte("in memory"), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBytes(diskKey, func() ([]byte, error) { return []byte("on disk"), nil }); err != nil {
		t.Fatal(err)
	}
	c.Reset() // diskKey now reachable only via disk

	if v, ok := c.PeekBytes(memKey); !ok || string(v) != "in memory" {
		t.Fatalf("peek mem: %q, %v", v, ok)
	}
	if v, ok := c.PeekBytes(diskKey); !ok || string(v) != "on disk" {
		t.Fatalf("peek disk: %q, %v", v, ok)
	}
	if _, ok := c.PeekBytes(missKey); ok {
		t.Fatal("peek of absent key must miss")
	}
	// A peek never consults the cache's own remote tier (peer recursion
	// guard) and never claims the key for compute.
	remote := newFakeRemote()
	remote.store[missKey] = []byte("peer value")
	c.SetRemote(remote)
	if _, ok := c.PeekBytes(missKey); ok {
		t.Fatal("peek must not consult the remote tier")
	}
	if remote.gets != 0 {
		t.Fatalf("peek hit the remote tier: %d gets", remote.gets)
	}
}

func TestPutBytes(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	key := keyN(1)
	c.PutBytes(key, []byte("pushed"))
	v, err := c.GetBytes(key, func() ([]byte, error) {
		t.Fatal("compute must not run after PutBytes")
		return nil, nil
	})
	if err != nil || string(v) != "pushed" {
		t.Fatalf("get: %q, %v", v, err)
	}
	// Write-through to disk: visible to a fresh instance.
	c2 := New(0)
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if v, ok := c2.PeekBytes(key); !ok || string(v) != "pushed" {
		t.Fatalf("disk write-through: %q, %v", v, ok)
	}
	// An existing entry wins over a later put.
	c.PutBytes(key, []byte("usurper"))
	if v, _ := c.PeekBytes(key); string(v) != "pushed" {
		t.Fatalf("existing entry displaced: %q", v)
	}
	// Disabled cache ignores puts entirely.
	c3 := New(0)
	c3.SetEnabled(false)
	c3.PutBytes(keyN(2), []byte("dropped"))
	c3.SetEnabled(true)
	if _, ok := c3.PeekBytes(keyN(2)); ok {
		t.Fatal("disabled put must be a no-op")
	}
}

// peerServer is a minimal GET/PUT /cache/{key} handler backed by a
// Cache, standing in for a specd worker.
func peerServer(t *testing.T, c *Cache) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, err := ParseKey(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		data, ok := c.PeekBytes(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(data)
	})
	mux.HandleFunc("PUT /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, err := ParseKey(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.PutBytes(key, body)
		w.WriteHeader(http.StatusNoContent)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestPeerRemoteGetPut(t *testing.T) {
	peerA, peerB := New(0), New(0)
	srvA := peerServer(t, peerA)
	srvB := peerServer(t, peerB)
	peers := []string{srvA.URL, srvB.URL}
	remote := NewPeerRemote(peers, nil, time.Second)

	key := keyN(1)
	if _, ok := remote.Get(context.Background(), key); ok {
		t.Fatal("empty peers must miss")
	}
	remote.Put(context.Background(), key, []byte("shared"))
	// The put landed on exactly the top-ranked peer.
	top := HRWRank(key, peers)[0]
	owner, other := peerA, peerB
	if top == srvB.URL {
		owner, other = peerB, peerA
	}
	if v, ok := owner.PeekBytes(key); !ok || string(v) != "shared" {
		t.Fatalf("top-ranked peer missing entry: %q, %v", v, ok)
	}
	if _, ok := other.PeekBytes(key); ok {
		t.Fatal("put must place one copy, not replicate")
	}
	if v, ok := remote.Get(context.Background(), key); !ok || string(v) != "shared" {
		t.Fatalf("remote get: %q, %v", v, ok)
	}
}

func TestPeerRemoteFallsThroughRankedPeers(t *testing.T) {
	peerA, peerB := New(0), New(0)
	srvA := peerServer(t, peerA)
	srvB := peerServer(t, peerB)
	peers := []string{srvA.URL, srvB.URL}
	remote := NewPeerRemote(peers, nil, time.Second)

	// Seed the entry on the *lower*-ranked peer only: a lookup must
	// still find it by falling through the ranking.
	key := keyN(7)
	ranked := HRWRank(key, peers)
	low := peerA
	if ranked[len(ranked)-1] == srvB.URL {
		low = peerB
	}
	low.PutBytes(key, []byte("far copy"))
	if v, ok := remote.Get(context.Background(), key); !ok || string(v) != "far copy" {
		t.Fatalf("fallthrough get: %q, %v", v, ok)
	}
}

func TestPeerRemoteDownPeerDegradesToMiss(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // permanently down
	remote := NewPeerRemote([]string{srv.URL}, nil, 200*time.Millisecond)
	if _, ok := remote.Get(context.Background(), keyN(1)); ok {
		t.Fatal("down peer must be a miss")
	}
	remote.Put(context.Background(), keyN(1), []byte("x")) // must not panic or block

	// And through the cache: the compute path still works.
	c := New(0)
	c.SetRemote(remote)
	v, err := c.GetBytes(keyN(1), func() ([]byte, error) { return []byte("local"), nil })
	if err != nil || string(v) != "local" {
		t.Fatalf("get with down remote: %q, %v", v, err)
	}
}

func TestPeerRemoteHonorsCtxCancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	remote := NewPeerRemote([]string{slow.URL, slow.URL + "/second"}, nil, 10*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := remote.Get(ctx, keyN(1))
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled get reported a hit")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled get did not return promptly")
	}
}

func TestPeerRemoteRejectsOversizedResponse(t *testing.T) {
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(maxRemoteEntry+2))
		buf := make([]byte, 1<<20)
		var sent int64
		for sent <= maxRemoteEntry+1 {
			n, err := w.Write(buf)
			sent += int64(n)
			if err != nil {
				return
			}
		}
	}))
	defer huge.Close()
	remote := NewPeerRemote([]string{huge.URL}, nil, 5*time.Second)
	if _, ok := remote.Get(context.Background(), keyN(1)); ok {
		t.Fatal("oversized response must be a miss")
	}
}
