// Package cache is the two-tier content-addressed cache behind the
// compilation pipeline's reuse: an in-memory memoization tier (frontend
// IR masters, serialized profiles) and an optional persistent on-disk
// tier (serialized profiles), so a sweep's config variants share one
// profiling interpreter run and a warm-started process skips profiling
// entirely.
//
// Keys are sha256 digests over length-prefixed byte parts (KeyOf), so a
// key commits to the full content that produced the value — source
// text, option string, training arguments — never to a name. Both tiers
// follow the same contract:
//
//   - a lookup either returns the memoized value or runs the caller's
//     compute function exactly once per key, even under concurrency
//     (misses are single-flighted: concurrent callers of the same key
//     block on one computation instead of duplicating it);
//   - on-disk entries live under a versioned subdirectory and carry a
//     checksum header; a truncated, garbled, or stale entry is
//     discarded and recomputed — corruption is never an error;
//   - hit/miss/compute/evict counters are exported (Stats) so tests
//     and tools can assert reuse instead of trusting it.
package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Version stamps the on-disk layout. Entries are stored under a
// "v<Version>" subdirectory of the configured cache dir, so a layout or
// semantics change invalidates every old entry by construction instead
// of by deletion.
const Version = 1

// Key is a content-addressed cache key.
type Key [sha256.Size]byte

// KeyOf digests the parts into a Key. Each part is length-prefixed
// before hashing, so ("ab","c") and ("a","bc") produce distinct keys.
func KeyOf(parts ...[]byte) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// Stats are the cache's cumulative counters. Snapshot them before and
// after an operation and compare deltas; they are never reset.
type Stats struct {
	MemHits    uint64 // lookups served by the in-memory tier
	MemMisses  uint64 // lookups that missed the in-memory tier
	DiskHits   uint64 // memory misses served by the on-disk tier
	DiskMisses uint64 // on-disk lookups that found no (valid) entry
	Computes   uint64 // compute functions actually run
	Evictions  uint64 // in-memory entries dropped for capacity
	Corrupt    uint64 // on-disk entries discarded as corrupt/stale
}

// entry is one memoized result. ready is closed when the result fields
// are final; late arrivals at the same key wait on it (singleflight).
type entry struct {
	ready chan struct{}
	data  []byte
	obj   any
	err   error
}

func (e *entry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// Cache is a two-tier content-addressed cache, safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	disabled bool
	dir      string // "" = memory only
	mem      map[Key]*entry
	order    []Key // insertion order, for FIFO eviction
	stats    Stats
}

// New returns a memory-only cache holding at most capacity entries
// (<= 0 means unbounded).
func New(capacity int) *Cache {
	return &Cache{capacity: capacity, mem: map[Key]*entry{}}
}

// SetDir enables the on-disk tier under dir (creating its versioned
// subdirectory), or disables it when dir is empty. Byte entries are
// persisted there and survive the process.
func (c *Cache) SetDir(dir string) error {
	if dir == "" {
		c.mu.Lock()
		c.dir = ""
		c.mu.Unlock()
		return nil
	}
	vdir := filepath.Join(dir, fmt.Sprintf("v%d", Version))
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	c.mu.Lock()
	c.dir = vdir
	c.mu.Unlock()
	return nil
}

// Dir reports the active versioned on-disk directory ("" when the disk
// tier is off).
func (c *Cache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// SetEnabled turns memoization on or off. While disabled every lookup
// runs its compute function; nothing is stored or read, in memory or on
// disk. The oracle mode for "byte-identical with the cache off" tests.
func (c *Cache) SetEnabled(on bool) {
	c.mu.Lock()
	c.disabled = !on
	c.mu.Unlock()
}

// Reset drops the whole in-memory tier (the on-disk tier, being
// persistent by design, stays). Counters are cumulative and unaffected.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.mem = map[Key]*entry{}
	c.order = nil
	c.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// lookupOrClaim returns the entry for key and whether the caller owns
// its computation. Non-owners must wait on entry.ready.
func (c *Cache) lookupOrClaim(key Key) (e *entry, owner bool, dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[key]; ok {
		c.stats.MemHits++
		return e, false, c.dir
	}
	c.stats.MemMisses++
	c.evictLocked()
	e = &entry{ready: make(chan struct{})}
	c.mem[key] = e
	c.order = append(c.order, key)
	return e, true, c.dir
}

// evictLocked makes room for one insertion, FIFO over completed
// entries; in-flight entries are never evicted (their waiters hold the
// pointer, and dropping them would duplicate the computation).
func (c *Cache) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for len(c.mem) >= c.capacity && len(c.order) > 0 {
		evicted := false
		for i, k := range c.order {
			e, ok := c.mem[k]
			if ok && !e.done() {
				continue
			}
			c.order = append(c.order[:i:i], c.order[i+1:]...)
			if ok {
				delete(c.mem, k)
				c.stats.Evictions++
				evicted = true
			}
			break
		}
		if !evicted {
			return // everything resident is in flight
		}
	}
}

func (c *Cache) isDisabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disabled
}

func (c *Cache) countCompute() {
	c.mu.Lock()
	c.stats.Computes++
	c.mu.Unlock()
}

// GetBytes returns the byte value for key, computing it at most once
// per key per process and, when the disk tier is on, at most once per
// key per cache directory. Errors are memoized in memory (the pipeline
// computations are deterministic) but never persisted. Callers must not
// mutate the returned slice.
func (c *Cache) GetBytes(key Key, compute func() ([]byte, error)) ([]byte, error) {
	if c.isDisabled() {
		c.countCompute()
		return compute()
	}
	e, owner, dir := c.lookupOrClaim(key)
	if !owner {
		<-e.ready
		return e.data, e.err
	}
	defer close(e.ready)
	if dir != "" {
		if data, ok := c.diskLoad(dir, key); ok {
			e.data = data
			return data, nil
		}
	}
	c.countCompute()
	e.data, e.err = compute()
	if e.err == nil && dir != "" {
		c.diskStore(dir, key, e.data)
	}
	return e.data, e.err
}

// GetObject is the memory-only variant of GetBytes for values that are
// not serialized (frontend IR masters). The returned object is shared —
// callers must treat it as immutable (clone before mutating).
func (c *Cache) GetObject(key Key, compute func() (any, error)) (any, error) {
	if c.isDisabled() {
		c.countCompute()
		return compute()
	}
	e, owner, _ := c.lookupOrClaim(key)
	if !owner {
		<-e.ready
		return e.obj, e.err
	}
	defer close(e.ready)
	c.countCompute()
	e.obj, e.err = compute()
	return e.obj, e.err
}

// The on-disk entry format: one header line
//
//	reprocache v<Version> <64-hex sha256 of payload>\n
//
// followed by the raw payload. The checksum makes truncation and bit
// rot detectable; the version (in both the directory name and the
// header) makes staleness detectable.

func (c *Cache) diskPath(dir string, key Key) string {
	return filepath.Join(dir, hex.EncodeToString(key[:])+".cache")
}

// diskLoad reads and verifies the entry for key. Any failure — missing
// file, malformed header, checksum mismatch — is a miss; a present but
// invalid file is deleted and counted as corrupt.
func (c *Cache) diskLoad(dir string, key Key) ([]byte, bool) {
	path := c.diskPath(dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.mu.Lock()
		c.stats.DiskMisses++
		c.mu.Unlock()
		return nil, false
	}
	payload, ok := verifyEntry(raw)
	c.mu.Lock()
	if ok {
		c.stats.DiskHits++
	} else {
		c.stats.DiskMisses++
		c.stats.Corrupt++
	}
	c.mu.Unlock()
	if !ok {
		os.Remove(path)
		return nil, false
	}
	return payload, true
}

func verifyEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	header, payload := string(raw[:nl]), raw[nl+1:]
	want := fmt.Sprintf("reprocache v%d %x", Version, sha256.Sum256(payload))
	if header != want {
		return nil, false
	}
	return payload, true
}

// diskStore persists an entry, best-effort: a full disk or unwritable
// directory degrades to memory-only caching, never to an error. The
// write goes through a temp file + rename so a concurrent process (or a
// crash) can never observe a half-written entry.
func (c *Cache) diskStore(dir string, key Key, payload []byte) {
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	header := fmt.Sprintf("reprocache v%d %x\n", Version, sha256.Sum256(payload))
	_, werr := tmp.WriteString(header)
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	cerr := tmp.Close()
	if werr == nil && cerr == nil && os.Rename(name, c.diskPath(dir, key)) == nil {
		return
	}
	os.Remove(name)
}
