// Package cache is the two-tier content-addressed cache behind the
// compilation pipeline's reuse: an in-memory memoization tier (frontend
// IR masters, serialized profiles) and an optional persistent on-disk
// tier (serialized profiles), so a sweep's config variants share one
// profiling interpreter run and a warm-started process skips profiling
// entirely.
//
// Keys are sha256 digests over length-prefixed byte parts (KeyOf), so a
// key commits to the full content that produced the value — source
// text, option string, training arguments — never to a name. Both tiers
// follow the same contract:
//
//   - a lookup either returns the memoized value or runs the caller's
//     compute function exactly once per key, even under concurrency
//     (misses are single-flighted: concurrent callers of the same key
//     block on one computation instead of duplicating it);
//   - on-disk entries live under a versioned subdirectory and carry a
//     checksum header; a truncated, garbled, or stale entry is
//     discarded and recomputed — corruption is never an error;
//   - hit/miss/compute/evict counters are exported (Stats) so tests
//     and tools can assert reuse instead of trusting it.
package cache

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Version stamps the on-disk layout. Entries are stored under a
// "v<Version>" subdirectory of the configured cache dir, so a layout or
// semantics change invalidates every old entry by construction instead
// of by deletion.
const Version = 1

// Key is a content-addressed cache key.
type Key [sha256.Size]byte

// KeyOf digests the parts into a Key. Each part is length-prefixed
// before hashing, so ("ab","c") and ("a","bc") produce distinct keys.
func KeyOf(parts ...[]byte) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// Stats are the cache's cumulative counters. Snapshot them before and
// after an operation and compare deltas; they are never reset.
type Stats struct {
	MemHits      uint64 // lookups served by the in-memory tier
	MemMisses    uint64 // lookups that missed the in-memory tier
	DiskHits     uint64 // memory misses served by the on-disk tier
	DiskMisses   uint64 // on-disk lookups that found no (valid) entry
	RemoteHits   uint64 // disk misses served by the remote (peer) tier
	RemoteMisses uint64 // remote lookups that found no peer copy
	RemotePuts   uint64 // computed entries pushed to the remote tier
	Computes     uint64 // compute functions actually run
	Evictions    uint64 // in-memory entries dropped for capacity
	Corrupt      uint64 // on-disk entries discarded as corrupt/stale
}

// entry is one memoized result. ready is closed when the result fields
// are final; late arrivals at the same key wait on it (singleflight).
type entry struct {
	ready chan struct{}
	data  []byte
	obj   any
	err   error
}

func (e *entry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// Cache is a content-addressed cache with up to three tiers (memory,
// disk, remote peers), safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	disabled bool
	dir      string // "" = memory only
	remote   Remote // nil = no peer tier
	mem      map[Key]*entry
	order    []Key // insertion order, for FIFO eviction
	stats    Stats
}

// New returns a memory-only cache holding at most capacity entries
// (<= 0 means unbounded).
func New(capacity int) *Cache {
	return &Cache{capacity: capacity, mem: map[Key]*entry{}}
}

// SetDir enables the on-disk tier under dir (creating its versioned
// subdirectory), or disables it when dir is empty. Byte entries are
// persisted there and survive the process.
func (c *Cache) SetDir(dir string) error {
	if dir == "" {
		c.mu.Lock()
		c.dir = ""
		c.mu.Unlock()
		return nil
	}
	vdir := filepath.Join(dir, fmt.Sprintf("v%d", Version))
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	c.mu.Lock()
	c.dir = vdir
	c.mu.Unlock()
	return nil
}

// Dir reports the active versioned on-disk directory ("" when the disk
// tier is off).
func (c *Cache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// SetEnabled turns memoization on or off. While disabled every lookup
// runs its compute function; nothing is stored or read, in memory or on
// disk. The oracle mode for "byte-identical with the cache off" tests.
func (c *Cache) SetEnabled(on bool) {
	c.mu.Lock()
	c.disabled = !on
	c.mu.Unlock()
}

// Reset drops the whole in-memory tier (the on-disk tier, being
// persistent by design, stays). Counters are cumulative and unaffected.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.mem = map[Key]*entry{}
	c.order = nil
	c.mu.Unlock()
}

// SumObjects folds f over every completed, non-error object entry of
// the in-memory tier and returns the sum. Used to expose resident-size
// gauges (e.g. decoded trace bytes) without the cache knowing any
// value's type.
func (c *Cache) SumObjects(f func(v any) int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, e := range c.mem {
		if e.done() && e.err == nil && e.obj != nil {
			total += f(e.obj)
		}
	}
	return total
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// lookupOrClaim returns the entry for key and whether the caller owns
// its computation. Non-owners must wait on entry.ready.
func (c *Cache) lookupOrClaim(key Key) (e *entry, owner bool, dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[key]; ok {
		c.stats.MemHits++
		return e, false, c.dir
	}
	c.stats.MemMisses++
	c.evictLocked()
	e = &entry{ready: make(chan struct{})}
	c.mem[key] = e
	c.order = append(c.order, key)
	return e, true, c.dir
}

// evictLocked makes room for one insertion, FIFO over completed
// entries; in-flight entries are never evicted (their waiters hold the
// pointer, and dropping them would duplicate the computation).
func (c *Cache) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for len(c.mem) >= c.capacity && len(c.order) > 0 {
		evicted := false
		for i, k := range c.order {
			e, ok := c.mem[k]
			if ok && !e.done() {
				continue
			}
			c.order = append(c.order[:i:i], c.order[i+1:]...)
			if ok {
				delete(c.mem, k)
				c.stats.Evictions++
				evicted = true
			}
			break
		}
		if !evicted {
			return // everything resident is in flight
		}
	}
}

func (c *Cache) isDisabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disabled
}

func (c *Cache) countCompute() {
	c.mu.Lock()
	c.stats.Computes++
	c.mu.Unlock()
}

// errAbandoned marks an entry whose owner exited without a result (a
// compute panic). It wraps context.Canceled so waiters treat it like an
// owner cancellation: retry the lookup instead of surfacing it.
var errAbandoned = fmt.Errorf("cache: computation abandoned: %w", context.Canceled)

// isCtxErr reports whether err is a context cancellation or deadline —
// the one class of compute error that must never be memoized: it
// describes the caller that happened to own the computation, not the
// computation itself, and caching it would poison the key for every
// future caller with a live context.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// forget removes an abandoned in-flight entry so a later lookup
// recomputes instead of observing another caller's context error.
func (c *Cache) forget(key Key, e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.mem[key]; ok && cur == e {
		delete(c.mem, key)
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i:i], c.order[i+1:]...)
				break
			}
		}
	}
}

// GetBytes returns the byte value for key, computing it at most once
// per key per process and, when the disk tier is on, at most once per
// key per cache directory. Errors are memoized in memory (the pipeline
// computations are deterministic) but never persisted. Callers must not
// mutate the returned slice.
func (c *Cache) GetBytes(key Key, compute func() ([]byte, error)) ([]byte, error) {
	return c.GetBytesCtx(context.Background(), key, compute)
}

// GetBytesCtx is GetBytes with cancellation: a caller waiting on
// another caller's in-flight computation (the singleflight path)
// returns ctx.Err() as soon as ctx is done instead of blocking until
// the owner finishes. The owner itself always completes its compute —
// the result is cached for every other caller, so abandoning it would
// only duplicate work — but if the compute surfaces a context error
// (a nested ctx-aware lookup, or a compute closure that honors its
// caller's ctx), that error is forgotten, not memoized, and waiters
// with a live context retry the lookup.
func (c *Cache) GetBytesCtx(ctx context.Context, key Key, compute func() ([]byte, error)) ([]byte, error) {
	if c.isDisabled() {
		c.countCompute()
		return compute()
	}
	for {
		e, owner, dir := c.lookupOrClaim(key)
		if !owner {
			select {
			case <-e.ready:
				if isCtxErr(e.err) {
					// the owner was cancelled mid-compute; its error is
					// not ours — retry unless we are cancelled too
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					continue
				}
				return e.data, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return c.fillBytes(ctx, e, key, dir, compute)
	}
}

// fillBytes runs the owner's side of a GetBytesCtx miss: disk tier,
// then the remote (peer) tier, then the compute function. e.ready is
// closed on every exit, including a compute panic (the entry is then
// forgotten so waiters retry rather than observe a half-filled entry,
// and the panic propagates to the owner). A remote hit is written
// through to the disk tier; a computed value is written through to both
// (the push to peers is what makes the entry computed once fleet-wide).
func (c *Cache) fillBytes(ctx context.Context, e *entry, key Key, dir string, compute func() ([]byte, error)) ([]byte, error) {
	completed := false
	defer func() {
		if !completed {
			e.err = errAbandoned
			c.forget(key, e)
		}
		close(e.ready)
	}()
	if dir != "" {
		if data, ok := c.diskLoad(dir, key); ok {
			e.data = data
			completed = true
			return data, nil
		}
	}
	if remote := c.getRemote(); remote != nil {
		if data, ok := remote.Get(ctx, key); ok {
			c.mu.Lock()
			c.stats.RemoteHits++
			c.mu.Unlock()
			e.data = data
			completed = true
			if dir != "" {
				c.diskStore(dir, key, data)
			}
			return data, nil
		}
		c.mu.Lock()
		c.stats.RemoteMisses++
		c.mu.Unlock()
	}
	c.countCompute()
	e.data, e.err = compute()
	completed = true
	if isCtxErr(e.err) {
		c.forget(key, e)
	} else if e.err == nil {
		if dir != "" {
			c.diskStore(dir, key, e.data)
		}
		if remote := c.getRemote(); remote != nil {
			remote.Put(ctx, key, e.data)
			c.mu.Lock()
			c.stats.RemotePuts++
			c.mu.Unlock()
		}
	}
	return e.data, e.err
}

// PeekBytes is the read side of serving the remote tier to peers: it
// returns the completed byte entry for key from the memory or disk tier
// without claiming the key, running any compute, or consulting this
// cache's own remote tier (so two peers looking each other up can never
// recurse). In-flight computations are not waited for — a peek races a
// compute, it never joins one.
func (c *Cache) PeekBytes(key Key) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.mem[key]
	dir := c.dir
	c.mu.Unlock()
	if ok && e.done() && e.err == nil && e.data != nil {
		return e.data, true
	}
	if dir != "" {
		if data, ok := c.diskLoad(dir, key); ok {
			return data, true
		}
	}
	return nil, false
}

// PutBytes is the write side of serving the remote tier to peers: it
// installs data as the completed byte entry for key in the memory tier
// (respecting capacity) and writes it through to the disk tier. An
// existing entry — completed or in flight — wins: the cache's values
// are content-addressed and deterministic, so the first copy is as good
// as any, and displacing an in-flight entry would strand its waiters.
func (c *Cache) PutBytes(key Key, data []byte) {
	c.mu.Lock()
	if c.disabled {
		c.mu.Unlock()
		return
	}
	dir := c.dir
	if _, ok := c.mem[key]; !ok {
		c.evictLocked()
		e := &entry{ready: make(chan struct{}), data: data}
		close(e.ready)
		c.mem[key] = e
		c.order = append(c.order, key)
	}
	c.mu.Unlock()
	if dir != "" {
		c.diskStore(dir, key, data)
	}
}

// GetObject is the memory-only variant of GetBytes for values that are
// not serialized (frontend IR masters). The returned object is shared —
// callers must treat it as immutable (clone before mutating).
func (c *Cache) GetObject(key Key, compute func() (any, error)) (any, error) {
	return c.GetObjectCtx(context.Background(), key, compute)
}

// GetObjectCtx is GetObject with cancellation, under the same contract
// as GetBytesCtx: waiters honor ctx, owners complete, context errors
// are never memoized.
func (c *Cache) GetObjectCtx(ctx context.Context, key Key, compute func() (any, error)) (any, error) {
	if c.isDisabled() {
		c.countCompute()
		return compute()
	}
	for {
		e, owner, _ := c.lookupOrClaim(key)
		if !owner {
			select {
			case <-e.ready:
				if isCtxErr(e.err) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					continue
				}
				return e.obj, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return c.fillObject(e, key, compute)
	}
}

// fillObject is fillBytes for the memory-only object tier.
func (c *Cache) fillObject(e *entry, key Key, compute func() (any, error)) (any, error) {
	completed := false
	defer func() {
		if !completed {
			e.err = errAbandoned
			c.forget(key, e)
		}
		close(e.ready)
	}()
	c.countCompute()
	e.obj, e.err = compute()
	completed = true
	if isCtxErr(e.err) {
		c.forget(key, e)
	}
	return e.obj, e.err
}

// The on-disk entry format: one header line
//
//	reprocache v<Version> <64-hex sha256 of payload>\n
//
// followed by the raw payload. The checksum makes truncation and bit
// rot detectable; the version (in both the directory name and the
// header) makes staleness detectable.

func (c *Cache) diskPath(dir string, key Key) string {
	return filepath.Join(dir, hex.EncodeToString(key[:])+".cache")
}

// diskLoad reads and verifies the entry for key. Any failure — missing
// file, malformed header, checksum mismatch — is a miss; a present but
// invalid file is deleted and counted as corrupt. A hit refreshes the
// entry's mtime so Prune's oldest-first deletion order approximates
// LRU: entries that concurrent readers are actively using are the last
// to go, not the first (their write time says nothing about their use).
func (c *Cache) diskLoad(dir string, key Key) ([]byte, bool) {
	path := c.diskPath(dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.mu.Lock()
		c.stats.DiskMisses++
		c.mu.Unlock()
		return nil, false
	}
	payload, ok := verifyEntry(raw)
	c.mu.Lock()
	if ok {
		c.stats.DiskHits++
	} else {
		c.stats.DiskMisses++
		c.stats.Corrupt++
	}
	c.mu.Unlock()
	if !ok {
		// Remove the corrupt file — but only if it still is the file we
		// read. A concurrent writer may have renamed a fresh, valid
		// entry over the path between our read and this removal, and
		// deleting that would lose a good entry (the historical race
		// this guards: truncated-entry cleanup vs store). A size match
		// can't distinguish every overwrite, but a valid entry and the
		// corrupt bytes sharing a length is vanishingly unlikely, and
		// the worst case of a wrong skip is one corrupt file lingering
		// until the next lookup.
		if info, serr := os.Stat(path); serr == nil && info.Size() == int64(len(raw)) {
			os.Remove(path)
		}
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort: a failed touch only ages the entry
	return payload, true
}

func verifyEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	header, payload := string(raw[:nl]), raw[nl+1:]
	want := fmt.Sprintf("reprocache v%d %x", Version, sha256.Sum256(payload))
	if header != want {
		return nil, false
	}
	return payload, true
}

// pruneTmpAge is how old a tmp-* file must be before Prune treats it as
// a leftover from a crashed writer rather than a concurrent store in
// progress.
const pruneTmpAge = 10 * time.Minute

// Prune bounds the on-disk tier under dir (the user-facing cache
// directory, spanning every versioned subdirectory) to at most maxBytes
// of entry payloads, deleting oldest-mtime-first — the disk tier
// otherwise grows without limit. Stale tmp files from crashed writers
// are removed regardless of the budget once they are clearly abandoned.
// Deletion is safe against concurrent readers and writers by the tier's
// own contract: a reader that loses the race sees a miss and
// recomputes; writers go through temp-file + rename and never observe a
// partial entry. maxBytes <= 0 keeps every entry (only stale tmp files
// go). Returns the number of bytes freed.
func Prune(dir string, maxBytes int64) (int64, error) {
	type file struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []file
	var total, freed int64
	now := time.Now()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// a file deleted by a concurrent pruner is not an error
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		name := d.Name()
		switch {
		case len(name) > 4 && filepath.Ext(name) == ".cache":
			entries = append(entries, file{path, info.Size(), info.ModTime()})
			total += info.Size()
		case len(name) > 4 && name[:4] == "tmp-":
			if now.Sub(info.ModTime()) > pruneTmpAge {
				if os.Remove(path) == nil {
					freed += info.Size()
				}
			}
		}
		return nil
	})
	if err != nil {
		return freed, fmt.Errorf("cache: prune: %w", err)
	}
	if maxBytes <= 0 || total <= maxBytes {
		return freed, nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	for _, f := range entries {
		if total <= maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			freed += f.size
		}
	}
	return freed, nil
}

// diskStore persists an entry, best-effort: a full disk or unwritable
// directory degrades to memory-only caching, never to an error. The
// write goes through a temp file + rename so a concurrent process (or a
// crash) can never observe a half-written entry.
func (c *Cache) diskStore(dir string, key Key, payload []byte) {
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	header := fmt.Sprintf("reprocache v%d %x\n", Version, sha256.Sum256(payload))
	_, werr := tmp.WriteString(header)
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	cerr := tmp.Close()
	if werr == nil && cerr == nil && os.Rename(name, c.diskPath(dir, key)) == nil {
		return
	}
	os.Remove(name)
}
