package cache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func keyN(n int) Key { return KeyOf([]byte(fmt.Sprintf("key-%d", n))) }

func TestKeyOfLengthPrefixed(t *testing.T) {
	if KeyOf([]byte("ab"), []byte("c")) == KeyOf([]byte("a"), []byte("bc")) {
		t.Fatal("KeyOf must distinguish part boundaries")
	}
	if KeyOf([]byte("a")) == KeyOf([]byte("a"), nil) {
		t.Fatal("KeyOf must distinguish part counts")
	}
	if KeyOf([]byte("a")) != KeyOf([]byte("a")) {
		t.Fatal("KeyOf must be deterministic")
	}
}

func TestMemoizeBytes(t *testing.T) {
	c := New(0)
	computes := 0
	get := func() ([]byte, error) {
		return c.GetBytes(keyN(1), func() ([]byte, error) {
			computes++
			return []byte("value"), nil
		})
	}
	for i := 0; i < 3; i++ {
		v, err := get()
		if err != nil || string(v) != "value" {
			t.Fatalf("get %d: %q, %v", i, v, err)
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	s := c.Stats()
	if s.MemHits != 2 || s.MemMisses != 1 || s.Computes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestErrorsMemoized(t *testing.T) {
	c := New(0)
	computes := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, err := c.GetBytes(keyN(1), func() ([]byte, error) {
			computes++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (deterministic failures are memoized)", computes)
	}
}

// TestSingleflight pins that concurrent misses at one key share a single
// computation instead of duplicating the work.
func TestSingleflight(t *testing.T) {
	c := New(0)
	release := make(chan struct{})
	var computes int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetBytes(keyN(7), func() ([]byte, error) {
				computes++ // safe: only one goroutine may get here
				<-release
				return []byte("shared"), nil
			})
			if err != nil || string(v) != "shared" {
				t.Errorf("got %q, %v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
}

func TestEvictionFIFO(t *testing.T) {
	c := New(2)
	for i := 0; i < 3; i++ {
		c.GetBytes(keyN(i), func() ([]byte, error) { return []byte{byte(i)}, nil })
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// key 0 was evicted: a re-get recomputes
	recomputed := false
	c.GetBytes(keyN(0), func() ([]byte, error) { recomputed = true; return nil, nil })
	if !recomputed {
		t.Fatal("oldest entry should have been evicted")
	}
	// key 2 survived
	c.GetBytes(keyN(2), func() ([]byte, error) {
		t.Fatal("newest entry should still be resident")
		return nil, nil
	})
}

func TestDiskWarmStartAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1 := New(0)
	if err := c1.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	v, err := c1.GetBytes(keyN(1), func() ([]byte, error) { return []byte("persisted"), nil })
	if err != nil || string(v) != "persisted" {
		t.Fatalf("store: %q, %v", v, err)
	}

	// a fresh instance on the same dir models a new process
	c2 := New(0)
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	v, err = c2.GetBytes(keyN(1), func() ([]byte, error) {
		t.Fatal("warm start must not recompute")
		return nil, nil
	})
	if err != nil || string(v) != "persisted" {
		t.Fatalf("load: %q, %v", v, err)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Computes != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit, 0 computes", s)
	}
}

func TestCorruptEntriesRecomputed(t *testing.T) {
	payload := []byte(`{"version":1,"blocks":{"main:B0":1}}`)
	corruptions := map[string]func([]byte) []byte{
		"truncated":       func(b []byte) []byte { return b[:len(b)/2] },
		"garbage":         func([]byte) []byte { return []byte("not a cache entry at all") },
		"flipped payload": func(b []byte) []byte { x := bytes.Clone(b); x[len(x)-2] ^= 0xff; return x },
		"empty":           func([]byte) []byte { return nil },
		"stale version":   func(b []byte) []byte { return bytes.Replace(b, []byte("reprocache v"), []byte("reprocache v9"), 1) },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c1 := New(0)
			if err := c1.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			if _, err := c1.GetBytes(keyN(1), func() ([]byte, error) { return payload, nil }); err != nil {
				t.Fatal(err)
			}
			path := c1.diskPath(c1.Dir(), keyN(1))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			c2 := New(0)
			if err := c2.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			recomputed := false
			v, err := c2.GetBytes(keyN(1), func() ([]byte, error) { recomputed = true; return payload, nil })
			if err != nil {
				t.Fatalf("corruption must never surface as an error: %v", err)
			}
			if !recomputed || !bytes.Equal(v, payload) {
				t.Fatalf("recomputed=%v v=%q", recomputed, v)
			}
			if s := c2.Stats(); s.Corrupt != 1 {
				t.Fatalf("stats = %+v, want Corrupt=1", s)
			}
			// the recomputed value was re-persisted and is valid again
			c3 := New(0)
			if err := c3.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			if _, err := c3.GetBytes(keyN(1), func() ([]byte, error) {
				t.Fatal("repaired entry should load from disk")
				return nil, nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDisabledBypassesAllTiers(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	c.SetEnabled(false)
	computes := 0
	for i := 0; i < 2; i++ {
		c.GetBytes(keyN(1), func() ([]byte, error) { computes++; return []byte("x"), nil })
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 while disabled", computes)
	}
	files, _ := filepath.Glob(filepath.Join(c.Dir(), "*.cache"))
	if len(files) != 0 {
		t.Fatalf("disabled cache wrote %d files", len(files))
	}
	c.SetEnabled(true)
	c.GetBytes(keyN(1), func() ([]byte, error) { computes++; return []byte("x"), nil })
	c.GetBytes(keyN(1), func() ([]byte, error) { computes++; return []byte("x"), nil })
	if computes != 3 {
		t.Fatalf("computes = %d, want 3 after re-enable", computes)
	}
}

func TestObjectTierIsMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	type big struct{ n int }
	v, err := c.GetObject(keyN(3), func() (any, error) { return &big{42}, nil })
	if err != nil || v.(*big).n != 42 {
		t.Fatalf("%v, %v", v, err)
	}
	files, _ := filepath.Glob(filepath.Join(c.Dir(), "*.cache"))
	if len(files) != 0 {
		t.Fatalf("object entries must not be persisted, found %d files", len(files))
	}
	v2, _ := c.GetObject(keyN(3), func() (any, error) {
		t.Fatal("must be memoized")
		return nil, nil
	})
	if v2 != v {
		t.Fatal("object identity must be stable across hits")
	}
}

func TestResetDropsMemoryKeepsDisk(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	c.GetBytes(keyN(1), func() ([]byte, error) { return []byte("v"), nil })
	c.Reset()
	v, err := c.GetBytes(keyN(1), func() ([]byte, error) {
		t.Fatal("reset must not clear the persistent tier")
		return nil, nil
	})
	if err != nil || string(v) != "v" {
		t.Fatalf("%q, %v", v, err)
	}
	if s := c.Stats(); s.DiskHits != 1 {
		t.Fatalf("stats = %+v, want a disk hit after reset", s)
	}
}

// TestConcurrentMixed drives many goroutines across overlapping keys
// with the disk tier on; run under -race this is the cache's
// thread-safety gate.
func TestConcurrentMixed(t *testing.T) {
	dir := t.TempDir()
	c := New(16)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := i % 8
				want := fmt.Sprintf("v%d", k)
				v, err := c.GetBytes(keyN(k), func() ([]byte, error) {
					return []byte(fmt.Sprintf("v%d", k)), nil
				})
				if err != nil || string(v) != want {
					t.Errorf("g%d i%d: %q, %v", g, i, v, err)
					return
				}
				if g%4 == 0 && i%25 == 24 {
					c.Reset()
				}
				if _, err := c.GetObject(keyN(100+k), func() (any, error) { return k, nil }); err != nil {
					t.Errorf("object: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSharedDirTwoInstancesConcurrent simulates two specd replicas (two
// Cache instances) sharing one -cache-dir concurrently: no corruption,
// the temp-file+rename contract holds (every read sees a complete,
// checksummed entry or a miss — never a partial write), and both see
// warm hits for entries the other persisted.
func TestSharedDirTwoInstancesConcurrent(t *testing.T) {
	dir := t.TempDir()
	a, b := New(0), New(0)
	if err := a.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := b.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	const keys = 32
	const goroutines = 8
	value := func(n int) []byte {
		return bytes.Repeat([]byte{byte(n)}, 1024+n)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*goroutines*keys)
	for _, c := range []*Cache{a, b} {
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(c *Cache) {
				defer wg.Done()
				for n := 0; n < keys; n++ {
					got, err := c.GetBytes(keyN(n), func() ([]byte, error) {
						return value(n), nil
					})
					if err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(got, value(n)) {
						errs <- fmt.Errorf("key %d: wrong bytes (len %d)", n, len(got))
						return
					}
				}
			}(c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// nothing was discarded as corrupt on either instance
	if sa, sb := a.Stats(), b.Stats(); sa.Corrupt != 0 || sb.Corrupt != 0 {
		t.Fatalf("corrupt entries seen: a=%d b=%d", sa.Corrupt, sb.Corrupt)
	}
	// a third, cold instance warm-starts purely from the shared dir
	c3 := New(0)
	if err := c3.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < keys; n++ {
		got, err := c3.GetBytes(keyN(n), func() ([]byte, error) {
			return nil, errors.New("must not recompute: entry should be on disk")
		})
		if err != nil || !bytes.Equal(got, value(n)) {
			t.Fatalf("warm start key %d: %v", n, err)
		}
	}
	if s := c3.Stats(); s.DiskHits != keys || s.Computes != 0 {
		t.Fatalf("cold instance stats = %+v, want %d disk hits and 0 computes", s, keys)
	}
}

func TestPruneOldestFirst(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	// three 1KiB-payload entries with distinct mtimes, oldest first
	var paths []string
	for n := 0; n < 3; n++ {
		if _, err := c.GetBytes(keyN(n), func() ([]byte, error) {
			return bytes.Repeat([]byte{byte(n)}, 1024), nil
		}); err != nil {
			t.Fatal(err)
		}
		p := c.diskPath(c.Dir(), keyN(n))
		mtime := time.Now().Add(time.Duration(n-3) * time.Hour)
		if err := os.Chtimes(p, mtime, mtime); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	var total int64
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	// budget for exactly two entries: the oldest one must go
	budget := total - 1
	freed, err := Prune(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("Prune freed nothing")
	}
	if _, err := os.Stat(paths[0]); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("oldest entry survived: %v", err)
	}
	for _, p := range paths[1:] {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("newer entry pruned: %v", err)
		}
	}
	// within budget: nothing further to do
	if freed, err := Prune(dir, budget); err != nil || freed != 0 {
		t.Fatalf("second prune freed %d (%v), want 0", freed, err)
	}
	// pruned entries recompute transparently on the next lookup
	c2 := New(0)
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.GetBytes(keyN(0), func() ([]byte, error) {
		return []byte("recomputed"), nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPruneRemovesStaleTmpFiles(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(c.Dir(), "tmp-stale")
	fresh := filepath.Join(c.Dir(), "tmp-fresh")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Prune(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale tmp file survived Prune")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh tmp file (a concurrent write in progress) must survive Prune")
	}
}

// TestCtxWaiterCancelled proves singleflight waiters honor their
// context: a waiter blocked on another caller's slow computation
// returns ctx.Err() promptly instead of blocking until the owner
// finishes.
func TestCtxWaiterCancelled(t *testing.T) {
	c := New(0)
	computing := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.GetBytes(keyN(1), func() ([]byte, error) {
			close(computing)
			<-release
			return []byte("slow"), nil
		})
	}()
	<-computing
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.GetBytesCtx(ctx, keyN(1), func() ([]byte, error) {
			return nil, errors.New("waiter must not compute")
		})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	close(release)
	// the owner's value is memoized normally
	v, err := c.GetBytes(keyN(1), func() ([]byte, error) {
		return nil, errors.New("must be memoized")
	})
	if err != nil || string(v) != "slow" {
		t.Fatalf("after release: %q, %v", v, err)
	}
}

// TestCtxErrorNotMemoized proves an owner whose compute surfaces a
// context error does not poison the key: the entry is forgotten and the
// next caller recomputes.
func TestCtxErrorNotMemoized(t *testing.T) {
	c := New(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.GetBytesCtx(context.Background(), keyN(1), func() ([]byte, error) {
		// a nested ctx-aware computation bubbling up its caller's
		// cancellation
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	v, err := c.GetBytes(keyN(1), func() ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || string(v) != "fresh" {
		t.Fatalf("recompute after ctx error: %q, %v", v, err)
	}
	// real errors stay memoized (the existing contract)
	boom := errors.New("boom")
	c.GetBytes(keyN(2), func() ([]byte, error) { return nil, boom })
	_, err = c.GetBytes(keyN(2), func() ([]byte, error) {
		return nil, errors.New("must not recompute")
	})
	if !errors.Is(err, boom) {
		t.Fatalf("memoized error = %v, want boom", err)
	}
}

// TestPanicDoesNotDeadlockWaiters proves a panicking compute releases
// its waiters (they retry and become owners) instead of leaving them
// blocked on a never-closed ready channel.
func TestPanicDoesNotDeadlockWaiters(t *testing.T) {
	c := New(0)
	started := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.GetBytes(keyN(1), func() ([]byte, error) {
			close(started)
			// give the waiter time to block on ready
			time.Sleep(50 * time.Millisecond)
			panic("compute exploded")
		})
	}()
	<-started
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.GetBytes(keyN(1), func() ([]byte, error) {
			return []byte("recovered"), nil
		})
		if err != nil || string(v) != "recovered" {
			t.Errorf("waiter after panic: %q, %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked behind a panicking owner")
	}
}

// TestPruneConcurrentReaders prunes the disk tier continuously while
// readers hammer it. The tier's contract under this race: a reader
// either gets the cached value or transparently recomputes the same
// value — never a corrupted read — and with a budget generous enough
// to keep every entry, pruning loses nothing.
func TestPruneConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	const nkeys = 24
	value := func(i int) []byte { return []byte(fmt.Sprintf("payload-%d-%s", i, string(make([]byte, 64)))) }

	seed := New(0)
	if err := seed.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < nkeys; i++ {
		v, err := seed.GetBytes(keyN(i), func() ([]byte, error) { return value(i), nil })
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(v))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Pruner A: generous budget — must never delete a live entry.
	// Pruner B: starvation budget — deletes freely; readers must still
	// always observe correct values (recompute on loss).
	for _, budget := range []int64{total * 4, total / 4} {
		budget := budget
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := Prune(dir, budget); err != nil {
					t.Errorf("prune: %v", err)
					return
				}
			}
		}()
	}

	// Readers: fresh Cache instances (cold memory tier) so every read
	// exercises the disk tier against the pruners.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := New(0)
			if err := c.SetDir(dir); err != nil {
				t.Error(err)
				return
			}
			for iter := 0; iter < 50; iter++ {
				for i := 0; i < nkeys; i++ {
					i := i
					v, err := c.GetBytes(keyN(i), func() ([]byte, error) { return value(i), nil })
					if err != nil {
						t.Errorf("get key %d: %v", i, err)
						return
					}
					if !bytes.Equal(v, value(i)) {
						t.Errorf("corrupted read for key %d: %q", i, v)
						return
					}
				}
				c.Reset() // force the disk tier again next round
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// No reader ever saw a corrupt entry: prune deletes whole files via
	// rename-installed paths, so partial reads must not occur.
	// (Corrupt counters belong to the readers' caches; assert via a
	// final full sweep with a generous pruner long gone.)
	final := New(0)
	if err := final.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nkeys; i++ {
		i := i
		v, err := final.GetBytes(keyN(i), func() ([]byte, error) { return value(i), nil })
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("final read key %d: %q, %v", i, v, err)
		}
	}
	if c := final.Stats().Corrupt; c != 0 {
		t.Fatalf("final sweep found %d corrupt entries", c)
	}
}

// TestPruneGenerousBudgetLosesNothing is the quiescent half of the
// prune-vs-readers contract: with maxBytes above the tier's total size,
// a prune running concurrently with reads deletes no entry at all.
func TestPruneGenerousBudgetLosesNothing(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	const nkeys = 16
	for i := 0; i < nkeys; i++ {
		i := i
		if _, err := c.GetBytes(keyN(i), func() ([]byte, error) { return []byte(fmt.Sprintf("v%d", i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := Prune(dir, 1<<30); err != nil {
				t.Errorf("prune: %v", err)
				return
			}
		}
	}()
	reader := New(0)
	if err := reader.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 30; iter++ {
		for i := 0; i < nkeys; i++ {
			v, err := reader.GetBytes(keyN(i), func() ([]byte, error) {
				return nil, fmt.Errorf("entry %d lost under generous budget", i)
			})
			if err != nil {
				t.Fatal(err)
			}
			if string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("corrupted read: %q", v)
			}
		}
		reader.Reset()
	}
	close(stop)
	wg.Wait()
}

// TestDiskHitRefreshesMtime pins the approximate-LRU behavior diskLoad
// gives Prune: a read refreshes the entry's mtime, so recently-used
// entries are pruned last.
func TestDiskHitRefreshesMtime(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	hot, cold := keyN(1), keyN(2)
	for _, k := range []Key{hot, cold} {
		k := k
		if _, err := c.GetBytes(k, func() ([]byte, error) { return []byte("xxxxxxxx"), nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Age both entries, then touch only the hot one via a disk read.
	old := time.Now().Add(-time.Hour)
	vdir := c.Dir()
	for _, k := range []Key{hot, cold} {
		if err := os.Chtimes(c.diskPath(vdir, k), old, old); err != nil {
			t.Fatal(err)
		}
	}
	c.Reset()
	if _, err := c.GetBytes(hot, func() ([]byte, error) { return nil, fmt.Errorf("lost") }); err != nil {
		t.Fatal(err)
	}
	// Prune to a budget that keeps exactly one entry: the cold one goes.
	info, err := os.Stat(c.diskPath(vdir, hot))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prune(filepath.Dir(vdir), info.Size()+2); err != nil {
		t.Fatal(err)
	}
	if _, serr := os.Stat(c.diskPath(vdir, hot)); serr != nil {
		t.Fatal("recently-read entry was pruned before the stale one")
	}
	if _, serr := os.Stat(c.diskPath(vdir, cold)); serr == nil {
		t.Fatal("stale entry survived a budget sized for one entry")
	}
}
