package cache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func keyN(n int) Key { return KeyOf([]byte(fmt.Sprintf("key-%d", n))) }

func TestKeyOfLengthPrefixed(t *testing.T) {
	if KeyOf([]byte("ab"), []byte("c")) == KeyOf([]byte("a"), []byte("bc")) {
		t.Fatal("KeyOf must distinguish part boundaries")
	}
	if KeyOf([]byte("a")) == KeyOf([]byte("a"), nil) {
		t.Fatal("KeyOf must distinguish part counts")
	}
	if KeyOf([]byte("a")) != KeyOf([]byte("a")) {
		t.Fatal("KeyOf must be deterministic")
	}
}

func TestMemoizeBytes(t *testing.T) {
	c := New(0)
	computes := 0
	get := func() ([]byte, error) {
		return c.GetBytes(keyN(1), func() ([]byte, error) {
			computes++
			return []byte("value"), nil
		})
	}
	for i := 0; i < 3; i++ {
		v, err := get()
		if err != nil || string(v) != "value" {
			t.Fatalf("get %d: %q, %v", i, v, err)
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	s := c.Stats()
	if s.MemHits != 2 || s.MemMisses != 1 || s.Computes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestErrorsMemoized(t *testing.T) {
	c := New(0)
	computes := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, err := c.GetBytes(keyN(1), func() ([]byte, error) {
			computes++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (deterministic failures are memoized)", computes)
	}
}

// TestSingleflight pins that concurrent misses at one key share a single
// computation instead of duplicating the work.
func TestSingleflight(t *testing.T) {
	c := New(0)
	release := make(chan struct{})
	var computes int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetBytes(keyN(7), func() ([]byte, error) {
				computes++ // safe: only one goroutine may get here
				<-release
				return []byte("shared"), nil
			})
			if err != nil || string(v) != "shared" {
				t.Errorf("got %q, %v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
}

func TestEvictionFIFO(t *testing.T) {
	c := New(2)
	for i := 0; i < 3; i++ {
		c.GetBytes(keyN(i), func() ([]byte, error) { return []byte{byte(i)}, nil })
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// key 0 was evicted: a re-get recomputes
	recomputed := false
	c.GetBytes(keyN(0), func() ([]byte, error) { recomputed = true; return nil, nil })
	if !recomputed {
		t.Fatal("oldest entry should have been evicted")
	}
	// key 2 survived
	c.GetBytes(keyN(2), func() ([]byte, error) {
		t.Fatal("newest entry should still be resident")
		return nil, nil
	})
}

func TestDiskWarmStartAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1 := New(0)
	if err := c1.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	v, err := c1.GetBytes(keyN(1), func() ([]byte, error) { return []byte("persisted"), nil })
	if err != nil || string(v) != "persisted" {
		t.Fatalf("store: %q, %v", v, err)
	}

	// a fresh instance on the same dir models a new process
	c2 := New(0)
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	v, err = c2.GetBytes(keyN(1), func() ([]byte, error) {
		t.Fatal("warm start must not recompute")
		return nil, nil
	})
	if err != nil || string(v) != "persisted" {
		t.Fatalf("load: %q, %v", v, err)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Computes != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit, 0 computes", s)
	}
}

func TestCorruptEntriesRecomputed(t *testing.T) {
	payload := []byte(`{"version":1,"blocks":{"main:B0":1}}`)
	corruptions := map[string]func([]byte) []byte{
		"truncated":       func(b []byte) []byte { return b[:len(b)/2] },
		"garbage":         func([]byte) []byte { return []byte("not a cache entry at all") },
		"flipped payload": func(b []byte) []byte { x := bytes.Clone(b); x[len(x)-2] ^= 0xff; return x },
		"empty":           func([]byte) []byte { return nil },
		"stale version":   func(b []byte) []byte { return bytes.Replace(b, []byte("reprocache v"), []byte("reprocache v9"), 1) },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c1 := New(0)
			if err := c1.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			if _, err := c1.GetBytes(keyN(1), func() ([]byte, error) { return payload, nil }); err != nil {
				t.Fatal(err)
			}
			path := c1.diskPath(c1.Dir(), keyN(1))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			c2 := New(0)
			if err := c2.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			recomputed := false
			v, err := c2.GetBytes(keyN(1), func() ([]byte, error) { recomputed = true; return payload, nil })
			if err != nil {
				t.Fatalf("corruption must never surface as an error: %v", err)
			}
			if !recomputed || !bytes.Equal(v, payload) {
				t.Fatalf("recomputed=%v v=%q", recomputed, v)
			}
			if s := c2.Stats(); s.Corrupt != 1 {
				t.Fatalf("stats = %+v, want Corrupt=1", s)
			}
			// the recomputed value was re-persisted and is valid again
			c3 := New(0)
			if err := c3.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			if _, err := c3.GetBytes(keyN(1), func() ([]byte, error) {
				t.Fatal("repaired entry should load from disk")
				return nil, nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDisabledBypassesAllTiers(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	c.SetEnabled(false)
	computes := 0
	for i := 0; i < 2; i++ {
		c.GetBytes(keyN(1), func() ([]byte, error) { computes++; return []byte("x"), nil })
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 while disabled", computes)
	}
	files, _ := filepath.Glob(filepath.Join(c.Dir(), "*.cache"))
	if len(files) != 0 {
		t.Fatalf("disabled cache wrote %d files", len(files))
	}
	c.SetEnabled(true)
	c.GetBytes(keyN(1), func() ([]byte, error) { computes++; return []byte("x"), nil })
	c.GetBytes(keyN(1), func() ([]byte, error) { computes++; return []byte("x"), nil })
	if computes != 3 {
		t.Fatalf("computes = %d, want 3 after re-enable", computes)
	}
}

func TestObjectTierIsMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	type big struct{ n int }
	v, err := c.GetObject(keyN(3), func() (any, error) { return &big{42}, nil })
	if err != nil || v.(*big).n != 42 {
		t.Fatalf("%v, %v", v, err)
	}
	files, _ := filepath.Glob(filepath.Join(c.Dir(), "*.cache"))
	if len(files) != 0 {
		t.Fatalf("object entries must not be persisted, found %d files", len(files))
	}
	v2, _ := c.GetObject(keyN(3), func() (any, error) {
		t.Fatal("must be memoized")
		return nil, nil
	})
	if v2 != v {
		t.Fatal("object identity must be stable across hits")
	}
}

func TestResetDropsMemoryKeepsDisk(t *testing.T) {
	dir := t.TempDir()
	c := New(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	c.GetBytes(keyN(1), func() ([]byte, error) { return []byte("v"), nil })
	c.Reset()
	v, err := c.GetBytes(keyN(1), func() ([]byte, error) {
		t.Fatal("reset must not clear the persistent tier")
		return nil, nil
	})
	if err != nil || string(v) != "v" {
		t.Fatalf("%q, %v", v, err)
	}
	if s := c.Stats(); s.DiskHits != 1 {
		t.Fatalf("stats = %+v, want a disk hit after reset", s)
	}
}

// TestConcurrentMixed drives many goroutines across overlapping keys
// with the disk tier on; run under -race this is the cache's
// thread-safety gate.
func TestConcurrentMixed(t *testing.T) {
	dir := t.TempDir()
	c := New(16)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := i % 8
				want := fmt.Sprintf("v%d", k)
				v, err := c.GetBytes(keyN(k), func() ([]byte, error) {
					return []byte(fmt.Sprintf("v%d", k)), nil
				})
				if err != nil || string(v) != want {
					t.Errorf("g%d i%d: %q, %v", g, i, v, err)
					return
				}
				if g%4 == 0 && i%25 == 24 {
					c.Reset()
				}
				if _, err := c.GetObject(keyN(100+k), func() (any, error) { return k, nil }); err != nil {
					t.Errorf("object: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
