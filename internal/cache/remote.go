package cache

// The remote tier: a peer lookup consulted between the on-disk tier and
// the compute function, so a fleet of processes shares one
// content-addressed store — a profile or trace computed on any node is
// computed exactly once fleet-wide. The tier is best-effort by the same
// contract as the disk tier: an unreachable peer is a miss, never an
// error, and a corrupt response is discarded (the content hash in the
// key makes verification free).
//
// Peers are ranked per key by rendezvous (highest-random-weight)
// hashing, so every node agrees on which peer owns a key without any
// coordination: lookups try peers in rank order and stop at the first
// hit; stores push to the top-ranked peer. Adding or removing a peer
// moves only the keys it owns — the fleet's sharding and the cache's
// placement use the same ranking (see HRWRank), which is what makes a
// worker warm for exactly the programs the coordinator routes to it.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Remote is the peer-lookup tier consulted by GetBytesCtx between the
// disk tier and the compute function. Both methods are best-effort:
// Get reports a miss for any failure, Put may silently drop. The cache
// never calls them while holding its lock.
type Remote interface {
	// Get returns the payload for key, or ok=false on any miss or error.
	Get(ctx context.Context, key Key) (data []byte, ok bool)
	// Put offers the payload to the remote store, best-effort.
	Put(ctx context.Context, key Key, data []byte)
}

// SetRemote installs (or, with nil, removes) the remote tier.
func (c *Cache) SetRemote(r Remote) {
	c.mu.Lock()
	c.remote = r
	c.mu.Unlock()
}

func (c *Cache) getRemote() Remote {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// ParseKey parses the 64-hex-digit form of a Key (the wire format of
// the /cache/{key} endpoints).
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != 2*len(k) {
		return k, fmt.Errorf("cache: key must be %d hex digits, got %d", 2*len(k), len(s))
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return k, fmt.Errorf("cache: bad key: %w", err)
	}
	return k, nil
}

// String renders the key in its 64-hex wire form.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// HRWRank orders peer names by rendezvous (highest-random-weight)
// hashing for a key: every caller computes the same ranking from the
// same peer set with no shared state, ties broken by name so the order
// is total. The fleet coordinator and the remote cache tier share this
// function, which is exactly why a sweep's work lands on the node that
// is warm for it.
func HRWRank(key Key, names []string) []string {
	type scored struct {
		name  string
		score uint64
	}
	ranked := make([]scored, len(names))
	for i, n := range names {
		h := sha256.New()
		h.Write(key[:])
		io.WriteString(h, n)
		sum := h.Sum(nil)
		ranked[i] = scored{n, binary.BigEndian.Uint64(sum[:8])}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.name
	}
	return out
}

// PeerRemote is the HTTP Remote implementation: a set of specd peers
// serving GET/PUT /cache/{key}. Lookups try the key's rendezvous-ranked
// peers in order and stop at the first hit; stores push one copy to the
// top-ranked peer. Every request is bounded by Timeout on top of the
// caller's ctx so a hung peer degrades to a miss instead of stalling the
// compute path.
type PeerRemote struct {
	peers   []string // base URLs, e.g. "http://10.0.0.2:8080"
	client  *http.Client
	timeout time.Duration
}

// DefaultPeerTimeout bounds each peer cache request when NewPeerRemote
// is given no explicit timeout.
const DefaultPeerTimeout = 5 * time.Second

// NewPeerRemote builds a PeerRemote over the peer base URLs. A nil
// client uses http.DefaultClient; timeout <= 0 uses DefaultPeerTimeout.
func NewPeerRemote(peers []string, client *http.Client, timeout time.Duration) *PeerRemote {
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	ps := make([]string, len(peers))
	copy(ps, peers)
	return &PeerRemote{peers: ps, client: client, timeout: timeout}
}

// maxRemoteEntry bounds what a peer response (or an uploaded entry) may
// carry — far above any serialized profile or trace, but finite, so a
// misbehaving peer cannot balloon memory.
const maxRemoteEntry = 64 << 20

func (r *PeerRemote) url(peer string, key Key) string {
	return peer + "/cache/" + key.String()
}

// Get tries the key's ranked peers in order and returns the first
// verified hit. The payload is re-verified against the content hash the
// peer cannot know better than we do — a checksum mismatch is treated
// exactly like a corrupt disk entry: a miss.
func (r *PeerRemote) Get(ctx context.Context, key Key) ([]byte, bool) {
	for _, peer := range HRWRank(key, r.peers) {
		if data, ok := r.getOne(ctx, peer, key); ok {
			return data, true
		}
		if ctx.Err() != nil {
			return nil, false
		}
	}
	return nil, false
}

func (r *PeerRemote) getOne(ctx context.Context, peer string, key Key) ([]byte, bool) {
	rctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, r.url(peer, key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteEntry+1))
	if err != nil || len(data) > maxRemoteEntry {
		return nil, false
	}
	return data, true
}

// Put pushes one copy of the payload to the key's top-ranked peer,
// best-effort: the entry is re-derivable everywhere, so a failed push
// costs a future recompute, never correctness.
func (r *PeerRemote) Put(ctx context.Context, key Key, data []byte) {
	ranked := HRWRank(key, r.peers)
	if len(ranked) == 0 {
		return
	}
	rctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPut, r.url(ranked[0], key), bytes.NewReader(data))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}
