package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		counts := make([]atomic.Int64, n)
		if err := Each(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestEachReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom 3")
	for _, workers := range []int{1, 4} {
		err := Each(workers, 10, func(i int) error {
			switch i {
			case 3:
				return wantErr
			case 7:
				return errors.New("boom 7")
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Errorf("workers=%d: got %v, want lowest-index error %v", workers, err, wantErr)
		}
	}
}

func TestEachSerialStopsAtFirstError(t *testing.T) {
	ran := 0
	err := Each(1, 10, func(i int) error {
		ran++
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran != 3 {
		t.Errorf("serial Each ran %d items after error at index 2, want 3", ran)
	}
}

func TestEachZeroItems(t *testing.T) {
	if err := Each(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 123)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{1, 8} {
		out, err := Map(workers, in, func(v int) (string, error) {
			return fmt.Sprintf("v%d", v), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, s := range out {
			if want := fmt.Sprintf("v%d", i); s != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, s, want)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	wantErr := errors.New("bad element")
	out, err := Map(4, []int{0, 1, 2}, func(v int) (int, error) {
		if v == 1 {
			return 0, wantErr
		}
		return v * 2, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
	if out != nil {
		t.Fatalf("got non-nil result %v on error", out)
	}
}
