package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		counts := make([]atomic.Int64, n)
		if err := Each(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestEachReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom 3")
	for _, workers := range []int{1, 4} {
		err := Each(workers, 10, func(i int) error {
			switch i {
			case 3:
				return wantErr
			case 7:
				return errors.New("boom 7")
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Errorf("workers=%d: got %v, want lowest-index error %v", workers, err, wantErr)
		}
	}
}

func TestEachSerialStopsAtFirstError(t *testing.T) {
	ran := 0
	err := Each(1, 10, func(i int) error {
		ran++
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran != 3 {
		t.Errorf("serial Each ran %d items after error at index 2, want 3", ran)
	}
}

func TestEachZeroItems(t *testing.T) {
	if err := Each(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 123)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{1, 8} {
		out, err := Map(workers, in, func(v int) (string, error) {
			return fmt.Sprintf("v%d", v), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, s := range out {
			if want := fmt.Sprintf("v%d", i); s != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, s, want)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	wantErr := errors.New("bad element")
	out, err := Map(4, []int{0, 1, 2}, func(v int) (int, error) {
		if v == 1 {
			return 0, wantErr
		}
		return v * 2, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
	if out != nil {
		t.Fatalf("got non-nil result %v on error", out)
	}
}

func TestEachCtxCancelStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	const n = 100
	errCh := make(chan error, 1)
	go func() {
		errCh <- EachCtx(ctx, 4, n, func(i int) error {
			started.Add(1)
			<-release
			return nil
		})
	}()
	// wait for the 4 workers to pick up their first items
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	// EachCtx must return promptly even though 4 items are still blocked
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("EachCtx did not return after cancel")
	}
	close(release)
	// idle workers must not have claimed (many) more items after cancel
	if got := started.Load(); got > 8 {
		t.Fatalf("started %d items after cancel, want <= 8", got)
	}
}

func TestEachCtxSerialChecksBetweenItems(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := EachCtx(ctx, 1, 10, func(i int) error {
		ran++
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d items, want 3 (stop after the cancelling item)", ran)
	}
}

func TestEachCtxBackgroundMatchesEach(t *testing.T) {
	var a, b atomic.Int64
	if err := Each(3, 50, func(i int) error { a.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := EachCtx(context.Background(), 3, 50, func(i int) error { b.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if a.Load() != b.Load() {
		t.Fatalf("sums differ: %d vs %d", a.Load(), b.Load())
	}
}
