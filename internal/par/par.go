// Package par provides the bounded parallel-execution primitives used
// across the compilation pipeline: a work-stealing-free, bounded worker
// pool with deterministic result ordering and first-error semantics.
//
// Every parallel site in the compiler funnels through Each (or the
// generic Map built on it), so the whole stack obeys one contract:
//
//   - workers <= 0 means "use all cores" (GOMAXPROCS);
//   - workers == 1 runs every item inline on the calling goroutine, in
//     index order, stopping at the first error — bit-for-bit the
//     behavior of the serial loops this package replaced, which makes
//     Workers=1 the determinism oracle for the parallel paths;
//   - with N > 1 workers, items are claimed from an atomic counter, all
//     results land at their input index, and the returned error is the
//     one the serial loop would have returned (lowest failing index).
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count configuration value: anything <= 0
// means one worker per core (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Each runs fn(i) for every i in [0, n) on at most workers goroutines
// (after Workers resolution) and returns the error with the lowest index,
// mirroring what a serial loop would have surfaced.
//
// With one worker the items run inline in index order and iteration stops
// at the first error, exactly like the serial loop it replaces. With more
// workers every item runs regardless of failures elsewhere, so the
// surfaced error does not depend on goroutine scheduling.
func Each(workers, n int, fn func(i int) error) error {
	return EachCtx(context.Background(), workers, n, fn)
}

// EachCtx is Each with cancellation: when ctx is done, workers stop
// claiming new items and EachCtx returns ctx.Err() without waiting for
// items already in flight (those finish on their own goroutines, which
// then exit — nothing leaks, the caller just isn't held hostage to a
// long-running item). With an un-cancellable ctx the behavior and the
// surfaced error are identical to Each, including the workers==1 serial
// oracle (which checks ctx between items and never spawns a goroutine).
func EachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(-1)
	errs := make([]error, n)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		// errs may still be written by in-flight items; it is not read
		// on this path, so the early return is race-free
		return ctx.Err()
	case <-done:
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map applies fn to every element of in on at most workers goroutines and
// returns the results in input order. On error the result slice is nil and
// the error is the lowest-index failure (see Each).
func Map[T, R any](workers int, in []T, fn func(T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	err := Each(workers, len(in), func(i int) error {
		r, err := fn(in[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
