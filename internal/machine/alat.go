package machine

// The Advanced Load Address Table, shared by the functional engine
// (exec.go) and the trace replayer (replay.go). Itanium's ALAT is fully
// associative; this implementation indexes the fixed slot array two
// ways — by (activation, register) for insert/check and by address for
// store invalidation — so every operation is O(1) in the table size.
// The old linear scans made alatInvalidate, which runs on every dynamic
// store, O(ALATSize) on the hottest path of the simulator.
//
// Eviction order is explicit and part of the machine model's contract,
// because the replayer re-simulates ALAT contents from recorded address
// events and its hit/miss stream must provably match the functional
// engine's:
//
//   - an advanced load to a register that already owns an entry
//     refreshes that entry in place (the slot does not move);
//   - otherwise the entry goes into the most recently freed slot
//     (LIFO over invalidated slots; initially slots fill 0, 1, 2, …);
//   - when no slot is free, the victim cursor evicts slots in strict
//     round-robin slot order (0, 1, …, size-1, 0, …), advancing only
//     when it evicts.
//
// Both engines run this exact code over the same event stream, which is
// what makes "replayed counters are byte-identical" a structural
// guarantee rather than a coincidence (see TestALATEvictionOrder).

// alatEntry is one ALAT slot.
type alatEntry struct {
	valid   bool
	frameID int64
	reg     int
	addr    int
}

// alatKey identifies an entry by owning activation and register: ALAT
// entries are frame-tagged so a callee's ld.a cannot satisfy the
// caller's ld.c on the same register number. The pair is packed into
// one word so the byKey map hashes a single uint64 (the fast map path)
// instead of a two-field struct; register numbers are per-function
// indices (far below 2^16) and activation ids are bounded by MaxSteps
// (far below 2^47), so the packing cannot collide.
type alatKey uint64

func makeALATKey(frameID int64, reg int) alatKey {
	return alatKey(uint64(frameID)<<16 | uint64(reg))
}

// alatFilterSize is the size of the address presence filter (a power of
// two; the filter is indexed by the address's low bits).
const alatFilterSize = 1 << 10

type alat struct {
	slots  []alatEntry
	byKey  map[alatKey]int // (frameID, reg) -> slot of its valid entry
	byAddr map[int][]int   // address -> slots with valid entries for it
	free   []int           // LIFO stack of invalid slots
	victim int             // round-robin eviction cursor
	// evictions counts capacity evictions (Counters.ALATEvictions).
	evictions int64
	// filter counts valid entries per low-bits address bucket, so the
	// hottest operation — a store that conflicts with nothing — is a
	// single array load instead of a map probe. A non-zero bucket falls
	// through to the exact byAddr index.
	filter [alatFilterSize]int32
}

func newALAT(size int) *alat {
	a := &alat{
		slots:  make([]alatEntry, size),
		byKey:  make(map[alatKey]int, size),
		byAddr: make(map[int][]int, size),
		free:   make([]int, size),
	}
	for i := range a.free {
		a.free[i] = size - 1 - i // pop order: slot 0 first
	}
	return a
}

// unindexAddr removes slot i from addr's slot list.
func (a *alat) unindexAddr(i, addr int) {
	list := a.byAddr[addr]
	for j, s := range list {
		if s == i {
			list[j] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(a.byAddr, addr)
	} else {
		a.byAddr[addr] = list
	}
	a.filter[addr&(alatFilterSize-1)]--
}

// indexAddr adds slot i to addr's slot list.
func (a *alat) indexAddr(i, addr int) {
	a.byAddr[addr] = append(a.byAddr[addr], i)
	a.filter[addr&(alatFilterSize-1)]++
}

// insert allocates (or refreshes) the entry for a register.
func (a *alat) insert(frameID int64, reg, addr int) {
	k := makeALATKey(frameID, reg)
	if i, ok := a.byKey[k]; ok {
		e := &a.slots[i]
		if e.addr != addr {
			a.unindexAddr(i, e.addr)
			e.addr = addr
			a.indexAddr(i, addr)
		}
		return
	}
	var i int
	if n := len(a.free); n > 0 {
		i = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		i = a.victim
		a.victim++
		if a.victim == len(a.slots) {
			a.victim = 0
		}
		e := &a.slots[i]
		delete(a.byKey, makeALATKey(e.frameID, e.reg))
		a.unindexAddr(i, e.addr)
		a.evictions++
	}
	a.slots[i] = alatEntry{valid: true, frameID: frameID, reg: reg, addr: addr}
	a.byKey[k] = i
	a.indexAddr(i, addr)
}

// check reports whether the register's entry survives with the same
// address (a successful ld.c).
func (a *alat) check(frameID int64, reg, addr int) bool {
	i, ok := a.byKey[makeALATKey(frameID, reg)]
	return ok && a.slots[i].addr == addr
}

// invalidate drops every entry at addr (a conflicting store).
func (a *alat) invalidate(addr int) {
	if a.filter[addr&(alatFilterSize-1)] == 0 {
		return // nothing lives in this bucket: the common store
	}
	list, ok := a.byAddr[addr]
	if !ok {
		return
	}
	delete(a.byAddr, addr)
	a.filter[addr&(alatFilterSize-1)] -= int32(len(list))
	for _, i := range list {
		e := &a.slots[i]
		e.valid = false
		delete(a.byKey, makeALATKey(e.frameID, e.reg))
		a.free = append(a.free, i)
	}
}
