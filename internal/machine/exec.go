package machine

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Config tunes the machine model. Zero fields are normalized
// individually to their Defaults values, so a partial Config such as
// {Pipelined: true} or {ALATSize: 16} means "defaults plus this
// override". A latency or penalty field set to Free (any negative
// value) means explicitly zero cycles, which the zero value cannot
// express.
type Config struct {
	ALATSize     int // entries in the advanced load address table
	IntLoadLat   int // integer load latency (L1 hit on Itanium: 2)
	FPLoadLat    int // floating-point load latency (L2 on Itanium: 9)
	CheckHitLat  int // successful ld.c (paper: 0)
	CheckMissPen int // extra penalty on a failed check, on top of the reload
	StoreLat     int
	IntMulLat    int
	IntDivLat    int
	FPArithLat   int
	FPDivLat     int
	CallOverhead int
	// FenceLat is the cost of an OpFence speculation barrier under the
	// serial model; under the pipelined model a fence additionally stalls
	// until every in-flight result has retired (a scoreboard drain).
	FenceLat     int
	MaxSteps     int64
	MaxCallDepth int
	StackSlots   int
	// Pipelined switches the timing model from serial (cycles = sum of
	// latencies) to an in-order scoreboard: one instruction issues per
	// cycle and a consumer stalls until its operands' latencies have
	// elapsed. Under this model latency-driven scheduling
	// (codegen.Schedule) overlaps load latency with independent work.
	Pipelined bool
}

// Free marks a latency or penalty field as explicitly zero-cost. Plain
// 0 in a Config field means "use the default" (the zero value must
// behave like Defaults()), so zero cycles needs a sentinel.
const Free = -1

// withDefaults normalizes a Config field by field: zero fields take
// their Defaults() value; negative latency/penalty fields (Free) become
// zero cycles. The old behavior — replacing the whole struct whenever
// ALATSize was zero — silently discarded explicit Pipelined, latency
// and MaxSteps overrides (and a Config with only ALATSize set ran with
// MaxSteps 0, faulting on the first instruction).
func (cfg Config) withDefaults() Config {
	d := Defaults()
	if cfg.ALATSize <= 0 {
		cfg.ALATSize = d.ALATSize
	}
	lat := func(f *int, def int) {
		if *f == 0 {
			*f = def
		} else if *f < 0 {
			*f = 0
		}
	}
	lat(&cfg.IntLoadLat, d.IntLoadLat)
	lat(&cfg.FPLoadLat, d.FPLoadLat)
	lat(&cfg.CheckHitLat, d.CheckHitLat)
	lat(&cfg.CheckMissPen, d.CheckMissPen)
	lat(&cfg.StoreLat, d.StoreLat)
	lat(&cfg.IntMulLat, d.IntMulLat)
	lat(&cfg.IntDivLat, d.IntDivLat)
	lat(&cfg.FPArithLat, d.FPArithLat)
	lat(&cfg.FPDivLat, d.FPDivLat)
	lat(&cfg.CallOverhead, d.CallOverhead)
	lat(&cfg.FenceLat, d.FenceLat)
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = d.MaxSteps
	}
	if cfg.MaxCallDepth <= 0 {
		cfg.MaxCallDepth = d.MaxCallDepth
	}
	if cfg.StackSlots <= 0 {
		cfg.StackSlots = d.StackSlots
	}
	return cfg
}

// Normalized returns the Config with every zero field resolved to its
// Defaults() value and Free sentinels resolved to zero cycles — the
// exact Config a Run with this value executes under. Callers that key
// caches by configuration (the trace cache in package repro) use it so
// equivalent Configs share entries.
func (cfg Config) Normalized() Config { return cfg.withDefaults() }

// SpecSavedCycles is the latency a retired speculative load saves under
// this model: the promoted load's latency minus the check load that
// replaces it (ld.c / ldf.c at CheckHitLat), floored at zero. It is the
// benefit term of the expected-cost speculation policy (core.Policy).
func (cfg Config) SpecSavedCycles(fp bool) int {
	n := cfg.withDefaults()
	lat := n.IntLoadLat
	if fp {
		lat = n.FPLoadLat
	}
	if s := lat - n.CheckHitLat; s > 0 {
		return s
	}
	return 0
}

// SpecRecoveryCycles is the latency a failed check costs under this
// model: the reload at full load latency plus the miss penalty. It is
// the cost term of the expected-cost speculation policy (core.Policy).
func (cfg Config) SpecRecoveryCycles(fp bool) int {
	n := cfg.withDefaults()
	lat := n.IntLoadLat
	if fp {
		lat = n.FPLoadLat
	}
	return lat + n.CheckMissPen
}

// Defaults is the Itanium-flavoured model from the paper's §5.2.
func Defaults() Config {
	return Config{
		ALATSize:   32,
		IntLoadLat: 2,
		FPLoadLat:  9,
		// the paper's successful ld.c has 0-cycle result latency; it
		// still occupies one issue slot in this in-order model
		CheckHitLat:  1,
		CheckMissPen: 4,
		StoreLat:     1,
		IntMulLat:    2,
		IntDivLat:    15,
		FPArithLat:   4,
		FPDivLat:     20,
		CallOverhead: 2,
		// a full-pipeline speculation barrier; modelled on the cost of a
		// srlz.d-style stop that waits out the deepest load latency
		FenceLat:     8,
		MaxSteps:     4_000_000_000,
		MaxCallDepth: 10000,
		StackSlots:   1 << 20,
	}
}

// Counters are the performance-monitor outputs of a run (the pfmon
// stand-in).
type Counters struct {
	Cycles           int64
	DataAccessCycles int64
	InstrsRetired    int64
	LoadsRetired     int64 // all load-class instructions, incl. checks
	CheckLoads       int64 // ld.c / ldf.c retired
	FailedChecks     int64 // checks that missed in the ALAT
	AdvLoads         int64 // ld.a / ldf.a retired
	SpecLoads        int64 // ld.s / ldf.s retired
	SpecLoadFaults   int64 // deferred faults (NaT set)
	Stores           int64
	ALATEvictions    int64 // capacity/conflict evictions
}

// FuncCounters are the per-function speculation counters of one run:
// the slice of Counters that online tier policy needs attributed to a
// function rather than program-summed. ALAT hits are
// CheckLoads−FailedChecks, so the pair carries the full hit/miss
// split; AdvLoads counts the table inserts those checks validate.
type FuncCounters struct {
	CheckLoads   int64
	FailedChecks int64
	AdvLoads     int64
}

// Result of a machine run.
type Result struct {
	Ret      int64
	Output   string
	Counters Counters
	// PerFunc maps a function name to its speculation counters. A
	// function has an entry iff it retired at least one advanced or
	// check load; the map is nil when no function did. The per-function
	// values sum to the corresponding program-wide Counters fields.
	PerFunc map[string]FuncCounters `json:",omitempty"`
}

// perFuncMap converts the engines' per-activation tally maps (keyed by
// code pointer for lookup speed) into a Result's name-keyed map,
// preserving the nil-when-empty convention the differential tests pin
// across all execution paths.
func perFuncMap(tallies map[*FuncCode]*FuncCounters) map[string]FuncCounters {
	if len(tallies) == 0 {
		return nil
	}
	out := make(map[string]FuncCounters, len(tallies))
	for f, c := range tallies {
		out[f.Name] = *c
	}
	return out
}

type vm struct {
	prog *Program
	cfg  Config
	out  io.Writer

	mem      []uint64
	stackTop int
	heapBase int
	heapNext int

	alat *alat

	// per-depth call scratch: activations nest strictly, so frame-local
	// buffers (registers, NaT bits, scoreboard, outgoing args) are
	// reused by depth instead of allocated per dynamic call — on
	// call-heavy programs the allocations dominate recording cost
	scratch []callScratch

	args []int64

	steps   int64
	depth   int
	frameID int64
	clock   int64 // pipelined-model absolute cycle

	// trace, when non-nil, receives the architectural event stream
	// (branch directions, speculative-fault bits, ALAT-relevant
	// addresses) for later re-timing by Replay. See trace.go.
	trace *Trace

	ctr Counters

	// perFn tallies speculation counters per function, populated lazily
	// so only functions that retire an advanced or check load pay for
	// (or appear in) an entry.
	perFn map[*FuncCode]*FuncCounters
}

// fnCtr returns (creating on first touch) f's per-function tally.
func (m *vm) fnCtr(f *FuncCode) *FuncCounters {
	c := m.perFn[f]
	if c == nil {
		if m.perFn == nil {
			m.perFn = make(map[*FuncCode]*FuncCounters)
		}
		c = &FuncCounters{}
		m.perFn[f] = c
	}
	return c
}

// Run executes the compiled program's main function.
func Run(prog *Program, args []int64, cfg Config, out io.Writer) (*Result, error) {
	res, _, err := execute(prog, args, cfg, out, nil)
	return res, err
}

// run is the shared engine behind Run and Record. When trace is non-nil
// the architectural event stream is appended to it as execution
// proceeds.
func execute(prog *Program, args []int64, cfg Config, out io.Writer, trace *Trace) (*Result, *Trace, error) {
	cfg = cfg.withDefaults()
	var sb *strings.Builder
	if out == nil {
		sb = &strings.Builder{}
		out = sb
	}
	m := &vm{prog: prog, cfg: cfg, out: out, args: args, trace: trace}
	m.mem = make([]uint64, prog.GlobSize+cfg.StackSlots)
	for a, v := range prog.GlobalInit {
		m.mem[a] = v
	}
	m.stackTop = prog.GlobSize
	m.heapBase = prog.GlobSize + cfg.StackSlots
	m.alat = newALAT(cfg.ALATSize)

	mainFn, ok := prog.Funcs["main"]
	if !ok {
		return nil, nil, errors.New("machine: no main function")
	}
	ret, _, err := m.call(mainFn, nil)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Pipelined {
		m.ctr.Cycles = m.clock
	}
	m.ctr.ALATEvictions = m.alat.evictions
	res := &Result{Ret: int64(ret), Counters: m.ctr, PerFunc: perFuncMap(m.perFn)}
	if sb != nil {
		res.Output = sb.String()
	}
	if trace != nil {
		trace.Ret = res.Ret
		trace.Output = res.Output
		trace.Steps = m.steps
		trace.StackSlots = cfg.StackSlots
		trace.Frames = m.frameID
		// statistics classes already tallied by the counters
		trace.counts[cStore] = m.ctr.Stores
		trace.counts[cSpec] = m.ctr.SpecLoads
		trace.counts[cSpecFault] = m.ctr.SpecLoadFaults
		trace.counts[cAdv] = m.ctr.AdvLoads
	}
	return res, trace, nil
}

func (m *vm) fault(format string, a ...any) error {
	return fmt.Errorf("machine: %s", fmt.Sprintf(format, a...))
}

func (m *vm) validAddr(a int) bool {
	return a >= 0 && a < len(m.mem) && (a < m.heapBase || a < m.heapBase+m.heapNext)
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// callScratch holds one nesting depth's reusable frame buffers.
type callScratch struct {
	regs  []uint64
	nat   []bool
	ready []int64
	args  []uint64
}

// grow returns s's buffers resized (and zeroed where the VM relies on
// zero initialization) for a frame of n registers.
func (s *callScratch) grow(n int) (regs []uint64, nat []bool) {
	if cap(s.regs) < n {
		s.regs = make([]uint64, n)
		s.nat = make([]bool, n)
	} else {
		s.regs = s.regs[:n]
		s.nat = s.nat[:n]
		clear(s.regs)
		clear(s.nat)
	}
	return s.regs, s.nat
}

// call runs one function activation and returns (value, hadValue).
func (m *vm) call(f *FuncCode, args []uint64) (uint64, bool, error) {
	if m.depth >= m.cfg.MaxCallDepth {
		return 0, false, m.fault("call depth exceeded in %s", f.Name)
	}
	if m.stackTop+f.FrameSize > m.heapBase {
		return 0, false, m.fault("stack overflow in %s", f.Name)
	}
	m.depth++
	m.frameID++
	myFrame := m.frameID
	// fnCtr is this activation's per-function tally, fetched lazily at
	// the first speculation event so event-free functions stay out of
	// the map; fnID tags recorded ALAT events for replay attribution
	var fnCtr *FuncCounters
	var fnID int32
	if m.trace != nil {
		fnID = m.trace.fnID(f)
		if m.depth > m.trace.MaxDepth {
			m.trace.MaxDepth = m.depth
		}
	}
	base := m.stackTop
	for i := 0; i < f.FrameSize; i++ {
		m.mem[base+i] = 0
	}
	m.stackTop += f.FrameSize
	defer func() {
		m.stackTop = base
		m.depth--
	}()
	if m.depth > len(m.scratch) {
		m.scratch = append(m.scratch, callScratch{})
	}
	sc := &m.scratch[m.depth-1]
	regs, nat := sc.grow(f.NumRegs)
	var ready []int64
	if m.cfg.Pipelined {
		if cap(sc.ready) < f.NumRegs {
			sc.ready = make([]int64, f.NumRegs)
		}
		ready = sc.ready[:f.NumRegs]
		m.clock += int64(m.cfg.CallOverhead)
		for i := range ready {
			ready[i] = m.clock
		}
	}
	for i := 0; i < f.NumParams && i < len(args); i++ {
		regs[i] = args[i]
	}
	m.ctr.Cycles += int64(m.cfg.CallOverhead)

	pc := 0
	for {
		m.steps++
		if m.steps > m.cfg.MaxSteps {
			return 0, false, m.fault("step limit exceeded")
		}
		if pc < 0 || pc >= len(f.Instrs) {
			return 0, false, m.fault("pc out of range in %s", f.Name)
		}
		ins := &f.Instrs[pc]
		m.ctr.InstrsRetired++
		lat := int64(1)
		var issueT int64
		if m.cfg.Pipelined {
			issueT = m.clock
			forEachSrc(ins, func(r int) {
				if ready[r] > issueT {
					issueT = ready[r]
				}
			})
		}
		switch ins.Op {
		case OpNop:
		case OpMovI:
			regs[ins.Rd] = uint64(ins.Imm)
			nat[ins.Rd] = false
		case OpMov:
			regs[ins.Rd] = regs[ins.Rs]
			nat[ins.Rd] = nat[ins.Rs]
		case OpLEA:
			if ins.IsFrame {
				regs[ins.Rd] = uint64(base + int(ins.Imm))
			} else {
				regs[ins.Rd] = uint64(ins.Imm)
			}
			nat[ins.Rd] = false
		case OpAdd:
			regs[ins.Rd] = uint64(int64(regs[ins.Rs]) + int64(regs[ins.Rt]))
		case OpSub:
			regs[ins.Rd] = uint64(int64(regs[ins.Rs]) - int64(regs[ins.Rt]))
		case OpMul:
			regs[ins.Rd] = uint64(int64(regs[ins.Rs]) * int64(regs[ins.Rt]))
			lat = int64(m.cfg.IntMulLat)
			if m.trace != nil {
				m.trace.counts[cMul]++
			}
		case OpDiv:
			d := int64(regs[ins.Rt])
			if d == 0 {
				return 0, false, m.fault("integer division by zero in %s", f.Name)
			}
			regs[ins.Rd] = uint64(int64(regs[ins.Rs]) / d)
			lat = int64(m.cfg.IntDivLat)
			if m.trace != nil {
				m.trace.counts[cDivMod]++
			}
		case OpMod:
			d := int64(regs[ins.Rt])
			if d == 0 {
				return 0, false, m.fault("integer modulo by zero in %s", f.Name)
			}
			regs[ins.Rd] = uint64(int64(regs[ins.Rs]) % d)
			lat = int64(m.cfg.IntDivLat)
			if m.trace != nil {
				m.trace.counts[cDivMod]++
			}
		case OpAnd:
			regs[ins.Rd] = regs[ins.Rs] & regs[ins.Rt]
		case OpOr:
			regs[ins.Rd] = regs[ins.Rs] | regs[ins.Rt]
		case OpXor:
			regs[ins.Rd] = regs[ins.Rs] ^ regs[ins.Rt]
		case OpShl:
			regs[ins.Rd] = uint64(int64(regs[ins.Rs]) << (regs[ins.Rt] & 63))
		case OpShr:
			regs[ins.Rd] = uint64(int64(regs[ins.Rs]) >> (regs[ins.Rt] & 63))
		case OpNeg:
			regs[ins.Rd] = uint64(-int64(regs[ins.Rs]))
		case OpNot:
			regs[ins.Rd] = boolToU64(int64(regs[ins.Rs]) == 0)
		case OpFAdd:
			regs[ins.Rd] = math.Float64bits(math.Float64frombits(regs[ins.Rs]) + math.Float64frombits(regs[ins.Rt]))
			lat = int64(m.cfg.FPArithLat)
			if m.trace != nil {
				m.trace.counts[cFPArith]++
			}
		case OpFSub:
			regs[ins.Rd] = math.Float64bits(math.Float64frombits(regs[ins.Rs]) - math.Float64frombits(regs[ins.Rt]))
			lat = int64(m.cfg.FPArithLat)
			if m.trace != nil {
				m.trace.counts[cFPArith]++
			}
		case OpFMul:
			regs[ins.Rd] = math.Float64bits(math.Float64frombits(regs[ins.Rs]) * math.Float64frombits(regs[ins.Rt]))
			lat = int64(m.cfg.FPArithLat)
			if m.trace != nil {
				m.trace.counts[cFPArith]++
			}
		case OpFDiv:
			regs[ins.Rd] = math.Float64bits(math.Float64frombits(regs[ins.Rs]) / math.Float64frombits(regs[ins.Rt]))
			lat = int64(m.cfg.FPDivLat)
			if m.trace != nil {
				m.trace.counts[cFPDiv]++
			}
		case OpFNeg:
			regs[ins.Rd] = math.Float64bits(-math.Float64frombits(regs[ins.Rs]))
			lat = int64(m.cfg.FPArithLat)
			if m.trace != nil {
				m.trace.counts[cFPArith]++
			}
		case OpCmpEQ:
			regs[ins.Rd] = boolToU64(int64(regs[ins.Rs]) == int64(regs[ins.Rt]))
		case OpCmpNE:
			regs[ins.Rd] = boolToU64(int64(regs[ins.Rs]) != int64(regs[ins.Rt]))
		case OpCmpLT:
			regs[ins.Rd] = boolToU64(int64(regs[ins.Rs]) < int64(regs[ins.Rt]))
		case OpCmpLE:
			regs[ins.Rd] = boolToU64(int64(regs[ins.Rs]) <= int64(regs[ins.Rt]))
		case OpCmpGT:
			regs[ins.Rd] = boolToU64(int64(regs[ins.Rs]) > int64(regs[ins.Rt]))
		case OpCmpGE:
			regs[ins.Rd] = boolToU64(int64(regs[ins.Rs]) >= int64(regs[ins.Rt]))
		case OpFCmpEQ:
			regs[ins.Rd] = boolToU64(math.Float64frombits(regs[ins.Rs]) == math.Float64frombits(regs[ins.Rt]))
		case OpFCmpNE:
			regs[ins.Rd] = boolToU64(math.Float64frombits(regs[ins.Rs]) != math.Float64frombits(regs[ins.Rt]))
		case OpFCmpLT:
			regs[ins.Rd] = boolToU64(math.Float64frombits(regs[ins.Rs]) < math.Float64frombits(regs[ins.Rt]))
		case OpFCmpLE:
			regs[ins.Rd] = boolToU64(math.Float64frombits(regs[ins.Rs]) <= math.Float64frombits(regs[ins.Rt]))
		case OpFCmpGT:
			regs[ins.Rd] = boolToU64(math.Float64frombits(regs[ins.Rs]) > math.Float64frombits(regs[ins.Rt]))
		case OpFCmpGE:
			regs[ins.Rd] = boolToU64(math.Float64frombits(regs[ins.Rs]) >= math.Float64frombits(regs[ins.Rt]))
		case OpI2F:
			regs[ins.Rd] = math.Float64bits(float64(int64(regs[ins.Rs])))
		case OpF2I:
			regs[ins.Rd] = uint64(int64(math.Float64frombits(regs[ins.Rs])))

		case OpLd, OpLdF, OpLdA, OpLdFA:
			addr := int(int64(regs[ins.Rs]))
			if !m.validAddr(addr) {
				return 0, false, m.fault("load from invalid address %d in %s", addr, f.Name)
			}
			regs[ins.Rd] = m.mem[addr]
			nat[ins.Rd] = false
			fp := ins.Op == OpLdF || ins.Op == OpLdFA
			if fp {
				lat = int64(m.cfg.FPLoadLat)
			} else {
				lat = int64(m.cfg.IntLoadLat)
			}
			m.ctr.LoadsRetired++
			m.ctr.DataAccessCycles += lat
			if m.trace != nil {
				if fp {
					m.trace.counts[cFPLoad]++
				} else {
					m.trace.counts[cIntLoad]++
				}
			}
			if ins.Op == OpLdA || ins.Op == OpLdFA {
				m.ctr.AdvLoads++
				if fnCtr == nil {
					fnCtr = m.fnCtr(f)
				}
				fnCtr.AdvLoads++
				if m.trace != nil {
					m.trace.ops.append(alatOp{kind: opInsert, frameID: myFrame, reg: int32(ins.Rd), addr: int64(addr), fn: fnID})
				}
				m.alat.insert(myFrame, ins.Rd, addr)
			}

		case OpLdC, OpLdFC:
			addr := int(int64(regs[ins.Rs]))
			m.ctr.LoadsRetired++
			m.ctr.CheckLoads++
			if fnCtr == nil {
				fnCtr = m.fnCtr(f)
			}
			fnCtr.CheckLoads++
			if m.trace != nil {
				kind, class := opCheckInt, cCheckInt
				if ins.Op == OpLdFC {
					kind, class = opCheckFP, cCheckFP
				}
				m.trace.counts[class]++
				m.trace.ops.append(alatOp{kind: kind, frameID: myFrame, reg: int32(ins.Rd), addr: int64(addr), fn: fnID})
			}
			if m.alat.check(myFrame, ins.Rd, addr) {
				// hit: the register already holds the current value
				lat = int64(m.cfg.CheckHitLat)
				m.ctr.DataAccessCycles += lat
			} else {
				m.ctr.FailedChecks++
				fnCtr.FailedChecks++
				if !m.validAddr(addr) {
					return 0, false, m.fault("check load from invalid address %d in %s", addr, f.Name)
				}
				regs[ins.Rd] = m.mem[addr]
				nat[ins.Rd] = false
				if ins.Op == OpLdFC {
					lat = int64(m.cfg.FPLoadLat + m.cfg.CheckMissPen)
				} else {
					lat = int64(m.cfg.IntLoadLat + m.cfg.CheckMissPen)
				}
				m.ctr.DataAccessCycles += lat
				m.alat.insert(myFrame, ins.Rd, addr)
			}

		case OpLdS, OpLdFS, OpLdSA, OpLdFSA:
			addr := int(int64(regs[ins.Rs]))
			m.ctr.LoadsRetired++
			m.ctr.SpecLoads++
			deferred := !m.validAddr(addr) || nat[ins.Rs]
			if m.trace != nil {
				m.trace.bits.append(deferred)
			}
			if deferred {
				// deferred fault: NaT, consumed only on paths where the
				// original program would have faulted anyway
				regs[ins.Rd] = 0
				nat[ins.Rd] = true
				m.ctr.SpecLoadFaults++
			} else {
				regs[ins.Rd] = m.mem[addr]
				nat[ins.Rd] = false
				if ins.Op == OpLdSA || ins.Op == OpLdFSA {
					m.ctr.AdvLoads++
					if fnCtr == nil {
						fnCtr = m.fnCtr(f)
					}
					fnCtr.AdvLoads++
					if m.trace != nil {
						m.trace.ops.append(alatOp{kind: opInsert, frameID: myFrame, reg: int32(ins.Rd), addr: int64(addr), fn: fnID})
					}
					m.alat.insert(myFrame, ins.Rd, addr)
				}
			}
			if ins.Op == OpLdFS || ins.Op == OpLdFSA {
				lat = int64(m.cfg.FPLoadLat)
			} else {
				lat = int64(m.cfg.IntLoadLat)
			}
			m.ctr.DataAccessCycles += lat
			if m.trace != nil {
				if ins.Op == OpLdFS || ins.Op == OpLdFSA {
					m.trace.counts[cFPLoad]++
				} else {
					m.trace.counts[cIntLoad]++
				}
			}

		case OpSt, OpStF:
			addr := int(int64(regs[ins.Rd])) // Rd holds the address register
			if !m.validAddr(addr) {
				return 0, false, m.fault("store to invalid address %d in %s", addr, f.Name)
			}
			if m.trace != nil {
				m.trace.ops.append(alatOp{kind: opInval, addr: int64(addr), fn: fnID})
			}
			m.mem[addr] = regs[ins.Rs]
			m.alat.invalidate(addr)
			lat = int64(m.cfg.StoreLat)
			m.ctr.Stores++
			m.ctr.DataAccessCycles += lat

		case OpAlloc:
			n := int(int64(regs[ins.Rs]))
			if n < 0 {
				return 0, false, m.fault("negative allocation %d", n)
			}
			start := m.heapBase + m.heapNext
			m.heapNext += n
			for len(m.mem) < m.heapBase+m.heapNext {
				m.mem = append(m.mem, make([]uint64, 4096)...)
			}
			regs[ins.Rd] = uint64(start)

		case OpBr:
			m.ctr.Cycles += lat
			if m.cfg.Pipelined {
				m.clock = issueT + 1
			}
			pc = ins.Target
			continue
		case OpBeqz:
			m.ctr.Cycles += lat
			if m.cfg.Pipelined {
				m.clock = issueT + 1
			}
			taken := int64(regs[ins.Rs]) == 0
			if m.trace != nil {
				m.trace.bits.append(taken)
			}
			if taken {
				pc = ins.Target
				continue
			}
			pc++
			continue
		case OpBnez:
			m.ctr.Cycles += lat
			if m.cfg.Pipelined {
				m.clock = issueT + 1
			}
			taken := int64(regs[ins.Rs]) != 0
			if m.trace != nil {
				m.trace.bits.append(taken)
			}
			if taken {
				pc = ins.Target
				continue
			}
			pc++
			continue

		case OpCall:
			callee, ok := m.prog.Funcs[ins.Fn]
			if !ok {
				return 0, false, m.fault("call to unknown function %q", ins.Fn)
			}
			// the callee copies args into its registers in its prologue,
			// before its own first call, so one outgoing buffer per
			// nesting depth is safe to reuse
			if cap(sc.args) < len(ins.ArgRegs) {
				sc.args = make([]uint64, len(ins.ArgRegs))
			}
			args := sc.args[:len(ins.ArgRegs)]
			for i, r := range ins.ArgRegs {
				args[i] = regs[r]
			}
			if m.cfg.Pipelined {
				m.clock = issueT + 1
			}
			v, _, err := m.call(callee, args)
			if err != nil {
				return 0, false, err
			}
			if ins.Rd >= 0 {
				regs[ins.Rd] = v
				if m.cfg.Pipelined {
					ready[ins.Rd] = m.clock
				}
			}
			m.ctr.Cycles += lat
			pc++
			continue

		case OpArg:
			idx := int(int64(regs[ins.Rs]))
			var v int64
			if idx >= 0 && idx < len(m.args) {
				v = m.args[idx]
			}
			regs[ins.Rd] = uint64(v)

		case OpPrint:
			parts := make([]string, len(ins.ArgRegs))
			for i, r := range ins.ArgRegs {
				if ins.FloatRs[i] {
					parts[i] = fmt.Sprintf("%.6g", math.Float64frombits(regs[r]))
				} else {
					parts[i] = fmt.Sprintf("%d", int64(regs[r]))
				}
			}
			fmt.Fprintln(m.out, strings.Join(parts, " "))

		case OpRet:
			m.ctr.Cycles += lat
			if m.cfg.Pipelined {
				m.clock = issueT + 1
			}
			if ins.Rs >= 0 {
				return regs[ins.Rs], true, nil
			}
			return 0, false, nil

		case OpHalt:
			if m.trace != nil {
				m.trace.counts[cHalt]++
			}
			return 0, false, nil

		case OpFence:
			lat = int64(m.cfg.FenceLat)
			if m.cfg.Pipelined {
				// scoreboard drain: nothing issues past the fence until
				// every in-flight result has retired
				for _, t := range ready {
					if t > issueT {
						issueT = t
					}
				}
			}
			if m.trace != nil {
				m.trace.counts[cFence]++
			}

		default:
			return 0, false, m.fault("unknown opcode %v", ins.Op)
		}
		m.ctr.Cycles += lat
		if m.cfg.Pipelined {
			m.clock = issueT + 1
			if d := instrDst(ins); d >= 0 {
				ready[d] = issueT + lat
			}
		}
		pc++
	}
}

// forEachSrc visits the source registers of an instruction (for the
// pipelined scoreboard).
func forEachSrc(ins *Instr, visit func(int)) {
	switch ins.Op {
	case OpMovI, OpLEA, OpNop, OpHalt, OpBr, OpFence:
		return
	case OpSt, OpStF:
		visit(ins.Rd) // address
		visit(ins.Rs) // value
	case OpLdC, OpLdFC:
		visit(ins.Rs) // address
		visit(ins.Rd) // the value being validated must be present
	case OpCall, OpPrint:
		for _, r := range ins.ArgRegs {
			visit(r)
		}
	case OpBeqz, OpBnez, OpArg, OpRet:
		if ins.Rs >= 0 {
			visit(ins.Rs)
		}
	case OpMov, OpNeg, OpNot, OpI2F, OpF2I, OpFNeg,
		OpLd, OpLdF, OpLdA, OpLdFA, OpLdS, OpLdFS, OpLdSA, OpLdFSA, OpAlloc:
		visit(ins.Rs)
	default: // three-register ALU
		visit(ins.Rs)
		visit(ins.Rt)
	}
}

// instrDst returns the destination register of an instruction, or -1.
func instrDst(ins *Instr) int {
	switch ins.Op {
	case OpSt, OpStF, OpBr, OpBeqz, OpBnez, OpRet, OpPrint, OpHalt, OpNop, OpCall, OpFence:
		return -1
	}
	return ins.Rd
}
