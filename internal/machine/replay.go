package machine

import (
	"errors"
	"fmt"
	"io"
)

// Replay is the timing engine of the record-and-replay split: it walks
// a recorded Trace over the static program and recomputes Counters and
// cycles under cfg, without interpreting — no register file, no memory
// image, no value computation. Control flow follows recorded branch
// directions, speculative faults follow recorded fault bits, and ALAT
// hit/miss is re-simulated from the recorded event stream with the same
// alat implementation the functional engine uses (hit/miss depends on
// cfg.ALATSize, so it cannot be recorded).
//
// Two re-timing strategies, chosen per Config:
//
//   - Serial model, limits at least as large as the recorded run's: the
//     fast path. Serial cycles are a linear function of the recorded
//     latency-class counts plus the per-check hit/miss outcomes, so the
//     replayer walks only the ALAT event stream — O(events), typically
//     orders of magnitude shorter than the instruction stream.
//   - Pipelined model, or tightened MaxSteps/MaxCallDepth: the full
//     instruction walk. The scoreboard needs per-instruction operand
//     availability, and resource faults must fire at exactly the step
//     direct execution faults at, with the same error.
//
// Either way the result is byte-identical to direct execution. The one
// non-negotiable is StackSlots: the stack size determines concrete
// addresses, so a trace can only be re-timed under the layout it was
// recorded with (ErrTraceMismatch otherwise — callers fall back to
// direct Run).
//
// A Trace is immutable after Record; concurrent Replays of the same
// trace are safe, each holding private stream cursors.

// ErrTraceMismatch reports a Config whose memory layout differs from
// the one the trace was recorded under.
var ErrTraceMismatch = errors.New("machine: trace recorded under a different memory layout")

// errTraceUnderrun reports a truncated or mismatched trace (never
// produced by Record on the program it recorded).
var errTraceUnderrun = errors.New("machine: trace underrun (corrupt trace or mismatched program)")

// replayFrame is one activation on the replayer's call stack.
type replayFrame struct {
	f       *FuncCode
	pc      int
	frameID int64
	base    int     // stackTop at entry
	ready   []int64 // pipelined scoreboard (nil under the serial model)
}

type replayer struct {
	prog *Program
	cfg  Config
	bits bitReader
	ops  opReader
	alat *alat

	frames   []replayFrame
	stackTop int
	heapBase int
	frameID  int64

	steps int64
	clock int64

	ctr   Counters
	perFn map[*FuncCode]*FuncCounters
}

// fnCtr returns (creating on first touch) f's per-function tally,
// mirroring the functional engine's lazy-entry convention.
func (r *replayer) fnCtr(f *FuncCode) *FuncCounters {
	c := r.perFn[f]
	if c == nil {
		if r.perFn == nil {
			r.perFn = make(map[*FuncCode]*FuncCounters)
		}
		c = &FuncCounters{}
		r.perFn[f] = c
	}
	return c
}

func (r *replayer) fault(format string, a ...any) error {
	return fmt.Errorf("machine: %s", fmt.Sprintf(format, a...))
}

// Replay re-times a recorded trace under cfg. See the package comment
// above for the contract; the result is byte-identical to
// Run(prog, args, cfg, out) for the (program, input) the trace records.
func Replay(prog *Program, t *Trace, cfg Config, out io.Writer) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.StackSlots != t.StackSlots {
		return nil, fmt.Errorf("%w: recorded with %d stack slots, config has %d",
			ErrTraceMismatch, t.StackSlots, cfg.StackSlots)
	}
	var ctr Counters
	var perFn map[string]FuncCounters
	if !cfg.Pipelined && cfg.MaxSteps >= t.Steps && cfg.MaxCallDepth >= t.MaxDepth {
		// limits at least as generous as the recorded (completed) run
		// cannot fault, so the aggregate path is exact
		ctr = replaySerial(t, cfg)
		perFn = t.perFuncAt(cfg.ALATSize)
	} else {
		r := &replayer{
			prog: prog,
			cfg:  cfg,
			bits: bitReader{t: &t.bits},
			ops:  opReader{t: &t.ops},
			alat: newALAT(cfg.ALATSize),
		}
		r.stackTop = prog.GlobSize
		r.heapBase = prog.GlobSize + cfg.StackSlots
		mainFn, ok := prog.Funcs["main"]
		if !ok {
			return nil, errors.New("machine: no main function")
		}
		if err := r.push(mainFn); err != nil {
			return nil, err
		}
		if err := r.walk(); err != nil {
			return nil, err
		}
		if cfg.Pipelined {
			r.ctr.Cycles = r.clock
		}
		r.ctr.ALATEvictions = r.alat.evictions
		ctr = r.ctr
		perFn = perFuncMap(r.perFn)
	}
	res := &Result{Ret: t.Ret, Counters: ctr, PerFunc: perFn}
	if out == nil {
		res.Output = t.Output
	} else if _, err := io.WriteString(out, t.Output); err != nil {
		return nil, err
	}
	return res, nil
}

// alatSummary is the configuration-independent outcome of replaying the
// ALAT event stream against a table of a given capacity: which checks
// missed (by latency class) and how many entries were evicted. Latency
// fields never influence it, so one summary serves every latency point
// of a sweep at that ALAT size.
type alatSummary struct {
	missInt   int64
	missFP    int64
	evictions int64

	// missBits has one bit per check event in program order (set =
	// miss). The serial path only needs the totals above; the batched
	// pipelined walk needs each check's outcome to pick that event's
	// latency, and reading a precomputed bit is far cheaper than
	// re-simulating a table per distinct capacity inside the
	// instruction walk.
	missBits []uint64
	checks   int64

	// perFn tallies events per function (indexed by the trace's
	// FnNames ids). Inserts and checks are capacity-independent;
	// failures are not, which is why the tally lives in the summary
	// rather than the trace.
	perFn []fnTally
}

// fnTally is one function's speculation-event tally within a summary.
type fnTally struct {
	checks int64
	failed int64
	adv    int64
}

func (s *alatSummary) miss(ord int64) bool {
	return s.missBits[ord>>6]&(1<<uint(ord&63)) != 0
}

// alatWalk replays just the recorded ALAT event stream against a table
// of the given capacity, memoized per capacity on the trace.
func (t *Trace) alatWalk(size int) alatSummary {
	if v, ok := t.alatMemo.Load(size); ok {
		return v.(alatSummary)
	}
	a := newALAT(size)
	s := alatSummary{
		missBits: make([]uint64, (t.counts[cCheckInt]+t.counts[cCheckFP]+63)/64),
		perFn:    make([]fnTally, len(t.FnNames)),
	}
	// iterate the columnar chunks directly — the walk touches every
	// event, so the per-event cursor bookkeeping of opReader is pure
	// overhead here
	remaining := t.ops.n
	for ci := 0; remaining > 0; ci++ {
		end := int64(opChunkLen)
		if remaining < end {
			end = remaining
		}
		remaining -= end
		kinds, regs, frames, addrs, fns := t.ops.kinds[ci], t.ops.regs[ci], t.ops.frames[ci], t.ops.addrs[ci], t.ops.fns[ci]
		for off := 0; off < int(end); off++ {
			switch kinds[off] {
			case opInval:
				a.invalidate(int(addrs[off]))
			case opInsert:
				a.insert(frames[off], int(regs[off]), int(addrs[off]))
				s.perFn[fns[off]].adv++
			default: // opCheckInt, opCheckFP
				ord := s.checks
				s.checks++
				tally := &s.perFn[fns[off]]
				tally.checks++
				if !a.check(frames[off], int(regs[off]), int(addrs[off])) {
					s.missBits[ord>>6] |= 1 << uint(ord&63)
					tally.failed++
					if kinds[off] == opCheckFP {
						s.missFP++
					} else {
						s.missInt++
					}
					a.insert(frames[off], int(regs[off]), int(addrs[off]))
				}
			}
		}
	}
	s.evictions = a.evictions
	t.alatMemo.Store(size, s)
	return s
}

// perFuncAt builds the per-function counter map of a replay at the
// given ALAT size from the memoized event-walk summary, following the
// same convention as direct execution: an entry iff the function
// retired at least one advanced or check load, nil when none did.
func (t *Trace) perFuncAt(size int) map[string]FuncCounters {
	s := t.alatWalk(size)
	var out map[string]FuncCounters
	for id, tally := range s.perFn {
		if tally.checks == 0 && tally.adv == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]FuncCounters)
		}
		out[t.FnNames[id]] = FuncCounters{
			CheckLoads:   tally.checks,
			FailedChecks: tally.failed,
			AdvLoads:     tally.adv,
		}
	}
	return out
}

// replaySerial re-times the trace under the serial model without
// touching the instruction stream: every counter except the
// ALAT-dependent ones is a function of the recorded class counts, and
// the ALAT-dependent ones (check hits, evictions) come from the
// memoized ALAT event walk at cfg.ALATSize.
func replaySerial(t *Trace, cfg Config) Counters {
	s := t.alatWalk(cfg.ALATSize)
	failed := s.missInt + s.missFP

	c := &t.counts
	checks := c[cCheckInt] + c[cCheckFP]
	checkCycles := (checks-failed)*int64(cfg.CheckHitLat) +
		s.missInt*int64(cfg.IntLoadLat+cfg.CheckMissPen) +
		s.missFP*int64(cfg.FPLoadLat+cfg.CheckMissPen)
	unit := t.Steps - c[cMul] - c[cDivMod] - c[cFPArith] - c[cFPDiv] -
		c[cIntLoad] - c[cFPLoad] - checks - c[cStore] - c[cHalt] - c[cFence]
	memCycles := c[cIntLoad]*int64(cfg.IntLoadLat) +
		c[cFPLoad]*int64(cfg.FPLoadLat) +
		c[cStore]*int64(cfg.StoreLat) +
		checkCycles
	return Counters{
		Cycles: unit +
			c[cMul]*int64(cfg.IntMulLat) +
			c[cDivMod]*int64(cfg.IntDivLat) +
			c[cFPArith]*int64(cfg.FPArithLat) +
			c[cFPDiv]*int64(cfg.FPDivLat) +
			c[cFence]*int64(cfg.FenceLat) +
			t.Frames*int64(cfg.CallOverhead) +
			memCycles,
		DataAccessCycles: memCycles,
		InstrsRetired:    t.Steps,
		LoadsRetired:     c[cIntLoad] + c[cFPLoad] + checks,
		CheckLoads:       checks,
		FailedChecks:     failed,
		AdvLoads:         c[cAdv],
		SpecLoads:        c[cSpec],
		SpecLoadFaults:   c[cSpecFault],
		Stores:           c[cStore],
		ALATEvictions:    s.evictions,
	}
}

// push enters a function activation, mirroring the entry sequence of
// vm.call: depth check, stack check, call overhead, scoreboard init.
func (r *replayer) push(f *FuncCode) error {
	if len(r.frames) >= r.cfg.MaxCallDepth {
		return r.fault("call depth exceeded in %s", f.Name)
	}
	if r.stackTop+f.FrameSize > r.heapBase {
		return r.fault("stack overflow in %s", f.Name)
	}
	r.frameID++
	fr := replayFrame{f: f, frameID: r.frameID, base: r.stackTop}
	r.stackTop += f.FrameSize
	if r.cfg.Pipelined {
		r.clock += int64(r.cfg.CallOverhead)
		fr.ready = make([]int64, f.NumRegs)
		for i := range fr.ready {
			fr.ready[i] = r.clock
		}
	}
	r.ctr.Cycles += int64(r.cfg.CallOverhead)
	r.frames = append(r.frames, fr)
	return nil
}

func (r *replayer) nextBit() (bool, error) {
	bit, ok := r.bits.next()
	if !ok {
		return false, errTraceUnderrun
	}
	return bit, nil
}

func (r *replayer) nextAddr() (int, error) {
	op, ok := r.ops.next()
	if !ok {
		return 0, errTraceUnderrun
	}
	return int(op.addr), nil
}

// issueTime is the scoreboard stall computation of the pipelined model:
// the cycle at which ins can issue, given the current clock and the
// frame's register-ready times. It visits the same source registers as
// forEachSrc but without the per-register indirect call — this is the
// replay walk's hottest code.
func issueTime(ins *Instr, ready []int64, clock int64) int64 {
	issueT := clock
	switch ins.Op {
	case OpMovI, OpLEA, OpNop, OpHalt, OpBr:
		return issueT
	case OpFence:
		// scoreboard drain: waits for every in-flight result
		for _, v := range ready {
			if v > issueT {
				issueT = v
			}
		}
	case OpSt, OpStF:
		if v := ready[ins.Rd]; v > issueT { // address
			issueT = v
		}
		if v := ready[ins.Rs]; v > issueT { // value
			issueT = v
		}
	case OpLdC, OpLdFC:
		if v := ready[ins.Rs]; v > issueT { // address
			issueT = v
		}
		if v := ready[ins.Rd]; v > issueT { // value being validated
			issueT = v
		}
	case OpCall, OpPrint:
		for _, reg := range ins.ArgRegs {
			if v := ready[reg]; v > issueT {
				issueT = v
			}
		}
	case OpBeqz, OpBnez, OpArg, OpRet:
		if ins.Rs >= 0 {
			if v := ready[ins.Rs]; v > issueT {
				issueT = v
			}
		}
	case OpMov, OpNeg, OpNot, OpI2F, OpF2I, OpFNeg,
		OpLd, OpLdF, OpLdA, OpLdFA, OpLdS, OpLdFS, OpLdSA, OpLdFSA, OpAlloc:
		if v := ready[ins.Rs]; v > issueT {
			issueT = v
		}
	default: // three-register ALU
		if v := ready[ins.Rs]; v > issueT {
			issueT = v
		}
		if v := ready[ins.Rt]; v > issueT {
			issueT = v
		}
	}
	return issueT
}

// walk replays the dynamic instruction stream. The structure mirrors
// vm.call's interpreter loop: any change to the cycle accounting there
// must be reflected here (the differential tests pin the equivalence).
//
// Hot state (clock, cycle and retirement tallies, latencies) lives in
// locals: the loop runs once per dynamic instruction, where per-field
// struct traffic is measurable. The locals are flushed back into the
// replayer around push (which charges call overhead against the real
// clock and counter) and at the final return; error paths may leave the
// tallies stale because a faulted replay's counters are discarded.
func (r *replayer) walk() error {
	pipelined := r.cfg.Pipelined
	maxSteps := r.cfg.MaxSteps
	steps := r.steps
	clock := r.clock
	var cycles, instrs int64
	latIntMul := int64(r.cfg.IntMulLat)
	latIntDiv := int64(r.cfg.IntDivLat)
	latFPArith := int64(r.cfg.FPArithLat)
	latFPDiv := int64(r.cfg.FPDivLat)
	latIntLoad := int64(r.cfg.IntLoadLat)
	latFPLoad := int64(r.cfg.FPLoadLat)
	latCheckHit := int64(r.cfg.CheckHitLat)
	latStore := int64(r.cfg.StoreLat)
	latFence := int64(r.cfg.FenceLat)
	missPen := int64(r.cfg.CheckMissPen)
	for {
		fr := &r.frames[len(r.frames)-1]
		f := fr.f
		steps++
		if steps > maxSteps {
			return r.fault("step limit exceeded")
		}
		if fr.pc < 0 || fr.pc >= len(f.Instrs) {
			return r.fault("pc out of range in %s", f.Name)
		}
		ins := &f.Instrs[fr.pc]
		instrs++
		lat := int64(1)
		var issueT int64
		if pipelined {
			issueT = issueTime(ins, fr.ready, clock)
		}
		switch ins.Op {
		case OpMul:
			lat = latIntMul
		case OpDiv, OpMod:
			lat = latIntDiv
		case OpFAdd, OpFSub, OpFMul, OpFNeg:
			lat = latFPArith
		case OpFDiv:
			lat = latFPDiv
		case OpFence:
			lat = latFence

		case OpLd, OpLdF, OpLdA, OpLdFA:
			if ins.Op == OpLdF || ins.Op == OpLdFA {
				lat = latFPLoad
			} else {
				lat = latIntLoad
			}
			r.ctr.LoadsRetired++
			r.ctr.DataAccessCycles += lat
			if ins.Op == OpLdA || ins.Op == OpLdFA {
				r.ctr.AdvLoads++
				r.fnCtr(f).AdvLoads++
				addr, err := r.nextAddr()
				if err != nil {
					return err
				}
				r.alat.insert(fr.frameID, ins.Rd, addr)
			}

		case OpLdC, OpLdFC:
			r.ctr.LoadsRetired++
			r.ctr.CheckLoads++
			fctr := r.fnCtr(f)
			fctr.CheckLoads++
			addr, err := r.nextAddr()
			if err != nil {
				return err
			}
			if r.alat.check(fr.frameID, ins.Rd, addr) {
				lat = latCheckHit
			} else {
				r.ctr.FailedChecks++
				fctr.FailedChecks++
				if ins.Op == OpLdFC {
					lat = latFPLoad + missPen
				} else {
					lat = latIntLoad + missPen
				}
				r.alat.insert(fr.frameID, ins.Rd, addr)
			}
			r.ctr.DataAccessCycles += lat

		case OpLdS, OpLdFS, OpLdSA, OpLdFSA:
			r.ctr.LoadsRetired++
			r.ctr.SpecLoads++
			deferred, err := r.nextBit()
			if err != nil {
				return err
			}
			if deferred {
				r.ctr.SpecLoadFaults++
			} else if ins.Op == OpLdSA || ins.Op == OpLdFSA {
				r.ctr.AdvLoads++
				r.fnCtr(f).AdvLoads++
				addr, err := r.nextAddr()
				if err != nil {
					return err
				}
				r.alat.insert(fr.frameID, ins.Rd, addr)
			}
			if ins.Op == OpLdFS || ins.Op == OpLdFSA {
				lat = latFPLoad
			} else {
				lat = latIntLoad
			}
			r.ctr.DataAccessCycles += lat

		case OpSt, OpStF:
			addr, err := r.nextAddr()
			if err != nil {
				return err
			}
			r.alat.invalidate(addr)
			lat = latStore
			r.ctr.Stores++
			r.ctr.DataAccessCycles += lat

		case OpBr:
			cycles += lat
			if pipelined {
				clock = issueT + 1
			}
			fr.pc = ins.Target
			continue

		case OpBeqz, OpBnez:
			cycles += lat
			if pipelined {
				clock = issueT + 1
			}
			taken, err := r.nextBit()
			if err != nil {
				return err
			}
			if taken {
				fr.pc = ins.Target
			} else {
				fr.pc++
			}
			continue

		case OpCall:
			callee, ok := r.prog.Funcs[ins.Fn]
			if !ok {
				return r.fault("call to unknown function %q", ins.Fn)
			}
			if pipelined {
				clock = issueT + 1
			}
			cycles += lat
			fr.pc++ // resume point after the callee returns
			// push charges call overhead against the real clock
			r.clock = clock
			if err := r.push(callee); err != nil {
				return err
			}
			clock = r.clock
			continue

		case OpRet, OpHalt:
			if ins.Op == OpRet {
				cycles += lat
				if pipelined {
					clock = issueT + 1
				}
			}
			r.stackTop = fr.base
			r.frames = r.frames[:len(r.frames)-1]
			if len(r.frames) == 0 {
				r.steps = steps
				r.clock = clock
				r.ctr.Cycles += cycles
				r.ctr.InstrsRetired += instrs
				return nil
			}
			if pipelined {
				caller := &r.frames[len(r.frames)-1]
				// caller.pc was advanced past its call instruction
				callIns := &caller.f.Instrs[caller.pc-1]
				if callIns.Rd >= 0 {
					caller.ready[callIns.Rd] = clock
				}
			}
			continue
		}
		// every remaining opcode (ALU, moves, print, arg, alloc) retires
		// with its latency and, under the scoreboard, publishes its
		// destination — exactly the common exit of the interpreter loop
		cycles += lat
		if pipelined {
			clock = issueT + 1
			if d := instrDst(ins); d >= 0 {
				fr.ready[d] = issueT + lat
			}
		}
		fr.pc++
	}
}
