package machine

import "testing"

// configProg is a tiny program with two independent loads, so
// latency-sensitive counters reveal which Config fields a run actually
// honoured: the serial model charges both load latencies in full while
// the pipelined scoreboard overlaps them.
func configProg() *Program {
	return buildProg([]Instr{
		{Op: OpLEA, Rd: 0, Imm: 0},
		{Op: OpLEA, Rd: 1, Imm: 1},
		{Op: OpMovI, Rd: 2, Imm: 5},
		{Op: OpSt, Rd: 0, Rs: 2},
		{Op: OpSt, Rd: 1, Rs: 2},
		{Op: OpLd, Rd: 3, Rs: 0}, // two independent loads: their
		{Op: OpLd, Rd: 4, Rs: 1}, // latencies overlap when pipelined
		{Op: OpAdd, Rd: 5, Rs: 3, Rt: 4},
		{Op: OpRet, Rs: 5},
	}, 6, 8)
}

// TestPartialConfigKeepsOverrides is the regression test for the old
// wholesale Config replacement: a Config with ALATSize == 0 was swapped
// for Defaults() entirely, discarding the caller's Pipelined (and any
// latency) override, while a Config with only ALATSize set ran with
// MaxSteps 0 and faulted on the first instruction.
func TestPartialConfigKeepsOverrides(t *testing.T) {
	p := configProg()

	// {Pipelined: true} must behave exactly like Defaults()+Pipelined
	want, err := Run(p, nil, func() Config { c := Defaults(); c.Pipelined = true; return c }(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(p, nil, Config{Pipelined: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters != want.Counters {
		t.Errorf("Config{Pipelined:true} counters %+v, want Defaults()+Pipelined %+v", got.Counters, want.Counters)
	}
	// and must differ from the unpipelined default timing (the old code
	// silently dropped the flag)
	serial, err := Run(p, nil, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters.Cycles == serial.Counters.Cycles {
		t.Error("Pipelined override was ignored: pipelined and serial timing agree")
	}
}

// TestPartialConfigALATOnly pins the second half of the regression: a
// lone ALATSize override must inherit every other default (notably a
// non-zero MaxSteps) instead of faulting instantly.
func TestPartialConfigALATOnly(t *testing.T) {
	p := configProg()
	got, err := Run(p, nil, Config{ALATSize: 16}, nil)
	if err != nil {
		t.Fatalf("Config{ALATSize:16} must run with default MaxSteps, got %v", err)
	}
	want, err := Run(p, nil, func() Config { c := Defaults(); c.ALATSize = 16; return c }(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters != want.Counters {
		t.Errorf("Config{ALATSize:16} counters %+v, want Defaults()+ALATSize=16 %+v", got.Counters, want.Counters)
	}
}

// TestFreeLatency pins the Free sentinel: 0 means default, negative
// means an explicit zero-cycle latency.
func TestFreeLatency(t *testing.T) {
	cfg := Config{IntLoadLat: Free, CheckHitLat: Free}.withDefaults()
	if cfg.IntLoadLat != 0 || cfg.CheckHitLat != 0 {
		t.Errorf("Free fields = %d/%d, want 0/0", cfg.IntLoadLat, cfg.CheckHitLat)
	}
	d := Defaults()
	zero := Config{}.withDefaults()
	if zero != d {
		t.Errorf("zero Config normalized to %+v, want Defaults %+v", zero, d)
	}
	// a zero-latency load is actually cheaper end to end
	p := configProg()
	free, err := Run(p, nil, Config{IntLoadLat: Free}, nil)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Run(p, nil, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if free.Counters.Cycles >= def.Counters.Cycles {
		t.Errorf("free-load run (%d cycles) not cheaper than default (%d)", free.Counters.Cycles, def.Counters.Cycles)
	}
}
