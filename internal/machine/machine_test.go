package machine

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// buildProg wraps a main instruction sequence into a runnable program.
func buildProg(instrs []Instr, numRegs, globSize int) *Program {
	return &Program{
		Funcs: map[string]*FuncCode{
			"main": {Name: "main", Instrs: instrs, NumRegs: numRegs},
		},
		GlobSize:   globSize,
		GlobalInit: map[int]uint64{},
	}
}

func run(t *testing.T, p *Program, args ...int64) *Result {
	t.Helper()
	res, err := Run(p, args, Defaults(), nil)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, p)
	}
	return res
}

func TestBasicArithmetic(t *testing.T) {
	p := buildProg([]Instr{
		{Op: OpMovI, Rd: 0, Imm: 6},
		{Op: OpMovI, Rd: 1, Imm: 7},
		{Op: OpMul, Rd: 2, Rs: 0, Rt: 1},
		{Op: OpRet, Rs: 2},
	}, 3, 0)
	if res := run(t, p); res.Ret != 42 {
		t.Errorf("ret = %d, want 42", res.Ret)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	p := buildProg([]Instr{
		{Op: OpLEA, Rd: 0, Imm: 3}, // &global slot 3
		{Op: OpMovI, Rd: 1, Imm: 99},
		{Op: OpSt, Rd: 0, Rs: 1},
		{Op: OpLd, Rd: 2, Rs: 0},
		{Op: OpRet, Rs: 2},
	}, 3, 8)
	res := run(t, p)
	if res.Ret != 99 {
		t.Errorf("ret = %d, want 99", res.Ret)
	}
	if res.Counters.LoadsRetired != 1 || res.Counters.Stores != 1 {
		t.Errorf("counters: %+v", res.Counters)
	}
}

func TestALATHitAndInvalidation(t *testing.T) {
	// ld.a r2,[r0]; store to a DIFFERENT address; ld.c r2,[r0] → hit.
	// then store to the SAME address; ld.c → miss.
	p := buildProg([]Instr{
		{Op: OpLEA, Rd: 0, Imm: 0}, // addr A
		{Op: OpLEA, Rd: 1, Imm: 1}, // addr B
		{Op: OpMovI, Rd: 3, Imm: 5},
		{Op: OpSt, Rd: 0, Rs: 3},  // mem[A] = 5
		{Op: OpLdA, Rd: 2, Rs: 0}, // advanced load A
		{Op: OpSt, Rd: 1, Rs: 3},  // store B: no conflict
		{Op: OpLdC, Rd: 2, Rs: 0}, // check: HIT
		{Op: OpMovI, Rd: 4, Imm: 77},
		{Op: OpSt, Rd: 0, Rs: 4},  // store A: invalidates
		{Op: OpLdC, Rd: 2, Rs: 0}, // check: MISS, reloads 77
		{Op: OpRet, Rs: 2},
	}, 5, 8)
	res := run(t, p)
	if res.Ret != 77 {
		t.Errorf("check recovery failed: ret = %d, want 77", res.Ret)
	}
	if res.Counters.CheckLoads != 2 {
		t.Errorf("check loads = %d, want 2", res.Counters.CheckLoads)
	}
	if res.Counters.FailedChecks != 1 {
		t.Errorf("failed checks = %d, want 1", res.Counters.FailedChecks)
	}
	if res.Counters.AdvLoads != 1 {
		t.Errorf("adv loads = %d, want 1", res.Counters.AdvLoads)
	}
}

func TestALATCheckWithoutAdvancedLoadMisses(t *testing.T) {
	p := buildProg([]Instr{
		{Op: OpLEA, Rd: 0, Imm: 0},
		{Op: OpMovI, Rd: 1, Imm: 9},
		{Op: OpSt, Rd: 0, Rs: 1},
		{Op: OpLdC, Rd: 2, Rs: 0}, // no ld.a before: must reload
		{Op: OpRet, Rs: 2},
	}, 3, 4)
	res := run(t, p)
	if res.Ret != 9 {
		t.Errorf("orphan check returned %d, want 9", res.Ret)
	}
	if res.Counters.FailedChecks != 1 {
		t.Errorf("failed = %d, want 1", res.Counters.FailedChecks)
	}
}

func TestALATAddressChangeMisses(t *testing.T) {
	// ld.a on address A; ld.c with the register now holding address B
	p := buildProg([]Instr{
		{Op: OpLEA, Rd: 0, Imm: 0},
		{Op: OpMovI, Rd: 1, Imm: 11},
		{Op: OpSt, Rd: 0, Rs: 1},
		{Op: OpLEA, Rd: 3, Imm: 1},
		{Op: OpMovI, Rd: 4, Imm: 22},
		{Op: OpSt, Rd: 3, Rs: 4},
		{Op: OpLdA, Rd: 2, Rs: 0}, // entry (r2, A)
		{Op: OpLdC, Rd: 2, Rs: 3}, // checks address B: miss, reload 22
		{Op: OpRet, Rs: 2},
	}, 5, 4)
	res := run(t, p)
	if res.Ret != 22 {
		t.Errorf("ret = %d, want 22", res.Ret)
	}
	if res.Counters.FailedChecks != 1 {
		t.Errorf("failed = %d, want 1", res.Counters.FailedChecks)
	}
}

func TestALATCapacityEviction(t *testing.T) {
	// more advanced loads than ALAT entries: the first entry is evicted
	cfg := Defaults()
	cfg.ALATSize = 2
	var instrs []Instr
	instrs = append(instrs,
		Instr{Op: OpLEA, Rd: 0, Imm: 0},
		Instr{Op: OpMovI, Rd: 1, Imm: 1},
		Instr{Op: OpSt, Rd: 0, Rs: 1},
	)
	// 3 advanced loads to distinct registers
	for r := 2; r <= 4; r++ {
		instrs = append(instrs, Instr{Op: OpLdA, Rd: r, Rs: 0})
	}
	// check the first one: its entry is gone
	instrs = append(instrs,
		Instr{Op: OpLdC, Rd: 2, Rs: 0},
		Instr{Op: OpRet, Rs: 2},
	)
	p := buildProg(instrs, 6, 4)
	res, err := Run(p, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.ALATEvictions == 0 {
		t.Error("expected at least one eviction with a 2-entry ALAT")
	}
	if res.Counters.FailedChecks != 1 {
		t.Errorf("failed = %d, want 1 (entry evicted)", res.Counters.FailedChecks)
	}
}

func TestSpeculativeLoadDefersFault(t *testing.T) {
	// ld.s from an unmapped address must not fault; the NaT value is 0
	p := buildProg([]Instr{
		{Op: OpMovI, Rd: 0, Imm: 1 << 40}, // way out of range
		{Op: OpLdS, Rd: 1, Rs: 0},
		{Op: OpMovI, Rd: 1, Imm: 4}, // overwrite; NaT cleared
		{Op: OpRet, Rs: 1},
	}, 2, 4)
	res := run(t, p)
	if res.Ret != 4 {
		t.Errorf("ret = %d", res.Ret)
	}
	if res.Counters.SpecLoadFaults != 1 {
		t.Errorf("spec faults = %d, want 1", res.Counters.SpecLoadFaults)
	}
	// a plain load from the same address must fault
	p2 := buildProg([]Instr{
		{Op: OpMovI, Rd: 0, Imm: 1 << 40},
		{Op: OpLd, Rd: 1, Rs: 0},
		{Op: OpRet, Rs: 1},
	}, 2, 4)
	if _, err := Run(p2, nil, Defaults(), nil); err == nil {
		t.Error("plain load from invalid address must fault")
	}
}

func TestLdSAInsertsALATEntry(t *testing.T) {
	p := buildProg([]Instr{
		{Op: OpLEA, Rd: 0, Imm: 0},
		{Op: OpMovI, Rd: 1, Imm: 8},
		{Op: OpSt, Rd: 0, Rs: 1},
		{Op: OpLdSA, Rd: 2, Rs: 0},
		{Op: OpLdC, Rd: 2, Rs: 0},
		{Op: OpRet, Rs: 2},
	}, 3, 4)
	res := run(t, p)
	if res.Ret != 8 {
		t.Errorf("ret = %d", res.Ret)
	}
	if res.Counters.FailedChecks != 0 {
		t.Errorf("ld.sa must establish the ALAT entry: %+v", res.Counters)
	}
}

func TestCycleModel(t *testing.T) {
	cfg := Defaults()
	p := buildProg([]Instr{
		{Op: OpLEA, Rd: 0, Imm: 0},
		{Op: OpLd, Rd: 1, Rs: 0},  // IntLoadLat
		{Op: OpLdF, Rd: 2, Rs: 0}, // FPLoadLat
		{Op: OpRet, Rs: 1},
	}, 3, 4)
	res := run(t, p)
	want := int64(cfg.CallOverhead) + 1 /*lea*/ + int64(cfg.IntLoadLat) + int64(cfg.FPLoadLat) + 1 /*ret*/
	if res.Counters.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Counters.Cycles, want)
	}
	if res.Counters.DataAccessCycles != int64(cfg.IntLoadLat+cfg.FPLoadLat) {
		t.Errorf("data cycles = %d", res.Counters.DataAccessCycles)
	}
}

func TestBranchesAndCalls(t *testing.T) {
	p := &Program{
		Funcs: map[string]*FuncCode{
			"main": {Name: "main", NumRegs: 3, Instrs: []Instr{
				{Op: OpMovI, Rd: 0, Imm: 5},
				{Op: OpCall, Fn: "double", ArgRegs: []int{0}, Rd: 1},
				{Op: OpRet, Rs: 1},
			}},
			"double": {Name: "double", NumRegs: 2, NumParams: 1, Instrs: []Instr{
				{Op: OpAdd, Rd: 1, Rs: 0, Rt: 0},
				{Op: OpRet, Rs: 1},
			}},
		},
		GlobalInit: map[int]uint64{},
	}
	if res := run(t, p); res.Ret != 10 {
		t.Errorf("ret = %d, want 10", res.Ret)
	}
}

func TestDivByZeroFaults(t *testing.T) {
	p := buildProg([]Instr{
		{Op: OpMovI, Rd: 0, Imm: 1},
		{Op: OpMovI, Rd: 1, Imm: 0},
		{Op: OpDiv, Rd: 2, Rs: 0, Rt: 1},
		{Op: OpRet, Rs: 2},
	}, 3, 0)
	if _, err := Run(p, nil, Defaults(), nil); err == nil || !strings.Contains(err.Error(), "division") {
		t.Errorf("expected division fault, got %v", err)
	}
}

func TestRecursionFrameIsolation(t *testing.T) {
	// ALAT entries are frame-tagged: a callee's ld.a on the same register
	// number must not satisfy the caller's ld.c.
	p := &Program{
		Funcs: map[string]*FuncCode{
			"main": {Name: "main", NumRegs: 4, Instrs: []Instr{
				{Op: OpLEA, Rd: 0, Imm: 0},
				{Op: OpMovI, Rd: 1, Imm: 1},
				{Op: OpSt, Rd: 0, Rs: 1},
				{Op: OpCall, Fn: "inner", ArgRegs: nil, Rd: -1},
				{Op: OpLdC, Rd: 2, Rs: 0}, // no ld.a in THIS frame → miss
				{Op: OpRet, Rs: 2},
			}},
			"inner": {Name: "inner", NumRegs: 3, Instrs: []Instr{
				{Op: OpLEA, Rd: 0, Imm: 0},
				{Op: OpLdA, Rd: 2, Rs: 0}, // same reg number 2, different frame
				{Op: OpRet, Rs: -1},
			}},
		},
		GlobSize:   4,
		GlobalInit: map[int]uint64{},
	}
	res := run(t, p)
	if res.Counters.FailedChecks != 1 {
		t.Errorf("cross-frame ALAT hit: %+v", res.Counters)
	}
}

func TestStepLimit(t *testing.T) {
	cfg := Defaults()
	cfg.MaxSteps = 100
	p := buildProg([]Instr{
		{Op: OpBr, Target: 0},
	}, 1, 0)
	if _, err := Run(p, nil, cfg, nil); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("expected step limit, got %v", err)
	}
}

func TestPrintFormatting(t *testing.T) {
	p := buildProg([]Instr{
		{Op: OpMovI, Rd: 0, Imm: -7},
		{Op: OpMovI, Rd: 1, Imm: int64(f64bits(2.5))},
		{Op: OpPrint, ArgRegs: []int{0, 1}, FloatRs: []bool{false, true}},
		{Op: OpRet, Rs: -1},
	}, 2, 0)
	res := run(t, p)
	if res.Output != "-7 2.5\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func f64bits(f float64) uint64 { return math.Float64bits(f) }

// TestALUSemantics exercises every ALU opcode against Go's semantics.
func TestALUSemantics(t *testing.T) {
	iCases := []struct {
		op   Opcode
		a, b int64
		want int64
	}{
		{OpAdd, 7, -3, 4},
		{OpSub, 7, -3, 10},
		{OpMul, -6, 7, -42},
		{OpDiv, -7, 2, -3},
		{OpMod, -7, 2, -1},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 3, 4, 48},
		{OpShr, -16, 2, -4},
		{OpCmpEQ, 5, 5, 1},
		{OpCmpNE, 5, 5, 0},
		{OpCmpLT, -2, 1, 1},
		{OpCmpLE, 1, 1, 1},
		{OpCmpGT, 1, 2, 0},
		{OpCmpGE, 2, 2, 1},
	}
	for _, c := range iCases {
		p := buildProg([]Instr{
			{Op: OpMovI, Rd: 0, Imm: c.a},
			{Op: OpMovI, Rd: 1, Imm: c.b},
			{Op: c.op, Rd: 2, Rs: 0, Rt: 1},
			{Op: OpRet, Rs: 2},
		}, 3, 0)
		if res := run(t, p); res.Ret != c.want {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, c.a, c.b, res.Ret, c.want)
		}
	}

	fCases := []struct {
		op   Opcode
		a, b float64
		want float64
	}{
		{OpFAdd, 1.5, 2.25, 3.75},
		{OpFSub, 1.5, 2.25, -0.75},
		{OpFMul, 1.5, 2.0, 3.0},
		{OpFDiv, 7.0, 2.0, 3.5},
	}
	for _, c := range fCases {
		p := buildProg([]Instr{
			{Op: OpMovI, Rd: 0, Imm: int64(f64bits(c.a))},
			{Op: OpMovI, Rd: 1, Imm: int64(f64bits(c.b))},
			{Op: c.op, Rd: 2, Rs: 0, Rt: 1},
			{Op: OpF2I, Rd: 3, Rs: 2},
			{Op: OpPrint, ArgRegs: []int{2}, FloatRs: []bool{true}},
			{Op: OpRet, Rs: 3},
		}, 4, 0)
		res := run(t, p)
		want := fmt.Sprintf("%.6g\n", c.want)
		if res.Output != want {
			t.Errorf("%v(%g, %g): output %q, want %q", c.op, c.a, c.b, res.Output, want)
		}
	}

	fCmp := []struct {
		op   Opcode
		a, b float64
		want int64
	}{
		{OpFCmpEQ, 1.5, 1.5, 1},
		{OpFCmpNE, 1.5, 1.5, 0},
		{OpFCmpLT, 1.0, 1.5, 1},
		{OpFCmpLE, 1.5, 1.5, 1},
		{OpFCmpGT, 1.0, 1.5, 0},
		{OpFCmpGE, 1.5, 1.5, 1},
	}
	for _, c := range fCmp {
		p := buildProg([]Instr{
			{Op: OpMovI, Rd: 0, Imm: int64(f64bits(c.a))},
			{Op: OpMovI, Rd: 1, Imm: int64(f64bits(c.b))},
			{Op: c.op, Rd: 2, Rs: 0, Rt: 1},
			{Op: OpRet, Rs: 2},
		}, 3, 0)
		if res := run(t, p); res.Ret != c.want {
			t.Errorf("%v(%g, %g) = %d, want %d", c.op, c.a, c.b, res.Ret, c.want)
		}
	}
}

// TestUnaryAndConversions covers neg/not/i2f/f2i and fneg.
func TestUnaryAndConversions(t *testing.T) {
	p := buildProg([]Instr{
		{Op: OpMovI, Rd: 0, Imm: -9},
		{Op: OpNeg, Rd: 1, Rs: 0},  // 9
		{Op: OpNot, Rd: 2, Rs: 1},  // 0
		{Op: OpI2F, Rd: 3, Rs: 1},  // 9.0
		{Op: OpFNeg, Rd: 4, Rs: 3}, // -9.0
		{Op: OpF2I, Rd: 5, Rs: 4},  // -9
		{Op: OpPrint, ArgRegs: []int{1, 2, 3, 4, 5}, FloatRs: []bool{false, false, true, true, false}},
		{Op: OpRet, Rs: 5},
	}, 6, 0)
	res := run(t, p)
	if res.Output != "9 0 9 -9 -9\n" {
		t.Errorf("output = %q", res.Output)
	}
}

// TestMovPropagatesNaT: register moves carry the NaT bit.
func TestMovPropagatesNaT(t *testing.T) {
	p := buildProg([]Instr{
		{Op: OpMovI, Rd: 0, Imm: 1 << 40},
		{Op: OpLdS, Rd: 1, Rs: 0}, // NaT
		{Op: OpMov, Rd: 2, Rs: 1}, // NaT propagates
		{Op: OpLdS, Rd: 3, Rs: 2}, // NaT address → deferred again
		{Op: OpRet, Rs: 3},
	}, 4, 4)
	res := run(t, p)
	if res.Counters.SpecLoadFaults != 2 {
		t.Errorf("spec faults = %d, want 2 (NaT propagation through mov)", res.Counters.SpecLoadFaults)
	}
}
