package machine

import (
	"fmt"
)

// ReplayBatch re-times one recorded trace under every Config in cfgs,
// returning results index-aligned with cfgs. Each result is
// byte-identical to Replay(prog, t, cfgs[i], nil) — and therefore to
// direct execution — but the cost model is very different: all
// pipelined config points that can share a walk are re-timed in ONE
// pass over the trace, so a K-point grid pays for one instruction walk
// instead of K.
//
// Dispatch per config:
//
//   - serial model with limits at least as generous as the recorded
//     run's: the O(events) aggregate path (replaySerial), exactly as in
//     Replay;
//   - tightened MaxSteps/MaxCallDepth: a private per-config Replay,
//     because resource faults must fire at exactly the recorded step
//     with the same error, which a shared walk cannot reproduce for
//     configs that diverge mid-trace;
//   - pipelined with generous limits: collected into one batched walk.
//
// The batched walk keeps K scoreboards in struct-of-arrays layout — one
// ready-time lane per config per register, one clock per config — and
// advances all of them from a single shared instruction/branch-bit
// cursor. ALAT outcomes are deduplicated by capacity: table contents
// after any event prefix are a pure function of (event stream,
// capacity), so one event walk per DISTINCT ALATSize serves every
// config of that size — configs with different ALAT sizes cannot share
// one, since different capacities evict different entries. Those walks
// are the same per-capacity walks replaySerial memoizes on the trace
// (now extended with a per-check miss bitstream), so the instruction
// walk simulates no tables at all: each check event reads its
// precomputed outcome at a shared ordinal, and a sweep's serial half
// has typically prepaid the event walks entirely.
//
// Every Counters field except Cycles is identical across the pipelined
// walk and the serial aggregate formulas (the walk tallies the same
// class counts and the same capacity-determined check outcomes), so the
// batched walk computes only the per-config clocks and derives the rest
// from replaySerial. The differential tests pin this equivalence
// against both Replay and direct Run.
//
// Any config whose StackSlots differs from the trace's returns
// ErrTraceMismatch (wrapped) and aborts the whole batch, mirroring
// Replay; callers fall back to direct execution.
func ReplayBatch(prog *Program, t *Trace, cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	norm := make([]Config, len(cfgs))
	var batched []int // indices of pipelined configs for the shared walk
	for i, cfg := range cfgs {
		cfg = cfg.withDefaults()
		norm[i] = cfg
		if cfg.StackSlots != t.StackSlots {
			return nil, fmt.Errorf("%w: recorded with %d stack slots, config has %d",
				ErrTraceMismatch, t.StackSlots, cfg.StackSlots)
		}
		switch {
		case cfg.MaxSteps < t.Steps || cfg.MaxCallDepth < t.MaxDepth:
			// tightened limits: exact fault parity needs a private walk
			res, err := Replay(prog, t, cfg, nil)
			if err != nil {
				return nil, err
			}
			results[i] = res
		case !cfg.Pipelined:
			results[i] = &Result{Ret: t.Ret, Output: t.Output, Counters: replaySerial(t, cfg), PerFunc: t.perFuncAt(cfg.ALATSize)}
		default:
			batched = append(batched, i)
		}
	}
	if len(batched) == 0 {
		return results, nil
	}

	bcfgs := make([]Config, len(batched))
	for j, i := range batched {
		bcfgs[j] = norm[i]
	}
	clocks, err := batchWalk(prog, t, bcfgs)
	if err != nil {
		return nil, err
	}
	for j, i := range batched {
		ctr := replaySerial(t, norm[i])
		ctr.Cycles = clocks[j]
		results[i] = &Result{Ret: t.Ret, Output: t.Output, Counters: ctr, PerFunc: t.perFuncAt(norm[i].ALATSize)}
	}
	return results, nil
}

// batchFrame is one activation on the batched walker's call stack. The
// scoreboard holds K lanes per register, register-major: lane k of
// register r is ready[r*K+k], so the inner per-config loop of one
// register walks contiguous memory.
type batchFrame struct {
	f       *FuncCode
	pc      int
	frameID int64
	base    int
	ready   []int64
}

// batchWalker carries the shared cursors and the per-config timing
// lanes of one batched pipelined walk.
type batchWalker struct {
	prog *Program
	bits bitReader
	k    int // number of configs (lanes)

	// per-lane latency tables, precomputed from the configs
	latUnit    []int64 // all ones; the default class
	latIntMul  []int64
	latIntDiv  []int64
	latFPArith []int64
	latFPDiv   []int64
	latIntLoad []int64
	latFPLoad  []int64
	latCheck   []int64 // scratch: per-lane check latency, filled per event
	latStore   []int64
	latFence   []int64
	callOv     []int64

	// ALAT outcomes, deduplicated by capacity: one memoized summary
	// (with its per-check miss bitstream) per distinct ALATSize. The
	// walk never simulates a table — it reads each check's precomputed
	// outcome at the shared check ordinal.
	sums     []alatSummary
	cfgAlat  []int  // lane -> index into sums
	hit      []bool // scratch: per-distinct-size outcome of one check
	checkOrd int64  // ordinal of the next check event
	nChecks  int64  // total recorded check events

	clocks []int64 // per-lane pipeline clock
	issue  []int64 // scratch: per-lane issue time of the current instruction

	frames   []batchFrame
	stackTop int
	heapBase int
	frameID  int64
}

// batchWalk runs the shared pipelined walk for cfgs (all pipelined,
// all with generous limits, all matching the trace's StackSlots) and
// returns the final per-config clocks.
func batchWalk(prog *Program, t *Trace, cfgs []Config) ([]int64, error) {
	k := len(cfgs)
	w := &batchWalker{
		prog: prog,
		bits: bitReader{t: &t.bits},
		k:    k,

		latUnit:    make([]int64, k),
		latIntMul:  make([]int64, k),
		latIntDiv:  make([]int64, k),
		latFPArith: make([]int64, k),
		latFPDiv:   make([]int64, k),
		latIntLoad: make([]int64, k),
		latFPLoad:  make([]int64, k),
		latCheck:   make([]int64, k),
		latStore:   make([]int64, k),
		latFence:   make([]int64, k),
		callOv:     make([]int64, k),

		cfgAlat: make([]int, k),
		clocks:  make([]int64, k),
		issue:   make([]int64, k),
	}
	sizeIdx := map[int]int{}
	for i, cfg := range cfgs {
		w.latUnit[i] = 1
		w.latIntMul[i] = int64(cfg.IntMulLat)
		w.latIntDiv[i] = int64(cfg.IntDivLat)
		w.latFPArith[i] = int64(cfg.FPArithLat)
		w.latFPDiv[i] = int64(cfg.FPDivLat)
		w.latIntLoad[i] = int64(cfg.IntLoadLat)
		w.latFPLoad[i] = int64(cfg.FPLoadLat)
		w.latStore[i] = int64(cfg.StoreLat)
		w.latFence[i] = int64(cfg.FenceLat)
		w.callOv[i] = int64(cfg.CallOverhead)
		si, ok := sizeIdx[cfg.ALATSize]
		if !ok {
			si = len(w.sums)
			sizeIdx[cfg.ALATSize] = si
			// memoized on the trace: a sweep's serial half (or a prior
			// batch) has usually already paid for this walk
			w.sums = append(w.sums, t.alatWalk(cfg.ALATSize))
		}
		w.cfgAlat[i] = si
	}
	w.hit = make([]bool, len(w.sums))
	w.nChecks = t.counts[cCheckInt] + t.counts[cCheckFP]
	w.stackTop = prog.GlobSize
	w.heapBase = prog.GlobSize + cfgs[0].StackSlots
	mainFn, ok := prog.Funcs["main"]
	if !ok {
		return nil, fmt.Errorf("machine: no main function")
	}
	if err := w.push(mainFn); err != nil {
		return nil, err
	}
	if err := w.walk(cfgs); err != nil {
		return nil, err
	}
	return w.clocks, nil
}

// push enters an activation in every lane at once: each lane charges
// its own call overhead and initializes its scoreboard lanes to its own
// clock, exactly as the single-config replayer does.
func (w *batchWalker) push(f *FuncCode) error {
	if w.stackTop+f.FrameSize > w.heapBase {
		return fmt.Errorf("machine: stack overflow in %s", f.Name)
	}
	w.frameID++
	fr := batchFrame{f: f, frameID: w.frameID, base: w.stackTop}
	w.stackTop += f.FrameSize
	k := w.k
	for i := 0; i < k; i++ {
		w.clocks[i] += w.callOv[i]
	}
	fr.ready = make([]int64, f.NumRegs*k)
	for r := 0; r < f.NumRegs; r++ {
		copy(fr.ready[r*k:(r+1)*k], w.clocks)
	}
	w.frames = append(w.frames, fr)
	return nil
}

// issueTimes fills w.issue with the per-lane issue time of ins: the
// lane's clock maxed with the lane's ready times of the instruction's
// source registers. Same register set as issueTime; the opcode switch
// runs once and the per-lane loops walk contiguous scoreboard lanes.
func (w *batchWalker) issueTimes(ins *Instr, ready []int64) {
	k := w.k
	issue := w.issue
	copy(issue, w.clocks)
	maxReg := func(reg int) {
		lanes := ready[reg*k : (reg+1)*k]
		for i, v := range lanes {
			if v > issue[i] {
				issue[i] = v
			}
		}
	}
	switch ins.Op {
	case OpMovI, OpLEA, OpNop, OpHalt, OpBr:
	case OpFence:
		// scoreboard drain: every register's lanes gate the issue time
		for reg := 0; reg < len(ready)/k; reg++ {
			maxReg(reg)
		}
	case OpSt, OpStF:
		maxReg(ins.Rd) // address
		maxReg(ins.Rs) // value
	case OpLdC, OpLdFC:
		maxReg(ins.Rs) // address
		maxReg(ins.Rd) // value being validated
	case OpCall, OpPrint:
		for _, reg := range ins.ArgRegs {
			maxReg(reg)
		}
	case OpBeqz, OpBnez, OpArg, OpRet:
		if ins.Rs >= 0 {
			maxReg(ins.Rs)
		}
	case OpMov, OpNeg, OpNot, OpI2F, OpF2I, OpFNeg,
		OpLd, OpLdF, OpLdA, OpLdFA, OpLdS, OpLdFS, OpLdSA, OpLdFSA, OpAlloc:
		maxReg(ins.Rs)
	default: // three-register ALU
		maxReg(ins.Rs)
		maxReg(ins.Rt)
	}
}

func (w *batchWalker) nextBit() (bool, error) {
	bit, ok := w.bits.next()
	if !ok {
		return false, errTraceUnderrun
	}
	return bit, nil
}

// nextCheck returns the per-distinct-size hit/miss outcomes of the next
// check event in w.hit, reading the memoized miss bitstreams at the
// shared check ordinal. Checks occur in the same program order in the
// instruction walk and in the recorded event stream, so one ordinal
// serves every capacity.
func (w *batchWalker) nextCheck() error {
	ord := w.checkOrd
	if ord >= w.nChecks {
		return errTraceUnderrun
	}
	w.checkOrd++
	for si := range w.sums {
		w.hit[si] = !w.sums[si].miss(ord)
	}
	return nil
}

// walk is the shared instruction walk: one opcode dispatch, one
// branch-bit/ALAT-event consumption, then a per-lane inner loop that
// advances each config's clock and scoreboard. It mirrors the
// single-config replayer walk (which mirrors the interpreter loop);
// the differential tests pin all three together.
func (w *batchWalker) walk(cfgs []Config) error {
	k := w.k
	clocks := w.clocks
	issue := w.issue
	for {
		fr := &w.frames[len(w.frames)-1]
		f := fr.f
		if fr.pc < 0 || fr.pc >= len(f.Instrs) {
			return fmt.Errorf("machine: pc out of range in %s", f.Name)
		}
		ins := &f.Instrs[fr.pc]
		w.issueTimes(ins, fr.ready)
		lats := w.latUnit
		switch ins.Op {
		case OpMul:
			lats = w.latIntMul
		case OpDiv, OpMod:
			lats = w.latIntDiv
		case OpFAdd, OpFSub, OpFMul, OpFNeg:
			lats = w.latFPArith
		case OpFDiv:
			lats = w.latFPDiv
		case OpFence:
			lats = w.latFence

		case OpLd, OpLdF, OpLdA, OpLdFA:
			// advanced-load ALAT inserts are part of the memoized event
			// walk; the batched walk charges only the load latency
			if ins.Op == OpLdF || ins.Op == OpLdFA {
				lats = w.latFPLoad
			} else {
				lats = w.latIntLoad
			}

		case OpLdC, OpLdFC:
			if err := w.nextCheck(); err != nil {
				return err
			}
			loadLat := w.latIntLoad
			if ins.Op == OpLdFC {
				loadLat = w.latFPLoad
			}
			for i := 0; i < k; i++ {
				if w.hit[w.cfgAlat[i]] {
					w.latCheck[i] = int64(cfgs[i].CheckHitLat)
				} else {
					w.latCheck[i] = loadLat[i] + int64(cfgs[i].CheckMissPen)
				}
			}
			lats = w.latCheck

		case OpLdS, OpLdFS, OpLdSA, OpLdFSA:
			// the deferred bit must still be consumed to keep the shared
			// bit cursor aligned with branch directions; the ALAT insert
			// it gates lives in the memoized event walk
			if _, err := w.nextBit(); err != nil {
				return err
			}
			if ins.Op == OpLdFS || ins.Op == OpLdFSA {
				lats = w.latFPLoad
			} else {
				lats = w.latIntLoad
			}

		case OpSt, OpStF:
			lats = w.latStore

		case OpBr:
			for i := 0; i < k; i++ {
				clocks[i] = issue[i] + 1
			}
			fr.pc = ins.Target
			continue

		case OpBeqz, OpBnez:
			taken, err := w.nextBit()
			if err != nil {
				return err
			}
			for i := 0; i < k; i++ {
				clocks[i] = issue[i] + 1
			}
			if taken {
				fr.pc = ins.Target
			} else {
				fr.pc++
			}
			continue

		case OpCall:
			callee, ok := w.prog.Funcs[ins.Fn]
			if !ok {
				return fmt.Errorf("machine: call to unknown function %q", ins.Fn)
			}
			for i := 0; i < k; i++ {
				clocks[i] = issue[i] + 1
			}
			fr.pc++ // resume point after the callee returns
			if err := w.push(callee); err != nil {
				return err
			}
			continue

		case OpRet, OpHalt:
			if ins.Op == OpRet {
				for i := 0; i < k; i++ {
					clocks[i] = issue[i] + 1
				}
			}
			w.stackTop = fr.base
			w.frames = w.frames[:len(w.frames)-1]
			if len(w.frames) == 0 {
				return nil
			}
			caller := &w.frames[len(w.frames)-1]
			// caller.pc was advanced past its call instruction
			callIns := &caller.f.Instrs[caller.pc-1]
			if callIns.Rd >= 0 {
				copy(caller.ready[callIns.Rd*k:(callIns.Rd+1)*k], clocks)
			}
			continue
		}
		// common retirement: advance each lane's clock and publish the
		// destination's ready time — the exact common exit of the
		// single-config walk, once per lane
		if d := instrDst(ins); d >= 0 {
			lanes := fr.ready[d*k : (d+1)*k]
			for i := 0; i < k; i++ {
				lanes[i] = issue[i] + lats[i]
				clocks[i] = issue[i] + 1
			}
		} else {
			for i := 0; i < k; i++ {
				clocks[i] = issue[i] + 1
			}
		}
		fr.pc++
	}
}
