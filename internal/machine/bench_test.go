package machine

import (
	"fmt"
	"testing"
)

// BenchmarkALATStoreInvalidate exercises the simulator's hottest ALAT
// path: every dynamic store consults the table. The address-indexed
// implementation is O(1) per store regardless of capacity — the series
// across sizes should be flat (the old linear scan grew with size).
func BenchmarkALATStoreInvalidate(b *testing.B) {
	for _, size := range []int{8, 32, 512} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			a := newALAT(size)
			for i := 0; i < size; i++ {
				a.insert(1, i, 10_000+i) // fill with non-conflicting addresses
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.invalidate(i & 1023) // miss: the common no-conflict store
			}
		})
	}
}

// BenchmarkALATInsertCheck measures the ld.a → ld.c round trip,
// including capacity evictions when the working set exceeds the table.
func BenchmarkALATInsertCheck(b *testing.B) {
	for _, size := range []int{8, 512} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			a := newALAT(size)
			for i := 0; i < b.N; i++ {
				reg := i & 63 // 64-register working set
				a.insert(1, reg, 10_000+reg)
				if !a.check(1, reg, 10_000+reg) {
					b.Fatal("freshly inserted entry must hit")
				}
			}
		})
	}
}

// BenchmarkRecordVsRunVsReplay compares the three engine modes on the
// same program: plain functional execution, execution with trace
// recording, and a pure trace re-timing.
func BenchmarkRecordVsRunVsReplay(b *testing.B) {
	tc := replayPrograms()["alatLoop"]
	b.Run("run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(tc.p, tc.args, Config{}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Record(tc.p, tc.args, Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	tr, err := Record(tc.p, tc.args, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Replay(tc.p, tr, Config{}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay_pipelined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Replay(tc.p, tr, Config{Pipelined: true}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	// eight pipelined latency points in one walk vs eight walks: the
	// per-point cost of the batch should approach 1/8th of a single
	// pipelined replay plus the lane overhead
	grid := make([]Config, 8)
	for i := range grid {
		grid[i] = Config{Pipelined: true, IntLoadLat: 2 + i, FPLoadLat: 9 + i}
	}
	b.Run("replay_pipelined_x8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range grid {
				if _, err := Replay(tc.p, tr, cfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("replay_batch_x8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReplayBatch(tc.p, tr, grid); err != nil {
				b.Fatal(err)
			}
		}
	})
}
