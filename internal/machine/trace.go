package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// This file implements the recorded architectural trace that splits the
// simulator into a functional engine and a timing engine. One
// functional run (Record) captures everything timing depends on but
// interpretation produces: conditional-branch directions,
// speculative-load fault bits, the ALAT event stream (advanced-load
// inserts, check loads, store invalidations — each with its owning
// activation, register, and address), and per-latency-class retirement
// counts. A Replay walk (replay.go) then re-times the trace under any
// Config — serial or pipelined, any latencies, any ALAT size — without
// a register file or memory image, so an N-config sensitivity sweep
// costs one functional run plus N cheap re-timings.
//
// Under the serial model the re-timing is O(ALAT events), not
// O(instructions): serial cycles are a linear function of the class
// counts plus the per-check hit/miss outcomes, so the replayer walks
// only the (much shorter) ALAT event stream. The pipelined scoreboard
// genuinely depends on per-instruction operand availability, so that
// model replays the full instruction walk, driven by the branch bits.
//
// The trace deliberately does not record check-load hits or ALAT
// evictions: both depend on Config.ALATSize, so the replayer
// re-simulates ALAT contents from the recorded event stream with the
// same alat implementation the functional engine uses. What makes this
// sound is a well-formedness obligation on the code (which the code
// generator upholds and the differential tests check): the register of
// a check load still holds its advanced load's value when the check
// executes. Then a check's architectural effect is the same whether it
// hits or misses — the register ends up equal to memory — and only the
// timing differs, which is exactly what the replayer recomputes.
//
// Streams are append-only and chunked so recording never re-copies a
// growing flat slice and a finished trace can be shared read-only by
// any number of concurrent replays.

// bitChunkWords is the size of one bitstream chunk in 64-bit words
// (32 KiB of bits per chunk).
const bitChunkWords = 1 << 12

// opChunkLen is the number of ALAT events per chunk.
const opChunkLen = 1 << 12

// bitChunks is an append-only chunked bitstream.
type bitChunks struct {
	chunks [][]uint64
	n      int64 // bits appended
}

func (b *bitChunks) append(bit bool) {
	word := int(b.n >> 6)
	ci := word / bitChunkWords
	if ci == len(b.chunks) {
		b.chunks = append(b.chunks, make([]uint64, bitChunkWords))
	}
	if bit {
		b.chunks[ci][word%bitChunkWords] |= 1 << uint(b.n&63)
	}
	b.n++
}

// bitReader is one replay's private cursor over a bitChunks stream.
type bitReader struct {
	t   *bitChunks
	pos int64
}

func (r *bitReader) next() (bit, ok bool) {
	if r.pos >= r.t.n {
		return false, false
	}
	word := int(r.pos >> 6)
	bit = r.t.chunks[word/bitChunkWords][word%bitChunkWords]&(1<<uint(r.pos&63)) != 0
	r.pos++
	return bit, true
}

// ALAT event kinds, in the recorded stream's program order.
const (
	opInsert   uint8 = iota // ld.a / ldf.a / non-deferred ld.sa / ldf.sa
	opCheckInt              // ld.c
	opCheckFP               // ldf.c
	opInval                 // st / stf (conflicting-store invalidation)
)

// alatOp is one recorded ALAT-relevant event. The owning activation and
// register are part of the event because ALAT entries are keyed by
// (frameID, reg): the serial fast path re-simulates table contents under
// any capacity from these fields alone, never touching the instruction
// stream.
type alatOp struct {
	frameID int64
	addr    int64
	reg     int32
	fn      int32 // index into Trace.FnNames (per-function attribution)
	kind    uint8
}

// opChunks is an append-only chunked ALAT-event stream in columnar
// (struct-of-arrays) layout: each event field lives in its own parallel
// chunk array. The ALAT re-simulation walks kinds/regs/frames/addrs as
// four contiguous streams instead of striding over a 24-byte struct, so
// both the memoized serial walk and the batched replay stay in cache.
type opChunks struct {
	kinds  [][]uint8
	regs   [][]int32
	frames [][]int64
	addrs  [][]int64
	fns    [][]int32
	n      int64
}

func (a *opChunks) append(op alatOp) {
	ci := int(a.n) / opChunkLen
	if ci == len(a.kinds) {
		a.kinds = append(a.kinds, make([]uint8, 0, opChunkLen))
		a.regs = append(a.regs, make([]int32, 0, opChunkLen))
		a.frames = append(a.frames, make([]int64, 0, opChunkLen))
		a.addrs = append(a.addrs, make([]int64, 0, opChunkLen))
		a.fns = append(a.fns, make([]int32, 0, opChunkLen))
	}
	a.kinds[ci] = append(a.kinds[ci], op.kind)
	a.regs[ci] = append(a.regs[ci], op.reg)
	a.frames[ci] = append(a.frames[ci], op.frameID)
	a.addrs[ci] = append(a.addrs[ci], op.addr)
	a.fns[ci] = append(a.fns[ci], op.fn)
	a.n++
}

// opReader is one replay's private cursor over an opChunks stream. It
// caches the current chunk's column slices so the per-event hot path is
// four contiguous indexed loads, re-sliced only at chunk boundaries.
type opReader struct {
	t      *opChunks
	pos    int64
	chunk  int // cached chunk index; -1 before first read
	kinds  []uint8
	regs   []int32
	frames []int64
	addrs  []int64
	fns    []int32
}

func (r *opReader) next() (op alatOp, ok bool) {
	if r.pos >= r.t.n {
		return alatOp{}, false
	}
	ci, off := int(r.pos)/opChunkLen, int(r.pos)%opChunkLen
	if r.kinds == nil || ci != r.chunk {
		r.chunk = ci
		r.kinds = r.t.kinds[ci]
		r.regs = r.t.regs[ci]
		r.frames = r.t.frames[ci]
		r.addrs = r.t.addrs[ci]
		r.fns = r.t.fns[ci]
	}
	op = alatOp{
		kind:    r.kinds[off],
		reg:     r.regs[off],
		frameID: r.frames[off],
		addr:    r.addrs[off],
		fn:      r.fns[off],
	}
	r.pos++
	return op, true
}

// Instruction latency classes counted during recording. Every retired
// instruction outside these classes has unit latency (cHalt retires for
// free), so serial cycles are a linear function of the counts and the
// check outcomes. cSpec/cSpecFault/cAdv are statistics classes that
// overlap the load classes (a retired ld.sa is both cIntLoad for timing
// and cSpec/cAdv for the counters).
const (
	cMul = iota
	cDivMod
	cFPArith
	cFPDiv
	cIntLoad // ld, ld.a, ld.s, ld.sa (checks counted separately)
	cFPLoad  // ldf, ldf.a, ldf.s, ldf.sa
	cCheckInt
	cCheckFP
	cStore
	cHalt
	cSpec      // speculative loads retired
	cSpecFault // deferred speculative faults
	cAdv       // advanced loads retired (ALAT inserts)
	cFence     // speculation barriers (OpFence)
	cNumClasses
)

// Trace is the recorded architectural event stream of one (program,
// input) execution, plus the run's architectural outputs. A finished
// Trace is immutable and safe for concurrent Replay walks.
type Trace struct {
	bits bitChunks // branch directions and spec-load fault bits, in order
	ops  opChunks  // ALAT events (inserts, checks, invalidations), in order

	// alatMemo caches per-ALATSize event-walk summaries (alatSummary):
	// the walk's outcome is a pure function of (trace, capacity), so a
	// latency sweep at a fixed ALAT size pays for one walk. Concurrent
	// replays may race to fill an entry; they compute the same value.
	alatMemo sync.Map // int (ALATSize) -> alatSummary

	// counts are per-latency-class retirement counts (the c* constants);
	// they make serial re-timing independent of the instruction stream's
	// length.
	counts [cNumClasses]int64

	// Steps is the dynamic step count of the recorded run (one per
	// retired instruction); Replay reproduces step-limit faults from it.
	Steps int64
	// MaxDepth is the deepest call nesting the run reached.
	MaxDepth int
	// Frames is the total number of activations entered (including
	// main); each is charged Config.CallOverhead.
	Frames int64
	// StackSlots is the (normalized) Config.StackSlots the trace was
	// recorded under. Replay requires an identical value: the stack size
	// determines concrete addresses, so re-timing under a different
	// memory layout would not correspond to any direct execution.
	StackSlots int
	// Ret and Output are the architectural results of the run.
	Ret    int64
	Output string

	// FnNames is the function-name table for per-function attribution:
	// every recorded ALAT event carries a compact index into it. Order
	// is first-touch during recording and preserved by Marshal, so a
	// round-tripped trace replays to identical per-function counters.
	FnNames []string
	// fnIDs is the recording-side inverse of FnNames, keyed by code
	// pointer. Only the single-threaded functional engine touches it.
	fnIDs map[*FuncCode]int32
}

// fnID interns f into the trace's function-name table.
func (t *Trace) fnID(f *FuncCode) int32 {
	if id, ok := t.fnIDs[f]; ok {
		return id
	}
	if t.fnIDs == nil {
		t.fnIDs = make(map[*FuncCode]int32)
	}
	id := int32(len(t.FnNames))
	t.FnNames = append(t.FnNames, f.Name)
	t.fnIDs[f] = id
	return id
}

// Events reports the number of recorded events (bits plus ALAT ops),
// a size proxy for tests and observability.
func (t *Trace) Events() int64 { return t.bits.n + t.ops.n }

// Bytes reports the in-memory footprint of the trace's event streams:
// allocated chunks times chunk size, for the bitstream and each ALAT
// event column, plus the retained output string. It is an accounting
// figure for cache budgeting (the specd_trace_bytes gauge), not an
// exact heap measurement.
func (t *Trace) Bytes() int64 {
	b := int64(len(t.bits.chunks)) * bitChunkWords * 8
	b += int64(len(t.ops.kinds)) * opChunkLen * 1
	b += int64(len(t.ops.regs)) * opChunkLen * 4
	b += int64(len(t.ops.frames)) * opChunkLen * 8
	b += int64(len(t.ops.addrs)) * opChunkLen * 8
	b += int64(len(t.ops.fns)) * opChunkLen * 4
	for _, name := range t.FnNames {
		b += int64(len(name))
	}
	return b + int64(len(t.Output))
}

// Record executes prog functionally under cfg (latency fields are
// irrelevant; limits and StackSlots are honoured) and returns the
// architectural trace. A run that faults returns the same error direct
// execution would, and no trace.
func Record(prog *Program, args []int64, cfg Config) (*Trace, error) {
	// timing is recomputed per replay; force the cheap serial model so
	// recording never pays for the scoreboard
	cfg = cfg.withDefaults()
	cfg.Pipelined = false
	_, tr, err := execute(prog, args, cfg, nil, &Trace{})
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// traceMagic stamps the serialized form; the version is bumped whenever
// the stream layout or the event set changes (v2 added event kinds,
// activation/register fields, and the latency-class counts; v3 added
// the function-name table and a per-event function index for
// per-function counter attribution; v4 added the fence latency class —
// the counts are serialized by index, so the class set is part of the
// format).
const traceMagic = "reprotrace v4"

// Marshal serializes the trace for spilling through internal/cache
// (ALAT events are varint-encoded with activation ids delta-coded; the
// bitstream is stored raw).
func (t *Trace) Marshal() []byte {
	buf := make([]byte, 0, 128+len(t.Output)+int(t.bits.n/8)+int(t.ops.n)*5)
	buf = append(buf, traceMagic...)
	buf = binary.AppendUvarint(buf, uint64(t.Steps))
	buf = binary.AppendUvarint(buf, uint64(t.MaxDepth))
	buf = binary.AppendUvarint(buf, uint64(t.Frames))
	buf = binary.AppendUvarint(buf, uint64(t.StackSlots))
	buf = binary.AppendVarint(buf, t.Ret)
	for _, c := range t.counts {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.Output)))
	buf = append(buf, t.Output...)
	buf = binary.AppendUvarint(buf, uint64(len(t.FnNames)))
	for _, name := range t.FnNames {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	buf = binary.AppendUvarint(buf, uint64(t.bits.n))
	words := int((t.bits.n + 63) / 64)
	var w8 [8]byte
	for i := 0; i < words; i++ {
		binary.LittleEndian.PutUint64(w8[:], t.bits.chunks[i/bitChunkWords][i%bitChunkWords])
		buf = append(buf, w8[:]...)
	}
	buf = binary.AppendUvarint(buf, uint64(t.ops.n))
	r := opReader{t: &t.ops}
	var prevFrame int64
	for {
		op, ok := r.next()
		if !ok {
			break
		}
		buf = append(buf, op.kind)
		buf = binary.AppendUvarint(buf, uint64(op.reg))
		buf = binary.AppendVarint(buf, op.frameID-prevFrame)
		prevFrame = op.frameID
		buf = binary.AppendVarint(buf, op.addr)
		buf = binary.AppendUvarint(buf, uint64(op.fn))
	}
	return buf
}

// UnmarshalTrace reverses Marshal. Corrupt input returns an error (the
// cache layer treats that as a miss and re-records).
func UnmarshalTrace(data []byte) (*Trace, error) {
	bad := func(what string) (*Trace, error) {
		return nil, fmt.Errorf("machine: corrupt trace: %s", what)
	}
	if len(data) < len(traceMagic) || string(data[:len(traceMagic)]) != traceMagic {
		return bad("bad magic")
	}
	data = data[len(traceMagic):]
	uvar := func() (uint64, bool) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, false
		}
		data = data[n:]
		return v, true
	}
	ivar := func() (int64, bool) {
		v, n := binary.Varint(data)
		if n <= 0 {
			return 0, false
		}
		data = data[n:]
		return v, true
	}
	t := &Trace{}
	hdr := []struct {
		what string
		dst  func(uint64)
	}{
		{"steps", func(v uint64) { t.Steps = int64(v) }},
		{"depth", func(v uint64) { t.MaxDepth = int(v) }},
		{"frames", func(v uint64) { t.Frames = int64(v) }},
		{"stack slots", func(v uint64) { t.StackSlots = int(v) }},
	}
	for _, f := range hdr {
		v, ok := uvar()
		if !ok {
			return bad(f.what)
		}
		f.dst(v)
	}
	ret, ok := ivar()
	if !ok {
		return bad("ret")
	}
	t.Ret = ret
	for i := range t.counts {
		v, ok := uvar()
		if !ok {
			return bad("class counts")
		}
		t.counts[i] = int64(v)
	}
	outLen, ok := uvar()
	if !ok || uint64(len(data)) < outLen {
		return bad("output")
	}
	t.Output = string(data[:outLen])
	data = data[outLen:]
	nFns, ok := uvar()
	if !ok {
		return bad("fn count")
	}
	for i := uint64(0); i < nFns; i++ {
		nameLen, ok := uvar()
		if !ok || uint64(len(data)) < nameLen {
			return bad("fn name")
		}
		t.FnNames = append(t.FnNames, string(data[:nameLen]))
		data = data[nameLen:]
	}
	nbits, ok := uvar()
	if !ok {
		return bad("bit count")
	}
	words := int((nbits + 63) / 64)
	if len(data) < words*8 {
		return bad("bit words")
	}
	t.bits.n = int64(nbits)
	for i := 0; i < words; i++ {
		if i%bitChunkWords == 0 {
			t.bits.chunks = append(t.bits.chunks, make([]uint64, bitChunkWords))
		}
		t.bits.chunks[i/bitChunkWords][i%bitChunkWords] = binary.LittleEndian.Uint64(data[i*8:])
	}
	data = data[words*8:]
	nops, ok := uvar()
	if !ok {
		return bad("op count")
	}
	var prevFrame int64
	for i := uint64(0); i < nops; i++ {
		if len(data) == 0 {
			return bad("op kind")
		}
		kind := data[0]
		if kind > opInval {
			return bad("op kind")
		}
		data = data[1:]
		reg, ok := uvar()
		if !ok {
			return bad("op reg")
		}
		dframe, ok := ivar()
		if !ok {
			return bad("op frame")
		}
		prevFrame += dframe
		addr, ok := ivar()
		if !ok {
			return bad("op addr")
		}
		fn, ok := uvar()
		if !ok || fn >= uint64(len(t.FnNames)) {
			return bad("op fn")
		}
		t.ops.append(alatOp{kind: kind, reg: int32(reg), frameID: prevFrame, addr: addr, fn: int32(fn)})
	}
	return t, nil
}

// Fingerprint is a content hash of the compiled program (code, global
// layout, and initial data), suitable for keying recorded traces: two
// programs with equal fingerprints execute identically on equal inputs.
func (p *Program) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "globsize %d\n", p.GlobSize)
	addrs := make([]int, 0, len(p.GlobalInit))
	for a := range p.GlobalInit {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	for _, a := range addrs {
		fmt.Fprintf(h, "init %d %d\n", a, p.GlobalInit[a])
	}
	h.Write([]byte(p.String()))
	var fp [sha256.Size]byte
	h.Sum(fp[:0])
	return fp
}
