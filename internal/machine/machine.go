// Package machine implements the EPIC-style virtual machine the framework
// targets: an in-order execution engine with the IA-64 data-speculation
// primitives the paper relies on — advanced loads (ld.a) that allocate
// entries in an Advanced Load Address Table (ALAT), check loads (ld.c)
// that are free when the entry survives and re-execute the load when a
// conflicting store (or capacity eviction) invalidated it, and control-
// speculative loads (ld.s) that defer faults. The cycle model follows the
// paper's Itanium numbers: integer loads 2 cycles (L1 hit), floating-point
// loads 9 cycles (they fetch from L2), successful checks 0 cycles.
package machine

import (
	"fmt"
	"sort"
)

// Opcode enumerates VM instructions.
type Opcode int

const (
	OpNop Opcode = iota
	// data movement
	OpMovI // rd <- imm (64-bit pattern)
	OpMov  // rd <- rs
	OpLEA  // rd <- globalAddr or frameBase + off
	// integer ALU
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot
	// float ALU (registers hold raw float64 bits)
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	// comparisons (int result 0/1)
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE
	// conversions
	OpI2F
	OpF2I
	// memory
	OpLd  // rd <- mem[rs]        (int latency)
	OpLdF // rd <- mem[rs]        (fp latency)
	OpLdA // advanced load: ld + ALAT allocate
	OpLdFA
	OpLdC // check load: free on ALAT hit, reload on miss
	OpLdFC
	OpLdS // control-speculative load: deferred fault (NaT on bad address)
	OpLdFS
	OpLdSA // speculative advanced load (ld.sa): deferred fault + ALAT entry
	OpLdFSA
	OpSt // mem[rd] <- rs        (invalidates ALAT entries)
	OpStF
	OpAlloc // rd <- heap allocation of rs slots
	// control
	OpBr    // unconditional branch to Target
	OpBeqz  // branch to Target if rs == 0
	OpBnez  // branch to Target if rs != 0
	OpCall  // call function Fn, args in ArgRegs, result to rd
	OpRet   // return (optional value in rs)
	OpPrint // print operands
	OpArg   // rd <- host argument rs
	OpHalt
	// OpFence is a speculation barrier: architecturally a no-op (it does
	// not touch memory or the ALAT), but under the pipelined model it
	// drains the scoreboard — no later instruction issues until every
	// in-flight result has retired — and under the serial model it costs
	// Config.FenceLat cycles. The hardening pass (internal/harden)
	// inserts it in front of speculative-leak sinks.
	OpFence
)

var opNames = map[Opcode]string{
	OpNop: "nop", OpMovI: "movi", OpMov: "mov", OpLEA: "lea",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpNeg: "neg", OpNot: "not",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpCmpEQ: "cmp.eq", OpCmpNE: "cmp.ne", OpCmpLT: "cmp.lt", OpCmpLE: "cmp.le",
	OpCmpGT: "cmp.gt", OpCmpGE: "cmp.ge",
	OpFCmpEQ: "fcmp.eq", OpFCmpNE: "fcmp.ne", OpFCmpLT: "fcmp.lt",
	OpFCmpLE: "fcmp.le", OpFCmpGT: "fcmp.gt", OpFCmpGE: "fcmp.ge",
	OpI2F: "i2f", OpF2I: "f2i",
	OpLd: "ld", OpLdF: "ldf", OpLdA: "ld.a", OpLdFA: "ldf.a",
	OpLdC: "ld.c", OpLdFC: "ldf.c", OpLdS: "ld.s", OpLdFS: "ldf.s",
	OpLdSA: "ld.sa", OpLdFSA: "ldf.sa",
	OpSt: "st", OpStF: "stf", OpAlloc: "alloc",
	OpBr: "br", OpBeqz: "beqz", OpBnez: "bnez", OpCall: "call",
	OpRet: "ret", OpPrint: "print", OpArg: "arg", OpHalt: "halt",
	OpFence: "fence",
}

func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one VM instruction. Rd/Rs/Rt are virtual register numbers
// within the owning function's register file; Imm carries immediates,
// global addresses and frame offsets.
type Instr struct {
	Op      Opcode
	Rd      int
	Rs      int
	Rt      int
	Imm     int64
	Target  int    // branch target (instruction index within function)
	Fn      string // callee for OpCall
	ArgRegs []int  // argument registers for OpCall / OpPrint operands
	FloatRs []bool // OpPrint: per-operand float flag
	IsFrame bool   // OpLEA: Imm is a frame offset (else global address)
}

func (i Instr) String() string {
	switch i.Op {
	case OpMovI:
		return fmt.Sprintf("movi r%d, %d", i.Rd, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", i.Rd, i.Rs)
	case OpLEA:
		if i.IsFrame {
			return fmt.Sprintf("lea r%d, fp+%d", i.Rd, i.Imm)
		}
		return fmt.Sprintf("lea r%d, g@%d", i.Rd, i.Imm)
	case OpLd, OpLdF, OpLdA, OpLdFA, OpLdC, OpLdFC, OpLdS, OpLdFS, OpLdSA, OpLdFSA:
		return fmt.Sprintf("%s r%d, [r%d]", i.Op, i.Rd, i.Rs)
	case OpSt, OpStF:
		return fmt.Sprintf("%s [r%d], r%d", i.Op, i.Rd, i.Rs)
	case OpBr:
		return fmt.Sprintf("br %d", i.Target)
	case OpBeqz:
		return fmt.Sprintf("beqz r%d, %d", i.Rs, i.Target)
	case OpBnez:
		return fmt.Sprintf("bnez r%d, %d", i.Rs, i.Target)
	case OpCall:
		return fmt.Sprintf("call %s args=%v -> r%d", i.Fn, i.ArgRegs, i.Rd)
	case OpRet:
		if i.Rs >= 0 {
			return fmt.Sprintf("ret r%d", i.Rs)
		}
		return "ret"
	case OpPrint:
		return fmt.Sprintf("print %v", i.ArgRegs)
	case OpArg:
		return fmt.Sprintf("arg r%d, r%d", i.Rd, i.Rs)
	case OpAlloc:
		return fmt.Sprintf("alloc r%d, r%d", i.Rd, i.Rs)
	case OpFence:
		return "fence"
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs, i.Rt)
	}
}

// FuncCode is the compiled form of one function.
type FuncCode struct {
	Name      string
	Instrs    []Instr
	NumRegs   int
	FrameSize int
	NumParams int
}

// Program is a whole compiled program.
type Program struct {
	Funcs      map[string]*FuncCode
	GlobSize   int
	GlobalInit map[int]uint64
}

// String disassembles the program deterministically (functions sorted by
// name).
func (p *Program) String() string {
	var names []string
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	s := ""
	for _, name := range names {
		f := p.Funcs[name]
		s += fmt.Sprintf("func %s (regs=%d frame=%d):\n", name, f.NumRegs, f.FrameSize)
		for i, ins := range f.Instrs {
			s += fmt.Sprintf("  %4d: %s\n", i, ins)
		}
	}
	return s
}

// Clone deep-copies the program: instruction slices, per-instruction
// ArgRegs/FloatRs, and the global-init map are all fresh, so a pass may
// rewrite the clone (the hardening pass does) without disturbing the
// original.
func (p *Program) Clone() *Program {
	q := &Program{
		Funcs:    make(map[string]*FuncCode, len(p.Funcs)),
		GlobSize: p.GlobSize,
	}
	if p.GlobalInit != nil {
		q.GlobalInit = make(map[int]uint64, len(p.GlobalInit))
		for k, v := range p.GlobalInit {
			q.GlobalInit[k] = v
		}
	}
	for name, f := range p.Funcs {
		g := &FuncCode{
			Name:      f.Name,
			Instrs:    make([]Instr, len(f.Instrs)),
			NumRegs:   f.NumRegs,
			FrameSize: f.FrameSize,
			NumParams: f.NumParams,
		}
		copy(g.Instrs, f.Instrs)
		for i := range g.Instrs {
			if ar := g.Instrs[i].ArgRegs; ar != nil {
				g.Instrs[i].ArgRegs = append([]int(nil), ar...)
			}
			if fr := g.Instrs[i].FloatRs; fr != nil {
				g.Instrs[i].FloatRs = append([]bool(nil), fr...)
			}
		}
		q.Funcs[name] = g
	}
	return q
}
