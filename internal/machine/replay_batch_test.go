package machine

import (
	"errors"
	"reflect"
	"testing"
)

// TestReplayBatchMatchesReplay is the machine-level differential test
// for the batched timing engine: for every program in the replay zoo,
// ReplayBatch over the whole sweep grid must agree field-for-field with
// per-config Replay (and so, via TestReplayMatchesDirectExecution, with
// direct Run) — regardless of how the batch mixes serial and pipelined
// points or duplicates configs.
func TestReplayBatchMatchesReplay(t *testing.T) {
	for name, tc := range replayPrograms() {
		tr, err := Record(tc.p, tc.args, Config{})
		if err != nil {
			t.Fatalf("%s: record: %v", name, err)
		}
		cfgs := replaySweep()
		// duplicate a pipelined config: identical lanes must not perturb
		// each other's scoreboards
		cfgs = append(cfgs, Config{Pipelined: true}, Config{Pipelined: true})
		batch, err := ReplayBatch(tc.p, tr, cfgs)
		if err != nil {
			t.Fatalf("%s: batch: %v", name, err)
		}
		if len(batch) != len(cfgs) {
			t.Fatalf("%s: %d results for %d configs", name, len(batch), len(cfgs))
		}
		for i, cfg := range cfgs {
			single, err := Replay(tc.p, tr, cfg, nil)
			if err != nil {
				t.Fatalf("%s %+v: replay: %v", name, cfg, err)
			}
			if !reflect.DeepEqual(single, batch[i]) {
				t.Errorf("%s %+v:\nreplay %+v\nbatch  %+v", name, cfg, single, batch[i])
			}
		}
	}
}

// TestReplayBatchFaultParity pins the batch's error contract: a config
// with tightened limits faults with exactly the single-replay error, a
// layout mismatch anywhere in the batch is refused with
// ErrTraceMismatch, and an empty batch is a no-op.
func TestReplayBatchFaultParity(t *testing.T) {
	tc := replayPrograms()["fib"]
	tr, err := Record(tc.p, tc.args, Config{})
	if err != nil {
		t.Fatal(err)
	}

	small := Config{MaxSteps: 50}
	_, singleErr := Replay(tc.p, tr, small, nil)
	_, batchErr := ReplayBatch(tc.p, tr, []Config{{}, small})
	if singleErr == nil || batchErr == nil {
		t.Fatalf("step limit should fault: single=%v batch=%v", singleErr, batchErr)
	}
	if singleErr.Error() != batchErr.Error() {
		t.Errorf("step-limit errors differ: single %q, batch %q", singleErr, batchErr)
	}

	if _, err := ReplayBatch(tc.p, tr, []Config{{}, {StackSlots: 64}}); !errors.Is(err, ErrTraceMismatch) {
		t.Errorf("layout mismatch not refused: %v", err)
	}

	res, err := ReplayBatch(tc.p, tr, nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: %v, %d results", err, len(res))
	}
}
