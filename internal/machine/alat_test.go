package machine

import "testing"

// TestALATEvictionOrder pins the explicit eviction contract the
// replayer's ALAT re-simulation depends on: slots fill 0,1,2,…; a full
// table evicts in strict round-robin slot order; refresh keeps an entry
// in its slot; invalidated slots are reused LIFO.
func TestALATEvictionOrder(t *testing.T) {
	a := newALAT(3)

	// fill order: slot 0, 1, 2
	a.insert(1, 0, 100)
	a.insert(1, 1, 101)
	a.insert(1, 2, 102)
	for i, wantReg := range []int{0, 1, 2} {
		if got := a.slots[i]; !got.valid || got.reg != wantReg {
			t.Fatalf("slot %d = %+v, want reg %d", i, got, wantReg)
		}
	}

	// capacity eviction: round-robin starting at slot 0
	a.insert(1, 3, 103) // evicts (1,0) from slot 0
	if a.check(1, 0, 100) {
		t.Error("(1,0) should have been evicted first (slot 0)")
	}
	if !a.check(1, 3, 103) || a.slots[0].reg != 3 {
		t.Errorf("(1,3) should occupy slot 0, slots=%+v", a.slots)
	}
	a.insert(1, 4, 104) // evicts (1,1) from slot 1
	if a.check(1, 1, 101) {
		t.Error("(1,1) should have been evicted second (slot 1)")
	}
	if a.evictions != 2 {
		t.Errorf("evictions = %d, want 2", a.evictions)
	}

	// refresh: a re-inserted register keeps its slot and evicts nothing
	a.insert(1, 2, 202)
	if a.slots[2].reg != 2 || a.slots[2].addr != 202 {
		t.Errorf("refresh moved the entry: slots=%+v", a.slots)
	}
	if a.evictions != 2 {
		t.Errorf("refresh must not evict, evictions = %d", a.evictions)
	}
	if a.check(1, 2, 102) {
		t.Error("stale address must miss after refresh")
	}
	if !a.check(1, 2, 202) {
		t.Error("refreshed address must hit")
	}

	// invalidation frees the slot for LIFO reuse without counting as an
	// eviction, and drops every entry at the address
	a.invalidate(202) // frees slot 2
	if a.check(1, 2, 202) {
		t.Error("store invalidation must drop the entry")
	}
	a.insert(1, 6, 600) // must reuse freed slot 2, not evict
	if a.slots[2].reg != 6 {
		t.Errorf("freed slot not reused LIFO: slots=%+v", a.slots)
	}
	if a.evictions != 2 {
		t.Errorf("free-slot reuse must not evict, evictions = %d", a.evictions)
	}

	// frame isolation: same register number in another activation is a
	// distinct entry
	if a.check(2, 6, 600) {
		t.Error("frame 2 must not see frame 1's entry")
	}
}

// TestALATInvalidateDropsAllEntriesAtAddress covers multiple registers
// advancing the same address: one conflicting store kills all of them.
func TestALATInvalidateDropsAllEntriesAtAddress(t *testing.T) {
	a := newALAT(4)
	a.insert(1, 0, 7)
	a.insert(1, 1, 7)
	a.insert(1, 2, 8)
	a.invalidate(7)
	if a.check(1, 0, 7) || a.check(1, 1, 7) {
		t.Error("both entries at addr 7 must be invalidated")
	}
	if !a.check(1, 2, 8) {
		t.Error("entry at addr 8 must survive")
	}
	// slot 3 was never used, and invalidation freed the two addr-7 slots
	if len(a.free) != 3 {
		t.Errorf("free list = %v, want 3 slots", a.free)
	}
}
