package machine

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// replayPrograms builds a small zoo of programs exercising every
// trace-relevant behavior: branches, calls/recursion, advanced loads
// with hits/misses/evictions, speculative loads with deferred faults,
// and plain arithmetic.
func replayPrograms() map[string]struct {
	p    *Program
	args []int64
} {
	// loop with ALAT traffic: ld.a / conflicting stores / ld.c inside a
	// counted loop, enough iterations to exercise capacity at small sizes
	alatLoop := buildProg([]Instr{
		{Op: OpMovI, Rd: 0, Imm: 0},  // i = 0
		{Op: OpMovI, Rd: 1, Imm: 40}, // n
		{Op: OpMovI, Rd: 5, Imm: 0},  // acc
		{Op: OpMovI, Rd: 7, Imm: 1},
		{Op: OpSub, Rd: 2, Rs: 0, Rt: 1}, // 4 L: i-n
		{Op: OpBeqz, Rs: 2, Target: 15},  // exit
		{Op: OpMod, Rd: 3, Rs: 0, Rt: 1}, // slot = i % n (all < glob)
		{Op: OpLEA, Rd: 4, Imm: 0},
		{Op: OpAdd, Rd: 4, Rs: 4, Rt: 3}, // &glob[i%n]
		{Op: OpLdA, Rd: 6, Rs: 4},        // advanced load
		{Op: OpSt, Rd: 4, Rs: 0},         // conflicting store (invalidates)
		{Op: OpLdC, Rd: 6, Rs: 4},        // check: always misses
		{Op: OpAdd, Rd: 5, Rs: 5, Rt: 6}, // acc += value
		{Op: OpAdd, Rd: 0, Rs: 0, Rt: 7}, // i++
		{Op: OpBr, Target: 4},
		{Op: OpRet, Rs: 5}, // 15
	}, 8, 64)

	// recursion with a print: deep call trees, per-frame activations
	fib := &Program{
		Funcs: map[string]*FuncCode{
			"main": {Name: "main", NumRegs: 3, Instrs: []Instr{
				{Op: OpMovI, Rd: 0, Imm: 12},
				{Op: OpCall, Rd: 1, Fn: "fib", ArgRegs: []int{0}},
				{Op: OpPrint, ArgRegs: []int{1}, FloatRs: []bool{false}},
				{Op: OpRet, Rs: 1},
			}},
			// the parameter arrives in r0 (regs[0..NumParams-1])
			"fib": {Name: "fib", NumRegs: 6, NumParams: 1, FrameSize: 2, Instrs: []Instr{
				{Op: OpMovI, Rd: 5, Imm: 1},
				{Op: OpSub, Rd: 1, Rs: 0, Rt: 5}, // n-1
				{Op: OpBnez, Rs: 1, Target: 4},
				{Op: OpRet, Rs: 0},                                // fib(1) = 1
				{Op: OpBnez, Rs: 0, Target: 6},                    // 4
				{Op: OpRet, Rs: 0},                                // fib(0) = 0
				{Op: OpCall, Rd: 3, Fn: "fib", ArgRegs: []int{1}}, // 6: fib(n-1)
				{Op: OpMovI, Rd: 5, Imm: 2},
				{Op: OpSub, Rd: 2, Rs: 0, Rt: 5}, // n-2
				{Op: OpCall, Rd: 4, Fn: "fib", ArgRegs: []int{2}},
				{Op: OpAdd, Rd: 1, Rs: 3, Rt: 4},
				{Op: OpRet, Rs: 1},
			}},
		},
		GlobSize:   4,
		GlobalInit: map[int]uint64{},
	}

	// control speculation with deferred faults (ld.s through an invalid
	// address on most iterations) plus speculative-advanced loads
	spec := buildProg([]Instr{
		{Op: OpMovI, Rd: 0, Imm: 0},
		{Op: OpMovI, Rd: 1, Imm: 20},
		{Op: OpMovI, Rd: 5, Imm: 0},
		{Op: OpMovI, Rd: 7, Imm: 1},
		{Op: OpSub, Rd: 2, Rs: 0, Rt: 1}, // 4 L:
		{Op: OpBeqz, Rs: 2, Target: 15},
		{Op: OpAnd, Rd: 3, Rs: 0, Rt: 7}, // i & 1
		{Op: OpMovI, Rd: 4, Imm: -1},     // invalid addr
		{Op: OpBnez, Rs: 3, Target: 10},  // odd i: keep -1 (defer)
		{Op: OpLEA, Rd: 4, Imm: 2},       // even i: valid addr
		{Op: OpLdS, Rd: 6, Rs: 4},        // 10: may defer (NaT)
		{Op: OpLdSA, Rd: 6, Rs: 4},       // speculative-advanced variant
		{Op: OpAdd, Rd: 5, Rs: 5, Rt: 6},
		{Op: OpAdd, Rd: 0, Rs: 0, Rt: 7}, // i++
		{Op: OpBr, Target: 4},
		{Op: OpRet, Rs: 5}, // 15
	}, 8, 8)

	return map[string]struct {
		p    *Program
		args []int64
	}{
		"alatLoop": {alatLoop, nil},
		"fib":      {fib, nil},
		"spec":     {spec, nil},
	}
}

// replaySweep is the grid of Configs the differential test runs: both
// timing models, ALAT capacity extremes, latency extremes.
func replaySweep() []Config {
	return []Config{
		{},
		{Pipelined: true},
		{ALATSize: 2},
		{ALATSize: 2, Pipelined: true},
		{ALATSize: 256},
		{IntLoadLat: 8, FPLoadLat: 24, CheckMissPen: 16},
		{IntLoadLat: 8, FPLoadLat: 24, CheckMissPen: 16, Pipelined: true},
		{CheckHitLat: Free, CheckMissPen: Free},
		{IntMulLat: 1, IntDivLat: 40, CallOverhead: 7, Pipelined: true},
	}
}

// TestReplayMatchesDirectExecution is the machine-level differential
// test: for each program and each sweep Config, Replay over a recorded
// trace must reproduce direct Run bit-for-bit — Ret, Output, and every
// Counters field.
func TestReplayMatchesDirectExecution(t *testing.T) {
	for name, tc := range replayPrograms() {
		tr, err := Record(tc.p, tc.args, Config{})
		if err != nil {
			t.Fatalf("%s: record: %v", name, err)
		}
		for _, cfg := range replaySweep() {
			direct, err := Run(tc.p, tc.args, cfg, nil)
			if err != nil {
				t.Fatalf("%s %+v: direct: %v", name, cfg, err)
			}
			replayed, err := Replay(tc.p, tr, cfg, nil)
			if err != nil {
				t.Fatalf("%s %+v: replay: %v", name, cfg, err)
			}
			if !reflect.DeepEqual(direct, replayed) {
				t.Errorf("%s %+v:\ndirect  %+v\nreplay  %+v", name, cfg, direct, replayed)
			}
		}
	}
}

// TestReplayMarshalRoundTrip runs the same differential through the
// serialized form (the cache spill path).
func TestReplayMarshalRoundTrip(t *testing.T) {
	for name, tc := range replayPrograms() {
		tr, err := Record(tc.p, tc.args, Config{})
		if err != nil {
			t.Fatalf("%s: record: %v", name, err)
		}
		tr2, err := UnmarshalTrace(tr.Marshal())
		if err != nil {
			t.Fatalf("%s: roundtrip: %v", name, err)
		}
		if tr2.Steps != tr.Steps || tr2.Ret != tr.Ret || tr2.Output != tr.Output ||
			tr2.StackSlots != tr.StackSlots || tr2.MaxDepth != tr.MaxDepth ||
			tr2.Events() != tr.Events() {
			t.Fatalf("%s: metadata mismatch after roundtrip", name)
		}
		cfg := Config{ALATSize: 2, Pipelined: true}
		direct, err := Run(tc.p, tc.args, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := Replay(tc.p, tr2, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, replayed) {
			t.Errorf("%s: roundtripped replay diverges:\ndirect %+v\nreplay %+v", name, direct, replayed)
		}
	}
}

func TestUnmarshalTraceRejectsCorruptInput(t *testing.T) {
	if _, err := UnmarshalTrace([]byte("not a trace")); err == nil {
		t.Error("bad magic accepted")
	}
	tc := replayPrograms()["fib"]
	tr, err := Record(tc.p, tc.args, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := tr.Marshal()
	if _, err := UnmarshalTrace(data[:len(data)/2]); err == nil {
		t.Error("truncated trace accepted")
	}
}

// TestReplayFaultParity pins the resource-limit contract: replay under
// a tighter limit faults with exactly the error direct execution
// produces, and a layout mismatch is refused up front.
func TestReplayFaultParity(t *testing.T) {
	tc := replayPrograms()["fib"]
	tr, err := Record(tc.p, tc.args, Config{})
	if err != nil {
		t.Fatal(err)
	}

	small := Config{MaxSteps: 50}
	_, directErr := Run(tc.p, tc.args, small, nil)
	_, replayErr := Replay(tc.p, tr, small, nil)
	if directErr == nil || replayErr == nil {
		t.Fatalf("step limit should fault: direct=%v replay=%v", directErr, replayErr)
	}
	if directErr.Error() != replayErr.Error() {
		t.Errorf("step-limit errors differ: direct %q, replay %q", directErr, replayErr)
	}

	shallow := Config{MaxCallDepth: 3}
	_, directErr = Run(tc.p, tc.args, shallow, nil)
	_, replayErr = Replay(tc.p, tr, shallow, nil)
	if directErr == nil || replayErr == nil {
		t.Fatalf("depth limit should fault: direct=%v replay=%v", directErr, replayErr)
	}
	if directErr.Error() != replayErr.Error() {
		t.Errorf("depth-limit errors differ: direct %q, replay %q", directErr, replayErr)
	}

	if _, err := Replay(tc.p, tr, Config{StackSlots: 64}, nil); !errors.Is(err, ErrTraceMismatch) {
		t.Errorf("layout mismatch not refused: %v", err)
	}
}

// TestReplayOutputWriter checks the out-writer convention matches Run's:
// with a writer the output goes there and Result.Output stays empty.
func TestReplayOutputWriter(t *testing.T) {
	tc := replayPrograms()["fib"]
	tr, err := Record(tc.p, tc.args, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var direct, replayed strings.Builder
	dres, err := Run(tc.p, tc.args, Config{}, &direct)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := Replay(tc.p, tr, Config{}, &replayed)
	if err != nil {
		t.Fatal(err)
	}
	if direct.String() != replayed.String() || direct.Len() == 0 {
		t.Errorf("writer output: direct %q, replay %q", direct.String(), replayed.String())
	}
	if dres.Output != "" || rres.Output != "" {
		t.Errorf("Result.Output must be empty with an explicit writer: %q %q", dres.Output, rres.Output)
	}
}
