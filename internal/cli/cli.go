// Package cli is the shared entry-point contract of the repo's command
// line tools (specc, aliasprof, experiments, specd). Each tool's main
// is one line — cli.Main(name, run) — and run returns an error instead
// of hand-rolling os.Exit ladders, so exit codes and stderr formatting
// are consistent across every tool:
//
//   - nil: exit 0;
//   - a UsageError (flag or argument misuse): "<name>: <msg>" on
//     stderr, exit 2 — matching the flag package's own parse failures;
//   - an ExitError: exit with its code, printing only if it carries a
//     message (a compiled program's own return value exits silently);
//   - anything else: "<name>: <err>" on stderr, exit 1.
package cli

import (
	"errors"
	"fmt"
	"os"
)

// UsageError marks command-line misuse (unknown enum value, wrong
// argument count); Main exits 2 for it.
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }
func (e *UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// ExitError carries an explicit exit code. A nil Err exits silently —
// the vehicle for forwarding a program's own return value (specc).
type ExitError struct {
	Code int
	Err  error
}

func (e *ExitError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("exit %d", e.Code)
	}
	return e.Err.Error()
}
func (e *ExitError) Unwrap() error { return e.Err }

// Exit returns an ExitError with the given code and no message, or nil
// when code is 0 (so `return cli.Exit(int(ret))` does the right thing
// for a zero return value).
func Exit(code int) error {
	if code == 0 {
		return nil
	}
	return &ExitError{Code: code}
}

// Main runs run and exits the process according to the error contract
// above. It never returns.
func Main(name string, run func() error) {
	err := run()
	if err == nil {
		os.Exit(0)
	}
	var ue *UsageError
	if errors.As(err, &ue) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, ue.Err)
		os.Exit(2)
	}
	var ee *ExitError
	if errors.As(err, &ee) {
		if ee.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, ee.Err)
		}
		os.Exit(ee.Code)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	os.Exit(1)
}
