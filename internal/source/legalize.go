package source

import "repro/internal/ir"

// legalize enforces the flattened-IR discipline after address-taken
// information is final: a Ref to a memory-resident scalar may appear only
// as the A operand of an RHSCopy assignment (a direct load) or as the Dst
// of an RHSCopy assignment (a direct store). Reads that ended up in other
// operand positions during lowering (because &x appeared later in the
// function) are split into explicit load temporaries; memory-resident
// parameters get a register shadow that is stored to memory at entry.
func legalize(fn *ir.Func) {
	for _, b := range fn.Blocks {
		var out []ir.Stmt
		emitLoad := func(r *ir.Ref) *ir.Ref {
			t := fn.NewTemp(r.Sym.Type)
			out = append(out, fn.NewAssign(ir.Assign{
				Dst: fn.NewRef(t, 0), RK: ir.RHSCopy, A: fn.NewRef(r.Sym, 0),
				LoadsFrom: r.Sym.Type, Site: fn.Prog().NextSite(),
			}))
			return fn.NewRef(t, 0)
		}
		fix := func(op ir.Operand) ir.Operand {
			if r, ok := op.(*ir.Ref); ok && r.Sym.InMemory() {
				return emitLoad(r)
			}
			return op
		}
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *ir.Assign:
				switch st.RK {
				case ir.RHSCopy:
					if st.Dst.Sym.InMemory() {
						// direct store: the source must not also be a
						// memory reference
						st.A = fix(st.A)
					} else if r, ok := st.A.(*ir.Ref); ok && r.Sym.InMemory() {
						// direct load: mark it so later phases and codegen
						// know this copy reads memory
						if st.LoadsFrom == nil {
							st.LoadsFrom = r.Sym.Type
						}
						if st.Site == 0 {
							st.Site = fn.Prog().NextSite()
						}
					}
				case ir.RHSUnary, ir.RHSAlloc:
					st.A = fix(st.A)
				case ir.RHSBinary:
					st.A = fix(st.A)
					st.B = fix(st.B)
				case ir.RHSLoad:
					st.A = fix(st.A)
				}
			case *ir.IStore:
				st.Addr = fix(st.Addr)
				st.Val = fix(st.Val)
			case *ir.Call:
				for i := range st.Args {
					st.Args[i] = fix(st.Args[i])
				}
			case *ir.Print:
				for i := range st.Args {
					st.Args[i] = fix(st.Args[i])
				}
			}
			out = append(out, s)
		}
		switch b.Term.Kind {
		case ir.TermCond:
			b.Term.Cond = fix(b.Term.Cond)
		case ir.TermRet:
			if b.Term.Val != nil {
				b.Term.Val = fix(b.Term.Val)
			}
		}
		b.Stmts = out
	}

	// Memory-resident parameters: values arrive in registers; store them
	// to their frame slot at entry and demote the symbol to a local.
	var prologue []ir.Stmt
	for i, p := range fn.Params {
		if !p.InMemory() {
			continue
		}
		shadow := fn.NewSym(p.Name+"$in", p.Type, ir.SymParam)
		fn.Params = fn.Params[:len(fn.Params)-1] // NewSym appended it
		fn.Params[i] = shadow
		p.Kind = ir.SymLocal
		prologue = append(prologue, fn.NewAssign(ir.Assign{
			Dst: fn.NewRef(p, 0), RK: ir.RHSCopy, A: fn.NewRef(shadow, 0),
		}))
	}
	if len(prologue) > 0 {
		fn.Entry.Stmts = append(prologue, fn.Entry.Stmts...)
	}
}
