package source

import (
	"fmt"

	"repro/internal/ir"
)

type parser struct {
	toks    []Token
	pos     int
	structs map[string]*ir.Type
}

// Parse lexes and parses MiniC source into a File.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, structs: map[string]*ir.Type{}}
	return p.file()
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().Kind != TokIdent {
		return "", p.errf("expected identifier, found %s", p.cur())
	}
	return p.next().Text, nil
}

// typeStart reports whether the current token begins a type.
func (p *parser) typeStart() bool {
	return p.isKeyword("int") || p.isKeyword("double") || p.isKeyword("void") || p.isKeyword("struct")
}

// parseType parses a base type plus pointer stars: "int", "double",
// "struct S**", etc.
func (p *parser) parseType() (*ir.Type, error) {
	var t *ir.Type
	switch {
	case p.isKeyword("int"):
		p.pos++
		t = ir.IntType
	case p.isKeyword("double"):
		p.pos++
		t = ir.FloatType
	case p.isKeyword("void"):
		p.pos++
		t = ir.VoidType
	case p.isKeyword("struct"):
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st, ok := p.structs[name]
		if !ok {
			return nil, p.errf("unknown struct %q", name)
		}
		t = st
	default:
		return nil, p.errf("expected type, found %s", p.cur())
	}
	for p.acceptPunct("*") {
		t = ir.PtrTo(t)
	}
	return t, nil
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != TokEOF {
		if p.isKeyword("struct") && p.toks[p.pos+2].Kind == TokPunct && p.toks[p.pos+2].Text == "{" {
			sd, err := p.structDecl()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
			continue
		}
		if !p.typeStart() {
			return nil, p.errf("expected declaration, found %s", p.cur())
		}
		line := p.cur().Line
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			fd, err := p.funcDecl(t, name, line)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
			continue
		}
		vd, err := p.finishVarDecl(t, name, line)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, vd)
	}
	return f, nil
}

func (p *parser) structDecl() (*StructDecl, error) {
	line := p.cur().Line
	p.pos++ // struct
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &ir.Type{Kind: ir.KStruct, Name: name}
	p.structs[name] = st // allow recursive pointer fields
	off := 0
	for !p.isPunct("}") {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.acceptPunct("[") {
			if p.cur().Kind != TokInt {
				return nil, p.errf("array length must be an integer literal")
			}
			n := int(p.next().Val)
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			ft = ir.ArrayOf(ft, n)
		}
		if ft.Kind == ir.KStruct && ft.Name == name {
			return nil, p.errf("struct %s contains itself", name)
		}
		st.Fields = append(st.Fields, ir.Field{Name: fname, Type: ft, Off: off})
		off += ft.Size()
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	p.pos++ // }
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &StructDecl{Name: name, Type: st, Line: line}, nil
}

// finishVarDecl parses the remainder of a variable declaration after the
// base type and name: optional array suffixes and initializer.
func (p *parser) finishVarDecl(t *ir.Type, name string, line int) (*VarDecl, error) {
	var dims []int
	for p.acceptPunct("[") {
		if p.cur().Kind != TokInt {
			return nil, p.errf("array length must be an integer literal")
		}
		dims = append(dims, int(p.next().Val))
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = ir.ArrayOf(t, dims[i])
	}
	var init Expr
	if p.acceptPunct("=") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		init = e
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &VarDecl{Name: name, Type: t, Init: init, Line: line}, nil
}

func (p *parser) funcDecl(ret *ir.Type, name string, line int) (*FuncDecl, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []Param
	if !p.isPunct(")") {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			params = append(params, Param{Name: pname, Type: pt})
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.blockStmt()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name, Ret: ret, Params: params, Body: body, Line: line}, nil
}

func (p *parser) blockStmt() (*BlockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.isPunct("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.List = append(b.List, s)
	}
	p.pos++ // }
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.isPunct("{"):
		return p.blockStmt()
	case p.typeStart():
		line := p.cur().Line
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		vd, err := p.finishVarDecl(t, name, line)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: vd}, nil
	case p.isKeyword("if"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.isKeyword("else") {
			p.pos++
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil
	case p.isKeyword("while"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.isKeyword("for"):
		return p.forStmt()
	case p.isKeyword("return"):
		line := p.cur().Line
		p.pos++
		var x Expr
		if !p.isPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			x = e
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Line: line}, nil
	case p.isKeyword("break"):
		line := p.cur().Line
		p.pos++
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line}, nil
	case p.isKeyword("continue"):
		line := p.cur().Line
		p.pos++
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line}, nil
	default:
		line := p.cur().Line
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Line: line}, nil
	}
}

func (p *parser) forStmt() (Stmt, error) {
	p.pos++ // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var init Stmt
	if !p.isPunct(";") {
		if p.typeStart() {
			line := p.cur().Line
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var ie Expr
			if p.acceptPunct("=") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				ie = e
			}
			init = &DeclStmt{Decl: &VarDecl{Name: name, Type: t, Init: ie, Line: line}}
		} else {
			line := p.cur().Line
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			init = &ExprStmt{X: x, Line: line}
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var cond Expr
	if !p.isPunct(";") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		cond = e
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var post Stmt
	if !p.isPunct(")") {
		line := p.cur().Line
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		post = &ExprStmt{X: x, Line: line}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body}, nil
}

// expr parses assignment expressions (right associative, lowest precedence).
func (p *parser) expr() (Expr, error) {
	lhs, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=":
			line := t.Line
			p.pos++
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			op := ""
			if t.Text != "=" {
				op = t.Text[:1]
			}
			return &AssignExpr{Op: op, LHS: lhs, RHS: rhs, Line: line}, nil
		}
	}
	return lhs, nil
}

// binary operator precedence, loosest to tightest.
var precTable = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := precTable[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, L: lhs, R: rhs, Line: t.Line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "*", "&":
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x, Line: t.Line}, nil
		case "(":
			// possibly a cast
			nt := p.toks[p.pos+1]
			if nt.Kind == TokKeyword && (nt.Text == "int" || nt.Text == "double" || nt.Text == "struct") {
				p.pos++ // (
				ct, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.unary()
				if err != nil {
					return nil, err
				}
				return &Cast{Type: ct, X: x, Line: t.Line}, nil
			}
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x, nil
		}
		switch t.Text {
		case "[":
			p.pos++
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: i, Line: t.Line}
		case ".":
			p.pos++
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &FieldSel{X: x, Name: name, Line: t.Line}
		case "->":
			p.pos++
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &FieldSel{X: x, Name: name, Arrow: true, Line: t.Line}
		case "++", "--":
			p.pos++
			x = &IncDec{Op: t.Text, X: x, Line: t.Line}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.pos++
		return &IntLit{Val: t.Val, Line: t.Line}, nil
	case TokFloat:
		p.pos++
		return &FloatLit{Val: t.FVal, Line: t.Line}, nil
	case TokIdent:
		p.pos++
		if p.isPunct("(") {
			p.pos++
			var args []Expr
			if !p.isPunct(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.acceptPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.Text, Args: args, Line: t.Line}, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, p.errf("expected expression, found %s", t)
}
