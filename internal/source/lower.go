package source

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Lower type-checks a parsed File and translates it to the flattened IR.
// Every generated statement is first-order: operands are constants,
// register-resident variable references, or symbol addresses; memory reads
// and writes are explicit load/store statements. This is the shape SSAPRE
// processes directly.
func Lower(f *File) (*ir.Program, error) {
	lw := &lowerer{
		prog:    ir.NewProgram(),
		globals: map[string]*ir.Sym{},
		funcs:   map[string]*FuncDecl{},
	}
	for _, g := range f.Globals {
		if _, dup := lw.globals[g.Name]; dup {
			return nil, &Error{Line: g.Line, Msg: fmt.Sprintf("global %q redeclared", g.Name)}
		}
		lw.globals[g.Name] = lw.prog.NewGlobal(g.Name, g.Type)
	}
	for _, fd := range f.Funcs {
		if _, dup := lw.funcs[fd.Name]; dup {
			return nil, &Error{Line: fd.Line, Msg: fmt.Sprintf("function %q redeclared", fd.Name)}
		}
		lw.funcs[fd.Name] = fd
	}
	// Global initializers must be constants; they populate the initial
	// global segment image.
	for _, g := range f.Globals {
		if g.Init == nil {
			continue
		}
		sym := lw.globals[g.Name]
		val, isFloat, ok := constFold(g.Init)
		if !ok {
			return nil, &Error{Line: g.Line, Msg: fmt.Sprintf("global %q initializer is not constant", g.Name)}
		}
		switch {
		case sym.Type.Kind == ir.KFloat:
			fv := val
			if !isFloat {
				fv = float64(int64(val))
			}
			lw.prog.GlobalInit[sym.Addr] = math.Float64bits(fv)
		case sym.Type.IsScalar():
			lw.prog.GlobalInit[sym.Addr] = uint64(int64(val))
		default:
			return nil, &Error{Line: g.Line, Msg: fmt.Sprintf("global %q: aggregate initializers are not supported", g.Name)}
		}
	}
	for _, fd := range f.Funcs {
		if err := lw.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	if _, ok := lw.prog.FuncMap["main"]; !ok {
		return nil, &Error{Msg: "program has no main function"}
	}
	for _, fn := range lw.prog.Funcs {
		fn.RemoveUnreachable()
		legalize(fn)
		fn.AssignFrameOffsets()
		if err := ir.Verify(fn); err != nil {
			return nil, fmt.Errorf("lowering produced invalid IR: %w", err)
		}
	}
	return lw.prog, nil
}

func constFold(e Expr) (val float64, isFloat, ok bool) {
	switch x := e.(type) {
	case *IntLit:
		return float64(x.Val), false, true
	case *FloatLit:
		return x.Val, true, true
	case *Unary:
		if x.Op == "-" {
			v, isf, ok := constFold(x.X)
			return -v, isf, ok
		}
	}
	return 0, false, false
}

type lowerer struct {
	prog    *ir.Program
	globals map[string]*ir.Sym
	funcs   map[string]*FuncDecl

	fn     *ir.Func
	cur    *ir.Block
	scopes []map[string]*ir.Sym

	breaks []*ir.Block
	conts  []*ir.Block
}

func (lw *lowerer) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]*ir.Sym{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) declare(name string, sym *ir.Sym, line int) error {
	top := lw.scopes[len(lw.scopes)-1]
	if _, dup := top[name]; dup {
		return lw.errf(line, "%q redeclared in this scope", name)
	}
	top[name] = sym
	return nil
}

func (lw *lowerer) lookup(name string) *ir.Sym {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if s, ok := lw.scopes[i][name]; ok {
			return s
		}
	}
	return lw.globals[name]
}

// emit appends a statement to the current block.
func (lw *lowerer) emit(s ir.Stmt) {
	lw.cur.Stmts = append(lw.cur.Stmts, s)
}

// setTerm finishes the current block and leaves lw.cur nil until startBlock.
func (lw *lowerer) jump(to *ir.Block) {
	if lw.cur == nil {
		return
	}
	lw.cur.Term = ir.Term{Kind: ir.TermJump}
	ir.Connect(lw.cur, to)
	lw.cur = nil
}

func (lw *lowerer) condJump(cond ir.Operand, t, f *ir.Block) {
	lw.cur.Term = ir.Term{Kind: ir.TermCond, Cond: cond}
	ir.Connect(lw.cur, t)
	ir.Connect(lw.cur, f)
	lw.cur = nil
}

func (lw *lowerer) lowerFunc(fd *FuncDecl) error {
	fn := lw.prog.NewFunc(fd.Name, fd.Ret)
	lw.fn = fn
	lw.scopes = nil
	lw.pushScope()
	for _, p := range fd.Params {
		sym := fn.NewSym(p.Name, p.Type, ir.SymParam)
		if err := lw.declare(p.Name, sym, fd.Line); err != nil {
			return err
		}
	}
	fn.Entry = fn.NewBlock()
	fn.Exit = fn.NewBlock()
	fn.Exit.Term = ir.Term{Kind: ir.TermRet}
	lw.cur = fn.Entry
	if err := lw.stmt(fd.Body); err != nil {
		return err
	}
	// Fall off the end: return zero for value-returning functions, plain
	// return otherwise.
	if lw.cur != nil {
		if fd.Ret.Kind == ir.KVoid {
			lw.cur.Term = ir.Term{Kind: ir.TermRet}
		} else {
			lw.cur.Term = ir.Term{Kind: ir.TermRet, Val: zeroOf(fd.Ret)}
		}
	}
	lw.popScope()
	return nil
}

func zeroOf(t *ir.Type) ir.Operand {
	if t.Kind == ir.KFloat {
		return ir.FloatConst(0)
	}
	return ir.IntConst(0)
}

func (lw *lowerer) stmt(s Stmt) error {
	if lw.cur == nil {
		// unreachable code after return/break; lower into a detached block
		lw.cur = lw.fn.NewBlock()
		lw.cur.Term = ir.Term{Kind: ir.TermRet}
	}
	switch st := s.(type) {
	case *BlockStmt:
		lw.pushScope()
		for _, inner := range st.List {
			if err := lw.stmt(inner); err != nil {
				return err
			}
		}
		lw.popScope()
		return nil
	case *DeclStmt:
		return lw.declStmt(st.Decl)
	case *ExprStmt:
		return lw.exprStmt(st.X, st.Line)
	case *IfStmt:
		return lw.ifStmt(st)
	case *WhileStmt:
		return lw.whileStmt(st)
	case *ForStmt:
		return lw.forStmt(st)
	case *ReturnStmt:
		return lw.returnStmt(st)
	case *BreakStmt:
		if len(lw.breaks) == 0 {
			return lw.errf(st.Line, "break outside loop")
		}
		lw.jump(lw.breaks[len(lw.breaks)-1])
		return nil
	case *ContinueStmt:
		if len(lw.conts) == 0 {
			return lw.errf(st.Line, "continue outside loop")
		}
		lw.jump(lw.conts[len(lw.conts)-1])
		return nil
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

func (lw *lowerer) declStmt(d *VarDecl) error {
	sym := lw.fn.NewSym(d.Name, d.Type, ir.SymLocal)
	if err := lw.declare(d.Name, sym, d.Line); err != nil {
		return err
	}
	if d.Init != nil {
		if !d.Type.IsScalar() {
			return lw.errf(d.Line, "cannot initialize aggregate %q", d.Name)
		}
		val, err := lw.rvalue(d.Init)
		if err != nil {
			return err
		}
		val, err = lw.convert(val, d.Type, d.Line)
		if err != nil {
			return err
		}
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(sym, 0), RK: ir.RHSCopy, A: val}))
	}
	return nil
}

func (lw *lowerer) exprStmt(x Expr, line int) error {
	switch e := x.(type) {
	case *AssignExpr:
		return lw.assign(e)
	case *IncDec:
		op := "+"
		if e.Op == "--" {
			op = "-"
		}
		return lw.assign(&AssignExpr{Op: op, LHS: e.X, RHS: &IntLit{Val: 1, Line: e.Line}, Line: e.Line})
	case *CallExpr:
		_, err := lw.call(e, true)
		return err
	default:
		// evaluate for effect (there are none, but keep it legal)
		_, err := lw.rvalue(x)
		return err
	}
}

// lvalue is the result of lowering an assignable expression: either a
// direct variable or a computed address.
type lvalue struct {
	sym  *ir.Sym    // non-nil for direct variable access
	addr ir.Operand // non-nil for indirect access
	typ  *ir.Type   // type of the referenced object
}

func (lw *lowerer) assign(e *AssignExpr) error {
	lv, err := lw.lvalue(e.LHS)
	if err != nil {
		return err
	}
	if !lv.typ.IsScalar() {
		return lw.errf(e.Line, "cannot assign to aggregate")
	}
	var rhs ir.Operand
	if e.Op == "" {
		rhs, err = lw.rvalue(e.RHS)
		if err != nil {
			return err
		}
	} else {
		// compound assignment: read, combine, write
		cur, err := lw.readLValue(lv, e.Line)
		if err != nil {
			return err
		}
		r, err := lw.rvalue(e.RHS)
		if err != nil {
			return err
		}
		op, err := binOp(e.Op, e.Line)
		if err != nil {
			return err
		}
		rhs, err = lw.binary(op, cur, r, e.Line)
		if err != nil {
			return err
		}
	}
	rhs, err = lw.convert(rhs, lv.typ, e.Line)
	if err != nil {
		return err
	}
	if lv.sym != nil {
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(lv.sym, 0), RK: ir.RHSCopy, A: rhs}))
		return nil
	}
	lw.emit(lw.fn.NewIStore(ir.IStore{Addr: lv.addr, Val: rhs, StoresTo: lv.typ, Site: lw.prog.NextSite()}))
	return nil
}

// readLValue loads the current value of an lvalue into an operand.
func (lw *lowerer) readLValue(lv lvalue, line int) (ir.Operand, error) {
	if lv.sym != nil {
		return lw.readVar(lv.sym), nil
	}
	t := lw.fn.NewTemp(lv.typ)
	lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSLoad, A: lv.addr, LoadsFrom: lv.typ, Site: lw.prog.NextSite()}))
	return lw.fn.NewRef(t, 0), nil
}

// readVar produces an operand holding the value of a variable. Reads of
// memory-resident scalars become explicit load statements so that each
// occurrence is visible to PRE; register-resident variables are used
// directly.
func (lw *lowerer) readVar(sym *ir.Sym) ir.Operand {
	if sym.Kind == ir.SymGlobal {
		// Globals are always memory-resident: emit a direct load.
		t := lw.fn.NewTemp(sym.Type)
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSCopy, A: lw.fn.NewRef(sym, 0), LoadsFrom: sym.Type}))
		return lw.fn.NewRef(t, 0)
	}
	// Locals: whether the symbol ends up memory-resident depends on
	// AddrTaken, which is only final after the whole function is lowered.
	// Using the Ref directly is correct either way: later phases treat a
	// Ref to a memory-resident scalar in RHSCopy position as a load.
	return lw.fn.NewRef(sym, 0)
}

func (lw *lowerer) lvalue(e Expr) (lvalue, error) {
	switch x := e.(type) {
	case *Ident:
		sym := lw.lookup(x.Name)
		if sym == nil {
			return lvalue{}, lw.errf(x.Line, "undefined variable %q", x.Name)
		}
		return lvalue{sym: sym, typ: sym.Type}, nil
	case *Unary:
		if x.Op == "*" {
			p, err := lw.rvalue(x.X)
			if err != nil {
				return lvalue{}, err
			}
			pt := p.Type()
			if pt.Kind != ir.KPtr {
				return lvalue{}, lw.errf(x.Line, "cannot dereference non-pointer type %s", pt)
			}
			return lvalue{addr: p, typ: pt.Elem}, nil
		}
	case *Index:
		return lw.indexLValue(x)
	case *FieldSel:
		return lw.fieldLValue(x)
	}
	return lvalue{}, lw.errf(exprLine(e), "expression is not assignable")
}

func exprLine(e Expr) int {
	switch x := e.(type) {
	case *IntLit:
		return x.Line
	case *FloatLit:
		return x.Line
	case *Ident:
		return x.Line
	case *Unary:
		return x.Line
	case *Binary:
		return x.Line
	case *AssignExpr:
		return x.Line
	case *IncDec:
		return x.Line
	case *CallExpr:
		return x.Line
	case *Index:
		return x.Line
	case *FieldSel:
		return x.Line
	case *Cast:
		return x.Line
	}
	return 0
}

// baseAddress lowers an expression to (address operand, element type) for
// indexing: arrays decay to their base address, pointers to their value.
func (lw *lowerer) baseAddress(e Expr) (ir.Operand, *ir.Type, error) {
	// Array-typed lvalues decay without loading.
	if lv, err := lw.tryAggregateBase(e); err != nil {
		return nil, nil, err
	} else if lv != nil {
		if lv.typ.Kind == ir.KArray {
			addr, err := lw.addressOf(*lv, exprLine(e))
			if err != nil {
				return nil, nil, err
			}
			return addr, lv.typ.Elem, nil
		}
	}
	p, err := lw.rvalue(e)
	if err != nil {
		return nil, nil, err
	}
	pt := p.Type()
	switch pt.Kind {
	case ir.KPtr:
		return p, pt.Elem, nil
	default:
		return nil, nil, lw.errf(exprLine(e), "cannot index value of type %s", pt)
	}
}

// tryAggregateBase returns the lvalue of e if e denotes an array- or
// struct-typed object (which cannot be loaded as an rvalue), else nil.
func (lw *lowerer) tryAggregateBase(e Expr) (*lvalue, error) {
	switch x := e.(type) {
	case *Ident:
		sym := lw.lookup(x.Name)
		if sym != nil && !sym.Type.IsScalar() {
			lv := lvalue{sym: sym, typ: sym.Type}
			return &lv, nil
		}
	case *Index:
		// e.g. A[i] where A is an array of arrays
		lv, err := lw.indexLValue(x)
		if err != nil {
			return nil, err
		}
		if !lv.typ.IsScalar() {
			return &lv, nil
		}
		// fallthrough: scalar element, caller should treat as rvalue —
		// but we already emitted the address computation. Return nil and
		// let rvalue() recompute; index lowering is pure so this only
		// duplicates arithmetic, which PRE cleans up.
	case *FieldSel:
		lv, err := lw.fieldLValue(x)
		if err != nil {
			return nil, err
		}
		if !lv.typ.IsScalar() {
			return &lv, nil
		}
	}
	return nil, nil
}

// addressOf materializes the address of an lvalue as an operand.
func (lw *lowerer) addressOf(lv lvalue, line int) (ir.Operand, error) {
	if lv.addr != nil {
		return lv.addr, nil
	}
	sym := lv.sym
	if sym.Kind == ir.SymTemp {
		return nil, lw.errf(line, "cannot take address of temporary")
	}
	sym.AddrTaken = true
	return lw.fn.NewAddrOf(sym), nil
}

func (lw *lowerer) indexLValue(x *Index) (lvalue, error) {
	base, elem, err := lw.baseAddress(x.X)
	if err != nil {
		return lvalue{}, err
	}
	idx, err := lw.rvalue(x.I)
	if err != nil {
		return lvalue{}, err
	}
	if idx.Type().Kind != ir.KInt {
		return lvalue{}, lw.errf(x.Line, "array index must be int, have %s", idx.Type())
	}
	// addr = base + idx*size(elem)
	scaled := idx
	if sz := elem.Size(); sz != 1 {
		t := lw.fn.NewTemp(ir.IntType)
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSBinary, Op: ir.OpMul, A: idx, B: ir.IntConst(int64(sz))}))
		scaled = lw.fn.NewRef(t, 0)
	}
	t := lw.fn.NewTemp(ir.PtrTo(elem))
	lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSBinary, Op: ir.OpAdd, A: base, B: scaled}))
	return lvalue{addr: lw.fn.NewRef(t, 0), typ: elem}, nil
}

func (lw *lowerer) fieldLValue(x *FieldSel) (lvalue, error) {
	var base ir.Operand
	var st *ir.Type
	if x.Arrow {
		p, err := lw.rvalue(x.X)
		if err != nil {
			return lvalue{}, err
		}
		pt := p.Type()
		if pt.Kind != ir.KPtr || pt.Elem.Kind != ir.KStruct {
			return lvalue{}, lw.errf(x.Line, "-> on non-struct-pointer type %s", pt)
		}
		base, st = p, pt.Elem
	} else {
		lv, err := lw.tryAggregateBase(x.X)
		if err != nil {
			return lvalue{}, err
		}
		if lv == nil || lv.typ.Kind != ir.KStruct {
			return lvalue{}, lw.errf(x.Line, ". on non-struct value")
		}
		addr, err := lw.addressOf(*lv, x.Line)
		if err != nil {
			return lvalue{}, err
		}
		base, st = addr, lv.typ
	}
	fld, ok := st.FieldByName(x.Name)
	if !ok {
		return lvalue{}, lw.errf(x.Line, "struct %s has no field %q", st.Name, x.Name)
	}
	t := lw.fn.NewTemp(ir.PtrTo(fld.Type))
	if fld.Off != 0 {
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSBinary, Op: ir.OpAdd, A: base, B: ir.IntConst(int64(fld.Off))}))
	} else {
		// offset 0: same address, but the static type becomes a pointer
		// to the field
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSCopy, A: base}))
	}
	return lvalue{addr: lw.fn.NewRef(t, 0), typ: fld.Type}, nil
}

// rvalue lowers an expression to a leaf operand, emitting statements for
// any computation.
func (lw *lowerer) rvalue(e Expr) (ir.Operand, error) {
	switch x := e.(type) {
	case *IntLit:
		return ir.IntConst(x.Val), nil
	case *FloatLit:
		return ir.FloatConst(x.Val), nil
	case *Ident:
		sym := lw.lookup(x.Name)
		if sym == nil {
			return nil, lw.errf(x.Line, "undefined variable %q", x.Name)
		}
		if !sym.Type.IsScalar() {
			// array decays to pointer
			if sym.Type.Kind == ir.KArray {
				sym.AddrTaken = true
				return lw.fn.NewAddrOf(sym), nil
			}
			return nil, lw.errf(x.Line, "cannot use aggregate %q as a value", x.Name)
		}
		return lw.readVar(sym), nil
	case *Unary:
		return lw.unary(x)
	case *Binary:
		return lw.binaryExpr(x)
	case *CallExpr:
		return lw.call(x, false)
	case *Index:
		lv, err := lw.indexLValue(x)
		if err != nil {
			return nil, err
		}
		if !lv.typ.IsScalar() {
			// sub-array or struct element decays to its address
			return lv.addr, nil
		}
		return lw.readLValue(lv, x.Line)
	case *FieldSel:
		lv, err := lw.fieldLValue(x)
		if err != nil {
			return nil, err
		}
		if !lv.typ.IsScalar() {
			return lv.addr, nil
		}
		return lw.readLValue(lv, x.Line)
	case *Cast:
		return lw.cast(x)
	case *AssignExpr:
		return nil, lw.errf(x.Line, "assignment cannot be used as a value")
	case *IncDec:
		return nil, lw.errf(x.Line, "%s cannot be used as a value", x.Op)
	}
	return nil, fmt.Errorf("minic: unknown expression %T", e)
}

func (lw *lowerer) unary(x *Unary) (ir.Operand, error) {
	switch x.Op {
	case "-":
		v, err := lw.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		t := lw.fn.NewTemp(v.Type())
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSUnary, Op: ir.OpNeg, A: v}))
		return lw.fn.NewRef(t, 0), nil
	case "!":
		v, err := lw.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		t := lw.fn.NewTemp(ir.IntType)
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSUnary, Op: ir.OpNot, A: v}))
		return lw.fn.NewRef(t, 0), nil
	case "*":
		lv, err := lw.lvalue(x)
		if err != nil {
			return nil, err
		}
		if !lv.typ.IsScalar() {
			return lv.addr, nil
		}
		return lw.readLValue(lv, x.Line)
	case "&":
		lv, err := lw.lvalue(x.X)
		if err != nil {
			return nil, err
		}
		return lw.addressOf(lv, x.Line)
	}
	return nil, lw.errf(x.Line, "unknown unary operator %q", x.Op)
}

func binOp(op string, line int) (ir.Op, error) {
	switch op {
	case "+":
		return ir.OpAdd, nil
	case "-":
		return ir.OpSub, nil
	case "*":
		return ir.OpMul, nil
	case "/":
		return ir.OpDiv, nil
	case "%":
		return ir.OpMod, nil
	case "==":
		return ir.OpEq, nil
	case "!=":
		return ir.OpNe, nil
	case "<":
		return ir.OpLt, nil
	case "<=":
		return ir.OpLe, nil
	case ">":
		return ir.OpGt, nil
	case ">=":
		return ir.OpGe, nil
	case "&":
		return ir.OpAnd, nil
	case "|":
		return ir.OpOr, nil
	case "^":
		return ir.OpXor, nil
	case "<<":
		return ir.OpShl, nil
	case ">>":
		return ir.OpShr, nil
	}
	return ir.OpNone, &Error{Line: line, Msg: fmt.Sprintf("unknown operator %q", op)}
}

func (lw *lowerer) binaryExpr(x *Binary) (ir.Operand, error) {
	if x.Op == "&&" || x.Op == "||" {
		return lw.shortCircuit(x)
	}
	l, err := lw.rvalue(x.L)
	if err != nil {
		return nil, err
	}
	r, err := lw.rvalue(x.R)
	if err != nil {
		return nil, err
	}
	op, err := binOp(x.Op, x.Line)
	if err != nil {
		return nil, err
	}
	return lw.binary(op, l, r, x.Line)
}

// binary emits a first-order binary operation with numeric promotion and
// pointer-arithmetic scaling.
func (lw *lowerer) binary(op ir.Op, l, r ir.Operand, line int) (ir.Operand, error) {
	lt, rt := l.Type(), r.Type()
	resType := ir.IntType
	switch {
	case lt.Kind == ir.KPtr || rt.Kind == ir.KPtr:
		// pointer arithmetic: ptr±int (scaled by element size) and ptr-ptr
		if op == ir.OpAdd || op == ir.OpSub {
			if lt.Kind == ir.KPtr && rt.Kind == ir.KInt {
				r = lw.scaleIndex(r, lt.Elem)
				resType = lt
			} else if lt.Kind == ir.KInt && rt.Kind == ir.KPtr && op == ir.OpAdd {
				l = lw.scaleIndex(l, rt.Elem)
				resType = rt
			} else if lt.Kind == ir.KPtr && rt.Kind == ir.KPtr && op == ir.OpSub {
				resType = ir.IntType
			} else {
				return nil, lw.errf(line, "invalid pointer arithmetic %s %s %s", lt, op, rt)
			}
		} else if op.IsComparison() {
			resType = ir.IntType
		} else {
			return nil, lw.errf(line, "invalid pointer operation %s", op)
		}
	case lt.Kind == ir.KFloat || rt.Kind == ir.KFloat:
		var err error
		l, err = lw.convert(l, ir.FloatType, line)
		if err != nil {
			return nil, err
		}
		r, err = lw.convert(r, ir.FloatType, line)
		if err != nil {
			return nil, err
		}
		if op.IsComparison() {
			resType = ir.IntType
		} else {
			if op == ir.OpMod || op == ir.OpAnd || op == ir.OpOr || op == ir.OpXor || op == ir.OpShl || op == ir.OpShr {
				return nil, lw.errf(line, "operator %s not defined on double", op)
			}
			resType = ir.FloatType
		}
	default:
		resType = ir.IntType
	}
	t := lw.fn.NewTemp(resType)
	lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSBinary, Op: op, A: l, B: r}))
	return lw.fn.NewRef(t, 0), nil
}

func (lw *lowerer) scaleIndex(idx ir.Operand, elem *ir.Type) ir.Operand {
	sz := elem.Size()
	if sz == 1 {
		return idx
	}
	t := lw.fn.NewTemp(ir.IntType)
	lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSBinary, Op: ir.OpMul, A: idx, B: ir.IntConst(int64(sz))}))
	return lw.fn.NewRef(t, 0)
}

// shortCircuit lowers && and || with control flow into a 0/1 temporary.
func (lw *lowerer) shortCircuit(x *Binary) (ir.Operand, error) {
	res := lw.fn.NewTemp(ir.IntType)
	evalR := lw.fn.NewBlock()
	short := lw.fn.NewBlock()
	join := lw.fn.NewBlock()

	l, err := lw.rvalue(x.L)
	if err != nil {
		return nil, err
	}
	if x.Op == "&&" {
		lw.condJump(l, evalR, short)
	} else {
		lw.condJump(l, short, evalR)
	}

	lw.cur = short
	var shortVal int64
	if x.Op == "||" {
		shortVal = 1
	}
	lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(res, 0), RK: ir.RHSCopy, A: ir.IntConst(shortVal)}))
	lw.jump(join)

	lw.cur = evalR
	r, err := lw.rvalue(x.R)
	if err != nil {
		return nil, err
	}
	// normalize to 0/1
	lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(res, 0), RK: ir.RHSBinary, Op: ir.OpNe, A: r, B: zeroOf(r.Type())}))
	lw.jump(join)

	lw.cur = join
	return lw.fn.NewRef(res, 0), nil
}

// convert coerces an operand to the target type, inserting conversions.
func (lw *lowerer) convert(v ir.Operand, to *ir.Type, line int) (ir.Operand, error) {
	from := v.Type()
	if from.Equal(to) {
		return v, nil
	}
	switch {
	case from.Kind == ir.KInt && to.Kind == ir.KFloat:
		if c, ok := v.(*ir.ConstInt); ok {
			return ir.FloatConst(float64(c.Val)), nil
		}
		t := lw.fn.NewTemp(ir.FloatType)
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSUnary, Op: ir.OpIntToFloat, A: v}))
		return lw.fn.NewRef(t, 0), nil
	case from.Kind == ir.KFloat && to.Kind == ir.KInt:
		if c, ok := v.(*ir.ConstFloat); ok {
			return ir.IntConst(int64(c.Val)), nil
		}
		t := lw.fn.NewTemp(ir.IntType)
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSUnary, Op: ir.OpFloatToInt, A: v}))
		return lw.fn.NewRef(t, 0), nil
	case from.Kind == ir.KPtr && to.Kind == ir.KPtr:
		// void* (malloc) converts freely; other pointer conversions need a cast
		if from.Elem.Kind == ir.KVoid || to.Elem.Kind == ir.KVoid {
			return retype(lw, v, to), nil
		}
		return nil, lw.errf(line, "cannot convert %s to %s without a cast", from, to)
	case from.Kind == ir.KPtr && to.Kind == ir.KInt, from.Kind == ir.KInt && to.Kind == ir.KPtr:
		return nil, lw.errf(line, "cannot mix pointer and int without a cast (%s vs %s)", from, to)
	}
	return nil, lw.errf(line, "cannot convert %s to %s", from, to)
}

// retype produces an operand with the same value but a different static
// type (pointer casts). It copies through a temp so types stay accurate.
func retype(lw *lowerer, v ir.Operand, to *ir.Type) ir.Operand {
	t := lw.fn.NewTemp(to)
	lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSCopy, A: v}))
	return lw.fn.NewRef(t, 0)
}

func (lw *lowerer) cast(x *Cast) (ir.Operand, error) {
	v, err := lw.rvalue(x.X)
	if err != nil {
		return nil, err
	}
	from := v.Type()
	to := x.Type
	switch {
	case from.Equal(to):
		return v, nil
	case from.Kind == ir.KInt && to.Kind == ir.KFloat,
		from.Kind == ir.KFloat && to.Kind == ir.KInt:
		return lw.convert(v, to, x.Line)
	case from.Kind == ir.KPtr && to.Kind == ir.KPtr:
		return retype(lw, v, to), nil
	case from.Kind == ir.KInt && to.Kind == ir.KPtr,
		from.Kind == ir.KPtr && to.Kind == ir.KInt:
		return retype(lw, v, to), nil
	}
	return nil, lw.errf(x.Line, "invalid cast from %s to %s", from, to)
}

// call lowers a function call. stmtPos is true when the value is discarded.
func (lw *lowerer) call(x *CallExpr, stmtPos bool) (ir.Operand, error) {
	switch x.Name {
	case "malloc":
		if len(x.Args) != 1 {
			return nil, lw.errf(x.Line, "malloc takes one argument (slot count)")
		}
		n, err := lw.rvalue(x.Args[0])
		if err != nil {
			return nil, err
		}
		if n.Type().Kind != ir.KInt {
			return nil, lw.errf(x.Line, "malloc size must be int")
		}
		t := lw.fn.NewTemp(ir.PtrTo(ir.VoidType))
		lw.emit(lw.fn.NewAssign(ir.Assign{Dst: lw.fn.NewRef(t, 0), RK: ir.RHSAlloc, A: n, AllocSite: lw.prog.NextSite()}))
		return lw.fn.NewRef(t, 0), nil
	case "print":
		var args []ir.Operand
		for _, a := range x.Args {
			v, err := lw.rvalue(a)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		}
		lw.emit(lw.fn.NewPrint(ir.Print{Args: args}))
		return nil, nil
	case "arg":
		// arg(i): the i-th host-supplied input parameter (0 if absent).
		if len(x.Args) != 1 {
			return nil, lw.errf(x.Line, "arg takes one argument")
		}
		i, err := lw.rvalue(x.Args[0])
		if err != nil {
			return nil, err
		}
		t := lw.fn.NewTemp(ir.IntType)
		lw.emit(lw.fn.NewCall(ir.Call{Fn: "arg", Args: []ir.Operand{i}, Dst: lw.fn.NewRef(t, 0), Site: lw.prog.NextSite()}))
		return lw.fn.NewRef(t, 0), nil
	}
	fd, ok := lw.funcs[x.Name]
	if !ok {
		return nil, lw.errf(x.Line, "call to undefined function %q", x.Name)
	}
	if len(x.Args) != len(fd.Params) {
		return nil, lw.errf(x.Line, "%s expects %d arguments, got %d", x.Name, len(fd.Params), len(x.Args))
	}
	var args []ir.Operand
	for i, a := range x.Args {
		v, err := lw.rvalue(a)
		if err != nil {
			return nil, err
		}
		v, err = lw.convert(v, fd.Params[i].Type, x.Line)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	var dst *ir.Ref
	if fd.Ret.Kind != ir.KVoid && !stmtPos {
		dst = lw.fn.NewRef(lw.fn.NewTemp(fd.Ret), 0)
	}
	lw.emit(lw.fn.NewCall(ir.Call{Fn: x.Name, Args: args, Dst: dst, Site: lw.prog.NextSite()}))
	if dst == nil {
		if fd.Ret.Kind == ir.KVoid && !stmtPos {
			return nil, lw.errf(x.Line, "void function %q used as a value", x.Name)
		}
		return nil, nil
	}
	return dst, nil
}

func (lw *lowerer) ifStmt(st *IfStmt) error {
	cond, err := lw.rvalue(st.Cond)
	if err != nil {
		return err
	}
	thenB := lw.fn.NewBlock()
	joinB := lw.fn.NewBlock()
	elseB := joinB
	if st.Else != nil {
		elseB = lw.fn.NewBlock()
	}
	lw.condJump(cond, thenB, elseB)

	lw.cur = thenB
	if err := lw.stmt(st.Then); err != nil {
		return err
	}
	lw.jump(joinB)

	if st.Else != nil {
		lw.cur = elseB
		if err := lw.stmt(st.Else); err != nil {
			return err
		}
		lw.jump(joinB)
	}
	lw.cur = joinB
	return nil
}

func (lw *lowerer) whileStmt(st *WhileStmt) error {
	head := lw.fn.NewBlock()
	body := lw.fn.NewBlock()
	exit := lw.fn.NewBlock()
	lw.jump(head)

	lw.cur = head
	cond, err := lw.rvalue(st.Cond)
	if err != nil {
		return err
	}
	lw.condJump(cond, body, exit)

	lw.breaks = append(lw.breaks, exit)
	lw.conts = append(lw.conts, head)
	lw.cur = body
	if err := lw.stmt(st.Body); err != nil {
		return err
	}
	lw.jump(head)
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]

	lw.cur = exit
	return nil
}

func (lw *lowerer) forStmt(st *ForStmt) error {
	lw.pushScope()
	defer lw.popScope()
	if st.Init != nil {
		if err := lw.stmt(st.Init); err != nil {
			return err
		}
	}
	head := lw.fn.NewBlock()
	body := lw.fn.NewBlock()
	post := lw.fn.NewBlock()
	exit := lw.fn.NewBlock()
	lw.jump(head)

	lw.cur = head
	if st.Cond != nil {
		cond, err := lw.rvalue(st.Cond)
		if err != nil {
			return err
		}
		lw.condJump(cond, body, exit)
	} else {
		lw.jump(body)
	}

	lw.breaks = append(lw.breaks, exit)
	lw.conts = append(lw.conts, post)
	lw.cur = body
	if err := lw.stmt(st.Body); err != nil {
		return err
	}
	lw.jump(post)
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]

	lw.cur = post
	if st.Post != nil {
		if err := lw.stmt(st.Post); err != nil {
			return err
		}
	}
	lw.jump(head)

	lw.cur = exit
	return nil
}

func (lw *lowerer) returnStmt(st *ReturnStmt) error {
	if lw.cur == nil {
		lw.cur = lw.fn.NewBlock()
	}
	if st.X == nil {
		if lw.fn.RetType.Kind != ir.KVoid {
			return lw.errf(st.Line, "missing return value")
		}
		lw.cur.Term = ir.Term{Kind: ir.TermRet}
		lw.cur = nil
		return nil
	}
	if lw.fn.RetType.Kind == ir.KVoid {
		return lw.errf(st.Line, "void function returns a value")
	}
	v, err := lw.rvalue(st.X)
	if err != nil {
		return err
	}
	v, err = lw.convert(v, lw.fn.RetType, st.Line)
	if err != nil {
		return err
	}
	lw.cur.Term = ir.Term{Kind: ir.TermRet, Val: v}
	lw.cur = nil
	return nil
}
