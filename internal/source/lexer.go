// Package source implements the MiniC front end: a small C-like language
// (ints, doubles, pointers, fixed arrays, structs, malloc, functions,
// loops) that is rich enough to express the memory-aliasing patterns the
// speculative optimizations of Lin et al. (PLDI 2003) target. Parse
// produces an AST; Lower translates it to the flattened internal/ir form.
package source

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates lexical token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is a lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Val  int64   // for TokInt
	FVal float64 // for TokFloat
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "double": true, "void": true, "struct": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
	"sizeof": true,
}

// Error is a front-end diagnostic with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("minic:%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []Token
}

// Lex tokenizes MiniC source text.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) emit(k TokKind, text string, line, col int) {
	l.toks = append(l.toks, Token{Kind: k, Text: text, Line: line, Col: col})
}

var punct2 = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
	"+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"^=": true, "&=": true, "|=": true,
	"++": true, "--": true, "->": true, "<<": true, ">>": true,
}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) && !(l.peek() == '*' && l.peek2() == '/') {
				l.advance()
			}
			if l.pos >= len(l.src) {
				return l.errf("unterminated block comment")
			}
			l.advance()
			l.advance()
		case unicode.IsLetter(rune(c)) || c == '_':
			line, col := l.line, l.col
			start := l.pos
			for l.pos < len(l.src) && (isIdentChar(l.peek())) {
				l.advance()
			}
			text := l.src[start:l.pos]
			if keywords[text] {
				l.emit(TokKeyword, text, line, col)
			} else {
				l.emit(TokIdent, text, line, col)
			}
		case c >= '0' && c <= '9':
			if err := l.number(); err != nil {
				return err
			}
		case c == '"':
			line, col := l.line, l.col
			l.advance()
			var sb strings.Builder
			for l.pos < len(l.src) && l.peek() != '"' {
				ch := l.advance()
				if ch == '\\' && l.pos < len(l.src) {
					esc := l.advance()
					switch esc {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\':
						sb.WriteByte('\\')
					case '"':
						sb.WriteByte('"')
					default:
						return l.errf("unknown escape \\%c", esc)
					}
					continue
				}
				sb.WriteByte(ch)
			}
			if l.pos >= len(l.src) {
				return l.errf("unterminated string literal")
			}
			l.advance()
			l.toks = append(l.toks, Token{Kind: TokString, Text: sb.String(), Line: line, Col: col})
		default:
			line, col := l.line, l.col
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			if punct2[two] {
				l.advance()
				l.advance()
				l.emit(TokPunct, two, line, col)
				continue
			}
			if strings.ContainsRune("+-*/%<>=!&|^(){}[];,.~?:", rune(c)) {
				l.advance()
				l.emit(TokPunct, string(c), line, col)
				continue
			}
			return l.errf("unexpected character %q", c)
		}
	}
	l.toks = append(l.toks, Token{Kind: TokEOF, Line: l.line, Col: l.col})
	return nil
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) number() error {
	line, col := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
		l.advance()
	}
	isFloat := false
	if l.peek() == '.' && l.peek2() >= '0' && l.peek2() <= '9' {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if l.peek() >= '0' && l.peek() <= '9' {
			isFloat = true
			for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
				l.advance()
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	tok := Token{Text: text, Line: line, Col: col}
	if isFloat {
		tok.Kind = TokFloat
		if _, err := fmt.Sscanf(text, "%g", &tok.FVal); err != nil {
			return l.errf("bad float literal %q", text)
		}
	} else {
		tok.Kind = TokInt
		if _, err := fmt.Sscanf(text, "%d", &tok.Val); err != nil {
			return l.errf("bad int literal %q", text)
		}
	}
	l.toks = append(l.toks, tok)
	return nil
}
