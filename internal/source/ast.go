package source

import "repro/internal/ir"

// File is a parsed MiniC translation unit.
type File struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a struct type.
type StructDecl struct {
	Name string
	Type *ir.Type
	Line int
}

// VarDecl declares a global or local variable, optionally initialized.
type VarDecl struct {
	Name string
	Type *ir.Type
	Init Expr // may be nil
	Line int
}

// Param is one function parameter.
type Param struct {
	Name string
	Type *ir.Type
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Name   string
	Ret    *ir.Type
	Params []Param
	Body   *BlockStmt
	Line   int
}

// Stmt is a MiniC statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a braced statement list with its own scope.
type BlockStmt struct{ List []Stmt }

// DeclStmt is a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Stmt // may be nil (ExprStmt or DeclStmt)
	Cond Expr // may be nil (means true)
	Post Stmt // may be nil (ExprStmt)
	Body Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X    Expr // may be nil
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Line int }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is a MiniC expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val  int64
	Line int
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Val  float64
	Line int
}

// Ident names a variable.
type Ident struct {
	Name string
	Line int
}

// Unary is -x, !x, *x (deref), or &x (address-of).
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is a binary operator application, including && and || (which
// lower with short-circuit control flow).
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// AssignExpr is lhs = rhs or lhs op= rhs (Op is "", "+", "-", "*", "/", "%").
type AssignExpr struct {
	Op   string
	LHS  Expr
	RHS  Expr
	Line int
}

// IncDec is x++ or x-- (statement position only).
type IncDec struct {
	Op   string // "++" or "--"
	X    Expr
	Line int
}

// CallExpr invokes a named function or builtin (malloc, print).
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// Index is x[i].
type Index struct {
	X, I Expr
	Line int
}

// FieldSel is x.f or x->f.
type FieldSel struct {
	X     Expr
	Name  string
	Arrow bool
	Line  int
}

// Cast is (int)x or (double)x.
type Cast struct {
	Type *ir.Type
	X    Expr
	Line int
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*AssignExpr) exprNode() {}
func (*IncDec) exprNode()     {}
func (*CallExpr) exprNode()   {}
func (*Index) exprNode()      {}
func (*FieldSel) exprNode()   {}
func (*Cast) exprNode()       {}
