package source

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// --- lexer ---

func tokens(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := tokens(t, `int x = 42; double y = 3.5;`)
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"int", "x", "=", "42", ";", "double", "y", "=", "3.5", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[3] != TokInt || kinds[8] != TokFloat {
		t.Errorf("kinds wrong: %v", kinds)
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks := tokens(t, `a == b != c <= d >= e && f || g += h -= i ++ -> << >>`)
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokPunct && len(tok.Text) == 2 {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "++", "->", "<<", ">>"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestLexSingleEqualsBeforeSpace(t *testing.T) {
	// regression: "= " must not lex as a two-char operator
	toks := tokens(t, "x = 5;")
	if toks[1].Text != "=" || toks[1].Kind != TokPunct {
		t.Fatalf("second token = %q (%v)", toks[1].Text, toks[1].Kind)
	}
	if toks[2].Kind != TokInt || toks[2].Val != 5 {
		t.Fatalf("third token should be int 5, got %q", toks[2].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks := tokens(t, `
int a; // line comment with symbols == != ;
/* block
   comment */ int b;`)
	var idents []string
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			idents = append(idents, tok.Text)
		}
	}
	if len(idents) != 2 || idents[0] != "a" || idents[1] != "b" {
		t.Errorf("idents = %v", idents)
	}
}

func TestLexFloatForms(t *testing.T) {
	toks := tokens(t, "1.5 2.0 1e3 2.5e-2 7")
	wantKinds := []TokKind{TokFloat, TokFloat, TokFloat, TokFloat, TokInt, TokEOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
	if toks[2].FVal != 1000 {
		t.Errorf("1e3 parsed as %g", toks[2].FVal)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"int @;", "/* unterminated", `"unterminated`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("expected lex error for %q", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := tokens(t, "int a;\nint b;")
	// 'b' is on line 2
	for _, tok := range toks {
		if tok.Text == "b" && tok.Line != 2 {
			t.Errorf("b at line %d, want 2", tok.Line)
		}
	}
}

// --- parser ---

func parse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestParseFunctionsAndGlobals(t *testing.T) {
	f := parse(t, `
int g = 1;
double arr[8];
struct pt { int x; int y; };
struct pt table[4];
int add(int a, int b) { return a + b; }
void nothing() { }
int main() { return add(g, 2); }
`)
	if len(f.Globals) != 3 {
		t.Errorf("globals = %d, want 3", len(f.Globals))
	}
	if len(f.Funcs) != 3 {
		t.Errorf("funcs = %d, want 3", len(f.Funcs))
	}
	if len(f.Structs) != 1 || f.Structs[0].Name != "pt" {
		t.Errorf("structs = %v", f.Structs)
	}
	if f.Globals[1].Type.Kind != ir.KArray || f.Globals[1].Type.Len != 8 {
		t.Errorf("arr type = %v", f.Globals[1].Type)
	}
	if f.Globals[2].Type.Kind != ir.KArray || f.Globals[2].Type.Elem.Kind != ir.KStruct {
		t.Errorf("table type = %v", f.Globals[2].Type)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := parse(t, `int main() { int x = 1 + 2 * 3 < 7 && 1; return x; }`)
	decl := f.Funcs[0].Body.List[0].(*DeclStmt)
	// top is &&
	b, ok := decl.Decl.Init.(*Binary)
	if !ok || b.Op != "&&" {
		t.Fatalf("top op = %v", decl.Decl.Init)
	}
	l, ok := b.L.(*Binary)
	if !ok || l.Op != "<" {
		t.Fatalf("left of && = %v", b.L)
	}
	add, ok := l.L.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("left of < = %v", l.L)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("right of + should be *: %v", add.R)
	}
}

func TestParsePostfixChains(t *testing.T) {
	f := parse(t, `
struct node { int v; struct node *next; };
int main() {
	struct node *p = (struct node*)malloc(2);
	p->next->v = p->v + 1;
	int arr[3];
	arr[0] = arr[1] + arr[2];
	return 0;
}`)
	_ = f
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int main() { return 1 }`,             // missing ;
		`int main( { return 0; }`,             // bad params
		`int main() { if (1 { } return 0; }`,  // missing )
		`int main() { int 5 = 3; return 0; }`, // bad name
		`struct s { int x; };
		 struct t { struct s bad[2] }`, // missing ; after field
		`int main() { unknown_t x; return 0; }`, // unknown type keyword → expression error
		`int main() { break; }`,                 // break outside loop (lower error)
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err != nil {
			continue // parse error is fine
		}
		if _, err := Lower(f); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseForVariants(t *testing.T) {
	parse(t, `
int main() {
	for (;;) { break; }
	for (int i = 0; ; i++) { if (i > 2) break; }
	int j;
	for (j = 0; j < 3; j++) { continue; }
	return 0;
}`)
}

// --- lowering ---

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	f := parse(t, src)
	prog, err := Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func TestLowerProducesValidIR(t *testing.T) {
	prog := lower(t, `
struct pair { int a; double b; };
int g = 5;
double scale(double x, int k) { return x * (double)k; }
int main() {
	struct pair p;
	p.a = g;
	p.b = scale(1.5, p.a);
	int *q = &p.a;
	*q += 1;
	print(p.a, p.b);
	return 0;
}`)
	for _, f := range prog.Funcs {
		if err := ir.Verify(f); err != nil {
			t.Errorf("invalid IR for %s: %v", f.Name, err)
		}
	}
}

func TestLowerGlobalInitializers(t *testing.T) {
	prog := lower(t, `
int a = 7;
int b = -3;
double c = 2.5;
int main() { return 0; }`)
	if len(prog.GlobalInit) != 3 {
		t.Fatalf("GlobalInit has %d entries, want 3", len(prog.GlobalInit))
	}
	var aSym, bSym *ir.Sym
	for _, g := range prog.Globals {
		switch g.Name {
		case "a":
			aSym = g
		case "b":
			bSym = g
		}
	}
	if int64(prog.GlobalInit[aSym.Addr]) != 7 {
		t.Errorf("a init = %d", int64(prog.GlobalInit[aSym.Addr]))
	}
	if int64(prog.GlobalInit[bSym.Addr]) != -3 {
		t.Errorf("b init = %d", int64(prog.GlobalInit[bSym.Addr]))
	}
}

func TestLowerRejects(t *testing.T) {
	cases := map[string]string{
		"non-const global init":  `int g = 1; int h = g + 1; int main() { return 0; }`,
		"undefined variable":     `int main() { return nosuch; }`,
		"undefined function":     `int main() { return nosuch(); }`,
		"void as value":          `void v() {} int main() { return v(); }`,
		"pointer/int mix":        `int main() { int *p = 5; return 0; }`,
		"aggregate assign":       `struct s { int a; int b; }; int main() { struct s x; struct s y; x = y; return 0; }`,
		"arity mismatch":         `int f(int a) { return a; } int main() { return f(1, 2); }`,
		"dup global":             `int g; int g; int main() { return 0; }`,
		"dup function":           `int f() { return 0; } int f() { return 1; } int main() { return 0; }`,
		"dup local":              `int main() { int x; int x; return 0; }`,
		"missing main":           `int f() { return 0; }`,
		"return value from void": `void f() { return 3; } int main() { return 0; }`,
		"deref non-pointer":      `int main() { int x; return *x; }`,
		"index non-array":        `int main() { int x; return x[0]; }`,
		"continue outside loop":  `int main() { continue; }`,
	}
	for name, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("%s: unexpected parse error %v", name, err)
			continue
		}
		if _, err := Lower(f); err == nil {
			t.Errorf("%s: expected lowering error", name)
		}
	}
}

func TestLowerFlattenedDiscipline(t *testing.T) {
	// every operand of a non-copy statement must be a constant, a
	// register ref, or an address
	prog := lower(t, `
int g = 1;
int h = 2;
int main() {
	int sum = g + h * g;
	int *p = &g;
	sum += *p;
	print(sum);
	return 0;
}`)
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				a, ok := st.(*ir.Assign)
				if !ok || a.RK == ir.RHSCopy {
					continue
				}
				for _, op := range ir.Uses(st) {
					if r, isRef := op.(*ir.Ref); isRef && r.Sym.InMemory() {
						t.Errorf("%s: memory ref %s as operand of %s", f.Name, r.Sym.Name, st)
					}
				}
			}
		}
	}
}

func TestLowerMemoryParamGetsShadow(t *testing.T) {
	prog := lower(t, `
int addrof(int x) {
	int *p = &x;
	return *p;
}
int main() { return addrof(5); }`)
	f := prog.FuncMap["addrof"]
	if len(f.Params) != 1 {
		t.Fatalf("params = %d", len(f.Params))
	}
	p := f.Params[0]
	if p.InMemory() {
		t.Error("the incoming parameter must be a register shadow")
	}
	if !strings.Contains(p.Name, "$in") {
		t.Errorf("shadow param name = %q", p.Name)
	}
	// the entry block must store the shadow into the frame
	found := false
	for _, st := range f.Entry.Stmts {
		if a, ok := st.(*ir.Assign); ok && a.RK == ir.RHSCopy && a.Dst.Sym.InMemory() {
			if r, isRef := a.A.(*ir.Ref); isRef && r.Sym == p {
				found = true
			}
		}
	}
	if !found {
		t.Error("no prologue store of the shadow parameter")
	}
}

func TestLowerSiteIDsAreUnique(t *testing.T) {
	prog := lower(t, `
int A[4];
int main() {
	int *p = &A[0];
	*p = 1;
	int x = *p;
	A[1] = x;
	int y = A[2];
	print(y);
	return 0;
}`)
	seen := map[int]bool{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				var site int
				switch s := st.(type) {
				case *ir.Assign:
					site = s.Site
				case *ir.IStore:
					site = s.Site
				}
				if site != 0 {
					if seen[site] {
						t.Errorf("duplicate site id %d", site)
					}
					seen[site] = true
				}
			}
		}
	}
	if len(seen) < 4 {
		t.Errorf("expected at least 4 reference sites, got %d", len(seen))
	}
}

func TestLowerWhileAndLogicalOps(t *testing.T) {
	// golden structure: while lowers to header/body/exit with the
	// condition in the header; && produces short-circuit control flow
	prog := lower(t, `
int main() {
	int i = 0;
	int hits = 0;
	while (i < 10 && hits < 3) {
		if (i % 2 == 0 || i > 7) hits++;
		i++;
	}
	print(i, hits);
	return 0;
}`)
	main := prog.FuncMap["main"]
	conds := 0
	for _, b := range main.Blocks {
		if b.Term.Kind == ir.TermCond {
			conds++
		}
	}
	// while-condition + && + if + || need at least 4 conditional branches
	if conds < 4 {
		t.Errorf("expected >= 4 conditional branches from short-circuiting, got %d", conds)
	}
	if err := ir.Verify(main); err != nil {
		t.Fatal(err)
	}
}

func TestLowerCasts(t *testing.T) {
	prog := lower(t, `
int main() {
	double d = 3.9;
	int i = (int)d;
	double e = (double)i;
	int *p = (int*)malloc(2);
	double *q = (double*)p;     // pointer reinterpretation
	int addr = (int)p;          // pointer to int
	int *r = (int*)addr;        // and back
	*r = i;
	print(i, e, *p);
	return 0;
}`)
	for _, f := range prog.Funcs {
		if err := ir.Verify(f); err != nil {
			t.Fatal(err)
		}
	}
	// conversion ops must be present
	var i2f, f2i int
	for _, b := range prog.FuncMap["main"].Blocks {
		for _, st := range b.Stmts {
			if a, ok := st.(*ir.Assign); ok && a.RK == ir.RHSUnary {
				switch a.Op {
				case ir.OpIntToFloat:
					i2f++
				case ir.OpFloatToInt:
					f2i++
				}
			}
		}
	}
	if i2f == 0 || f2i == 0 {
		t.Errorf("conversions missing: i2f=%d f2i=%d", i2f, f2i)
	}
}

func TestLowerCompoundBitwiseAssign(t *testing.T) {
	prog := lower(t, `
int main() {
	int x = 12;
	x ^= 10;
	x &= 14;
	x |= 1;
	print(x);
	return 0;
}`)
	_ = prog
}

func TestStructArraysAndNestedAccess(t *testing.T) {
	prog := lower(t, `
struct cell { int v; double w; };
struct cell grid[6];
int main() {
	for (int i = 0; i < 6; i++) {
		grid[i].v = i;
		grid[i].w = (double)i * 0.5;
	}
	int sv = 0;
	double sw = 0.0;
	for (int i = 0; i < 6; i++) {
		sv += grid[i].v;
		sw += grid[i].w;
	}
	print(sv, sw);
	return 0;
}`)
	for _, f := range prog.Funcs {
		if err := ir.Verify(f); err != nil {
			t.Fatal(err)
		}
	}
	// struct cell occupies 2 slots; grid = 12 slots
	for _, g := range prog.Globals {
		if g.Name == "grid" && g.Type.Size() != 12 {
			t.Errorf("grid size = %d slots, want 12", g.Type.Size())
		}
	}
}
