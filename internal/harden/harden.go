// Package harden closes the speculative leaks found by specheck's
// Layer 3 taint analysis (internal/specheck/layer3.go). A leak is a
// sink — a load/store address operand or a conditional-branch
// condition — that consumes a speculatively-loaded value before its
// ld.c retires; the mitigation either serializes the sink behind a
// fence or hoists a duplicate of the web's check so it dominates the
// sink. Apply iterates analyze→mitigate until Layer 3 reports the
// program clean, so a successful run is leak-free by construction (and
// re-verified by the caller: the compile pipeline re-runs both specheck
// layers on the hardened code when VerifyPasses is set).
package harden

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/specheck"
)

// Policy selects the mitigation inserted in front of a leaking sink.
type Policy string

const (
	// PolicyFence inserts an OpFence immediately before the sink. The
	// fence drains the pipeline (serial model: Config.FenceLat cycles;
	// pipelined model: issue waits for every in-flight result), closing
	// the speculation window unconditionally. Always applicable, always
	// converges — and the expensive option.
	PolicyFence Policy = "fence"
	// PolicyHoist duplicates the web's ld.c immediately before the sink
	// so the check dominates it. The original check stays (it becomes a
	// guaranteed ALAT hit, CheckHitLat each visit), so semantics are
	// preserved; the duplicate validates-or-reloads at the sink. Only
	// sound when the checked register's web is undisturbed between the
	// advanced load and the original check (no redefinition of the
	// check's registers, no branch entering the region); sinks where it
	// is not — including every laundered-taint sink, which no single
	// check can repair — fall back to a fence.
	PolicyHoist Policy = "hoist"
)

// ParsePolicy maps a -harden flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyFence, PolicyHoist:
		return Policy(s), nil
	}
	return "", fmt.Errorf("harden: unknown policy %q (want %q or %q)", s, PolicyFence, PolicyHoist)
}

// Site records one mitigated sink.
type Site struct {
	Fn   string `json:"fn"`
	Sink int    `json:"sink"` // pre-mitigation instruction index of the sink
	Kind string `json:"kind"` // "address" or "branch"
	// Mitigation is "fence" or "hoist" — per-site, since PolicyHoist
	// falls back to a fence where hoisting is unsound.
	Mitigation string `json:"mitigation"`
}

// Report summarizes one hardening run.
type Report struct {
	Policy         Policy `json:"policy"`
	LeaksFound     int    `json:"leaks_found"`
	FencesInserted int    `json:"fences_inserted"`
	ChecksHoisted  int    `json:"checks_hoisted"`
	// Residual is the number of leaks Layer 3 still reports after the
	// final round; zero for every successful run.
	Residual int    `json:"residual"`
	Rounds   int    `json:"rounds"`
	Sites    []Site `json:"sites,omitempty"`
}

// maxRounds bounds the analyze→mitigate iteration. Fencing a sink
// closes it in one round, so the bound is far above anything a real
// program needs; past the halfway point hoisting gives up and every
// remaining sink is fenced, which forces convergence.
const maxRounds = 16

// Apply mitigates every speculative leak in code, in place, under the
// given policy. It returns a non-nil Report even on error; the error is
// non-nil only if leaks remain after maxRounds (Residual > 0), which
// would mean the mitigation transfer function and the analysis
// disagree — a bug, not an input property.
func Apply(code *machine.Program, policy Policy) (*Report, error) {
	rep := &Report{Policy: policy}
	for round := 1; round <= maxRounds; round++ {
		leaks := specheck.FindLeaks(code)
		if len(leaks) == 0 {
			return rep, nil
		}
		rep.Rounds = round
		rep.LeaksFound += len(leaks)
		// Past the halfway point, stop trying to hoist: fences always
		// converge.
		pol := policy
		if round > maxRounds/2 {
			pol = PolicyFence
		}
		byFn := map[string][]specheck.Leak{}
		for _, l := range leaks {
			byFn[l.Fn] = append(byFn[l.Fn], l)
		}
		names := make([]string, 0, len(byFn))
		for name := range byFn {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			mitigateFunc(code.Funcs[name], byFn[name], pol, rep)
		}
	}
	rep.Residual = len(specheck.FindLeaks(code))
	if rep.Residual > 0 {
		return rep, fmt.Errorf("harden: %d leaks residual after %d rounds", rep.Residual, maxRounds)
	}
	return rep, nil
}

// mitigateFunc inserts one mitigation per leaking sink of fc (several
// leaks can share a sink; the first decides).
func mitigateFunc(fc *machine.FuncCode, leaks []specheck.Leak, policy Policy, rep *Report) {
	ins := map[int]machine.Instr{}
	for _, l := range leaks {
		if _, done := ins[l.Sink]; done {
			continue
		}
		site := Site{Fn: l.Fn, Sink: l.Sink, Kind: l.Kind, Mitigation: "fence"}
		mit := machine.Instr{Op: machine.OpFence}
		if policy == PolicyHoist && l.Direct {
			if c, ok := hoistableCheck(fc, l); ok {
				mit = fc.Instrs[c]
				site.Mitigation = "hoist"
			}
		}
		ins[l.Sink] = mit
		if site.Mitigation == "hoist" {
			rep.ChecksHoisted++
		} else {
			rep.FencesInserted++
		}
		rep.Sites = append(rep.Sites, site)
	}
	InsertBefore(fc, ins)
}

// hoistableCheck finds the check load that can be duplicated in front
// of leak l's sink, or reports that none can. The duplicate is sound
// when the first check of l.Reg after the sink still describes the
// same web at the sink:
//
//   - neither the check's address register nor the checked register is
//     redefined between the advanced load and the check (other than by
//     the advanced load itself), so the duplicate validates the same
//     load against the same address;
//   - every branch landing between the advanced load and the sink
//     lands where the register is still a provider on ALL incoming
//     paths (Layer 2's AND-met provider fact) — loop back-edges
//     qualify, because the advanced load ran before loop entry. A
//     target where that fails could run the duplicated check without
//     the advanced load, turning it into a reload that rewrites the
//     register on a path the original program left alone;
//   - no store or call sits between the sink and the original check,
//     so the original check is a guaranteed ALAT hit after the
//     duplicate re-establishes the entry (the cost model this pass is
//     priced under).
func hoistableCheck(fc *machine.FuncCode, l specheck.Leak) (int, bool) {
	if l.Load < 0 || l.Load >= l.Sink {
		return 0, false
	}
	check := -1
	for j := l.Sink + 1; j < len(fc.Instrs); j++ {
		op := fc.Instrs[j].Op
		if (op == machine.OpLdC || op == machine.OpLdFC) && fc.Instrs[j].Rd == l.Reg {
			check = j
			break
		}
	}
	if check < 0 {
		return 0, false
	}
	rs := fc.Instrs[check].Rs
	for j := l.Load + 1; j < check; j++ {
		in := fc.Instrs[j]
		if d := instrDefReg(in); d == l.Reg || d == rs {
			return 0, false
		}
		if j > l.Sink {
			switch in.Op {
			case machine.OpSt, machine.OpStF, machine.OpCall:
				return 0, false
			}
		}
	}
	var prov []bool
	for _, in := range fc.Instrs {
		switch in.Op {
		case machine.OpBr, machine.OpBeqz, machine.OpBnez:
			if in.Target > l.Load && in.Target <= l.Sink {
				if prov == nil {
					prov = specheck.ProviderAt(fc, l.Reg)
				}
				if in.Target >= len(prov) || !prov[in.Target] {
					return 0, false
				}
			}
		}
	}
	return check, true
}

// instrDefReg mirrors specheck's def query for the opcodes the hoist
// guard cares about: the register an instruction overwrites, or -1.
func instrDefReg(in machine.Instr) int {
	switch in.Op {
	case machine.OpSt, machine.OpStF, machine.OpBr, machine.OpBeqz, machine.OpBnez,
		machine.OpRet, machine.OpPrint, machine.OpHalt, machine.OpNop, machine.OpFence:
		return -1
	}
	return in.Rd
}

// InsertBefore rewrites fc.Instrs, inserting ins[i] immediately before
// the instruction at old index i, and remaps every original branch
// target so control transfers land ON the inserted mitigation (no path
// may bypass it). Inserted instructions' own Target fields are left
// untouched. It returns the new index of each inserted instruction,
// keyed by the old index it was inserted before.
func InsertBefore(fc *machine.FuncCode, ins map[int]machine.Instr) map[int]int {
	if len(ins) == 0 {
		return nil
	}
	n := len(fc.Instrs)
	newPos := make([]int, n+1)
	insertedPos := make(map[int]int, len(ins))
	out := make([]machine.Instr, 0, n+len(ins))
	for i := 0; i < n; i++ {
		if mit, ok := ins[i]; ok {
			insertedPos[i] = len(out)
			out = append(out, mit)
		}
		newPos[i] = len(out)
		out = append(out, fc.Instrs[i])
	}
	newPos[n] = len(out)
	inserted := posValues(insertedPos)
	for i := range out {
		if _, wasInserted := inserted[i]; wasInserted {
			continue
		}
		switch out[i].Op {
		case machine.OpBr, machine.OpBeqz, machine.OpBnez:
			t := out[i].Target
			if t < 0 || t > n {
				continue
			}
			if p, ok := insertedPos[t]; ok {
				out[i].Target = p
			} else {
				out[i].Target = newPos[t]
			}
		}
	}
	fc.Instrs = out
	return insertedPos
}

// posValues inverts insertedPos into a membership set over new indices.
func posValues(insertedPos map[int]int) map[int]struct{} {
	set := make(map[int]struct{}, len(insertedPos))
	for _, p := range insertedPos {
		set[p] = struct{}{}
	}
	return set
}

// SeedBranchLeaks plants an output-neutral speculative leak in front of
// every unchecked speculation site of code: a `bnez r, <next>` on the
// about-to-be-checked register, inserted immediately before its ld.c.
// Both branch outcomes land on the check, so program output is
// unchanged, but the branch condition reads a speculative value that
// has crossed a store and not yet been validated — a genuine
// branch-condition leak for Layer 3 to find and the hardening pass to
// close. Returns the number of leaks planted. Used by the mutation
// harness's ground truth and by -exp harden to price mitigation
// policies on leaky builds.
func SeedBranchLeaks(code *machine.Program) int {
	seeded := 0
	names := make([]string, 0, len(code.Funcs))
	for name := range code.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fc := code.Funcs[name]
		sites := specheck.UncheckedSpecSites(fc)
		if len(sites) == 0 {
			continue
		}
		ins := make(map[int]machine.Instr, len(sites))
		for _, s := range sites {
			ins[s] = machine.Instr{Op: machine.OpBnez, Rs: fc.Instrs[s].Rd, Target: -1}
		}
		insertedPos := InsertBefore(fc, ins)
		for _, p := range insertedPos {
			fc.Instrs[p].Target = p + 1
		}
		seeded += len(sites)
	}
	return seeded
}
