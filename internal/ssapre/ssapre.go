package ssapre

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/par"
)

// Run optimizes every function of the program with speculative SSAPRE and
// returns per-function statistics. The program must already carry chi/mu
// lists (alias.Result.Annotate) and speculation flags (core.AssignFlags);
// edge frequencies should be applied (profile.ApplyEdges or
// profile.StaticEstimate) when control speculation is on. After Run the
// program is out of SSA form and ready for code generation.
//
// Functions are optimized concurrently on Options.Workers goroutines
// (0 = all cores, 1 = the serial oracle). Each function's SSAPRE is
// independent; the only program-global state a function pass touches is
// the reference-site counter, which is virtualized per function during
// the parallel phase and renumbered in program order afterwards, so the
// resulting IR is bit-for-bit identical to a serial run.
// A non-nil error comes from Options.VerifyHook (the per-pass
// speculation-soundness checker); the surfaced error is the one a serial
// run would have hit first, and the program should be considered invalid.
func Run(prog *ir.Program, opts Options) (map[string]*Stats, error) {
	if opts.Rounds <= 0 {
		// each round unifies one level of an expression tree (the next
		// round's canonicalization sees the copies the previous round
		// made); rounds stop early once a pass changes nothing
		opts.Rounds = 8
	}
	stats := make([]*Stats, len(prog.Funcs))
	sites := make([]*siteAlloc, len(prog.Funcs))
	if err := par.Each(opts.Workers, len(prog.Funcs), func(i int) error {
		sites[i] = &siteAlloc{}
		var ferr error
		stats[i], ferr = runFunc(prog.Funcs[i], opts, sites[i])
		return ferr
	}); err != nil {
		return nil, err
	}
	// Renumber the sites allocated during code motion in program order:
	// a serial run hands ids to function i's new check loads before
	// function i+1 runs, and within one function allocation order is
	// deterministic, so this reproduces the serial numbering exactly.
	// Ids for placeholders that a later round zeroed (the reload was
	// rewritten away) are still consumed, as they were serially.
	for _, sa := range sites {
		for _, a := range sa.assigns {
			id := prog.NextSite()
			if a.Site < 0 {
				a.Site = id
			}
		}
	}
	res := make(map[string]*Stats, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		res[fn.Name] = stats[i]
	}
	return res, nil
}

// siteAlloc hands out per-function placeholder reference-site ids (negative,
// so they can never collide with real ids) and records the receiving
// statements in allocation order for the post-parallel renumbering.
type siteAlloc struct {
	assigns []*ir.Assign
}

func (sa *siteAlloc) alloc(a *ir.Assign) {
	sa.assigns = append(sa.assigns, a)
	a.Site = -len(sa.assigns)
}

func runFunc(fn *ir.Func, opts Options, sites *siteAlloc) (*Stats, error) {
	stats := &Stats{}
	hook := func(pass string, inSSA bool) error {
		if opts.VerifyHook == nil {
			return nil
		}
		return opts.VerifyHook(fn, pass, inSSA)
	}
	var virtuals []*ir.Sym
	if opts.Alias != nil {
		virtuals = opts.Alias.FuncVirtuals[fn]
	}
	var synKeys map[ir.Stmt]string
	if opts.DataSpec == core.ModeHeuristic {
		synKeys = ir.SyntaxKeys(fn)
	}
	ssa := core.BuildSSA(fn, virtuals)
	preTemps := map[*ir.Sym]bool{}
	checkedTemps := map[*ir.Sym]bool{}
	scratch := &webScratch{}

	for round := 0; round < opts.Rounds; round++ {
		copies := buildResolver(fn, checkedTemps)
		classes := collectExprs(ssa, opts, synKeys, copies)
		stats.ExprClasses += len(classes)
		any := false
		for _, ec := range classes {
			w := newWeb(ssa, ec, opts, copies, scratch)
			w.preTemps = preTemps
			w.checkedTemps = checkedTemps
			w.sites = sites
			w.phiInsertion()
			w.rename()
			w.downSafety()
			w.willBeAvail()
			w.finalize()
			w.codeMotion()
			if w.stats.Eliminated > 0 || w.stats.Insertions > 0 {
				any = true
			}
			stats.Add(w.stats)
		}
		copyProp(fn, preTemps)
		if opts.Verify {
			mustHold(fn)
		}
		// verify only rounds that changed the IR (plus the first, so a
		// broken input is caught even when PRE finds nothing)
		if any || round == 0 {
			if err := hook(fmt.Sprintf("ssapre-round-%d", round+1), true); err != nil {
				return stats, err
			}
		}
		if !any {
			break
		}
	}
	if !opts.NoStrength {
		strengthReduce(ssa, stats)
		copyProp(fn, preTemps)
		if opts.Verify {
			mustHold(fn)
		}
		if err := hook("strength-reduce", true); err != nil {
			return stats, err
		}
	}
	dce(fn, preTemps)
	outOfSSA(fn, preTemps)
	if opts.Verify {
		if err := ir.Verify(fn); err != nil {
			panic(fmt.Sprintf("ssapre: invalid IR after out-of-SSA: %v", err))
		}
	}
	if err := hook("out-of-ssa", false); err != nil {
		return stats, err
	}
	return stats, nil
}

// mustHold panics when a transformation broke the IR or SSA invariants —
// only reachable with Options.Verify, i.e. under test.
func mustHold(fn *ir.Func) {
	if err := ir.Verify(fn); err != nil {
		panic(fmt.Sprintf("ssapre: invalid IR: %v", err))
	}
	if err := ir.VerifySSA(fn); err != nil {
		panic(fmt.Sprintf("ssapre: invalid SSA: %v", err))
	}
}

// preTemp registers a materialization temporary so out-of-SSA coalesces
// all of its versions into one register (the advanced-load / check-load
// pairing requires the ALAT key register to be stable).
func (w *web) preTemp(t *ir.Sym) {
	w.preTemps[t] = true
}
