package ssapre

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
)

// Run optimizes every function of the program with speculative SSAPRE and
// returns per-function statistics. The program must already carry chi/mu
// lists (alias.Result.Annotate) and speculation flags (core.AssignFlags);
// edge frequencies should be applied (profile.ApplyEdges or
// profile.StaticEstimate) when control speculation is on. After Run the
// program is out of SSA form and ready for code generation.
func Run(prog *ir.Program, opts Options) map[string]*Stats {
	if opts.Rounds <= 0 {
		// each round unifies one level of an expression tree (the next
		// round's canonicalization sees the copies the previous round
		// made); rounds stop early once a pass changes nothing
		opts.Rounds = 8
	}
	res := map[string]*Stats{}
	for _, fn := range prog.Funcs {
		res[fn.Name] = runFunc(fn, opts)
	}
	return res
}

func runFunc(fn *ir.Func, opts Options) *Stats {
	stats := &Stats{}
	var virtuals []*ir.Sym
	if opts.Alias != nil {
		virtuals = opts.Alias.FuncVirtuals[fn]
	}
	var synKeys map[ir.Stmt]string
	if opts.DataSpec == core.ModeHeuristic {
		synKeys = ir.SyntaxKeys(fn)
	}
	ssa := core.BuildSSA(fn, virtuals)
	preTemps := map[*ir.Sym]bool{}
	checkedTemps := map[*ir.Sym]bool{}

	for round := 0; round < opts.Rounds; round++ {
		copies := buildResolver(fn, checkedTemps)
		classes := collectExprs(ssa, opts, synKeys, copies)
		stats.ExprClasses += len(classes)
		any := false
		for _, ec := range classes {
			w := newWeb(ssa, ec, opts, copies)
			w.preTemps = preTemps
			w.checkedTemps = checkedTemps
			w.phiInsertion()
			w.rename()
			w.downSafety()
			w.willBeAvail()
			w.finalize()
			w.codeMotion()
			if w.stats.Eliminated > 0 || w.stats.Insertions > 0 {
				any = true
			}
			stats.Add(w.stats)
		}
		copyProp(fn, preTemps)
		if opts.Verify {
			mustHold(fn)
		}
		if !any {
			break
		}
	}
	if !opts.NoStrength {
		strengthReduce(ssa, stats)
		copyProp(fn, preTemps)
		if opts.Verify {
			mustHold(fn)
		}
	}
	dce(fn, preTemps)
	outOfSSA(fn, preTemps)
	if opts.Verify {
		if err := ir.Verify(fn); err != nil {
			panic(fmt.Sprintf("ssapre: invalid IR after out-of-SSA: %v", err))
		}
	}
	return stats
}

// mustHold panics when a transformation broke the IR or SSA invariants —
// only reachable with Options.Verify, i.e. under test.
func mustHold(fn *ir.Func) {
	if err := ir.Verify(fn); err != nil {
		panic(fmt.Sprintf("ssapre: invalid IR: %v", err))
	}
	if err := ir.VerifySSA(fn); err != nil {
		panic(fmt.Sprintf("ssapre: invalid SSA: %v", err))
	}
}

// preTemp registers a materialization temporary so out-of-SSA coalesces
// all of its versions into one register (the advanced-load / check-load
// pairing requires the ALAT key register to be stable).
func (w *web) preTemp(t *ir.Sym) {
	w.preTemps[t] = true
}
