package ssapre

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// copyProp propagates register-to-register copies (and constants) through
// uses while the function is in SSA form, exposing second-order
// redundancies for the next PRE round and letting DCE retire the copies.
func copyProp(fn *ir.Func, preTemps map[*ir.Sym]bool) {
	// defs of pure register copies: (sym, ver) -> source operand
	type sv = core.SymVer
	copies := map[sv]ir.Operand{}
	for _, b := range fn.Blocks {
		for _, st := range b.Stmts {
			a, ok := st.(*ir.Assign)
			if !ok || a.RK != ir.RHSCopy || a.Dst.Sym.InMemory() {
				continue
			}
			if a.Spec.AdvLoad || a.Spec.CheckLoad || a.Spec.SpecLoad {
				continue
			}
			switch src := a.A.(type) {
			case *ir.Ref:
				// memory→register copies are loads; copies out of
				// coalesced PRE temps are value snapshots that must not
				// move across the temp's later (check) redefinitions
				if !src.Sym.InMemory() && !preTemps[src.Sym] {
					copies[sv{Sym: a.Dst.Sym, Ver: a.Dst.Ver}] = src
				}
			case *ir.ConstInt:
				copies[sv{Sym: a.Dst.Sym, Ver: a.Dst.Ver}] = src
			case *ir.ConstFloat:
				copies[sv{Sym: a.Dst.Sym, Ver: a.Dst.Ver}] = src
			}
		}
	}
	if len(copies) == 0 {
		return
	}
	resolve := func(op ir.Operand) ir.Operand {
		r, ok := op.(*ir.Ref)
		if !ok {
			return op
		}
		// walk the chain on (sym, ver) and materialize a single new Ref at
		// the end; use sites must not share one Ref object (out-of-SSA
		// rewrites refs in place)
		sym, ver := r.Sym, r.Ver
		changed := false
		for i := 0; i < 64; i++ {
			next, ok := copies[sv{Sym: sym, Ver: ver}]
			if !ok {
				break
			}
			if nr, isRef := next.(*ir.Ref); isRef {
				sym, ver = nr.Sym, nr.Ver
				changed = true
			} else {
				// don't change the value's type through an untyped copy chain
				if !next.Type().Equal(sym.Type) {
					break
				}
				return next
			}
		}
		if !changed {
			return op
		}
		return fn.NewRef(sym, ver)
	}
	fix := func(op ir.Operand) ir.Operand {
		if op == nil {
			return nil
		}
		return resolve(op)
	}
	for _, b := range fn.Blocks {
		for _, phi := range b.Phis {
			for i, arg := range phi.Args {
				if r, ok := fix(arg).(*ir.Ref); ok {
					phi.Args[i] = r
				}
			}
		}
		for _, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.Assign:
				// keep the A of the copy itself resolvable; rewriting it
				// is harmless (same value)
				t.A = fix(t.A)
				if t.B != nil {
					t.B = fix(t.B)
				}
			case *ir.IStore:
				t.Addr = fix(t.Addr)
				t.Val = fix(t.Val)
			case *ir.Call:
				for i := range t.Args {
					t.Args[i] = fix(t.Args[i])
				}
			case *ir.Print:
				for i := range t.Args {
					t.Args[i] = fix(t.Args[i])
				}
			}
		}
		if b.Term.Cond != nil {
			b.Term.Cond = fix(b.Term.Cond)
		}
		if b.Term.Val != nil {
			b.Term.Val = fix(b.Term.Val)
		}
	}
}

// dce removes pure statements and phis whose register results do not
// (transitively) reach any real use. Liveness is computed with a worklist
// from essential uses, so dead phi-only cycles (loop-carried temporaries
// nothing reads) are eliminated too. Statements carrying speculation flags
// are kept: an advanced load anchors downstream checks.
func dce(fn *ir.Func, keep map[*ir.Sym]bool) {
	type sv = core.SymVer

	// definition index
	defStmt := map[sv]*ir.Assign{}
	defPhi := map[sv]*ir.Phi{}
	for _, b := range fn.Blocks {
		for _, phi := range b.Phis {
			defPhi[sv{Sym: phi.Sym, Ver: phi.Ver}] = phi
		}
		for _, st := range b.Stmts {
			if a, ok := st.(*ir.Assign); ok {
				defStmt[sv{Sym: a.Dst.Sym, Ver: a.Dst.Ver}] = a
			}
		}
	}

	live := map[sv]bool{}
	var work []sv
	markOp := func(op ir.Operand) {
		if r, ok := op.(*ir.Ref); ok {
			k := sv{Sym: r.Sym, Ver: r.Ver}
			if !live[k] {
				live[k] = true
				work = append(work, k)
			}
		}
	}
	removable := func(a *ir.Assign) bool {
		return !a.Dst.Sym.InMemory() && isPureRHS(a.RK) && !keep[a.Dst.Sym] &&
			!a.Spec.AdvLoad && !a.Spec.CheckLoad && !a.Spec.SpecLoad
	}

	// essential roots: effects (stores, calls, prints, terminators) and
	// non-removable assignments
	for _, b := range fn.Blocks {
		for _, st := range b.Stmts {
			a, isAssign := st.(*ir.Assign)
			if isAssign && removable(a) {
				continue
			}
			ir.EachUse(st, markOp)
		}
		if b.Term.Cond != nil {
			markOp(b.Term.Cond)
		}
		if b.Term.Val != nil {
			markOp(b.Term.Val)
		}
	}
	// transitive closure through defs
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		if a, ok := defStmt[k]; ok {
			ir.EachUse(a, markOp)
		}
		if phi, ok := defPhi[k]; ok {
			for _, arg := range phi.Args {
				markOp(arg)
			}
		}
	}
	// kept symbols: all of their versions stay (coalesced PRE temps)
	symLive := map[*ir.Sym]bool{}
	for k := range live {
		if keep[k.Sym] {
			symLive[k.Sym] = true
		}
	}

	isLive := func(s *ir.Sym, ver int) bool {
		return live[sv{Sym: s, Ver: ver}] || symLive[s]
	}

	for _, b := range fn.Blocks {
		// filter in place: the lists only shrink
		phis := b.Phis[:0]
		for _, phi := range b.Phis {
			if phi.Sym.Kind != ir.SymVirtual && !phi.Sym.InMemory() &&
				!isLive(phi.Sym, phi.Ver) {
				continue
			}
			phis = append(phis, phi)
		}
		b.Phis = phis
		stmts := b.Stmts[:0]
		for _, st := range b.Stmts {
			if a, ok := st.(*ir.Assign); ok && removable(a) && !isLive(a.Dst.Sym, a.Dst.Ver) {
				continue
			}
			stmts = append(stmts, st)
		}
		b.Stmts = stmts
	}
}

func isPureRHS(rk ir.RHSKind) bool {
	switch rk {
	case ir.RHSCopy, ir.RHSUnary, ir.RHSBinary, ir.RHSLoad, ir.RHSAlloc:
		return true
	}
	return false
}
