package ssapre

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// strengthReduce implements the strength-reduction and linear-function
// test-replacement clients of the framework (Kennedy et al., CC'98; §4 of
// the paper lists them among the SSAPRE optimizations).
//
// For every loop with a basic induction variable
//
//	x2 = φ(x0, x3) ;  x3 = x2 + c        (c a constant)
//
// each in-loop multiplication t = x2 * k with loop-invariant k is replaced
// by an update chain
//
//	preheader:  s0 = x0 * k
//	header:     s2 = φ(s0, s3)
//	after x3:   s3 = s2 + c*k
//	use site:   t  = s2
//
// and, when the loop's exit test compares x2 (or x3) against a
// loop-invariant bound with positive step and constant k > 0, the test is
// rewritten to compare the strength-reduced temporary against bound*k
// (linear-function test replacement), letting DCE retire the original
// induction variable when nothing else uses it.
func strengthReduce(ssa *core.SSA, stats *Stats) {
	fn := ssa.Fn
	copies := buildResolver(fn, nil)
	loops, _ := ir.FindLoops(fn, ssa.DT)
	for _, loop := range loops {
		reduceLoop(ssa, loop, copies, stats)
	}
}

// indVar describes one basic induction variable of a loop.
type indVar struct {
	sym     *ir.Sym
	phi     *ir.Phi
	header  *ir.Block
	initRef *ir.Ref // value entering the loop
	nextRef *ir.Ref // φ operand from the backedge (x3)
	incStmt *ir.Assign
	incIdx  int // statement index of incStmt within its block
	incBlk  *ir.Block
	step    int64
	backIdx int // φ operand index of the backedge
}

func reduceLoop(ssa *core.SSA, loop *ir.Loop, copies map[core.SymVer]ir.Operand, stats *Stats) {
	header := loop.Header
	if len(header.Preds) != 2 {
		return
	}
	// identify preheader and latch
	preIdx, backIdx := -1, -1
	for i, p := range header.Preds {
		if loop.Blocks[p] {
			backIdx = i
		} else {
			preIdx = i
		}
	}
	if preIdx < 0 || backIdx < 0 {
		return
	}
	preheader := header.Preds[preIdx]

	ivs := findInductionVars(ssa, loop, header, preIdx, backIdx, copies)
	if len(ivs) == 0 {
		return
	}

	for _, iv := range ivs {
		reduceCandidates(ssa, loop, preheader, iv, copies, stats)
	}
}

// findInductionVars locates x2 = φ(x0, x3) with x3 = x2 + c in the loop.
// The backedge value is resolved through copy chains, since lowering
// splits `x++` into `t = x + c; x = t`.
func findInductionVars(ssa *core.SSA, loop *ir.Loop, header *ir.Block, preIdx, backIdx int, copies map[core.SymVer]ir.Operand) []*indVar {
	var out []*indVar
	for _, phi := range header.Phis {
		if phi.Sym.Kind == ir.SymVirtual || phi.Sym.InMemory() || phi.Sym.Type.Kind != ir.KInt {
			continue
		}
		next, ok := resolveOperand(phi.Args[backIdx], copies).(*ir.Ref)
		if !ok {
			continue
		}
		d, ok := ssa.Def[core.SymVer{Sym: next.Sym, Ver: next.Ver}]
		if !ok || d.Kind != core.DefStmt || !loop.Blocks[d.Block] {
			continue
		}
		inc, ok := d.Stmt.(*ir.Assign)
		if !ok || inc.RK != ir.RHSBinary {
			continue
		}
		isPhiRef := func(op ir.Operand) bool {
			r, ok := resolveOperand(op, copies).(*ir.Ref)
			return ok && r.Sym == phi.Sym && r.Ver == phi.Ver
		}
		var step int64
		switch inc.Op {
		case ir.OpAdd:
			if isPhiRef(inc.A) {
				if c, okB := inc.B.(*ir.ConstInt); okB {
					step = c.Val
				}
			} else if c, okA := inc.A.(*ir.ConstInt); okA && isPhiRef(inc.B) {
				step = c.Val
			}
		case ir.OpSub:
			if isPhiRef(inc.A) {
				if c, okB := inc.B.(*ir.ConstInt); okB {
					step = -c.Val
				}
			}
		}
		if step == 0 {
			continue
		}
		idx := stmtIndex(d.Block, d.Stmt)
		if idx < 0 {
			continue
		}
		out = append(out, &indVar{
			sym: phi.Sym, phi: phi, header: header,
			initRef: phi.Args[preIdx], nextRef: next,
			incStmt: inc, incIdx: idx, incBlk: d.Block,
			step: step, backIdx: backIdx,
		})
	}
	return out
}

func stmtIndex(b *ir.Block, st ir.Stmt) int {
	for i, s := range b.Stmts {
		if s == st {
			return i
		}
	}
	return -1
}

// srCand is one strength-reduction candidate multiplication.
type srCand struct {
	stmt  *ir.Assign
	block *ir.Block
	k     ir.Operand // loop-invariant multiplier (const or invariant ref)
}

// reduceCandidates rewrites every `t = x2 * k` in the loop.
func reduceCandidates(ssa *core.SSA, loop *ir.Loop, preheader *ir.Block, iv *indVar, copies map[core.SymVer]ir.Operand, stats *Stats) {
	var cands []srCand
	for b := range loop.Blocks {
		for _, st := range b.Stmts {
			a, ok := st.(*ir.Assign)
			if !ok || a.RK != ir.RHSBinary || a.Op != ir.OpMul {
				continue
			}
			if a.Spec.AdvLoad || a.Spec.CheckLoad || a.Spec.SpecLoad {
				continue
			}
			x, k := matchIVMul(a, iv, copies)
			if x == nil {
				continue
			}
			if !operandInvariant(ssa, loop, k) {
				continue
			}
			cands = append(cands, srCand{stmt: a, block: b, k: k})
		}
	}
	if len(cands) == 0 {
		return
	}

	// group candidates by multiplier value so each k gets one chain
	for ci, c := range cands {
		already := false
		for cj := 0; cj < ci; cj++ {
			if ir.SameOperand(cands[cj].k, c.k) {
				already = true
			}
		}
		if already {
			continue
		}
		buildChain(ssa, loop, preheader, iv, c.k, cands, copies, stats)
	}
}

// matchIVMul matches t = x2*k or t = k*x2 against the induction variable's
// φ version, resolving operands through copy chains.
func matchIVMul(a *ir.Assign, iv *indVar, copies map[core.SymVer]ir.Operand) (x *ir.Ref, k ir.Operand) {
	if r, ok := resolveOperand(a.A, copies).(*ir.Ref); ok && r.Sym == iv.sym && r.Ver == iv.phi.Ver {
		return r, a.B
	}
	if r, ok := resolveOperand(a.B, copies).(*ir.Ref); ok && r.Sym == iv.sym && r.Ver == iv.phi.Ver {
		return r, a.A
	}
	return nil, nil
}

// operandInvariant reports whether an operand's value cannot change inside
// the loop: constants, and refs whose definition is outside the loop.
func operandInvariant(ssa *core.SSA, loop *ir.Loop, op ir.Operand) bool {
	switch o := op.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.AddrOf:
		return true
	case *ir.Ref:
		if o.Sym.InMemory() || o.Sym.Kind == ir.SymVirtual {
			return false
		}
		d, ok := ssa.Def[core.SymVer{Sym: o.Sym, Ver: o.Ver}]
		if !ok {
			return false
		}
		return !loop.Blocks[d.Block]
	}
	return false
}

// buildChain materializes the strength-reduced temporary for multiplier k
// and rewrites all matching candidates; then attempts LFTR.
func buildChain(ssa *core.SSA, loop *ir.Loop, preheader *ir.Block, iv *indVar, k ir.Operand, cands []srCand, copies map[core.SymVer]ir.Operand, stats *Stats) {
	fn := ssa.Fn
	s := fn.NewTemp(ir.IntType)
	newVer := func() int { s.NVers++; return s.NVers }

	// preheader: s0 = x_init * k
	v0 := newVer()
	init := &ir.Assign{Dst: &ir.Ref{Sym: s, Ver: v0}, RK: ir.RHSBinary, Op: ir.OpMul,
		A: &ir.Ref{Sym: iv.initRef.Sym, Ver: iv.initRef.Ver}, B: cloneOperand(k)}
	preheader.Stmts = append(preheader.Stmts, init)
	ssa.Def[core.SymVer{Sym: s, Ver: v0}] = core.Def{Kind: core.DefStmt, Block: preheader, Stmt: init}

	// header: s2 = φ(s0, s3)
	v2 := newVer()
	v3 := newVer()
	phi := &ir.Phi{Sym: s, Ver: v2, Args: make([]*ir.Ref, len(iv.header.Preds))}
	for i := range phi.Args {
		if i == iv.backIdx {
			phi.Args[i] = &ir.Ref{Sym: s, Ver: v3}
		} else {
			phi.Args[i] = &ir.Ref{Sym: s, Ver: v0}
		}
	}
	iv.header.Phis = append(iv.header.Phis, phi)
	ssa.Def[core.SymVer{Sym: s, Ver: v2}] = core.Def{Kind: core.DefPhi, Block: iv.header, Phi: phi}

	// after the increment: s3 = s2 + step*k  (k constant folds; invariant
	// k needs a preheader multiply)
	var stepTimesK ir.Operand
	if c, ok := k.(*ir.ConstInt); ok {
		stepTimesK = &ir.ConstInt{Val: iv.step * c.Val}
	} else {
		tk := fn.NewTemp(ir.IntType)
		tk.NVers++
		mult := &ir.Assign{Dst: &ir.Ref{Sym: tk, Ver: tk.NVers}, RK: ir.RHSBinary, Op: ir.OpMul,
			A: &ir.ConstInt{Val: iv.step}, B: cloneOperand(k)}
		preheader.Stmts = append(preheader.Stmts, mult)
		ssa.Def[core.SymVer{Sym: tk, Ver: tk.NVers}] = core.Def{Kind: core.DefStmt, Block: preheader, Stmt: mult}
		stepTimesK = &ir.Ref{Sym: tk, Ver: tk.NVers}
	}
	incS := &ir.Assign{Dst: &ir.Ref{Sym: s, Ver: v3}, RK: ir.RHSBinary, Op: ir.OpAdd,
		A: &ir.Ref{Sym: s, Ver: v2}, B: stepTimesK}
	// re-locate the increment (earlier chains may have shifted indices)
	idx := stmtIndex(iv.incBlk, iv.incStmt)
	if idx < 0 {
		return
	}
	iv.incBlk.Stmts = append(iv.incBlk.Stmts, nil)
	copy(iv.incBlk.Stmts[idx+2:], iv.incBlk.Stmts[idx+1:])
	iv.incBlk.Stmts[idx+1] = incS
	ssa.Def[core.SymVer{Sym: s, Ver: v3}] = core.Def{Kind: core.DefStmt, Block: iv.incBlk, Stmt: incS}

	// rewrite the candidate multiplications into copies of s2
	for _, c := range cands {
		if !ir.SameOperand(c.k, k) {
			continue
		}
		c.stmt.RK = ir.RHSCopy
		c.stmt.Op = ir.OpNone
		c.stmt.A = &ir.Ref{Sym: s, Ver: v2}
		c.stmt.B = nil
		stats.StrengthReduced++
	}

	// LFTR: rewrite `cond = x2 < bound` (loop-invariant bound, positive
	// step, positive constant multiplier) into `cond = s2 < bound*k`.
	// Because s2 equals x2*k exactly and multiplication by a positive
	// constant is monotone, the rewrite is sound wherever the comparison
	// value is used.
	kc, kConst := k.(*ir.ConstInt)
	if !kConst || kc.Val <= 0 || iv.step <= 0 {
		return
	}
	var boundK ir.Operand // lazily created bound*k
	for b := range loop.Blocks {
		for _, st := range b.Stmts {
			a, ok := st.(*ir.Assign)
			if !ok || a.RK != ir.RHSBinary || !a.Op.IsComparison() {
				continue
			}
			x, okX := resolveOperand(a.A, copies).(*ir.Ref)
			if !okX || x.Sym != iv.sym || x.Ver != iv.phi.Ver {
				continue
			}
			switch bound := a.B.(type) {
			case *ir.ConstInt:
				a.A = &ir.Ref{Sym: s, Ver: v2}
				a.B = &ir.ConstInt{Val: bound.Val * kc.Val}
				stats.LFTRApplied++
			case *ir.Ref:
				if !operandInvariant(ssa, loop, bound) || bound.Sym.Type.Kind != ir.KInt {
					continue
				}
				if boundK == nil {
					tb := fn.NewTemp(ir.IntType)
					tb.NVers++
					mul := &ir.Assign{Dst: &ir.Ref{Sym: tb, Ver: tb.NVers}, RK: ir.RHSBinary, Op: ir.OpMul,
						A: &ir.Ref{Sym: bound.Sym, Ver: bound.Ver}, B: &ir.ConstInt{Val: kc.Val}}
					preheader.Stmts = append(preheader.Stmts, mul)
					ssa.Def[core.SymVer{Sym: tb, Ver: tb.NVers}] = core.Def{Kind: core.DefStmt, Block: preheader, Stmt: mul}
					boundK = &ir.Ref{Sym: tb, Ver: tb.NVers}
				}
				a.A = &ir.Ref{Sym: s, Ver: v2}
				a.B = cloneOperand(boundK)
				stats.LFTRApplied++
			}
		}
	}
}

func cloneOperand(op ir.Operand) ir.Operand {
	switch o := op.(type) {
	case *ir.ConstInt:
		return &ir.ConstInt{Val: o.Val}
	case *ir.ConstFloat:
		return &ir.ConstFloat{Val: o.Val}
	case *ir.AddrOf:
		return &ir.AddrOf{Sym: o.Sym}
	case *ir.Ref:
		return &ir.Ref{Sym: o.Sym, Ver: o.Ver}
	}
	return op
}
