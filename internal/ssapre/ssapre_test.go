package ssapre

import (
	"fmt"
	"testing"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/source"
)

// pipeline compiles src and optimizes it with the given configuration,
// returning the optimized program and stats. The profiling run (when
// needed) uses profArgs.
func pipeline(t *testing.T, src string, mode core.Mode, controlSpec bool, profArgs []int64) (*ir.Program, map[string]*Stats) {
	t.Helper()
	file, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	ar := alias.Analyze(prog, alias.Options{TypeBased: true})
	ar.Annotate(prog)
	prof := profile.New()
	if _, err := interp.Run(prog, interp.Options{CollectEdges: true, CollectAlias: true, Profile: prof, Args: profArgs}); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	prof.ApplyEdges(prog)
	core.AssignFlags(prog, ar, prof, mode)
	stats, err := Run(prog, Options{DataSpec: mode, ControlSpec: controlSpec, Alias: ar, Verify: true})
	if err != nil {
		t.Fatalf("ssapre: %v", err)
	}
	for _, fn := range prog.Funcs {
		if err := ir.Verify(fn); err != nil {
			t.Fatalf("optimized IR invalid: %v\n%s", err, fn)
		}
	}
	return prog, stats
}

// checkEquiv verifies that the optimized program produces the same output
// as the unoptimized one for each argument vector.
func checkEquiv(t *testing.T, src string, mode core.Mode, controlSpec bool, profArgs []int64, runArgs [][]int64) {
	t.Helper()
	file, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ref, err := source.Lower(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	opt, _ := pipeline(t, src, mode, controlSpec, profArgs)
	for _, args := range runArgs {
		want, err := interp.Run(ref, interp.Options{Args: args})
		if err != nil {
			t.Fatalf("reference run (args=%v): %v", args, err)
		}
		got, err := interp.Run(opt, interp.Options{Args: args})
		if err != nil {
			t.Fatalf("optimized run (args=%v): %v\n%s", args, err, opt)
		}
		if got.Output != want.Output {
			t.Errorf("mode=%v args=%v: output mismatch\n got: %q\nwant: %q\nIR:\n%s",
				mode, args, got.Output, want.Output, opt)
		}
		if got.Ret != want.Ret {
			t.Errorf("mode=%v args=%v: return %d != %d", mode, args, got.Ret, want.Ret)
		}
	}
}

const redundantLoadSrc = `
int a = 10;
int b = 20;
int main() {
	int *p = &a;
	int *q = &b;
	if (arg(0) > 50) q = p;
	int x = a;
	*q = 99;
	int y = a;   // redundant if *q does not write a
	print(x, y);
	return 0;
}`

func TestSpeculativeRedundancyGetsCheck(t *testing.T) {
	prog, stats := pipeline(t, redundantLoadSrc, core.ModeProfile, false, []int64{0})
	total := Stats{}
	for _, s := range stats {
		total.Add(*s)
	}
	if total.SpecEliminated == 0 {
		t.Errorf("expected a speculative elimination (stats: %+v)\n%s", total, prog.FuncMap["main"])
	}
	if total.ChecksInserted == 0 {
		t.Error("expected at least one check load")
	}
	// the optimized IR must contain a CheckLoad-flagged statement
	found := false
	for _, b := range prog.FuncMap["main"].Blocks {
		for _, st := range b.Stmts {
			if a, ok := st.(*ir.Assign); ok && a.Spec.CheckLoad {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no ld.c in optimized main:\n%s", prog.FuncMap["main"])
	}
}

func TestBaselineDoesNotSpeculate(t *testing.T) {
	prog, stats := pipeline(t, redundantLoadSrc, core.ModeNone, false, []int64{0})
	total := Stats{}
	for _, s := range stats {
		total.Add(*s)
	}
	if total.SpecEliminated != 0 || total.ChecksInserted != 0 {
		t.Errorf("baseline must not speculate: %+v\n%s", total, prog.FuncMap["main"])
	}
}

func TestEquivalenceAcrossModesAndInputs(t *testing.T) {
	// run-time inputs deliberately include the aliasing case (arg > 50)
	// that the profile (arg=0) never saw: mis-speculation must recover.
	runArgs := [][]int64{{0}, {10}, {60}, {100}}
	for _, mode := range []core.Mode{core.ModeNone, core.ModeProfile, core.ModeHeuristic} {
		for _, cs := range []bool{false, true} {
			t.Run(fmt.Sprintf("mode=%v_cs=%v", mode, cs), func(t *testing.T) {
				checkEquiv(t, redundantLoadSrc, mode, cs, []int64{0}, runArgs)
			})
		}
	}
}

const loopInvariantSrc = `
int n = 0;
int main() {
	int steps = arg(0);
	int *v = (int*)malloc(8);
	int *w = (int*)malloc(8);
	int i = 0;
	int sum = 0;
	v[0] = 7;
	while (i < steps) {
		sum += v[0];    // loop-invariant load, may-aliased with w stores
		w[i % 8] = sum;
		i++;
	}
	print(sum);
	return 0;
}`

func TestLoopInvariantLoadPromotion(t *testing.T) {
	prog, stats := pipeline(t, loopInvariantSrc, core.ModeProfile, true, []int64{16})
	total := Stats{}
	for _, s := range stats {
		total.Add(*s)
	}
	if total.Eliminated == 0 {
		t.Errorf("loop-invariant v[0] not promoted: %+v\n%s", total, prog.FuncMap["main"])
	}
	checkEquiv(t, loopInvariantSrc, core.ModeProfile, true, []int64{16}, [][]int64{{0}, {1}, {16}, {100}})
}

func TestArithPRE(t *testing.T) {
	src := `
int main() {
	int a = arg(0);
	int b = arg(1);
	int x = 0;
	if (a > b) { x = a * b; }
	int y = a * b;  // partially redundant
	print(x + y);
	return 0;
}`
	prog, stats := pipeline(t, src, core.ModeNone, false, []int64{5, 3})
	total := Stats{}
	for _, s := range stats {
		total.Add(*s)
	}
	if total.Eliminated == 0 && total.Insertions == 0 {
		t.Errorf("a*b not PRE'd: %+v\n%s", total, prog.FuncMap["main"])
	}
	checkEquiv(t, src, core.ModeNone, false, []int64{5, 3}, [][]int64{{5, 3}, {3, 5}, {0, 0}})
}

func TestFullyRedundantArith(t *testing.T) {
	src := `
int main() {
	int a = arg(0);
	int b = arg(1);
	int x = a + b;
	int y = a + b;
	int z = b + a;  // commutative: same class
	print(x, y, z);
	return 0;
}`
	prog, stats := pipeline(t, src, core.ModeNone, false, nil)
	total := Stats{}
	for _, s := range stats {
		total.Add(*s)
	}
	if total.Eliminated < 2 {
		t.Errorf("want >= 2 eliminations for y and z, got %+v\n%s", total, prog.FuncMap["main"])
	}
	checkEquiv(t, src, core.ModeNone, false, nil, [][]int64{{1, 2}, {-4, 9}})
}

func TestCallsKillSpeculation(t *testing.T) {
	src := `
int g = 1;
void touch() { g = g + 1; }
int main() {
	int x = g;
	touch();
	int y = g;  // NOT redundant: the call certainly modifies g
	print(x, y);
	return 0;
}`
	for _, mode := range []core.Mode{core.ModeProfile, core.ModeHeuristic} {
		prog, _ := pipeline(t, src, mode, false, nil)
		// y's load of g must survive (no elimination of the second load)
		loads := 0
		for _, b := range prog.FuncMap["main"].Blocks {
			for _, st := range b.Stmts {
				if a, ok := st.(*ir.Assign); ok && a.RK == ir.RHSCopy {
					if r, ok := a.A.(*ir.Ref); ok && r.Sym.Name == "g" {
						loads++
					}
				}
			}
		}
		if loads < 2 {
			t.Errorf("mode=%v: load of g across call was wrongly eliminated (%d loads)\n%s",
				mode, loads, prog.FuncMap["main"])
		}
		checkEquiv(t, src, mode, false, nil, [][]int64{nil})
	}
}

func TestHeuristicSameSyntaxKill(t *testing.T) {
	src := `
int a = 3;
int main() {
	int *p = &a;
	int x = *p;
	*p = 77;
	int y = *p;
	print(x, y);
	return 0;
}`
	checkEquiv(t, src, core.ModeHeuristic, false, nil, [][]int64{nil})
	prog, _ := pipeline(t, src, core.ModeHeuristic, false, nil)
	got, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != "3 77\n" {
		t.Errorf("output %q, want \"3 77\\n\"", got.Output)
	}
}

// TestEquivalenceBattery runs a battery of programs through every mode and
// checks output equivalence against the unoptimized interpreter.
func TestEquivalenceBattery(t *testing.T) {
	programs := []struct {
		name string
		src  string
		args [][]int64
	}{
		{"matrix", `
double M[4][4];
int main() {
	int n = 4;
	for (int i = 0; i < n; i++)
		for (int j = 0; j < n; j++)
			M[i][j] = (double)(i * n + j);
	double trace = 0.0;
	for (int i = 0; i < n; i++) trace += M[i][i];
	print(trace);
	return 0;
}`, [][]int64{nil}},
		{"linkedlist", `
struct node { int val; struct node *next; };
int main() {
	int n = arg(0);
	struct node *head = (struct node*)0;
	for (int i = 0; i < n; i++) {
		struct node *fresh = (struct node*)malloc(2);
		fresh->val = i;
		fresh->next = head;
		head = fresh;
	}
	int sum = 0;
	struct node *p = head;
	while ((int)p != 0) { sum += p->val; p = p->next; }
	print(sum);
	return 0;
}`, [][]int64{{0}, {5}, {50}}},
		{"aliasheavy", `
int buf[16];
int main() {
	int n = arg(0);
	int *p = &buf[0];
	int *q = &buf[8];
	if (n > 1000) q = p;
	int total = 0;
	for (int i = 0; i < n; i++) {
		p[i % 8] = i;
		q[i % 8] = i * 2;
		total += p[i % 8] + q[i % 8];
	}
	print(total);
	return 0;
}`, [][]int64{{0}, {7}, {64}, {2000}}},
		{"recursion", `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int main() {
	print(fib(arg(0)));
	return 0;
}`, [][]int64{{0}, {1}, {12}}},
		{"floats", `
double acc = 0.0;
double step(double x) { acc += x * 0.5; return acc; }
int main() {
	double last = 0.0;
	for (int i = 0; i < 10; i++) last = step((double)i);
	print(last, acc);
	return 0;
}`, [][]int64{nil}},
	}
	for _, p := range programs {
		for _, mode := range []core.Mode{core.ModeNone, core.ModeProfile, core.ModeHeuristic} {
			for _, cs := range []bool{false, true} {
				name := fmt.Sprintf("%s/mode=%v/cs=%v", p.name, mode, cs)
				t.Run(name, func(t *testing.T) {
					profArgs := []int64{4}
					checkEquiv(t, p.src, mode, cs, profArgs, p.args)
				})
			}
		}
	}
}

// TestCheckedTempOpaqueRegression pins the fix for a miscompilation found
// by fuzzing: a load web with check loads coalesces its temp into one
// register that the ld.c redefines at run time, so the temp's SSA versions
// do not denote stable values. A later PRE round used to canonicalize
// operands through copies of those versions and hoisted `t ^ x` into the
// preheader with the pre-check value. The load inside the loop crosses a
// same-iteration store, so the check always reloads; any reuse of the
// pre-store value is wrong.
func TestCheckedTempOpaqueRegression(t *testing.T) {
	src := `
int G0[8];
int G1[32];
int gscalar = 59;
int main() {
	int seed = arg(0);
	int v = gscalar;
	int *p = &G0[G1[seed & 31] & 7];
	for (int i = 0; i < 2; i++) {
		if (v) {
			*p = 15;
			if (((v < 18) < *p)) {
				v ^= *p;
			}
		}
	}
	print(v);
	return 0;
}`
	// aggressive flags (empty profile) reproduce the original failure
	file, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := source.Lower(file)
	if err != nil {
		t.Fatal(err)
	}
	want, err := interp.Run(ref, interp.Options{Args: []int64{0}})
	if err != nil {
		t.Fatal(err)
	}

	file2, _ := source.Parse(src)
	prog, err := source.Lower(file2)
	if err != nil {
		t.Fatal(err)
	}
	ar := alias.Analyze(prog, alias.Options{TypeBased: true})
	ar.Annotate(prog)
	core.AssignFlags(prog, ar, profile.New(), core.ModeProfile) // all weak
	profile.StaticEstimate(prog)
	if _, err := Run(prog, Options{DataSpec: core.ModeProfile, ControlSpec: true, Alias: ar, Verify: true}); err != nil {
		t.Fatal(err)
	}
	got, err := interp.Run(prog, interp.Options{Args: []int64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != want.Output {
		t.Fatalf("regression: got %q want %q\n%s", got.Output, want.Output, prog.FuncMap["main"])
	}
}

// TestSameSymVersionCollisionRegression pins the second fuzzer-found
// miscompilation: when a binary expression's two operands canonicalize to
// different SSA versions of the same web temporary (a location's value
// loaded before and after a store), per-symbol version tracking would
// conflate them and materialize `t - t`. Such occurrences must be left
// unoptimized.
func TestSameSymVersionCollisionRegression(t *testing.T) {
	src := `
int G1[32];
int gscalar = 30;
int square(int x) {
	int d = (x - G1[x & 31]);
	return (d * d);
}
int main() {
	int seed = arg(0);
	for (int z = 0; z < 32; z++) G1[z] = (z * 7 + seed) % 97;
	int before = gscalar;
	gscalar ^= square(G1[before & 31]);
	if (((seed * seed) < before)) {
		if (((gscalar ^ -10) - (-14 - before))) {
			if ((gscalar / 4)) {
				for (int i = 0; i < 13; i++) { }
			}
			seed = square((before - gscalar));  // pre-store minus post-store value
		}
	}
	int v = ((seed < before) - (before * before));
	int check = gscalar;
	check ^= v;
	print(check);
	return 0;
}`
	checkEquiv(t, src, core.ModeNone, true, []int64{3}, [][]int64{{0}, {3}, {7}})
	checkEquiv(t, src, core.ModeProfile, true, []int64{3}, [][]int64{{0}, {3}, {7}})
}

// TestRoundsConvergence: the PRE fixpoint is stable — a higher round cap
// produces identical code to the default (iteration stops when a round
// changes nothing).
func TestRoundsConvergence(t *testing.T) {
	src := `
double *dvec(int n) { return (double*)malloc(n); }
int main() {
	int n = arg(0);
	double *a = dvec(16);
	double *b = dvec(16);
	double s = 0.0;
	for (int i = 0; i < n; i++) {
		s += a[(i * 3) & 15] * b[(i * 5) & 15];
		b[i & 15] = s;
	}
	print(s);
	return 0;
}`
	render := func(rounds int) string {
		file, err := source.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := source.Lower(file)
		if err != nil {
			t.Fatal(err)
		}
		ar := alias.Analyze(prog, alias.Options{TypeBased: true})
		ar.Annotate(prog)
		prof := profile.New()
		if _, err := interp.Run(prog, interp.Options{CollectEdges: true, CollectAlias: true, Profile: prof, Args: []int64{8}}); err != nil {
			t.Fatal(err)
		}
		prof.ApplyEdges(prog)
		core.AssignFlags(prog, ar, prof, core.ModeProfile)
		if _, err := Run(prog, Options{DataSpec: core.ModeProfile, ControlSpec: true, Alias: ar, Rounds: rounds}); err != nil {
			t.Fatal(err)
		}
		return prog.FuncMap["main"].String()
	}
	if render(8) != render(20) {
		t.Error("rounds 8 and 20 disagree: the fixpoint is not stable")
	}
}
