package ssapre

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
)

// outOfSSA converts the function back to executable (non-SSA) form:
//
//   - every version of a register symbol becomes its own symbol (version 0
//     keeps the original symbol, so parameters stay intact);
//   - PRE temporaries are coalesced: all of their versions share the one
//     register, keeping the ld.a / ld.c ALAT register key stable;
//   - register phis become (parallel) copies at the ends of predecessors
//     (critical edges were split before renaming);
//   - phis of memory-resident and virtual symbols are analysis-only and
//     are dropped; chi/mu lists are cleared.
func outOfSSA(fn *ir.Func, coalesce map[*ir.Sym]bool) {
	type sv = core.SymVer
	mapped := map[sv]*ir.Sym{}
	symFor := func(s *ir.Sym, ver int) *ir.Sym {
		if s.InMemory() || s.Kind == ir.SymVirtual || s.Kind == ir.SymGlobal {
			return s
		}
		if coalesce[s] || ver == 0 {
			return s
		}
		k := sv{Sym: s, Ver: ver}
		if m, ok := mapped[k]; ok {
			return m
		}
		m := fn.NewSym(fmt.Sprintf("%s.%d", s.Name, ver), s.Type, ir.SymTemp)
		mapped[k] = m
		return m
	}
	// fixRef rewrites the ref in place: refs are never shared between
	// distinct operand positions after renaming, and the rewrite is
	// idempotent anyway (once Ver is 0, symFor maps the sym to itself).
	fixRef := func(r *ir.Ref) *ir.Ref {
		if r == nil {
			return nil
		}
		r.Sym = symFor(r.Sym, r.Ver)
		r.Ver = 0
		return r
	}
	fixOp := func(op ir.Operand) ir.Operand {
		if r, ok := op.(*ir.Ref); ok {
			return fixRef(r)
		}
		return op
	}

	// 1. rewrite statement operands and destinations
	for _, b := range fn.Blocks {
		for _, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.Assign:
				t.Dst = fixRef(t.Dst)
				t.A = fixOp(t.A)
				if t.B != nil {
					t.B = fixOp(t.B)
				}
				t.Mus = nil
				t.Chis = nil
			case *ir.IStore:
				t.Addr = fixOp(t.Addr)
				t.Val = fixOp(t.Val)
				t.Chis = nil
				t.VV = nil
			case *ir.Call:
				for i := range t.Args {
					t.Args[i] = fixOp(t.Args[i])
				}
				if t.Dst != nil {
					t.Dst = fixRef(t.Dst)
				}
				t.Mus = nil
				t.Chis = nil
			case *ir.Print:
				for i := range t.Args {
					t.Args[i] = fixOp(t.Args[i])
				}
			}
		}
		if b.Term.Cond != nil {
			b.Term.Cond = fixOp(b.Term.Cond)
		}
		if b.Term.Val != nil {
			b.Term.Val = fixOp(b.Term.Val)
		}
	}

	// 2. phis of register symbols become parallel copies on the incoming
	//    edges; phis of memory/virtual symbols vanish
	edgeCopies := map[*ir.Block][][]copyOp{} // pred -> copy groups per succ
	for _, b := range fn.Blocks {
		for _, phi := range b.Phis {
			s := phi.Sym
			if s.InMemory() || s.Kind == ir.SymVirtual || s.Kind == ir.SymGlobal {
				continue
			}
			dst := symFor(s, phi.Ver)
			for j, pred := range b.Preds {
				src := symFor(phi.Args[j].Sym, phi.Args[j].Ver)
				if src == dst {
					continue
				}
				if edgeCopies[pred] == nil {
					edgeCopies[pred] = make([][]copyOp, len(pred.Succs))
				}
				k := pred.SuccIndex(b)
				edgeCopies[pred][k] = append(edgeCopies[pred][k], copyOp{dst: dst, src: src})
			}
		}
		b.Phis = nil
	}

	// 3. sequentialize each edge's parallel copy group and append it to
	//    the predecessor (critical edges are split, so a pred with copies
	//    for one successor has only that successor or the copies commute)
	for pred, groups := range edgeCopies {
		for _, group := range groups {
			if len(group) == 0 {
				continue
			}
			for _, c := range sequentialize(fn, group) {
				pred.Stmts = append(pred.Stmts, fn.NewAssign(ir.Assign{
					Dst: fn.NewRef(c.dst, 0), RK: ir.RHSCopy, A: fn.NewRef(c.src, 0),
				}))
			}
		}
	}
}

// copyOp is one dst := src register copy of a parallel copy group.
type copyOp struct{ dst, src *ir.Sym }

// sequentialize orders a parallel copy group so that no source is read
// after being overwritten, introducing a scratch temp to break cycles.
func sequentialize(fn *ir.Func, group []copyOp) []copyOp {
	pending := append([]copyOp(nil), group...)
	var out []copyOp
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			c := pending[i]
			// safe to emit if no other pending copy reads c.dst
			blocked := false
			for j, other := range pending {
				if j != i && other.src == c.dst {
					blocked = true
					break
				}
			}
			if !blocked {
				out = append(out, c)
				pending = append(pending[:i], pending[i+1:]...)
				progress = true
				i--
			}
		}
		if !progress {
			// cycle: break it with a scratch temp
			c := pending[0]
			scratch := fn.NewSym(c.dst.Name+".swap", c.dst.Type, ir.SymTemp)
			out = append(out, copyOp{dst: scratch, src: c.src})
			pending[0] = copyOp{dst: c.dst, src: scratch}
			// after saving src, retarget readers of c.dst? not needed:
			// saving src breaks the dependency for this copy only; the
			// loop makes progress because pending[0].src (scratch) is
			// not any pending dst
		}
	}
	return out
}
