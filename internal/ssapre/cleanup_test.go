package ssapre

import (
	"testing"

	"repro/internal/ir"
)

// mkFunc builds a single-block function for pass-level unit tests.
func mkFunc() (*ir.Program, *ir.Func, *ir.Block) {
	prog := ir.NewProgram()
	f := prog.NewFunc("f", ir.IntType)
	b := f.NewBlock()
	f.Entry = b
	b.Term = ir.Term{Kind: ir.TermRet}
	return prog, f, b
}

func TestCopyPropResolvesChains(t *testing.T) {
	_, f, b := mkFunc()
	a := f.NewTemp(ir.IntType)
	c1 := f.NewTemp(ir.IntType)
	c2 := f.NewTemp(ir.IntType)
	use := f.NewTemp(ir.IntType)
	b.Stmts = []ir.Stmt{
		&ir.Assign{Dst: &ir.Ref{Sym: a, Ver: 1}, RK: ir.RHSCopy, A: &ir.ConstInt{Val: 9}},
		&ir.Assign{Dst: &ir.Ref{Sym: c1, Ver: 1}, RK: ir.RHSCopy, A: &ir.Ref{Sym: a, Ver: 1}},
		&ir.Assign{Dst: &ir.Ref{Sym: c2, Ver: 1}, RK: ir.RHSCopy, A: &ir.Ref{Sym: c1, Ver: 1}},
		&ir.Assign{Dst: &ir.Ref{Sym: use, Ver: 1}, RK: ir.RHSBinary, Op: ir.OpAdd,
			A: &ir.Ref{Sym: c2, Ver: 1}, B: &ir.Ref{Sym: c2, Ver: 1}},
	}
	copyProp(f, map[*ir.Sym]bool{})
	add := b.Stmts[3].(*ir.Assign)
	if r, ok := add.A.(*ir.ConstInt); !ok || r.Val != 9 {
		t.Errorf("copy chain not resolved to the constant: %s", add)
	}
}

func TestCopyPropStopsAtPreTemps(t *testing.T) {
	_, f, b := mkFunc()
	tsym := f.NewTemp(ir.IntType)
	d := f.NewTemp(ir.IntType)
	use := f.NewTemp(ir.IntType)
	b.Stmts = []ir.Stmt{
		&ir.Assign{Dst: &ir.Ref{Sym: tsym, Ver: 1}, RK: ir.RHSCopy, A: &ir.ConstInt{Val: 3}},
		&ir.Assign{Dst: &ir.Ref{Sym: d, Ver: 1}, RK: ir.RHSCopy, A: &ir.Ref{Sym: tsym, Ver: 1}},
		&ir.Assign{Dst: &ir.Ref{Sym: use, Ver: 1}, RK: ir.RHSCopy, A: &ir.Ref{Sym: d, Ver: 1}},
	}
	copyProp(f, map[*ir.Sym]bool{tsym: true})
	useStmt := b.Stmts[2].(*ir.Assign)
	if r, ok := useStmt.A.(*ir.Ref); !ok || r.Sym != d {
		t.Errorf("snapshot copy out of a PRE temp must not propagate: %s", useStmt)
	}
}

func TestDCERemovesDeadPhiCycles(t *testing.T) {
	// two phis feeding each other across a loop with no real use must die
	prog := ir.NewProgram()
	f := prog.NewFunc("f", ir.IntType)
	entry, header, latch, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = entry
	ir.Connect(entry, header)
	ir.Connect(header, latch)
	ir.Connect(header, exit)
	ir.Connect(latch, header)
	entry.Term = ir.Term{Kind: ir.TermJump}
	header.Term = ir.Term{Kind: ir.TermCond, Cond: &ir.ConstInt{Val: 1}}
	latch.Term = ir.Term{Kind: ir.TermJump}
	exit.Term = ir.Term{Kind: ir.TermRet, Val: &ir.ConstInt{Val: 0}}

	x := f.NewTemp(ir.IntType)
	header.Phis = []*ir.Phi{{Sym: x, Ver: 2, Args: []*ir.Ref{
		{Sym: x, Ver: 1}, {Sym: x, Ver: 3},
	}}}
	entry.Stmts = []ir.Stmt{
		&ir.Assign{Dst: &ir.Ref{Sym: x, Ver: 1}, RK: ir.RHSCopy, A: &ir.ConstInt{Val: 0}},
	}
	latch.Stmts = []ir.Stmt{
		&ir.Assign{Dst: &ir.Ref{Sym: x, Ver: 3}, RK: ir.RHSBinary, Op: ir.OpAdd,
			A: &ir.Ref{Sym: x, Ver: 2}, B: &ir.ConstInt{Val: 1}},
	}
	dce(f, map[*ir.Sym]bool{})
	if len(header.Phis) != 0 {
		t.Error("dead phi cycle survived DCE")
	}
	if len(latch.Stmts) != 0 {
		t.Error("dead increment survived DCE")
	}
}

func TestDCEKeepsFlaggedLoads(t *testing.T) {
	prog := ir.NewProgram()
	g := prog.NewGlobal("g", ir.IntType)
	f := prog.NewFunc("f", ir.IntType)
	b := f.NewBlock()
	f.Entry = b
	b.Term = ir.Term{Kind: ir.TermRet, Val: &ir.ConstInt{Val: 0}}
	dead := f.NewTemp(ir.IntType)
	adv := f.NewTemp(ir.IntType)
	b.Stmts = []ir.Stmt{
		&ir.Assign{Dst: &ir.Ref{Sym: dead, Ver: 1}, RK: ir.RHSCopy, A: &ir.Ref{Sym: g},
			LoadsFrom: ir.IntType},
		&ir.Assign{Dst: &ir.Ref{Sym: adv, Ver: 1}, RK: ir.RHSCopy, A: &ir.Ref{Sym: g},
			LoadsFrom: ir.IntType, Spec: ir.SpecFlags{AdvLoad: true}},
	}
	dce(f, map[*ir.Sym]bool{})
	if len(b.Stmts) != 1 {
		t.Fatalf("want 1 surviving stmt (the ld.a anchor), got %d", len(b.Stmts))
	}
	if !b.Stmts[0].(*ir.Assign).Spec.AdvLoad {
		t.Error("the flagged load was removed instead of the dead one")
	}
}

func TestSequentializeSwap(t *testing.T) {
	prog := ir.NewProgram()
	f := prog.NewFunc("f", ir.VoidType)
	_ = prog
	x := f.NewTemp(ir.IntType)
	y := f.NewTemp(ir.IntType)
	out := sequentialize(f, []copyOp{{dst: x, src: y}, {dst: y, src: x}})
	if len(out) != 3 {
		t.Fatalf("swap needs 3 copies with a scratch, got %d", len(out))
	}
	// simulate
	vals := map[*ir.Sym]int{x: 1, y: 2}
	for _, c := range out {
		vals[c.dst] = vals[c.src]
	}
	if vals[x] != 2 || vals[y] != 1 {
		t.Errorf("swap broken: x=%d y=%d", vals[x], vals[y])
	}
}

func TestSequentializeChain(t *testing.T) {
	prog := ir.NewProgram()
	f := prog.NewFunc("f", ir.VoidType)
	_ = prog
	a := f.NewTemp(ir.IntType)
	b := f.NewTemp(ir.IntType)
	c := f.NewTemp(ir.IntType)
	// parallel: a<-b, b<-c  (no cycle; must emit a<-b first)
	out := sequentialize(f, []copyOp{{dst: b, src: c}, {dst: a, src: b}})
	vals := map[*ir.Sym]int{a: 1, b: 2, c: 3}
	for _, cp := range out {
		vals[cp.dst] = vals[cp.src]
	}
	if vals[a] != 2 || vals[b] != 3 {
		t.Errorf("chain broken: a=%d b=%d", vals[a], vals[b])
	}
}
