package ssapre

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// defNode is a node of an expression's availability web: a real
// occurrence, an expression Φ, or an occurrence inserted by Finalize.
type defNode struct {
	real     *occurrence
	phi      *phiOcc
	inserted *ir.Assign // inserted computation (CodeMotion)
	class    int
	tVer     int // temp version this node provides (CodeMotion)
}

// phiOcc is an expression Φ (the capital-Φ of the paper, distinct from
// variable φs).
type phiOcc struct {
	block *ir.Block
	class int
	vers  []int      // versions of expression variables (parallel to ec.vars) just after b's φs
	opnds []*phiOpnd // parallel to block.Preds

	downSafe    bool
	specDS      bool // non-down-safe but control speculation deems insertion profitable
	canBeAvail  bool
	later       bool
	willBeAvail bool

	node *defNode
}

// phiOpnd describes the expression value arriving along one incoming edge.
type phiOpnd struct {
	def        *defNode // nil = ⊥ (not available)
	hasRealUse bool     // latest occurrence of the version on this path is real
	spec       bool     // availability crosses speculative weak updates
	vers       []int    // variable versions (parallel to ec.vars) at the end of the predecessor
	insert     bool     // Finalize: insert computation on this edge
	insCheck   bool     // insertion is a check load (spec crossing)
	tVer       int      // temp version feeding the Φ from this edge
}

// web is the per-class state threaded through the phases.
type web struct {
	ssa       *core.SSA
	ec        *exprClass
	opts      Options
	phis      []*phiOcc
	phiAt     map[*ir.Block]*phiOcc
	occSet    map[*ir.Assign]*occurrence
	occNodes  map[*occurrence]*defNode
	nextClass int
	preTemps  map[*ir.Sym]bool
	// checkedTemps are PRE temps redefined by check loads; their versions
	// are opaque to value analysis (see buildResolver)
	checkedTemps map[*ir.Sym]bool
	copies       map[core.SymVer]ir.Operand // pure-copy resolver for value matching

	// sites allocates reference-site ids for inserted loads. Function
	// passes run concurrently, so ids are function-local placeholders
	// renumbered by Run once every function has finished.
	sites *siteAlloc

	temp  *ir.Sym // materialization temp (created on demand)
	stats Stats

	// scratch is shared by every web of one function (webs are built and
	// consumed sequentially by one goroutine; passes parallelize per
	// function), amortizing the many small allocations: version
	// snapshots, defNodes, Φ operand arrays, and walk stacks.
	scratch *webScratch
}

// varUndo is one entry of the rename walk's undo log.
type varUndo struct{ vi, ver int }

// webScratch holds buffers reused across the webs of one function.
type webScratch struct {
	intBuf    []int
	nodeBuf   []defNode
	opndBuf   []phiOpnd
	occBlocks []*ir.Block
	inDF      []bool      // Φ-home marks, indexed by RPONum
	dfList    []*ir.Block // blocks marked in inDF, in discovery order
	estack    []renEntry
	undo      []varUndo
}

func newWeb(ssa *core.SSA, ec *exprClass, opts Options, copies map[core.SymVer]ir.Operand, scratch *webScratch) *web {
	w := &web{ssa: ssa, ec: ec, opts: opts, phiAt: map[*ir.Block]*phiOcc{},
		occSet: make(map[*ir.Assign]*occurrence, len(ec.occs)), copies: copies, sites: &siteAlloc{},
		scratch: scratch}
	for _, o := range ec.occs {
		w.occSet[o.stmt] = o
	}
	return w
}

// vi returns the index of sym in the class's operand-variable list, or -1.
// The list is tiny (≤3 in practice), so a linear scan beats any map.
func (w *web) vi(sym *ir.Sym) int {
	for i, v := range w.ec.vars {
		if v == sym {
			return i
		}
	}
	return -1
}

// verAt reads a version snapshot (parallel to ec.vars); symbols outside
// the variable set report version 0, matching the old map semantics.
func (w *web) verAt(vers []int, sym *ir.Sym) int {
	if i := w.vi(sym); i >= 0 {
		return vers[i]
	}
	return 0
}

// allocInts hands out a snapshot-sized slice from a shared backing array.
// The chunks are freshly made, so handed-out slices start zeroed.
func (w *web) allocInts(n int) []int {
	if n == 0 {
		return nil
	}
	sc := w.scratch
	if len(sc.intBuf) < n {
		sc.intBuf = make([]int, 256+n)
	}
	s := sc.intBuf[:n:n]
	sc.intBuf = sc.intBuf[n:]
	return s
}

// newNode allocates a defNode from a chunked arena.
func (w *web) newNode(n defNode) *defNode {
	sc := w.scratch
	if len(sc.nodeBuf) == 0 {
		sc.nodeBuf = make([]defNode, 64)
	}
	p := &sc.nodeBuf[0]
	sc.nodeBuf = sc.nodeBuf[1:]
	*p = n
	return p
}

// allocOpnds allocates a zeroed phiOpnd array from a chunked arena.
func (w *web) allocOpnds(n int) []phiOpnd {
	sc := w.scratch
	if len(sc.opndBuf) < n {
		sc.opndBuf = make([]phiOpnd, 64+n)
	}
	s := sc.opndBuf[:n:n]
	sc.opndBuf = sc.opndBuf[n:]
	return s
}

// occStillValid re-checks that the collected statement still computes this
// expression (an earlier class's CodeMotion may have rewritten it).
func (w *web) occStillValid(o *occurrence) bool {
	a := o.stmt
	if a.RK != w.ec.key.rk {
		return false
	}
	switch w.ec.kind {
	case exprArith:
		if a.Op != w.ec.key.op {
			return false
		}
	case exprDirectLoad:
		r, ok := a.A.(*ir.Ref)
		if !ok || !r.Sym.InMemory() {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Step 1: Φ-Insertion (paper Appendix A, with the weak-update-skipping
// walk that makes expressions speculatively anticipated).
// ---------------------------------------------------------------------

func (w *web) phiInsertion() {
	// Φ-home set, tracked with RPO-indexed marks plus a discovery-order
	// list (the old map version iterated in nondeterministic order; the
	// phases are insensitive to it, class numbering happens in rename's
	// dominator walk).
	sc := w.scratch
	dt := w.ssa.DT
	if n := len(dt.Order()); len(sc.inDF) < n {
		sc.inDF = make([]bool, n)
	} else {
		for _, b := range sc.dfList {
			sc.inDF[dt.RPONum(b)] = false
		}
	}
	sc.dfList = sc.dfList[:0]
	mark := func(b *ir.Block) {
		if i := dt.RPONum(b); !sc.inDF[i] {
			sc.inDF[i] = true
			sc.dfList = append(sc.dfList, b)
		}
	}
	occBlocks := sc.occBlocks[:0]
	for _, o := range w.ec.occs {
		occBlocks = append(occBlocks, o.block)
	}
	sc.occBlocks = occBlocks[:0]
	for _, b := range dt.IteratedFrontier(occBlocks) {
		mark(b)
	}

	// variable-φ-driven insertion: from each occurrence operand, skip
	// speculative weak updates; if the def is a variable φ, its block
	// (and those of φs feeding it, transitively) get an expression Φ.
	var visited map[*ir.Phi]bool
	var addPhiRec func(phi *ir.Phi, blockOf *ir.Block)
	addPhiRec = func(phi *ir.Phi, blockOf *ir.Block) {
		if visited == nil {
			visited = map[*ir.Phi]bool{}
		}
		if visited[phi] {
			return
		}
		visited[phi] = true
		mark(blockOf)
		for _, arg := range phi.Args {
			home, _ := w.ssa.SpecHome(phi.Sym, arg.Ver, w.ec.ctx)
			if d, ok := w.ssa.Def[core.SymVer{Sym: phi.Sym, Ver: home}]; ok && d.Kind == core.DefPhi {
				addPhiRec(d.Phi, d.Block)
			}
		}
	}
	for _, o := range w.ec.occs {
		for _, v := range w.ec.vars {
			ver := w.ec.verOf(o, v)
			home, _ := w.ssa.SpecHome(v, ver, w.ec.ctx)
			if d, ok := w.ssa.Def[core.SymVer{Sym: v, Ver: home}]; ok && d.Kind == core.DefPhi {
				addPhiRec(d.Phi, d.Block)
			}
		}
	}

	for _, b := range sc.dfList {
		if len(b.Preds) < 2 {
			continue // Φ only makes sense at merge points
		}
		p := &phiOcc{block: b, class: -1, opnds: make([]*phiOpnd, len(b.Preds)), downSafe: true, canBeAvail: true}
		backing := w.allocOpnds(len(b.Preds))
		for i := range p.opnds {
			p.opnds[i] = &backing[i]
		}
		w.phis = append(w.phis, p)
		w.phiAt[b] = p
		w.stats.PhisPlaced++
	}
}

// ---------------------------------------------------------------------
// Step 2: Rename — assign h-versions (classes) to occurrences and Φs,
// using the speculative walk to identify speculative redundancies
// (§4.3 of the paper).
// ---------------------------------------------------------------------

type renEntry struct {
	occ *occurrence
	phi *phiOcc
}

func (e renEntry) classOf() int {
	if e.occ != nil {
		return e.occ.class
	}
	return e.phi.class
}

func (w *web) rename() {
	nv := len(w.ec.vars)
	varTops := w.allocInts(nv) // zeroed
	estack := w.scratch.estack[:0]

	// undo log for the dominator walk: touch records the displaced
	// version, block exit replays the log in reverse. Replaces the old
	// per-block saved-versions map.
	undo := w.scratch.undo[:0]

	// scratch snapshots reused across statements (never escape a single
	// matchVers call)
	curBuf := w.allocInts(nv)
	tgtBuf := w.allocInts(nv)

	// snap returns a durable copy of the current variable versions.
	snap := func() []int {
		s := w.allocInts(nv)
		copy(s, varTops)
		return s
	}

	occVers := func(o *occurrence, buf []int) []int {
		for i, v := range w.ec.vars {
			buf[i] = w.ec.verOf(o, v)
		}
		return buf
	}

	topVers := func(top renEntry) []int {
		if top.occ != nil {
			return occVers(top.occ, tgtBuf)
		}
		return top.phi.vers
	}

	// matchVers checks whether current versions `cur` denote the same
	// values as target versions `tgt` (both parallel to ec.vars):
	// versions are resolved through pure copy chains (SSA value identity)
	// and, failing that, walked through speculative weak updates.
	matchVers := func(cur, tgt []int) (match, spec bool) {
		anySpec := false
		for i, v := range w.ec.vars {
			cv, tv := cur[i], tgt[i]
			if cv == tv {
				continue
			}
			ca := resolveSymVer(v, cv, w.copies)
			cb := resolveSymVer(v, tv, w.copies)
			caSym, caVer, caRef := v, cv, true
			if ca != nil {
				if r, ok := ca.(*ir.Ref); ok {
					caSym, caVer = r.Sym, r.Ver
				} else {
					caRef = false
				}
			}
			cbSym, cbVer, cbRef := v, tv, true
			if cb != nil {
				if r, ok := cb.(*ir.Ref); ok {
					cbSym, cbVer = r.Sym, r.Ver
				} else {
					cbRef = false
				}
			}
			if caRef && cbRef {
				if caSym == cbSym && caVer == cbVer {
					continue
				}
				if caSym == cbSym {
					reaches, sp := w.ssa.SpecReaches(caSym, caVer, cbVer, w.ec.ctx)
					if reaches {
						if sp {
							anySpec = true
						}
						continue
					}
				}
			} else if !caRef && !cbRef && ir.SameOperand(ca, cb) {
				continue
			}
			// fall back to the raw chain (vv and memory symbols are
			// never copied, so this is the common case for them)
			reaches, sp := w.ssa.SpecReaches(v, cv, tv, w.ec.ctx)
			if !reaches {
				return false, false
			}
			if sp {
				anySpec = true
			}
		}
		return true, anySpec
	}

	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		undoLen := len(undo)
		touch := func(sym *ir.Sym, ver int) {
			vi := w.vi(sym)
			if vi < 0 {
				return
			}
			undo = append(undo, varUndo{vi, varTops[vi]})
			varTops[vi] = ver
		}
		stackLen := len(estack)

		for _, phi := range b.Phis {
			touch(phi.Sym, phi.Ver)
		}
		if p := w.phiAt[b]; p != nil {
			p.class = w.nextClass
			w.nextClass++
			p.vers = snap()
			p.node = w.newNode(defNode{phi: p, class: p.class})
			estack = append(estack, renEntry{phi: p})
		}

		for _, st := range b.Stmts {
			if a, ok := st.(*ir.Assign); ok {
				if o := w.occSet[a]; o != nil && w.occStillValid(o) {
					cur := occVers(o, curBuf)
					assigned := false
					if len(estack) > 0 {
						top := estack[len(estack)-1]
						tgt := topVers(top)
						if match, spec := matchVers(cur, tgt); match {
							o.class = top.classOf()
							o.spec = spec
							if top.occ != nil {
								o.defOcc = w.newNode(defNode{real: top.occ, class: o.class})
							} else {
								o.defOcc = top.phi.node
							}
							assigned = true
							estack = append(estack, renEntry{occ: o})
						}
					}
					if !assigned {
						o.class = w.nextClass
						w.nextClass++
						o.defOcc = nil
						o.spec = false
						estack = append(estack, renEntry{occ: o})
					}
				}
			}
			// variable definitions update the current versions
			switch t := st.(type) {
			case *ir.Assign:
				touch(t.Dst.Sym, t.Dst.Ver)
				for _, chi := range t.Chis {
					touch(chi.Sym, chi.NewVer)
				}
			case *ir.IStore:
				for _, chi := range t.Chis {
					touch(chi.Sym, chi.NewVer)
				}
			case *ir.Call:
				if t.Dst != nil {
					touch(t.Dst.Sym, t.Dst.Ver)
				}
				for _, chi := range t.Chis {
					touch(chi.Sym, chi.NewVer)
				}
			}
		}

		// Φ-operand pseudo-occurrences at the ends of predecessor blocks
		for _, succ := range b.Succs {
			p := w.phiAt[succ]
			if p == nil {
				continue
			}
			j := succ.PredIndex(b)
			opnd := p.opnds[j]
			opnd.vers = snap()
			if len(estack) == 0 {
				opnd.def = nil
				continue
			}
			top := estack[len(estack)-1]
			tgt := topVers(top)
			match, spec := matchVers(opnd.vers, tgt)
			if !match {
				opnd.def = nil
				continue
			}
			if top.occ != nil {
				opnd.def = w.newNode(defNode{real: top.occ, class: top.occ.class})
				opnd.hasRealUse = true
			} else {
				opnd.def = top.phi.node
				opnd.hasRealUse = false
			}
			opnd.spec = spec
		}

		for _, c := range w.ssa.DT.Children[b] {
			walk(c)
		}
		estack = estack[:stackLen]
		for i := len(undo) - 1; i >= undoLen; i-- {
			varTops[undo[i].vi] = undo[i].ver
		}
		undo = undo[:undoLen]
	}
	walk(w.ssa.Fn.Entry)
	w.scratch.estack = estack[:0]
	w.scratch.undo = undo[:0]
}

// ---------------------------------------------------------------------
// Step 3: DownSafety — a Φ is down-safe when the expression's value is
// used on every path to exit before being killed. The kill test honours
// data speculation (weak updates the context may skip do not kill).
// Control speculation then re-admits profitable non-down-safe Φs.
// ---------------------------------------------------------------------

// killsClass reports whether stmt kills the expression's value: a strong
// definition of an operand variable, a flagged chi, or a weak chi the
// walk context refuses to skip.
func (w *web) killsClass(st ir.Stmt) bool {
	hit := func(sym *ir.Sym) bool {
		for _, v := range w.ec.vars {
			if v == sym {
				return true
			}
		}
		return false
	}
	chiKills := func(chis []*ir.Chi, st ir.Stmt) bool {
		for _, chi := range chis {
			if hit(chi.Sym) && (chi.Spec || w.ec.ctx.BlocksSkip(st)) {
				return true
			}
		}
		return false
	}
	switch t := st.(type) {
	case *ir.Assign:
		if hit(t.Dst.Sym) {
			return true
		}
		return chiKills(t.Chis, st)
	case *ir.IStore:
		return chiKills(t.Chis, st)
	case *ir.Call:
		if t.Dst != nil && hit(t.Dst.Sym) {
			return true
		}
		return chiKills(t.Chis, st)
	}
	return false
}

func (w *web) downSafety() {
	// Initial pass: a Φ is down-safe iff on every path forward its class
	// value reaches a real occurrence of the same class or flows into a
	// Φ-operand, before any kill or exit.
	for _, p := range w.phis {
		p.downSafe = w.usedOnAllPaths(p)
	}
	// Propagation: a Φ feeding only a non-down-safe Φ (with no real use
	// on the edge) is itself not down-safe.
	for changed := true; changed; {
		changed = false
		for _, p := range w.phis {
			if p.downSafe {
				continue
			}
			for _, opnd := range p.opnds {
				if opnd.def != nil && opnd.def.phi != nil && !opnd.hasRealUse && opnd.def.phi.downSafe {
					opnd.def.phi.downSafe = false
					changed = true
				}
			}
		}
	}
	// Control speculation: a non-down-safe Φ may still host insertions
	// when the edges needing insertion are colder than the uses saved
	// (Lo et al. PLDI'98). Trapping arithmetic is never speculated.
	if !w.opts.ControlSpec || w.trapping() {
		return
	}
	for _, p := range w.phis {
		if p.downSafe {
			continue
		}
		var insFreq float64
		for i, opnd := range p.opnds {
			if opnd.def == nil {
				if i < len(p.block.Preds) {
					pred := p.block.Preds[i]
					pi := pred.SuccIndex(p.block)
					if pi >= 0 && pi < len(pred.EdgeFreq) {
						insFreq += pred.EdgeFreq[pi]
					} else {
						insFreq += pred.Freq
					}
				}
			}
		}
		var useFreq float64
		for _, o := range w.ec.occs {
			if o.class == p.class {
				useFreq += o.block.Freq
			}
		}
		if useFreq > insFreq {
			p.specDS = true
		}
	}
}

// trapping reports whether speculatively executing the expression could
// fault in a way the VM cannot defer (integer division).
func (w *web) trapping() bool {
	return w.ec.kind == exprArith && (w.ec.key.op == ir.OpDiv || w.ec.key.op == ir.OpMod)
}

// usedOnAllPaths checks the initial down-safety of Φ p by forward
// exploration from its block.
func (w *web) usedOnAllPaths(p *phiOcc) bool {
	memo := map[*ir.Block]int{} // 0 unknown/in-progress, 1 safe, 2 unsafe
	var fromBlock func(b *ir.Block, start int) bool
	fromBlock = func(b *ir.Block, start int) bool {
		for i := start; i < len(b.Stmts); i++ {
			st := b.Stmts[i]
			if a, ok := st.(*ir.Assign); ok {
				if o := w.occSet[a]; o != nil && o.class == p.class {
					return true
				}
			}
			if w.killsClass(st) {
				return false
			}
		}
		if b.Term.Kind == ir.TermRet {
			return false
		}
		for _, s := range b.Succs {
			if q := w.phiAt[s]; q != nil {
				j := s.PredIndex(b)
				opnd := q.opnds[j]
				if opnd.def != nil && opnd.def.class == p.class {
					continue // value flows into the Φ; propagation handles it
				}
				return false
			}
			// entering s: variable φs there redefine operands → kill
			killedByPhi := false
			for _, vphi := range s.Phis {
				for _, v := range w.ec.vars {
					if vphi.Sym == v {
						killedByPhi = true
					}
				}
			}
			if killedByPhi {
				return false
			}
			switch memo[s] {
			case 1:
				continue
			case 2:
				return false
			default:
				memo[s] = 1 // optimistic for cycles: a pure cycle never exits
				if fromBlock(s, 0) {
					memo[s] = 1
				} else {
					memo[s] = 2
					return false
				}
			}
		}
		return true
	}
	return fromBlock(p.block, 0)
}

// ---------------------------------------------------------------------
// Step 4: WillBeAvailable (standard SSAPRE, with specDS standing in for
// down-safety under control speculation).
// ---------------------------------------------------------------------

func (w *web) willBeAvail() {
	safe := func(p *phiOcc) bool { return p.downSafe || p.specDS }
	for _, p := range w.phis {
		p.canBeAvail = true
	}
	// seed: non-safe Φ with a ⊥ operand cannot be available
	for _, p := range w.phis {
		if !safe(p) {
			for _, opnd := range p.opnds {
				if opnd.def == nil {
					p.canBeAvail = false
					break
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range w.phis {
			if !p.canBeAvail {
				continue
			}
			if safe(p) {
				continue
			}
			for _, opnd := range p.opnds {
				if opnd.def != nil && opnd.def.phi != nil && !opnd.def.phi.canBeAvail && !opnd.hasRealUse {
					p.canBeAvail = false
					changed = true
					break
				}
			}
		}
	}
	// later: the insertion can be postponed (no real availability feeds it)
	for _, p := range w.phis {
		p.later = p.canBeAvail
	}
	for changed := true; changed; {
		changed = false
		for _, p := range w.phis {
			if !p.later {
				continue
			}
			for _, opnd := range p.opnds {
				if opnd.def != nil && (opnd.hasRealUse || (opnd.def.phi != nil && !opnd.def.phi.later)) {
					p.later = false
					changed = true
					break
				}
			}
		}
	}
	for _, p := range w.phis {
		p.willBeAvail = p.canBeAvail && !p.later
	}
}
