package ssapre

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// codeMotion materializes the availability web into a real temporary
// (paper §4.4 and Appendix B): value-providing occurrences store into the
// temp (advanced loads, ld.a, when checks exist downstream), redundant
// occurrences reload from it (speculative ones as check loads, ld.c),
// will-be-available Φs become φs of the temp, and Φ operands lacking the
// value get computations inserted on their edges (ld.s under control
// speculation).
func (w *web) codeMotion() {
	// 1. which web nodes actually provide a consumed value?
	needed := map[*defNode]bool{}
	var reloads []*occurrence
	for _, o := range w.ec.occs {
		if o.reload && w.occStillValid(o) {
			reloads = append(reloads, o)
		}
	}
	if len(reloads) == 0 {
		return // nothing redundant; leave the function untouched
	}
	var mark func(n *defNode)
	mark = func(n *defNode) {
		if n == nil || needed[n] {
			return
		}
		needed[n] = true
		if n.phi != nil {
			for _, opnd := range n.phi.opnds {
				if !opnd.insert {
					// insCheck operands still need their defining web
					// materialized: the earlier (advanced) load provides
					// the ALAT entry and register value the check
					// validates, so the check is free when no aliasing
					// store intervened
					mark(opnd.def)
				}
			}
		}
	}
	for _, o := range reloads {
		mark(o.defOcc)
	}

	hasChecks := false
	for _, o := range reloads {
		if o.spec {
			hasChecks = true
		}
	}
	for n := range needed {
		if n.phi != nil {
			for _, opnd := range n.phi.opnds {
				if opnd.insCheck {
					hasChecks = true
				}
			}
		}
	}

	fn := w.ssa.Fn
	t := fn.NewTemp(w.ec.resType)
	w.temp = t
	w.preTemp(t)
	if hasChecks {
		// a check load redefines the coalesced register at run time:
		// from here on, t's SSA versions no longer denote distinct
		// stable values, and later rounds must treat copies out of t as
		// opaque
		w.checkedTemps[t] = true
	}
	newTVer := func() int { t.NVers++; return t.NVers }

	markAdv := w.ec.isLoad() && hasChecks

	// 2. materialize value-providing real occurrences: d = E becomes
	//    t_v = E ; d = t_v
	for n := range needed {
		if n.real == nil {
			continue
		}
		o := n.real
		vt := newTVer()
		n.tVer = vt
		oldDst := o.stmt.Dst
		o.stmt.Dst = fn.NewRef(t, vt)
		if markAdv {
			o.stmt.Spec.AdvLoad = true
			w.stats.AdvLoadsMarked++
		}
		copyStmt := fn.NewAssign(ir.Assign{Dst: oldDst, RK: ir.RHSCopy, A: fn.NewRef(t, vt)})
		insertAfter(o.block, o.stmt, copyStmt)
		w.ssa.Def[core.SymVer{Sym: t, Ver: vt}] = core.Def{Kind: core.DefStmt, Block: o.block, Stmt: o.stmt}
		w.ssa.Def[core.SymVer{Sym: oldDst.Sym, Ver: oldDst.Ver}] = core.Def{Kind: core.DefStmt, Block: o.block, Stmt: copyStmt}
	}

	// 3. materialize Φs of the temp and their operand insertions
	for n := range needed {
		if n.phi == nil {
			continue
		}
		p := n.phi
		vt := newTVer()
		n.tVer = vt
		phi := fn.NewPhi(ir.Phi{Sym: t, Ver: vt, Args: make([]*ir.Ref, len(p.block.Preds))})
		p.block.Phis = append(p.block.Phis, phi)
		w.ssa.Def[core.SymVer{Sym: t, Ver: vt}] = core.Def{Kind: core.DefPhi, Block: p.block, Phi: phi}
		for j, opnd := range p.opnds {
			pred := p.block.Preds[j]
			switch {
			case opnd.insert:
				vi := newTVer()
				ins := w.buildComputation(t, vi, opnd.vers)
				if w.ec.isLoad() {
					if !p.downSafe {
						ins.Spec.SpecLoad = true
						w.stats.SpecInsertions++
					}
					if markAdv {
						ins.Spec.AdvLoad = true
						w.stats.AdvLoadsMarked++
					}
				} else if !p.downSafe {
					w.stats.SpecInsertions++
				}
				pred.Stmts = append(pred.Stmts, ins)
				w.ssa.Def[core.SymVer{Sym: t, Ver: vi}] = core.Def{Kind: core.DefStmt, Block: pred, Stmt: ins}
				phi.Args[j] = fn.NewRef(t, vi)
				w.stats.Insertions++
			case opnd.insCheck:
				vi := newTVer()
				ins := w.buildComputation(t, vi, opnd.vers)
				ins.Spec.CheckLoad = true
				pred.Stmts = append(pred.Stmts, ins)
				w.ssa.Def[core.SymVer{Sym: t, Ver: vi}] = core.Def{Kind: core.DefStmt, Block: pred, Stmt: ins}
				phi.Args[j] = fn.NewRef(t, vi)
				w.stats.ChecksInserted++
			default:
				phi.Args[j] = fn.NewRef(t, opnd.def.tVer)
			}
		}
	}

	// 4. rewrite redundant occurrences
	for _, o := range reloads {
		defVer := o.defOcc.tVer
		if o.spec && w.ec.isLoad() {
			// speculative redundancy: the load becomes a check load into
			// the temp (free on ALAT hit, reloads on miss), and the
			// original destination copies from it (Appendix B).
			vt := newTVer()
			oldDst := o.stmt.Dst
			o.stmt.Dst = fn.NewRef(t, vt)
			o.stmt.Spec = ir.SpecFlags{CheckLoad: true}
			copyStmt := fn.NewAssign(ir.Assign{Dst: oldDst, RK: ir.RHSCopy, A: fn.NewRef(t, vt)})
			insertAfter(o.block, o.stmt, copyStmt)
			w.ssa.Def[core.SymVer{Sym: t, Ver: vt}] = core.Def{Kind: core.DefStmt, Block: o.block, Stmt: o.stmt}
			w.ssa.Def[core.SymVer{Sym: oldDst.Sym, Ver: oldDst.Ver}] = core.Def{Kind: core.DefStmt, Block: o.block, Stmt: copyStmt}
			w.stats.ChecksInserted++
			w.stats.SpecEliminated++
			w.stats.Eliminated++
		} else {
			// plain full redundancy: replace the computation with a copy
			o.stmt.RK = ir.RHSCopy
			o.stmt.Op = ir.OpNone
			o.stmt.A = fn.NewRef(t, defVer)
			o.stmt.B = nil
			o.stmt.Mus = nil
			o.stmt.LoadsFrom = nil
			o.stmt.Site = 0
			o.stmt.Spec = ir.SpecFlags{}
			w.stats.Eliminated++
		}
	}
}

// buildComputation constructs `t_ver = E` with the expression's operands
// at the given variable versions (parallel to ec.vars; variables outside
// the set read as version 0).
func (w *web) buildComputation(t *ir.Sym, ver int, vers []int) *ir.Assign {
	fn := w.ssa.Fn
	model := w.ec.occs[0].stmt
	reVer := func(op ir.Operand) ir.Operand {
		switch o := op.(type) {
		case *ir.ConstInt:
			return ir.IntConst(o.Val)
		case *ir.ConstFloat:
			return ir.FloatConst(o.Val)
		case *ir.AddrOf:
			return fn.NewAddrOf(o.Sym)
		case *ir.Ref:
			return fn.NewRef(o.Sym, w.verAt(vers, o.Sym))
		}
		return op
	}
	a := fn.NewAssign(ir.Assign{
		Dst: fn.NewRef(t, ver),
		RK:  model.RK,
		Op:  model.Op,
		A:   reVer(w.ec.aTmpl),
	})
	if w.ec.bTmpl != nil {
		a.B = reVer(w.ec.bTmpl)
	}
	if model.RK == ir.RHSLoad || (model.RK == ir.RHSCopy && w.ec.kind == exprDirectLoad) {
		a.LoadsFrom = w.ec.loadType
		w.sites.alloc(a)
		// rebuild the mu list at the insertion point's versions
		for _, mu := range model.Mus {
			a.Mus = append(a.Mus, fn.NewMu(ir.Mu{Sym: mu.Sym, Ver: w.verAt(vers, mu.Sym), Spec: mu.Spec}))
		}
	}
	return a
}

// insertAfter places stmt immediately after ref in block b.
func insertAfter(b *ir.Block, ref ir.Stmt, stmt ir.Stmt) {
	for i, s := range b.Stmts {
		if s == ref {
			b.Stmts = append(b.Stmts, nil)
			copy(b.Stmts[i+2:], b.Stmts[i+1:])
			b.Stmts[i+1] = stmt
			return
		}
	}
	b.Stmts = append(b.Stmts, stmt)
}
