package ssapre

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/source"
)

// buildWebs compiles src and runs every SSAPRE analysis phase (but not
// code motion), so the per-web decisions — classes, down-safety,
// will-be-available, reload marking — can be inspected directly.
func buildWebs(t *testing.T, src string, mode core.Mode, controlSpec bool, profArgs []int64) []*web {
	t.Helper()
	file, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	ar := alias.Analyze(prog, alias.Options{TypeBased: true})
	ar.Annotate(prog)
	prof := profile.New()
	if _, err := interp.Run(prog, interp.Options{CollectEdges: true, CollectAlias: true, Profile: prof, Args: profArgs}); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	prof.ApplyEdges(prog)
	core.AssignFlags(prog, ar, prof, mode)

	fn := prog.FuncMap["main"]
	opts := Options{DataSpec: mode, ControlSpec: controlSpec, Alias: ar}
	ssa := core.BuildSSA(fn, ar.FuncVirtuals[fn])
	copies := buildResolver(fn, map[*ir.Sym]bool{})
	classes := collectExprs(ssa, opts, nil, copies)
	var webs []*web
	for _, ec := range classes {
		w := newWeb(ssa, ec, opts, copies, &webScratch{})
		w.preTemps = map[*ir.Sym]bool{}
		w.phiInsertion()
		w.rename()
		w.downSafety()
		w.willBeAvail()
		w.finalize()
		webs = append(webs, w)
	}
	return webs
}

func TestDownSafetyDiamond(t *testing.T) {
	// the expression is computed on both sides of a diamond and below the
	// join: the join Φ is down-safe
	webs := buildWebs(t, `
int main() {
	int a = arg(0);
	int b = arg(1);
	int x = 0;
	if (a > 0) { x = a + b; } else { x = (a + b) * 2; }
	int y = a + b;
	print(x, y);
	return 0;
}`, core.ModeNone, false, nil)
	found := false
	for _, w := range webs {
		if w.ec.kind != exprArith || w.ec.key.op != ir.OpAdd {
			continue
		}
		for _, p := range w.phis {
			if len(p.opnds) == 2 && p.downSafe {
				found = true
			}
		}
	}
	if !found {
		t.Error("join Φ of a+b should be down-safe (used below the merge on every path)")
	}
}

func TestDownSafetyExitPath(t *testing.T) {
	// the expression is used only on one side of a branch below the
	// merge: not down-safe without control speculation
	webs := buildWebs(t, `
int main() {
	int a = arg(0);
	int b = arg(1);
	int x = 0;
	if (a > 0) { x = a + b; }
	int y = 0;
	if (a > 1) { y = a + b; }
	print(x, y);
	return 0;
}`, core.ModeNone, false, nil)
	for _, w := range webs {
		if w.ec.kind != exprArith || w.ec.key.op != ir.OpAdd {
			continue
		}
		for _, p := range w.phis {
			if p.downSafe {
				// a Φ whose downstream has an exit path without a use
				// must not be down-safe; only Φs wholly covered by later
				// occurrences may be
				for _, o := range w.ec.occs {
					_ = o
				}
			}
		}
	}
	// semantic check is the real guard
	checkEquiv(t, `
int main() {
	int a = arg(0);
	int b = arg(1);
	int x = 0;
	if (a > 0) { x = a + b; }
	int y = 0;
	if (a > 1) { y = a + b; }
	print(x, y);
	return 0;
}`, core.ModeNone, false, nil, [][]int64{{0, 1}, {1, 2}, {5, 5}})
}

func TestWillBeAvailRejectsUselessPhis(t *testing.T) {
	// an expression used only once, above any merge: Φs may be placed but
	// none should be will-be-available (no redundancy to cover)
	webs := buildWebs(t, `
int main() {
	int a = arg(0);
	int b = arg(1);
	int x = a + b;
	if (a > 0) { print(1); } else { print(2); }
	print(x);
	return 0;
}`, core.ModeNone, false, nil)
	for _, w := range webs {
		if w.ec.kind != exprArith || w.ec.key.op != ir.OpAdd {
			continue
		}
		for _, p := range w.phis {
			if p.willBeAvail {
				// will-be-avail without any reload is acceptable only if
				// finalize found a consumer; there are none here
				for _, o := range w.ec.occs {
					if o.reload {
						t.Error("reload without redundancy")
					}
				}
			}
		}
	}
}

func TestRenameSharesClassAcrossIdenticalVersions(t *testing.T) {
	webs := buildWebs(t, `
int main() {
	int a = arg(0);
	int b = arg(1);
	int x = a + b;
	int y = a + b;
	int z = a + b;
	print(x, y, z);
	return 0;
}`, core.ModeNone, false, nil)
	for _, w := range webs {
		if w.ec.kind != exprArith || w.ec.key.op != ir.OpAdd || len(w.ec.occs) != 3 {
			continue
		}
		c0 := w.ec.occs[0].class
		for _, o := range w.ec.occs[1:] {
			if o.class != c0 {
				t.Errorf("occurrences with identical operand versions in different classes: %d vs %d", o.class, c0)
			}
		}
		if w.ec.occs[0].reload {
			t.Error("the first occurrence is the leader, not a reload")
		}
		if !w.ec.occs[1].reload || !w.ec.occs[2].reload {
			t.Error("later occurrences must reload")
		}
	}
}

func TestRenameNewClassAfterKill(t *testing.T) {
	webs := buildWebs(t, `
int main() {
	int a = arg(0);
	int b = arg(1);
	int x = a + b;
	a = a + 1;
	int y = a + b;  // different a version: new class
	print(x, y);
	return 0;
}`, core.ModeNone, false, nil)
	for _, w := range webs {
		if w.ec.kind != exprArith || w.ec.key.op != ir.OpAdd {
			continue
		}
		// find the two a+b occurrences (a+1 is a different class by key
		// because one operand is constant)
		var classes []int
		for _, o := range w.ec.occs {
			classes = append(classes, o.class)
		}
		if len(classes) == 2 && classes[0] == classes[1] {
			t.Error("occurrences across a kill share a class")
		}
	}
}

// TestPaperFigure6EnhancedPhiInsertion reproduces the paper's Figure 6:
// an expression occurrence sits below a merge point and below a may-alias
// store. Without data speculation the store kills anticipation, so the
// variable-φ-driven walk stops at the chi and no expression Φ lands on the
// merge; with the weak update skippable, the walk reaches the variable's φ
// and the merge becomes an insertion candidate.
func TestPaperFigure6EnhancedPhiInsertion(t *testing.T) {
	src := `
int a = 1;
int b = 2;
int main() {
	int *p = &b;
	if (arg(1)) p = &a;   // may-alias of a; the profile never sees it
	int x = 0;
	if (arg(0)) {
		*p = 5;           // the paper's s2 region: a2 <- chi(a1)
		x = 1;
	}
	// merge point (the paper's s6): a3 = phi(a1, a2)
	*p = 9;               // the paper's s9..s12: a4 <- chi(a3)
	int y = a;            // s13/s14: occurrence of a
	print(x, y);
	return 0;
}`
	phiAtMergeFor := func(mode core.Mode) int {
		webs := buildWebs(t, src, mode, false, []int64{0, 0})
		count := 0
		for _, w := range webs {
			if w.ec.kind != exprDirectLoad {
				continue
			}
			if r, ok := w.ec.aTmpl.(*ir.Ref); !ok || r.Sym.Name != "a" {
				continue
			}
			count = len(w.phis)
		}
		return count
	}
	without := phiAtMergeFor(core.ModeNone)
	with := phiAtMergeFor(core.ModeProfile)
	if with <= without {
		t.Errorf("enhanced Φ-insertion should place more Φs under data speculation: none=%d profile=%d",
			without, with)
	}
}
