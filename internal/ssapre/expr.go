// Package ssapre implements the speculative SSAPRE framework of §4 of Lin
// et al. (PLDI 2003): the six-step SSA-based partial redundancy
// elimination of Kennedy et al. (TOPLAS 1999) extended with data
// speculation (enhanced Φ-insertion per Appendix A, speculative renaming,
// and check/advance-load generation in CodeMotion per Appendix B) and with
// profile-driven control speculation (Lo et al., PLDI 1998). Its clients
// are expression PRE, speculative register promotion of direct and
// indirect loads, strength reduction and linear-function test replacement.
package ssapre

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/ir"
)

// Options configures a run of the optimizer on one function.
type Options struct {
	// DataSpec selects the data-speculation mode used when interpreting
	// chi/mu speculation flags (core.ModeNone disables data speculation).
	DataSpec core.Mode
	// ControlSpec permits computation insertion at non-down-safe Φs when
	// the edge profile says it is profitable.
	ControlSpec bool
	// Rounds caps the number of PRE passes (copy propagation runs
	// between rounds so second-order redundancies surface; iteration
	// stops early when a pass changes nothing). Default 8.
	Rounds int
	// Alias provides virtual-variable identity.
	Alias *alias.Result
	// NoArith restricts PRE to load expressions only (register promotion
	// alone), for ablations.
	NoArith bool
	// NoStrength disables the strength-reduction / LFTR client.
	NoStrength bool
	// Verify re-checks CFG and SSA invariants after every PRE round and
	// transformation (used by the test suite; costs compile time).
	Verify bool
	// VerifyHook, when non-nil, is invoked on each function after every
	// optimization phase — pass is "ssapre-round-N" or "strength-reduce"
	// while the function is still in SSA form (inSSA true) and
	// "out-of-ssa" after conversion. A non-nil error aborts the run; the
	// pipeline uses it to attribute speculation-soundness violations to
	// the pass that introduced them (internal/specheck).
	VerifyHook func(fn *ir.Func, pass string, inSSA bool) error
	// Workers bounds the number of functions optimized concurrently:
	// 0 uses every core, 1 reproduces the serial pipeline bit-for-bit.
	Workers int
}

// Stats reports what the optimizer did to one function.
type Stats struct {
	ExprClasses     int // expression classes examined
	Eliminated      int // real occurrences replaced by temp reuse
	SpecEliminated  int // of those, speculative (check instructions)
	Insertions      int // computations inserted on edges
	SpecInsertions  int // of those, control-speculative
	ChecksInserted  int // check loads generated (ld.c)
	AdvLoadsMarked  int // loads marked as advanced loads (ld.a)
	PhisPlaced      int // expression Φs placed
	StrengthReduced int // induction multiplications rewritten to additions
	LFTRApplied     int // loop exit tests rewritten (linear-function test replacement)
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.ExprClasses += s2.ExprClasses
	s.Eliminated += s2.Eliminated
	s.SpecEliminated += s2.SpecEliminated
	s.Insertions += s2.Insertions
	s.SpecInsertions += s2.SpecInsertions
	s.ChecksInserted += s2.ChecksInserted
	s.AdvLoadsMarked += s2.AdvLoadsMarked
	s.PhisPlaced += s2.PhisPlaced
	s.StrengthReduced += s2.StrengthReduced
	s.LFTRApplied += s2.LFTRApplied
}

// exprKind classifies PRE-candidate expressions.
type exprKind int

const (
	exprArith exprKind = iota
	exprDirectLoad
	exprIndirectLoad
)

// leafID identifies an operand leaf ignoring SSA versions.
type leafID struct {
	kind byte // 'c' const int, 'f' const float, 's' sym ref, 'a' addr-of, '0' absent
	sym  *ir.Sym
	ival int64
	fval float64
}

func leafOf(op ir.Operand) leafID {
	switch o := op.(type) {
	case *ir.ConstInt:
		return leafID{kind: 'c', ival: o.Val}
	case *ir.ConstFloat:
		return leafID{kind: 'f', fval: o.Val}
	case *ir.Ref:
		return leafID{kind: 's', sym: o.Sym}
	case *ir.AddrOf:
		return leafID{kind: 'a', sym: o.Sym}
	}
	return leafID{kind: '0'}
}

// exprKey identifies a lexically-identical expression class.
type exprKey struct {
	kind exprKind
	rk   ir.RHSKind
	op   ir.Op
	a, b leafID
}

// occurrence is a real occurrence of an expression: an Assign computing it.
type occurrence struct {
	stmt  *ir.Assign
	block *ir.Block
	index int // statement index within block

	// vers holds the canonical SSA versions of the expression's operand
	// variables at this occurrence (operand leaves are resolved through
	// pure copy chains so that lexically different temporaries holding
	// the same SSA value share one expression class).
	vers occVerList

	class  int  // h-version assigned by Rename (-1 = unassigned)
	spec   bool // renamed speculatively: reuse requires a check
	reload bool // Finalize: replace computation with temp reuse
	defOcc *defNode
	inWeb  bool
}

// exprClass groups every occurrence of one expression.
type exprClass struct {
	key  exprKey
	kind exprKind
	occs []*occurrence

	vars     []*ir.Sym  // operand variables whose versions identify the value
	vvSym    *ir.Sym    // virtual variable (indirect loads)
	aTmpl    ir.Operand // canonical first operand template
	bTmpl    ir.Operand // canonical second operand template (binary)
	ctx      *core.WalkContext
	loadType *ir.Type // element type for load expressions
	resType  *ir.Type // type of the computed value
}

func (e *exprClass) String() string {
	return fmt.Sprintf("expr{kind=%d op=%s occs=%d}", e.kind, e.key.op, len(e.occs))
}

// buildResolver indexes pure register-to-register copies so operand
// leaves can be canonicalized to the SSA value they carry. Copies whose
// source is a check-bearing PRE temporary are excluded: a check load
// (ld.c) redefines the coalesced register at run time, so that temp's
// version numbering does not denote stable values and must stay opaque
// to value analysis. (Temps of check-free webs are honest SSA and resolve
// normally — this is what lets loads unify through hoisted address
// arithmetic.)
func buildResolver(fn *ir.Func, checked map[*ir.Sym]bool) map[core.SymVer]ir.Operand {
	copies := map[core.SymVer]ir.Operand{}
	for _, b := range fn.Blocks {
		for _, st := range b.Stmts {
			a, ok := st.(*ir.Assign)
			if !ok || a.RK != ir.RHSCopy || a.Dst.Sym.InMemory() {
				continue
			}
			if a.Spec.AdvLoad || a.Spec.CheckLoad || a.Spec.SpecLoad {
				continue
			}
			switch src := a.A.(type) {
			case *ir.Ref:
				if !src.Sym.InMemory() && !checked[src.Sym] {
					copies[core.SymVer{Sym: a.Dst.Sym, Ver: a.Dst.Ver}] = src
				}
			case *ir.ConstInt, *ir.ConstFloat, *ir.AddrOf:
				copies[core.SymVer{Sym: a.Dst.Sym, Ver: a.Dst.Ver}] = src
			}
		}
	}
	return copies
}

// resolveOperand canonicalizes an operand through the copy index.
func resolveOperand(op ir.Operand, copies map[core.SymVer]ir.Operand) ir.Operand {
	for i := 0; i < 64; i++ {
		r, ok := op.(*ir.Ref)
		if !ok {
			return op
		}
		next, ok := copies[core.SymVer{Sym: r.Sym, Ver: r.Ver}]
		if !ok {
			return op
		}
		op = next
	}
	return op
}

// resolveSymVer canonicalizes the value (sym, ver) through the copy index
// without materializing a Ref. A nil result means the version resolves to
// itself (no copy-chain entry).
func resolveSymVer(sym *ir.Sym, ver int, copies map[core.SymVer]ir.Operand) ir.Operand {
	var op ir.Operand
	for i := 0; i < 64; i++ {
		next, ok := copies[core.SymVer{Sym: sym, Ver: ver}]
		if !ok {
			return op
		}
		op = next
		r, ok := next.(*ir.Ref)
		if !ok {
			return op
		}
		sym, ver = r.Sym, r.Ver
	}
	return op
}

// occVerList is a tiny sym→version map for one occurrence. Occurrences
// have at most a handful of operand variables (two operand leaves plus the
// virtual variables of the mu list), so an inline array beats a map; rare
// overflow spills to slices.
type occVerList struct {
	syms   [3]*ir.Sym
	vers   [3]int
	n      int
	spillS []*ir.Sym
	spillV []int
}

func (l *occVerList) set(s *ir.Sym, v int) {
	for i := 0; i < l.n && i < len(l.syms); i++ {
		if l.syms[i] == s {
			l.vers[i] = v
			return
		}
	}
	for i, ss := range l.spillS {
		if ss == s {
			l.spillV[i] = v
			return
		}
	}
	if l.n < len(l.syms) {
		l.syms[l.n], l.vers[l.n] = s, v
		l.n++
		return
	}
	l.spillS = append(l.spillS, s)
	l.spillV = append(l.spillV, v)
}

func (l *occVerList) get(s *ir.Sym) int {
	for i := 0; i < l.n && i < len(l.syms); i++ {
		if l.syms[i] == s {
			return l.vers[i]
		}
	}
	for i, ss := range l.spillS {
		if ss == s {
			return l.spillV[i]
		}
	}
	return 0
}

// collectExprs scans the function in dominator-tree preorder and groups
// PRE candidates into expression classes, canonicalizing operand leaves
// through copy chains.
func collectExprs(s *core.SSA, opts Options, synKeys map[ir.Stmt]string, copies map[core.SymVer]ir.Operand) []*exprClass {
	classes := map[exprKey]*exprClass{}
	var order []*exprClass
	var occBuf []occurrence // chunk allocator for occurrences

	visit := func(b *ir.Block) {
		for i, st := range b.Stmts {
			a, ok := st.(*ir.Assign)
			if !ok {
				continue
			}
			// statements carrying speculation flags belong to an earlier
			// round's web; rewriting them would break ld.a/ld.c pairing
			if a.Spec.AdvLoad || a.Spec.CheckLoad || a.Spec.SpecLoad {
				continue
			}
			var key exprKey
			var kind exprKind
			var ca, cb ir.Operand
			switch a.RK {
			case ir.RHSBinary, ir.RHSUnary:
				if opts.NoArith {
					continue
				}
				kind = exprArith
				ca = resolveOperand(a.A, copies)
				key = exprKey{kind: kind, rk: a.RK, op: a.Op, a: leafOf(ca)}
				if a.RK == ir.RHSBinary {
					cb = resolveOperand(a.B, copies)
					key.b = leafOf(cb)
					if a.Op.IsCommutative() && lessLeaf(key.b, key.a) {
						key.a, key.b = key.b, key.a
						ca, cb = cb, ca
					}
				}
				// pure-constant expressions are not worth a temp, but
				// address-of arithmetic (&g + k) must participate: its
				// hoisting is what lets the loads through it unify
				if key.a.kind != 's' && key.b.kind != 's' &&
					key.a.kind != 'a' && key.b.kind != 'a' {
					continue
				}
			case ir.RHSCopy:
				r, isRef := a.A.(*ir.Ref)
				if !isRef || !r.Sym.InMemory() {
					continue
				}
				kind = exprDirectLoad
				ca = a.A
				key = exprKey{kind: kind, rk: a.RK, a: leafOf(a.A)}
			case ir.RHSLoad:
				kind = exprIndirectLoad
				ca = resolveOperand(a.A, copies)
				key = exprKey{kind: kind, rk: a.RK, a: leafOf(ca)}
			default:
				continue
			}
			// per-symbol version tracking cannot represent an occurrence
			// whose two operands are different versions of one symbol
			// (e.g. values loaded from the same location before and
			// after a store, both canonicalized to the web temp); such
			// occurrences are left unoptimized
			if ra, okA := ca.(*ir.Ref); okA {
				if rb, okB := cb.(*ir.Ref); okB && ra.Sym == rb.Sym && ra.Ver != rb.Ver {
					continue
				}
			}
			ec := classes[key]
			if ec == nil {
				ec = &exprClass{key: key, kind: kind, resType: a.Dst.Sym.Type, loadType: a.LoadsFrom, aTmpl: ca, bTmpl: cb}
				classes[key] = ec
				order = append(order, ec)
			}
			if len(occBuf) == 0 {
				occBuf = make([]occurrence, 64)
			}
			o := &occBuf[0]
			occBuf = occBuf[1:]
			*o = occurrence{stmt: a, block: b, index: i, class: -1}
			if r, ok := ca.(*ir.Ref); ok {
				o.vers.set(r.Sym, r.Ver)
			}
			if r, ok := cb.(*ir.Ref); ok {
				o.vers.set(r.Sym, r.Ver)
			}
			for _, mu := range a.Mus {
				if mu.Sym.Kind == ir.SymVirtual {
					o.vers.set(mu.Sym, mu.Ver)
				}
			}
			ec.occs = append(ec.occs, o)
		}
	}
	s.DT.PreorderWalk(visit, nil)

	// fill per-class metadata
	var out []*exprClass
	for _, ec := range order {
		if !ec.finish(s, opts, synKeys) {
			continue
		}
		out = append(out, ec)
	}
	return out
}

func lessLeaf(a, b leafID) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	switch a.kind {
	case 'c':
		return a.ival < b.ival
	case 'f':
		return a.fval < b.fval
	case 's', 'a':
		if a.sym == b.sym {
			return false
		}
		if a.sym == nil || b.sym == nil {
			return b.sym != nil
		}
		return a.sym.Name < b.sym.Name
	}
	return false
}

// finish computes the operand-variable set and the speculative-walk
// context; returns false if the class cannot be optimized.
func (ec *exprClass) finish(s *core.SSA, opts Options, synKeys map[ir.Stmt]string) bool {
	addVar := func(sym *ir.Sym) {
		for _, v := range ec.vars {
			if v == sym {
				return
			}
		}
		ec.vars = append(ec.vars, sym)
	}
	first := ec.occs[0].stmt
	switch ec.kind {
	case exprArith:
		if r, ok := ec.aTmpl.(*ir.Ref); ok {
			addVar(r.Sym)
		}
		if r, ok := ec.bTmpl.(*ir.Ref); ok {
			addVar(r.Sym)
		}
	case exprDirectLoad:
		addVar(ec.aTmpl.(*ir.Ref).Sym)
	case exprIndirectLoad:
		if r, ok := ec.aTmpl.(*ir.Ref); ok {
			addVar(r.Sym)
		}
		// the virtual variable carries the value identity of the
		// location; find it in the mu list
		for _, mu := range first.Mus {
			if mu.Sym.Kind == ir.SymVirtual && opts.Alias != nil {
				if _, isHeap := opts.Alias.HeapSiteOf[mu.Sym]; !isHeap {
					ec.vvSym = mu.Sym
				}
			}
		}
		if ec.vvSym == nil {
			return false // unanalyzed load; leave alone
		}
		addVar(ec.vvSym)
	}
	if len(ec.vars) == 0 && ec.kind != exprArith {
		return false // unanalyzable load
	}
	// (variable-free arithmetic such as &g + k is invariant everywhere:
	// every occurrence trivially shares one value)

	// speculative-walk context: union of mu_s symbols over occurrences
	// (profile mode), syntax key (heuristic mode)
	ctx := &core.WalkContext{Mode: opts.DataSpec}
	if opts.DataSpec.ProfileGuided() {
		ctx.MuSpec = map[*ir.Sym]bool{}
		for _, o := range ec.occs {
			for _, mu := range o.stmt.Mus {
				if mu.Spec {
					ctx.MuSpec[mu.Sym] = true
				}
			}
			// a direct load's "read set" is its own symbol
			if ec.kind == exprDirectLoad {
				ctx.MuSpec[ec.vars[0]] = true
			}
		}
	}
	if opts.DataSpec == core.ModeHeuristic && synKeys != nil {
		ctx.SynKey = synKeys[ir.Stmt(ec.occs[0].stmt)]
		ctx.Keys = synKeys
	}
	ec.ctx = ctx
	return true
}

// verOf returns the canonical version of variable v at occurrence o.
func (ec *exprClass) verOf(o *occurrence, v *ir.Sym) int {
	return o.vers.get(v)
}

// isLoad reports whether the expression reads memory (and so participates
// in data speculation and ALAT checking).
func (ec *exprClass) isLoad() bool { return ec.kind != exprArith }
