package ssapre

import (
	"repro/internal/ir"
)

// nodeOf returns the unique defNode of a real occurrence.
func (w *web) nodeOf(o *occurrence) *defNode {
	if o.defOcc != nil && o.defOcc.real == o {
		return o.defOcc
	}
	if w.occNodes == nil {
		w.occNodes = map[*occurrence]*defNode{}
	}
	n := w.occNodes[o]
	if n == nil {
		n = w.newNode(defNode{real: o, class: o.class})
		w.occNodes[o] = n
	}
	return n
}

// finalize decides, in a dominator-tree walk, which occurrences reload
// from the temporary and which Φ operands need insertions, tracking the
// nearest available definition per class.
func (w *web) finalize() {
	availDef := map[int]*defNode{}

	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		saved := map[int]*defNode{}
		set := func(c int, n *defNode) {
			if _, ok := saved[c]; !ok {
				saved[c] = availDef[c]
			}
			availDef[c] = n
		}
		if p := w.phiAt[b]; p != nil && p.willBeAvail {
			set(p.class, p.node)
		}
		for _, st := range b.Stmts {
			a, ok := st.(*ir.Assign)
			if !ok {
				continue
			}
			o := w.occSet[a]
			if o == nil || !w.occStillValid(o) {
				continue
			}
			if def := availDef[o.class]; def != nil && o.defOcc != nil {
				o.reload = true
				o.defOcc = def
			} else {
				// leader: this occurrence computes the value
				o.reload = false
				o.defOcc = nil
				o.spec = false
				set(o.class, w.nodeOf(o))
			}
		}
		for _, c := range w.ssa.DT.Children[b] {
			walk(c)
		}
		for c, n := range saved {
			availDef[c] = n
		}
	}
	walk(w.ssa.Fn.Entry)

	// insertion decisions for will-be-available Φs
	for _, p := range w.phis {
		if !p.willBeAvail {
			continue
		}
		for _, opnd := range p.opnds {
			switch {
			case opnd.def == nil:
				opnd.insert = true
			case opnd.def.phi != nil && !opnd.def.phi.willBeAvail:
				opnd.insert = true
			case opnd.spec && w.ec.isLoad():
				// the value crosses speculative weak updates on this
				// edge: re-validate it with a check load
				opnd.insCheck = true
			}
		}
	}
}
