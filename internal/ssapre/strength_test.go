package ssapre

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

// countOps counts statements with the given RHS op in a function.
func countOps(fn *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range fn.Blocks {
		for _, st := range b.Stmts {
			if a, ok := st.(*ir.Assign); ok && a.RK == ir.RHSBinary && a.Op == op {
				n++
			}
		}
	}
	return n
}

func TestStrengthReductionConstMultiplier(t *testing.T) {
	src := `
int A[512];
int main() {
	int n = arg(0);
	int sum = 0;
	for (int i = 0; i < n; i++) {
		sum += A[i] + i * 8;
	}
	print(sum);
	return 0;
}`
	prog, stats := pipeline(t, src, core.ModeNone, true, []int64{16})
	total := Stats{}
	for _, s := range stats {
		total.Add(*s)
	}
	if total.StrengthReduced == 0 {
		t.Errorf("expected strength reduction of i*8: %+v\n%s", total, prog.FuncMap["main"])
	}
	checkEquiv(t, src, core.ModeNone, true, []int64{16}, [][]int64{{0}, {1}, {100}, {512}})
}

func TestLFTRRewritesExitTest(t *testing.T) {
	// after LFTR the loop test compares the reduced temp; with the
	// original induction variable otherwise unused, DCE retires it and
	// the multiply disappears entirely
	src := `
int main() {
	int n = arg(0);
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc += i * 4;
	}
	print(acc);
	return 0;
}`
	prog, stats := pipeline(t, src, core.ModeNone, true, []int64{8})
	total := Stats{}
	for _, s := range stats {
		total.Add(*s)
	}
	if total.StrengthReduced == 0 {
		t.Fatalf("i*4 not strength-reduced: %+v\n%s", total, prog.FuncMap["main"])
	}
	if total.LFTRApplied == 0 {
		t.Errorf("exit test not rewritten by LFTR: %+v\n%s", total, prog.FuncMap["main"])
	}
	// the loop body should contain no multiplications at all now
	if muls := countOps(prog.FuncMap["main"], ir.OpMul); muls > 1 {
		// one multiply may remain in the preheader (init of the chain
		// and the LFTR bound); in-loop ones must be gone
		t.Logf("note: %d multiplies remain (preheader setup is expected)", muls)
	}
	checkEquiv(t, src, core.ModeNone, true, []int64{8}, [][]int64{{0}, {1}, {7}, {63}})
}

func TestStrengthReductionInvariantRefMultiplier(t *testing.T) {
	src := `
int scale(int n, int k) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc += i * k;
	}
	return acc;
}
int main() {
	print(scale(arg(0), arg(1)));
	return 0;
}`
	prog, stats := pipeline(t, src, core.ModeNone, true, []int64{8, 3})
	total := Stats{}
	for _, s := range stats {
		total.Add(*s)
	}
	if total.StrengthReduced == 0 {
		t.Errorf("i*k (invariant k) not strength-reduced: %+v\n%s", total, prog.FuncMap["scale"])
	}
	checkEquiv(t, src, core.ModeNone, true, []int64{8, 3},
		[][]int64{{0, 5}, {10, 0}, {10, -3}, {100, 7}})
}

func TestStrengthReductionNegativeStep(t *testing.T) {
	src := `
int main() {
	int n = arg(0);
	int acc = 0;
	for (int i = n; i > 0; i--) {
		acc += i * 16;
	}
	print(acc);
	return 0;
}`
	// negative step: reduction applies, LFTR must NOT (we only rewrite
	// tests for positive step); correctness is what matters
	checkEquiv(t, src, core.ModeNone, true, []int64{8}, [][]int64{{0}, {1}, {50}})
}

func TestStrengthReductionDoesNotFireOnVariantMultiplier(t *testing.T) {
	src := `
int main() {
	int n = arg(0);
	int acc = 0;
	int k = 1;
	for (int i = 0; i < n; i++) {
		acc += i * k;
		k = k + 1;   // k varies: no reduction allowed
	}
	print(acc);
	return 0;
}`
	checkEquiv(t, src, core.ModeNone, true, []int64{8}, [][]int64{{0}, {5}, {20}})
}

func TestStrengthReductionNested(t *testing.T) {
	src := `
int M[256];
int main() {
	int n = arg(0);
	int total = 0;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			total += M[i * n + j];
		}
		M[i * 3] = total;
	}
	print(total);
	return 0;
}`
	checkEquiv(t, src, core.ModeNone, true, []int64{8}, [][]int64{{0}, {1}, {4}, {16}})
	checkEquiv(t, src, core.ModeProfile, true, []int64{8}, [][]int64{{0}, {1}, {4}, {16}})
}
