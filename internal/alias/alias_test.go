package alias

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/source"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func TestSeparateClassesStayApart(t *testing.T) {
	prog := compile(t, `
int a = 0;
double x = 0.0;
int main() {
	int *p = &a;
	double *q = &x;
	*p = 1;
	*q = 2.0;
	print(*p, *q);
	return 0;
}`)
	res := Analyze(prog, Options{})
	var classes []int
	for _, c := range res.SiteClass {
		classes = append(classes, c)
	}
	if len(classes) != 4 {
		t.Fatalf("expected 4 indirect sites, got %d", len(classes))
	}
	// a's class and x's class must differ (p and q never mix)
	var a, x *ir.Sym
	for _, g := range prog.Globals {
		switch g.Name {
		case "a":
			a = g
		case "x":
			x = g
		}
	}
	if res.ClassOfSym[a] == res.ClassOfSym[x] {
		t.Error("a and x ended up in the same alias class")
	}
}

func TestPointerCopyMergesClasses(t *testing.T) {
	prog := compile(t, `
int a = 0;
int b = 0;
int main() {
	int *p = &a;
	int *q = &b;
	p = q;
	*p = 1;
	print(a, b);
	return 0;
}`)
	res := Analyze(prog, Options{})
	var a, b *ir.Sym
	for _, g := range prog.Globals {
		switch g.Name {
		case "a":
			a = g
		case "b":
			b = g
		}
	}
	if res.ClassOfSym[a] != res.ClassOfSym[b] {
		t.Error("p = q should merge the classes of a and b (Steensgaard)")
	}
}

func TestHeapSitesGetPseudoSyms(t *testing.T) {
	prog := compile(t, `
int main() {
	int *p = (int*)malloc(10);
	int *q = (int*)malloc(10);
	p[0] = 1;
	q[0] = 2;
	print(p[0] + q[0]);
	return 0;
}`)
	res := Analyze(prog, Options{})
	if len(res.HeapSym) != 2 {
		t.Fatalf("expected 2 heap sites, got %d", len(res.HeapSym))
	}
}

func TestChiMuAnnotation(t *testing.T) {
	prog := compile(t, `
int a = 0;
int b = 0;
int main() {
	int *p = &a;
	if (arg(0)) p = &b;
	*p = 7;
	int x = *p;
	print(x);
	return 0;
}`)
	res := Analyze(prog, Options{})
	res.Annotate(prog)
	main := prog.FuncMap["main"]
	var storeChis, loadMus int
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			switch s := st.(type) {
			case *ir.IStore:
				storeChis = len(s.Chis)
			case *ir.Assign:
				if s.RK == ir.RHSLoad {
					loadMus = len(s.Mus)
				}
			}
		}
	}
	// chi list: members a and b plus the virtual variable
	if storeChis != 3 {
		t.Errorf("store chi list has %d entries, want 3 (a, b, vv)", storeChis)
	}
	if loadMus != 3 {
		t.Errorf("load mu list has %d entries, want 3 (a, b, vv)", loadMus)
	}
	if len(res.FuncVirtuals[main]) == 0 {
		t.Error("main should reference at least one virtual variable")
	}
}

func TestTypeBasedFiltering(t *testing.T) {
	// An int store through p cannot modify double storage under
	// type-based disambiguation even if Steensgaard merges the classes
	// via the untyped helper.
	src := `
int a = 0;
double x = 0.0;
int deref(int *r) { return *r; }
int main() {
	int *p = &a;
	*p = 3;
	double *q = &x;
	*q = 1.5;
	print(deref(p));
	return 0;
}`
	prog := compile(t, src)
	res := Analyze(prog, Options{TypeBased: true})
	res.Annotate(prog)
	main := prog.FuncMap["main"]
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if s, ok := st.(*ir.IStore); ok && s.StoresTo.Kind == ir.KInt {
				for _, chi := range s.Chis {
					if chi.Sym.Name == "x" {
						t.Error("int store chi list contains double variable x despite type-based AA")
					}
				}
			}
		}
	}
}

func TestCallModRefAnnotation(t *testing.T) {
	prog := compile(t, `
int g = 0;
void bump() { g = g + 1; }
int main() {
	bump();
	print(g);
	return 0;
}`)
	res := Analyze(prog, Options{})
	res.Annotate(prog)
	main := prog.FuncMap["main"]
	found := false
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if c, ok := st.(*ir.Call); ok && c.Fn == "bump" {
				for _, chi := range c.Chis {
					if chi.Sym.Name == "g" {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Error("call to bump() lacks chi on g")
	}
}

func TestModRefTransitive(t *testing.T) {
	prog := compile(t, `
int g = 0;
void inner() { g = 1; }
void outer() { inner(); }
int main() {
	outer();
	print(g);
	return 0;
}`)
	res := Analyze(prog, Options{})
	outer := prog.FuncMap["outer"]
	var g *ir.Sym
	for _, s := range prog.Globals {
		if s.Name == "g" {
			g = s
		}
	}
	if !res.ModSyms[outer][g] {
		t.Error("outer's transitive mod set should contain g")
	}
}

func TestRefineDevirtualizesDirectAddresses(t *testing.T) {
	prog := compile(t, `
int g = 1;
int main() {
	int x = 5;
	int *p = &x;       // single definition: *p is exactly x
	*p = 7;
	int y = *p;
	*(&g) = y;         // trivially direct
	print(x, y, g);
	return 0;
}`)
	n := Refine(prog)
	if n < 3 {
		t.Fatalf("Refine rewrote %d references, want >= 3\n%s", n, prog)
	}
	main := prog.FuncMap["main"]
	for _, b := range main.Blocks {
		for _, st := range b.Stmts {
			if _, ok := st.(*ir.IStore); ok {
				t.Errorf("indirect store survived refinement: %s", st)
			}
			if a, ok := st.(*ir.Assign); ok && a.RK == ir.RHSLoad {
				t.Errorf("indirect load survived refinement: %s", st)
			}
		}
	}
}

func TestRefineLeavesAmbiguousPointersAlone(t *testing.T) {
	prog := compile(t, `
int a = 0;
int b = 0;
int main() {
	int *p = &a;
	if (arg(0)) p = &b;   // two definitions: cannot devirtualize
	*p = 9;
	print(*p);
	return 0;
}`)
	if n := Refine(prog); n != 0 {
		t.Fatalf("Refine rewrote %d references on an ambiguous pointer", n)
	}
}
