package alias

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/par"
)

// Annotate installs the initial chi and mu lists on every statement of the
// program, following §3.2 of the paper:
//
//   - an indirect store gets a chi for every visible, type-compatible
//     variable in its alias class, for every heap allocation site in the
//     class, and for the class's virtual variable;
//   - an indirect load gets the corresponding mu list;
//   - a direct store to an aliased variable gets a chi on the class's
//     virtual variable (its named target is a strong def, not a chi);
//   - a call gets chi/mu lists representing the callee's transitive
//     mod/ref sets.
//
// All chis and mus start unflagged (speculative weak updates); the core
// package attaches the speculation flags from profiles or heuristics.
// Annotate records which virtual symbols each function now references in
// FuncVirtuals, for the SSA renamer.
func (r *Result) Annotate(prog *ir.Program) {
	r.AnnotateWorkers(prog, 0)
}

// AnnotateWorkers annotates with at most workers functions in flight
// (0 = all cores, 1 = serial). Annotation writes only the target
// function's statements and reads the (by now frozen) analysis maps, so
// the chi/mu lists are identical at every worker count. The per-function
// symbol-set cache that visibleIn builds lazily is precomputed up front
// so the parallel phase never mutates the Result.
func (r *Result) AnnotateWorkers(prog *ir.Program, workers int) {
	if r.FuncVirtuals == nil {
		r.FuncVirtuals = map[*ir.Func][]*ir.Sym{}
	}
	if r.funcSymSet == nil {
		r.funcSymSet = map[*ir.Func]map[*ir.Sym]bool{}
	}
	for _, f := range prog.Funcs {
		if r.funcSymSet[f] == nil {
			set := make(map[*ir.Sym]bool, len(f.Syms))
			for _, fs := range f.Syms {
				set[fs] = true
			}
			r.funcSymSet[f] = set
		}
	}
	virtsOf := make([][]*ir.Sym, len(prog.Funcs))
	par.Each(workers, len(prog.Funcs), func(i int) error {
		virtsOf[i] = r.annotateFunc(prog, prog.Funcs[i])
		return nil
	})
	for i, f := range prog.Funcs {
		r.FuncVirtuals[f] = virtsOf[i]
	}
}

// annotateFunc installs the chi/mu lists on one function and returns the
// virtual symbols it now references.
func (r *Result) annotateFunc(prog *ir.Program, f *ir.Func) []*ir.Sym {
	used := map[*ir.Sym]bool{}
	noteSyms := func(syms []*ir.Sym) {
		for _, s := range syms {
			if s.Kind == ir.SymVirtual {
				used[s] = true
			}
		}
	}
	for _, b := range f.Blocks {
		for _, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.Assign:
				// the conditions are independent, not exclusive: an
				// indirect load whose destination is itself a
				// memory-resident scalar reads through a mu list AND
				// direct-stores through a chi
				if t.RK == ir.RHSLoad && t.Site != 0 {
					syms := r.aliasSyms(f, r.SiteClass[t.Site], t.LoadsFrom)
					t.Mus = makeMus(syms)
					noteSyms(syms)
				}
				if t.Dst.Sym.InMemory() {
					// direct store: chi on the virtual variable of the
					// target's class (the contents summary changes)
					if vv, ok := r.VV[r.ClassOfSym[t.Dst.Sym]]; ok {
						t.Chis = []*ir.Chi{{Sym: vv}}
						noteSyms([]*ir.Sym{vv})
					}
				}
			case *ir.IStore:
				if t.Site != 0 {
					syms := r.aliasSyms(f, r.SiteClass[t.Site], t.StoresTo)
					t.Chis = makeChis(syms)
					noteSyms(syms)
				}
			case *ir.Call:
				callee, ok := prog.FuncMap[t.Fn]
				if !ok {
					continue // builtins have no memory side effects
				}
				mods := r.sideEffectSyms(f, r.ModSyms[callee], r.ModClasses[callee])
				refs := r.sideEffectSyms(f, r.RefSyms[callee], r.RefClasses[callee])
				t.Chis = makeChis(mods)
				t.Mus = makeMus(refs)
				noteSyms(mods)
				noteSyms(refs)
			}
		}
	}
	var virts []*ir.Sym
	for s := range used {
		virts = append(virts, s)
	}
	sort.Slice(virts, func(i, j int) bool { return virts[i].Name < virts[j].Name })
	return virts
}

// aliasSyms returns the ordered chi/mu symbol list for an indirect
// reference in f touching the given class with the given reference type.
func (r *Result) aliasSyms(f *ir.Func, class int, refType *ir.Type) []*ir.Sym {
	var syms []*ir.Sym
	for _, m := range r.ClassMembers[class] {
		if !r.visibleIn(f, m) {
			continue
		}
		if !r.typeCompatible(refType, m) {
			continue
		}
		syms = append(syms, m)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
	syms = append(syms, r.ClassHeap[class]...)
	if vv, ok := r.VV[class]; ok {
		syms = append(syms, vv)
	}
	return syms
}

// sideEffectSyms builds the chi/mu symbol list for a call from the
// callee's mod (or ref) sets, projected into the caller's scope.
func (r *Result) sideEffectSyms(f *ir.Func, symSet map[*ir.Sym]bool, classSet map[int]bool) []*ir.Sym {
	seen := map[*ir.Sym]bool{}
	classes := map[int]bool{}
	var named []*ir.Sym
	for s := range symSet {
		if r.visibleIn(f, s) && !seen[s] {
			seen[s] = true
			named = append(named, s)
		}
		// the contents summary of the symbol's class changes too
		classes[r.ClassOfSym[s]] = true
	}
	for c := range classSet {
		classes[c] = true
		for _, m := range r.ClassMembers[c] {
			if r.visibleIn(f, m) && !seen[m] {
				seen[m] = true
				named = append(named, m)
			}
		}
	}
	sort.Slice(named, func(i, j int) bool { return named[i].Name < named[j].Name })
	var virts []*ir.Sym
	for c := range classes {
		virts = append(virts, r.ClassHeap[c]...)
		if vv, ok := r.VV[c]; ok {
			virts = append(virts, vv)
		}
	}
	sort.Slice(virts, func(i, j int) bool { return virts[i].Name < virts[j].Name })
	return append(named, virts...)
}

// visibleIn reports whether symbol s can be named in function f.
func (r *Result) visibleIn(f *ir.Func, s *ir.Sym) bool {
	if s.Kind == ir.SymGlobal || s.Kind == ir.SymVirtual {
		return true
	}
	if r.funcSymSet == nil {
		r.funcSymSet = map[*ir.Func]map[*ir.Sym]bool{}
	}
	set := r.funcSymSet[f]
	if set == nil {
		set = make(map[*ir.Sym]bool, len(f.Syms))
		for _, fs := range f.Syms {
			set[fs] = true
		}
		r.funcSymSet[f] = set
	}
	return set[s]
}

func makeChis(syms []*ir.Sym) []*ir.Chi {
	chis := make([]*ir.Chi, len(syms))
	for i, s := range syms {
		chis[i] = &ir.Chi{Sym: s}
	}
	return chis
}

func makeMus(syms []*ir.Sym) []*ir.Mu {
	mus := make([]*ir.Mu, len(syms))
	for i, s := range syms {
		mus[i] = &ir.Mu{Sym: s}
	}
	return mus
}
