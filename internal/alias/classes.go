package alias

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/profile"
)

// Options controls the analysis.
type Options struct {
	// TypeBased enables type-based disambiguation inside alias classes
	// (the paper compiles its baseline "O3 with type-based alias
	// analysis"): a double-typed reference gets no chi/mu on int-typed
	// members and vice versa.
	TypeBased bool
}

// Result is the outcome of the whole-program alias analysis.
type Result struct {
	Opts Options

	// NumClasses counts alias equivalence classes.
	NumClasses int
	// SiteClass maps an indirect reference site id to its class.
	SiteClass map[int]int
	// ClassMembers lists the memory-resident program variables whose
	// storage is in each class.
	ClassMembers map[int][]*ir.Sym
	// ClassHeap lists the heap pseudo-symbols in each class, one per
	// (allocation site, caller call-site) pair — 1-level call-path
	// naming so that objects allocated through a shared wrapper stay
	// distinguishable, the granularity of the paper's [4].
	ClassHeap map[int][]*ir.Sym
	// HeapSym maps (allocation site, caller context) to its pseudo-symbol.
	HeapSym map[HeapKey]*ir.Sym
	// HeapSiteOf inverts HeapSym.
	HeapSiteOf map[*ir.Sym]HeapKey
	// VV maps a class to its HSSA virtual variable; only classes with at
	// least one indirect reference site have one.
	VV map[int]*ir.Sym
	// ClassOfSym maps each memory-resident symbol to its class.
	ClassOfSym map[*ir.Sym]int

	// Mod and Ref give, per function, the transitively modified /
	// referenced memory: named symbols and whole classes (from indirect
	// accesses).
	ModSyms, RefSyms       map[*ir.Func]map[*ir.Sym]bool
	ModClasses, RefClasses map[*ir.Func]map[int]bool

	// FuncVirtuals lists, per function, the virtual symbols (class
	// virtual variables and heap pseudo-symbols) referenced by its
	// chi/mu lists. Populated by Annotate.
	FuncVirtuals map[*ir.Func][]*ir.Sym

	funcSymSet map[*ir.Func]map[*ir.Sym]bool
}

// Analyze runs Steensgaard's analysis and derives alias classes, virtual
// variables and mod/ref sets for the whole program.
func Analyze(prog *ir.Program, opts Options) *Result {
	s := newSolver(prog)
	s.solve()

	res := &Result{
		Opts:         opts,
		SiteClass:    map[int]int{},
		ClassMembers: map[int][]*ir.Sym{},
		ClassHeap:    map[int][]*ir.Sym{},
		HeapSym:      map[HeapKey]*ir.Sym{},
		HeapSiteOf:   map[*ir.Sym]HeapKey{},
		VV:           map[int]*ir.Sym{},
		ClassOfSym:   map[*ir.Sym]int{},
		ModSyms:      map[*ir.Func]map[*ir.Sym]bool{},
		RefSyms:      map[*ir.Func]map[*ir.Sym]bool{},
		ModClasses:   map[*ir.Func]map[int]bool{},
		RefClasses:   map[*ir.Func]map[int]bool{},
	}

	classOfRoot := map[*node]int{}
	classOf := func(n *node) int {
		r := n.find()
		if id, ok := classOfRoot[r]; ok {
			return id
		}
		id := res.NumClasses
		res.NumClasses++
		classOfRoot[r] = id
		return id
	}

	// object storage: memory-resident symbols
	for _, g := range prog.Globals {
		id := classOf(s.obj(g))
		res.ClassOfSym[g] = id
		res.ClassMembers[id] = append(res.ClassMembers[id], g)
	}
	for _, f := range prog.Funcs {
		for _, sym := range f.Syms {
			if sym.Kind != ir.SymVirtual && sym.Kind != ir.SymGlobal && sym.InMemory() {
				id := classOf(s.obj(sym))
				res.ClassOfSym[sym] = id
				res.ClassMembers[id] = append(res.ClassMembers[id], sym)
			}
		}
	}
	// heap allocation sites: one pseudo-symbol per (site, caller call
	// site) pair. The contexts of an allocation inside function F are
	// exactly F's call sites; allocations in main (or in a function with
	// no callers) use context 0.
	callSitesOf := map[string][]int{}
	allocFunc := map[int]*ir.Func{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				switch t := st.(type) {
				case *ir.Call:
					if _, isUser := prog.FuncMap[t.Fn]; isUser {
						callSitesOf[t.Fn] = append(callSitesOf[t.Fn], t.Site)
					}
				case *ir.Assign:
					if t.RK == ir.RHSAlloc {
						allocFunc[t.AllocSite] = f
					}
				}
			}
		}
	}
	for site, n := range s.heapOf {
		id := classOf(n)
		ctxs := []int{0}
		if f := allocFunc[site]; f != nil && f.Name != "main" {
			if cs := callSitesOf[f.Name]; len(cs) > 0 {
				ctxs = cs
			}
		}
		for _, ctx := range ctxs {
			key := HeapKey{Site: site, Ctx: ctx}
			name := fmt.Sprintf("h$%d", site)
			if ctx != 0 {
				name = fmt.Sprintf("h$%d@%d", site, ctx)
			}
			hs := &ir.Sym{Name: name, Kind: ir.SymVirtual, Type: ir.VoidType, Class: id}
			res.HeapSym[key] = hs
			res.HeapSiteOf[hs] = key
			res.ClassHeap[id] = append(res.ClassHeap[id], hs)
		}
	}
	// deterministic ordering of heap members (map iteration above)
	for id := range res.ClassHeap {
		sort.Slice(res.ClassHeap[id], func(i, j int) bool {
			a, b := res.HeapSiteOf[res.ClassHeap[id][i]], res.HeapSiteOf[res.ClassHeap[id][j]]
			if a.Site != b.Site {
				return a.Site < b.Site
			}
			return a.Ctx < b.Ctx
		})
	}

	// classify every indirect reference site; create virtual variables
	ensureVV := func(id int) *ir.Sym {
		if vv, ok := res.VV[id]; ok {
			return vv
		}
		vv := &ir.Sym{Name: fmt.Sprintf("v$%d", id), Kind: ir.SymVirtual, Type: ir.VoidType, Class: id}
		res.VV[id] = vv
		return vv
	}
	addrClass := func(op ir.Operand) int {
		if vn := s.valueNodeOf(op); vn != nil {
			return classOf(s.pointeeOf(vn))
		}
		// constant address: fresh singleton class
		return classOf(s.newNode())
	}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				switch t := st.(type) {
				case *ir.Assign:
					if t.RK == ir.RHSLoad && t.Site != 0 {
						id := addrClass(t.A)
						res.SiteClass[t.Site] = id
						ensureVV(id)
					}
				case *ir.IStore:
					if t.Site != 0 {
						id := addrClass(t.Addr)
						res.SiteClass[t.Site] = id
						ensureVV(id)
					}
				}
			}
		}
	}

	res.computeModRef(prog)
	return res
}

// computeModRef propagates direct mod/ref facts over the call graph to a
// fixpoint.
func (r *Result) computeModRef(prog *ir.Program) {
	for _, f := range prog.Funcs {
		r.ModSyms[f] = map[*ir.Sym]bool{}
		r.RefSyms[f] = map[*ir.Sym]bool{}
		r.ModClasses[f] = map[int]bool{}
		r.RefClasses[f] = map[int]bool{}
	}
	// direct effects
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				switch t := st.(type) {
				case *ir.Assign:
					if t.Dst.Sym.InMemory() {
						r.ModSyms[f][t.Dst.Sym] = true
					}
					if t.RK == ir.RHSCopy {
						if ref, ok := t.A.(*ir.Ref); ok && ref.Sym.InMemory() {
							r.RefSyms[f][ref.Sym] = true
						}
					}
					if t.RK == ir.RHSLoad && t.Site != 0 {
						r.RefClasses[f][r.SiteClass[t.Site]] = true
					}
				case *ir.IStore:
					if t.Site != 0 {
						r.ModClasses[f][r.SiteClass[t.Site]] = true
					}
				}
			}
		}
	}
	// transitive closure over calls
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			for _, b := range f.Blocks {
				for _, st := range b.Stmts {
					call, ok := st.(*ir.Call)
					if !ok {
						continue
					}
					callee, ok := prog.FuncMap[call.Fn]
					if !ok {
						continue
					}
					changed = mergeSyms(r.ModSyms[f], r.ModSyms[callee]) || changed
					changed = mergeSyms(r.RefSyms[f], r.RefSyms[callee]) || changed
					changed = mergeClasses(r.ModClasses[f], r.ModClasses[callee]) || changed
					changed = mergeClasses(r.RefClasses[f], r.RefClasses[callee]) || changed
				}
			}
		}
	}
}

func mergeSyms(dst, src map[*ir.Sym]bool) bool {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return changed
}

func mergeClasses(dst, src map[int]bool) bool {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return changed
}

// typeCompatible reports whether a reference of type rt could access
// storage of member m under type-based disambiguation. Unknown types are
// conservatively compatible.
func (r *Result) typeCompatible(rt *ir.Type, m *ir.Sym) bool {
	if !r.Opts.TypeBased || rt == nil || m.Type == nil {
		return true
	}
	return kindsOverlap(rt, m.Type)
}

// kindsOverlap reports whether storage of type mt can hold a value
// accessed with reference type rt: float storage only matches float
// references, int/pointer storage matches int/pointer references.
func kindsOverlap(rt, mt *ir.Type) bool {
	refFloat := rt.Kind == ir.KFloat
	has := typeHasKind(mt, refFloat)
	return has
}

func typeHasKind(t *ir.Type, wantFloat bool) bool {
	switch t.Kind {
	case ir.KFloat:
		return wantFloat
	case ir.KInt, ir.KPtr:
		return !wantFloat
	case ir.KArray:
		return typeHasKind(t.Elem, wantFloat)
	case ir.KStruct:
		for _, f := range t.Fields {
			if typeHasKind(f.Type, wantFloat) {
				return true
			}
		}
	case ir.KVoid:
		return true
	}
	return true
}

// LocToSym resolves a profiled abstract location to the chi/mu-list symbol
// it corresponds to in function f (nil if it is invisible there, e.g. a
// local of another function).
func (r *Result) LocToSym(f *ir.Func, loc profile.Loc) *ir.Sym {
	switch loc.Kind {
	case profile.LocGlobal:
		return loc.Sym
	case profile.LocLocal:
		if loc.Fn == f {
			return loc.Sym
		}
		return nil
	case profile.LocHeap:
		if hs, ok := r.HeapSym[HeapKey{Site: loc.Site, Ctx: loc.Ctx}]; ok {
			return hs
		}
		// context not statically enumerated (deeper call path): fall
		// back to the context-free symbol
		return r.HeapSym[HeapKey{Site: loc.Site}]
	}
	return nil
}

// HeapKey names a heap pseudo-symbol: the static allocation site plus the
// immediate caller's call site (0 when allocated directly in main or when
// context-insensitive).
type HeapKey struct {
	Site int
	Ctx  int
}
