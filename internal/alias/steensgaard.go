// Package alias implements the compile-time side of the paper's
// speculative alias framework (Fig. 4 of Lin et al., PLDI 2003):
// equivalence-class (Steensgaard) points-to analysis over the flattened IR,
// assignment of one HSSA virtual variable per alias class, construction of
// the chi (may-def) and mu (may-use) lists of every indirect reference and
// call site, and an interprocedural mod/ref analysis for call side effects.
// Speculation flags are attached later by internal/core from profiles or
// heuristic rules.
package alias

import (
	"repro/internal/ir"
)

// node is a union-find node in the Steensgaard storage graph. Every node
// stands for a set of storage locations; pointee links to the node holding
// whatever the values stored in those locations point to.
type node struct {
	parent  *node
	rank    int
	pointee *node
}

func (n *node) find() *node {
	for n.parent != n {
		n.parent = n.parent.parent
		n = n.parent
	}
	return n
}

// solver runs the unification.
type solver struct {
	prog  *ir.Program
	nodes []*node

	valOf  map[*ir.Sym]*node // value held by a (register or memory) symbol
	objOf  map[*ir.Sym]*node // storage of a memory-resident symbol
	heapOf map[int]*node     // storage of a heap allocation site
	retOf  map[*ir.Func]*node
}

func newSolver(prog *ir.Program) *solver {
	return &solver{
		prog:   prog,
		valOf:  map[*ir.Sym]*node{},
		objOf:  map[*ir.Sym]*node{},
		heapOf: map[int]*node{},
		retOf:  map[*ir.Func]*node{},
	}
}

func (s *solver) newNode() *node {
	n := &node{}
	n.parent = n
	s.nodes = append(s.nodes, n)
	return n
}

func (s *solver) union(a, b *node) *node {
	ra, rb := a.find(), b.find()
	if ra == rb {
		return ra
	}
	if ra.rank < rb.rank {
		ra, rb = rb, ra
	}
	rb.parent = ra
	if ra.rank == rb.rank {
		ra.rank++
	}
	// merge pointees recursively (Steensgaard's conditional unification,
	// done eagerly: both pointees exist ⇒ unify; one exists ⇒ adopt)
	pa, pb := ra.pointee, rb.pointee
	ra.pointee = nil
	switch {
	case pa != nil && pb != nil:
		ra.pointee = s.union(pa, pb)
	case pa != nil:
		ra.pointee = pa
	case pb != nil:
		ra.pointee = pb
	}
	return ra
}

// pointeeOf returns (creating on demand) the pointee node of n.
func (s *solver) pointeeOf(n *node) *node {
	r := n.find()
	if r.pointee == nil {
		r.pointee = s.newNode()
	}
	return r.pointee.find()
}

func (s *solver) val(sym *ir.Sym) *node {
	if n, ok := s.valOf[sym]; ok {
		return n.find()
	}
	n := s.newNode()
	s.valOf[sym] = n
	return n
}

func (s *solver) obj(sym *ir.Sym) *node {
	if n, ok := s.objOf[sym]; ok {
		return n.find()
	}
	n := s.newNode()
	s.objOf[sym] = n
	// the value stored in a memory-resident symbol is the symbol's value
	// node: loading it yields val(sym)'s pointees
	n.pointee = s.val(sym)
	return n
}

func (s *solver) heap(site int) *node {
	if n, ok := s.heapOf[site]; ok {
		return n.find()
	}
	n := s.newNode()
	s.heapOf[site] = n
	return n
}

func (s *solver) ret(f *ir.Func) *node {
	if n, ok := s.retOf[f]; ok {
		return n.find()
	}
	n := s.newNode()
	s.retOf[f] = n
	return n
}

// valueNodeOf returns the node describing the pointer value of an operand,
// or nil for constants (which point nowhere).
func (s *solver) valueNodeOf(op ir.Operand) *node {
	switch o := op.(type) {
	case *ir.Ref:
		return s.val(o.Sym)
	case *ir.AddrOf:
		// the value is the address of the object: a fresh node whose
		// pointee is the object's storage
		n := s.newNode()
		n.pointee = s.obj(o.Sym)
		return n
	}
	return nil
}

// unifyValues makes two value nodes equivalent (they may hold the same
// pointer), skipping nil (constant) sides.
func (s *solver) unifyValues(a, b *node) {
	if a == nil || b == nil {
		return
	}
	// values are "may hold same pointer": unify their pointees
	s.union(s.pointeeOf(a), s.pointeeOf(b))
}

// solve runs one pass over every statement; Steensgaard is flow-insensitive
// and each constraint is applied once (union-find makes it a fixpoint).
func (s *solver) solve() {
	for _, f := range s.prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				s.stmt(f, st)
			}
			if b.Term.Kind == ir.TermRet && b.Term.Val != nil {
				s.unifyValues(s.ret(f), s.valueNodeOf(b.Term.Val))
			}
		}
	}
}

func (s *solver) stmt(f *ir.Func, st ir.Stmt) {
	switch t := st.(type) {
	case *ir.Assign:
		dst := s.val(t.Dst.Sym)
		switch t.RK {
		case ir.RHSCopy:
			s.unifyValues(dst, s.valueNodeOf(t.A))
		case ir.RHSBinary:
			// pointer arithmetic: result may point wherever either
			// operand points (field-insensitive)
			s.unifyValues(dst, s.valueNodeOf(t.A))
			s.unifyValues(dst, s.valueNodeOf(t.B))
		case ir.RHSUnary:
			s.unifyValues(dst, s.valueNodeOf(t.A))
		case ir.RHSLoad:
			// dst = *a : dst may hold the value stored in a's pointees
			if a := s.valueNodeOf(t.A); a != nil {
				cell := s.pointeeOf(a)
				s.unifyValues(dst, s.contentOf(cell))
			}
		case ir.RHSAlloc:
			s.union(s.pointeeOf(dst), s.heap(t.AllocSite))
		}
	case *ir.IStore:
		// *addr = val : the contents of addr's pointees may hold val
		if a := s.valueNodeOf(t.Addr); a != nil {
			cell := s.pointeeOf(a)
			s.unifyValues(s.contentOf(cell), s.valueNodeOf(t.Val))
		}
	case *ir.Call:
		callee, ok := s.prog.FuncMap[t.Fn]
		if !ok {
			return // builtins: arg has no pointer behaviour
		}
		for i, p := range callee.Params {
			if i < len(t.Args) {
				s.unifyValues(s.val(p), s.valueNodeOf(t.Args[i]))
			}
		}
		if t.Dst != nil {
			s.unifyValues(s.val(t.Dst.Sym), s.ret(callee))
		}
	}
}

// contentOf returns the value node describing the contents of a storage
// (object) node — what a load from it yields. The graph is bipartite: a
// value node's pointee is an object node (what the value points at); an
// object node's pointee is the value node of its contents. For
// memory-resident symbols obj() installs val(sym) as the content, so named
// and indirect accesses to the same storage share one value node.
func (s *solver) contentOf(cell *node) *node {
	r := cell.find()
	if r.pointee == nil {
		r.pointee = s.newNode()
	}
	return r.pointee.find()
}
