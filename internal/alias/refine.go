package alias

import (
	"repro/internal/ir"
	"repro/internal/par"
)

// Refine performs the flow-sensitive refinement step of the paper's
// Fig. 4 ("flow sensitive pointer alias analysis ... refine the μs list
// and the χs list"): an indirect reference whose address provably resolves
// — through single-definition copy chains — to the address of one scalar
// variable is devirtualized into a direct reference. A store through such
// an address becomes a strong update (killing definition) instead of a χ
// fan-out over the whole alias class, and a load becomes an ordinary
// scalar read, both of which sharpen every later phase.
//
// Refine runs on the pre-SSA flattened IR, before chi/mu annotation.
// It returns the number of references rewritten. Functions refine
// concurrently on every core; use RefineWorkers to bound or serialize.
func Refine(prog *ir.Program) int {
	return RefineWorkers(prog, 0)
}

// RefineWorkers refines with at most workers functions in flight
// (0 = all cores, 1 = serial). Each function's rewrite reads and writes
// only that function's statements, so the result is identical at every
// worker count.
func RefineWorkers(prog *ir.Program, workers int) int {
	counts := make([]int, len(prog.Funcs))
	par.Each(workers, len(prog.Funcs), func(i int) error {
		counts[i] = refineFunc(prog.Funcs[i])
		return nil
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

func refineFunc(f *ir.Func) int {
	// single-definition map for register symbols (the pre-SSA IR from
	// lowering defines most temporaries exactly once)
	defCount := map[*ir.Sym]int{}
	defOf := map[*ir.Sym]*ir.Assign{}
	for _, b := range f.Blocks {
		for _, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.Assign:
				if !t.Dst.Sym.InMemory() {
					defCount[t.Dst.Sym]++
					defOf[t.Dst.Sym] = t
				}
			case *ir.Call:
				if t.Dst != nil {
					defCount[t.Dst.Sym] += 2 // opaque
				}
			}
		}
	}

	// resolveAddr chases copies to a unique &sym, if any.
	var resolveAddr func(op ir.Operand, depth int) *ir.Sym
	resolveAddr = func(op ir.Operand, depth int) *ir.Sym {
		if depth > 16 {
			return nil
		}
		switch o := op.(type) {
		case *ir.AddrOf:
			if o.Sym.Type.IsScalar() {
				return o.Sym
			}
			return nil
		case *ir.Ref:
			if o.Sym.InMemory() || defCount[o.Sym] != 1 {
				return nil
			}
			d := defOf[o.Sym]
			if d == nil || d.RK != ir.RHSCopy {
				return nil
			}
			return resolveAddr(d.A, depth+1)
		}
		return nil
	}

	n := 0
	for _, b := range f.Blocks {
		for i, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.IStore:
				sym := resolveAddr(t.Addr, 0)
				if sym == nil {
					continue
				}
				b.Stmts[i] = &ir.Assign{
					Dst: &ir.Ref{Sym: sym}, RK: ir.RHSCopy, A: t.Val,
				}
				n++
			case *ir.Assign:
				if t.RK != ir.RHSLoad {
					continue
				}
				sym := resolveAddr(t.A, 0)
				if sym == nil {
					continue
				}
				t.RK = ir.RHSCopy
				t.A = &ir.Ref{Sym: sym}
				t.LoadsFrom = sym.Type
				t.VV = nil
				t.Mus = nil
				n++
			}
		}
	}
	return n
}
