package experiments

// Corpus mode: speculation statistics over a directory of MiniC
// programs instead of one kernel. Every file is compiled with
// profile-guided speculation, its counted alias profile is folded into
// per-alias-pattern tallies (an alias pattern is a reference-site kind
// plus the storage-class signature of the LOCs it touched, e.g.
// "load:heap" or "store:global+heap"), and the optimized build runs
// once on the machine model for the paper's check/miss counters. The
// aggregate report is the corpus-scale view the single-workload tables
// cannot give: how often speculation opportunities of each shape occur
// in the wild, how probable their aliases are (AliasProb histograms),
// and what the expected-cost policy would decide about them across the
// whole θ grid.
//
// Determinism contract, extended to the fleet: per-file results carry
// only integer tallies, the aggregate is a pointwise integer sum
// (order-independent), and every float in the report is derived from
// summed integers at render time — so the report bytes are identical
// whether the corpus ran on one process or was sharded across N specd
// workers, cold or warm.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/profile"
)

// CorpusFile is one MiniC source in a corpus: an opaque display name
// (the walk uses the slash-separated path relative to the corpus root)
// plus the full source text. Analysis is keyed by content, never name.
type CorpusFile struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// corpusExts are the file extensions LoadCorpusDir treats as MiniC
// sources.
var corpusExts = map[string]bool{".c": true, ".minic": true, ".mc": true}

// LoadCorpusDir walks root and returns every MiniC source under it,
// sorted by name so every caller sees the same corpus order.
func LoadCorpusDir(root string) ([]CorpusFile, error) {
	var files []CorpusFile
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !corpusExts[filepath.Ext(d.Name())] {
			return nil
		}
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		files = append(files, CorpusFile{Name: filepath.ToSlash(rel), Source: string(src)})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus walk: %w", err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("experiments: no MiniC sources under %s", root)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
	return files, nil
}

// Corpus sources carry their inputs as directive comments — the corpus
// analogue of a registered workload's ProfileArgs/RefArgs:
//
//	// profile-args: 32 2
//	// ref-args: 128 6
//
// Absent directives mean the program takes no arguments.
func corpusArgs(src, directive string) ([]int64, error) {
	prefix := "// " + directive + ":"
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, prefix))
		args := make([]int64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: bad %s directive %q: %w", directive, f, err)
			}
			args[i] = v
		}
		return args, nil
	}
	return nil, nil
}

// probBucketTops are the upper bounds of the AliasProb histogram.
// Profiled (site, LOC) pairs always have p > 0 (a member was observed
// at least once), so the buckets span (0, 1]; the last two separate
// "aliases sometimes" from "aliases always", the line between
// speculation that needs the cost model and speculation that is simply
// wrong.
var probBucketTops = []float64{1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0 / 2}

// ProbBucketLabels names the AliasProb histogram buckets, index-aligned
// with CorpusPatternStats.ProbHist.
func ProbBucketLabels() []string {
	return []string{"(0,1/64]", "(1/64,1/16]", "(1/16,1/4]", "(1/4,1/2]", "(1/2,1)", "1"}
}

func probBucket(p float64) int {
	for i, top := range probBucketTops {
		if p <= top {
			return i
		}
	}
	if p < 1 {
		return len(probBucketTops)
	}
	return len(probBucketTops) + 1
}

// PolicyCount tallies the expected-cost policy's verdicts over the
// (site, LOC) pairs of one alias pattern at one threshold.
type PolicyCount struct {
	Speculate uint64 `json:"speculate"`
	Block     uint64 `json:"block"`
}

// CorpusPatternStats are one alias pattern's integer tallies. All
// fields sum pointwise across files (AggregateCorpus), which is what
// makes the fleet report order-independent.
type CorpusPatternStats struct {
	// Sites counts the static reference sites of this pattern.
	Sites uint64 `json:"sites"`
	// Execs sums the sites' dynamic execution counts (SiteTotal).
	Execs uint64 `json:"execs"`
	// Pairs counts profiled (site, LOC) pairs — the units the flag
	// policy decides over.
	Pairs uint64 `json:"pairs"`
	// PairObs sums the LOC observation counts over those pairs; the
	// aggregate alias probability PairObs/Execs derives from it.
	PairObs uint64 `json:"pairObs"`
	// ProbHist is the AliasProb histogram over pairs, index-aligned
	// with ProbBucketLabels.
	ProbHist []uint64 `json:"probHist"`
	// Policy maps a θ label (DefaultThresholds) to the cost-model
	// verdict tally over the pattern's pairs.
	Policy map[string]*PolicyCount `json:"policy"`
}

func newPatternStats() *CorpusPatternStats {
	s := &CorpusPatternStats{
		ProbHist: make([]uint64, len(probBucketTops)+2),
		Policy:   map[string]*PolicyCount{},
	}
	for _, th := range DefaultThresholds() {
		s.Policy[thresholdLabel(th)] = &PolicyCount{}
	}
	return s
}

func thresholdLabel(th float64) string { return strconv.FormatFloat(th, 'g', -1, 64) }

// CorpusFileResult is one file's integer tallies: the alias-pattern
// statistics from its counted profile plus the machine counters of one
// reference run of the speculative build.
type CorpusFileResult struct {
	Name         string                         `json:"name"`
	Funcs        int                            `json:"funcs"`
	LoadsRetired int64                          `json:"loadsRetired"`
	CheckLoads   int64                          `json:"checkLoads"`
	FailedChecks int64                          `json:"failedChecks"`
	Cycles       int64                          `json:"cycles"`
	Patterns     map[string]*CorpusPatternStats `json:"patterns"`
}

func locKindName(k profile.LocKind) string {
	switch k {
	case profile.LocGlobal:
		return "global"
	case profile.LocLocal:
		return "local"
	case profile.LocHeap:
		return "heap"
	}
	return "loc?"
}

// patternOf names the alias pattern of one site: its kind plus the
// sorted, deduplicated storage-class signature of the LOCs it touched.
func patternOf(kind string, set profile.LocSet) string {
	seen := map[string]bool{}
	for l, n := range set {
		if n > 0 {
			seen[locKindName(l.Kind)] = true
		}
	}
	if len(seen) == 0 {
		return kind + ":none"
	}
	classes := make([]string, 0, len(seen))
	for c := range seen {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return kind + ":" + strings.Join(classes, "+")
}

// RunCorpusFileCtx analyzes one corpus source: compile with
// profile-guided speculation (training inputs from the source's
// directive comments), fold the counted alias profile into per-pattern
// tallies, and run the build once on the reference input for the
// check/miss counters. workers shapes scheduling only, never results.
func RunCorpusFileCtx(ctx context.Context, file CorpusFile, workers int) (*CorpusFileResult, error) {
	profileArgs, err := corpusArgs(file.Source, "profile-args")
	if err != nil {
		return nil, err
	}
	refArgs, err := corpusArgs(file.Source, "ref-args")
	if err != nil {
		return nil, err
	}
	cfg := repro.Config{Spec: repro.SpecProfile, ProfileArgs: profileArgs, Workers: workers}
	c, err := compile(ctx, file.Source, cfg)
	if err != nil {
		return nil, err
	}
	res, err := c.RunCtx(ctx, refArgs)
	if err != nil {
		return nil, err
	}

	out := &CorpusFileResult{
		Name:         file.Name,
		Funcs:        len(c.Prog.Funcs),
		LoadsRetired: res.Counters.LoadsRetired,
		CheckLoads:   res.Counters.CheckLoads,
		FailedChecks: res.Counters.FailedChecks,
		Cycles:       res.Counters.Cycles,
		Patterns:     map[string]*CorpusPatternStats{},
	}
	policies := make([]core.Policy, len(DefaultThresholds()))
	labels := make([]string, len(policies))
	for i, th := range DefaultThresholds() {
		policies[i] = core.PolicyFor(machine.Config{}, th)
		labels[i] = thresholdLabel(th)
	}
	fold := func(kind string, sets map[int]profile.LocSet) {
		for site, set := range sets {
			pat := out.Patterns[patternOf(kind, set)]
			if pat == nil {
				pat = newPatternStats()
				out.Patterns[patternOf(kind, set)] = pat
			}
			total := c.Profile.Total(site)
			pat.Sites++
			pat.Execs += total
			for _, n := range set {
				if n == 0 {
					continue
				}
				pat.Pairs++
				pat.PairObs += n
				p := core.AliasProb(n, total)
				pat.ProbHist[probBucket(p)]++
				for i, pol := range policies {
					if pol.Speculate(p, false) {
						pat.Policy[labels[i]].Speculate++
					} else {
						pat.Policy[labels[i]].Block++
					}
				}
			}
		}
	}
	fold("load", c.Profile.LoadLocs)
	fold("store", c.Profile.StoreLocs)
	fold("callmod", c.Profile.CallMod)
	fold("callref", c.Profile.CallRef)
	return out, nil
}

// MarshalCorpusFile renders one file result as canonical indented JSON
// with a trailing newline — the exact bytes specd's /corpus endpoint
// returns, so the coordinator can fold server responses and local runs
// interchangeably.
func MarshalCorpusFile(res *CorpusFileResult) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// UnmarshalCorpusFile parses MarshalCorpusFile's bytes.
func UnmarshalCorpusFile(data []byte) (*CorpusFileResult, error) {
	var res CorpusFileResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("experiments: corpus result: %w", err)
	}
	return &res, nil
}

// CorpusFailure records one file the corpus run could not analyze; the
// rest of the corpus still aggregates. Error strings are produced by
// the same code path on every node, so failures too are byte-identical
// between single-node and fleet runs.
type CorpusFailure struct {
	Name  string `json:"name"`
	Error string `json:"error"`
}

// CorpusPatternAgg is one alias pattern's aggregate: the summed integer
// tallies plus floats derived from them at aggregation time (never
// summed across files — that would be order-dependent).
type CorpusPatternAgg struct {
	CorpusPatternStats
	// AliasProbability is the pattern's pooled p(alias):
	// PairObs/Execs, clamped to 1 (call-site observations can exceed
	// the call count).
	AliasProbability float64 `json:"aliasProbability"`
	// SpeculateFrac maps a θ label to the fraction of pairs the policy
	// would speculate at that threshold.
	SpeculateFrac map[string]float64 `json:"speculateFrac"`
}

// CorpusReport is the corpus-wide aggregate (speccoord -corpus and
// `experiments -exp corpus` emit it as JSON).
type CorpusReport struct {
	Files    int             `json:"files"`
	Analyzed int             `json:"analyzed"`
	Failed   []CorpusFailure `json:"failed,omitempty"`

	Funcs        int   `json:"funcs"`
	LoadsRetired int64 `json:"loadsRetired"`
	CheckLoads   int64 `json:"checkLoads"`
	FailedChecks int64 `json:"failedChecks"`
	Cycles       int64 `json:"cycles"`
	// CheckRatio and MissRatio are the paper's Fig. 11 quantities
	// pooled over the corpus: check loads over loads retired, failed
	// checks over check loads.
	CheckRatio float64 `json:"checkRatio"`
	MissRatio  float64 `json:"missRatio"`

	ProbBuckets []string                     `json:"probBuckets"`
	Patterns    map[string]*CorpusPatternAgg `json:"patterns"`
}

// AggregateCorpus folds per-file results and failures into the corpus
// report. The fold is pointwise integer summation, so any arrival order
// produces identical bytes; results and failures are re-sorted by name
// to make that true for the failure list as well.
func AggregateCorpus(results []*CorpusFileResult, failures []CorpusFailure) *CorpusReport {
	rep := &CorpusReport{
		Files:       len(results) + len(failures),
		Analyzed:    len(results),
		ProbBuckets: ProbBucketLabels(),
		Patterns:    map[string]*CorpusPatternAgg{},
	}
	rep.Failed = append(rep.Failed, failures...)
	sort.Slice(rep.Failed, func(i, j int) bool { return rep.Failed[i].Name < rep.Failed[j].Name })
	for _, r := range results {
		rep.Funcs += r.Funcs
		rep.LoadsRetired += r.LoadsRetired
		rep.CheckLoads += r.CheckLoads
		rep.FailedChecks += r.FailedChecks
		rep.Cycles += r.Cycles
		for name, ps := range r.Patterns {
			agg := rep.Patterns[name]
			if agg == nil {
				agg = &CorpusPatternAgg{CorpusPatternStats: *newPatternStats()}
				rep.Patterns[name] = agg
			}
			agg.Sites += ps.Sites
			agg.Execs += ps.Execs
			agg.Pairs += ps.Pairs
			agg.PairObs += ps.PairObs
			for i, n := range ps.ProbHist {
				if i < len(agg.ProbHist) {
					agg.ProbHist[i] += n
				}
			}
			for th, pc := range ps.Policy {
				apc := agg.Policy[th]
				if apc == nil {
					apc = &PolicyCount{}
					agg.Policy[th] = apc
				}
				apc.Speculate += pc.Speculate
				apc.Block += pc.Block
			}
		}
	}
	if rep.LoadsRetired > 0 {
		rep.CheckRatio = float64(rep.CheckLoads) / float64(rep.LoadsRetired)
	}
	if rep.CheckLoads > 0 {
		rep.MissRatio = float64(rep.FailedChecks) / float64(rep.CheckLoads)
	}
	for _, agg := range rep.Patterns {
		agg.AliasProbability = core.AliasProb(agg.PairObs, agg.Execs)
		agg.SpeculateFrac = map[string]float64{}
		for th, pc := range agg.Policy {
			if n := pc.Speculate + pc.Block; n > 0 {
				agg.SpeculateFrac[th] = float64(pc.Speculate) / float64(n)
			} else {
				agg.SpeculateFrac[th] = 0
			}
		}
	}
	return rep
}

// RunCorpusDirCtx is the single-node corpus run: load the directory,
// analyze every file (bounded by workers), aggregate. The fleet
// coordinator produces the same report from the same per-file results,
// just computed elsewhere.
func RunCorpusDirCtx(ctx context.Context, dir string, workers int) (*CorpusReport, error) {
	files, err := LoadCorpusDir(dir)
	if err != nil {
		return nil, err
	}
	return RunCorpusFilesCtx(ctx, files, workers)
}

// RunCorpusFilesCtx analyzes an explicit file list and aggregates.
func RunCorpusFilesCtx(ctx context.Context, files []CorpusFile, workers int) (*CorpusReport, error) {
	results := make([]*CorpusFileResult, len(files))
	fails := make([]*CorpusFailure, len(files))
	err := par.EachCtx(ctx, workers, len(files), func(i int) error {
		res, err := RunCorpusFileCtx(ctx, files[i], 1)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err() // a cancelled run is cancelled, not a per-file failure
			}
			fails[i] = &CorpusFailure{Name: files[i].Name, Error: err.Error()}
			return nil
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ok []*CorpusFileResult
	var failed []CorpusFailure
	for i := range files {
		if results[i] != nil {
			ok = append(ok, results[i])
		}
		if fails[i] != nil {
			failed = append(failed, *fails[i])
		}
	}
	return AggregateCorpus(ok, failed), nil
}

// MarshalCorpusReport renders the aggregate report as canonical
// indented JSON with a trailing newline — the bytes the fleet-vs-
// single-node identity is asserted over.
func MarshalCorpusReport(rep *CorpusReport) ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// PrintCorpusReport renders the report as text tables.
func PrintCorpusReport(w io.Writer, rep *CorpusReport) {
	fmt.Fprintf(w, "Corpus: %d files, %d analyzed, %d failed, %d functions\n",
		rep.Files, rep.Analyzed, len(rep.Failed), rep.Funcs)
	fmt.Fprintf(w, "machine: %d cycles, %d loads, check ratio %.4f, miss ratio %.4f\n",
		rep.Cycles, rep.LoadsRetired, rep.CheckRatio, rep.MissRatio)
	for _, f := range rep.Failed {
		fmt.Fprintf(w, "  FAILED %-24s %s\n", f.Name, f.Error)
	}
	names := make([]string, 0, len(rep.Patterns))
	for n := range rep.Patterns {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%-24s %7s %10s %7s %8s  %s\n", "pattern", "sites", "execs", "pairs", "p(alias)", "prob histogram "+strings.Join(rep.ProbBuckets, " "))
	for _, n := range names {
		a := rep.Patterns[n]
		hist := make([]string, len(a.ProbHist))
		for i, h := range a.ProbHist {
			hist[i] = strconv.FormatUint(h, 10)
		}
		fmt.Fprintf(w, "%-24s %7d %10d %7d %8.4f  [%s]\n", n, a.Sites, a.Execs, a.Pairs, a.AliasProbability, strings.Join(hist, " "))
	}
	fmt.Fprintf(w, "\ncost-policy speculate fraction by θ:\n")
	fmt.Fprintf(w, "%-24s", "pattern")
	for _, th := range DefaultThresholds() {
		fmt.Fprintf(w, " %7s", "θ="+thresholdLabel(th))
	}
	fmt.Fprintln(w)
	for _, n := range names {
		a := rep.Patterns[n]
		fmt.Fprintf(w, "%-24s", n)
		for _, th := range DefaultThresholds() {
			fmt.Fprintf(w, " %7.3f", a.SpeculateFrac[thresholdLabel(th)])
		}
		fmt.Fprintln(w)
	}
}
