package experiments

import (
	"context"
	"strings"
	"testing"

	"repro"
)

// TestPaperShape asserts the qualitative results the paper reports, on the
// modelled workloads:
//
//   - Fig. 10: art, ammp, equake, mcf, twolf show real load reductions and
//     speedups; gzip, vpr, bzip2 barely move; reductions don't translate
//     1:1 into speedup.
//   - Fig. 11: mis-speculation ratios are small; gzip's ratio is the
//     largest while its check count is negligible.
//   - Fig. 12: both limit methods upper-bound the achieved reduction, and
//     a low reuse limit (gzip) predicts a low achieved gain.
//   - §5.2: heuristic rules achieve reductions comparable to the profile.
//   - §5.1: smvp converts a large fraction of loads to checks; the
//     speculative speedup falls between zero and the manual bound.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	rows, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if len(rows) != 8 {
		t.Fatalf("expected 8 benchmarks, got %d", len(rows))
	}

	winners := []string{"art", "ammp", "equake", "mcf", "twolf"}
	flat := []string{"vpr", "bzip2"}
	for _, n := range winners {
		r := byName[n]
		if r.LoadReduction() < 0.05 {
			t.Errorf("Fig10: %s load reduction %.1f%%, want >= 5%%", n, r.LoadReduction()*100)
		}
		if r.Speedup() <= 0 {
			t.Errorf("Fig10: %s speedup %.2f%%, want > 0", n, r.Speedup()*100)
		}
	}
	for _, n := range flat {
		r := byName[n]
		if r.LoadReduction() > 0.05 {
			t.Errorf("Fig10: %s load reduction %.1f%%, expected near zero", n, r.LoadReduction()*100)
		}
	}
	// load reduction exceeds speedup (loads are often cheap hits — the
	// paper's mcf observation)
	mcf := byName["mcf"]
	if mcf.Speedup() >= mcf.LoadReduction() {
		t.Errorf("Fig10: mcf speedup (%.1f%%) should lag its load reduction (%.1f%%)",
			mcf.Speedup()*100, mcf.LoadReduction()*100)
	}

	// Fig. 11
	for _, r := range rows {
		if r.MissRatio() > 0.10 {
			t.Errorf("Fig11: %s mis-speculation ratio %.1f%% too large", r.Name, r.MissRatio()*100)
		}
	}
	gzip := byName["gzip"]
	if gzip.Checks > 0 {
		if gzip.CheckRatio() > 0.05 {
			t.Errorf("Fig11: gzip check ratio %.2f%% should be negligible", gzip.CheckRatio()*100)
		}
		if gzip.MissRatio() == 0 {
			t.Error("Fig11: gzip should show some mis-speculation on its few checks")
		}
	}

	// Fig. 12: limits bound achieved gains; correlation at the extremes
	for _, r := range rows {
		if r.AggressiveReduction+1e-9 < r.LoadReduction() {
			t.Errorf("Fig12: %s aggressive bound %.1f%% below achieved %.1f%%",
				r.Name, r.AggressiveReduction*100, r.LoadReduction()*100)
		}
		if r.ReusePotential+0.02 < r.LoadReduction() {
			t.Errorf("Fig12: %s reuse limit %.1f%% below achieved %.1f%%",
				r.Name, r.ReusePotential*100, r.LoadReduction()*100)
		}
	}
	if gzip.ReusePotential > 0.15 {
		t.Errorf("Fig12: gzip reuse potential %.1f%% should be small (it predicts the tiny gain)",
			gzip.ReusePotential*100)
	}

	// §5.2: heuristic comparable to profile (within 10 points on winners)
	for _, n := range winners {
		r := byName[n]
		diff := r.LoadReduction() - r.HeurLoadReduction()
		if diff > 0.10 || diff < -0.10 {
			t.Errorf("§5.2: %s heuristic %.1f%% vs profile %.1f%% — not comparable",
				n, r.HeurLoadReduction()*100, r.LoadReduction()*100)
		}
	}
}

func TestSmvpShape(t *testing.T) {
	s, err := RunSmvp()
	if err != nil {
		t.Fatal(err)
	}
	// paper: 39.8% of loads become checks; 6% speedup against a 14%
	// manual bound. Shape: large check fraction, positive speedup, at or
	// below the manual bound.
	if s.ChecksPerLoad < 0.20 || s.ChecksPerLoad > 0.60 {
		t.Errorf("checks/loads = %.1f%%, want 20-60%% (paper: 39.8%%)", s.ChecksPerLoad*100)
	}
	if s.Speedup <= 0 {
		t.Errorf("speculative speedup %.1f%% must be positive", s.Speedup*100)
	}
	if s.Speedup > s.ManualSpeedup+1e-9 {
		t.Errorf("speculative speedup %.1f%% exceeds the manual bound %.1f%%",
			s.Speedup*100, s.ManualSpeedup*100)
	}
}

func TestReportRendersAllTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	var sb strings.Builder
	if err := Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"§5.1", "Figure 10", "Figure 11", "Figure 12", "§5.2",
		"equake", "mcf", "gzip", "twolf",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestInputSensitivityShape(t *testing.T) {
	rows, err := RunSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.OutputsCorrect {
			t.Errorf("%s: speculation changed program output", r.Name)
		}
		if r.MatchedFailed > r.MismatchFailed {
			t.Errorf("%s: matched profile fails more checks (%d) than the mismatched one (%d)",
				r.Name, r.MatchedFailed, r.MismatchFailed)
		}
	}
	// gzip and mcf must demonstrate the effect: failures under the
	// mismatched profile, none under the matched one
	for _, name := range []string{"gzip", "mcf"} {
		for _, r := range rows {
			if r.Name != name {
				continue
			}
			if r.MismatchFailed == 0 {
				t.Errorf("%s: expected mis-speculations under the mismatched profile", name)
			}
			if r.MatchedFailed != 0 {
				t.Errorf("%s: matched profile should not mis-speculate, got %d", name, r.MatchedFailed)
			}
		}
	}
}

// TestCompileFailsLoudlyOnProfileError pins the satellite fix for the
// silent StaticEstimate degrade: a workload whose training input faults
// must surface the profiling error instead of producing skewed
// profile-guided numbers.
func TestCompileFailsLoudlyOnProfileError(t *testing.T) {
	src := `
int main() {
	print(100 / arg(0));
	return 0;
}`
	_, err := compile(context.Background(), src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: []int64{0}})
	if err == nil {
		t.Fatal("faulting training run must fail the experiment compile")
	}
	if !strings.Contains(err.Error(), "profiling run failed") {
		t.Errorf("error %q does not identify the profiling failure", err)
	}
	// a healthy training input compiles cleanly through the same wrapper
	if _, err := compile(context.Background(), src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: []int64{5}}); err != nil {
		t.Fatalf("healthy compile failed: %v", err)
	}
}
