package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro"
	"repro/internal/adaptive"
	"repro/internal/workloads"
)

// AdaptivePhase is one traffic phase of the drifting-workload
// experiment: a fixed input served for a fixed number of evaluations,
// with the total cycles each policy spent on it.
type AdaptivePhase struct {
	Name  string  `json:"name"`
	Args  []int64 `json:"args"`
	Evals int     `json:"evals"`
	// AdaptiveCycles is the total the tier ladder spent, including the
	// evaluations served while it was still converging.
	AdaptiveCycles int64 `json:"adaptiveCycles"`
	// AggressiveCycles / ConservativeCycles are the fixed extremes:
	// cost-guided speculation at theta=1 everywhere, and SpecOff.
	AggressiveCycles   int64 `json:"aggressiveCycles"`
	ConservativeCycles int64 `json:"conservativeCycles"`
	// EndTiers is the assignment published when the phase ended (only
	// functions below TierAggressive appear).
	EndTiers map[string]string `json:"endTiers,omitempty"`
}

// AdaptiveTransition is one published tier change, labelled with the
// phase and the 1-based evaluation within it that triggered it.
type AdaptiveTransition struct {
	Phase string `json:"phase"`
	Eval  int    `json:"eval"`
	Fn    string `json:"fn"`
	From  string `json:"from"`
	To    string `json:"to"`
}

// SpeedupCell wraps a speedup ratio in the object shape benchguard's
// speedup guard extracts from top-level JSON entries.
type SpeedupCell struct {
	Speedup float64 `json:"speedup"`
}

// AdaptiveResult is the outcome of the drifting-workload experiment
// (`experiments -exp adaptive`, BENCH_adaptive.json).
type AdaptiveResult struct {
	Workload    string               `json:"workload"`
	Phases      []AdaptivePhase      `json:"phases"`
	Transitions []AdaptiveTransition `json:"transitions"`
	// Totals across all phases.
	AdaptiveCycles     int64 `json:"adaptiveCycles"`
	AggressiveCycles   int64 `json:"aggressiveCycles"`
	ConservativeCycles int64 `json:"conservativeCycles"`
	// VsAggressive / VsConservative are total-cycle ratios (fixed /
	// adaptive; >1 means the ladder won end to end).
	VsAggressive   SpeedupCell `json:"adaptive_vs_aggressive"`
	VsConservative SpeedupCell `json:"adaptive_vs_conservative"`
	// DriftFailureBefore / DriftFailureAfter are the hot function's
	// check-failure rates on the first and last evaluation of the
	// drift phase: the monitor's whole job is the gap between them.
	DriftFailureBefore float64 `json:"driftFailureBefore"`
	DriftFailureAfter  float64 `json:"driftFailureAfter"`
}

// adaptivePhases is the served traffic: the training shape, a hard
// alias drift (every second store collides with the promoted global),
// and a recovery shape even cleaner than training.
func adaptivePhases() []AdaptivePhase {
	return []AdaptivePhase{
		{Name: "train", Args: []int64{256, 16}, Evals: 6},
		{Name: "drift", Args: []int64{256, 2}, Evals: 10},
		{Name: "recover", Args: []int64{256, 64}, Evals: 16},
	}
}

// RunAdaptiveCtx serves the drift workload through three traffic
// phases under the adaptive tier manager and under the two fixed
// extremes it interpolates between, and totals the cycles each policy
// spent. The adaptive run feeds every evaluation's per-function
// counters back into the monitor and waits out each recompile
// (Quiesce), so the run — including the exact evaluation each
// transition lands on — is deterministic.
func RunAdaptiveCtx(ctx context.Context, workers int) (*AdaptiveResult, error) {
	w, ok := workloads.Resolve("drift")
	if !ok {
		return nil, fmt.Errorf("experiments: drift workload missing")
	}
	serve := repro.Config{Spec: repro.SpecCost, SpecThreshold: 1, ProfileArgs: w.ProfileArgs, Workers: workers}
	conservative := repro.Config{Spec: repro.SpecOff, ProfileArgs: w.ProfileArgs, Workers: workers}

	out := &AdaptiveResult{Workload: w.Name, Phases: adaptivePhases()}

	// The label the transition callback stamps records; it fires from
	// the recompile goroutine, always before the post-eval Quiesce
	// returns, so the label set before Observe is the one it sees.
	var mu sync.Mutex
	var curPhase string
	var curEval int
	mgr := adaptive.NewManager(adaptive.Config{
		Source: w.Src,
		Build:  serve,
		OnTransition: func(tr adaptive.Transition) {
			mu.Lock()
			out.Transitions = append(out.Transitions, AdaptiveTransition{
				Phase: curPhase, Eval: curEval,
				Fn: tr.Fn, From: tr.From.String(), To: tr.To.String(),
			})
			mu.Unlock()
		},
	})
	defer mgr.Close()

	// The fixed extremes are deterministic and tierless, so one run per
	// phase stands in for all of that phase's evaluations.
	aggr, err := compile(ctx, w.Src, serve)
	if err != nil {
		return nil, err
	}
	cons, err := compile(ctx, w.Src, conservative)
	if err != nil {
		return nil, err
	}

	for pi := range out.Phases {
		ph := &out.Phases[pi]
		ra, err := aggr.RunCtx(ctx, ph.Args)
		if err != nil {
			return nil, err
		}
		rc, err := cons.RunCtx(ctx, ph.Args)
		if err != nil {
			return nil, err
		}
		ph.AggressiveCycles = ra.Counters.Cycles * int64(ph.Evals)
		ph.ConservativeCycles = rc.Counters.Cycles * int64(ph.Evals)

		for e := 1; e <= ph.Evals; e++ {
			mu.Lock()
			curPhase, curEval = ph.Name, e
			mu.Unlock()

			asn := mgr.Snapshot()
			cfg := serve
			cfg.FnSpec, err = adaptive.FnSpecs(asn.Tiers)
			if err != nil {
				return nil, err
			}
			c, err := compile(ctx, w.Src, cfg)
			if err != nil {
				return nil, err
			}
			res, err := c.RunCtx(ctx, ph.Args)
			if err != nil {
				return nil, err
			}
			if res.Output != ra.Output || res.Output != rc.Output {
				return nil, fmt.Errorf("experiments: adaptive output diverged in phase %s", ph.Name)
			}
			ph.AdaptiveCycles += res.Counters.Cycles

			if ph.Name == "drift" {
				hot := res.PerFunc["hot"]
				rate := 0.0
				if hot.CheckLoads > 0 {
					rate = float64(hot.FailedChecks) / float64(hot.CheckLoads)
				}
				if e == 1 {
					out.DriftFailureBefore = rate
				}
				if e == ph.Evals {
					out.DriftFailureAfter = rate
				}
			}

			mgr.Observe(asn.Version, res.PerFunc)
			mgr.Quiesce()
		}
		ph.EndTiers = mgr.Snapshot().Tiers

		out.AdaptiveCycles += ph.AdaptiveCycles
		out.AggressiveCycles += ph.AggressiveCycles
		out.ConservativeCycles += ph.ConservativeCycles
	}

	if out.AdaptiveCycles > 0 {
		out.VsAggressive.Speedup = float64(out.AggressiveCycles) / float64(out.AdaptiveCycles)
		out.VsConservative.Speedup = float64(out.ConservativeCycles) / float64(out.AdaptiveCycles)
	}
	return out, nil
}

// MarshalAdaptive renders the result as canonical indented JSON (the
// BENCH_adaptive.json artifact benchguard diffs).
func MarshalAdaptive(res *AdaptiveResult) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// PrintAdaptive renders the experiment as a table: per-phase cycle
// totals for the three policies, the transition log, and the headline
// ratios.
func PrintAdaptive(w io.Writer, res *AdaptiveResult) {
	fmt.Fprintf(w, "Adaptive tiering on %q: total cycles per policy\n", res.Workload)
	fmt.Fprintf(w, "%-8s %6s %14s %14s %14s\n", "phase", "evals", "adaptive", "aggressive", "conservative")
	for _, ph := range res.Phases {
		fmt.Fprintf(w, "%-8s %6d %14d %14d %14d\n",
			ph.Name, ph.Evals, ph.AdaptiveCycles, ph.AggressiveCycles, ph.ConservativeCycles)
	}
	fmt.Fprintf(w, "%-8s %6s %14d %14d %14d\n", "total", "",
		res.AdaptiveCycles, res.AggressiveCycles, res.ConservativeCycles)
	fmt.Fprintf(w, "\nspeedup vs fixed-aggressive %.3fx, vs fixed-conservative %.3fx\n",
		res.VsAggressive.Speedup, res.VsConservative.Speedup)
	fmt.Fprintf(w, "drift-phase failure rate: %.3f first eval -> %.3f last eval\n",
		res.DriftFailureBefore, res.DriftFailureAfter)
	if len(res.Transitions) == 0 {
		fmt.Fprintln(w, "no tier transitions (unexpected)")
		return
	}
	fmt.Fprintln(w, "\ntransitions:")
	for _, tr := range res.Transitions {
		fmt.Fprintf(w, "  %-8s eval %2d  %s: %s -> %s\n", tr.Phase, tr.Eval, tr.Fn, tr.From, tr.To)
	}
}
