package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro"
	"repro/internal/adaptive"
	"repro/internal/workloads"
)

// TestAdaptiveExperiment is the end-to-end pin of the tier ladder: on
// the drifting workload the adaptive policy must beat both fixed
// extremes in total cycles, the transition log must contain a demotion
// and a re-promotion, and the drift-phase failure rate must collapse
// once the ladder converges.
func TestAdaptiveExperiment(t *testing.T) {
	res, err := RunAdaptiveCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptiveCycles >= res.AggressiveCycles {
		t.Errorf("adaptive (%d cycles) must beat fixed-aggressive (%d)",
			res.AdaptiveCycles, res.AggressiveCycles)
	}
	if res.AdaptiveCycles >= res.ConservativeCycles {
		t.Errorf("adaptive (%d cycles) must beat fixed-conservative (%d)",
			res.AdaptiveCycles, res.ConservativeCycles)
	}
	var demotions, promotions int
	for _, tr := range res.Transitions {
		from, ok1 := adaptive.TierByName(tr.From)
		to, ok2 := adaptive.TierByName(tr.To)
		if !ok1 || !ok2 {
			t.Fatalf("transition with invalid tier names: %+v", tr)
		}
		if to > from {
			demotions++
		} else {
			promotions++
		}
	}
	if demotions == 0 || promotions == 0 {
		t.Errorf("ladder must demote and re-promote; transitions = %+v", res.Transitions)
	}
	if res.DriftFailureBefore <= 0.2 {
		t.Errorf("drift must mis-speculate heavily at first (rate %.3f)", res.DriftFailureBefore)
	}
	if res.DriftFailureAfter >= 0.05 {
		t.Errorf("converged drift steady state still failing (rate %.3f)", res.DriftFailureAfter)
	}
	for _, ph := range res.Phases {
		if ph.Name == "drift" && len(ph.EndTiers) == 0 {
			t.Error("drift phase ended with no function demoted")
		}
	}
}

// TestAdaptiveDeterministic pins the BENCH_adaptive.json bytes: two
// full runs must marshal identically, or benchguard's diff against the
// committed baseline is meaningless.
func TestAdaptiveDeterministic(t *testing.T) {
	a, err := RunAdaptiveCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAdaptiveCtx(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := MarshalAdaptive(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := MarshalAdaptive(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("adaptive experiment not deterministic:\n%s\nvs\n%s", ja, jb)
	}
}

// TestRetieredFunctionsPassSpecheck compiles the drift workload with
// the hot function pinned to each rung of the ladder, with the
// per-pass soundness checker enabled: a re-tiered artifact must verify
// exactly like a fresh build at that tier.
func TestRetieredFunctionsPassSpecheck(t *testing.T) {
	w, ok := workloads.Resolve("drift")
	if !ok {
		t.Fatal("drift workload missing")
	}
	for tier := adaptive.TierAggressive; tier <= adaptive.TierNone; tier++ {
		cfg := repro.Config{Spec: repro.SpecCost, SpecThreshold: 1, ProfileArgs: w.ProfileArgs, VerifyPasses: true}
		var err error
		cfg.FnSpec, err = adaptive.FnSpecs(map[string]string{"hot": tier.String()})
		if err != nil {
			t.Fatal(err)
		}
		c, err := repro.Compile(w.Src, cfg)
		if err != nil {
			t.Errorf("tier %s: specheck rejected the re-tiered build: %v", tier, err)
			continue
		}
		if c.ProfileErr != nil {
			t.Errorf("tier %s: profiling failed: %v", tier, c.ProfileErr)
		}
	}
}
