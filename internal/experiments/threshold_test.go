package experiments

import (
	"strings"
	"testing"
)

// TestThresholdSweepTradeoff pins the shape of the cost-model threshold
// sweep on the mixprob kernel: raising θ only withdraws speculation
// (p=0 sites always speculate), so checks and failed checks are monotone
// non-increasing, and the neutral θ=1 must beat both over-speculation
// (θ far below 1 speculates the p=1/4 site, whose recovery cost exceeds
// the saved latency) and total refusal (the largest θ, which degrades
// to the base build).
func TestThresholdSweepTradeoff(t *testing.T) {
	s, err := RunThresholdSweep("mixprob")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) == 0 {
		t.Fatal("empty sweep")
	}
	for i := 1; i < len(s.Points); i++ {
		prev, cur := s.Points[i-1], s.Points[i]
		if cur.Checks > prev.Checks {
			t.Errorf("θ=%g has %d checks, more than θ=%g's %d: speculated set must shrink with θ",
				cur.Threshold, cur.Checks, prev.Threshold, prev.Checks)
		}
		if cur.FailedChecks > prev.FailedChecks {
			t.Errorf("θ=%g has %d failed checks, more than θ=%g's %d",
				cur.Threshold, cur.FailedChecks, prev.Threshold, prev.FailedChecks)
		}
	}
	var neutral, lowest, highest ThresholdPoint
	for _, p := range s.Points {
		if p.Threshold == 1 {
			neutral = p
		}
	}
	lowest, highest = s.Points[0], s.Points[len(s.Points)-1]
	if neutral.Threshold != 1 {
		t.Fatal("sweep grid lacks the neutral θ=1")
	}
	if neutral.Cycles >= lowest.Cycles {
		t.Errorf("neutral θ (%d cycles) does not beat over-speculation at θ=%g (%d cycles)",
			neutral.Cycles, lowest.Threshold, lowest.Cycles)
	}
	if neutral.Cycles >= highest.Cycles {
		t.Errorf("neutral θ (%d cycles) does not beat refusal at θ=%g (%d cycles)",
			neutral.Cycles, highest.Threshold, highest.Cycles)
	}
	// the sweep must actually exercise distinct cost decisions, not one
	// step function
	if s.DistinctBuilds < 3 {
		t.Errorf("only %d distinct speculative builds; the kernel's three break points should give >= 3", s.DistinctBuilds)
	}
	// θ large enough refuses every fractional site: code equals the base
	if highest.Checks != 0 || highest.Cycles != s.BaseCycles {
		t.Errorf("θ=%g should refuse all speculation: %d checks, %d cycles (base %d)",
			highest.Threshold, highest.Checks, highest.Cycles, s.BaseCycles)
	}
}

func TestThresholdSweepRendering(t *testing.T) {
	s, err := RunThresholdSweep("mixprob")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	PrintThresholdSweep(&b, s)
	out := b.String()
	for _, want := range []string{"mixprob", "θ", "speedup", "miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered sweep lacks %q:\n%s", want, out)
		}
	}
	data, err := MarshalThresholdSweeps([]ThresholdSweep{s})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"workload": "mixprob"`, `"threshold": 1,`, `"missRatio"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON artifact lacks %q", want)
		}
	}
}
