// profile-args: 96
// ref-args: 192
// Global scalars re-read across pointer stores that only sometimes
// touch them: fractional alias probability on a store:global pattern.
int acc = 0;
int scratch = 0;

int main() {
	int n = arg(0);
	int sum = 0;
	for (int i = 0; i < n; i++) {
		int *p;
		if (i % 8 == 0) { p = &acc; } else { p = &scratch; }
		int x = acc;
		*p = x + i;
		sum = sum + acc;
	}
	print(sum);
	return 0;
}
