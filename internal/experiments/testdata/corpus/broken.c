// Deliberately unparseable: the corpus run must record the failure and
// keep aggregating the rest of the files.
int main( {
	return 0;
}
