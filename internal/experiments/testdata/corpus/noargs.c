// A corpus file with no directives: the program takes no inputs.
double *dvec(int n) { return (double*)malloc(n); }

int main() {
	int n = 24;
	double *v = dvec(n);
	double *w = dvec(n);
	for (int i = 0; i < n; i++) {
		v[i] = (double)(i % 7) * 0.5;
		w[i] = 0.0;
	}
	double check = 0.0;
	for (int i = 0; i < n; i++) {
		double x = v[i];
		w[i] = w[i] + x * 2.0;
		check += v[i];
	}
	print(check);
	return 0;
}
