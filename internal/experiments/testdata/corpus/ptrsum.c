// profile-args: 24 2
// ref-args: 48 3
// Two heap arrays from a shared allocator: compile-time may-alias,
// never collide at run time (the corpus's "speculation wins" shape).
int *ivec(int n) { return (int*)malloc(n); }

int main() {
	int n = arg(0);
	int iters = arg(1);
	int *a = ivec(n);
	int *b = ivec(n);
	for (int i = 0; i < n; i++) {
		a[i] = i * 3 + 1;
		b[i] = 0;
	}
	int sum = 0;
	for (int t = 0; t < iters; t++) {
		for (int i = 0; i < n; i++) {
			int x = a[i];
			b[i] = b[i] + x;
			sum = sum + a[i];
		}
	}
	print(sum);
	return 0;
}
