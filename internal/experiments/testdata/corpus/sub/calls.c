// profile-args: 16 2
// ref-args: 32 2
// Call-heavy kernel: a helper that writes one array while the caller
// re-reads another — callmod/callref alias patterns.
int *ivec(int n) { return (int*)malloc(n); }

void bump(int *dst, int i, int v) {
	dst[i] = dst[i] + v;
}

int main() {
	int n = arg(0);
	int iters = arg(1);
	int *src = ivec(n);
	int *dst = ivec(n);
	for (int i = 0; i < n; i++) {
		src[i] = i + 1;
		dst[i] = 0;
	}
	int sum = 0;
	for (int t = 0; t < iters; t++) {
		for (int i = 0; i < n; i++) {
			int x = src[i];
			bump(dst, i, x);
			sum = sum + src[i];
		}
	}
	print(sum);
	return 0;
}
