package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro"
	"repro/internal/harden"
	"repro/internal/machine"
	"repro/internal/specheck"
	"repro/internal/workloads"
)

// HardenCost prices one mitigation policy on one workload: the
// mitigations it inserted and the re-timed cycle counts of the hardened
// build under both timing models, as overhead over the leaky baseline.
type HardenCost struct {
	Fences          int   `json:"fences"`
	Hoisted         int   `json:"hoisted"`
	Residual        int   `json:"residual"`
	SerialCycles    int64 `json:"serialCycles"`
	PipelinedCycles int64 `json:"pipelinedCycles"`
	// SerialOverheadPct / PipelinedOverheadPct are the percentage cycle
	// cost over the unhardened (leaky) build — the price of security.
	SerialOverheadPct    float64 `json:"serialOverheadPct"`
	PipelinedOverheadPct float64 `json:"pipelinedOverheadPct"`
}

// HardenRow is one workload of the security-vs-speed experiment: the
// build is made leaky by seeding an output-neutral branch sink on every
// unchecked speculative load (harden.SeedBranchLeaks), Layer 3 must
// find every seed, and each policy is priced against that leaky
// baseline. Workloads whose pipelines leave no unchecked speculative
// window (LeaksSeeded 0) stay in the table as the zero-cost control.
type HardenRow struct {
	Workload    string `json:"workload"`
	LeaksSeeded int    `json:"leaksSeeded"`
	LeaksFound  int    `json:"leaksFound"`
	// SerialCycles / PipelinedCycles are the leaky baseline timings.
	SerialCycles    int64      `json:"serialCycles"`
	PipelinedCycles int64      `json:"pipelinedCycles"`
	Fence           HardenCost `json:"fence"`
	Hoist           HardenCost `json:"hoist"`
}

// HardenResult is the outcome of `experiments -exp harden`
// (BENCH_harden.json): every bundled workload, seeded leaky, mitigated
// under both policies, re-verified by Layer 3, and priced.
type HardenResult struct {
	Rows          []HardenRow `json:"rows"`
	TotalLeaks    int         `json:"totalLeaks"`
	TotalResidual int         `json:"totalResidual"`
}

// hardenTimings re-times one program variant under the serial and
// pipelined default machines through the batched replay path (one
// functional recording, one ReplayBatch walk) and returns the two cycle
// counts plus the program output for the cross-variant equality check.
func hardenTimings(code *machine.Program, args []int64) (serial, pipelined int64, output string, err error) {
	base := machine.Defaults()
	pipe := machine.Defaults()
	pipe.Pipelined = true
	trace, err := machine.Record(code, args, base)
	if err != nil {
		return 0, 0, "", err
	}
	results, err := machine.ReplayBatch(code, trace, []machine.Config{base, pipe})
	if err != nil {
		return 0, 0, "", err
	}
	return results[0].Counters.Cycles, results[1].Counters.Cycles, results[0].Output, nil
}

// RunHardenCtx runs the security-vs-speed experiment: for every bundled
// workload it compiles the profile-guided speculative build, seeds an
// output-neutral speculative leak at every unchecked speculative load,
// demands Layer 3 find each one, closes them under both mitigation
// policies, re-runs Layer 3 to prove zero residual, checks the hardened
// programs still compute the reference output, and prices each policy
// by replaying the ref input under the serial and pipelined machines.
func RunHardenCtx(ctx context.Context, workers int) (*HardenResult, error) {
	out := &HardenResult{}
	for _, w := range workloads.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := compile(ctx, w.Src, repro.Config{
			Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs, Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		if leaks := specheck.FindLeaks(c.Code); len(leaks) > 0 {
			return nil, fmt.Errorf("experiments: %s: unhardened build leaks: %s", w.Name, leaks[0])
		}

		leaky := c.Code.Clone()
		row := HardenRow{Workload: w.Name, LeaksSeeded: harden.SeedBranchLeaks(leaky)}
		row.LeaksFound = len(specheck.FindLeaks(leaky))
		if row.LeaksFound < row.LeaksSeeded {
			return nil, fmt.Errorf("experiments: %s: Layer 3 found %d of %d seeded leaks",
				w.Name, row.LeaksFound, row.LeaksSeeded)
		}
		out.TotalLeaks += row.LeaksFound

		var baseOut string
		row.SerialCycles, row.PipelinedCycles, baseOut, err = hardenTimings(leaky, w.RefArgs)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: leaky baseline: %w", w.Name, err)
		}

		for _, pol := range []harden.Policy{harden.PolicyFence, harden.PolicyHoist} {
			hardened := leaky.Clone()
			rep, err := harden.Apply(hardened, pol)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", w.Name, err)
			}
			cost := HardenCost{
				Fences:   rep.FencesInserted,
				Hoisted:  rep.ChecksHoisted,
				Residual: len(specheck.FindLeaks(hardened)),
			}
			out.TotalResidual += cost.Residual
			var hardOut string
			cost.SerialCycles, cost.PipelinedCycles, hardOut, err = hardenTimings(hardened, w.RefArgs)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s: %w", w.Name, pol, err)
			}
			if hardOut != baseOut {
				return nil, fmt.Errorf("experiments: %s: %s-hardened output diverged", w.Name, pol)
			}
			if row.SerialCycles > 0 {
				cost.SerialOverheadPct = 100 * (float64(cost.SerialCycles)/float64(row.SerialCycles) - 1)
			}
			if row.PipelinedCycles > 0 {
				cost.PipelinedOverheadPct = 100 * (float64(cost.PipelinedCycles)/float64(row.PipelinedCycles) - 1)
			}
			if pol == harden.PolicyFence {
				row.Fence = cost
			} else {
				row.Hoist = cost
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// MarshalHarden renders the result as canonical indented JSON
// (BENCH_harden.json). Besides the rows, every workload contributes
// "<name>_fence" and "<name>_hoist" top-level cells holding the
// leaky-over-hardened serial cycle ratio in the object-with-"speedup"
// shape benchguard's sweep guard reads: 1.0 means free hardening, lower
// means overhead, and a drop beyond the margin (the pass got more
// expensive) fails CI.
func MarshalHarden(res *HardenResult) ([]byte, error) {
	doc := map[string]any{
		"rows":          res.Rows,
		"totalLeaks":    res.TotalLeaks,
		"totalResidual": res.TotalResidual,
	}
	for _, r := range res.Rows {
		if r.Fence.SerialCycles > 0 {
			doc[r.Workload+"_fence"] = SpeedupCell{Speedup: float64(r.SerialCycles) / float64(r.Fence.SerialCycles)}
		}
		if r.Hoist.SerialCycles > 0 {
			doc[r.Workload+"_hoist"] = SpeedupCell{Speedup: float64(r.SerialCycles) / float64(r.Hoist.SerialCycles)}
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// PrintHarden renders the experiment as a table: per workload, the
// seeded/found leak counts, the leaky baseline, and each policy's
// mitigation mix and overhead under both timing models.
func PrintHarden(w io.Writer, res *HardenResult) {
	fmt.Fprintf(w, "Hardening cost on seeded speculative leaks (ref inputs)\n")
	fmt.Fprintf(w, "%-8s %6s %6s  %-24s %-24s\n", "", "", "", "fence", "hoist")
	fmt.Fprintf(w, "%-8s %6s %6s  %5s %8s %9s %5s %8s %9s\n",
		"workload", "seeded", "found", "f/h", "serial%", "pipeline%", "f/h", "serial%", "pipeline%")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-8s %6d %6d  %2d/%-2d %+8.3f %+9.3f %2d/%-2d %+8.3f %+9.3f\n",
			r.Workload, r.LeaksSeeded, r.LeaksFound,
			r.Fence.Fences, r.Fence.Hoisted, r.Fence.SerialOverheadPct, r.Fence.PipelinedOverheadPct,
			r.Hoist.Fences, r.Hoist.Hoisted, r.Hoist.SerialOverheadPct, r.Hoist.PipelinedOverheadPct)
	}
	fmt.Fprintf(w, "\n%d leaks found, %d residual after hardening\n", res.TotalLeaks, res.TotalResidual)
}
