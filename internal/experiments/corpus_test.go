package experiments

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
)

// TestCorpusRunDeterministic pins the corpus determinism contract at
// the single-node level: the aggregate report bytes are identical at
// any worker count, which is the foundation the fleet extends to any
// worker-process count.
func TestCorpusRunDeterministic(t *testing.T) {
	ctx := context.Background()
	rep1, err := RunCorpusDirCtx(ctx, "testdata/corpus", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep8, err := RunCorpusDirCtx(ctx, "testdata/corpus", 8)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := MarshalCorpusReport(rep1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := MarshalCorpusReport(rep8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("corpus report differs across worker counts:\n%s\nvs\n%s", b1, b8)
	}
	if rep1.Analyzed == 0 || rep1.Files <= rep1.Analyzed {
		t.Fatalf("testdata corpus should have analyzed files and at least one failure: %+v", rep1)
	}
	if len(rep1.Patterns) == 0 {
		t.Fatal("no alias patterns in the corpus report")
	}
	for _, want := range []string{"load:heap", "store:global"} {
		if rep1.Patterns[want] == nil {
			t.Fatalf("pattern %q missing from report", want)
		}
	}
}

// TestCorpusAggregateOrderIndependent shuffles per-file results before
// aggregation and asserts identical bytes — the property that lets the
// fleet coordinator fold worker responses in completion order.
func TestCorpusAggregateOrderIndependent(t *testing.T) {
	files, err := LoadCorpusDir("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	var results []*CorpusFileResult
	var fails []CorpusFailure
	for _, f := range files {
		res, err := RunCorpusFileCtx(context.Background(), f, 1)
		if err != nil {
			fails = append(fails, CorpusFailure{Name: f.Name, Error: err.Error()})
			continue
		}
		results = append(results, res)
	}
	base, err := MarshalCorpusReport(AggregateCorpus(results, fails))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]*CorpusFileResult(nil), results...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		sf := append([]CorpusFailure(nil), fails...)
		rng.Shuffle(len(sf), func(i, j int) { sf[i], sf[j] = sf[j], sf[i] })
		got, err := MarshalCorpusReport(AggregateCorpus(shuffled, sf))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, got) {
			t.Fatalf("aggregate depends on result order (trial %d)", trial)
		}
	}
}

// TestCorpusFileRoundTrip pins the per-file wire format: marshaling and
// unmarshaling a result must not change what it aggregates to, since
// the coordinator folds results that crossed HTTP next to ones computed
// locally.
func TestCorpusFileRoundTrip(t *testing.T) {
	files, err := LoadCorpusDir("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	var f *CorpusFile
	for i := range files {
		if files[i].Name == "ptrsum.c" {
			f = &files[i]
		}
	}
	if f == nil {
		t.Fatal("ptrsum.c missing from testdata corpus")
	}
	res, err := RunCorpusFileCtx(context.Background(), *f, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalCorpusFile(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCorpusFile(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MarshalCorpusReport(AggregateCorpus([]*CorpusFileResult{res}, nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalCorpusReport(AggregateCorpus([]*CorpusFileResult{back}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("corpus file result changed across the wire format")
	}
}

// TestCorpusArgsDirectives pins the directive syntax corpus sources
// carry their inputs in.
func TestCorpusArgsDirectives(t *testing.T) {
	src := "// profile-args: 32 2\n// ref-args: 128 6\nint main() { return 0; }\n"
	pa, err := corpusArgs(src, "profile-args")
	if err != nil || len(pa) != 2 || pa[0] != 32 || pa[1] != 2 {
		t.Fatalf("profile-args = %v, %v", pa, err)
	}
	ra, err := corpusArgs(src, "ref-args")
	if err != nil || len(ra) != 2 || ra[0] != 128 || ra[1] != 6 {
		t.Fatalf("ref-args = %v, %v", ra, err)
	}
	none, err := corpusArgs("int main() { return 0; }", "profile-args")
	if err != nil || none != nil {
		t.Fatalf("absent directive = %v, %v", none, err)
	}
	if _, err := corpusArgs("// profile-args: twelve\n", "profile-args"); err == nil || !strings.Contains(err.Error(), "bad profile-args") {
		t.Fatalf("bad directive error = %v", err)
	}
}
