// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the modelled workloads:
//
//   - §5.1  the equake/smvp case study (checks-per-load ratio, speedup
//     over the base, and the no-check manual upper bound);
//   - Fig. 10  per-benchmark dynamic-load reduction, execution-time
//     speedup and data-access-cycle reduction of speculative register
//     promotion over the O3-equivalent baseline;
//   - Fig. 11  check-loads over loads retired and the mis-speculation
//     ratio, from the ALAT counters (the pfmon stand-in);
//   - Fig. 12  potential load reduction by the simulation-based
//     load-reuse method and by aggressive (alias-ignoring) register
//     promotion;
//   - §5.2  the heuristic-rules variant compared with the profile-guided
//     one.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/workloads"
)

// Row is one benchmark's measurements for the Fig. 10/11 tables.
type Row struct {
	Name string

	BaseLoads, SpecLoads   int64 // plain (non-check) loads retired
	BaseCycles, SpecCycles int64
	BaseData, SpecData     int64 // data-access cycles

	Checks       int64
	FailedChecks int64
	LoadsRetired int64 // total loads retired in the speculative build

	// Fig. 12 potentials
	ReusePotential      float64 // simulation-based load-reuse limit
	AggressiveReduction float64 // aggressive promotion upper bound

	// §5.2 heuristic variant
	HeurLoads  int64
	HeurCycles int64
}

// LoadReduction is the paper's first metric: percent of dynamic loads
// removed by speculative register promotion.
func (r Row) LoadReduction() float64 {
	if r.BaseLoads == 0 {
		return 0
	}
	return 1 - float64(r.SpecLoads)/float64(r.BaseLoads)
}

// Speedup over the base in execution time (cycles).
func (r Row) Speedup() float64 {
	if r.SpecCycles == 0 {
		return 0
	}
	return float64(r.BaseCycles)/float64(r.SpecCycles) - 1
}

// DataCycleReduction is the reduction of cycles attributed to data access.
func (r Row) DataCycleReduction() float64 {
	if r.BaseData == 0 {
		return 0
	}
	return 1 - float64(r.SpecData)/float64(r.BaseData)
}

// CheckRatio is Fig. 11's percentage of check loads over loads retired.
func (r Row) CheckRatio() float64 {
	if r.LoadsRetired == 0 {
		return 0
	}
	return float64(r.Checks) / float64(r.LoadsRetired)
}

// MissRatio is Fig. 11's mis-speculation ratio (failed / total checks).
func (r Row) MissRatio() float64 {
	if r.Checks == 0 {
		return 0
	}
	return float64(r.FailedChecks) / float64(r.Checks)
}

// HeurLoadReduction is the heuristic variant's load reduction (§5.2).
func (r Row) HeurLoadReduction() float64 {
	if r.BaseLoads == 0 {
		return 0
	}
	return 1 - float64(r.HeurLoads)/float64(r.BaseLoads)
}

// RunAll measures every workload under base (SpecOff), profile-guided and
// heuristic speculation, plus the Fig. 12 limit methods. Workloads run
// concurrently on every core; use RunAllWorkers to bound or serialize.
func RunAll() ([]Row, error) {
	return RunAllWorkers(0)
}

// RunAllWorkers runs the sweep with at most workers workloads in flight
// (0 = all cores, 1 = the serial oracle). The same worker bound is
// threaded into each workload's config sweep and from there into every
// compilation, so workers=1 reproduces the fully serial engine.
func RunAllWorkers(workers int) ([]Row, error) {
	ws := workloads.All()
	rows := make([]Row, len(ws))
	err := par.Each(workers, len(ws), func(i int) error {
		row, err := RunOneWorkers(ws[i], workers)
		if err != nil {
			return fmt.Errorf("%s: %w", ws[i].Name, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunOne measures a single workload, fanning its config variants out over
// every core.
func RunOne(w workloads.Workload) (Row, error) {
	return RunOneWorkers(w, 0)
}

// RunOneWorkers measures a single workload with at most workers config
// variants compiling concurrently. Every variant re-compiles the same
// source, so all of them after the first hit the frontend compilation
// cache and pay only for their own optimization pipeline.
func RunOneWorkers(w workloads.Workload, workers int) (Row, error) {
	row := Row{Name: w.Name}

	variants := []repro.Config{
		{Spec: repro.SpecOff},
		{Spec: repro.SpecProfile},
		{Spec: repro.SpecHeuristic},
		{AggressivePromotion: true},
	}
	results := make([]*machine.Result, len(variants))
	var reusePotential float64
	// the variants plus the Fig. 12 reuse-limit simulation are mutually
	// independent; item len(variants) is the simulation
	err := par.Each(workers, len(variants)+1, func(i int) error {
		if i == len(variants) {
			sim, err := repro.ReuseLimit(w.Src, w.RefArgs)
			if err != nil {
				return err
			}
			reusePotential = sim.PotentialReduction()
			return nil
		}
		cfg := variants[i]
		cfg.ProfileArgs = w.ProfileArgs
		cfg.Workers = workers
		c, err := repro.Compile(w.Src, cfg)
		if err != nil {
			return err
		}
		res, err := c.Run(w.RefArgs)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return row, err
	}
	base, spec, heur, agg := results[0], results[1], results[2], results[3]
	for _, r := range results[1:] {
		if r.Output != base.Output {
			return row, fmt.Errorf("output mismatch between variants: %q vs %q", r.Output, base.Output)
		}
	}
	plainLoads := func(r *machine.Result) int64 { return r.Counters.LoadsRetired - r.Counters.CheckLoads }
	row.BaseLoads, row.BaseCycles, row.BaseData = plainLoads(base), base.Counters.Cycles, base.Counters.DataAccessCycles
	row.SpecLoads, row.SpecCycles, row.SpecData = plainLoads(spec), spec.Counters.Cycles, spec.Counters.DataAccessCycles
	row.Checks = spec.Counters.CheckLoads
	row.FailedChecks = spec.Counters.FailedChecks
	row.LoadsRetired = spec.Counters.LoadsRetired
	row.HeurLoads, row.HeurCycles = plainLoads(heur), heur.Counters.Cycles
	if row.BaseLoads > 0 {
		row.AggressiveReduction = 1 - float64(plainLoads(agg))/float64(row.BaseLoads)
	}
	row.ReusePotential = reusePotential
	return row, nil
}

// Smvp holds the §5.1 case-study measurements.
type Smvp struct {
	ChecksPerLoad float64 // fraction of the procedure's loads replaced by checks
	Speedup       float64 // speculative vs base
	ManualSpeedup float64 // aggressive no-check bound vs base ("manually tuned")
}

// RunSmvp reproduces the §5.1 case study on the equake kernel: the
// fraction of load operations converted to checks, the speedup of
// speculative promotion, and the upper bound of a manually tuned version
// that promotes without any check instructions (compiled with
// AggressivePromotion and zero-cost checks — the paper's hand-allocated
// registers).
func RunSmvp() (Smvp, error) {
	w, _ := workloads.ByName("equake")
	base, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecOff, ProfileArgs: w.ProfileArgs})
	if err != nil {
		return Smvp{}, err
	}
	spec, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs})
	if err != nil {
		return Smvp{}, err
	}
	manualCfg := repro.Config{AggressivePromotion: true, ProfileArgs: w.ProfileArgs}
	manualCfg.Machine = machine.Defaults()
	manualCfg.Machine.CheckHitLat = 0 // hand-allocated registers: no check instructions at all
	manualCfg.Machine.CheckMissPen = 0
	manual, err := repro.Compile(w.Src, manualCfg)
	if err != nil {
		return Smvp{}, err
	}
	rb, err := base.Run(w.RefArgs)
	if err != nil {
		return Smvp{}, err
	}
	rs, err := spec.Run(w.RefArgs)
	if err != nil {
		return Smvp{}, err
	}
	// the "manually tuned" bound: no checks at all — run the aggressive
	// build and drop check costs entirely by removing their cycles
	rm, err := manual.Run(w.RefArgs)
	if err != nil {
		return Smvp{}, err
	}
	var s Smvp
	if rs.Counters.LoadsRetired > 0 {
		s.ChecksPerLoad = float64(rs.Counters.CheckLoads) / float64(rs.Counters.LoadsRetired)
	}
	if rs.Counters.Cycles > 0 {
		s.Speedup = float64(rb.Counters.Cycles)/float64(rs.Counters.Cycles) - 1
	}
	if rm.Counters.Cycles > 0 {
		s.ManualSpeedup = float64(rb.Counters.Cycles)/float64(rm.Counters.Cycles) - 1
	}
	return s, nil
}

// PrintFig10 renders the Fig. 10 table.
func PrintFig10(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Figure 10: effect of speculative register promotion (ref input)")
	fmt.Fprintf(w, "%-8s %12s %12s %12s %14s\n", "bench", "base loads", "spec loads", "load red.", "speedup / dcyc red.")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12d %12d %11.1f%% %8.1f%% / %5.1f%%\n",
			r.Name, r.BaseLoads, r.SpecLoads, r.LoadReduction()*100, r.Speedup()*100, r.DataCycleReduction()*100)
	}
}

// PrintFig11 renders the Fig. 11 table.
func PrintFig11(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Figure 11: check loads and mis-speculation (ref input)")
	fmt.Fprintf(w, "%-8s %12s %14s %12s %12s\n", "bench", "checks", "loads retired", "check ratio", "miss ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12d %14d %11.2f%% %11.2f%%\n",
			r.Name, r.Checks, r.LoadsRetired, r.CheckRatio()*100, r.MissRatio()*100)
	}
}

// PrintFig12 renders the Fig. 12 table.
func PrintFig12(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Figure 12: potential load reduction (ref input)")
	fmt.Fprintf(w, "%-8s %12s %14s %12s\n", "bench", "achieved", "reuse limit", "aggressive")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %11.1f%% %13.1f%% %11.1f%%\n",
			r.Name, r.LoadReduction()*100, r.ReusePotential*100, r.AggressiveReduction*100)
	}
}

// PrintHeuristic renders the §5.2 heuristic-vs-profile comparison.
func PrintHeuristic(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "§5.2: heuristic rules vs alias profile (load reduction, ref input)")
	fmt.Fprintf(w, "%-8s %12s %12s\n", "bench", "profile", "heuristic")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %11.1f%% %11.1f%%\n", r.Name, r.LoadReduction()*100, r.HeurLoadReduction()*100)
	}
}

// PrintSmvp renders the §5.1 case study.
func PrintSmvp(w io.Writer, s Smvp) {
	fmt.Fprintln(w, "§5.1: equake smvp case study")
	fmt.Fprintf(w, "  loads converted to checks: %.1f%% (paper: 39.8%%)\n", s.ChecksPerLoad*100)
	fmt.Fprintf(w, "  speculative speedup:       %.1f%% (paper: 6%%)\n", s.Speedup*100)
	fmt.Fprintf(w, "  manual no-check bound:     %.1f%% (paper: 14%%)\n", s.ManualSpeedup*100)
}

// Report runs everything and renders all tables.
func Report(w io.Writer) error {
	s, err := RunSmvp()
	if err != nil {
		return err
	}
	PrintSmvp(w, s)
	fmt.Fprintln(w)
	rows, err := RunAll()
	if err != nil {
		return err
	}
	PrintFig10(w, rows)
	fmt.Fprintln(w)
	PrintFig11(w, rows)
	fmt.Fprintln(w)
	PrintFig12(w, rows)
	fmt.Fprintln(w)
	PrintHeuristic(w, rows)
	fmt.Fprintln(w)
	sens, err := RunSensitivity()
	if err != nil {
		return err
	}
	PrintSensitivity(w, sens)
	return nil
}

// Summary returns a one-line shape check used by tests: which benchmarks
// won, by how much.
func Summary(rows []Row) string {
	var parts []string
	for _, r := range rows {
		parts = append(parts, fmt.Sprintf("%s=%.0f%%", r.Name, r.LoadReduction()*100))
	}
	return strings.Join(parts, " ")
}

// Sensitivity is the input-sensitivity study motivated by the paper's §1:
// alias profiles "do not guarantee they are not aliases under different
// program inputs", which is exactly why the information must be used
// speculatively. For each kernel we compare training on the training
// input (mis-matched: the reference run sees aliasing the profile never
// saw) against training on the reference input itself (matched).
type Sensitivity struct {
	Name                  string
	MismatchChecks        int64
	MismatchFailed        int64
	MatchedChecks         int64
	MatchedFailed         int64
	OutputsCorrect        bool
	MismatchLoadReduction float64
	MatchedLoadReduction  float64
}

// RunSensitivity measures the input-sensitivity table on kernels that
// have input-dependent aliasing (gzip and mcf carry rare aliasing stores
// that small training inputs never execute).
func RunSensitivity() ([]Sensitivity, error) {
	var rows []Sensitivity
	for _, name := range []string{"gzip", "mcf", "equake"} {
		w, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %s", name)
		}
		base, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecOff, ProfileArgs: w.ProfileArgs})
		if err != nil {
			return nil, err
		}
		rb, err := base.Run(w.RefArgs)
		if err != nil {
			return nil, err
		}
		row := Sensitivity{Name: name, OutputsCorrect: true}
		for i, train := range [][]int64{w.ProfileArgs, w.RefArgs} {
			c, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: train})
			if err != nil {
				return nil, err
			}
			res, err := c.Run(w.RefArgs)
			if err != nil {
				return nil, err
			}
			if res.Output != rb.Output {
				row.OutputsCorrect = false
			}
			red := 1 - float64(res.Counters.LoadsRetired-res.Counters.CheckLoads)/float64(rb.Counters.LoadsRetired)
			if i == 0 {
				row.MismatchChecks = res.Counters.CheckLoads
				row.MismatchFailed = res.Counters.FailedChecks
				row.MismatchLoadReduction = red
			} else {
				row.MatchedChecks = res.Counters.CheckLoads
				row.MatchedFailed = res.Counters.FailedChecks
				row.MatchedLoadReduction = red
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintSensitivity renders the input-sensitivity table.
func PrintSensitivity(w io.Writer, rows []Sensitivity) {
	fmt.Fprintln(w, "Input sensitivity: trained on training input vs on the reference input")
	fmt.Fprintf(w, "%-8s %28s %28s %8s\n", "bench", "mismatched (checks/failed)", "matched (checks/failed)", "correct")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %17d / %-8d %17d / %-8d %8v\n",
			r.Name, r.MismatchChecks, r.MismatchFailed, r.MatchedChecks, r.MatchedFailed, r.OutputsCorrect)
	}
}
