// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the modelled workloads:
//
//   - §5.1  the equake/smvp case study (checks-per-load ratio, speedup
//     over the base, and the no-check manual upper bound);
//   - Fig. 10  per-benchmark dynamic-load reduction, execution-time
//     speedup and data-access-cycle reduction of speculative register
//     promotion over the O3-equivalent baseline;
//   - Fig. 11  check-loads over loads retired and the mis-speculation
//     ratio, from the ALAT counters (the pfmon stand-in);
//   - Fig. 12  potential load reduction by the simulation-based
//     load-reuse method and by aggressive (alias-ignoring) register
//     promotion;
//   - §5.2  the heuristic-rules variant compared with the profile-guided
//     one.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"repro"
	"repro/internal/adaptive"
	"repro/internal/harden"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/ssapre"
	"repro/internal/workloads"
)

// plainLoads is the load count the paper's tables are built on: loads
// retired minus check loads (ld.c/ldf.c are accounted separately in
// Fig. 11). Every metric that compares load counts across builds must
// use it, or a speculative build's checks would be double counted.
func plainLoads(r *machine.Result) int64 {
	return r.Counters.LoadsRetired - r.Counters.CheckLoads
}

// compile wraps repro.CompileCtx and fails loudly when the training run
// faulted: a silent StaticEstimate fallback would skew every
// profile-guided number in the tables while looking plausible.
// verifyPasses, when set (SetVerifyPasses / `experiments
// -verify-passes`), turns the speculation-soundness checker on for
// every compilation the experiments run. It only adds verification —
// results are unchanged, compilations just fail loudly on a dirty
// pipeline stage.
var verifyPasses atomic.Bool

// SetVerifyPasses makes every experiment compilation run the per-pass
// speculation-soundness checker (repro.Config.VerifyPasses).
func SetVerifyPasses(on bool) { verifyPasses.Store(on) }

func compile(ctx context.Context, src string, cfg repro.Config) (*repro.Compilation, error) {
	if verifyPasses.Load() {
		cfg.VerifyPasses = true
	}
	c, err := repro.CompileCtx(ctx, src, cfg)
	if err != nil {
		return nil, err
	}
	if c.ProfileErr != nil {
		return nil, c.ProfileErr
	}
	return c, nil
}

// Row is one benchmark's measurements for the Fig. 10/11 tables.
type Row struct {
	Name string

	BaseLoads, SpecLoads   int64 // plain (non-check) loads retired
	BaseCycles, SpecCycles int64
	BaseData, SpecData     int64 // data-access cycles

	Checks       int64
	FailedChecks int64
	LoadsRetired int64 // total loads retired in the speculative build

	// Fig. 12 potentials
	ReusePotential      float64 // simulation-based load-reuse limit
	AggressiveReduction float64 // aggressive promotion upper bound

	// §5.2 heuristic variant
	HeurLoads  int64
	HeurCycles int64
}

// LoadReduction is the paper's first metric: percent of dynamic loads
// removed by speculative register promotion.
func (r Row) LoadReduction() float64 {
	if r.BaseLoads == 0 {
		return 0
	}
	return 1 - float64(r.SpecLoads)/float64(r.BaseLoads)
}

// Speedup over the base in execution time (cycles).
func (r Row) Speedup() float64 {
	if r.SpecCycles == 0 {
		return 0
	}
	return float64(r.BaseCycles)/float64(r.SpecCycles) - 1
}

// DataCycleReduction is the reduction of cycles attributed to data access.
func (r Row) DataCycleReduction() float64 {
	if r.BaseData == 0 {
		return 0
	}
	return 1 - float64(r.SpecData)/float64(r.BaseData)
}

// CheckRatio is Fig. 11's percentage of check loads over loads retired.
func (r Row) CheckRatio() float64 {
	if r.LoadsRetired == 0 {
		return 0
	}
	return float64(r.Checks) / float64(r.LoadsRetired)
}

// MissRatio is Fig. 11's mis-speculation ratio (failed / total checks).
func (r Row) MissRatio() float64 {
	if r.Checks == 0 {
		return 0
	}
	return float64(r.FailedChecks) / float64(r.Checks)
}

// HeurLoadReduction is the heuristic variant's load reduction (§5.2).
func (r Row) HeurLoadReduction() float64 {
	if r.BaseLoads == 0 {
		return 0
	}
	return 1 - float64(r.HeurLoads)/float64(r.BaseLoads)
}

// RunAll measures every workload under base (SpecOff), profile-guided and
// heuristic speculation, plus the Fig. 12 limit methods. Workloads run
// concurrently on every core; use RunAllWorkers to bound or serialize.
func RunAll() ([]Row, error) {
	return RunAllWorkers(0)
}

// RunAllWorkers runs the sweep with at most workers workloads in flight
// (0 = all cores, 1 = the serial oracle). The same worker bound is
// threaded into each workload's config sweep and from there into every
// compilation, so workers=1 reproduces the fully serial engine.
func RunAllWorkers(workers int) ([]Row, error) {
	return RunAllCtx(context.Background(), workers)
}

// RunAllCtx is RunAllWorkers with cancellation threaded through the
// workload fan-out and every compilation under it.
func RunAllCtx(ctx context.Context, workers int) ([]Row, error) {
	ws := workloads.All()
	rows := make([]Row, len(ws))
	err := par.EachCtx(ctx, workers, len(ws), func(i int) error {
		row, err := RunOneCtx(ctx, ws[i], workers)
		if err != nil {
			return fmt.Errorf("%s: %w", ws[i].Name, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunOne measures a single workload, fanning its config variants out over
// every core.
func RunOne(w workloads.Workload) (Row, error) {
	return RunOneWorkers(w, 0)
}

// RunOneWorkers measures a single workload with at most workers config
// variants compiling concurrently. Every variant re-compiles the same
// source, so all of them after the first hit the frontend compilation
// cache and pay only for their own optimization pipeline.
func RunOneWorkers(w workloads.Workload, workers int) (Row, error) {
	return RunOneCtx(context.Background(), w, workers)
}

// RunOneCtx is RunOneWorkers with cancellation threaded through the
// variant fan-out, each compilation, and each run.
func RunOneCtx(ctx context.Context, w workloads.Workload, workers int) (Row, error) {
	row := Row{Name: w.Name}

	variants := []repro.Config{
		{Spec: repro.SpecOff},
		{Spec: repro.SpecProfile},
		{Spec: repro.SpecHeuristic},
		{AggressivePromotion: true},
	}
	results := make([]*machine.Result, len(variants))
	var reusePotential float64
	// the variants plus the Fig. 12 reuse-limit simulation are mutually
	// independent; item len(variants) is the simulation
	err := par.EachCtx(ctx, workers, len(variants)+1, func(i int) error {
		if i == len(variants) {
			// sharded by equivalence class; identical totals at any
			// worker count, so the report bytes stay stable
			sim, err := repro.ReuseLimitWorkersCtx(ctx, w.Src, w.RefArgs, workers)
			if err != nil {
				return err
			}
			reusePotential = sim.PotentialReduction()
			return nil
		}
		cfg := variants[i]
		cfg.ProfileArgs = w.ProfileArgs
		cfg.Workers = workers
		c, err := compile(ctx, w.Src, cfg)
		if err != nil {
			return err
		}
		res, err := c.RunCtx(ctx, w.RefArgs)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return row, err
	}
	base, spec, heur, agg := results[0], results[1], results[2], results[3]
	for _, r := range results[1:] {
		if r.Output != base.Output {
			return row, fmt.Errorf("output mismatch between variants: %q vs %q", r.Output, base.Output)
		}
	}
	row.BaseLoads, row.BaseCycles, row.BaseData = plainLoads(base), base.Counters.Cycles, base.Counters.DataAccessCycles
	row.SpecLoads, row.SpecCycles, row.SpecData = plainLoads(spec), spec.Counters.Cycles, spec.Counters.DataAccessCycles
	row.Checks = spec.Counters.CheckLoads
	row.FailedChecks = spec.Counters.FailedChecks
	row.LoadsRetired = spec.Counters.LoadsRetired
	row.HeurLoads, row.HeurCycles = plainLoads(heur), heur.Counters.Cycles
	if row.BaseLoads > 0 {
		row.AggressiveReduction = 1 - float64(plainLoads(agg))/float64(row.BaseLoads)
	}
	row.ReusePotential = reusePotential
	return row, nil
}

// Smvp holds the §5.1 case-study measurements.
type Smvp struct {
	ChecksPerLoad float64 // fraction of the procedure's loads replaced by checks
	Speedup       float64 // speculative vs base
	ManualSpeedup float64 // aggressive no-check bound vs base ("manually tuned")
}

// RunSmvp reproduces the §5.1 case study on the equake kernel: the
// fraction of load operations converted to checks, the speedup of
// speculative promotion, and the upper bound of a manually tuned version
// that promotes without any check instructions (compiled with
// AggressivePromotion and zero-cost checks — the paper's hand-allocated
// registers).
func RunSmvp() (Smvp, error) {
	return RunSmvpWorkers(0)
}

// RunSmvpWorkers runs the §5.1 case study with at most workers variants
// compiling concurrently; the bound is threaded into each compilation.
func RunSmvpWorkers(workers int) (Smvp, error) {
	return RunSmvpCtx(context.Background(), workers)
}

// RunSmvpCtx is RunSmvpWorkers with cancellation.
func RunSmvpCtx(ctx context.Context, workers int) (Smvp, error) {
	w, ok := workloads.ByName("equake")
	if !ok {
		return Smvp{}, fmt.Errorf("experiments: smvp case study: workload %q is not registered", "equake")
	}
	manualCfg := repro.Config{AggressivePromotion: true}
	// hand-allocated registers: no check instructions at all — run the
	// aggressive build with zero-cost checks
	manualCfg.Machine.CheckHitLat = machine.Free
	manualCfg.Machine.CheckMissPen = machine.Free
	variants := []repro.Config{
		{Spec: repro.SpecOff},
		{Spec: repro.SpecProfile},
		manualCfg,
	}
	results := make([]*machine.Result, len(variants))
	err := par.EachCtx(ctx, workers, len(variants), func(i int) error {
		cfg := variants[i]
		cfg.ProfileArgs = w.ProfileArgs
		cfg.Workers = workers
		c, err := compile(ctx, w.Src, cfg)
		if err != nil {
			return err
		}
		res, err := c.RunCtx(ctx, w.RefArgs)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return Smvp{}, err
	}
	rb, rs, rm := results[0], results[1], results[2]
	var s Smvp
	if rs.Counters.LoadsRetired > 0 {
		s.ChecksPerLoad = float64(rs.Counters.CheckLoads) / float64(rs.Counters.LoadsRetired)
	}
	if rs.Counters.Cycles > 0 {
		s.Speedup = float64(rb.Counters.Cycles)/float64(rs.Counters.Cycles) - 1
	}
	if rm.Counters.Cycles > 0 {
		s.ManualSpeedup = float64(rb.Counters.Cycles)/float64(rm.Counters.Cycles) - 1
	}
	return s, nil
}

// PrintFig10 renders the Fig. 10 table.
func PrintFig10(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Figure 10: effect of speculative register promotion (ref input)")
	fmt.Fprintf(w, "%-8s %12s %12s %12s %14s\n", "bench", "base loads", "spec loads", "load red.", "speedup / dcyc red.")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12d %12d %11.1f%% %8.1f%% / %5.1f%%\n",
			r.Name, r.BaseLoads, r.SpecLoads, r.LoadReduction()*100, r.Speedup()*100, r.DataCycleReduction()*100)
	}
}

// PrintFig11 renders the Fig. 11 table.
func PrintFig11(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Figure 11: check loads and mis-speculation (ref input)")
	fmt.Fprintf(w, "%-8s %12s %14s %12s %12s\n", "bench", "checks", "loads retired", "check ratio", "miss ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12d %14d %11.2f%% %11.2f%%\n",
			r.Name, r.Checks, r.LoadsRetired, r.CheckRatio()*100, r.MissRatio()*100)
	}
}

// PrintFig12 renders the Fig. 12 table.
func PrintFig12(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Figure 12: potential load reduction (ref input)")
	fmt.Fprintf(w, "%-8s %12s %14s %12s\n", "bench", "achieved", "reuse limit", "aggressive")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %11.1f%% %13.1f%% %11.1f%%\n",
			r.Name, r.LoadReduction()*100, r.ReusePotential*100, r.AggressiveReduction*100)
	}
}

// PrintHeuristic renders the §5.2 heuristic-vs-profile comparison.
func PrintHeuristic(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "§5.2: heuristic rules vs alias profile (load reduction, ref input)")
	fmt.Fprintf(w, "%-8s %12s %12s\n", "bench", "profile", "heuristic")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %11.1f%% %11.1f%%\n", r.Name, r.LoadReduction()*100, r.HeurLoadReduction()*100)
	}
}

// PrintSmvp renders the §5.1 case study.
func PrintSmvp(w io.Writer, s Smvp) {
	fmt.Fprintln(w, "§5.1: equake smvp case study")
	fmt.Fprintf(w, "  loads converted to checks: %.1f%% (paper: 39.8%%)\n", s.ChecksPerLoad*100)
	fmt.Fprintf(w, "  speculative speedup:       %.1f%% (paper: 6%%)\n", s.Speedup*100)
	fmt.Fprintf(w, "  manual no-check bound:     %.1f%% (paper: 14%%)\n", s.ManualSpeedup*100)
}

// Report runs everything and renders all tables.
func Report(w io.Writer) error {
	return ReportWorkers(w, 0)
}

// ReportWorkers renders the full report with the given worker bound
// threaded through every study; the rendered bytes are identical at any
// worker count and with the compilation cache cold, warm, or disabled.
func ReportWorkers(w io.Writer, workers int) error {
	s, err := RunSmvpWorkers(workers)
	if err != nil {
		return err
	}
	PrintSmvp(w, s)
	fmt.Fprintln(w)
	rows, err := RunAllWorkers(workers)
	if err != nil {
		return err
	}
	PrintFig10(w, rows)
	fmt.Fprintln(w)
	PrintFig11(w, rows)
	fmt.Fprintln(w)
	PrintFig12(w, rows)
	fmt.Fprintln(w)
	PrintHeuristic(w, rows)
	fmt.Fprintln(w)
	sens, err := RunSensitivityWorkers(workers)
	if err != nil {
		return err
	}
	PrintSensitivity(w, sens)
	return nil
}

// Summary returns a one-line shape check used by tests: which benchmarks
// won, by how much.
func Summary(rows []Row) string {
	var parts []string
	for _, r := range rows {
		parts = append(parts, fmt.Sprintf("%s=%.0f%%", r.Name, r.LoadReduction()*100))
	}
	return strings.Join(parts, " ")
}

// Sensitivity is the input-sensitivity study motivated by the paper's §1:
// alias profiles "do not guarantee they are not aliases under different
// program inputs", which is exactly why the information must be used
// speculatively. For each kernel we compare training on the training
// input (mis-matched: the reference run sees aliasing the profile never
// saw) against training on the reference input itself (matched).
type Sensitivity struct {
	Name                  string
	MismatchChecks        int64
	MismatchFailed        int64
	MatchedChecks         int64
	MatchedFailed         int64
	OutputsCorrect        bool
	MismatchLoadReduction float64
	MatchedLoadReduction  float64
}

// RunSensitivity measures the input-sensitivity table on kernels that
// have input-dependent aliasing (gzip and mcf carry rare aliasing stores
// that small training inputs never execute).
func RunSensitivity() ([]Sensitivity, error) {
	return RunSensitivityWorkers(0)
}

// RunSensitivityWorkers runs the sensitivity study with at most workers
// kernels (and, within each kernel, compilations) in flight; the bound
// is threaded into every compilation, so workers=1 is the serial oracle.
func RunSensitivityWorkers(workers int) ([]Sensitivity, error) {
	return RunSensitivityCtx(context.Background(), workers)
}

// RunSensitivityCtx is RunSensitivityWorkers with cancellation.
func RunSensitivityCtx(ctx context.Context, workers int) ([]Sensitivity, error) {
	names := []string{"gzip", "mcf", "equake"}
	rows := make([]Sensitivity, len(names))
	err := par.EachCtx(ctx, workers, len(names), func(i int) error {
		row, err := sensitivityRow(ctx, names[i], workers)
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// sensitivityRow measures one kernel: the base build plus a build
// trained on the training input (mismatched) and one trained on the
// reference input (matched). The three compilations are independent and
// fan out under the same worker bound.
func sensitivityRow(ctx context.Context, name string, workers int) (Sensitivity, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return Sensitivity{}, fmt.Errorf("unknown workload %s", name)
	}
	variants := []repro.Config{
		{Spec: repro.SpecOff, ProfileArgs: w.ProfileArgs},
		{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs},
		{Spec: repro.SpecProfile, ProfileArgs: w.RefArgs},
	}
	results := make([]*machine.Result, len(variants))
	err := par.EachCtx(ctx, workers, len(variants), func(i int) error {
		cfg := variants[i]
		cfg.Workers = workers
		c, err := compile(ctx, w.Src, cfg)
		if err != nil {
			return err
		}
		res, err := c.RunCtx(ctx, w.RefArgs)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return Sensitivity{}, err
	}
	rb, mis, mat := results[0], results[1], results[2]
	red := func(r *machine.Result) float64 {
		if plainLoads(rb) == 0 {
			return 0
		}
		return 1 - float64(plainLoads(r))/float64(plainLoads(rb))
	}
	return Sensitivity{
		Name:                  name,
		OutputsCorrect:        mis.Output == rb.Output && mat.Output == rb.Output,
		MismatchChecks:        mis.Counters.CheckLoads,
		MismatchFailed:        mis.Counters.FailedChecks,
		MismatchLoadReduction: red(mis),
		MatchedChecks:         mat.Counters.CheckLoads,
		MatchedFailed:         mat.Counters.FailedChecks,
		MatchedLoadReduction:  red(mat),
	}, nil
}

// MachineSweepConfigs returns the machine-model grid of the §5-style
// hardware sensitivity sweeps: ALAT capacities crossed with three
// memory-latency points, under both the serial and the pipelined timing
// model. With the trace path enabled the whole grid costs one
// functional run plus one cheap replay per point.
func MachineSweepConfigs() []machine.Config {
	latencies := []struct{ intLd, fpLd int }{{2, 9}, {4, 12}, {8, 24}}
	var cfgs []machine.Config
	for _, pipelined := range []bool{false, true} {
		for _, alat := range []int{4, 8, 32, 128} {
			for _, lat := range latencies {
				cfgs = append(cfgs, machine.Config{
					ALATSize:   alat,
					IntLoadLat: lat.intLd,
					FPLoadLat:  lat.fpLd,
					Pipelined:  pipelined,
				})
			}
		}
	}
	return cfgs
}

// MachinePoint is one (workload, machine config) measurement of the
// hardware sensitivity sweep.
type MachinePoint struct {
	Config       machine.Config
	Cycles       int64
	FailedChecks int64
	Evictions    int64
}

// RunMachineSweep measures the profile-guided speculative build of one
// workload under every MachineSweepConfigs point, fanning the
// re-timings out over every core.
func RunMachineSweep(name string) ([]MachinePoint, error) {
	return RunMachineSweepWorkers(name, 0)
}

// RunMachineSweepWorkers is RunMachineSweep with a worker bound. The
// compiled program executes functionally once; each grid point is a
// trace replay sharing the recording read-only (or a direct run when
// tracing is disabled — the results are identical either way).
func RunMachineSweepWorkers(name string, workers int) ([]MachinePoint, error) {
	return RunMachineSweepCtx(context.Background(), name, nil, workers)
}

// RunMachineSweepCtx is the cancellable machine sweep: cfgs selects the
// grid (nil = MachineSweepConfigs), and ctx is threaded through the
// compilation, the one functional recording, and the per-point replay
// fan-out, so cancelling a sweep stops claiming grid points promptly.
func RunMachineSweepCtx(ctx context.Context, name string, cfgs []machine.Config, workers int) ([]MachinePoint, error) {
	w, ok := workloads.Resolve(name)
	if !ok {
		return nil, fmt.Errorf("unknown workload %s", name)
	}
	c, err := compile(ctx, w.Src, repro.Config{
		Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	if cfgs == nil {
		cfgs = MachineSweepConfigs()
	}
	results, err := c.EvaluateCtx(ctx, w.RefArgs, cfgs, workers)
	if err != nil {
		return nil, err
	}
	points := make([]MachinePoint, len(cfgs))
	for i, r := range results {
		points[i] = MachinePoint{
			Config:       cfgs[i],
			Cycles:       r.Counters.Cycles,
			FailedChecks: r.Counters.FailedChecks,
			Evictions:    r.Counters.ALATEvictions,
		}
	}
	return points, nil
}

// PrintMachineSweep renders the hardware sensitivity table.
func PrintMachineSweep(w io.Writer, name string, points []MachinePoint) {
	fmt.Fprintf(w, "Hardware sensitivity (%s, ref input)\n", name)
	fmt.Fprintf(w, "%-10s %6s %8s %14s %10s %10s\n", "model", "alat", "ld lat", "cycles", "failed", "evicted")
	for _, p := range points {
		model := "serial"
		if p.Config.Pipelined {
			model = "pipelined"
		}
		fmt.Fprintf(w, "%-10s %6d %5d/%-2d %14d %10d %10d\n",
			model, p.Config.ALATSize, p.Config.IntLoadLat, p.Config.FPLoadLat,
			p.Cycles, p.FailedChecks, p.Evictions)
	}
}

// EvalRequest is one (workload, config) evaluation — the unit of work
// behind both `experiments -exp eval` and specd's POST /evaluate. The
// two front ends share RunEvalCtx and MarshalEval, which is what makes
// the service's responses byte-identical to the CLI's output for the
// same request.
type EvalRequest struct {
	// Workload names a registered kernel (see workloads.All).
	Workload string `json:"workload"`
	// Config, when non-nil, overrides the default build (profile-guided
	// speculation trained on the workload's training input).
	Config *repro.Config `json:"config,omitempty"`
	// Args overrides the measurement input (default: the workload's
	// reference input).
	Args []int64 `json:"args,omitempty"`
	// Workers bounds the evaluation's parallelism. It shapes scheduling
	// only, never results, and is excluded from the echoed config.
	Workers int `json:"workers,omitempty"`
	// Verify runs the per-pass speculation-soundness checker
	// (repro.Config.VerifyPasses) during the compilation; a violation
	// fails the request. Like Workers it is a diagnostic knob, so it is
	// normalized out of the echoed config to keep response bytes stable.
	Verify bool `json:"verify,omitempty"`
	// FnTiers pins named functions to adaptive tiers ("aggressive",
	// "cautious", "profile", "none"); the mapped repro.Config.FnSpec
	// overrides land in the echoed config, so a response produced under
	// a tier assignment names the exact build that served it and the
	// CLI can reproduce the bytes with -fn-tiers. Mutually exclusive
	// with Config.FnSpec (FnTiers wins).
	FnTiers map[string]string `json:"fnTiers,omitempty"`
	// Harden applies a speculative-leak mitigation policy ("fence" or
	// "hoist", see internal/harden) to the generated code. It is a
	// semantic knob — the hardened build runs slower and leak-free — so
	// it lands in the echoed config (as Config.Harden), and the
	// mitigation report rides along in EvalResult.Harden. Overrides
	// Config.Harden when both are set.
	Harden string `json:"harden,omitempty"`
}

// EvalResult is the JSON shape of one evaluation: the request echoed in
// normalized form plus the machine counters and optimizer statistics.
type EvalResult struct {
	Workload string          `json:"workload"`
	Config   repro.Config    `json:"config"`
	Args     []int64         `json:"args"`
	Result   *machine.Result `json:"result"`
	Stats    ssapre.Stats    `json:"stats"`
	// Harden is the leak-mitigation report for hardened builds (nil
	// when the request did not ask for hardening).
	Harden *harden.Report `json:"harden,omitempty"`
}

// RunEvalCtx compiles and runs one (workload, config) point. The
// result is deterministic — identical at any worker count and with the
// compilation cache cold, warm, or disabled — because every computation
// under it is (see the determinism tests at the repo root).
func RunEvalCtx(ctx context.Context, req EvalRequest) (*EvalResult, error) {
	w, ok := workloads.Resolve(req.Workload)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", req.Workload)
	}
	cfg := repro.Config{Spec: repro.SpecProfile}
	if req.Config != nil {
		cfg = *req.Config
	}
	if cfg.ProfileArgs == nil {
		cfg.ProfileArgs = w.ProfileArgs
	}
	if len(req.FnTiers) > 0 {
		fnSpec, err := adaptive.FnSpecs(req.FnTiers)
		if err != nil {
			return nil, err
		}
		cfg.FnSpec = fnSpec
	}
	cfg.Workers = req.Workers
	if req.Verify {
		cfg.VerifyPasses = true
	}
	if req.Harden != "" {
		cfg.Harden = req.Harden
	}
	args := req.Args
	if args == nil {
		args = w.RefArgs
	}
	c, err := compile(ctx, w.Src, cfg)
	if err != nil {
		return nil, err
	}
	res, err := c.RunCtx(ctx, args)
	if err != nil {
		return nil, err
	}
	// the echoed config carries the semantic inputs only: Workers is a
	// scheduling knob and VerifyPasses a diagnostic one; normalizing
	// both keeps the bytes identical across -workers values, server
	// replica sizes and verify-enabled requests
	cfg.Workers = 0
	cfg.VerifyPasses = false
	return &EvalResult{
		Workload: w.Name,
		Config:   cfg,
		Args:     args,
		Result:   res,
		Stats:    c.TotalStats(),
		Harden:   c.Harden,
	}, nil
}

// MarshalEval renders an EvalResult as canonical indented JSON with a
// trailing newline — the exact bytes both the CLI and the server emit.
func MarshalEval(res *EvalResult) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WorkloadInfo is the JSON shape of one registered kernel (GET
// /workloads); Src is omitted deliberately — it is an input to the
// service, not something it serves back.
type WorkloadInfo struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	ProfileArgs []int64 `json:"profileArgs"`
	RefArgs     []int64 `json:"refArgs"`
	FPHeavy     bool    `json:"fpHeavy"`
}

// ListWorkloads returns the registered kernels in presentation order.
func ListWorkloads() []WorkloadInfo {
	ws := workloads.All()
	out := make([]WorkloadInfo, len(ws))
	for i, w := range ws {
		out[i] = WorkloadInfo{
			Name: w.Name, Description: w.Description,
			ProfileArgs: w.ProfileArgs, RefArgs: w.RefArgs, FPHeavy: w.FPHeavy,
		}
	}
	return out
}

// PrintSensitivity renders the input-sensitivity table.
func PrintSensitivity(w io.Writer, rows []Sensitivity) {
	fmt.Fprintln(w, "Input sensitivity: trained on training input vs on the reference input")
	fmt.Fprintf(w, "%-8s %28s %28s %8s\n", "bench", "mismatched (checks/failed)", "matched (checks/failed)", "correct")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %17d / %-8d %17d / %-8d %8v\n",
			r.Name, r.MismatchChecks, r.MismatchFailed, r.MatchedChecks, r.MatchedFailed, r.OutputsCorrect)
	}
}
