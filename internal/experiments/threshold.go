package experiments

// The threshold sweep: the cost-model speculation policy (repro.SpecCost)
// exposes one knob, the break-even threshold θ in
// (1-p)·saved > θ·p·recover. Sweeping θ traces the speedup-vs-
// mis-speculation tradeoff curve: θ→0 speculates on everything the
// profile ever saw succeed (approaching aggressive promotion's check
// traffic), θ→∞ refuses any site with a nonzero alias probability
// (approaching ModeProfile's set semantics from below). Because a site
// with p=0 always speculates, raising θ only shrinks the speculated
// set — failed checks are monotone non-increasing along the sweep,
// which the test suite pins.
//
// Most θ values collapse to identical machine code (the policy is a
// step function of the per-site probabilities), so the sweep dedupes
// compilations by code fingerprint and pays one evaluation per distinct
// build through the record-and-replay trace path (Compilation.Evaluate),
// not one per θ.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/workloads"
)

// DefaultThresholds is the sweep grid: geometric around the neutral 1.
func DefaultThresholds() []float64 {
	return []float64{0.25, 0.5, 1, 2, 4, 8, 16}
}

// mixprob is the sweep's dedicated kernel, kept out of workloads.All()
// so the §5 report tables are untouched. The bundled kernels' aliasing
// is nearly bimodal — a site either never aliases or aliases on almost
// every execution — so the cost policy decides them identically at every
// θ. This kernel has three promotion candidates whose stores alias the
// promoted global on exactly 1/4, 1/16 and 1/64 of their executions,
// one break point per grid step: the policy drops them one by one as θ
// grows, and the curve shows over-speculation (θ too low: recovery
// cycles swamp the saved latency) as well as under-speculation (θ too
// high: promotions forfeited).
func mixprob() workloads.Workload {
	return workloads.Workload{
		Name:        "mixprob",
		Description: "three promotion sites with 1/4, 1/16, 1/64 alias probability (threshold-sweep kernel)",
		Src: `
int acc = 0;
int scratch = 0;

int main() {
	int n = arg(0);
	int sum = 0;
	for (int i = 0; i < n; i++) {
		int *p;
		if (i % 4 == 0) { p = &acc; } else { p = &scratch; }
		int x = acc;
		*p = x + i;
		int y = acc;
		sum = sum + x + y;
	}
	for (int i = 0; i < n; i++) {
		int *p;
		if (i % 16 == 0) { p = &acc; } else { p = &scratch; }
		int x = acc;
		*p = x + i;
		int y = acc;
		sum = sum + x + y;
	}
	for (int i = 0; i < n; i++) {
		int *p;
		if (i % 64 == 0) { p = &acc; } else { p = &scratch; }
		int x = acc;
		*p = x + i;
		int y = acc;
		sum = sum + x + y;
	}
	print(sum);
	return 0;
}`,
		ProfileArgs: []int64{512},
		RefArgs:     []int64{512},
	}
}

// sweepWorkload resolves a sweep kernel: the registered ones plus the
// local mixprob kernel.
func sweepWorkload(name string) (workloads.Workload, bool) {
	if name == "mixprob" {
		return mixprob(), true
	}
	return workloads.ByName(name)
}

// ThresholdPoint is one θ measurement of the sweep.
type ThresholdPoint struct {
	Threshold    float64 `json:"threshold"`
	Cycles       int64   `json:"cycles"`
	Speedup      float64 `json:"speedup"` // vs the SpecOff base
	PlainLoads   int64   `json:"plainLoads"`
	Checks       int64   `json:"checks"`
	FailedChecks int64   `json:"failedChecks"`
	MissRatio    float64 `json:"missRatio"`
}

// ThresholdSweep is one workload's speedup-vs-mis-speculation curve.
type ThresholdSweep struct {
	Workload   string           `json:"workload"`
	BaseCycles int64            `json:"baseCycles"`
	BaseLoads  int64            `json:"baseLoads"`
	Points     []ThresholdPoint `json:"points"`
	// DistinctBuilds counts the compilations that produced unique machine
	// code — the number of evaluations actually paid for.
	DistinctBuilds int `json:"distinctBuilds"`
}

// RunThresholdSweep sweeps the default grid on one workload.
func RunThresholdSweep(name string) (ThresholdSweep, error) {
	return RunThresholdSweepCtx(context.Background(), name, nil, 0)
}

// RunThresholdSweepCtx sweeps the cost-model threshold on one workload:
// one SpecOff base build plus one SpecCost build per θ (thresholds nil =
// DefaultThresholds), deduplicated by code fingerprint and evaluated
// through the trace-replay path. Every speculative build's output is
// checked against the base.
//
// Training uses the reference input (the sensitivity study's "matched"
// setup): under the small training inputs the rare aliasing stores never
// execute, every profiled probability is 0 or 1, and the policy
// degenerates to a step function that no θ can move. Matched training is
// where probabilities are genuinely fractional — the profile sees a site
// alias on a few of its thousands of executions — and the θ knob
// actually trades residual speedup against mis-speculation.
func RunThresholdSweepCtx(ctx context.Context, name string, thresholds []float64, workers int) (ThresholdSweep, error) {
	w, ok := sweepWorkload(name)
	if !ok {
		return ThresholdSweep{}, fmt.Errorf("unknown workload %s", name)
	}
	if thresholds == nil {
		thresholds = DefaultThresholds()
	}
	sweep := ThresholdSweep{Workload: name}

	// compile the base and every θ variant concurrently
	comps := make([]*repro.Compilation, len(thresholds)+1)
	err := par.EachCtx(ctx, workers, len(comps), func(i int) error {
		cfg := repro.Config{Spec: repro.SpecOff}
		if i > 0 {
			cfg = repro.Config{Spec: repro.SpecCost, SpecThreshold: thresholds[i-1]}
		}
		cfg.ProfileArgs = w.RefArgs
		cfg.Workers = workers
		c, err := compile(ctx, w.Src, cfg)
		if err != nil {
			return err
		}
		comps[i] = c
		return nil
	})
	if err != nil {
		return sweep, err
	}

	// dedupe by machine-code fingerprint: the policy is a step function
	// of the profiled probabilities, so most θ values share a build
	type slot struct {
		first int // index into comps of the representative build
		res   *machine.Result
	}
	byCode := map[[32]byte]*slot{}
	var order []*slot
	owner := make([]*slot, len(comps))
	for i, c := range comps {
		fp := c.Code.Fingerprint()
		s, ok := byCode[fp]
		if !ok {
			s = &slot{first: i}
			byCode[fp] = s
			order = append(order, s)
		}
		owner[i] = s
	}
	err = par.EachCtx(ctx, workers, len(order), func(i int) error {
		s := order[i]
		rs, err := comps[s.first].EvaluateCtx(ctx, w.RefArgs, []machine.Config{{}}, workers)
		if err != nil {
			return err
		}
		s.res = rs[0]
		return nil
	})
	if err != nil {
		return sweep, err
	}

	base := owner[0].res
	sweep.BaseCycles = base.Counters.Cycles
	sweep.BaseLoads = plainLoads(base)
	sweep.DistinctBuilds = len(order) - 1 // not counting the base
	for i, th := range thresholds {
		r := owner[i+1].res
		if r.Output != base.Output {
			return sweep, fmt.Errorf("θ=%g output differs from base: %q vs %q", th, r.Output, base.Output)
		}
		pt := ThresholdPoint{
			Threshold:    th,
			Cycles:       r.Counters.Cycles,
			PlainLoads:   plainLoads(r),
			Checks:       r.Counters.CheckLoads,
			FailedChecks: r.Counters.FailedChecks,
		}
		if pt.Cycles > 0 {
			pt.Speedup = float64(sweep.BaseCycles)/float64(pt.Cycles) - 1
		}
		if pt.Checks > 0 {
			pt.MissRatio = float64(pt.FailedChecks) / float64(pt.Checks)
		}
		sweep.Points = append(sweep.Points, pt)
	}
	return sweep, nil
}

// ThresholdSweepKernels are the workloads the sweep is reported on: the
// fractional-probability kernel the sweep was built for, the fp-heavy
// case study, and the two kernels with input-dependent aliasing.
func ThresholdSweepKernels() []string { return []string{"mixprob", "equake", "gzip", "mcf"} }

// RunThresholdSweeps runs the sweep on every report kernel.
func RunThresholdSweeps(workers int) ([]ThresholdSweep, error) {
	return RunThresholdSweepsCtx(context.Background(), workers)
}

// RunThresholdSweepsCtx runs the report kernels' sweeps concurrently.
func RunThresholdSweepsCtx(ctx context.Context, workers int) ([]ThresholdSweep, error) {
	names := ThresholdSweepKernels()
	out := make([]ThresholdSweep, len(names))
	err := par.EachCtx(ctx, workers, len(names), func(i int) error {
		s, err := RunThresholdSweepCtx(ctx, names[i], nil, workers)
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MarshalThresholdSweeps renders the sweep results as canonical indented
// JSON with a trailing newline (the -exp threshold -json artifact).
func MarshalThresholdSweeps(sweeps []ThresholdSweep) ([]byte, error) {
	data, err := json.MarshalIndent(sweeps, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// PrintThresholdSweep renders one workload's curve as a table plus an
// ASCII speedup figure.
func PrintThresholdSweep(w io.Writer, s ThresholdSweep) {
	fmt.Fprintf(w, "Threshold sweep on %s (cost-model speculation, ref input; base %d cycles, %d distinct builds)\n",
		s.Workload, s.BaseCycles, s.DistinctBuilds)
	fmt.Fprintf(w, "%8s %12s %9s %10s %8s %8s\n", "θ", "cycles", "speedup", "checks", "failed", "miss")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%8.2f %12d %8.2f%% %10d %8d %7.2f%%\n",
			p.Threshold, p.Cycles, p.Speedup*100, p.Checks, p.FailedChecks, p.MissRatio*100)
	}
	// the tradeoff at a glance: speedup bars over the θ axis
	max := 0.0
	for _, p := range s.Points {
		if p.Speedup > max {
			max = p.Speedup
		}
	}
	if max > 0 {
		fmt.Fprintf(w, "  speedup vs θ (full bar = %.2f%%):\n", max*100)
		for _, p := range s.Points {
			n := int(p.Speedup / max * 40)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(w, "  θ=%-6.2f %s %.2f%% (miss %.2f%%)\n",
				p.Threshold, strings.Repeat("#", n), p.Speedup*100, p.MissRatio*100)
		}
	}
}
