package interp

import (
	"repro/internal/par"
)

// This file shards the Fig. 12 reuse-limit simulation. A single
// functional run records every dynamic memory access into a MemTrace
// (the interp-side analogue of the machine package's recorded trace);
// ShardedReuse then partitions the event stream by reuse-equivalence
// class and walks the shards in parallel. The simulation's state is a
// map keyed by (class, address) and an event only ever interacts with
// the previous event of its own key, so partitioning by class preserves
// per-key event order exactly — the merged totals are identical to a
// serial ReuseSim walk (TestShardedReuseMatchesSerial pins this).

// MemEvent is one dynamic memory access as the reuse simulation sees
// it: the reference-site id (0 for direct stores), the slot address,
// the value loaded or stored, the procedure activation it happened in,
// and whether it was a store.
type MemEvent struct {
	Site       int
	Addr       int
	Val        uint64
	Invocation int64
	Store      bool
}

// memChunkLen is the number of events per chunk (~160 KiB each).
const memChunkLen = 1 << 12

// MemTrace is an append-only chunked stream of dynamic memory accesses,
// recorded by the interpreter when Options.MemTrace is set. A finished
// trace is immutable and safe for concurrent read-only walks.
type MemTrace struct {
	chunks [][]MemEvent
	n      int64
}

func (t *MemTrace) append(e MemEvent) {
	ci := int(t.n) / memChunkLen
	if ci == len(t.chunks) {
		t.chunks = append(t.chunks, make([]MemEvent, 0, memChunkLen))
	}
	t.chunks[ci] = append(t.chunks[ci], e)
	t.n++
}

// Len reports the number of recorded events.
func (t *MemTrace) Len() int64 { return t.n }

// each walks the events in record order.
func (t *MemTrace) each(fn func(MemEvent)) {
	for _, c := range t.chunks {
		for i := range c {
			fn(c[i])
		}
	}
}

// classOf mirrors ReuseSim.access's class resolution: sites absent from
// the map get a private per-site class.
func classOf(classes map[int]int, site int) int {
	if c, ok := classes[site]; ok {
		return c
	}
	return -site - 1
}

// ShardedReuse replays a recorded memory-event stream through the
// reuse-limit simulation, partitioned by equivalence class across
// workers (workers <= 1 is the serial walk). Every (class, address) key
// lands in exactly one shard with its events in record order, so the
// merged result — Loads, Reused, PotentialReduction, and the final
// last-access table — is identical to feeding the same stream through
// one ReuseSim.
func ShardedReuse(classes map[int]int, tr *MemTrace, workers int) *ReuseSim {
	w := par.Workers(workers)
	if int64(w) > tr.n {
		w = int(tr.n)
	}
	if w <= 1 {
		sim := NewReuseSim(classes)
		tr.each(func(e MemEvent) {
			sim.access(e.Site, e.Addr, e.Val, e.Store, e.Invocation)
		})
		return sim
	}
	shards := make([]*ReuseSim, w)
	// each worker walks the full (immutable) stream and keeps the events
	// whose class hashes to it: reading is cheap, and skipping the
	// partition-copy keeps the walk allocation-free
	_ = par.Each(w, w, func(s int) error {
		sim := NewReuseSim(classes)
		tr.each(func(e MemEvent) {
			class := classOf(classes, e.Site)
			if ((class%w)+w)%w != s {
				return
			}
			sim.access(e.Site, e.Addr, e.Val, e.Store, e.Invocation)
		})
		shards[s] = sim
		return nil
	})
	merged := NewReuseSim(classes)
	for _, s := range shards {
		merged.Loads += s.Loads
		merged.Reused += s.Reused
		for k, v := range s.last { // key sets are disjoint by construction
			merged.last[k] = v
		}
	}
	return merged
}
