package interp

// ReuseSim implements the simulation-based potential-load-reduction method
// of the paper's Fig. 12 (following Bodik et al.'s load-reuse analysis):
// memory references with identical names or syntax trees form equivalence
// classes; a dynamic load is counted as a potential speculative reuse when
// the previous access to the same address within the same class and the
// same procedure invocation carried the same value.
type ReuseSim struct {
	// Classes maps a reference-site id to its equivalence class id.
	// Sites absent from the map are tracked per-site.
	Classes map[int]int

	// Loads is the number of dynamic loads observed.
	Loads uint64
	// Reused is the number of loads whose value was available from a
	// previous same-class access to the same address.
	Reused uint64

	last map[reuseKey]reuseVal
}

type reuseKey struct {
	class int
	addr  int
}

type reuseVal struct {
	val        uint64
	invocation int64
}

// NewReuseSim builds a simulator over the given site→class map.
func NewReuseSim(classes map[int]int) *ReuseSim {
	return &ReuseSim{Classes: classes, last: map[reuseKey]reuseVal{}}
}

// access records one dynamic memory access. Called by the interpreter;
// invocation identifies the procedure activation, since the paper's method
// only counts reuse "within the same procedure invocation".
func (r *ReuseSim) access(site, addr int, val uint64, isStore bool, invocation int64) {
	class, ok := r.Classes[site]
	if !ok {
		class = -site - 1 // per-site class for unclassified references
	}
	k := reuseKey{class: class, addr: addr}
	if isStore {
		r.last[k] = reuseVal{val: val, invocation: invocation}
		return
	}
	r.Loads++
	if prev, ok := r.last[k]; ok && prev.val == val && prev.invocation == invocation {
		r.Reused++
	}
	r.last[k] = reuseVal{val: val, invocation: invocation}
}

// PotentialReduction returns the fraction of dynamic loads that a perfect
// speculative register promoter could have eliminated under this input.
func (r *ReuseSim) PotentialReduction() float64 {
	if r.Loads == 0 {
		return 0
	}
	return float64(r.Reused) / float64(r.Loads)
}
