package interp

import "testing"

// TestShardedReuseMatchesSerial feeds one synthetic event stream (mixed
// classified/unclassified sites, interleaved stores, repeated values,
// multiple invocations) through the serial simulator and the sharded
// walk at several worker counts; totals and the final last-access table
// must agree exactly.
func TestShardedReuseMatchesSerial(t *testing.T) {
	classes := map[int]int{1: 0, 2: 0, 3: 1, 4: 2}
	tr := &MemTrace{}
	// a deterministic pseudo-random stream: lcg avoids pulling in
	// math/rand while still interleaving classes and addresses
	state := uint64(42)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for i := 0; i < 10_000; i++ {
		e := MemEvent{
			Site:       next(6), // sites 0..5: 0 and 5 are unclassified
			Addr:       next(32),
			Val:        uint64(next(4)), // frequent repeats → real reuse
			Invocation: int64(next(3)),
			Store:      next(4) == 0,
		}
		tr.append(e)
	}

	serial := NewReuseSim(classes)
	tr.each(func(e MemEvent) {
		serial.access(e.Site, e.Addr, e.Val, e.Store, e.Invocation)
	})
	if serial.Loads == 0 || serial.Reused == 0 {
		t.Fatalf("degenerate stream: loads=%d reused=%d", serial.Loads, serial.Reused)
	}

	for _, workers := range []int{1, 2, 3, 8, 64} {
		sharded := ShardedReuse(classes, tr, workers)
		if sharded.Loads != serial.Loads || sharded.Reused != serial.Reused {
			t.Errorf("workers=%d: totals %d/%d, want %d/%d",
				workers, sharded.Reused, sharded.Loads, serial.Reused, serial.Loads)
		}
		if sharded.PotentialReduction() != serial.PotentialReduction() {
			t.Errorf("workers=%d: PotentialReduction %v, want %v",
				workers, sharded.PotentialReduction(), serial.PotentialReduction())
		}
		if len(sharded.last) != len(serial.last) {
			t.Errorf("workers=%d: merged last table has %d keys, want %d",
				workers, len(sharded.last), len(serial.last))
		}
		for k, v := range serial.last {
			if sharded.last[k] != v {
				t.Errorf("workers=%d: last[%v] = %v, want %v", workers, k, sharded.last[k], v)
			}
		}
	}
}

// TestMemTraceRecordsReuseStream checks the interpreter records the
// exact stream Reuse observes: running with both hooks active must let
// a later sharded walk reproduce the inline simulation.
func TestMemTraceRecordsReuseStream(t *testing.T) {
	// covered end-to-end by repro's TestShardedReuseLimitMatchesSerial;
	// here we just pin that recording is chunk-boundary safe
	tr := &MemTrace{}
	for i := 0; i < memChunkLen*2+7; i++ {
		tr.append(MemEvent{Site: i, Addr: i, Val: uint64(i)})
	}
	if tr.Len() != memChunkLen*2+7 {
		t.Fatalf("len = %d", tr.Len())
	}
	i := 0
	tr.each(func(e MemEvent) {
		if e.Site != i {
			t.Fatalf("event %d has site %d", i, e.Site)
		}
		i++
	})
	if i != int(tr.Len()) {
		t.Fatalf("walked %d events, want %d", i, tr.Len())
	}
}
