package interp

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/source"
)

// compile parses and lowers a MiniC program, failing the test on error.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

// run executes a program and returns its captured output.
func run(t *testing.T, src string, args ...int64) (*Result, string) {
	t.Helper()
	prog := compile(t, src)
	res, err := Run(prog, Options{Args: args})
	if err != nil {
		t.Fatalf("run: %v\nIR:\n%s", err, prog)
	}
	return res, res.Output
}

func TestArithmetic(t *testing.T) {
	_, out := run(t, `
int main() {
	int a = 6;
	int b = 7;
	print(a*b, a+b, a-b, b/a, b%a);
	print(a < b, a > b, a == 6, a != 6, -a);
	return 0;
}`)
	want := "42 13 -1 1 1\n1 0 1 0 -6\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestFloatArithmetic(t *testing.T) {
	_, out := run(t, `
int main() {
	double x = 1.5;
	double y = 2.0;
	print(x+y, x*y, x/y, x-y);
	print(x < y, y == 2.0);
	int i = (int)(x * 4.0);
	print(i);
	double z = 3;
	print(z + 0.5);
	return 0;
}`)
	want := "3.5 3 0.75 -0.5\n1 1\n6\n3.5\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestControlFlow(t *testing.T) {
	_, out := run(t, `
int main() {
	int sum = 0;
	for (int i = 0; i < 10; i++) {
		if (i % 2 == 0) sum += i;
	}
	int j = 0;
	while (j < 5) { j++; }
	print(sum, j);
	int k = 0;
	for (;;) {
		k++;
		if (k >= 3) break;
	}
	print(k);
	return 0;
}`)
	want := "20 5\n3\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestShortCircuit(t *testing.T) {
	_, out := run(t, `
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
	int a = 0;
	if (a && bump()) { print(99); }
	print(g);
	if (a || bump()) { print(g); }
	return 0;
}`)
	want := "0\n1\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestPointersAndArrays(t *testing.T) {
	_, out := run(t, `
int A[10];
int main() {
	for (int i = 0; i < 10; i++) A[i] = i * i;
	int *p = &A[3];
	print(*p, A[9]);
	*p = 100;
	print(A[3]);
	int x = 5;
	int *q = &x;
	*q = 7;
	print(x);
	return 0;
}`)
	want := "9 81\n100\n7\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestMallocAndStructs(t *testing.T) {
	_, out := run(t, `
struct node {
	int val;
	struct node *next;
};
int main() {
	struct node *head = (struct node*)malloc(2);
	head->val = 1;
	head->next = (struct node*)malloc(2);
	head->next->val = 2;
	head->next->next = (struct node*)malloc(2);
	head->next->next->val = 3;
	head->next->next->next = (struct node*)0;
	int sum = 0;
	struct node *p = head;
	while ((int)p != 0) {
		sum += p->val;
		p = p->next;
	}
	print(sum);
	return 0;
}`)
	want := "6\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	_, out := run(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int gcd(int a, int b) {
	while (b != 0) { int t = b; b = a % b; a = t; }
	return a;
}
int main() {
	print(fib(10), gcd(48, 36));
	return 0;
}`)
	want := "55 12\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestGlobalsAndInit(t *testing.T) {
	_, out := run(t, `
int counter = 5;
double scale = 2.5;
int main() {
	counter = counter + 1;
	print(counter, scale);
	return 0;
}`)
	want := "6 2.5\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestArgs(t *testing.T) {
	res, out := run(t, `
int main() {
	int n = arg(0);
	int m = arg(1);
	int missing = arg(7);
	print(n, m, missing);
	return n + m;
}`, 40, 2)
	want := "40 2 0\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
	if res.Ret != 42 {
		t.Errorf("return = %d, want 42", res.Ret)
	}
}

func TestAddressTakenLocal(t *testing.T) {
	// x is read before &x appears; legalization must still treat the
	// earlier read as a load.
	_, out := run(t, `
void setit(int *p) { *p = 9; }
int main() {
	int x = 1;
	int y = x + 1;
	setit(&x);
	print(x, y);
	return 0;
}`)
	want := "9 2\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestTwoDimensionalArrays(t *testing.T) {
	_, out := run(t, `
double M[3][4];
int main() {
	for (int i = 0; i < 3; i++)
		for (int j = 0; j < 4; j++)
			M[i][j] = (double)(i * 10 + j);
	double sum = 0.0;
	for (int i = 0; i < 3; i++)
		for (int j = 0; j < 4; j++)
			sum += M[i][j];
	print(sum, M[2][3]);
	return 0;
}`)
	want := "138 23\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestDivisionByZero(t *testing.T) {
	prog := compile(t, `
int main() {
	int a = 1;
	int b = 0;
	print(a / b);
	return 0;
}`)
	if _, err := Run(prog, Options{}); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestStepLimit(t *testing.T) {
	prog := compile(t, `
int main() {
	while (1) { }
	return 0;
}`)
	if _, err := Run(prog, Options{MaxSteps: 1000}); err == nil {
		t.Fatal("expected step-limit error")
	} else if !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEdgeProfile(t *testing.T) {
	prog := compile(t, `
int main() {
	int sum = 0;
	for (int i = 0; i < 100; i++) {
		if (i % 10 == 0) sum += 100;
		else sum += 1;
	}
	print(sum);
	return 0;
}`)
	prof := runWithProfile(t, prog, nil)
	total := uint64(0)
	for _, c := range prof.BlockCount {
		total += c
	}
	if total == 0 {
		t.Fatal("no block counts collected")
	}
	prof.ApplyEdges(prog)
	// the loop header must be hot: some block executes >= 100 times
	hot := false
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			if b.Freq >= 100 {
				hot = true
			}
		}
	}
	if !hot {
		t.Error("expected a block with frequency >= 100 after ApplyEdges")
	}
}

// runWithProfile executes prog with full profiling and returns the profile.
func runWithProfile(t *testing.T, prog *ir.Program, args []int64) *profile.Profile {
	t.Helper()
	prof := profile.New()
	if _, err := Run(prog, Options{CollectEdges: true, CollectAlias: true, Profile: prof, Args: args}); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	return prof
}

func TestAliasProfileLocSets(t *testing.T) {
	prog := compile(t, `
int a = 0;
int b = 0;
int main() {
	int *p = &a;
	int n = arg(0);
	if (n > 0) p = &b;
	*p = 5;      // writes b when arg(0)>0
	int x = *p;  // reads b
	print(x);
	return 0;
}`)
	prof := runWithProfile(t, prog, []int64{1})
	// Exactly one indirect store site and it must have recorded LOC {b}.
	if len(prof.StoreLocs) != 1 {
		t.Fatalf("expected 1 store site, got %d", len(prof.StoreLocs))
	}
	for site, locs := range prof.StoreLocs {
		if got := locs.String(); got != "{b}" {
			t.Errorf("store site %d LOC set = %s, want {b}", site, got)
		}
	}
	foundLoad := false
	for _, locs := range prof.LoadLocs {
		if locs.String() == "{b}" {
			foundLoad = true
		}
	}
	if !foundLoad {
		t.Errorf("no load site recorded LOC {b}; load sets: %v", prof.LoadLocs)
	}
}

func TestAliasProfileHeap(t *testing.T) {
	prog := compile(t, `
int main() {
	int *p = (int*)malloc(4);
	p[0] = 1;
	p[1] = 2;
	print(p[0] + p[1]);
	return 0;
}`)
	prof := runWithProfile(t, prog, nil)
	heapSeen := false
	for _, locs := range prof.StoreLocs {
		for l := range locs {
			if strings.HasPrefix(l.String(), "heap@") {
				heapSeen = true
			}
		}
	}
	if !heapSeen {
		t.Error("no heap LOC recorded for stores through malloc'd pointer")
	}
}

func TestCallModRef(t *testing.T) {
	prog := compile(t, `
int g = 0;
void touch() { g = g + 1; }
int main() {
	touch();
	print(g);
	return 0;
}`)
	prof := runWithProfile(t, prog, nil)
	found := false
	for _, mods := range prof.CallMod {
		if mods.String() == "{g}" {
			found = true
		}
	}
	if !found {
		t.Errorf("call mod sets missing {g}: %v", prof.CallMod)
	}
}

func TestReuseSimCountsRedundantLoads(t *testing.T) {
	prog := compile(t, `
int A[100];
int main() {
	int sum = 0;
	for (int i = 0; i < 100; i++) A[i] = i;
	// the same A[5] load repeated: all but the first are reusable
	for (int i = 0; i < 50; i++) sum += A[5];
	print(sum);
	return 0;
}`)
	sim := NewReuseSim(map[int]int{})
	if _, err := Run(prog, Options{Reuse: sim}); err != nil {
		t.Fatal(err)
	}
	if sim.Loads == 0 {
		t.Fatal("reuse sim saw no loads")
	}
	if sim.PotentialReduction() < 0.4 {
		t.Errorf("potential reduction = %.2f, want >= 0.4 (49 of ~%d loads reusable)",
			sim.PotentialReduction(), sim.Loads)
	}
}

func TestHeapContextNaming(t *testing.T) {
	// two objects allocated through one wrapper must get distinct LOCs
	// (1-level call-path naming), while direct allocations in main get
	// context 0
	prog := compile(t, `
int *ivec(int n) { return (int*)malloc(n); }
int main() {
	int *a = ivec(4);
	int *b = ivec(4);
	int *c = (int*)malloc(4);
	a[0] = 1;
	b[0] = 2;
	c[0] = 3;
	print(a[0] + b[0] + c[0]);
	return 0;
}`)
	prof := runWithProfile(t, prog, nil)
	locs := map[profile.Loc]bool{}
	for _, set := range prof.StoreLocs {
		for l := range set {
			if l.Kind == profile.LocHeap {
				locs[l] = true
			}
		}
	}
	if len(locs) != 3 {
		t.Fatalf("want 3 distinct heap LOCs, got %d: %v", len(locs), locs)
	}
	ctxZero := 0
	for l := range locs {
		if l.Ctx == 0 {
			ctxZero++
		}
	}
	if ctxZero != 1 {
		t.Errorf("exactly the direct malloc should have ctx 0, got %d", ctxZero)
	}
}

func TestRecursionSharesLocalLoc(t *testing.T) {
	// all activations of a recursive function share one LOC per local
	// (the profiling granularity the paper uses)
	prog := compile(t, `
int down(int n, int *sink) {
	int slot = n;
	int *p = &slot;
	*sink += *p;
	if (n <= 0) return 0;
	return down(n - 1, sink);
}
int main() {
	int acc = 0;
	down(3, &acc);
	print(acc);
	return 0;
}`)
	prof := runWithProfile(t, prog, nil)
	slotLocs := map[profile.Loc]bool{}
	for _, set := range prof.LoadLocs {
		for l := range set {
			if l.Kind == profile.LocLocal && l.Sym.Name == "slot" {
				slotLocs[l] = true
			}
		}
	}
	if len(slotLocs) != 1 {
		t.Errorf("recursive activations must share one LOC for slot, got %d", len(slotLocs))
	}
}

func TestStackOverflowDetected(t *testing.T) {
	prog := compile(t, `
int infinite(int n) {
	int arr[64];
	arr[0] = n;
	return infinite(n + arr[0]);
}
int main() { return infinite(1); }`)
	if _, err := Run(prog, Options{}); err == nil {
		t.Fatal("expected stack/recursion error")
	}
}

func TestInvalidAddressFaults(t *testing.T) {
	for name, src := range map[string]string{
		"wild load": `
int main() {
	int *p = (int*)99999999;
	return *p;
}`,
		"wild store": `
int main() {
	int *p = (int*)99999999;
	*p = 1;
	return 0;
}`,
		"negative alloc": `
int main() {
	int *p = (int*)malloc(0 - 5);
	return 0;
}`,
	} {
		prog := compile(t, src)
		if _, err := Run(prog, Options{}); err == nil {
			t.Errorf("%s: expected a runtime fault", name)
		}
	}
}

func TestReuseSimSeparatesInvocations(t *testing.T) {
	// the same address re-read in *different* invocations must not count
	// as reuse (the paper's "within the same procedure invocation")
	prog := compile(t, `
int A[4];
int readit() { return A[2]; }
int main() {
	A[2] = 5;
	int s = 0;
	for (int i = 0; i < 50; i++) s += readit();
	print(s);
	return 0;
}`)
	sim := NewReuseSim(map[int]int{})
	if _, err := Run(prog, Options{Reuse: sim}); err != nil {
		t.Fatal(err)
	}
	if sim.PotentialReduction() > 0.1 {
		t.Errorf("cross-invocation loads wrongly counted as reuse: %.2f", sim.PotentialReduction())
	}
	// whereas repeated loads within one invocation do count
	prog2 := compile(t, `
int A[4];
int main() {
	A[2] = 5;
	int s = 0;
	for (int i = 0; i < 50; i++) s += A[2];
	print(s);
	return 0;
}`)
	sim2 := NewReuseSim(map[int]int{})
	if _, err := Run(prog2, Options{Reuse: sim2}); err != nil {
		t.Fatal(err)
	}
	if sim2.PotentialReduction() < 0.3 {
		t.Errorf("in-invocation reuse not detected: %.2f", sim2.PotentialReduction())
	}
}
