// Package interp executes the mid-level IR directly. It serves three
// roles in the framework: (1) the profiling runtime — it collects edge
// profiles and the alias (LOC-set) profiles of §3.2.1 of Lin et al.
// (PLDI 2003); (2) the reference semantics — optimized programs compiled
// to the EPIC VM must produce identical output; (3) the limit-study
// vehicle for the paper's Fig. 12 load-reuse simulation.
package interp

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/profile"
)

// Options configures an interpretation run.
type Options struct {
	// Args are the host-supplied input parameters returned by arg(i).
	Args []int64
	// CollectEdges enables edge/block profiling into Profile.
	CollectEdges bool
	// CollectAlias enables LOC-set alias profiling into Profile.
	CollectAlias bool
	// Profile receives collected data; allocated on demand if nil and
	// collection is enabled.
	Profile *profile.Profile
	// Out receives print() output; defaults to io.Discard.
	Out io.Writer
	// MaxSteps bounds execution (0 means the 1e9 default).
	MaxSteps int64
	// MaxCallDepth bounds recursion (0 means 10000).
	MaxCallDepth int
	// Reuse, if non-nil, receives every dynamic memory access for the
	// Fig. 12 load-reuse limit simulation.
	Reuse *ReuseSim
	// MemTrace, if non-nil, records every dynamic memory access (the
	// same stream Reuse observes) for later sharded replay through
	// ShardedReuse.
	MemTrace *MemTrace
}

// Result reports what a run produced.
type Result struct {
	Ret       int64
	Steps     int64
	DynLoads  uint64 // dynamic loads executed (direct scalar + indirect)
	DynStores uint64
	Output    string // captured only if Options.Out was nil
}

// stackCap is the number of slots reserved for the call-stack region
// between the globals and the heap.
const stackCap = 1 << 20

// Run executes prog starting at main.
func Run(prog *ir.Program, opts Options) (*Result, error) {
	m := &machine{prog: prog, opts: opts}
	if opts.MaxSteps == 0 {
		m.maxSteps = 1_000_000_000
	} else {
		m.maxSteps = opts.MaxSteps
	}
	m.maxDepth = opts.MaxCallDepth
	if m.maxDepth == 0 {
		m.maxDepth = 10000
	}
	var sb *strings.Builder
	if opts.Out == nil {
		sb = &strings.Builder{}
		m.out = sb
	} else {
		m.out = opts.Out
	}
	if opts.CollectEdges || opts.CollectAlias {
		if opts.Profile == nil {
			opts.Profile = profile.New()
		}
		m.prof = opts.Profile
	}
	m.mem = make([]uint64, prog.GlobSize+stackCap)
	for addr, v := range prog.GlobalInit {
		m.mem[addr] = v
	}
	m.stackTop = prog.GlobSize
	m.heapBase = prog.GlobSize + stackCap
	m.globals = append([]*ir.Sym(nil), prog.Globals...)
	sort.Slice(m.globals, func(i, j int) bool { return m.globals[i].Addr < m.globals[j].Addr })

	mainFn, ok := prog.FuncMap["main"]
	if !ok {
		return nil, errors.New("interp: no main function")
	}
	ret, err := m.callFn(mainFn, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Ret: int64(ret), Steps: m.steps, DynLoads: m.loads, DynStores: m.stores}
	if sb != nil {
		res.Output = sb.String()
	}
	return res, nil
}

type heapObj struct {
	start, size int
	site        int
	ctx         int // immediate caller's call-site id (0 in main)
}

type frame struct {
	fn   *ir.Func
	regs []uint64
	base int
	id   int64 // unique activation id (for the reuse simulation)
}

type machine struct {
	prog     *ir.Program
	opts     Options
	out      io.Writer
	prof     *profile.Profile
	mem      []uint64
	stackTop int
	heapBase int
	heapNext int // offset past heapBase
	heap     []heapObj
	globals  []*ir.Sym

	frames    []*frame
	callSites []int // active call-site ids for mod/ref attribution

	steps       int64
	maxSteps    int64
	maxDepth    int
	loads       uint64
	stores      uint64
	nextFrameID int64
}

// runtimeErr builds an execution error.
func runtimeErr(format string, args ...any) error {
	return fmt.Errorf("interp: %s", fmt.Sprintf(format, args...))
}

func (m *machine) callFn(fn *ir.Func, args []uint64) (uint64, error) {
	if len(m.frames) >= m.maxDepth {
		return 0, runtimeErr("call depth exceeded in %s", fn.Name)
	}
	nsyms := len(fn.Syms)
	m.nextFrameID++
	fr := &frame{fn: fn, regs: make([]uint64, nsyms), base: m.stackTop, id: m.nextFrameID}
	if m.stackTop+fn.FrameSize > m.heapBase {
		return 0, runtimeErr("stack overflow in %s", fn.Name)
	}
	// zero the frame memory (stack slots are reused across calls)
	for i := 0; i < fn.FrameSize; i++ {
		m.mem[fr.base+i] = 0
	}
	m.stackTop += fn.FrameSize
	m.frames = append(m.frames, fr)
	defer func() {
		m.frames = m.frames[:len(m.frames)-1]
		m.stackTop = fr.base
	}()
	for i, p := range fn.Params {
		if i < len(args) {
			fr.regs[p.ID] = args[i]
		}
	}
	b := fn.Entry
	var prev *ir.Block
	for {
		m.steps++
		if m.steps > m.maxSteps {
			return 0, runtimeErr("step limit exceeded (%d)", m.maxSteps)
		}
		if m.prof != nil && m.opts.CollectEdges {
			m.prof.BlockCount[b]++
		}
		_ = prev
		for _, s := range b.Stmts {
			if err := m.exec(fr, s); err != nil {
				return 0, err
			}
		}
		switch b.Term.Kind {
		case ir.TermJump:
			m.countEdge(b, 0)
			prev, b = b, b.Succs[0]
		case ir.TermCond:
			c, err := m.eval(fr, b.Term.Cond)
			if err != nil {
				return 0, err
			}
			idx := 1
			if int64(c) != 0 {
				idx = 0
			}
			m.countEdge(b, idx)
			prev, b = b, b.Succs[idx]
		case ir.TermRet:
			if b.Term.Val == nil {
				return 0, nil
			}
			return m.eval(fr, b.Term.Val)
		default:
			return 0, runtimeErr("block B%d in %s has no terminator", b.ID, fn.Name)
		}
	}
}

func (m *machine) countEdge(b *ir.Block, idx int) {
	if m.prof == nil || !m.opts.CollectEdges {
		return
	}
	counts := m.prof.EdgeCount[b]
	if counts == nil {
		counts = make([]uint64, len(b.Succs))
		m.prof.EdgeCount[b] = counts
	}
	counts[idx]++
}

// eval computes the value of a leaf operand.
func (m *machine) eval(fr *frame, op ir.Operand) (uint64, error) {
	switch o := op.(type) {
	case *ir.ConstInt:
		return uint64(o.Val), nil
	case *ir.ConstFloat:
		return math.Float64bits(o.Val), nil
	case *ir.Ref:
		if o.Sym.InMemory() {
			return 0, runtimeErr("memory-resident %s used as register operand (IR not legalized)", o.Sym.Name)
		}
		if o.Sym.Kind == ir.SymGlobal {
			return 0, runtimeErr("global %s used as register operand", o.Sym.Name)
		}
		return fr.regs[o.Sym.ID], nil
	case *ir.AddrOf:
		return uint64(m.symAddr(fr, o.Sym)), nil
	}
	return 0, runtimeErr("unknown operand %T", op)
}

func (m *machine) symAddr(fr *frame, s *ir.Sym) int {
	if s.Kind == ir.SymGlobal {
		return s.Addr
	}
	return fr.base + s.Addr
}

func (m *machine) exec(fr *frame, s ir.Stmt) error {
	switch st := s.(type) {
	case *ir.Assign:
		return m.execAssign(fr, st)
	case *ir.IStore:
		addr, err := m.eval(fr, st.Addr)
		if err != nil {
			return err
		}
		val, err := m.eval(fr, st.Val)
		if err != nil {
			return err
		}
		return m.storeMem(int(int64(addr)), val, st.Site)
	case *ir.Call:
		return m.execCall(fr, st)
	case *ir.Print:
		var parts []string
		for _, a := range st.Args {
			v, err := m.eval(fr, a)
			if err != nil {
				return err
			}
			parts = append(parts, formatVal(v, a.Type()))
		}
		fmt.Fprintln(m.out, strings.Join(parts, " "))
		return nil
	}
	return runtimeErr("unknown statement %T", s)
}

func formatVal(v uint64, t *ir.Type) string {
	if t.IsFloat() {
		return fmt.Sprintf("%.6g", math.Float64frombits(v))
	}
	return fmt.Sprintf("%d", int64(v))
}

func (m *machine) execAssign(fr *frame, st *ir.Assign) error {
	var val uint64
	switch st.RK {
	case ir.RHSCopy:
		if r, ok := st.A.(*ir.Ref); ok && r.Sym.InMemory() {
			// direct load of a memory-resident scalar
			v, err := m.loadMem(m.symAddr(fr, r.Sym), 0)
			if err != nil {
				return err
			}
			m.recordDirectRef(r.Sym, false)
			val = v
		} else {
			v, err := m.eval(fr, st.A)
			if err != nil {
				return err
			}
			val = v
		}
	case ir.RHSUnary:
		a, err := m.eval(fr, st.A)
		if err != nil {
			return err
		}
		v, err := evalUnary(st.Op, a, st.A.Type())
		if err != nil {
			return err
		}
		val = v
	case ir.RHSBinary:
		a, err := m.eval(fr, st.A)
		if err != nil {
			return err
		}
		b, err := m.eval(fr, st.B)
		if err != nil {
			return err
		}
		v, err := evalBinary(st.Op, a, b, st.A.Type(), st.B.Type())
		if err != nil {
			return err
		}
		val = v
	case ir.RHSLoad:
		addr, err := m.eval(fr, st.A)
		if err != nil {
			return err
		}
		v, err := m.loadMem(int(int64(addr)), st.Site)
		if err != nil {
			return err
		}
		val = v
	case ir.RHSAlloc:
		n, err := m.eval(fr, st.A)
		if err != nil {
			return err
		}
		sz := int(int64(n))
		if sz < 0 {
			return runtimeErr("negative allocation size %d", sz)
		}
		start := m.heapBase + m.heapNext
		m.heapNext += sz
		for len(m.mem) < m.heapBase+m.heapNext {
			m.mem = append(m.mem, make([]uint64, 4096)...)
		}
		ctx := 0
		if len(m.callSites) > 0 {
			ctx = m.callSites[len(m.callSites)-1]
		}
		m.heap = append(m.heap, heapObj{start: start, size: sz, site: st.AllocSite, ctx: ctx})
		val = uint64(start)
	}
	// write destination
	dst := st.Dst.Sym
	if dst.InMemory() {
		m.recordDirectRef(dst, true)
		return m.storeMemRaw(m.symAddr(fr, dst), val)
	}
	fr.regs[dst.ID] = val
	return nil
}

func (m *machine) execCall(fr *frame, st *ir.Call) error {
	if st.Fn == "arg" {
		i, err := m.eval(fr, st.Args[0])
		if err != nil {
			return err
		}
		var v int64
		if idx := int(int64(i)); idx >= 0 && idx < len(m.opts.Args) {
			v = m.opts.Args[idx]
		}
		if st.Dst != nil {
			fr.regs[st.Dst.Sym.ID] = uint64(v)
		}
		return nil
	}
	callee, ok := m.prog.FuncMap[st.Fn]
	if !ok {
		return runtimeErr("call to unknown function %q", st.Fn)
	}
	args := make([]uint64, len(st.Args))
	for i, a := range st.Args {
		v, err := m.eval(fr, a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	if m.prof != nil && m.opts.CollectAlias && st.Site != 0 {
		m.prof.AddExec(st.Site)
	}
	m.callSites = append(m.callSites, st.Site)
	defer func() { m.callSites = m.callSites[:len(m.callSites)-1] }()
	ret, err := m.callFn(callee, args)
	if err != nil {
		return err
	}
	if st.Dst != nil {
		fr.regs[st.Dst.Sym.ID] = ret
	}
	return nil
}

// loadMem reads a slot, performing profiling bookkeeping. site is the
// indirect-reference site id (0 for direct loads, which record through
// recordDirectRef instead).
func (m *machine) loadMem(addr int, site int) (uint64, error) {
	if addr < 0 || addr >= len(m.mem) {
		return 0, runtimeErr("load from invalid address %d", addr)
	}
	m.loads++
	if m.opts.Reuse != nil {
		m.opts.Reuse.access(site, addr, m.mem[addr], false, m.curFrameID())
	}
	if m.opts.MemTrace != nil {
		m.opts.MemTrace.append(MemEvent{Site: site, Addr: addr, Val: m.mem[addr], Invocation: m.curFrameID()})
	}
	if m.prof != nil && m.opts.CollectAlias {
		// every execution counts toward the site total, even one whose
		// address resolves to no nameable LOC — that keeps each LOC's
		// count/total alias probability at most 1
		if site != 0 {
			m.prof.AddExec(site)
		}
		loc, ok := m.locate(addr)
		if ok {
			if site != 0 {
				m.prof.LoadSet(site).Add(loc)
			}
			for _, cs := range m.callSites {
				m.prof.RefSet(cs).Add(loc)
			}
		}
	}
	return m.mem[addr], nil
}

// storeMem writes a slot through an indirect store site.
func (m *machine) storeMem(addr int, val uint64, site int) error {
	if addr < 0 || addr >= len(m.mem) {
		return runtimeErr("store to invalid address %d", addr)
	}
	m.stores++
	if m.opts.Reuse != nil {
		m.opts.Reuse.access(site, addr, val, true, m.curFrameID())
	}
	if m.opts.MemTrace != nil {
		m.opts.MemTrace.append(MemEvent{Site: site, Addr: addr, Val: val, Invocation: m.curFrameID(), Store: true})
	}
	if m.prof != nil && m.opts.CollectAlias {
		if site != 0 {
			m.prof.AddExec(site)
		}
		loc, ok := m.locate(addr)
		if ok {
			if site != 0 {
				m.prof.StoreSet(site).Add(loc)
			}
			for _, cs := range m.callSites {
				m.prof.ModSet(cs).Add(loc)
			}
		}
	}
	m.mem[addr] = val
	return nil
}

// storeMemRaw writes a slot for a direct store (no site attribution; the
// mod set attribution happens in recordDirectRef).
func (m *machine) storeMemRaw(addr int, val uint64) error {
	if addr < 0 || addr >= len(m.mem) {
		return runtimeErr("store to invalid address %d", addr)
	}
	m.stores++
	if m.opts.Reuse != nil {
		m.opts.Reuse.access(0, addr, val, true, m.curFrameID())
	}
	if m.opts.MemTrace != nil {
		m.opts.MemTrace.append(MemEvent{Addr: addr, Val: val, Invocation: m.curFrameID(), Store: true})
	}
	m.mem[addr] = val
	return nil
}

// curFrameID returns the activation id of the innermost frame.
func (m *machine) curFrameID() int64 {
	if len(m.frames) == 0 {
		return 0
	}
	return m.frames[len(m.frames)-1].id
}

// recordDirectRef attributes a direct (named-variable) memory access to
// the enclosing call sites' mod/ref sets.
func (m *machine) recordDirectRef(s *ir.Sym, isMod bool) {
	if m.prof == nil || !m.opts.CollectAlias || len(m.callSites) == 0 {
		return
	}
	var loc profile.Loc
	if s.Kind == ir.SymGlobal {
		loc = profile.Loc{Kind: profile.LocGlobal, Sym: s}
	} else {
		fr := m.frames[len(m.frames)-1]
		loc = profile.Loc{Kind: profile.LocLocal, Sym: s, Fn: fr.fn}
	}
	if isMod {
		for _, cs := range m.callSites {
			m.prof.ModSet(cs).Add(loc)
		}
	} else {
		for _, cs := range m.callSites {
			m.prof.RefSet(cs).Add(loc)
		}
	}
	if m.opts.Reuse != nil && len(m.frames) > 0 {
		// direct refs participate in reuse tracking via loadMem/storeMem
	}
}

// locate resolves a slot address to its abstract memory location.
func (m *machine) locate(addr int) (profile.Loc, bool) {
	switch {
	case addr < m.prog.GlobSize:
		i := sort.Search(len(m.globals), func(i int) bool {
			return m.globals[i].Addr > addr
		}) - 1
		if i < 0 {
			return profile.Loc{}, false
		}
		g := m.globals[i]
		if addr < g.Addr+g.Type.Size() {
			return profile.Loc{Kind: profile.LocGlobal, Sym: g}, true
		}
		return profile.Loc{}, false
	case addr < m.heapBase:
		// stack: scan active frames (innermost first)
		for i := len(m.frames) - 1; i >= 0; i-- {
			fr := m.frames[i]
			if addr >= fr.base && addr < fr.base+fr.fn.FrameSize {
				off := addr - fr.base
				for _, s := range fr.fn.Syms {
					if s.Kind != ir.SymVirtual && s.Kind != ir.SymGlobal && s.InMemory() {
						if off >= s.Addr && off < s.Addr+s.Type.Size() {
							return profile.Loc{Kind: profile.LocLocal, Sym: s, Fn: fr.fn}, true
						}
					}
				}
				return profile.Loc{}, false
			}
		}
		return profile.Loc{}, false
	default:
		i := sort.Search(len(m.heap), func(i int) bool {
			return m.heap[i].start > addr
		}) - 1
		if i < 0 {
			return profile.Loc{}, false
		}
		h := m.heap[i]
		if addr < h.start+h.size {
			return profile.Loc{Kind: profile.LocHeap, Site: h.site, Ctx: h.ctx}, true
		}
		return profile.Loc{}, false
	}
}

func evalUnary(op ir.Op, a uint64, t *ir.Type) (uint64, error) {
	switch op {
	case ir.OpNeg:
		if t.IsFloat() {
			return math.Float64bits(-math.Float64frombits(a)), nil
		}
		return uint64(-int64(a)), nil
	case ir.OpNot:
		if int64(a) == 0 {
			return 1, nil
		}
		return 0, nil
	case ir.OpIntToFloat:
		return math.Float64bits(float64(int64(a))), nil
	case ir.OpFloatToInt:
		return uint64(int64(math.Float64frombits(a))), nil
	}
	return 0, runtimeErr("unknown unary op %v", op)
}

func evalBinary(op ir.Op, a, b uint64, ta, tb *ir.Type) (uint64, error) {
	isFloat := ta.IsFloat() || tb.IsFloat()
	boolToU := func(x bool) uint64 {
		if x {
			return 1
		}
		return 0
	}
	if isFloat {
		fa, fb := math.Float64frombits(a), math.Float64frombits(b)
		switch op {
		case ir.OpAdd:
			return math.Float64bits(fa + fb), nil
		case ir.OpSub:
			return math.Float64bits(fa - fb), nil
		case ir.OpMul:
			return math.Float64bits(fa * fb), nil
		case ir.OpDiv:
			return math.Float64bits(fa / fb), nil
		case ir.OpEq:
			return boolToU(fa == fb), nil
		case ir.OpNe:
			return boolToU(fa != fb), nil
		case ir.OpLt:
			return boolToU(fa < fb), nil
		case ir.OpLe:
			return boolToU(fa <= fb), nil
		case ir.OpGt:
			return boolToU(fa > fb), nil
		case ir.OpGe:
			return boolToU(fa >= fb), nil
		}
		return 0, runtimeErr("op %v not defined on float", op)
	}
	ia, ib := int64(a), int64(b)
	switch op {
	case ir.OpAdd:
		return uint64(ia + ib), nil
	case ir.OpSub:
		return uint64(ia - ib), nil
	case ir.OpMul:
		return uint64(ia * ib), nil
	case ir.OpDiv:
		if ib == 0 {
			return 0, runtimeErr("integer division by zero")
		}
		return uint64(ia / ib), nil
	case ir.OpMod:
		if ib == 0 {
			return 0, runtimeErr("integer modulo by zero")
		}
		return uint64(ia % ib), nil
	case ir.OpEq:
		return boolToU(ia == ib), nil
	case ir.OpNe:
		return boolToU(ia != ib), nil
	case ir.OpLt:
		return boolToU(ia < ib), nil
	case ir.OpLe:
		return boolToU(ia <= ib), nil
	case ir.OpGt:
		return boolToU(ia > ib), nil
	case ir.OpGe:
		return boolToU(ia >= ib), nil
	case ir.OpAnd:
		return uint64(ia & ib), nil
	case ir.OpOr:
		return uint64(ia | ib), nil
	case ir.OpXor:
		return uint64(ia ^ ib), nil
	case ir.OpShl:
		return uint64(ia << (uint64(ib) & 63)), nil
	case ir.OpShr:
		return uint64(ia >> (uint64(ib) & 63)), nil
	}
	return 0, runtimeErr("unknown binary op %v", op)
}
