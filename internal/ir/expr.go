package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Op enumerates the first-order operations of the flattened IR.
type Op int

const (
	OpNone Op = iota
	// arithmetic (operand type decides int vs float semantics)
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	// comparisons; result is int 0/1
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// bitwise / logical on ints
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNot
	// conversions
	OpIntToFloat
	OpFloatToInt
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpNeg: "neg", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAnd: "&", OpOr: "|", OpXor: "^",
	OpShl: "<<", OpShr: ">>", OpNot: "!",
	OpIntToFloat: "(double)", OpFloatToInt: "(int)",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsCommutative reports whether the binary op commutes; PRE canonicalizes
// commutative operands so that a+b and b+a share one expression class.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpEq, OpNe, OpAnd, OpOr, OpXor:
		return true
	}
	return false
}

// IsComparison reports whether the op yields a 0/1 int truth value.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// Operand is a leaf of the flattened IR: a constant, a versioned variable
// reference, or the address of a memory-resident symbol.
type Operand interface {
	operand()
	Type() *Type
	String() string
}

// ConstInt is an integer literal operand.
type ConstInt struct{ Val int64 }

func (*ConstInt) operand()         {}
func (*ConstInt) Type() *Type      { return IntType }
func (c *ConstInt) String() string { return strconv.FormatInt(c.Val, 10) }

// ConstFloat is a floating-point literal operand.
type ConstFloat struct{ Val float64 }

func (*ConstFloat) operand()         {}
func (*ConstFloat) Type() *Type      { return FloatType }
func (c *ConstFloat) String() string { return strconv.FormatFloat(c.Val, 'g', -1, 64) }

// Constant interning: small integer literals (loop bounds, array
// strides, masks) dominate constant operands, so IntConst hands out
// shared pointers from a fixed pool instead of allocating. Interned
// constants are immutable by contract — no pass writes ConstInt.Val or
// ConstFloat.Val — and Clone still deep-copies constants (collapsing
// each distinct interned pointer to one fresh object per clone), so a
// caller mutating a clone's constant, as the detachment tests do, never
// reaches the pool.
const internMin, internMax = -128, 128

var (
	internInts   [internMax - internMin + 1]ConstInt
	internFloat0 = ConstFloat{Val: 0}
	internFloat1 = ConstFloat{Val: 1}
)

func init() {
	for i := range internInts {
		internInts[i].Val = int64(i + internMin)
	}
}

// IntConst returns an integer literal operand, interned for small values.
func IntConst(v int64) *ConstInt {
	if v >= internMin && v <= internMax {
		return &internInts[v-internMin]
	}
	return &ConstInt{Val: v}
}

// FloatConst returns a float literal operand, interned for +0 and 1
// (bit-exact comparisons, so -0.0 keeps its own identity and rendering).
func FloatConst(v float64) *ConstFloat {
	switch math.Float64bits(v) {
	case 0:
		return &internFloat0
	case math.Float64bits(1):
		return &internFloat1
	}
	return &ConstFloat{Val: v}
}

// Ref is a use or def of a symbol at a particular SSA version. Before SSA
// construction Ver is 0. Refs are aliased freely inside statements; the
// renamer mutates Ver in place.
type Ref struct {
	Sym *Sym
	Ver int

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

func (*Ref) operand()      {}
func (r *Ref) Type() *Type { return r.Sym.Type }
func (r *Ref) String() string {
	if r.Ver == 0 {
		return r.Sym.Name
	}
	return fmt.Sprintf("%s_%d", r.Sym.Name, r.Ver)
}

// AddrOf is the address of a memory-resident symbol (global, aggregate, or
// address-taken local); its value is a pointer.
type AddrOf struct {
	Sym *Sym

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

func (*AddrOf) operand()         {}
func (a *AddrOf) Type() *Type    { return PtrTo(a.Sym.Type) }
func (a *AddrOf) String() string { return "&" + a.Sym.Name }

// SameOperand reports whether two operands are the same leaf, including SSA
// versions. Used by PRE to compare expression occurrences.
func SameOperand(a, b Operand) bool {
	switch x := a.(type) {
	case *ConstInt:
		y, ok := b.(*ConstInt)
		return ok && x.Val == y.Val
	case *ConstFloat:
		y, ok := b.(*ConstFloat)
		return ok && x.Val == y.Val
	case *Ref:
		y, ok := b.(*Ref)
		return ok && x.Sym == y.Sym && x.Ver == y.Ver
	case *AddrOf:
		y, ok := b.(*AddrOf)
		return ok && x.Sym == y.Sym
	}
	return false
}

// SameLeafIgnoringVersion reports whether two operands denote the same
// syntactic leaf regardless of SSA version (same variable, same constant).
// This implements the "identical address expression / same variable" tests
// of the paper's heuristic rules (§3.2.2).
func SameLeafIgnoringVersion(a, b Operand) bool {
	switch x := a.(type) {
	case *ConstInt:
		y, ok := b.(*ConstInt)
		return ok && x.Val == y.Val
	case *ConstFloat:
		y, ok := b.(*ConstFloat)
		return ok && x.Val == y.Val
	case *Ref:
		y, ok := b.(*Ref)
		return ok && x.Sym == y.Sym
	case *AddrOf:
		y, ok := b.(*AddrOf)
		return ok && x.Sym == y.Sym
	}
	return false
}
