// Package ir defines the mid-level intermediate representation used by the
// speculative optimization framework: a control-flow graph of basic blocks
// holding flattened (three-address) statements over typed symbols, together
// with the HSSA annotations (phi, chi, mu) that the speculative SSA form of
// Lin et al. (PLDI 2003) attaches to it.
//
// The IR deliberately mirrors the shape of ORC's WHIRL at the level the
// paper operates on: scalar variables (real and virtual), indirect loads and
// stores with may-def (chi) and may-use (mu) lists, and expression trees
// that have been flattened so that every operation is first-order (operands
// are constants or scalar variables). Flattening makes SSAPRE's
// one-expression-at-a-time processing direct.
package ir

import (
	"fmt"
	"strings"
)

// Kind enumerates the type constructors of the MiniC type system.
type Kind int

const (
	// KVoid is the type of functions that return nothing.
	KVoid Kind = iota
	// KInt is a 64-bit signed integer occupying one memory slot.
	KInt
	// KFloat is a 64-bit IEEE float occupying one memory slot.
	KFloat
	// KPtr is a pointer (one slot holding a slot address).
	KPtr
	// KArray is a fixed-length array of Elem.
	KArray
	// KStruct is a record with named fields.
	KStruct
)

// Type describes a MiniC value or object type. Types are interned by the
// front end; pointer equality is not meaningful but Equal is.
type Type struct {
	Kind   Kind
	Elem   *Type   // element type for KPtr and KArray
	Len    int     // element count for KArray
	Fields []Field // for KStruct
	Name   string  // struct tag, if any
}

// Field is a named member of a struct type.
type Field struct {
	Name string
	Type *Type
	Off  int // slot offset from the start of the struct
}

// Predefined scalar types shared across the compiler.
var (
	VoidType  = &Type{Kind: KVoid}
	IntType   = &Type{Kind: KInt}
	FloatType = &Type{Kind: KFloat}
)

// PtrTo returns a pointer type to elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: KPtr, Elem: elem} }

// ArrayOf returns an array type of n elems.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: KArray, Elem: elem, Len: n} }

// Size returns the size of the type in 8-byte slots.
func (t *Type) Size() int {
	switch t.Kind {
	case KVoid:
		return 0
	case KInt, KFloat, KPtr:
		return 1
	case KArray:
		return t.Len * t.Elem.Size()
	case KStruct:
		n := 0
		for _, f := range t.Fields {
			n += f.Type.Size()
		}
		return n
	}
	panic(fmt.Sprintf("ir: Size of unknown kind %d", t.Kind))
}

// IsScalar reports whether the type fits in a single register slot.
func (t *Type) IsScalar() bool {
	return t.Kind == KInt || t.Kind == KFloat || t.Kind == KPtr
}

// IsFloat reports whether the type is the floating-point scalar type.
func (t *Type) IsFloat() bool { return t.Kind == KFloat }

// FieldByName returns the struct field with the given name.
func (t *Type) FieldByName(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KVoid, KInt, KFloat:
		return true
	case KPtr:
		return t.Elem.Equal(u.Elem)
	case KArray:
		return t.Len == u.Len && t.Elem.Equal(u.Elem)
	case KStruct:
		if t.Name != "" || u.Name != "" {
			return t.Name == u.Name
		}
		if len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != u.Fields[i].Name || !t.Fields[i].Type.Equal(u.Fields[i].Type) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the type in MiniC syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KVoid:
		return "void"
	case KInt:
		return "int"
	case KFloat:
		return "double"
	case KPtr:
		return t.Elem.String() + "*"
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case KStruct:
		if t.Name != "" {
			return "struct " + t.Name
		}
		var b strings.Builder
		b.WriteString("struct {")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s %s", f.Type, f.Name)
		}
		b.WriteString("}")
		return b.String()
	}
	return fmt.Sprintf("<kind %d>", t.Kind)
}
