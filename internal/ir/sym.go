package ir

import "fmt"

// SymKind classifies symbols by storage and origin.
type SymKind int

const (
	// SymGlobal is a file-scope variable; always memory-resident.
	SymGlobal SymKind = iota
	// SymLocal is a function-scope variable.
	SymLocal
	// SymParam is a function parameter.
	SymParam
	// SymTemp is a compiler-generated temporary; always register-resident.
	SymTemp
	// SymVirtual is an HSSA virtual variable standing for the contents of
	// one alias equivalence class of indirect memory references. Virtual
	// variables never exist at run time; they carry SSA versions only.
	SymVirtual
)

func (k SymKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymLocal:
		return "local"
	case SymParam:
		return "param"
	case SymTemp:
		return "temp"
	case SymVirtual:
		return "virtual"
	}
	return fmt.Sprintf("symkind(%d)", int(k))
}

// Sym is a program variable: a real variable from the source program, a
// compiler temporary, or an HSSA virtual variable. Symbols are unique per
// function (globals are shared across the program and attached to it).
type Sym struct {
	Name string
	Type *Type
	Kind SymKind
	ID   int // dense id, unique within the owning Func (globals: within Program)

	// AddrTaken records whether &sym occurs anywhere; address-taken
	// variables and aggregates are memory-resident.
	AddrTaken bool

	// Class is the alias equivalence class this symbol's storage belongs
	// to, assigned by the alias analysis; -1 when the symbol cannot be
	// accessed through a pointer (register-resident scalars).
	Class int

	// Addr is the assigned memory address: for globals an absolute slot
	// address in the global segment; for memory-resident locals/params a
	// frame offset. Only meaningful when InMemory() is true.
	Addr int

	// NVers is a version allocator for optimizer-created temporaries
	// (versions are 1..NVers; version 0 is "entry/unknown"). The SSA
	// renamer itself numbers versions per function and does not touch it:
	// globals and virtual variables are shared by every function, so a
	// counter here would race under the parallel pipeline.
	NVers int

	// aidx is the symbol's slab index (+1) in the owning Func's arena;
	// 0 for globals, virtuals, and literal-built symbols (see arena.go).
	aidx int32
}

// InMemory reports whether the symbol's storage is in addressable memory
// (so reads of it are load instructions and writes are stores). Globals,
// aggregates and address-taken scalars are memory-resident; everything else
// lives in virtual registers.
func (s *Sym) InMemory() bool {
	if s.Kind == SymVirtual {
		return false // virtual variables are analysis-only
	}
	if s.Kind == SymGlobal {
		return true
	}
	if !s.Type.IsScalar() {
		return true
	}
	return s.AddrTaken
}

func (s *Sym) String() string {
	if s == nil {
		return "<nilsym>"
	}
	return s.Name
}
