package ir

import (
	"fmt"
	"strings"
)

// Mu is an HSSA may-use: the statement (an indirect load or a call) may
// read the current version of Sym. Spec marks it as a speculative use (the
// paper's μs): the reference is highly likely to happen at run time.
type Mu struct {
	Sym  *Sym
	Ver  int
	Spec bool

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

func (m *Mu) String() string {
	tag := "mu"
	if m.Spec {
		tag = "mu_s"
	}
	return fmt.Sprintf("%s(%s_%d)", tag, m.Sym.Name, m.Ver)
}

// Chi is an HSSA may-def: the statement (an indirect store, aliasing direct
// store, or call) may overwrite Sym, producing a new version from the old
// one. Spec marks it as a speculative update (the paper's χs): the update
// is highly likely and must not be ignored. A Chi without the flag is a
// *speculative weak update* that speculative phases may skip, at the price
// of a run-time check.
type Chi struct {
	Sym    *Sym
	NewVer int
	OldVer int
	Spec   bool

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

func (c *Chi) String() string {
	tag := "chi"
	if c.Spec {
		tag = "chi_s"
	}
	return fmt.Sprintf("%s_%d = %s(%s_%d)", c.Sym.Name, c.NewVer, tag, c.Sym.Name, c.OldVer)
}

// SpecFlags carries the data-speculation annotations that the speculative
// SSAPRE CodeMotion step (paper Appendix B) attaches to statements, and
// that code generation turns into IA-64-style instructions.
type SpecFlags struct {
	// AdvLoad: this load's result must be entered in the ALAT (emit ld.a
	// instead of ld).
	AdvLoad bool
	// CheckLoad: this load is a check of an earlier advanced load (emit
	// ld.c: reuse the register value if the ALAT entry survives, reload
	// otherwise).
	CheckLoad bool
	// SpecLoad: this load was hoisted above a branch by control
	// speculation (emit ld.s; faults are deferred to the chk.s).
	SpecLoad bool
}

func (f SpecFlags) String() string {
	var tags []string
	if f.AdvLoad {
		tags = append(tags, "ld.a")
	}
	if f.CheckLoad {
		tags = append(tags, "ld.c")
	}
	if f.SpecLoad {
		tags = append(tags, "ld.s")
	}
	if len(tags) == 0 {
		return ""
	}
	return " <" + strings.Join(tags, ",") + ">"
}

// Stmt is a statement of the flattened IR. Implementations: *Assign,
// *IStore, *Call, *Print.
type Stmt interface {
	stmt()
	String() string
}

// RHSKind classifies the right-hand side of an Assign.
type RHSKind int

const (
	// RHSCopy: Dst = Src (Src is A).
	RHSCopy RHSKind = iota
	// RHSUnary: Dst = op A.
	RHSUnary
	// RHSBinary: Dst = A op B.
	RHSBinary
	// RHSLoad: Dst = *A (indirect load through pointer operand A).
	RHSLoad
	// RHSAlloc: Dst = alloc(A) — heap allocation of A slots.
	RHSAlloc
)

// Assign is the workhorse statement: Dst := <rhs>. Dst is a versioned
// definition of a symbol. If Dst.Sym is memory-resident the assignment is a
// direct store and may carry a Chi list for aliased virtual variables; if
// the RHS is a load (direct read of a memory-resident scalar appears as
// RHSCopy with a Ref to that scalar; indirect load as RHSLoad) the
// statement may carry a Mu list.
type Assign struct {
	Dst *Ref
	RK  RHSKind
	Op  Op      // for RHSUnary / RHSBinary
	A   Operand // first operand (address for RHSLoad, size for RHSAlloc)
	B   Operand // second operand for RHSBinary

	Mus  []*Mu  // may-uses (indirect loads; direct loads of aliased scalars)
	Chis []*Chi // may-defs (direct stores to aliased memory scalars)

	// VV is the virtual-variable occurrence for an RHSLoad: the version of
	// the alias class's virtual variable current at this load. It names
	// the value of the indirect memory location for SSAPRE.
	VV *Ref

	// AllocSite is the allocation-site id for RHSAlloc (used as the heap
	// LOC name in alias profiles).
	AllocSite int

	// Site is the program-unique reference-site id for an RHSLoad,
	// keying its entry in alias profiles.
	Site int

	Spec SpecFlags

	// LoadsFrom records, for a direct read (RHSCopy from a
	// memory-resident scalar) or RHSLoad, the declared element type, so
	// codegen can pick int vs float load latency.
	LoadsFrom *Type

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

func (*Assign) stmt() {}

func (a *Assign) String() string {
	var rhs string
	switch a.RK {
	case RHSCopy:
		rhs = a.A.String()
	case RHSUnary:
		rhs = fmt.Sprintf("%s %s", a.Op, a.A)
	case RHSBinary:
		rhs = fmt.Sprintf("%s %s %s", a.A, a.Op, a.B)
	case RHSLoad:
		rhs = fmt.Sprintf("*%s", a.A)
		if a.VV != nil {
			rhs += fmt.Sprintf(" [%s]", a.VV)
		}
	case RHSAlloc:
		rhs = fmt.Sprintf("alloc(%s)", a.A)
	}
	s := fmt.Sprintf("%s = %s%s", a.Dst, rhs, a.Spec)
	s += annotations(a.Mus, a.Chis)
	return s
}

// IStore is an indirect store *Addr := Val. It may-defs every member of the
// pointed-to alias class (the Chi list) and defines a new version of the
// class's virtual variable (VV).
type IStore struct {
	Addr  Operand
	Val   Operand
	VV    *Ref // new version of the virtual variable defined by this store
	VVOld int  // previous version of the virtual variable
	Chis  []*Chi
	// StoresTo is the declared element type of the store target.
	StoresTo *Type
	// Site is the program-unique reference-site id, keying alias profiles.
	Site int

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

func (*IStore) stmt() {}

func (s *IStore) String() string {
	str := fmt.Sprintf("*%s = %s", s.Addr, s.Val)
	if s.VV != nil {
		str += fmt.Sprintf(" [%s]", s.VV)
	}
	str += annotations(nil, s.Chis)
	return str
}

// Call invokes a function. Mus/Chis carry the callee's ref/mod side effects
// on memory (per the paper §3.2: for calls, the mu and chi lists represent
// the ref and mod information of the call).
type Call struct {
	Fn   string
	Args []Operand
	Dst  *Ref // nil for void calls
	Mus  []*Mu
	Chis []*Chi
	Site int // call-site id, unique within the program

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

func (*Call) stmt() {}

func (c *Call) String() string {
	var args []string
	for _, a := range c.Args {
		args = append(args, a.String())
	}
	call := fmt.Sprintf("%s(%s)", c.Fn, strings.Join(args, ", "))
	var s string
	if c.Dst != nil {
		s = fmt.Sprintf("%s = %s", c.Dst, call)
	} else {
		s = call
	}
	s += annotations(c.Mus, c.Chis)
	return s
}

// Print emits its operands to the program's observable output stream. It is
// the IR's only output primitive and anchors the end-to-end correctness
// tests (interpreter output must equal VM output).
type Print struct {
	Args []Operand

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

func (*Print) stmt() {}

func (p *Print) String() string {
	var args []string
	for _, a := range p.Args {
		args = append(args, a.String())
	}
	return "print(" + strings.Join(args, ", ") + ")"
}

func annotations(mus []*Mu, chis []*Chi) string {
	if len(mus) == 0 && len(chis) == 0 {
		return ""
	}
	var parts []string
	for _, m := range mus {
		parts = append(parts, m.String())
	}
	for _, c := range chis {
		parts = append(parts, c.String())
	}
	return "   ;; " + strings.Join(parts, ", ")
}

// EachUse calls f on every operand read by the statement (not including
// mu lists). Unlike Uses it does not allocate, so hot analysis loops
// should prefer it.
func EachUse(s Stmt, f func(Operand)) {
	switch st := s.(type) {
	case *Assign:
		switch st.RK {
		case RHSCopy, RHSUnary, RHSLoad, RHSAlloc:
			f(st.A)
		case RHSBinary:
			f(st.A)
			f(st.B)
		}
	case *IStore:
		f(st.Addr)
		f(st.Val)
	case *Call:
		for _, a := range st.Args {
			f(a)
		}
	case *Print:
		for _, a := range st.Args {
			f(a)
		}
	}
}

// Uses returns every operand read by the statement (not including mu lists).
func Uses(s Stmt) []Operand {
	switch st := s.(type) {
	case *Assign:
		switch st.RK {
		case RHSCopy, RHSUnary, RHSLoad, RHSAlloc:
			return []Operand{st.A}
		case RHSBinary:
			return []Operand{st.A, st.B}
		}
	case *IStore:
		return []Operand{st.Addr, st.Val}
	case *Call:
		return append([]Operand(nil), st.Args...)
	case *Print:
		return append([]Operand(nil), st.Args...)
	}
	return nil
}
