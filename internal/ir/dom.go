package ir

// DomTree holds the dominator tree and dominance frontiers of a function's
// CFG, computed with the Cooper-Harvey-Kennedy iterative algorithm.
type DomTree struct {
	fn *Func
	// Idom maps a block to its immediate dominator (nil for entry).
	Idom map[*Block]*Block
	// Children maps a block to the blocks it immediately dominates.
	Children map[*Block][]*Block
	// Frontier maps a block to its dominance frontier.
	Frontier map[*Block][]*Block
	// rpoNum is the reverse-post-order number of each block.
	rpoNum map[*Block]int
	order  []*Block

	// generation-marked scratch for IteratedFrontier: phi insertion calls
	// it once per variable, so per-call map allocation dominates SSA
	// construction without this. (DomTree is per-function and the compile
	// pipeline never shares one across goroutines.)
	ifGen  int
	ifIn   []int
	ifOut  []int
	ifWork []*Block
}

// BuildDomTree computes dominators and dominance frontiers for f.
func BuildDomTree(f *Func) *DomTree {
	order := f.RPO()
	num := make(map[*Block]int, len(order))
	for i, b := range order {
		num[b] = i
	}
	idom := make(map[*Block]*Block, len(order))
	idom[f.Entry] = f.Entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == f.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[f.Entry] = nil

	children := make(map[*Block][]*Block)
	for _, b := range order {
		if d := idom[b]; d != nil {
			children[d] = append(children[d], b)
		}
	}

	frontier := make(map[*Block][]*Block)
	for _, b := range order {
		// b ∈ DF(a) iff a dominates a predecessor of b but does not
		// strictly dominate b. Walking from every predecessor also covers
		// back edges into the entry (idom nil), where the walk terminates
		// at the tree root.
		for _, p := range b.Preds {
			if _, ok := num[p]; !ok {
				continue
			}
			runner := p
			for runner != nil && runner != idom[b] {
				frontier[runner] = appendUnique(frontier[runner], b)
				runner = idom[runner]
			}
		}
	}

	return &DomTree{fn: f, Idom: idom, Children: children, Frontier: frontier, rpoNum: num, order: order}
}

func appendUnique(s []*Block, b *Block) []*Block {
	for _, x := range s {
		if x == b {
			return s
		}
	}
	return append(s, b)
}

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = d.Idom[b]
	}
	return false
}

// Order returns the blocks in reverse post-order.
func (d *DomTree) Order() []*Block { return d.order }

// RPONum returns the reverse-post-order number of b.
func (d *DomTree) RPONum(b *Block) int { return d.rpoNum[b] }

// IteratedFrontier computes DF+ of a set of blocks: the smallest set S
// containing DF(in) and closed under DF. Phi placement inserts at DF+ of
// the definition sites.
func (d *DomTree) IteratedFrontier(in []*Block) []*Block {
	if n := len(d.order); len(d.ifIn) < n {
		d.ifIn = make([]int, n)
		d.ifOut = make([]int, n)
	}
	d.ifGen++
	gen := d.ifGen
	work := d.ifWork[:0]
	for _, b := range in {
		if i, ok := d.rpoNum[b]; ok {
			if d.ifIn[i] != gen {
				d.ifIn[i] = gen
				work = append(work, b)
			}
		} else {
			// unreachable def site: its frontier is empty, and it can never
			// reappear as a frontier member, so no mark is needed
			work = append(work, b)
		}
	}
	var res []*Block // fresh per call: callers may hold results across calls
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, fb := range d.Frontier[b] {
			i := d.rpoNum[fb]
			if d.ifOut[i] != gen {
				d.ifOut[i] = gen
				res = append(res, fb)
				if d.ifIn[i] != gen {
					d.ifIn[i] = gen
					work = append(work, fb)
				}
			}
		}
	}
	d.ifWork = work[:0]
	return res
}

// PreorderWalk visits the dominator tree in preorder, calling enter before
// descending into a node's children and leave after.
func (d *DomTree) PreorderWalk(enter, leave func(b *Block)) {
	var walk func(b *Block)
	walk = func(b *Block) {
		enter(b)
		for _, c := range d.Children[b] {
			walk(c)
		}
		if leave != nil {
			leave(b)
		}
	}
	if d.fn.Entry != nil {
		walk(d.fn.Entry)
	}
}

// Loop describes a natural loop discovered from back edges.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	Depth  int
	Parent *Loop
}

// FindLoops identifies natural loops (back edge t->h where h dominates t)
// and computes nesting depths. Returns loops and a map from block to its
// innermost loop.
func FindLoops(f *Func, dt *DomTree) ([]*Loop, map[*Block]*Loop) {
	loopsByHeader := map[*Block]*Loop{}
	var loops []*Loop
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if dt.Dominates(s, b) {
				// back edge b -> s
				l := loopsByHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					loopsByHeader[s] = l
					loops = append(loops, l)
				}
				// walk backwards from b collecting the loop body
				var stack []*Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range x.Preds {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	// Nesting: loop A is inside loop B if A.Header ∈ B.Blocks and A != B.
	innermost := map[*Block]*Loop{}
	for _, l := range loops {
		for _, m := range loops {
			if l != m && m.Blocks[l.Header] && len(m.Blocks) > len(l.Blocks) {
				if l.Parent == nil || len(m.Blocks) < len(l.Parent.Blocks) {
					l.Parent = m
				}
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	for _, l := range loops {
		for b := range l.Blocks {
			if cur := innermost[b]; cur == nil || len(l.Blocks) < len(cur.Blocks) {
				innermost[b] = l
			}
		}
	}
	return loops, innermost
}
