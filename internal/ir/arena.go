package ir

// This file implements slab (arena) allocation for IR objects. Every
// Func carries an arena; the factory methods on Func (NewSym, NewBlock,
// NewRef, NewAssign, ...) place objects in chunked slabs instead of
// individual heap allocations, and each arena-resident object records
// its slab index in an unexported aidx field (stored as index+1 so the
// zero value means "not arena-allocated" — objects built as plain
// literals keep working and Clone falls back to per-object maps for
// them).
//
// The payoff is twofold. Construction of a function costs one heap
// allocation per slabChunk objects per kind instead of one per object —
// the compile path's dominant allocation tax. And Clone becomes a bulk
// operation: copy each slab's chunks wholesale, then remap pointer
// fields by slab index — identical indices in the copied slabs — rather
// than walking the object graph through six hash maps. Identity
// structure is preserved for free: two statements sharing one *Ref in
// the original share the copied *Ref at the same index in the clone.
//
// Concurrency: arenas are per-Func and unsynchronized. Every parallel
// phase of the pipeline (refinement, annotation, SSAPRE, codegen)
// partitions work by function, so a function's arena is only ever
// touched by one goroutine at a time — the same contract its Syms and
// Blocks slices already rely on. Program-level objects (globals) are
// not arena-backed: they are few, created by the serial frontend, and
// shared across functions.

// slabChunk is the number of objects per slab chunk. Chunks are
// allocated with exactly this capacity and never reallocated, so
// pointers into a chunk stay valid as the slab grows.
const slabChunk = 128

// slab is a chunked append-only allocator for one object kind.
type slab[T any] struct {
	chunks [][]T
	n      int32
}

// alloc places v in the slab and returns its address and index.
func (s *slab[T]) alloc(v T) (*T, int32) {
	ci := int(s.n) / slabChunk
	if ci == len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, 0, slabChunk))
	}
	c := append(s.chunks[ci], v)
	s.chunks[ci] = c
	s.n++
	return &c[len(c)-1], s.n - 1
}

// at returns the object at index i.
func (s *slab[T]) at(i int32) *T {
	return &s.chunks[int(i)/slabChunk][int(i)%slabChunk]
}

// copyFrom replaces s's contents with a deep copy of o's chunks
// (fresh backing arrays, same indices).
func (s *slab[T]) copyFrom(o *slab[T]) {
	s.n = o.n
	s.chunks = make([][]T, len(o.chunks))
	for i, c := range o.chunks {
		nc := make([]T, len(c), slabChunk)
		copy(nc, c)
		s.chunks[i] = nc
	}
}

// arena is the per-Func slab set, one slab per arena-backed kind.
type arena struct {
	syms    slab[Sym]
	refs    slab[Ref]
	addrs   slab[AddrOf]
	mus     slab[Mu]
	chis    slab[Chi]
	assigns slab[Assign]
	istores slab[IStore]
	calls   slab[Call]
	prints  slab[Print]
	phis    slab[Phi]
	blocks  slab[Block]
}

// arenaOf returns the function's arena, creating it on first use (a
// Func built as a bare literal in tests has none until a factory runs).
func (f *Func) arenaOf() *arena {
	if f.arena == nil {
		f.arena = &arena{}
	}
	return f.arena
}

// NewRef allocates a versioned reference to s in f's arena.
func (f *Func) NewRef(s *Sym, ver int) *Ref {
	r, i := f.arenaOf().refs.alloc(Ref{Sym: s, Ver: ver})
	r.aidx = i + 1
	return r
}

// NewAddrOf allocates an address-of operand in f's arena.
func (f *Func) NewAddrOf(s *Sym) *AddrOf {
	a, i := f.arenaOf().addrs.alloc(AddrOf{Sym: s})
	a.aidx = i + 1
	return a
}

// NewMu allocates a copy of m in f's arena.
func (f *Func) NewMu(m Mu) *Mu {
	n, i := f.arenaOf().mus.alloc(m)
	n.aidx = i + 1
	return n
}

// NewChi allocates a copy of ch in f's arena.
func (f *Func) NewChi(ch Chi) *Chi {
	n, i := f.arenaOf().chis.alloc(ch)
	n.aidx = i + 1
	return n
}

// NewAssign allocates a copy of a in f's arena.
func (f *Func) NewAssign(a Assign) *Assign {
	n, i := f.arenaOf().assigns.alloc(a)
	n.aidx = i + 1
	return n
}

// NewIStore allocates a copy of st in f's arena.
func (f *Func) NewIStore(st IStore) *IStore {
	n, i := f.arenaOf().istores.alloc(st)
	n.aidx = i + 1
	return n
}

// NewCall allocates a copy of c in f's arena.
func (f *Func) NewCall(c Call) *Call {
	n, i := f.arenaOf().calls.alloc(c)
	n.aidx = i + 1
	return n
}

// NewPrint allocates a copy of p in f's arena.
func (f *Func) NewPrint(p Print) *Print {
	n, i := f.arenaOf().prints.alloc(p)
	n.aidx = i + 1
	return n
}

// NewPhi allocates a copy of ph in f's arena.
func (f *Func) NewPhi(ph Phi) *Phi {
	n, i := f.arenaOf().phis.alloc(ph)
	n.aidx = i + 1
	return n
}
