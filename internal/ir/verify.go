package ir

import "fmt"

// Verify checks structural invariants of a function's CFG and statements.
// It returns the first violation found, or nil. It is used liberally in
// tests and after every transformation pass.
func Verify(f *Func) error {
	if f.Entry == nil {
		return fmt.Errorf("%s: no entry block", f.Name)
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	if !inFunc[f.Entry] {
		return fmt.Errorf("%s: entry block not in block list", f.Name)
	}
	for _, b := range f.Blocks {
		// terminator / successor agreement
		switch b.Term.Kind {
		case TermJump:
			if len(b.Succs) != 1 {
				return fmt.Errorf("%s B%d: jump with %d successors", f.Name, b.ID, len(b.Succs))
			}
		case TermCond:
			if len(b.Succs) != 2 {
				return fmt.Errorf("%s B%d: cond branch with %d successors", f.Name, b.ID, len(b.Succs))
			}
			if b.Term.Cond == nil {
				return fmt.Errorf("%s B%d: cond branch without condition", f.Name, b.ID)
			}
		case TermRet:
			if len(b.Succs) > 1 {
				return fmt.Errorf("%s B%d: return with %d successors", f.Name, b.ID, len(b.Succs))
			}
		}
		// edge symmetry
		for _, s := range b.Succs {
			if !inFunc[s] {
				return fmt.Errorf("%s B%d: successor B%d not in function", f.Name, b.ID, s.ID)
			}
			if s.PredIndex(b) < 0 {
				return fmt.Errorf("%s B%d: successor B%d lacks back pred edge", f.Name, b.ID, s.ID)
			}
		}
		for _, p := range b.Preds {
			if !inFunc[p] {
				return fmt.Errorf("%s B%d: pred B%d not in function", f.Name, b.ID, p.ID)
			}
			if p.SuccIndex(b) < 0 {
				return fmt.Errorf("%s B%d: pred B%d lacks forward succ edge", f.Name, b.ID, p.ID)
			}
		}
		// phi arity
		for _, phi := range b.Phis {
			if len(phi.Args) != len(b.Preds) {
				return fmt.Errorf("%s B%d: phi for %s has %d args, %d preds",
					f.Name, b.ID, phi.Sym.Name, len(phi.Args), len(b.Preds))
			}
		}
		// statement well-formedness
		for _, s := range b.Stmts {
			if err := verifyStmt(f, b, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func verifyStmt(f *Func, b *Block, s Stmt) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%s B%d [%s]: %s", f.Name, b.ID, s, fmt.Sprintf(format, args...))
	}
	switch st := s.(type) {
	case *Assign:
		if st.Dst == nil || st.Dst.Sym == nil {
			return bad("assign without destination")
		}
		if st.A == nil {
			return bad("assign without first operand")
		}
		if st.RK == RHSBinary && st.B == nil {
			return bad("binary assign without second operand")
		}
		if st.RK == RHSLoad {
			if st.A.Type().Kind != KPtr && st.A.Type().Kind != KInt {
				return bad("load address has non-pointer type %s", st.A.Type())
			}
		}
	case *IStore:
		if st.Addr == nil || st.Val == nil {
			return bad("istore missing operands")
		}
	case *Call:
		if f.prog != nil {
			if _, ok := f.prog.FuncMap[st.Fn]; !ok && !IsBuiltin(st.Fn) {
				return bad("call to unknown function %q", st.Fn)
			}
		}
	}
	return nil
}

// IsBuiltin reports whether name is a runtime-provided function rather than
// a user-defined one.
func IsBuiltin(name string) bool {
	switch name {
	case "malloc", "print", "arg":
		return true
	}
	return false
}

// VerifySSA checks SSA-specific invariants after renaming: every use refers
// to a version that is defined, and each (sym, version) pair has exactly
// one definition point.
func VerifySSA(f *Func) error {
	type dv struct {
		sym *Sym
		ver int
	}
	defs := map[dv]int{}
	addDef := func(sym *Sym, ver int) {
		if ver > 0 {
			defs[dv{sym, ver}]++
		}
	}
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			addDef(phi.Sym, phi.Ver)
		}
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *Assign:
				addDef(st.Dst.Sym, st.Dst.Ver)
				for _, c := range st.Chis {
					addDef(c.Sym, c.NewVer)
				}
			case *IStore:
				if st.VV != nil {
					addDef(st.VV.Sym, st.VV.Ver)
				}
				for _, c := range st.Chis {
					addDef(c.Sym, c.NewVer)
				}
			case *Call:
				if st.Dst != nil {
					addDef(st.Dst.Sym, st.Dst.Ver)
				}
				for _, c := range st.Chis {
					addDef(c.Sym, c.NewVer)
				}
			}
		}
	}
	for k, n := range defs {
		if n > 1 {
			return fmt.Errorf("%s: %s_%d defined %d times", f.Name, k.sym.Name, k.ver, n)
		}
	}
	return nil
}
