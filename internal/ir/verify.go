package ir

import "fmt"

// Verify checks structural invariants of a function's CFG and statements.
// It returns the first violation found, or nil. It is used liberally in
// tests and after every transformation pass.
func Verify(f *Func) error {
	if f.Entry == nil {
		return fmt.Errorf("%s: no entry block", f.Name)
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	if !inFunc[f.Entry] {
		return fmt.Errorf("%s: entry block not in block list", f.Name)
	}
	for _, b := range f.Blocks {
		// terminator / successor agreement
		switch b.Term.Kind {
		case TermJump:
			if len(b.Succs) != 1 {
				return fmt.Errorf("%s B%d: jump with %d successors", f.Name, b.ID, len(b.Succs))
			}
		case TermCond:
			if len(b.Succs) != 2 {
				return fmt.Errorf("%s B%d: cond branch with %d successors", f.Name, b.ID, len(b.Succs))
			}
			if b.Term.Cond == nil {
				return fmt.Errorf("%s B%d: cond branch without condition", f.Name, b.ID)
			}
		case TermRet:
			if len(b.Succs) > 1 {
				return fmt.Errorf("%s B%d: return with %d successors", f.Name, b.ID, len(b.Succs))
			}
		}
		// edge symmetry
		for _, s := range b.Succs {
			if !inFunc[s] {
				return fmt.Errorf("%s B%d: successor B%d not in function", f.Name, b.ID, s.ID)
			}
			if s.PredIndex(b) < 0 {
				return fmt.Errorf("%s B%d: successor B%d lacks back pred edge", f.Name, b.ID, s.ID)
			}
		}
		for _, p := range b.Preds {
			if !inFunc[p] {
				return fmt.Errorf("%s B%d: pred B%d not in function", f.Name, b.ID, p.ID)
			}
			if p.SuccIndex(b) < 0 {
				return fmt.Errorf("%s B%d: pred B%d lacks forward succ edge", f.Name, b.ID, p.ID)
			}
		}
		// phi arity
		for _, phi := range b.Phis {
			if len(phi.Args) != len(b.Preds) {
				return fmt.Errorf("%s B%d: phi for %s has %d args, %d preds",
					f.Name, b.ID, phi.Sym.Name, len(phi.Args), len(b.Preds))
			}
		}
		// statement well-formedness
		for _, s := range b.Stmts {
			if err := verifyStmt(f, b, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func verifyStmt(f *Func, b *Block, s Stmt) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%s B%d [%s]: %s", f.Name, b.ID, s, fmt.Sprintf(format, args...))
	}
	switch st := s.(type) {
	case *Assign:
		if st.Dst == nil || st.Dst.Sym == nil {
			return bad("assign without destination")
		}
		if st.A == nil {
			return bad("assign without first operand")
		}
		if st.RK == RHSBinary && st.B == nil {
			return bad("binary assign without second operand")
		}
		if st.RK == RHSLoad {
			if st.A.Type().Kind != KPtr && st.A.Type().Kind != KInt {
				return bad("load address has non-pointer type %s", st.A.Type())
			}
		}
	case *IStore:
		if st.Addr == nil || st.Val == nil {
			return bad("istore missing operands")
		}
	case *Call:
		if f.prog != nil {
			if _, ok := f.prog.FuncMap[st.Fn]; !ok && !IsBuiltin(st.Fn) {
				return bad("call to unknown function %q", st.Fn)
			}
		}
	}
	return nil
}

// InPass labels a verifier error with the pass that just ran, so a
// post-transform failure says which pass broke the IR. A nil error stays
// nil.
func InPass(pass string, err error) error {
	if err == nil || pass == "" {
		return err
	}
	return fmt.Errorf("after %s: %w", pass, err)
}

// VerifyPass is Verify with the error labeled by the pass that just ran.
func VerifyPass(f *Func, pass string) error {
	return InPass(pass, Verify(f))
}

// VerifySSAPass is VerifySSA with the error labeled by the pass that just
// ran.
func VerifySSAPass(f *Func, pass string) error {
	return InPass(pass, VerifySSA(f))
}

// IsBuiltin reports whether name is a runtime-provided function rather than
// a user-defined one.
func IsBuiltin(name string) bool {
	switch name {
	case "malloc", "print", "arg":
		return true
	}
	return false
}

// VerifySSA checks SSA-specific invariants after renaming: every use refers
// to a version that is defined, and each (sym, version) pair has exactly
// one definition point.
func VerifySSA(f *Func) error {
	type dv struct {
		sym *Sym
		ver int
	}
	defs := map[dv]int{}
	addDef := func(sym *Sym, ver int) {
		if ver > 0 {
			defs[dv{sym, ver}]++
		}
	}
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			addDef(phi.Sym, phi.Ver)
		}
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *Assign:
				addDef(st.Dst.Sym, st.Dst.Ver)
				for _, c := range st.Chis {
					addDef(c.Sym, c.NewVer)
				}
			case *IStore:
				if st.VV != nil {
					addDef(st.VV.Sym, st.VV.Ver)
				}
				for _, c := range st.Chis {
					addDef(c.Sym, c.NewVer)
				}
			case *Call:
				if st.Dst != nil {
					addDef(st.Dst.Sym, st.Dst.Ver)
				}
				for _, c := range st.Chis {
					addDef(c.Sym, c.NewVer)
				}
			}
		}
	}
	for k, n := range defs {
		if n > 1 {
			return fmt.Errorf("%s: %s_%d defined %d times", f.Name, k.sym.Name, k.ver, n)
		}
	}
	return nil
}

// defPos locates an SSA definition: the block it lives in and its
// statement index (phi definitions sit before every statement, at -1).
type defPos struct {
	block *Block
	idx   int
}

// VerifyDefUse checks that every SSA use is dominated by its definition:
// version 0 is the implicit entry value, every other version must be
// defined at a program point that dominates the use (strictly precedes it
// inside a block; dominates the block otherwise, and dominates the
// predecessor for a phi argument). It reuses the function's dominator
// tree (BuildDomTree) and is only meaningful while the function is in SSA
// form.
func VerifyDefUse(f *Func) error {
	dt := BuildDomTree(f)
	type dv struct {
		sym *Sym
		ver int
	}
	defs := map[dv]defPos{}
	addDef := func(sym *Sym, ver int, b *Block, idx int) {
		if ver > 0 {
			defs[dv{sym, ver}] = defPos{b, idx}
		}
	}
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			addDef(phi.Sym, phi.Ver, b, -1)
		}
		for i, s := range b.Stmts {
			switch st := s.(type) {
			case *Assign:
				addDef(st.Dst.Sym, st.Dst.Ver, b, i)
				for _, c := range st.Chis {
					addDef(c.Sym, c.NewVer, b, i)
				}
			case *IStore:
				if st.VV != nil {
					addDef(st.VV.Sym, st.VV.Ver, b, i)
				}
				for _, c := range st.Chis {
					addDef(c.Sym, c.NewVer, b, i)
				}
			case *Call:
				if st.Dst != nil {
					addDef(st.Dst.Sym, st.Dst.Ver, b, i)
				}
				for _, c := range st.Chis {
					addDef(c.Sym, c.NewVer, b, i)
				}
			}
		}
	}

	// checkUse verifies one use at (b, idx); idx len(b.Stmts) is the
	// terminator, and a phi argument is checked at the end of the
	// predecessor block.
	checkUse := func(sym *Sym, ver int, b *Block, idx int, what string) error {
		if ver <= 0 {
			return nil
		}
		d, ok := defs[dv{sym, ver}]
		if !ok {
			return fmt.Errorf("%s B%d: %s uses undefined %s_%d", f.Name, b.ID, what, sym.Name, ver)
		}
		if d.block == b {
			if d.idx >= idx {
				return fmt.Errorf("%s B%d: %s of %s_%d precedes its definition (stmt %d uses, stmt %d defines)",
					f.Name, b.ID, what, sym.Name, ver, idx, d.idx)
			}
			return nil
		}
		if !dt.Dominates(d.block, b) {
			return fmt.Errorf("%s B%d: %s of %s_%d not dominated by its definition in B%d",
				f.Name, b.ID, what, sym.Name, ver, d.block.ID)
		}
		return nil
	}
	useOp := func(op Operand, b *Block, idx int, what string) error {
		if r, ok := op.(*Ref); ok && r != nil {
			return checkUse(r.Sym, r.Ver, b, idx, what)
		}
		return nil
	}

	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			for j, arg := range phi.Args {
				if arg == nil {
					return fmt.Errorf("%s B%d: phi for %s has nil argument %d", f.Name, b.ID, phi.Sym.Name, j)
				}
				pred := b.Preds[j]
				// the argument is consumed on the incoming edge: its
				// definition must dominate the end of the predecessor
				if err := checkUse(arg.Sym, arg.Ver, pred, len(pred.Stmts), "phi argument"); err != nil {
					return err
				}
			}
		}
		for i, s := range b.Stmts {
			for _, op := range Uses(s) {
				if err := useOp(op, b, i, "operand"); err != nil {
					return err
				}
			}
			switch st := s.(type) {
			case *Assign:
				for _, mu := range st.Mus {
					if err := checkUse(mu.Sym, mu.Ver, b, i, "mu"); err != nil {
						return err
					}
				}
				for _, c := range st.Chis {
					if err := checkUse(c.Sym, c.OldVer, b, i, "chi operand"); err != nil {
						return err
					}
				}
				if st.VV != nil {
					if err := checkUse(st.VV.Sym, st.VV.Ver, b, i, "virtual-variable use"); err != nil {
						return err
					}
				}
			case *IStore:
				for _, c := range st.Chis {
					if err := checkUse(c.Sym, c.OldVer, b, i, "chi operand"); err != nil {
						return err
					}
				}
				if st.VV != nil {
					if err := checkUse(st.VV.Sym, st.VVOld, b, i, "virtual-variable operand"); err != nil {
						return err
					}
				}
			case *Call:
				for _, mu := range st.Mus {
					if err := checkUse(mu.Sym, mu.Ver, b, i, "mu"); err != nil {
						return err
					}
				}
				for _, c := range st.Chis {
					if err := checkUse(c.Sym, c.OldVer, b, i, "chi operand"); err != nil {
						return err
					}
				}
			}
		}
		if b.Term.Cond != nil {
			if err := useOp(b.Term.Cond, b, len(b.Stmts), "branch condition"); err != nil {
				return err
			}
		}
		if b.Term.Val != nil {
			if err := useOp(b.Term.Val, b, len(b.Stmts), "return value"); err != nil {
				return err
			}
		}
	}
	return nil
}
