package ir

import (
	"fmt"
	"strconv"
)

// SyntaxKeys reconstructs, for every memory-reference site in a (pre-SSA)
// function, a canonical string for its source-level syntax tree: loads are
// keyed by their address expression, direct variable references by name.
// Two sites with equal keys have identical syntax trees in the sense of the
// paper's heuristic rule 1/2 (§3.2.2) and of the Fig. 12 load-reuse
// equivalence classes.
//
// The flattened IR lost the source trees, but lowering produces single-
// definition temporaries, so the tree is recovered by chasing temp
// definitions. Multiply-defined or cross-block-φ'd symbols become opaque
// leaves keyed by symbol identity.
func SyntaxKeys(f *Func) map[Stmt]string {
	// count definitions of every register symbol
	defCount := map[*Sym]int{}
	defOf := map[*Sym]*Assign{}
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *Assign:
				if !st.Dst.Sym.InMemory() {
					defCount[st.Dst.Sym]++
					defOf[st.Dst.Sym] = st
				}
			case *Call:
				if st.Dst != nil {
					defCount[st.Dst.Sym] += 2 // calls are opaque
				}
			}
		}
	}

	memo := map[*Sym]string{}
	var keyOfSym func(s *Sym, depth int) string
	keyOfOperand := func(op Operand, depth int) string {
		switch o := op.(type) {
		case *ConstInt:
			return strconv.FormatInt(o.Val, 10)
		case *ConstFloat:
			return strconv.FormatFloat(o.Val, 'g', -1, 64)
		case *AddrOf:
			return "&" + o.Sym.Name
		case *Ref:
			return keyOfSym(o.Sym, depth)
		}
		return "?"
	}
	keyOfSym = func(s *Sym, depth int) string {
		if s.InMemory() || s.Kind == SymGlobal {
			return "mem:" + s.Name
		}
		if s.Kind == SymParam || s.Kind == SymLocal {
			return "var:" + s.Name
		}
		if k, ok := memo[s]; ok {
			return k
		}
		if depth > 16 || defCount[s] != 1 {
			return fmt.Sprintf("reg:%s#%d", s.Name, s.ID)
		}
		def := defOf[s]
		if def == nil {
			return fmt.Sprintf("reg:%s#%d", s.Name, s.ID)
		}
		var k string
		switch def.RK {
		case RHSCopy:
			k = keyOfOperand(def.A, depth+1)
		case RHSUnary:
			k = fmt.Sprintf("(%s %s)", def.Op, keyOfOperand(def.A, depth+1))
		case RHSBinary:
			a := keyOfOperand(def.A, depth+1)
			b := keyOfOperand(def.B, depth+1)
			if def.Op.IsCommutative() && b < a {
				a, b = b, a
			}
			k = fmt.Sprintf("(%s %s %s)", a, def.Op, b)
		case RHSLoad:
			k = fmt.Sprintf("*(%s)", keyOfOperand(def.A, depth+1))
		case RHSAlloc:
			k = fmt.Sprintf("alloc@%d", def.AllocSite)
		}
		memo[s] = k
		return k
	}

	keys := map[Stmt]string{}
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *Assign:
				switch {
				case st.RK == RHSLoad:
					keys[s] = "*(" + keyOfOperand(st.A, 0) + ")"
				case st.RK == RHSCopy && refToMemory(st.A):
					keys[s] = "mem:" + st.A.(*Ref).Sym.Name
				case st.RK == RHSCopy && st.Dst.Sym.InMemory():
					keys[s] = "mem:" + st.Dst.Sym.Name
				}
			case *IStore:
				keys[s] = "*(" + keyOfOperand(st.Addr, 0) + ")"
			}
		}
	}
	return keys
}

func refToMemory(op Operand) bool {
	r, ok := op.(*Ref)
	return ok && r.Sym.InMemory()
}

// SiteSyntaxKeys maps reference-site ids (Assign.Site / IStore.Site) to
// syntax keys for the whole program.
func SiteSyntaxKeys(p *Program) map[int]string {
	out := map[int]string{}
	for _, f := range p.Funcs {
		keys := SyntaxKeys(f)
		for s, k := range keys {
			switch st := s.(type) {
			case *Assign:
				if st.Site != 0 {
					out[st.Site] = f.Name + "/" + k
				}
			case *IStore:
				if st.Site != 0 {
					out[st.Site] = f.Name + "/" + k
				}
			}
		}
	}
	return out
}
