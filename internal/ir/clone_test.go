package ir_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/source"
)

const cloneSrc = `
int g;
int buf[8];

int touch(int *p, int i) {
	*p = *p + i;
	g = g + 1;
	return *p;
}

int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 8; i = i + 1) {
		buf[i] = i * 3;
		s = s + touch(&buf[i], i);
	}
	print(s, g);
	return s;
}
`

func lowerClone(t *testing.T) *ir.Program {
	t.Helper()
	f, err := source.Parse(cloneSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

// TestCloneIsIdentical checks the clone renders to the very same IR and
// carries identical bookkeeping counters.
func TestCloneIsIdentical(t *testing.T) {
	orig := lowerClone(t)
	clone := ir.Clone(orig)
	if orig.String() != clone.String() {
		t.Fatalf("clone differs from original:\n--- orig ---\n%s\n--- clone ---\n%s", orig, clone)
	}
	if clone.GlobSize != orig.GlobSize || clone.NumSites() != orig.NumSites() {
		t.Fatalf("counters differ: globsize %d/%d sites %d/%d",
			orig.GlobSize, clone.GlobSize, orig.NumSites(), clone.NumSites())
	}
	for i, f := range orig.Funcs {
		cf := clone.Funcs[i]
		if cf.Name != f.Name || cf.Prog() != clone {
			t.Fatalf("func %d: name %q prog mismatch", i, cf.Name)
		}
		if clone.FuncMap[f.Name] != cf {
			t.Fatalf("func map does not point at cloned func %s", f.Name)
		}
	}
}

// TestCloneSharesNoMutableState mutates each program aggressively and
// asserts the other never changes — the detachment contract the frontend
// compilation cache relies on.
func TestCloneSharesNoMutableState(t *testing.T) {
	orig := lowerClone(t)
	origText := orig.String()
	clone := ir.Clone(orig)

	// mutate the clone: rename symbols, bump versions, rewrite statements,
	// retarget terminators, drop blocks, poison globals.
	for _, f := range clone.Funcs {
		for _, s := range f.Syms {
			s.Name = "mut_" + s.Name
			s.NVers = 99
			s.Class = 77
		}
		for _, b := range f.Blocks {
			b.Freq = 1234
			for _, st := range b.Stmts {
				switch x := st.(type) {
				case *ir.Assign:
					x.Dst.Ver = 42
					if ci, ok := x.A.(*ir.ConstInt); ok {
						ci.Val = -9999
					}
					x.Mus = append(x.Mus, &ir.Mu{Sym: f.Syms[0]})
					x.Site = 31337
				case *ir.IStore:
					x.Site = 31337
					x.Chis = nil
				case *ir.Call:
					x.Fn = "hijacked"
				}
			}
			if b.Term.Kind == ir.TermRet && b.Term.Val != nil {
				b.Term.Val = &ir.ConstInt{Val: 666}
			}
		}
		f.Blocks = f.Blocks[:1]
	}
	for _, g := range clone.Globals {
		g.Name = "mut_" + g.Name
		g.Addr = 4096
	}
	clone.GlobalInit[12345] = 1

	if got := orig.String(); got != origText {
		t.Fatalf("mutating the clone changed the original:\n--- before ---\n%s\n--- after ---\n%s", origText, got)
	}
	if _, ok := orig.GlobalInit[12345]; ok {
		t.Fatal("clone shares GlobalInit map with original")
	}

	// and the other direction: a fresh clone must not see later mutations
	// of its source program.
	orig2 := lowerClone(t)
	clone2 := ir.Clone(orig2)
	cloneText := clone2.String()
	for _, f := range orig2.Funcs {
		for _, s := range f.Syms {
			s.Name = "zap_" + s.Name
		}
	}
	orig2.GlobalInit[777] = 8
	if got := clone2.String(); got != cloneText {
		t.Fatal("mutating the original changed its clone")
	}
	if _, ok := clone2.GlobalInit[777]; ok {
		t.Fatal("original shares GlobalInit map with clone")
	}
}

// TestCloneDetachedThroughPipeline runs the clone through CFG surgery and
// checks the original's structure survives untouched.
func TestCloneDetachedThroughPipeline(t *testing.T) {
	orig := lowerClone(t)
	origText := orig.String()
	clone := ir.Clone(orig)
	for _, f := range clone.Funcs {
		f.SplitCriticalEdges()
		f.RemoveUnreachable()
		if err := ir.Verify(f); err != nil {
			t.Fatalf("clone invalid after CFG surgery: %v", err)
		}
	}
	if got := orig.String(); got != origText {
		t.Fatal("CFG surgery on the clone leaked into the original")
	}
}
