package ir

// Clone returns a deep copy of a program that shares no mutable state
// with the original: every Func, Block, Sym, Stmt, Phi, Mu, Chi, Ref and
// constant operand is a fresh object, so passes may mutate one program
// (SSA renaming bumps Ref.Ver and Sym.NVers in place, annotation attaches
// chi/mu lists, code motion rewrites statements) without the other ever
// observing a change. Types are shared: they are interned by the front
// end and treated as immutable everywhere.
//
// Clone is what makes the frontend compilation cache sound — the cache
// keeps one pristine lowered program per source hash and hands every
// caller a detached copy — and it preserves object *identity* structure:
// if the original shares one *Ref between two statements, the clone
// shares one cloned *Ref between the corresponding statements, so
// in-place version rewriting behaves identically in both programs.
//
// Functions whose objects live in a slab arena (everything built through
// the Func factory methods — see arena.go) are cloned by copying each
// slab's chunks wholesale and then remapping pointer fields by slab
// index; identical indices in the copied slabs give identity
// preservation for free. Objects built as plain literals (tests,
// program-shared virtual variables, globals) take the original
// map-based path; the two interoperate freely within one function.
func Clone(p *Program) *Program {
	c := &cloner{
		syms:   map[*Sym]*Sym{},
		blocks: map[*Block]*Block{},
		refs:   map[*Ref]*Ref{},
		ops:    map[Operand]Operand{},
		mus:    map[*Mu]*Mu{},
		chis:   map[*Chi]*Chi{},
	}
	np := &Program{
		FuncMap:    make(map[string]*Func, len(p.FuncMap)),
		GlobSize:   p.GlobSize,
		GlobalInit: make(map[int]uint64, len(p.GlobalInit)),
		nextGlobal: p.nextGlobal,
		nextSite:   p.nextSite,
	}
	for k, v := range p.GlobalInit {
		np.GlobalInit[k] = v
	}
	for _, g := range p.Globals {
		np.Globals = append(np.Globals, c.sym(g))
	}
	for _, f := range p.Funcs {
		nf := c.fn(f, np)
		np.Funcs = append(np.Funcs, nf)
		np.FuncMap[nf.Name] = nf
	}
	return np
}

// listArena hands out exact-capacity subslices of a shared backing
// array, so cloning the many small Mus/Chis/Args/Preds/... slices costs
// one allocation per refill instead of one per slice. Exact capacity
// means a later append on a cloned slice reallocates instead of
// scribbling over its neighbour.
type listArena[T any] struct{ buf []T }

func (a *listArena[T]) make(n int) []T {
	if n == 0 {
		return []T{}
	}
	if len(a.buf) < n {
		size := 1024
		if n > size {
			size = n
		}
		a.buf = make([]T, size)
	}
	s := a.buf[:n:n]
	a.buf = a.buf[n:]
	return s
}

type cloner struct {
	syms   map[*Sym]*Sym
	blocks map[*Block]*Block
	refs   map[*Ref]*Ref
	ops    map[Operand]Operand
	mus    map[*Mu]*Mu
	chis   map[*Chi]*Chi

	// oldA/newA are set while cloning an arena-backed function: objects
	// found (by verified slab index) in oldA translate to the same index
	// in newA; everything else falls back to the maps above.
	oldA, newA *arena

	muBuf   listArena[*Mu]
	chiBuf  listArena[*Chi]
	refBuf  listArena[*Ref]
	opBuf   listArena[Operand]
	blkBuf  listArena[*Block]
	stmtBuf listArena[Stmt]
	phiBuf  listArena[*Phi]
	symBuf  listArena[*Sym]
}

func (c *cloner) sym(s *Sym) *Sym {
	if s == nil {
		return nil
	}
	if c.oldA != nil && s.aidx > 0 {
		if i := s.aidx - 1; i < c.oldA.syms.n && c.oldA.syms.at(i) == s {
			return c.newA.syms.at(i)
		}
	}
	if n, ok := c.syms[s]; ok {
		return n
	}
	n := &Sym{}
	*n = *s // Type is shared by design
	n.aidx = 0
	c.syms[s] = n
	return n
}

func (c *cloner) ref(r *Ref) *Ref {
	if r == nil {
		return nil
	}
	if c.oldA != nil && r.aidx > 0 {
		if i := r.aidx - 1; i < c.oldA.refs.n && c.oldA.refs.at(i) == r {
			return c.newA.refs.at(i)
		}
	}
	if n, ok := c.refs[r]; ok {
		return n
	}
	n := &Ref{Sym: c.sym(r.Sym), Ver: r.Ver}
	c.refs[r] = n
	return n
}

func (c *cloner) operand(op Operand) Operand {
	if op == nil {
		return nil
	}
	switch o := op.(type) {
	case *Ref:
		return c.ref(o)
	case *AddrOf:
		if c.oldA != nil && o.aidx > 0 {
			if i := o.aidx - 1; i < c.oldA.addrs.n && c.oldA.addrs.at(i) == o {
				return c.newA.addrs.at(i)
			}
		}
		if n, ok := c.ops[op]; ok {
			return n
		}
		n := &AddrOf{Sym: c.sym(o.Sym)}
		c.ops[op] = n
		return n
	case *ConstInt:
		if n, ok := c.ops[op]; ok {
			return n
		}
		n := &ConstInt{Val: o.Val}
		c.ops[op] = n
		return n
	case *ConstFloat:
		if n, ok := c.ops[op]; ok {
			return n
		}
		n := &ConstFloat{Val: o.Val}
		c.ops[op] = n
		return n
	default:
		panic("ir: Clone of unknown operand kind")
	}
}

func (c *cloner) mu(m *Mu) *Mu {
	if c.oldA != nil && m.aidx > 0 {
		if i := m.aidx - 1; i < c.oldA.mus.n && c.oldA.mus.at(i) == m {
			return c.newA.mus.at(i)
		}
	}
	if n, ok := c.mus[m]; ok {
		return n
	}
	n := &Mu{Sym: c.sym(m.Sym), Ver: m.Ver, Spec: m.Spec}
	c.mus[m] = n
	return n
}

func (c *cloner) chi(ch *Chi) *Chi {
	if c.oldA != nil && ch.aidx > 0 {
		if i := ch.aidx - 1; i < c.oldA.chis.n && c.oldA.chis.at(i) == ch {
			return c.newA.chis.at(i)
		}
	}
	if n, ok := c.chis[ch]; ok {
		return n
	}
	n := &Chi{Sym: c.sym(ch.Sym), NewVer: ch.NewVer, OldVer: ch.OldVer, Spec: ch.Spec}
	c.chis[ch] = n
	return n
}

func (c *cloner) phi(p *Phi) *Phi {
	if p == nil {
		return nil
	}
	if c.oldA != nil && p.aidx > 0 {
		if i := p.aidx - 1; i < c.oldA.phis.n && c.oldA.phis.at(i) == p {
			return c.newA.phis.at(i)
		}
	}
	n := &Phi{Sym: c.sym(p.Sym), Ver: p.Ver, Args: c.refList(p.Args)}
	return n
}

func (c *cloner) muList(ms []*Mu) []*Mu {
	if ms == nil {
		return nil
	}
	out := c.muBuf.make(len(ms))
	for i, m := range ms {
		out[i] = c.mu(m)
	}
	return out
}

func (c *cloner) chiList(chs []*Chi) []*Chi {
	if chs == nil {
		return nil
	}
	out := c.chiBuf.make(len(chs))
	for i, ch := range chs {
		out[i] = c.chi(ch)
	}
	return out
}

func (c *cloner) refList(rs []*Ref) []*Ref {
	if rs == nil {
		return nil
	}
	out := c.refBuf.make(len(rs))
	for i, r := range rs {
		out[i] = c.ref(r)
	}
	return out
}

func (c *cloner) opList(ops []Operand) []Operand {
	if ops == nil {
		return nil
	}
	out := c.opBuf.make(len(ops))
	for i, o := range ops {
		out[i] = c.operand(o)
	}
	return out
}

func (c *cloner) blockList(bs []*Block) []*Block {
	if bs == nil {
		return nil
	}
	out := c.blkBuf.make(len(bs))
	for i, b := range bs {
		out[i] = c.block(b)
	}
	return out
}

func (c *cloner) stmt(s Stmt) Stmt {
	switch t := s.(type) {
	case *Assign:
		if c.oldA != nil && t.aidx > 0 {
			if i := t.aidx - 1; i < c.oldA.assigns.n && c.oldA.assigns.at(i) == t {
				return c.newA.assigns.at(i)
			}
		}
		return &Assign{
			Dst:       c.ref(t.Dst),
			RK:        t.RK,
			Op:        t.Op,
			A:         c.operand(t.A),
			B:         c.operand(t.B),
			Mus:       c.muList(t.Mus),
			Chis:      c.chiList(t.Chis),
			VV:        c.ref(t.VV),
			AllocSite: t.AllocSite,
			Site:      t.Site,
			Spec:      t.Spec,
			LoadsFrom: t.LoadsFrom,
		}
	case *IStore:
		if c.oldA != nil && t.aidx > 0 {
			if i := t.aidx - 1; i < c.oldA.istores.n && c.oldA.istores.at(i) == t {
				return c.newA.istores.at(i)
			}
		}
		return &IStore{
			Addr:     c.operand(t.Addr),
			Val:      c.operand(t.Val),
			VV:       c.ref(t.VV),
			VVOld:    t.VVOld,
			Chis:     c.chiList(t.Chis),
			StoresTo: t.StoresTo,
			Site:     t.Site,
		}
	case *Call:
		if c.oldA != nil && t.aidx > 0 {
			if i := t.aidx - 1; i < c.oldA.calls.n && c.oldA.calls.at(i) == t {
				return c.newA.calls.at(i)
			}
		}
		return &Call{Fn: t.Fn, Args: c.opList(t.Args), Dst: c.ref(t.Dst),
			Mus: c.muList(t.Mus), Chis: c.chiList(t.Chis), Site: t.Site}
	case *Print:
		if c.oldA != nil && t.aidx > 0 {
			if i := t.aidx - 1; i < c.oldA.prints.n && c.oldA.prints.at(i) == t {
				return c.newA.prints.at(i)
			}
		}
		return &Print{Args: c.opList(t.Args)}
	}
	panic("ir: Clone of unknown statement kind")
}

func (c *cloner) stmtList(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := c.stmtBuf.make(len(ss))
	for i, s := range ss {
		out[i] = c.stmt(s)
	}
	return out
}

func (c *cloner) phiList(ps []*Phi) []*Phi {
	if ps == nil {
		return nil
	}
	out := c.phiBuf.make(len(ps))
	for i, p := range ps {
		out[i] = c.phi(p)
	}
	return out
}

// arenaBlock reports whether b lives in the current function's arena
// (verified by slab index), i.e. fixArena has already populated its clone.
func (c *cloner) arenaBlock(b *Block) bool {
	return c.oldA != nil && b.aidx > 0 && b.aidx-1 < c.oldA.blocks.n &&
		c.oldA.blocks.at(b.aidx-1) == b
}

// block returns the clone shell for b, creating it on first use so that
// CFG edges can be wired before block bodies are filled in. Arena-backed
// blocks come back fully populated (fixArena fills slab blocks in place).
func (c *cloner) block(b *Block) *Block {
	if b == nil {
		return nil
	}
	if c.oldA != nil && b.aidx > 0 {
		if i := b.aidx - 1; i < c.oldA.blocks.n && c.oldA.blocks.at(i) == b {
			return c.newA.blocks.at(i)
		}
	}
	if n, ok := c.blocks[b]; ok {
		return n
	}
	n := &Block{ID: b.ID, Freq: b.Freq}
	c.blocks[b] = n
	return n
}

// fillBlock deep-copies the body of a non-arena block into its shell.
func (c *cloner) fillBlock(b, nb *Block) {
	if b.EdgeFreq != nil {
		nb.EdgeFreq = append([]float64(nil), b.EdgeFreq...)
	}
	nb.Preds = c.blockList(b.Preds)
	nb.Succs = c.blockList(b.Succs)
	nb.Phis = c.phiList(b.Phis)
	nb.Stmts = c.stmtList(b.Stmts)
	nb.Term = Term{Kind: b.Term.Kind, Cond: c.operand(b.Term.Cond), Val: c.operand(b.Term.Val)}
}

// fixArena remaps the pointer fields of every object in the freshly
// copied slabs. The copied fields still hold pointers into the original
// function, so each is translated through the cloner (arena index fast
// path, map fallback for literal-built objects). Slab order within a
// pass is irrelevant: translation needs only object identity, and every
// fixup writes its own object.
func (c *cloner) fixArena() {
	oldA, newA := c.oldA, c.newA
	for i := int32(0); i < newA.refs.n; i++ {
		n := newA.refs.at(i)
		n.Sym = c.sym(n.Sym)
	}
	for i := int32(0); i < newA.addrs.n; i++ {
		n := newA.addrs.at(i)
		n.Sym = c.sym(n.Sym)
	}
	for i := int32(0); i < newA.mus.n; i++ {
		n := newA.mus.at(i)
		n.Sym = c.sym(n.Sym)
	}
	for i := int32(0); i < newA.chis.n; i++ {
		n := newA.chis.at(i)
		n.Sym = c.sym(n.Sym)
	}
	for i := int32(0); i < newA.assigns.n; i++ {
		n := newA.assigns.at(i)
		n.Dst = c.ref(n.Dst)
		n.A = c.operand(n.A)
		n.B = c.operand(n.B)
		n.Mus = c.muList(n.Mus)
		n.Chis = c.chiList(n.Chis)
		n.VV = c.ref(n.VV)
	}
	for i := int32(0); i < newA.istores.n; i++ {
		n := newA.istores.at(i)
		n.Addr = c.operand(n.Addr)
		n.Val = c.operand(n.Val)
		n.VV = c.ref(n.VV)
		n.Chis = c.chiList(n.Chis)
	}
	for i := int32(0); i < newA.calls.n; i++ {
		n := newA.calls.at(i)
		n.Args = c.opList(n.Args)
		n.Dst = c.ref(n.Dst)
		n.Mus = c.muList(n.Mus)
		n.Chis = c.chiList(n.Chis)
	}
	for i := int32(0); i < newA.prints.n; i++ {
		n := newA.prints.at(i)
		n.Args = c.opList(n.Args)
	}
	for i := int32(0); i < newA.phis.n; i++ {
		n := newA.phis.at(i)
		n.Sym = c.sym(n.Sym)
		n.Args = c.refList(n.Args)
	}
	for i := int32(0); i < newA.blocks.n; i++ {
		n := newA.blocks.at(i)
		if n.EdgeFreq != nil {
			n.EdgeFreq = append([]float64(nil), oldA.blocks.at(i).EdgeFreq...)
		}
		n.Preds = c.blockList(n.Preds)
		n.Succs = c.blockList(n.Succs)
		n.Phis = c.phiList(n.Phis)
		n.Stmts = c.stmtList(n.Stmts)
		n.Term.Cond = c.operand(n.Term.Cond)
		n.Term.Val = c.operand(n.Term.Val)
	}
}

func (c *cloner) fn(f *Func, np *Program) *Func {
	if f.arena != nil {
		c.oldA, c.newA = f.arena, &arena{}
		c.newA.syms.copyFrom(&f.arena.syms)
		c.newA.refs.copyFrom(&f.arena.refs)
		c.newA.addrs.copyFrom(&f.arena.addrs)
		c.newA.mus.copyFrom(&f.arena.mus)
		c.newA.chis.copyFrom(&f.arena.chis)
		c.newA.assigns.copyFrom(&f.arena.assigns)
		c.newA.istores.copyFrom(&f.arena.istores)
		c.newA.calls.copyFrom(&f.arena.calls)
		c.newA.prints.copyFrom(&f.arena.prints)
		c.newA.phis.copyFrom(&f.arena.phis)
		c.newA.blocks.copyFrom(&f.arena.blocks)
		c.fixArena()
	}
	nf := &Func{
		Name:      f.Name,
		RetType:   f.RetType,
		FrameSize: f.FrameSize,
		prog:      np,
		nextSym:   f.nextSym,
		nextBlk:   f.nextBlk,
		arena:     c.newA,
	}
	nf.Syms = c.symList(f.Syms)
	nf.Params = c.symList(f.Params)
	if f.Blocks != nil {
		nf.Blocks = c.blkBuf.make(len(f.Blocks))
		for i, b := range f.Blocks {
			nb := c.block(b)
			if !c.arenaBlock(b) {
				c.fillBlock(b, nb)
			}
			nf.Blocks[i] = nb
		}
	}
	nf.Entry = c.block(f.Entry)
	nf.Exit = c.block(f.Exit)
	c.oldA, c.newA = nil, nil
	return nf
}

func (c *cloner) symList(ss []*Sym) []*Sym {
	if ss == nil {
		return nil
	}
	out := c.symBuf.make(len(ss))
	for i, s := range ss {
		out[i] = c.sym(s)
	}
	return out
}
