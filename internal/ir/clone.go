package ir

// Clone returns a deep copy of a program that shares no mutable state
// with the original: every Func, Block, Sym, Stmt, Phi, Mu, Chi, Ref and
// constant operand is a fresh object, so passes may mutate one program
// (SSA renaming bumps Ref.Ver and Sym.NVers in place, annotation attaches
// chi/mu lists, code motion rewrites statements) without the other ever
// observing a change. Types are shared: they are interned by the front
// end and treated as immutable everywhere.
//
// Clone is what makes the frontend compilation cache sound — the cache
// keeps one pristine lowered program per source hash and hands every
// caller a detached copy — and it preserves object *identity* structure:
// if the original shares one *Ref between two statements, the clone
// shares one cloned *Ref between the corresponding statements, so
// in-place version rewriting behaves identically in both programs.
func Clone(p *Program) *Program {
	c := &cloner{
		syms:   map[*Sym]*Sym{},
		blocks: map[*Block]*Block{},
		refs:   map[*Ref]*Ref{},
		ops:    map[Operand]Operand{},
		mus:    map[*Mu]*Mu{},
		chis:   map[*Chi]*Chi{},
	}
	np := &Program{
		FuncMap:    make(map[string]*Func, len(p.FuncMap)),
		GlobSize:   p.GlobSize,
		GlobalInit: make(map[int]uint64, len(p.GlobalInit)),
		nextGlobal: p.nextGlobal,
		nextSite:   p.nextSite,
	}
	for k, v := range p.GlobalInit {
		np.GlobalInit[k] = v
	}
	for _, g := range p.Globals {
		np.Globals = append(np.Globals, c.sym(g))
	}
	for _, f := range p.Funcs {
		nf := c.fn(f, np)
		np.Funcs = append(np.Funcs, nf)
		np.FuncMap[nf.Name] = nf
	}
	return np
}

type cloner struct {
	syms   map[*Sym]*Sym
	blocks map[*Block]*Block
	refs   map[*Ref]*Ref
	ops    map[Operand]Operand
	mus    map[*Mu]*Mu
	chis   map[*Chi]*Chi
}

func (c *cloner) sym(s *Sym) *Sym {
	if s == nil {
		return nil
	}
	if n, ok := c.syms[s]; ok {
		return n
	}
	n := &Sym{}
	*n = *s // Type is shared by design
	c.syms[s] = n
	return n
}

func (c *cloner) ref(r *Ref) *Ref {
	if r == nil {
		return nil
	}
	if n, ok := c.refs[r]; ok {
		return n
	}
	n := &Ref{Sym: c.sym(r.Sym), Ver: r.Ver}
	c.refs[r] = n
	return n
}

func (c *cloner) operand(op Operand) Operand {
	if op == nil {
		return nil
	}
	if n, ok := c.ops[op]; ok {
		return n
	}
	var n Operand
	switch o := op.(type) {
	case *ConstInt:
		n = &ConstInt{Val: o.Val}
	case *ConstFloat:
		n = &ConstFloat{Val: o.Val}
	case *Ref:
		return c.ref(o)
	case *AddrOf:
		n = &AddrOf{Sym: c.sym(o.Sym)}
	default:
		panic("ir: Clone of unknown operand kind")
	}
	c.ops[op] = n
	return n
}

func (c *cloner) mu(m *Mu) *Mu {
	if n, ok := c.mus[m]; ok {
		return n
	}
	n := &Mu{Sym: c.sym(m.Sym), Ver: m.Ver, Spec: m.Spec}
	c.mus[m] = n
	return n
}

func (c *cloner) chi(ch *Chi) *Chi {
	if n, ok := c.chis[ch]; ok {
		return n
	}
	n := &Chi{Sym: c.sym(ch.Sym), NewVer: ch.NewVer, OldVer: ch.OldVer, Spec: ch.Spec}
	c.chis[ch] = n
	return n
}

func (c *cloner) muList(ms []*Mu) []*Mu {
	if ms == nil {
		return nil
	}
	out := make([]*Mu, len(ms))
	for i, m := range ms {
		out[i] = c.mu(m)
	}
	return out
}

func (c *cloner) chiList(chs []*Chi) []*Chi {
	if chs == nil {
		return nil
	}
	out := make([]*Chi, len(chs))
	for i, ch := range chs {
		out[i] = c.chi(ch)
	}
	return out
}

func (c *cloner) stmt(s Stmt) Stmt {
	switch t := s.(type) {
	case *Assign:
		n := &Assign{
			Dst:       c.ref(t.Dst),
			RK:        t.RK,
			Op:        t.Op,
			A:         c.operand(t.A),
			B:         c.operand(t.B),
			Mus:       c.muList(t.Mus),
			Chis:      c.chiList(t.Chis),
			VV:        c.ref(t.VV),
			AllocSite: t.AllocSite,
			Site:      t.Site,
			Spec:      t.Spec,
			LoadsFrom: t.LoadsFrom,
		}
		return n
	case *IStore:
		return &IStore{
			Addr:     c.operand(t.Addr),
			Val:      c.operand(t.Val),
			VV:       c.ref(t.VV),
			VVOld:    t.VVOld,
			Chis:     c.chiList(t.Chis),
			StoresTo: t.StoresTo,
			Site:     t.Site,
		}
	case *Call:
		n := &Call{Fn: t.Fn, Dst: c.ref(t.Dst), Mus: c.muList(t.Mus), Chis: c.chiList(t.Chis), Site: t.Site}
		for _, a := range t.Args {
			n.Args = append(n.Args, c.operand(a))
		}
		return n
	case *Print:
		n := &Print{}
		for _, a := range t.Args {
			n.Args = append(n.Args, c.operand(a))
		}
		return n
	}
	panic("ir: Clone of unknown statement kind")
}

// block returns the clone shell for b, creating it on first use so that
// CFG edges can be wired before block bodies are filled in.
func (c *cloner) block(b *Block) *Block {
	if b == nil {
		return nil
	}
	if n, ok := c.blocks[b]; ok {
		return n
	}
	n := &Block{ID: b.ID, Freq: b.Freq}
	c.blocks[b] = n
	return n
}

func (c *cloner) fn(f *Func, np *Program) *Func {
	nf := &Func{
		Name:      f.Name,
		RetType:   f.RetType,
		FrameSize: f.FrameSize,
		prog:      np,
		nextSym:   f.nextSym,
		nextBlk:   f.nextBlk,
	}
	for _, s := range f.Syms {
		nf.Syms = append(nf.Syms, c.sym(s))
	}
	for _, p := range f.Params {
		nf.Params = append(nf.Params, c.sym(p))
	}
	for _, b := range f.Blocks {
		nb := c.block(b)
		if b.EdgeFreq != nil {
			nb.EdgeFreq = append([]float64(nil), b.EdgeFreq...)
		}
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, c.block(p))
		}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, c.block(s))
		}
		for _, phi := range b.Phis {
			nphi := &Phi{Sym: c.sym(phi.Sym), Ver: phi.Ver}
			for _, a := range phi.Args {
				nphi.Args = append(nphi.Args, c.ref(a))
			}
			nb.Phis = append(nb.Phis, nphi)
		}
		for _, st := range b.Stmts {
			nb.Stmts = append(nb.Stmts, c.stmt(st))
		}
		nb.Term = Term{Kind: b.Term.Kind, Cond: c.operand(b.Term.Cond), Val: c.operand(b.Term.Val)}
		nf.Blocks = append(nf.Blocks, nb)
	}
	nf.Entry = c.block(f.Entry)
	nf.Exit = c.block(f.Exit)
	return nf
}
