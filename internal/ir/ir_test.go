package ir

import (
	"strings"
	"testing"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		want int
	}{
		{IntType, 1},
		{FloatType, 1},
		{PtrTo(IntType), 1},
		{ArrayOf(IntType, 10), 10},
		{ArrayOf(ArrayOf(FloatType, 4), 3), 12},
		{&Type{Kind: KStruct, Fields: []Field{
			{Name: "a", Type: IntType, Off: 0},
			{Name: "b", Type: ArrayOf(FloatType, 2), Off: 1},
		}}, 3},
		{VoidType, 0},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("Size(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !PtrTo(IntType).Equal(PtrTo(IntType)) {
		t.Error("identical pointer types must be equal")
	}
	if PtrTo(IntType).Equal(PtrTo(FloatType)) {
		t.Error("int* must differ from double*")
	}
	if ArrayOf(IntType, 3).Equal(ArrayOf(IntType, 4)) {
		t.Error("array lengths are part of the type")
	}
	s1 := &Type{Kind: KStruct, Name: "n"}
	s2 := &Type{Kind: KStruct, Name: "n"}
	if !s1.Equal(s2) {
		t.Error("named structs compare by tag")
	}
	if IntType.Equal(FloatType) {
		t.Error("int != double")
	}
	var nilT *Type
	if IntType.Equal(nilT) {
		t.Error("non-nil != nil")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]*Type{
		"int":      IntType,
		"double":   FloatType,
		"int*":     PtrTo(IntType),
		"double**": PtrTo(PtrTo(FloatType)),
		"int[4]":   ArrayOf(IntType, 4),
		"struct s": {Kind: KStruct, Name: "s"},
		"void":     VoidType,
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestOpProperties(t *testing.T) {
	comm := []Op{OpAdd, OpMul, OpEq, OpNe, OpAnd, OpOr, OpXor}
	for _, op := range comm {
		if !op.IsCommutative() {
			t.Errorf("%s should be commutative", op)
		}
	}
	nonComm := []Op{OpSub, OpDiv, OpMod, OpLt, OpShl}
	for _, op := range nonComm {
		if op.IsCommutative() {
			t.Errorf("%s should not be commutative", op)
		}
	}
	for _, op := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if !op.IsComparison() {
			t.Errorf("%s should be a comparison", op)
		}
	}
	if OpAdd.IsComparison() {
		t.Error("+ is not a comparison")
	}
}

func TestSameOperand(t *testing.T) {
	s1 := &Sym{Name: "x"}
	s2 := &Sym{Name: "x"} // same name, different identity
	cases := []struct {
		a, b Operand
		want bool
	}{
		{&ConstInt{Val: 3}, &ConstInt{Val: 3}, true},
		{&ConstInt{Val: 3}, &ConstInt{Val: 4}, false},
		{&ConstFloat{Val: 1.5}, &ConstFloat{Val: 1.5}, true},
		{&Ref{Sym: s1, Ver: 2}, &Ref{Sym: s1, Ver: 2}, true},
		{&Ref{Sym: s1, Ver: 2}, &Ref{Sym: s1, Ver: 3}, false},
		{&Ref{Sym: s1, Ver: 2}, &Ref{Sym: s2, Ver: 2}, false},
		{&AddrOf{Sym: s1}, &AddrOf{Sym: s1}, true},
		{&ConstInt{Val: 0}, &Ref{Sym: s1}, false},
	}
	for i, c := range cases {
		if got := SameOperand(c.a, c.b); got != c.want {
			t.Errorf("case %d: SameOperand = %v, want %v", i, got, c.want)
		}
	}
	// version-insensitive variant
	if !SameLeafIgnoringVersion(&Ref{Sym: s1, Ver: 2}, &Ref{Sym: s1, Ver: 9}) {
		t.Error("SameLeafIgnoringVersion must ignore versions")
	}
}

func TestVerifyCatchesBadCFG(t *testing.T) {
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	a := f.NewBlock()
	b := f.NewBlock()
	f.Entry = a
	// jump with two successors: invalid
	a.Term = Term{Kind: TermJump}
	Connect(a, b)
	Connect(a, b)
	b.Term = Term{Kind: TermRet}
	if err := Verify(f); err == nil {
		t.Error("expected verification failure for jump with 2 successors")
	}

	// asymmetric edge
	prog2 := NewProgram()
	g := prog2.NewFunc("g", VoidType)
	c := g.NewBlock()
	d := g.NewBlock()
	g.Entry = c
	c.Term = Term{Kind: TermJump}
	c.Succs = append(c.Succs, d) // no back pred edge
	d.Term = Term{Kind: TermRet}
	if err := Verify(g); err == nil || !strings.Contains(err.Error(), "pred") {
		t.Errorf("expected missing-pred error, got %v", err)
	}
}

func TestVerifyCatchesUnknownCall(t *testing.T) {
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	a := f.NewBlock()
	f.Entry = a
	a.Term = Term{Kind: TermRet}
	a.Stmts = append(a.Stmts, &Call{Fn: "nosuch"})
	if err := Verify(f); err == nil {
		t.Error("expected unknown-function error")
	}
	// builtins are fine
	a.Stmts = []Stmt{&Call{Fn: "arg", Args: []Operand{&ConstInt{Val: 0}},
		Dst: &Ref{Sym: f.NewTemp(IntType)}}}
	if err := Verify(f); err != nil {
		t.Errorf("builtin call rejected: %v", err)
	}
}

func TestVerifySSADetectsDoubleDef(t *testing.T) {
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	a := f.NewBlock()
	f.Entry = a
	a.Term = Term{Kind: TermRet}
	x := f.NewTemp(IntType)
	a.Stmts = []Stmt{
		&Assign{Dst: &Ref{Sym: x, Ver: 1}, RK: RHSCopy, A: &ConstInt{Val: 1}},
		&Assign{Dst: &Ref{Sym: x, Ver: 1}, RK: RHSCopy, A: &ConstInt{Val: 2}},
	}
	if err := VerifySSA(f); err == nil {
		t.Error("expected double-definition error")
	}
}

func TestSymInMemory(t *testing.T) {
	prog := NewProgram()
	g := prog.NewGlobal("g", IntType)
	if !g.InMemory() {
		t.Error("globals are memory-resident")
	}
	f := prog.NewFunc("f", VoidType)
	x := f.NewSym("x", IntType, SymLocal)
	if x.InMemory() {
		t.Error("plain scalar local is register-resident")
	}
	x.AddrTaken = true
	if !x.InMemory() {
		t.Error("address-taken local is memory-resident")
	}
	arr := f.NewSym("a", ArrayOf(IntType, 4), SymLocal)
	if !arr.InMemory() {
		t.Error("aggregates are memory-resident")
	}
	v := &Sym{Name: "v$1", Kind: SymVirtual, Type: VoidType}
	if v.InMemory() {
		t.Error("virtual variables have no storage")
	}
}

func TestGlobalAddressAssignment(t *testing.T) {
	prog := NewProgram()
	a := prog.NewGlobal("a", IntType)
	b := prog.NewGlobal("b", ArrayOf(IntType, 5))
	c := prog.NewGlobal("c", FloatType)
	if a.Addr != 0 || b.Addr != 1 || c.Addr != 6 {
		t.Errorf("addresses %d,%d,%d; want 0,1,6", a.Addr, b.Addr, c.Addr)
	}
	if prog.GlobSize != 7 {
		t.Errorf("GlobSize = %d, want 7", prog.GlobSize)
	}
}

func TestFrameOffsets(t *testing.T) {
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	r := f.NewSym("r", IntType, SymLocal) // register-resident
	m1 := f.NewSym("m1", IntType, SymLocal)
	m1.AddrTaken = true
	m2 := f.NewSym("m2", ArrayOf(FloatType, 3), SymLocal)
	f.AssignFrameOffsets()
	if f.FrameSize != 4 {
		t.Errorf("FrameSize = %d, want 4", f.FrameSize)
	}
	if m1.Addr == m2.Addr {
		t.Error("distinct locals share a frame slot")
	}
	_ = r
}

func TestSyntaxKeysIdenticalTrees(t *testing.T) {
	// two loads through the same address expression must share a key;
	// a different expression must not
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	prog.FuncMap["f"] = f
	b := f.NewBlock()
	f.Entry = b
	b.Term = Term{Kind: TermRet}

	p := f.NewSym("p", PtrTo(IntType), SymParam)
	q := f.NewSym("q", PtrTo(IntType), SymParam)
	t1 := f.NewTemp(IntType)
	t2 := f.NewTemp(IntType)
	t3 := f.NewTemp(IntType)
	ld1 := &Assign{Dst: &Ref{Sym: t1}, RK: RHSLoad, A: &Ref{Sym: p}, Site: 1}
	ld2 := &Assign{Dst: &Ref{Sym: t2}, RK: RHSLoad, A: &Ref{Sym: p}, Site: 2}
	ld3 := &Assign{Dst: &Ref{Sym: t3}, RK: RHSLoad, A: &Ref{Sym: q}, Site: 3}
	b.Stmts = []Stmt{ld1, ld2, ld3}

	keys := SyntaxKeys(f)
	if keys[ld1] != keys[ld2] {
		t.Errorf("identical *p loads have different keys: %q vs %q", keys[ld1], keys[ld2])
	}
	if keys[ld1] == keys[ld3] {
		t.Errorf("*p and *q share a key: %q", keys[ld1])
	}
}

func TestSyntaxKeysChaseSingleDefTemps(t *testing.T) {
	// t = a + 4; load *t twice through different temps with the same tree
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	prog.FuncMap["f"] = f
	blk := f.NewBlock()
	f.Entry = blk
	blk.Term = Term{Kind: TermRet}

	a := f.NewSym("a", PtrTo(IntType), SymParam)
	u1 := f.NewTemp(PtrTo(IntType))
	u2 := f.NewTemp(PtrTo(IntType))
	d1 := f.NewTemp(IntType)
	d2 := f.NewTemp(IntType)
	add1 := &Assign{Dst: &Ref{Sym: u1}, RK: RHSBinary, Op: OpAdd, A: &Ref{Sym: a}, B: &ConstInt{Val: 4}}
	add2 := &Assign{Dst: &Ref{Sym: u2}, RK: RHSBinary, Op: OpAdd, A: &Ref{Sym: a}, B: &ConstInt{Val: 4}}
	ld1 := &Assign{Dst: &Ref{Sym: d1}, RK: RHSLoad, A: &Ref{Sym: u1}, Site: 1}
	ld2 := &Assign{Dst: &Ref{Sym: d2}, RK: RHSLoad, A: &Ref{Sym: u2}, Site: 2}
	blk.Stmts = []Stmt{add1, add2, ld1, ld2}

	keys := SyntaxKeys(f)
	if keys[ld1] != keys[ld2] {
		t.Errorf("same-tree loads differ: %q vs %q", keys[ld1], keys[ld2])
	}
	if !strings.Contains(keys[ld1], "+") {
		t.Errorf("key should contain the reconstructed tree, got %q", keys[ld1])
	}
}

func TestSyntaxKeysCommutativeCanonicalization(t *testing.T) {
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	prog.FuncMap["f"] = f
	blk := f.NewBlock()
	f.Entry = blk
	blk.Term = Term{Kind: TermRet}

	a := f.NewSym("a", PtrTo(IntType), SymParam)
	b := f.NewSym("b", IntType, SymParam)
	u1 := f.NewTemp(PtrTo(IntType))
	u2 := f.NewTemp(PtrTo(IntType))
	d1 := f.NewTemp(IntType)
	d2 := f.NewTemp(IntType)
	blk.Stmts = []Stmt{
		&Assign{Dst: &Ref{Sym: u1}, RK: RHSBinary, Op: OpAdd, A: &Ref{Sym: a}, B: &Ref{Sym: b}},
		&Assign{Dst: &Ref{Sym: u2}, RK: RHSBinary, Op: OpAdd, A: &Ref{Sym: b}, B: &Ref{Sym: a}},
	}
	ld1 := &Assign{Dst: &Ref{Sym: d1}, RK: RHSLoad, A: &Ref{Sym: u1}, Site: 1}
	ld2 := &Assign{Dst: &Ref{Sym: d2}, RK: RHSLoad, A: &Ref{Sym: u2}, Site: 2}
	blk.Stmts = append(blk.Stmts, ld1, ld2)

	keys := SyntaxKeys(f)
	if keys[ld1] != keys[ld2] {
		t.Errorf("a+b and b+a should canonicalize to one key: %q vs %q", keys[ld1], keys[ld2])
	}
}

func TestStmtStringForms(t *testing.T) {
	x := &Sym{Name: "x", Type: IntType}
	v := &Sym{Name: "v$0", Kind: SymVirtual, Type: VoidType}
	a := &Assign{Dst: &Ref{Sym: x, Ver: 2}, RK: RHSBinary, Op: OpAdd,
		A: &Ref{Sym: x, Ver: 1}, B: &ConstInt{Val: 1}}
	if got := a.String(); got != "x_2 = x_1 + 1" {
		t.Errorf("Assign.String() = %q", got)
	}
	st := &IStore{Addr: &Ref{Sym: x, Ver: 1}, Val: &ConstInt{Val: 9},
		Chis: []*Chi{{Sym: v, NewVer: 2, OldVer: 1, Spec: true}}}
	s := st.String()
	if !strings.Contains(s, "*x_1 = 9") || !strings.Contains(s, "chi_s") {
		t.Errorf("IStore.String() = %q", s)
	}
	mu := &Mu{Sym: v, Ver: 3, Spec: true}
	if mu.String() != "mu_s(v$0_3)" {
		t.Errorf("Mu.String() = %q", mu.String())
	}
	spec := SpecFlags{AdvLoad: true, SpecLoad: true}
	if spec.String() != " <ld.a,ld.s>" {
		t.Errorf("SpecFlags.String() = %q", spec.String())
	}
}

func TestRemoveUnreachable(t *testing.T) {
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	a := f.NewBlock()
	b := f.NewBlock()
	dead := f.NewBlock()
	f.Entry = a
	Connect(a, b)
	Connect(dead, b) // dead -> b, but dead itself is unreachable
	a.Term = Term{Kind: TermJump}
	b.Term = Term{Kind: TermRet}
	dead.Term = Term{Kind: TermJump}
	f.RemoveUnreachable()
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(f.Blocks))
	}
	if got := len(b.Preds); got != 1 {
		t.Errorf("b should keep only the live pred, has %d", got)
	}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestPreorderWalkOrder(t *testing.T) {
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	a, b, c := f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = a
	Connect(a, b)
	Connect(a, c)
	a.Term = Term{Kind: TermCond, Cond: &ConstInt{Val: 1}}
	b.Term = Term{Kind: TermRet}
	c.Term = Term{Kind: TermRet}
	dt := BuildDomTree(f)
	var enter, leave []int
	dt.PreorderWalk(func(blk *Block) { enter = append(enter, blk.ID) },
		func(blk *Block) { leave = append(leave, blk.ID) })
	if len(enter) != 3 || enter[0] != a.ID {
		t.Errorf("enter order %v", enter)
	}
	if len(leave) != 3 || leave[len(leave)-1] != a.ID {
		t.Errorf("leave order %v (root leaves last)", leave)
	}
}

func TestProgramStringIsStable(t *testing.T) {
	prog := NewProgram()
	prog.NewGlobal("beta", IntType)
	prog.NewGlobal("alpha", FloatType)
	f := prog.NewFunc("f", IntType)
	b := f.NewBlock()
	f.Entry = b
	x := f.NewTemp(IntType)
	b.Stmts = []Stmt{&Assign{Dst: &Ref{Sym: x, Ver: 1}, RK: RHSCopy, A: &ConstInt{Val: 1}}}
	b.Term = Term{Kind: TermRet, Val: &Ref{Sym: x, Ver: 1}}
	first := prog.String()
	for i := 0; i < 5; i++ {
		if prog.String() != first {
			t.Fatal("Program.String() not deterministic")
		}
	}
	if !strings.Contains(first, "globals:") || !strings.Contains(first, "func f()") {
		t.Errorf("rendering missing sections:\n%s", first)
	}
}
