package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCFG builds a connected CFG with n blocks and some extra edges from
// the given source of randomness. Block 0 is the entry; every block gets a
// terminator consistent with its successor count.
func randomCFG(rng *rand.Rand, n int) *Func {
	prog := NewProgram()
	f := prog.NewFunc("f", IntType)
	blocks := make([]*Block, n)
	for i := 0; i < n; i++ {
		blocks[i] = f.NewBlock()
	}
	f.Entry = blocks[0]
	// spanning structure: each block i>0 gets an edge from some j<i, so
	// everything is reachable
	for i := 1; i < n; i++ {
		Connect(blocks[rng.Intn(i)], blocks[i])
	}
	// extra edges, including back edges
	extra := rng.Intn(n + 1)
	for e := 0; e < extra; e++ {
		from := blocks[rng.Intn(n)]
		to := blocks[rng.Intn(n)]
		if len(from.Succs) >= 2 {
			continue
		}
		Connect(from, to)
	}
	// terminators
	cond := &ConstInt{Val: 1}
	for _, b := range blocks {
		switch len(b.Succs) {
		case 0:
			b.Term = Term{Kind: TermRet}
		case 1:
			b.Term = Term{Kind: TermJump}
		default:
			b.Term = Term{Kind: TermCond, Cond: cond}
		}
	}
	return f
}

// naiveDominators computes dominators by the textbook dataflow definition,
// as the oracle for the Cooper-Harvey-Kennedy implementation.
func naiveDominators(f *Func) map[*Block]map[*Block]bool {
	all := map[*Block]bool{}
	for _, b := range f.Blocks {
		all[b] = true
	}
	dom := map[*Block]map[*Block]bool{}
	for _, b := range f.Blocks {
		if b == f.Entry {
			dom[b] = map[*Block]bool{b: true}
		} else {
			full := map[*Block]bool{}
			for x := range all {
				full[x] = true
			}
			dom[b] = full
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if b == f.Entry {
				continue
			}
			var inter map[*Block]bool
			for _, p := range b.Preds {
				if inter == nil {
					inter = map[*Block]bool{}
					for x := range dom[p] {
						inter[x] = true
					}
				} else {
					for x := range inter {
						if !dom[p][x] {
							delete(inter, x)
						}
					}
				}
			}
			if inter == nil {
				inter = map[*Block]bool{}
			}
			inter[b] = true
			if len(inter) != len(dom[b]) {
				dom[b] = inter
				changed = true
				continue
			}
			for x := range inter {
				if !dom[b][x] {
					dom[b] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

func TestDominatorsMatchNaiveOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(sz)%14
		f := randomCFG(rng, n)
		dt := BuildDomTree(f)
		oracle := naiveDominators(f)
		for _, b := range f.Blocks {
			for _, a := range f.Blocks {
				want := oracle[b][a]
				got := dt.Dominates(a, b)
				if want != got {
					t.Logf("seed=%d n=%d: Dominates(B%d, B%d) = %v, oracle %v", seed, n, a.ID, b.ID, got, want)
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDominanceFrontierDefinition(t *testing.T) {
	// b ∈ DF(a) iff a dominates a predecessor of b but does not strictly
	// dominate b
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(sz)%14
		f := randomCFG(rng, n)
		dt := BuildDomTree(f)
		inFrontier := func(a, b *Block) bool {
			for _, x := range dt.Frontier[a] {
				if x == b {
					return true
				}
			}
			return false
		}
		for _, a := range f.Blocks {
			for _, b := range f.Blocks {
				domPred := false
				for _, p := range b.Preds {
					if dt.Dominates(a, p) {
						domPred = true
					}
				}
				want := domPred && !(dt.Dominates(a, b) && a != b)
				if want != inFrontier(a, b) {
					t.Logf("seed=%d: DF mismatch a=B%d b=B%d want=%v", seed, a.ID, b.ID, want)
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIteratedFrontierIsClosed(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz)%12
		f := randomCFG(rng, n)
		dt := BuildDomTree(f)
		// pick a random seed set
		var in []*Block
		for _, b := range f.Blocks {
			if rng.Intn(3) == 0 {
				in = append(in, b)
			}
		}
		if len(in) == 0 {
			in = append(in, f.Entry)
		}
		df := dt.IteratedFrontier(in)
		set := map[*Block]bool{}
		for _, b := range df {
			set[b] = true
		}
		// closure property: DF(in ∪ df) ⊆ df
		for _, b := range append(append([]*Block{}, in...), df...) {
			for _, x := range dt.Frontier[b] {
				if !set[x] {
					t.Logf("seed=%d: DF+ not closed: B%d ∈ DF(B%d) missing", seed, x.ID, b.ID)
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRPOVisitsAllReachable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		f := randomCFG(rng, 2+rng.Intn(20))
		order := f.RPO()
		if len(order) != len(f.Blocks) {
			t.Fatalf("RPO %d blocks, func has %d (all are reachable by construction)", len(order), len(f.Blocks))
		}
		if order[0] != f.Entry {
			t.Fatal("RPO must start at the entry")
		}
	}
}

func TestFindLoopsSimple(t *testing.T) {
	// entry -> header <-> body; header -> exit
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	entry, header, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = entry
	Connect(entry, header)
	Connect(header, body)
	Connect(header, exit)
	Connect(body, header)
	entry.Term = Term{Kind: TermJump}
	header.Term = Term{Kind: TermCond, Cond: &ConstInt{Val: 1}}
	body.Term = Term{Kind: TermJump}
	exit.Term = Term{Kind: TermRet}

	dt := BuildDomTree(f)
	loops, innermost := FindLoops(f, dt)
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	l := loops[0]
	if l.Header != header {
		t.Errorf("loop header = B%d, want B%d", l.Header.ID, header.ID)
	}
	if !l.Blocks[body] || !l.Blocks[header] {
		t.Error("loop body must contain header and body")
	}
	if l.Blocks[exit] || l.Blocks[entry] {
		t.Error("loop must not contain entry/exit")
	}
	if innermost[body] != l {
		t.Error("innermost[body] wrong")
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d, want 1", l.Depth)
	}
}

func TestFindLoopsNested(t *testing.T) {
	// entry -> h1 -> h2 <-> b2 ; h2 -> l1 -> h1 ; h1 -> exit
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	entry, h1, h2, b2, l1, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = entry
	Connect(entry, h1)
	Connect(h1, h2)
	Connect(h1, exit)
	Connect(h2, b2)
	Connect(h2, l1)
	Connect(b2, h2)
	Connect(l1, h1)
	for _, b := range f.Blocks {
		switch len(b.Succs) {
		case 0:
			b.Term = Term{Kind: TermRet}
		case 1:
			b.Term = Term{Kind: TermJump}
		default:
			b.Term = Term{Kind: TermCond, Cond: &ConstInt{Val: 1}}
		}
	}
	dt := BuildDomTree(f)
	loops, innermost := FindLoops(f, dt)
	if len(loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(loops))
	}
	var inner, outer *Loop
	for _, l := range loops {
		if l.Header == h2 {
			inner = l
		}
		if l.Header == h1 {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("loops not identified by header")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths inner=%d outer=%d, want 2/1", inner.Depth, outer.Depth)
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent should be the outer loop")
	}
	if innermost[b2] != inner {
		t.Error("b2's innermost loop should be the inner loop")
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	prog := NewProgram()
	f := prog.NewFunc("f", VoidType)
	a, b, c := f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = a
	// a conditionally branches to b and c; b also jumps to c → edge a→c
	// is critical (a has 2 succs, c has 2 preds)
	Connect(a, b)
	Connect(a, c)
	Connect(b, c)
	a.Term = Term{Kind: TermCond, Cond: &ConstInt{Val: 1}}
	b.Term = Term{Kind: TermJump}
	c.Term = Term{Kind: TermRet}

	f.SplitCriticalEdges()
	if err := Verify(f); err != nil {
		t.Fatalf("verify after split: %v", err)
	}
	for _, blk := range f.Blocks {
		if len(blk.Succs) >= 2 {
			for _, s := range blk.Succs {
				if len(s.Preds) >= 2 {
					t.Errorf("critical edge B%d->B%d survived", blk.ID, s.ID)
				}
			}
		}
	}
}
