package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Phi is a variable phi node (the lowercase φ of the paper, as opposed to
// SSAPRE's expression Φ). Args are parallel to Block.Preds.
type Phi struct {
	Sym  *Sym
	Ver  int
	Args []*Ref

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

func (p *Phi) String() string {
	var args []string
	for _, a := range p.Args {
		args = append(args, a.String())
	}
	return fmt.Sprintf("%s_%d = phi(%s)", p.Sym.Name, p.Ver, strings.Join(args, ", "))
}

// TermKind discriminates block terminators.
type TermKind int

const (
	// TermJump is an unconditional branch to Succs[0].
	TermJump TermKind = iota
	// TermCond branches on Cond != 0 to Succs[0] (true) else Succs[1].
	TermCond
	// TermRet returns from the function, optionally with a value.
	TermRet
)

// Term is a basic-block terminator.
type Term struct {
	Kind TermKind
	Cond Operand // for TermCond
	Val  Operand // for TermRet, may be nil
}

// Block is a basic block: phis, straight-line statements, one terminator.
type Block struct {
	ID    int
	Stmts []Stmt
	Term  Term
	Preds []*Block
	Succs []*Block
	Phis  []*Phi

	// Freq is the execution frequency of the block from edge profiling
	// (or a static estimate); EdgeFreq[i] is the frequency of the edge to
	// Succs[i].
	Freq     float64
	EdgeFreq []float64

	aidx int32 // slab index +1 (see arena.go); 0 = literal-built
}

// PredIndex returns the position of p in b.Preds, or -1.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// SuccIndex returns the position of s in b.Succs, or -1.
func (b *Block) SuccIndex(s *Block) int {
	for i, q := range b.Succs {
		if q == s {
			return i
		}
	}
	return -1
}

// Func is a single function: parameters, symbols, and a CFG.
type Func struct {
	Name    string
	Params  []*Sym
	RetType *Type
	Syms    []*Sym // all function-scope symbols (params, locals, temps, virtuals)
	Blocks  []*Block
	Entry   *Block
	Exit    *Block // synthetic exit; every TermRet block is a pred

	// FrameSize is the number of memory slots occupied by memory-resident
	// locals (assigned by AssignFrameOffsets).
	FrameSize int

	prog    *Program
	nextSym int
	nextBlk int
	arena   *arena // slab allocator for this function's IR objects (see arena.go)
}

// Program is a whole MiniC translation unit.
type Program struct {
	Funcs    []*Func
	FuncMap  map[string]*Func
	Globals  []*Sym
	GlobSize int // total slots of the global segment

	// GlobalInit holds initial slot values for the global segment
	// (sparse; unset slots are zero).
	GlobalInit map[int]uint64

	nextGlobal int
	nextSite   int
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{FuncMap: map[string]*Func{}, GlobalInit: map[int]uint64{}}
}

// NewFunc creates a function, registers it, and returns it.
func (p *Program) NewFunc(name string, ret *Type) *Func {
	f := &Func{Name: name, RetType: ret, prog: p}
	p.Funcs = append(p.Funcs, f)
	p.FuncMap[name] = f
	return f
}

// NewGlobal creates a global symbol and assigns its address.
func (p *Program) NewGlobal(name string, t *Type) *Sym {
	s := &Sym{Name: name, Type: t, Kind: SymGlobal, ID: p.nextGlobal, Class: -1, Addr: p.GlobSize}
	p.nextGlobal++
	p.GlobSize += t.Size()
	p.Globals = append(p.Globals, s)
	return s
}

// NextSite returns a fresh program-unique site id (used for call sites and
// allocation sites, which name heap LOCs in alias profiles).
func (p *Program) NextSite() int {
	p.nextSite++
	return p.nextSite
}

// NumSites returns how many site ids have been handed out.
func (p *Program) NumSites() int { return p.nextSite }

// Prog returns the program owning the function.
func (f *Func) Prog() *Program { return f.prog }

// NewSym creates a function-scope symbol (arena-allocated; see arena.go).
func (f *Func) NewSym(name string, t *Type, kind SymKind) *Sym {
	s, i := f.arenaOf().syms.alloc(Sym{Name: name, Type: t, Kind: kind, ID: f.nextSym, Class: -1})
	s.aidx = i + 1
	f.nextSym++
	f.Syms = append(f.Syms, s)
	if kind == SymParam {
		f.Params = append(f.Params, s)
	}
	return s
}

// NewTemp creates a fresh compiler temporary of type t.
func (f *Func) NewTemp(t *Type) *Sym {
	return f.NewSym(fmt.Sprintf("t%d", f.nextSym), t, SymTemp)
}

// NewBlock appends a new empty block to the function
// (arena-allocated; see arena.go).
func (f *Func) NewBlock() *Block {
	b, i := f.arenaOf().blocks.alloc(Block{ID: f.nextBlk})
	b.aidx = i + 1
	f.nextBlk++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Connect adds a CFG edge from b to s.
func Connect(b, s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// AssignFrameOffsets lays out memory-resident locals in the frame and
// records the frame size.
func (f *Func) AssignFrameOffsets() {
	off := 0
	for _, s := range f.Syms {
		if s.Kind == SymVirtual || s.Kind == SymGlobal {
			continue
		}
		if s.InMemory() {
			s.Addr = off
			off += s.Type.Size()
		}
	}
	f.FrameSize = off
}

// SplitCriticalEdges splits every edge whose source has multiple successors
// and whose destination has multiple predecessors, inserting an empty
// jump-only block. SSAPRE requires this so insertions on edges have a home.
func (f *Func) SplitCriticalEdges() {
	// Collect first: we mutate the block list.
	type edge struct {
		from *Block
		si   int
	}
	var crit []edge
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for i, s := range b.Succs {
			if len(s.Preds) >= 2 {
				crit = append(crit, edge{b, i})
			}
		}
	}
	for _, e := range crit {
		from := e.from
		to := from.Succs[e.si]
		mid := f.NewBlock()
		mid.Term = Term{Kind: TermJump}
		mid.Succs = []*Block{to}
		mid.Preds = []*Block{from}
		from.Succs[e.si] = mid
		pi := to.PredIndex(from)
		to.Preds[pi] = mid
	}
}

// RPO returns the blocks of f in reverse post-order from the entry.
func (f *Func) RPO() []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if f.Entry != nil {
		dfs(f.Entry)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// RemoveUnreachable deletes blocks not reachable from the entry and fixes
// up predecessor lists.
func (f *Func) RemoveUnreachable() {
	reach := make(map[*Block]bool)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		reach[b] = true
		for _, s := range b.Succs {
			if !reach[s] {
				dfs(s)
			}
		}
	}
	if f.Entry != nil {
		dfs(f.Entry)
	}
	var kept []*Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
			var preds []*Block
			for _, p := range b.Preds {
				if reach[p] {
					preds = append(preds, p)
				}
			}
			b.Preds = preds
		}
	}
	f.Blocks = kept
}

// String renders the function IR for golden tests and debugging.
func (f *Func) String() string {
	var b strings.Builder
	var params []string
	for _, p := range f.Params {
		params = append(params, fmt.Sprintf("%s %s", p.Type, p.Name))
	}
	fmt.Fprintf(&b, "func %s(%s) %s {\n", f.Name, strings.Join(params, ", "), f.RetType)
	for _, blk := range f.Blocks {
		var preds []string
		for _, p := range blk.Preds {
			preds = append(preds, fmt.Sprintf("B%d", p.ID))
		}
		fmt.Fprintf(&b, "B%d:", blk.ID)
		if len(preds) > 0 {
			fmt.Fprintf(&b, "  ; preds: %s", strings.Join(preds, ","))
		}
		b.WriteString("\n")
		for _, phi := range blk.Phis {
			fmt.Fprintf(&b, "  %s\n", phi)
		}
		for _, s := range blk.Stmts {
			fmt.Fprintf(&b, "  %s\n", s)
		}
		switch blk.Term.Kind {
		case TermJump:
			if len(blk.Succs) > 0 {
				fmt.Fprintf(&b, "  goto B%d\n", blk.Succs[0].ID)
			}
		case TermCond:
			fmt.Fprintf(&b, "  if %s goto B%d else B%d\n", blk.Term.Cond, blk.Succs[0].ID, blk.Succs[1].ID)
		case TermRet:
			if blk.Term.Val != nil {
				fmt.Fprintf(&b, "  return %s\n", blk.Term.Val)
			} else {
				fmt.Fprintf(&b, "  return\n")
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	if len(p.Globals) > 0 {
		var gs []string
		for _, g := range p.Globals {
			gs = append(gs, fmt.Sprintf("%s %s@%d", g.Type, g.Name, g.Addr))
		}
		sort.Strings(gs)
		fmt.Fprintf(&b, "globals: %s\n", strings.Join(gs, ", "))
	}
	for _, f := range p.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}
