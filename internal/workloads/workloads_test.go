package workloads

import (
	"fmt"
	"strings"
	"testing"

	"repro"
)

// TestAllKernelsAllModes compiles and runs every kernel under every
// speculation configuration and checks VM output against the reference
// interpreter, on both the training and the reference input.
func TestAllKernelsAllModes(t *testing.T) {
	configs := []repro.Config{
		{OptimizeOff: true},
		{Spec: repro.SpecOff},
		{Spec: repro.SpecProfile},
		{Spec: repro.SpecHeuristic},
		{AggressivePromotion: true},
	}
	for _, w := range All() {
		for _, cfg := range configs {
			cfg.ProfileArgs = w.ProfileArgs
			name := fmt.Sprintf("%s/spec=%v_opt=%v_agg=%v", w.Name, cfg.Spec, !cfg.OptimizeOff, cfg.AggressivePromotion)
			t.Run(name, func(t *testing.T) {
				c, err := repro.Compile(w.Src, cfg)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				for _, args := range [][]int64{w.ProfileArgs, w.RefArgs} {
					want, err := c.RunReference(args)
					if err != nil {
						t.Fatalf("reference: %v", err)
					}
					got, err := c.Run(args)
					if err != nil {
						t.Fatalf("vm: %v", err)
					}
					if got.Output != want.Output {
						t.Errorf("args=%v output mismatch:\n got %q\nwant %q", args, got.Output, want.Output)
					}
				}
			})
		}
	}
}

// TestSpeculationWinsWhereThePaperSays checks the shape of Fig. 10: the
// kernels the paper highlights (equake, mcf, art, ammp, twolf) must show a
// load reduction under profile-guided speculation, and mis-speculation
// must be rare on the same-shape input.
func TestSpeculationWinsWhereThePaperSays(t *testing.T) {
	winners := map[string]bool{"equake": true, "mcf": true, "art": true, "ammp": true, "twolf": true}
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			base, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecOff, ProfileArgs: w.ProfileArgs})
			if err != nil {
				t.Fatalf("compile base: %v", err)
			}
			spec, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs})
			if err != nil {
				t.Fatalf("compile spec: %v", err)
			}
			rb, err := base.Run(w.RefArgs)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := spec.Run(w.RefArgs)
			if err != nil {
				t.Fatal(err)
			}
			reduction := 1 - float64(rs.Counters.LoadsRetired-rs.Counters.CheckLoads)/
				float64(rb.Counters.LoadsRetired)
			t.Logf("%s: plain-load reduction %.1f%%, checks %d, failed %d, cycles %d -> %d",
				w.Name, reduction*100, rs.Counters.CheckLoads, rs.Counters.FailedChecks,
				rb.Counters.Cycles, rs.Counters.Cycles)
			if winners[w.Name] {
				if reduction <= 0.02 {
					t.Errorf("%s should show a load reduction > 2%%, got %.2f%%", w.Name, reduction*100)
				}
				if rs.Counters.Cycles >= rb.Counters.Cycles {
					t.Errorf("%s: speculative version not faster (%d vs %d cycles)",
						w.Name, rs.Counters.Cycles, rb.Counters.Cycles)
				}
			}
			// mis-speculation must stay low relative to checks
			if rs.Counters.CheckLoads > 0 {
				miss := float64(rs.Counters.FailedChecks) / float64(rs.Counters.CheckLoads)
				if miss > 0.5 {
					t.Errorf("%s: mis-speculation ratio %.2f too high", w.Name, miss)
				}
			}
		})
	}
}

// TestPipelinedScheduledEquivalence runs every kernel with the instruction
// scheduler and the pipelined timing model: semantics must be unchanged
// and cycles must not regress versus the unscheduled pipelined build.
func TestPipelinedScheduledEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			base := repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs, Machine: repro.PipelinedMachine()}
			sched := base
			sched.Schedule = true
			cb, err := repro.Compile(w.Src, base)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := repro.Compile(w.Src, sched)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := cb.Run(w.RefArgs)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := cs.Run(w.RefArgs)
			if err != nil {
				t.Fatal(err)
			}
			if rb.Output != rs.Output {
				t.Fatalf("scheduling changed output: %q vs %q", rs.Output, rb.Output)
			}
			if rs.Counters.Cycles > rb.Counters.Cycles {
				t.Errorf("scheduling regressed pipelined cycles: %d -> %d",
					rb.Counters.Cycles, rs.Counters.Cycles)
			}
			t.Logf("%s pipelined cycles: %d -> %d", w.Name, rb.Counters.Cycles, rs.Counters.Cycles)
		})
	}
}

// TestWorkloadInventory checks the suite's structural claims: eight
// kernels named after the paper's benchmarks, each with training and
// reference inputs, each parseable, and each containing the memory
// pattern its description promises.
func TestWorkloadInventory(t *testing.T) {
	ws := All()
	if len(ws) != 8 {
		t.Fatalf("want 8 kernels, got %d", len(ws))
	}
	wantNames := map[string]bool{
		"gzip": true, "vpr": true, "mcf": true, "equake": true,
		"art": true, "ammp": true, "bzip2": true, "twolf": true,
	}
	for _, w := range ws {
		if !wantNames[w.Name] {
			t.Errorf("unexpected kernel %q", w.Name)
		}
		if len(w.ProfileArgs) == 0 || len(w.RefArgs) == 0 {
			t.Errorf("%s: missing inputs", w.Name)
		}
		if w.Description == "" {
			t.Errorf("%s: missing description", w.Name)
		}
		if _, ok := ByName(w.Name); !ok {
			t.Errorf("ByName(%q) failed", w.Name)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName accepted an unknown name")
	}
	// the case-study kernel must contain the smvp procedure
	eq, _ := ByName("equake")
	if !contains(eq.Src, "void smvp(") {
		t.Error("equake kernel lost its smvp procedure")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

// TestHiddenWorkloads checks the hidden set stays out of the published
// inventory (report tables and the server's workload listing depend on
// its shape) while remaining servable through Resolve, and that drift
// delivers the alias behaviour the adaptive runtime is tuned around:
// correct output everywhere, a low failure rate on the training shape,
// and heavy mis-speculation once the input drifts.
func TestHiddenWorkloads(t *testing.T) {
	for _, w := range Hidden() {
		if _, ok := ByName(w.Name); ok {
			t.Errorf("hidden kernel %q leaked into the published set", w.Name)
		}
		got, ok := Resolve(w.Name)
		if !ok || got.Name != w.Name {
			t.Errorf("Resolve(%q) failed", w.Name)
		}
	}
	if _, ok := Resolve("equake"); !ok {
		t.Error("Resolve must still find published kernels")
	}

	w, _ := Resolve("drift")
	cfg := repro.Config{Spec: repro.SpecCost, SpecThreshold: 1, ProfileArgs: w.ProfileArgs}
	c, err := repro.Compile(w.Src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rates := make(map[int64]float64)
	for _, mod := range []int64{16, 2, 64} {
		args := []int64{256, mod}
		want, err := c.RunReference(args)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(args)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != want.Output {
			t.Errorf("mod=%d output mismatch: got %q want %q", mod, res.Output, want.Output)
		}
		hot := res.PerFunc["hot"]
		if hot.CheckLoads == 0 {
			t.Fatalf("mod=%d: hot retired no check loads; kernel lost its speculation", mod)
		}
		rates[mod] = float64(hot.FailedChecks) / float64(hot.CheckLoads)
	}
	if rates[16] > 0.1 {
		t.Errorf("training-shape failure rate %.3f too high", rates[16])
	}
	if rates[2] < 0.25 {
		t.Errorf("drifted failure rate %.3f too low to trigger demotion", rates[2])
	}
	if rates[64] > 0.05 {
		t.Errorf("recovered failure rate %.3f should look clean", rates[64])
	}
}
