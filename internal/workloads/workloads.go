// Package workloads provides the eight MiniC benchmark kernels modelled on
// the SPEC2000 programs evaluated in the paper (§5.2): each reproduces the
// memory-aliasing structure that drives the paper's numbers — references
// that the compile-time alias analysis must treat as may-aliases (all
// allocations flow through shared helpers, so Steensgaard merges their
// classes, as ORC's per-module analysis conservatively does for pointer
// parameters) but that rarely or never collide at run time. The
// speculative optimizer's win, check ratio and mis-speculation ratio on
// these kernels reproduce the shape of the paper's Figures 10-12.
package workloads

// Workload couples a kernel with its training and reference inputs.
type Workload struct {
	Name string
	// Description of which SPEC2000 program the kernel models and why.
	Description string
	Src         string
	// ProfileArgs is the training input (alias/edge profiling run).
	ProfileArgs []int64
	// RefArgs is the reference input (measurement run); deliberately
	// larger and in some kernels differently shaped than the training
	// input, exercising input sensitivity.
	RefArgs []int64
	// FPHeavy marks kernels dominated by floating-point loads (9-cycle
	// L2 latency on the modelled Itanium).
	FPHeavy bool
}

// All returns the eight kernels in the paper's presentation order.
func All() []Workload {
	return []Workload{
		gzip(), vpr(), mcf(), equake(), art(), ammp(), bzip2(), twolf(),
	}
}

// ByName returns the named kernel.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Hidden returns the kernels that are servable by name but excluded
// from All(), so the §5 report tables and the server's workload listing
// keep their published shape. drift is the adaptive-tiering exercise
// kernel: its alias behaviour is an input parameter, which makes it
// useless for the paper's figures and ideal for mis-speculation drift.
func Hidden() []Workload {
	return []Workload{drift()}
}

// Resolve returns the named kernel, searching the published set first
// and the hidden set second. Every by-name consumer (the eval API, the
// machine sweep, the adaptive server) resolves through here.
func Resolve(name string) (Workload, bool) {
	if w, ok := ByName(name); ok {
		return w, true
	}
	for _, w := range Hidden() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// drift is the adaptive-tiering kernel: the second argument (mod)
// controls how often the hot function's stores collide with the
// promoted global, so serving traffic can drift arbitrarily far from
// the training input. hot carries a site that aliases 1/mod of the
// time (1/16 under training) plus a site the training run never sees
// alias but that collides on half the iterations once mod drops below
// 4; stable's store target is input-invariant and never aliases, so a
// policy that gives up speculation program-wide forfeits its win.
func drift() Workload {
	return Workload{
		Name:        "drift",
		Description: "alias drift kernel for the adaptive tiering runtime (hidden from report tables)",
		Src: `
int acc = 0;
int scratch = 0;

int hot(int n, int mod) {
	int sum = 0;
	for (int i = 0; i < n; i++) {
		int *p;
		int *r;
		if (i % mod == 0) { p = &acc; } else { p = &scratch; }
		if (mod < 4 && i % 2 == 0) { r = &acc; } else { r = &scratch; }
		int x = acc;
		*p = x + i;
		int a = acc;
		*r = a + i;
		int y = acc;
		sum = sum + x + a + y;
	}
	return sum;
}

int stable(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		int *q;
		if (n < 0) { q = &acc; } else { q = &scratch; }
		int x = acc;
		*q = x + i;
		int y = acc;
		s = s + x + y;
	}
	return s;
}

int main() {
	int n = arg(0);
	int mod = arg(1);
	int sum = hot(n, mod);
	sum = sum + stable(n);
	print(sum);
	return 0;
}`,
		ProfileArgs: []int64{256, 16},
		RefArgs:     []int64{256, 16},
	}
}

// equake models 183.equake's smvp (the paper's §5.1 case study): a sparse
// matrix-vector product where the compiler cannot separate the matrix A,
// the input vector v and the output vector w (all come from the shared
// allocator), yet they never overlap at run time. A-entry loads repeat
// within an iteration across w stores, and v[i] loads are loop-invariant
// in the inner loop.
func equake() Workload {
	return Workload{
		Name:        "equake",
		Description: "183.equake smvp sparse matrix-vector kernel (paper Fig. 9)",
		FPHeavy:     true,
		Src: `
double *dvec(int n) { return (double*)malloc(n); }
int *ivec(int n) { return (int*)malloc(n); }

void smvp(int nodes, double *A0, double *A1, double *A2,
          int *Acol, int *Aindex, double *v, double *w) {
	for (int i = 0; i < nodes; i++) {
		int anext = Aindex[i];
		int alast = Aindex[i + 1];
		double sum0 = 0.0;
		double sum1 = 0.0;
		double sum2 = 0.0;
		while (anext < alast) {
			int col = Acol[anext];
			sum0 += A0[anext] * v[col * 3];
			sum1 += A1[anext] * v[col * 3 + 1];
			sum2 += A2[anext] * v[col * 3 + 2];
			w[col * 3]     += A0[anext] * v[i * 3];
			w[col * 3 + 1] += A1[anext] * v[i * 3 + 1];
			w[col * 3 + 2] += A2[anext] * v[i * 3 + 2];
			anext++;
		}
		w[i * 3]     += sum0;
		w[i * 3 + 1] += sum1;
		w[i * 3 + 2] += sum2;
	}
}

int main() {
	int nodes = arg(0);
	int iters = arg(1);
	int deg = 4;
	int nnz = nodes * deg;
	double *A0 = dvec(nnz);
	double *A1 = dvec(nnz);
	double *A2 = dvec(nnz);
	int *Acol = ivec(nnz);
	int *Aindex = ivec(nodes + 1);
	double *v = dvec(nodes * 3);
	double *w = dvec(nodes * 3);
	int k = 0;
	for (int i = 0; i < nodes; i++) {
		Aindex[i] = k;
		for (int d = 0; d < deg; d++) {
			Acol[k] = (i + d * 7 + 1) % nodes;
			A0[k] = 0.5 + (double)((i + d) % 9) * 0.125;
			A1[k] = 0.25 + (double)((i * 3 + d) % 5) * 0.0625;
			A2[k] = 1.0 / (double)(1 + (i + d) % 11);
			k++;
		}
	}
	Aindex[nodes] = k;
	for (int i = 0; i < nodes * 3; i++) {
		v[i] = (double)(i % 17) * 0.3;
		w[i] = 0.0;
	}
	for (int t = 0; t < iters; t++) {
		smvp(nodes, A0, A1, A2, Acol, Aindex, v, w);
	}
	double check = 0.0;
	for (int i = 0; i < nodes * 3; i++) check += w[i];
	print(check);
	return 0;
}`,
		ProfileArgs: []int64{32, 2},
		RefArgs:     []int64{128, 6},
	}
}

// mcf models 181.mcf's network-simplex pricing loop: arcs and nodes are
// heap records reached through the shared allocator; node potentials are
// re-read across arc-flow stores that never touch them.
func mcf() Workload {
	return Workload{
		Name:        "mcf",
		Description: "181.mcf network-simplex arc pricing (pointer-chasing heap records)",
		Src: `
struct nodeS {
	int potential;
	int orientation;
	int mark;
};
struct arcS {
	int cost;
	int flow;
	int tail;
	int head;
};

int *ivec(int n) { return (int*)malloc(n); }

int price(int nnodes, int deg, struct arcS *arcs, struct nodeS *nodes) {
	int pushes = 0;
	for (int i = 0; i < nnodes; i++) {
		int first = i * deg;
		int last = first + deg;
		for (int a = first; a < last; a++) {
			// nodes[i].potential is invariant here but may-aliases the
			// arc-flow stores (both come from the shared allocator)
			int red = arcs[a].cost - nodes[i].potential + nodes[arcs[a].head].potential;
			if (red < 0) {
				arcs[a].flow += 1;
				pushes++;
			} else {
				arcs[a].flow -= arcs[a].flow > 0;
			}
			if (arcs[a].cost < -349) {
				// rare price adjustment: actually writes the location the
				// speculative promotion of nodes[i].potential relies on;
				// small training inputs never execute this store
				nodes[i].potential -= 1;
			}
		}
	}
	return pushes;
}

int main() {
	int nnodes = arg(0);
	int narcs = nnodes * 4;
	int rounds = arg(1);
	struct nodeS *nodes = (struct nodeS*)malloc(nnodes * 3);
	struct arcS *arcs = (struct arcS*)malloc(narcs * 4);
	int seed = 12345;
	for (int i = 0; i < nnodes; i++) {
		seed = (seed * 1103515245 + 12345) % 2147483647;
		if (seed < 0) seed = -seed;
		nodes[i].potential = seed % 1000 - 500;
		nodes[i].orientation = i % 2;
		nodes[i].mark = 0;
	}
	for (int a = 0; a < narcs; a++) {
		seed = (seed * 1103515245 + 12345) % 2147483647;
		if (seed < 0) seed = -seed;
		arcs[a].cost = seed % 700 - 350;
		arcs[a].flow = 0;
		arcs[a].tail = a % nnodes;
		arcs[a].head = (a * 7 + 3) % nnodes;
	}
	int total = 0;
	for (int r = 0; r < rounds; r++) {
		total += price(nnodes, 4, arcs, nodes);
		nodes[r % nnodes].potential += 1;
	}
	int checksum = total;
	for (int a = 0; a < narcs; a++) checksum += arcs[a].flow;
	print(checksum);
	return 0;
}`,
		ProfileArgs: []int64{32, 3},
		RefArgs:     []int64{128, 10},
	}
}

// art models 179.art's neural-network match phase: weight matrices and
// activation vectors (all through the shared allocator) with invariant
// weight loads across activation stores.
func art() Workload {
	return Workload{
		Name:        "art",
		Description: "179.art ART neural-network F1/F2 match loops",
		FPHeavy:     true,
		Src: `
double *dvec(int n) { return (double*)malloc(n); }

void pass(int f1, int f2, double *bus, double *tds, double *y, double *u) {
	for (int j = 0; j < f2; j++) {
		double sum = 0.0;
		for (int i = 0; i < f1; i++) {
			sum += u[i] * bus[j * f1 + i];
		}
		y[j] = sum;
	}
	for (int j = 0; j < f2; j++) {
		for (int i = 0; i < f1; i++) {
			tds[j * f1 + i] += 0.001 * (u[i] - y[j] * tds[j * f1 + i]);
		}
	}
}

int main() {
	int f1 = arg(0);
	int f2 = arg(1);
	int epochs = arg(2);
	double *bus = dvec(f1 * f2);
	double *tds = dvec(f1 * f2);
	double *y = dvec(f2);
	double *u = dvec(f1);
	for (int i = 0; i < f1 * f2; i++) {
		bus[i] = 0.1 + (double)(i % 13) * 0.01;
		tds[i] = 0.2 + (double)(i % 7) * 0.02;
	}
	for (int i = 0; i < f1; i++) u[i] = (double)(i % 5) * 0.25;
	for (int e = 0; e < epochs; e++) {
		pass(f1, f2, bus, tds, y, u);
	}
	double check = 0.0;
	for (int j = 0; j < f2; j++) check += y[j];
	for (int i = 0; i < f1 * f2; i++) check += tds[i];
	print(check);
	return 0;
}`,
		ProfileArgs: []int64{16, 8, 2},
		RefArgs:     []int64{48, 24, 4},
	}
}

// ammp models 188.ammp's non-bonded force loop: coordinate and force
// vectors reached through the shared allocator; the pivot atom's
// coordinates are re-read in the inner loop across force stores that the
// compiler cannot disambiguate from them.
func ammp() Workload {
	return Workload{
		Name:        "ammp",
		Description: "188.ammp molecular-dynamics non-bonded force kernel",
		FPHeavy:     true,
		Src: `
double *dvec(int n) { return (double*)malloc(n); }

void forces(int n, double *pos, double *frc) {
	for (int i = 0; i < n; i++) {
		double fx = 0.0;
		double fy = 0.0;
		double fz = 0.0;
		for (int j = i + 1; j < n; j++) {
			// pos[i*3+k] is invariant here but may-aliases the force
			// stores below (both arrays come from the shared allocator)
			double dx = pos[j * 3] - pos[i * 3];
			double dy = pos[j * 3 + 1] - pos[i * 3 + 1];
			double dz = pos[j * 3 + 2] - pos[i * 3 + 2];
			double r2 = dx * dx + dy * dy + dz * dz + 0.5;
			double inv = 1.0 / r2;
			frc[j * 3]     -= dx * inv;
			frc[j * 3 + 1] -= dy * inv;
			frc[j * 3 + 2] -= dz * inv;
			fx += dx * inv;
			fy += dy * inv;
			fz += dz * inv;
		}
		frc[i * 3]     += fx;
		frc[i * 3 + 1] += fy;
		frc[i * 3 + 2] += fz;
	}
}

int main() {
	int n = arg(0);
	int steps = arg(1);
	double *pos = dvec(n * 3);
	double *frc = dvec(n * 3);
	for (int i = 0; i < n; i++) {
		pos[i * 3] = (double)(i % 10) * 1.5;
		pos[i * 3 + 1] = (double)((i * 3) % 7) * 0.75;
		pos[i * 3 + 2] = (double)((i * 5) % 11) * 0.4;
		frc[i * 3] = 0.0;
		frc[i * 3 + 1] = 0.0;
		frc[i * 3 + 2] = 0.0;
	}
	for (int s = 0; s < steps; s++) {
		forces(n, pos, frc);
	}
	double check = 0.0;
	for (int i = 0; i < n * 3; i++) check += frc[i];
	print(check);
	return 0;
}`,
		ProfileArgs: []int64{12, 1},
		RefArgs:     []int64{40, 3},
	}
}

// twolf models 300.twolf's placement cost evaluation: cell and net tables
// read repeatedly while trial positions are written into a shadow table.
func twolf() Workload {
	return Workload{
		Name:        "twolf",
		Description: "300.twolf standard-cell placement cost evaluation",
		Src: `
int *ivec(int n) { return (int*)malloc(n); }

int wirecost(int ncells, int pivot, int *xpos, int *ypos, int *net, int *tmp) {
	int cost = 0;
	for (int c = 0; c < ncells; c++) {
		int other = net[c];
		// the pivot position loads are invariant but may-alias the
		// shadow-table stores
		int dx = xpos[c] - xpos[pivot];
		int dy = ypos[c] - ypos[pivot];
		if (dx < 0) dx = -dx;
		if (dy < 0) dy = -dy;
		cost += dx + dy + (xpos[other] > xpos[c]);
		tmp[c] = cost;
	}
	return cost;
}

int main() {
	int ncells = arg(0);
	int moves = arg(1);
	int *xpos = ivec(ncells);
	int *ypos = ivec(ncells);
	int *net = ivec(ncells);
	int *tmp = ivec(ncells);
	int seed = 99;
	for (int c = 0; c < ncells; c++) {
		seed = (seed * 1103515245 + 12345) % 2147483647;
		if (seed < 0) seed = -seed;
		xpos[c] = seed % 64;
		ypos[c] = (seed / 64) % 64;
		net[c] = (c * 13 + 5) % ncells;
	}
	int best = wirecost(ncells, 0, xpos, ypos, net, tmp);
	for (int m = 0; m < moves; m++) {
		int c = m % ncells;
		int oldx = xpos[c];
		xpos[c] = (oldx + m) % 64;
		int cost = wirecost(ncells, c, xpos, ypos, net, tmp);
		if (cost > best) {
			xpos[c] = oldx;
		} else {
			best = cost;
		}
	}
	print(best);
	return 0;
}`,
		ProfileArgs: []int64{32, 4},
		RefArgs:     []int64{96, 16},
	}
}

// gzip models 164.gzip's longest-match scan: streaming window reads with
// almost no reusable loads — the paper's example of a program with
// negligible check-conversion but a visible mis-speculation ratio on what
// little is converted.
func gzip() Workload {
	return Workload{
		Name:        "gzip",
		Description: "164.gzip LZ77 longest-match scan (streaming, little reuse)",
		Src: `
int *ivec(int n) { return (int*)malloc(n); }

int longest(int wsize, int *window, int pos, int cur) {
	int best = 0;
	int limit = wsize - cur;
	if (limit > 64) limit = 64;
	int len = 0;
	while (len < limit && window[pos + len] == window[cur + len]) {
		len++;
	}
	return len;
}

int main() {
	int wsize = arg(0);
	int probes = arg(1);
	int *window = ivec(wsize + 64);
	int *head = ivec(256);
	int seed = 7;
	for (int i = 0; i < wsize + 64; i++) {
		seed = (seed * 131 + 17) % 1024;
		window[i] = seed % 8;
	}
	for (int i = 0; i < 256; i++) head[i] = 0;
	int total = 0;
	for (int p = 0; p < probes; p++) {
		int cur = (p * 37) % wsize;
		int hash = (window[cur] * 8 + window[cur + 1]) % 256;
		int cand = head[hash];
		total += longest(wsize, window, cand, cur);
		head[hash] = cur;
		// the sentinel byte is loop-invariant and gets speculatively
		// promoted across the head-table stores...
		total += window[wsize - 1];
		// ...but the window occasionally slides over it (never during
		// the short training run): the paper's gzip-style rare
		// mis-speculation on a negligible check count
		if (p % 100 == 99) {
			window[wsize - 1] = p % 8;
		}
	}
	print(total);
	return 0;
}`,
		ProfileArgs: []int64{256, 64},
		RefArgs:     []int64{2048, 512},
	}
}

// vpr models 175.vpr's router cost propagation: per-node cost reads with
// occupancy updates to a structurally-aliased array.
func vpr() Workload {
	return Workload{
		Name:        "vpr",
		Description: "175.vpr FPGA routing cost propagation",
		Src: `
int *ivec(int n) { return (int*)malloc(n); }

int route(int nnodes, int *cost, int *occ, int *pred) {
	int total = 0;
	for (int i = 1; i < nnodes; i++) {
		int p = pred[i];
		int c = cost[p] + 1 + occ[p] * 3;
		if (c < cost[i]) {
			cost[i] = c;
			occ[i] += 1;
		}
		total += cost[i];
	}
	return total;
}

int main() {
	int nnodes = arg(0);
	int passes = arg(1);
	int *cost = ivec(nnodes);
	int *occ = ivec(nnodes);
	int *pred = ivec(nnodes);
	for (int i = 0; i < nnodes; i++) {
		cost[i] = 1000000;
		occ[i] = 0;
		pred[i] = (i * 7 + 3) % nnodes;
		if (pred[i] >= i && i > 0) pred[i] = i - 1;
	}
	cost[0] = 0;
	int total = 0;
	for (int p = 0; p < passes; p++) {
		total = route(nnodes, cost, occ, pred);
	}
	print(total);
	return 0;
}`,
		ProfileArgs: []int64{64, 3},
		RefArgs:     []int64{256, 10},
	}
}

// bzip2 models 256.bzip2's counting passes: histogram construction and
// prefix sums over a shared-allocator block.
func bzip2() Workload {
	return Workload{
		Name:        "bzip2",
		Description: "256.bzip2 counting-sort passes over the block",
		Src: `
int *ivec(int n) { return (int*)malloc(n); }

void countpass(int n, int *block, int *freq, int *ptr) {
	for (int i = 0; i < 256; i++) freq[i] = 0;
	for (int i = 0; i < n; i++) {
		freq[block[i]] += 1;
	}
	int acc = 0;
	for (int i = 0; i < 256; i++) {
		ptr[i] = acc;
		acc += freq[i];
	}
}

int main() {
	int n = arg(0);
	int passes = arg(1);
	int *block = ivec(n);
	int *freq = ivec(256);
	int *ptr = ivec(256);
	int seed = 3;
	for (int i = 0; i < n; i++) {
		seed = (seed * 75 + 74) % 65537;
		block[i] = seed % 256;
	}
	int check = 0;
	for (int p = 0; p < passes; p++) {
		countpass(n, block, freq, ptr);
		check += ptr[128] + freq[seed % 256];
		block[(p * 31) % n] = p % 256;
	}
	print(check);
	return 0;
}`,
		ProfileArgs: []int64{512, 3},
		RefArgs:     []int64{4096, 8},
	}
}
