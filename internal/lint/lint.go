// Package lint enforces the repo's own API conventions with a
// stdlib-only static analysis (go/parser + go/ast — no analysis
// framework dependency, so it runs in a hermetic build):
//
//   - no-context-background: request-path packages (internal/server)
//     must not call context.Background() outside tests; every operation
//     there runs under a request context with a deadline, and a
//     background context silently opts out of cancellation;
//   - missing-ctx-variant: an exported Run*/Compile*/Evaluate* entry
//     point that does not itself take a context must have a ...Ctx
//     sibling (a trailing Workers is stripped before the lookup, so
//     RunAllWorkers pairs with RunAllCtx), keeping every long-running
//     API cancellable.
//
// The companion test runs both rules over the repository source, making
// the conventions regressions instead of review comments.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one convention violation.
type Finding struct {
	File string
	Line int
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Config selects which directories each rule applies to. Paths are
// relative to the root passed to Run.
type Config struct {
	// NoContextBackground: non-test files in these package directories
	// must not call context.Background().
	NoContextBackground []string
	// CtxVariant: exported Run*/Compile*/Evaluate* functions in these
	// package directories must have a ...Ctx variant.
	CtxVariant []string
}

// entryPrefixes are the API families the ctx-variant rule covers.
var entryPrefixes = []string{"Run", "Compile", "Evaluate"}

// Run lints the configured directories under root and returns the
// findings sorted by file and line.
func Run(root string, cfg Config) ([]Finding, error) {
	var findings []Finding
	for _, dir := range cfg.NoContextBackground {
		fs, err := lintDir(root, dir, checkNoBackground)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	for _, dir := range cfg.CtxVariant {
		fs, err := lintDir(root, dir, checkCtxVariants)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})
	return findings, nil
}

// lintDir parses every non-test .go file of one directory (no recursion
// — one directory is one package) and applies check to the file set.
func lintDir(root, dir string, check func(fset *token.FileSet, files map[string]*ast.File) []Finding) ([]Finding, error) {
	abs := filepath.Join(root, dir)
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	files := map[string]*ast.File{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(abs, name)
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files[filepath.Join(dir, name)] = f
	}
	return check(fset, files), nil
}

// checkNoBackground flags every context.Background() call.
func checkNoBackground(fset *token.FileSet, files map[string]*ast.File) []Finding {
	var out []Finding
	for rel, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Background" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "context" {
				out = append(out, Finding{
					File: rel, Line: fset.Position(call.Pos()).Line,
					Rule: "no-context-background",
					Msg:  "context.Background() in a request-path package: thread the request context instead",
				})
			}
			return true
		})
	}
	return out
}

// recvName returns the receiver's base type name ("" for plain funcs),
// so methods pair with methods on the same type.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// takesContext reports whether any parameter's type is context.Context.
func takesContext(fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		sel, ok := p.Type.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "context" && sel.Sel.Name == "Context" {
			return true
		}
	}
	return false
}

// checkCtxVariants flags exported Run*/Compile*/Evaluate* declarations
// with no context parameter and no ...Ctx sibling on the same receiver.
func checkCtxVariants(fset *token.FileSet, files map[string]*ast.File) []Finding {
	// one package: collect every function key first, then judge
	decls := map[string]bool{} // "Recv.Name"
	type entry struct {
		file string
		line int
		recv string
		name string
	}
	var candidates []entry
	for rel, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			recv := recvName(fd)
			name := fd.Name.Name
			decls[recv+"."+name] = true
			if !fd.Name.IsExported() || strings.HasSuffix(name, "Ctx") || takesContext(fd) {
				continue
			}
			for _, prefix := range entryPrefixes {
				if strings.HasPrefix(name, prefix) {
					candidates = append(candidates, entry{rel, fset.Position(fd.Pos()).Line, recv, name})
					break
				}
			}
		}
	}
	var out []Finding
	for _, c := range candidates {
		base := strings.TrimSuffix(c.name, "Workers")
		if decls[c.recv+"."+c.name+"Ctx"] || decls[c.recv+"."+base+"Ctx"] {
			continue
		}
		what := c.name
		if c.recv != "" {
			what = c.recv + "." + c.name
		}
		out = append(out, Finding{
			File: c.file, Line: c.line,
			Rule: "missing-ctx-variant",
			Msg:  fmt.Sprintf("exported entry point %s has no %sCtx variant: long-running APIs must be cancellable", what, base),
		})
	}
	return out
}
