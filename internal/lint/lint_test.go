package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// RepoConfig is the configuration the repo holds itself to; the CI job
// runs this test, so a convention break fails the build.
var repoConfig = Config{
	NoContextBackground: []string{"internal/server"},
	CtxVariant:          []string{".", "internal/experiments"},
}

// TestRepoIsClean lints the repository's own source. Zero findings is
// the contract: every Run*/Compile*/Evaluate* entry point has a Ctx
// variant and the server never detaches from the request context.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, repoConfig)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// writeFixture materializes a tiny package in a temp dir.
func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRulesFire proves both rules actually detect their targets (a
// linter that can't fail is worse than none) and that the documented
// escapes — Ctx sibling, Workers-stripped sibling, direct ctx param,
// test files — suppress them.
func TestRulesFire(t *testing.T) {
	root := t.TempDir()
	writeFixture(t, filepath.Join(root, "srv"), "srv.go", `package srv

import "context"

func handle() {
	ctx := context.Background() // violation: no-context-background
	_ = ctx
}
`)
	writeFixture(t, filepath.Join(root, "srv"), "srv_test.go", `package srv

import "context"

func helper() { _ = context.Background() } // test file: exempt
`)
	writeFixture(t, filepath.Join(root, "api"), "api.go", `package api

import "context"

type T struct{}

func RunBad() {}                                  // violation: no Ctx variant
func (t *T) CompileBad() {}                       // violation: method, no Ctx variant
func RunGood() {}                                 // ok: sibling below
func RunGoodCtx(ctx context.Context) {}           // the sibling
func RunPoolWorkers() {}                          // ok: Workers strips to RunPoolCtx
func RunPoolCtx(ctx context.Context) {}           // the stripped sibling
func EvaluateDirect(ctx context.Context) {}       // ok: takes ctx itself
func runLower() {}                                // ok: unexported
func Render() {}                                  // ok: prefix not covered
`)

	findings, err := Run(root, Config{
		NoContextBackground: []string{"srv"},
		CtxVariant:          []string{"api"},
	})
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]string{
		"no-context-background": filepath.Join("srv", "srv.go"),
		"missing-ctx-variant":   filepath.Join("api", "api.go"),
	}
	got := map[string]int{}
	for _, f := range findings {
		got[f.Rule]++
		if wantFile, ok := want[f.Rule]; !ok || f.File != wantFile {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if got["no-context-background"] != 1 {
		t.Errorf("no-context-background: got %d findings, want 1", got["no-context-background"])
	}
	if got["missing-ctx-variant"] != 2 {
		t.Errorf("missing-ctx-variant: got %d findings, want 2", got["missing-ctx-variant"])
	}
}

// TestMissingDir ensures a misconfigured directory is an error, not a
// silent pass.
func TestMissingDir(t *testing.T) {
	if _, err := Run(t.TempDir(), Config{CtxVariant: []string{"nope"}}); err == nil {
		t.Fatal("want error for missing directory")
	}
}
