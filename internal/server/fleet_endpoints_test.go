package server

// Tests for the fleet-facing endpoints: the cache peer tier
// (GET/PUT /cache/{key}) and the corpus job (POST /corpus).

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/experiments"
)

func putCache(t *testing.T, ts *httptest.Server, key cache.Key, data []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/cache/"+key.String(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCacheEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	key := cache.KeyOf([]byte("fleet-endpoint-test"), []byte("blob"))
	blob := []byte("speculative payload")

	// unknown key -> 404
	resp, err := ts.Client().Get(ts.URL + "/cache/" + key.String())
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT = %d, want 404", resp.StatusCode)
	}

	if resp := putCache(t, ts, key, blob); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d %s, want 204", resp.StatusCode, readAll(t, resp))
	} else {
		readAll(t, resp)
	}

	resp, err = ts.Client().Get(ts.URL + "/cache/" + key.String())
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, blob) {
		t.Fatalf("GET after PUT = %d %q", resp.StatusCode, got)
	}

	// malformed keys -> 400, both verbs
	resp, err = ts.Client().Get(ts.URL + "/cache/nothex")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET bad key = %d, want 400", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/cache/nothex", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT bad key = %d, want 400", resp.StatusCode)
	}
}

// TestCacheEndpointsBypassAdmissionAndDrain pins the deadlock-avoidance
// property: peer cache lookups answer while every job slot is busy and
// while the server drains — a fleet peer must be able to pull warm
// entries from a worker that is saturated or shutting down.
func TestCacheEndpointsBypassAdmissionAndDrain(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Queue: 1})

	block := make(chan struct{})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(block) }) }
	defer release()
	started := make(chan struct{}, 1)
	s.mux.HandleFunc("POST /test", s.job("test", func(ctx context.Context, r *http.Request) (any, error) {
		started <- struct{}{}
		<-block
		return map[string]string{"ok": "true"}, nil
	}))

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// saturate the single worker slot
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/test", "application/json", strings.NewReader("{}"))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	key := cache.KeyOf([]byte("bypass-test"))
	if resp := putCache(t, ts, key, []byte("v")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT under load = %d, want 204", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
	resp, err := ts.Client().Get(ts.URL + "/cache/" + key.String())
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || string(body) != "v" {
		t.Fatalf("GET under load = %d %q, want the entry", resp.StatusCode, body)
	}

	// draining: jobs get 503, but the cache tier keeps serving reads
	s.BeginDrain()
	resp = postJSON(t, ts, "/corpus", CorpusRequest{Name: "x.c", Source: "int main() { return 0; }\n"})
	if readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job while draining = %d, want 503", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/cache/" + key.String())
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || string(body) != "v" {
		t.Fatalf("GET while draining = %d %q, want the entry", resp.StatusCode, body)
	}
	release()
}

// TestCorpusEndpointByteIdentical pins the corpus job's wire contract:
// the response is exactly MarshalCorpusFile of the local pipeline's
// result, and a failing source reports the pipeline's own error string —
// both halves of the fleet's byte-identity guarantee.
func TestCorpusEndpointByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a corpus file")
	}
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	src := "// profile-args: 8\n// ref-args: 16\n" +
		"int g;\n" +
		"int main() { int i; i = 0; while (i < arg(0)) { g = g + i; i = i + 1; } return g; }\n"
	file := experiments.CorpusFile{Name: "loop.c", Source: src}

	want, err := experiments.RunCorpusFileCtx(context.Background(), file, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := experiments.MarshalCorpusFile(want)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts, "/corpus", CorpusRequest{Name: file.Name, Source: file.Source})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corpus = %d %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, wantBytes) {
		t.Fatalf("corpus response differs from local pipeline:\n%s\nvs\n%s", body, wantBytes)
	}

	// a broken source must carry the pipeline's own error string out in
	// the error envelope (the coordinator records it as the failure)
	brokenSrc := "int main( {\n"
	_, lerr := experiments.RunCorpusFileCtx(context.Background(), experiments.CorpusFile{Name: "broken.c", Source: brokenSrc}, 0)
	if lerr == nil {
		t.Fatal("broken source compiled locally")
	}
	resp = postJSON(t, ts, "/corpus", CorpusRequest{Name: "broken.c", Source: brokenSrc})
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("broken corpus = %d %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error != lerr.Error() {
		t.Fatalf("service error %q != pipeline error %q", eb.Error, lerr.Error())
	}
}
